#include "felip/replaylog/store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <mutex>
#include <system_error>
#include <thread>
#include <utility>

namespace felip::replaylog {

namespace fs = std::filesystem;

namespace {

constexpr char kPrefix[] = "reportlog-";
constexpr char kSealedSuffix[] = ".flog";
constexpr char kOpenSuffix[] = ".open";

// Sequence number of a segment file name with `suffix`, or 0 when the
// name does not match reportlog-<seq><suffix>.
uint64_t SequenceOf(const std::string& name, std::string_view suffix) {
  const std::string_view prefix(kPrefix);
  if (name.size() <= prefix.size() + suffix.size()) return 0;
  if (name.compare(0, prefix.size(), prefix) != 0) return 0;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix.data(),
                   suffix.size()) != 0) {
    return 0;
  }
  uint64_t seq = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

uint64_t AnySequenceOf(const std::string& name) {
  const uint64_t sealed = SequenceOf(name, kSealedSuffix);
  return sealed > 0 ? sealed : SequenceOf(name, kOpenSuffix);
}

}  // namespace

// Three stages, three owners:
//   Append (caller)  — encode + push onto `queue` under `mutex`;
//   writer thread    — pops the queue, owns all active-segment state
//                      (file, open_path, active_*, next_seq: no lock,
//                      single owner after Open), write + fflush, hands
//                      full segments to the sealer;
//   sealer thread    — fsync + rename + prune under `sealer_mutex`.
// Barriers count records: Flush waits for written >= its snapshot of
// pushed; Seal additionally waits for a seal epoch to complete. Failures
// accumulate in `io_failures` and are consumed once per barrier.
struct LogWriter::Impl {
  std::string dir;
  std::vector<uint8_t> plan;
  LogWriterOptions options;

  // --- Append <-> writer handoff, under `mutex` ---
  std::mutex mutex;
  std::condition_variable writer_cv;  // wakes the writer thread
  std::condition_variable done_cv;    // barriers + backpressure
  std::deque<std::vector<uint8_t>> queue;  // encoded whole records
  uint64_t queued_bytes = 0;
  uint64_t pushed = 0;   // records handed to the writer, ever
  uint64_t written = 0;  // records the writer has write+fflush'ed (or
                         // counted as failed), ever
  uint64_t seal_requests = 0;
  uint64_t seals_done = 0;
  uint64_t failures_reported = 0;  // barrier-consumed io_failures marker
  bool stopping = false;

  uint64_t records_appended = 0;  // accessor mirrors, under `mutex`
  uint64_t bytes_appended = 0;

  // --- writer-thread-owned active segment (no lock) ---
  std::FILE* file = nullptr;
  std::string open_path;
  uint64_t active_seq = 0;
  uint64_t active_bytes = 0;
  uint64_t active_records = 0;
  uint64_t next_seq = 1;

  // --- writer <-> sealer handoff, under `sealer_mutex` ---
  struct PendingSeal {
    std::FILE* file = nullptr;
    std::string open_path;
    uint64_t seq = 0;
  };
  std::mutex sealer_mutex;
  std::condition_variable sealer_cv;
  std::condition_variable sealer_done_cv;
  std::deque<PendingSeal> sealer_queue;
  bool sealer_in_flight = false;
  bool sealer_stopping = false;

  std::atomic<uint64_t> segments_sealed{0};
  // Failed I/O events (record write, segment open, fsync/rename) since
  // construction; each barrier reports the delta since the last one.
  std::atomic<uint64_t> io_failures{0};

  std::thread writer;
  std::thread sealer;

  ~Impl() { StopThreads(); }

  void StartThreads() {
    writer = std::thread([this] { WriterLoop(); });
    sealer = std::thread([this] { SealerLoop(); });
  }

  void StopThreads() {
    if (writer.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
      }
      writer_cv.notify_all();
      writer.join();
    }
    if (sealer.joinable()) {
      {
        std::lock_guard<std::mutex> lock(sealer_mutex);
        sealer_stopping = true;
      }
      sealer_cv.notify_all();
      sealer.join();
    }
  }

  // ----- writer thread -----

  void WriterLoop() {
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      writer_cv.wait(lock, [this] {
        return stopping || !queue.empty() || seal_requests > seals_done;
      });
      if (stopping && queue.empty() && seal_requests <= seals_done) return;

      std::deque<std::vector<uint8_t>> batch;
      batch.swap(queue);
      queued_bytes = 0;
      const uint64_t seal_epoch = seal_requests;
      // Producers can refill while this batch is being written.
      done_cv.notify_all();
      lock.unlock();

      for (const std::vector<uint8_t>& record : batch) WriteRecord(record);
      if (file != nullptr && std::fflush(file) != 0) {
        // The batch's tail may be torn in the stdio buffer; treat the
        // segment like a crashed one and surface the failure.
        io_failures.fetch_add(1, std::memory_order_relaxed);
        AbandonSegment();
      }
      if (seal_epoch > seals_done) {
        DetachActiveSegment();
        WaitSealerDrained();
      }

      lock.lock();
      written += batch.size();
      if (seal_epoch > seals_done) seals_done = seal_epoch;
      done_cv.notify_all();
    }
  }

  void WriteRecord(const std::vector<uint8_t>& record) {
    // Rotate before writing, but never an empty segment: a segment takes
    // at least one record even when the header alone tops the limit.
    if (file != nullptr && active_records > 0 &&
        active_bytes >= options.segment_bytes) {
      DetachActiveSegment();
    }
    if (file == nullptr && !OpenSegment()) {
      io_failures.fetch_add(1, std::memory_order_relaxed);
      return;  // record lost; the barrier reports it
    }
    const size_t n = std::fwrite(record.data(), 1, record.size(), file);
    if (n != record.size()) {
      // Torn record: readers cut the segment at the last good boundary.
      // Abandon it so later records land in a fresh segment behind the
      // tear instead of after it.
      io_failures.fetch_add(1, std::memory_order_relaxed);
      AbandonSegment();
      return;
    }
    active_bytes += record.size();
    active_records += 1;
  }

  bool OpenSegment() {
    const uint64_t seq = next_seq;
    const std::string path =
        (fs::path(dir) / (kPrefix + std::to_string(seq) + kOpenSuffix))
            .string();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const std::vector<uint8_t> header = EncodeSegmentHeader(plan);
    if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
        std::fflush(f) != 0) {
      std::fclose(f);
      std::remove(path.c_str());
      return false;
    }
    // Unbuffered: records arrive as whole encoded blobs, so stdio's
    // buffer would only add a copy of every logged byte.
    std::setvbuf(f, nullptr, _IONBF, 0);
    file = f;
    open_path = path;
    active_seq = seq;
    active_bytes = header.size();
    active_records = 0;
    next_seq = seq + 1;
    return true;
  }

  void AbandonSegment() {
    if (file == nullptr) return;
    std::fclose(file);
    file = nullptr;
    open_path.clear();
  }

  // Discards an empty active segment, otherwise hands it to the sealer.
  void DetachActiveSegment() {
    if (file == nullptr) return;
    if (active_records == 0) {
      // Nothing but a header: discard rather than seal an empty segment.
      std::fclose(file);
      std::remove(open_path.c_str());
    } else {
      if (std::fflush(file) != 0) {
        io_failures.fetch_add(1, std::memory_order_relaxed);
        AbandonSegment();
        return;
      }
      {
        std::lock_guard<std::mutex> lock(sealer_mutex);
        sealer_queue.push_back({file, std::move(open_path), active_seq});
      }
      sealer_cv.notify_all();
    }
    file = nullptr;
    open_path.clear();
  }

  void WaitSealerDrained() {
    std::unique_lock<std::mutex> lock(sealer_mutex);
    sealer_done_cv.wait(
        lock, [this] { return sealer_queue.empty() && !sealer_in_flight; });
  }

  // ----- sealer thread -----

  void SealerLoop() {
    std::unique_lock<std::mutex> lock(sealer_mutex);
    while (true) {
      sealer_cv.wait(lock,
                     [this] { return sealer_stopping || !sealer_queue.empty(); });
      if (sealer_queue.empty()) {
        if (sealer_stopping) return;
        continue;
      }
      const PendingSeal pending = std::move(sealer_queue.front());
      sealer_queue.pop_front();
      sealer_in_flight = true;
      lock.unlock();
      const bool ok = SealSegment(pending);
      lock.lock();
      sealer_in_flight = false;
      if (ok) {
        segments_sealed.fetch_add(1, std::memory_order_relaxed);
      } else {
        io_failures.fetch_add(1, std::memory_order_relaxed);
      }
      sealer_done_cv.notify_all();
    }
  }

  // The expensive half of a seal: fsync, rename to .flog, prune. Returns
  // false when the segment could not be made durable — the .open is left
  // in place (its flushed records still replay after a process death,
  // they just lack the sealed-name durability promise).
  bool SealSegment(const PendingSeal& pending) {
    const bool synced = ::fsync(fileno(pending.file)) == 0;
    std::fclose(pending.file);
    if (!synced) return false;
    const std::string sealed_path =
        (fs::path(dir) /
         (kPrefix + std::to_string(pending.seq) + kSealedSuffix))
            .string();
    std::error_code ec;
    fs::rename(pending.open_path, sealed_path, ec);
    if (ec) return false;
    Prune();
    return true;
  }

  // Pruning failures are ignored on purpose, exactly like SnapshotStore:
  // leaking an old segment beats failing the seal that produced a good
  // new one.
  void Prune() {
    if (options.keep_segments == 0) return;
    std::vector<std::pair<uint64_t, std::string>> sealed;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      const uint64_t seq =
          SequenceOf(it->path().filename().string(), kSealedSuffix);
      if (seq > 0) sealed.emplace_back(seq, it->path().string());
    }
    std::sort(sealed.begin(), sealed.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (size_t i = options.keep_segments; i < sealed.size(); ++i) {
      std::error_code remove_ec;
      fs::remove(sealed[i].second, remove_ec);
    }
  }

  // ----- barriers (caller side) -----

  // Consumes failures accumulated since the last barrier; true if none.
  // Caller must hold `mutex`.
  bool ConsumeFailuresLocked() {
    const uint64_t failures = io_failures.load(std::memory_order_relaxed);
    const bool clean = failures == failures_reported;
    failures_reported = failures;
    return clean;
  }
};

StatusOr<LogWriter> LogWriter::Open(const std::string& dir,
                                    std::vector<uint8_t> plan,
                                    LogWriterOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  auto impl = std::make_unique<Impl>();
  impl->dir = dir;
  impl->plan = std::move(plan);
  impl->options = options;
  if (impl->options.max_buffered_bytes == 0) {
    impl->options.max_buffered_bytes = impl->options.segment_bytes;
  }
  // Resume the sequence past every existing segment — sealed or a crashed
  // writer's leftover .open — so a committed name is never reused.
  for (const std::string& path : ListSegmentsOldestFirst(dir)) {
    const uint64_t seq = AnySequenceOf(fs::path(path).filename().string());
    impl->next_seq = std::max(impl->next_seq, seq + 1);
  }
  // Eagerly open the first segment on this thread (the writer thread has
  // not started, so the single-owner rule holds) to fail fast on an
  // unwritable directory instead of at the first barrier.
  if (!impl->OpenSegment()) {
    return Status::Unavailable("cannot open log segment for writing under: " +
                               dir);
  }
  impl->StartThreads();
  return LogWriter(std::move(impl));
}

LogWriter::LogWriter(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

LogWriter::~LogWriter() {
  if (impl_ != nullptr) {
    (void)Seal();  // best effort; errors already counted
  }
}

LogWriter::LogWriter(LogWriter&& other) noexcept = default;
LogWriter& LogWriter::operator=(LogWriter&& other) noexcept = default;

const std::string& LogWriter::dir() const { return impl_->dir; }

uint64_t LogWriter::records_appended() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->records_appended;
}

uint64_t LogWriter::segments_sealed() const {
  return impl_->segments_sealed.load(std::memory_order_relaxed);
}

uint64_t LogWriter::bytes_appended() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->bytes_appended;
}

Status LogWriter::Append(RecordType type, uint64_t key,
                         std::span<const uint8_t> payload) {
  Impl& impl = *impl_;
  std::vector<uint8_t> record;
  // type u8 + payload_len u32 + key u64 + payload + xxh64 seal
  record.reserve(1 + 4 + 8 + payload.size() + 8);
  AppendRecord(&record, type, key, payload);
  const uint64_t record_bytes = record.size();

  std::unique_lock<std::mutex> lock(impl.mutex);
  // Backpressure: bound writer-queue memory; in steady state the writer
  // drains faster than the drain path fills, so this only bites while a
  // rotation fsync is in flight with max_buffered_bytes of backlog.
  impl.done_cv.wait(lock, [&impl] {
    return impl.queued_bytes < impl.options.max_buffered_bytes ||
           impl.stopping;
  });
  const bool was_empty = impl.queue.empty();
  impl.queue.push_back(std::move(record));
  impl.queued_bytes += record_bytes;
  impl.pushed += 1;
  impl.records_appended += 1;
  impl.bytes_appended += record_bytes;
  lock.unlock();
  // Only the empty->nonempty edge needs a wakeup: a writer mid-batch
  // re-checks the queue at its loop top, and per-record notifies would
  // cost a context switch per Append.
  if (was_empty) impl.writer_cv.notify_one();
  return Status::Ok();
}

Status LogWriter::Flush() {
  Impl& impl = *impl_;
  std::unique_lock<std::mutex> lock(impl.mutex);
  const uint64_t target = impl.pushed;
  impl.writer_cv.notify_all();
  impl.done_cv.wait(lock, [&impl, target] { return impl.written >= target; });
  if (!impl.ConsumeFailuresLocked()) {
    return Status::Unavailable("report log lost records under: " + impl.dir);
  }
  return Status::Ok();
}

Status LogWriter::Seal() {
  Impl& impl = *impl_;
  std::unique_lock<std::mutex> lock(impl.mutex);
  const uint64_t my_epoch = ++impl.seal_requests;
  impl.writer_cv.notify_all();
  impl.done_cv.wait(lock,
                    [&impl, my_epoch] { return impl.seals_done >= my_epoch; });
  if (!impl.ConsumeFailuresLocked()) {
    return Status::Unavailable("cannot seal log segment under: " + impl.dir);
  }
  return Status::Ok();
}

std::vector<std::string> ListSegmentsOldestFirst(const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const uint64_t seq = AnySequenceOf(it->path().filename().string());
    if (seq > 0) found.emplace_back(seq, it->path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [seq, path] : found) paths.push_back(std::move(path));
  return paths;
}

}  // namespace felip::replaylog
