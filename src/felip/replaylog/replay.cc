#include "felip/replaylog/replay.h"

#include <utility>

#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"
#include "felip/replaylog/format.h"
#include "felip/replaylog/store.h"
#include "felip/snapshot/pipeline_snapshot.h"
#include "felip/snapshot/store.h"
#include "felip/svc/dedup.h"
#include "felip/svc/message.h"
#include "felip/wire/framing.h"
#include "felip/wire/wire.h"

namespace felip::replaylog {

std::vector<uint8_t> EncodePlan(
    const core::FelipConfig& config, uint64_t num_users,
    const std::vector<data::AttributeInfo>& schema) {
  const std::vector<uint8_t> config_bytes =
      snapshot::EncodeConfigSection(config, num_users);
  const std::vector<uint8_t> schema_bytes =
      snapshot::EncodeSchemaSection(schema);
  std::vector<uint8_t> plan;
  wire::Writer w(&plan);
  w.Put<uint32_t>(static_cast<uint32_t>(config_bytes.size()));
  w.PutBytes(config_bytes.data(), config_bytes.size());
  w.Put<uint32_t>(static_cast<uint32_t>(schema_bytes.size()));
  w.PutBytes(schema_bytes.data(), schema_bytes.size());
  return plan;
}

Status DecodePlan(const std::vector<uint8_t>& plan, core::FelipConfig* config,
                  uint64_t* num_users,
                  std::vector<data::AttributeInfo>* schema) {
  wire::Reader r(plan);
  uint32_t config_len = 0;
  if (!r.Get(&config_len) || config_len > r.remaining()) {
    return Status::InvalidArgument("replay log plan is truncated");
  }
  std::vector<uint8_t> config_bytes(r.cursor(), r.cursor() + config_len);
  r.Skip(config_len);
  uint32_t schema_len = 0;
  if (!r.Get(&schema_len) || schema_len > r.remaining()) {
    return Status::InvalidArgument("replay log plan is truncated");
  }
  std::vector<uint8_t> schema_bytes(r.cursor(), r.cursor() + schema_len);
  r.Skip(schema_len);
  if (r.remaining() != 0) {
    return Status::InvalidArgument("replay log plan has trailing bytes");
  }
  FELIP_RETURN_IF_ERROR(
      snapshot::DecodeConfigSection(config_bytes, config, num_users));
  return snapshot::DecodeSchemaSection(schema_bytes, schema);
}

StatusOr<ReplayResult> ReplayLog(const std::string& dir,
                                 const ReplayOverrides& overrides) {
  return ReplayLogs(std::span<const std::string>(&dir, 1), overrides);
}

StatusOr<ReplayResult> ReplayLogs(std::span<const std::string> dirs,
                                  const ReplayOverrides& overrides) {
  obs::ScopedTimer span("felip_replay");
  static obs::Counter& replayed_total = obs::Registry::Default().GetCounter(
      "felip_replay_batches_total");
  static obs::Counter& damaged_total = obs::Registry::Default().GetCounter(
      "felip_replay_segments_damaged_total");

  if (dirs.empty()) {
    return Status::InvalidArgument("no report log directories to replay");
  }
  // Directory-major order: a shard's segments stay oldest-first relative
  // to each other. Cross-directory order cannot matter — the accepted
  // multiset (hence the estimate) is order-independent, and the shared
  // dedup window sees each unique batch once wherever it appears first.
  std::vector<std::string> segments;
  for (const std::string& dir : dirs) {
    const std::vector<std::string> dir_segments =
        ListSegmentsOldestFirst(dir);
    segments.insert(segments.end(), dir_segments.begin(), dir_segments.end());
  }
  if (segments.empty()) {
    return Status::NotFound("no report log segments under: " + dirs.front());
  }

  // Pass 1 over headers happens lazily inside the single pass below: the
  // first verified header fixes the plan; later headers must match it
  // byte for byte.
  ReplayStats stats;
  std::optional<core::FelipPipeline> pipeline;
  std::vector<uint8_t> plan;
  svc::DedupWindow dedup;

  for (const std::string& path : segments) {
    StatusOr<std::vector<uint8_t>> bytes = snapshot::ReadFileBytes(path);
    if (!bytes.ok()) {
      stats.segments_damaged += 1;
      damaged_total.Increment();
      continue;
    }
    StatusOr<SegmentParser> parser = SegmentParser::Open(*std::move(bytes));
    if (!parser.ok()) {
      stats.segments_damaged += 1;
      damaged_total.Increment();
      continue;
    }
    if (!pipeline.has_value()) {
      plan = parser->plan();
      core::FelipConfig config;
      uint64_t num_users = 0;
      std::vector<data::AttributeInfo> schema;
      FELIP_RETURN_IF_ERROR(
          DecodePlan(plan, &config, &num_users, &schema));
      if (overrides.normalization.has_value()) {
        config.normalization = *overrides.normalization;
      }
      if (overrides.consistency_rounds.has_value()) {
        config.consistency_rounds = *overrides.consistency_rounds;
      }
      if (overrides.lambda_threshold.has_value()) {
        config.lambda_threshold = *overrides.lambda_threshold;
      }
      if (overrides.lambda_quadrant_fit.has_value()) {
        config.lambda_quadrant_fit = *overrides.lambda_quadrant_fit;
      }
      if (overrides.aggregation_threads.has_value()) {
        config.aggregation_threads = *overrides.aggregation_threads;
      }
      pipeline.emplace(std::move(schema), num_users, std::move(config));
      pipeline->BeginIngest();
    } else if (parser->plan() != plan) {
      return Status::FailedPrecondition(
          "report log segments carry different plans: " + path);
    }
    stats.segments_read += 1;

    LogRecord record;
    while (true) {
      StatusOr<bool> next = parser->Next(&record);
      if (!next.ok()) {
        // Torn or corrupt tail: everything before it already replayed.
        stats.segments_damaged += 1;
        damaged_total.Increment();
        break;
      }
      if (!*next) break;

      // Mirror the live server's gates: trailer verification
      // (HandleFrame), trailer-keyed dedup, then the sharded structural
      // decode (WorkerLoop). Thread count 1 keeps the decode serial; the
      // accepted multiset — hence the estimate — is identical either way.
      if (!svc::VerifyChecksumTrailer(record.payload) ||
          svc::ChecksumTrailer(record.payload).value_or(0) != record.key) {
        stats.batches_undecodable += 1;
        continue;
      }
      if (!dedup.Insert(record.key)) {
        stats.batches_duplicate += 1;
        continue;
      }
      std::vector<wire::ReportMessage> messages;
      const StatusOr<size_t> count = wire::DecodeReportBatchSharded(
          record.payload,
          [&](size_t /*shard*/, size_t /*index*/, wire::ReportMessage&& m) {
            messages.push_back(std::move(m));
          },
          /*thread_count=*/1);
      if (!count.ok()) {
        stats.batches_undecodable += 1;
        continue;
      }
      for (const wire::ReportMessage& m : messages) {
        // The pipeline dispatches on the report's protocol tag; replay
        // stays protocol-agnostic as new oracles are registered.
        const Status status = pipeline->IngestReport(m.grid_index, m);
        if (status.ok()) {
          stats.reports_accepted += 1;
        } else {
          stats.reports_rejected += 1;
        }
      }
      stats.batches_replayed += 1;
      replayed_total.Increment();
    }
  }

  if (!pipeline.has_value()) {
    return Status::DataLoss("no report log segment verified under: " +
                            dirs.front());
  }
  pipeline->FinishIngest();
  return ReplayResult{*std::move(pipeline), stats};
}

}  // namespace felip::replaylog
