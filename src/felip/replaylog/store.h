// On-disk report log store: segment files, rotation, crash discipline.
//
// A LogWriter owns one directory of segment files with a monotonically
// increasing sequence number (resumed past existing files on open, like
// SnapshotStore). The active segment is reportlog-<seq>.open; sealing
// (size rotation, Seal(), destruction) does fflush + fsync + rename to
// reportlog-<seq>.flog: a .flog name is a complete, fully-durable
// segment even across a machine crash, mirroring SnapshotStore's
// tmp+fsync+rename contract.
//
// Append is called inside the ingest drain critical section, where every
// microsecond is tail latency, so it does no file I/O at all: it encodes
// the record into a bounded in-memory queue and returns. A writer thread
// drains the queue (write + fflush, so drained records are in the page
// cache and survive a SIGKILL), and hands full segments to a sealer
// thread for the ~100ms fsync + rename + prune. Durability is pulled
// through two barriers:
//
//   Flush() — every record appended so far is in the OS page cache
//             (survives process death, not a machine crash);
//   Seal()  — every record appended so far is in a fully-durable .flog.
//
// The one ordering rule this imposes on callers: cut no checkpoint that
// claims a batch until Flush() has covered that batch's record, or a
// SIGKILL could leave a snapshot that leads the log (felip_server wires
// this into its checkpoint callback; docs/replay.md explains why replay
// correctness needs it).
//
// I/O failures are asynchronous too: Append never reports them. A failed
// write abandons the active segment where it stands (its torn tail reads
// like a crash) and later records land in a fresh segment; the failure is
// surfaced exactly once, by the next Flush()/Seal() barrier.
//
// Readers take both spellings: .flog segments are whole by construction,
// and leftover .open segments (a crashed writer) are expected to end in a
// torn tail the per-record checksums cut at the last record boundary
// (felip/replaylog/format.h). A crashed writer's leftover .open is never
// appended to or renamed on restart — its tail is unverified, and the
// ".flog = complete" invariant is worth more than a tidy directory.
//
// Rotation keeps the newest keep_segments sealed files; the default (0)
// keeps everything, because replay needs the full history. Bound it only
// when the log rides next to a snapshot store that makes the prefix
// redundant (docs/replay.md discusses the pairing).

#ifndef FELIP_REPLAYLOG_STORE_H_
#define FELIP_REPLAYLOG_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "felip/common/status.h"
#include "felip/replaylog/format.h"

namespace felip::replaylog {

struct LogWriterOptions {
  // Seal and rotate the active segment once it reaches this many bytes.
  uint64_t segment_bytes = 64ull << 20;
  // Sealed segments kept after rotation; 0 = unbounded.
  size_t keep_segments = 0;
  // Backpressure: Append blocks once this many encoded-record bytes are
  // queued for the writer thread. Sized to ride out a rotation fsync
  // without stalling the drain path. 0 = segment_bytes.
  uint64_t max_buffered_bytes = 0;
};

class LogWriter {
 public:
  // Creates `dir` if absent and opens the first segment, whose header
  // carries `plan` (as will every subsequent segment's — replay requires
  // byte-identical plans across one log). kUnavailable on I/O failure.
  static StatusOr<LogWriter> Open(const std::string& dir,
                                  std::vector<uint8_t> plan,
                                  LogWriterOptions options = {});

  ~LogWriter();
  LogWriter(LogWriter&& other) noexcept;
  LogWriter& operator=(LogWriter&& other) noexcept;
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  // Encodes one record and queues it for the writer thread; no file I/O
  // on this path. Blocks only when max_buffered_bytes of records are
  // already queued. I/O errors from earlier records are not reported
  // here — they surface at the next Flush()/Seal() barrier.
  Status Append(RecordType type, uint64_t key,
                std::span<const uint8_t> payload);

  // Barrier: waits until every record appended so far has been written
  // and flushed to the OS. After Flush() returns Ok those records are in
  // the page cache — they survive a SIGKILL of this process (a machine
  // crash needs Seal()). Reports any I/O failure since the last barrier.
  Status Flush();

  // Barrier: seals the active segment and waits for every pending
  // background seal to finish. After Seal() returns Ok, all appended
  // records live under fully-durable .flog names. Idempotent; the next
  // Append opens a new segment. A segment that never saw an Append is
  // discarded instead of sealed empty. Reports any I/O failure since the
  // last barrier.
  Status Seal();

  const std::string& dir() const;
  uint64_t records_appended() const;
  // Seals completed by the background sealer so far; Seal() is the
  // barrier that makes this equal the number of rotated segments.
  uint64_t segments_sealed() const;
  uint64_t bytes_appended() const;

 private:
  struct Impl;
  explicit LogWriter(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

// Every segment path under `dir` — sealed .flog and leftover .open —
// ordered oldest (lowest sequence) first, which is append order: sequence
// numbers are never reused.
std::vector<std::string> ListSegmentsOldestFirst(const std::string& dir);

}  // namespace felip::replaylog

#endif  // FELIP_REPLAYLOG_STORE_H_
