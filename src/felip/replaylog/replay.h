// Offline replay engine: pipeline state from a report log.
//
// ReplayLog walks every segment of a report log (oldest first),
// reconstructs the pipeline the log's plan describes, and re-ingests
// every logged batch through the exact server path — checksum-trailer
// verification, trailer-keyed idempotency window, sharded structural
// decode, per-report oracle validation — so the replayed pipeline is
// bit-identical to the live one that wrote the log: aggregation is
// integer-count based and depends only on the multiset of accepted
// reports, never on order, batching, threads, or SIMD dispatch.
//
// The dedup window matters beyond tidiness: with checkpointing enabled, a
// SIGKILLed server re-drains (and re-logs) every batch its clients resend
// past the last snapshot cut, so a crash-spanning log legitimately holds
// duplicate records. Replaying with the same bounded FIFO window the
// server dedups with drops exactly the batches the server would have
// (the server's admission horizon is the same kDefaultDedupCapacity; a
// log long enough to wrap it would double-count on the live side too).
//
// Reading is recovery-oriented, like snapshot recovery: a segment with a
// damaged header is skipped whole, a segment with a torn or corrupt tail
// contributes every record up to the last good boundary, and both are
// counted in ReplayStats rather than failing the replay. The only hard
// failures are an empty/unreadable log and segments whose plans disagree
// — byte-identical plan blobs are how two segments prove they belong to
// one collection round.
//
// ReplayOverrides is the estimator-comparison surface (ROADMAP item 5):
// every field re-runs post-processing a different way against the frozen
// corpus. All overridable fields are layout-neutral — they never change
// grid planning — so the overridden pipeline still accepts every logged
// report. See docs/replay.md for the comparison workflow.

#ifndef FELIP_REPLAYLOG_REPLAY_H_
#define FELIP_REPLAYLOG_REPLAY_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "felip/common/status.h"
#include "felip/core/felip.h"
#include "felip/post/norm_sub.h"

namespace felip::replaylog {

// The plan blob every segment header carries: the full FelipConfig,
// population size, and schema — everything needed to replan the identical
// grid layout with no out-of-band context. Encoded with the snapshot
// format's config/schema section codecs, so the two durable formats can
// never drift apart.
std::vector<uint8_t> EncodePlan(const core::FelipConfig& config,
                                uint64_t num_users,
                                const std::vector<data::AttributeInfo>& schema);
Status DecodePlan(const std::vector<uint8_t>& plan, core::FelipConfig* config,
                  uint64_t* num_users,
                  std::vector<data::AttributeInfo>* schema);

// Post-processing knobs to swap out relative to the logged plan. Every
// field is layout-neutral (grid planning never reads it).
struct ReplayOverrides {
  std::optional<post::Normalization> normalization;
  std::optional<int> consistency_rounds;
  std::optional<double> lambda_threshold;
  std::optional<bool> lambda_quadrant_fit;
  std::optional<unsigned> aggregation_threads;
};

struct ReplayStats {
  uint64_t segments_read = 0;     // headers that verified
  uint64_t segments_damaged = 0;  // skipped headers + torn/corrupt tails
  uint64_t batches_replayed = 0;
  uint64_t batches_duplicate = 0;    // dropped by the idempotency window
  uint64_t batches_undecodable = 0;  // bad trailer or structural decode
  uint64_t reports_accepted = 0;
  uint64_t reports_rejected = 0;  // per-report oracle validation failures
};

struct ReplayResult {
  // kSealed: the round is closed; Finalize() it to estimate and query.
  core::FelipPipeline pipeline;
  ReplayStats stats;
};

// Replays every segment under `dir`. kNotFound when the directory holds
// no segments, kDataLoss when no segment header verifies,
// kFailedPrecondition when verified segments carry different plans, and
// any plan-decode failure as-is.
StatusOr<ReplayResult> ReplayLog(const std::string& dir,
                                 const ReplayOverrides& overrides = {});

// Multi-log variant for auditing a distributed round offline: replays the
// union of every directory's segments (directory-major, oldest first
// within each) into ONE pipeline, with a single shared dedup window.
// Every shard of a round logs the identical plan blob — shards plan with
// the global population — so the cross-segment plan check spans
// directories unchanged, and the shared window drops a batch that somehow
// appears in two shard logs exactly like one server would have.
// ReplayLogs({dir}) == ReplayLog(dir).
StatusOr<ReplayResult> ReplayLogs(std::span<const std::string> dirs,
                                  const ReplayOverrides& overrides = {});

}  // namespace felip::replaylog

#endif  // FELIP_REPLAYLOG_REPLAY_H_
