#include "felip/replaylog/format.h"

#include <cstring>
#include <utility>

#include "felip/common/check.h"
#include "felip/common/hash.h"
#include "felip/wire/framing.h"

namespace felip::replaylog {

namespace {

Status Damaged(const char* what) { return Status::DataLoss(what); }

// Fixed prefix of a record before its payload: type + payload_len + key.
constexpr size_t kRecordPrefixBytes =
    sizeof(uint8_t) + sizeof(uint32_t) + sizeof(uint64_t);

}  // namespace

std::vector<uint8_t> EncodeSegmentHeader(const std::vector<uint8_t>& plan) {
  FELIP_CHECK_MSG(plan.size() <= kMaxPlanBytes,
                  "replay log plan exceeds kMaxPlanBytes");
  std::vector<uint8_t> header;
  wire::Writer w(&header);
  w.Put<uint32_t>(kMagic);
  w.Put<uint8_t>(kFormatVersion);
  w.Put<uint32_t>(static_cast<uint32_t>(plan.size()));
  w.PutBytes(plan.data(), plan.size());
  wire::SealChecksum(&header, kChecksumSalt);
  return header;
}

void AppendRecord(std::vector<uint8_t>* out, RecordType type, uint64_t key,
                  std::span<const uint8_t> payload) {
  FELIP_CHECK_MSG(payload.size() <= kMaxRecordPayloadBytes,
                  "replay log record exceeds kMaxRecordPayloadBytes");
  const size_t start = out->size();
  wire::Writer w(out);
  w.Put<uint8_t>(static_cast<uint8_t>(type));
  w.Put<uint32_t>(static_cast<uint32_t>(payload.size()));
  w.Put<uint64_t>(key);
  w.PutBytes(payload.data(), payload.size());
  const uint64_t checksum =
      XxHash64Bytes(out->data() + start, out->size() - start, kChecksumSalt);
  w.Put<uint64_t>(checksum);
}

StatusOr<SegmentParser> SegmentParser::Open(std::vector<uint8_t> bytes) {
  wire::Reader r(bytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint32_t plan_len = 0;
  if (!r.Get(&magic) || magic != kMagic) {
    return Damaged("replay log segment has no FRLG magic");
  }
  if (!r.Get(&version) || version != kFormatVersion) {
    return Damaged("replay log segment has an unsupported version");
  }
  if (!r.Get(&plan_len) || plan_len > kMaxPlanBytes ||
      plan_len > r.remaining()) {
    return Damaged("replay log segment header is truncated");
  }
  std::vector<uint8_t> plan(plan_len);
  if (!r.GetBytes(plan.data(), plan_len)) {
    return Damaged("replay log segment header is truncated");
  }
  uint64_t stored = 0;
  const size_t sealed = r.position();
  if (!r.Get(&stored)) {
    return Damaged("replay log segment header is truncated");
  }
  if (XxHash64Bytes(bytes.data(), sealed, kChecksumSalt) != stored) {
    return Damaged("replay log segment header fails its checksum");
  }
  const size_t records_start = r.position();
  return SegmentParser(std::move(bytes), std::move(plan), records_start);
}

StatusOr<bool> SegmentParser::Next(LogRecord* record) {
  if (pos_ == bytes_.size()) return false;  // clean end of segment

  const size_t remaining = bytes_.size() - pos_;
  if (remaining < kRecordPrefixBytes + sizeof(uint64_t)) {
    return Damaged("replay log record is torn at end of segment");
  }
  uint8_t type = 0;
  uint32_t payload_len = 0;
  uint64_t key = 0;
  std::memcpy(&type, bytes_.data() + pos_, sizeof(type));
  std::memcpy(&payload_len, bytes_.data() + pos_ + sizeof(type),
              sizeof(payload_len));
  std::memcpy(&key, bytes_.data() + pos_ + sizeof(type) + sizeof(payload_len),
              sizeof(key));
  if (type != static_cast<uint8_t>(RecordType::kBatch)) {
    return Damaged("replay log record has an unknown type");
  }
  if (payload_len > kMaxRecordPayloadBytes ||
      remaining - kRecordPrefixBytes - sizeof(uint64_t) <
          static_cast<size_t>(payload_len)) {
    return Damaged("replay log record is torn at end of segment");
  }
  const size_t body = kRecordPrefixBytes + payload_len;
  uint64_t stored = 0;
  std::memcpy(&stored, bytes_.data() + pos_ + body, sizeof(stored));
  if (XxHash64Bytes(bytes_.data() + pos_, body, kChecksumSalt) != stored) {
    return Damaged("replay log record fails its checksum");
  }
  record->type = static_cast<RecordType>(type);
  record->key = key;
  record->payload.assign(bytes_.data() + pos_ + kRecordPrefixBytes,
                         bytes_.data() + pos_ + body);
  pos_ += body + sizeof(uint64_t);
  return true;
}

}  // namespace felip::replaylog
