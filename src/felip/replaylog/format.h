// Append-only privatized report log: segment byte format.
//
// Reports leaving FELIP clients are already LDP-perturbed, so persisting
// them verbatim is privacy-safe — and a frozen log of every drained batch
// is exactly what offline estimator comparison needs: one corpus, many
// post-processing configurations, all digest-compared (see
// felip/replaylog/replay.h and docs/replay.md).
//
// A segment is one file:
//
//   header:  [magic u32 'FRLG'] [version u8] [plan_len u32] [plan bytes]
//            [xxHash64 over the header bytes, salted]
//   records: [type u8] [payload_len u32] [key u64] [payload bytes]
//            [xxHash64 over the record bytes, salted]  ... repeated
//
// The plan blob (felip/replaylog/replay.h: EncodePlan) carries the full
// FelipConfig + population size + schema, so a segment replays with no
// out-of-band context; every segment of one log carries byte-identical
// plan bytes. A kBatch record's payload is a complete encoded
// wire::ReportBatch frame — envelope and checksum trailer untouched — and
// its key is that trailer, the batch's idempotency key.
//
// Truncation semantics are the format's contract (and what
// tests/replaylog pins): the log is appended a whole record at a time, so
// a reader either consumes a complete checksum-valid record or stops at
// the last good record boundary with kDataLoss. No prefix of a valid
// segment ever yields a torn record, and no bit flip survives the
// per-record seal.

#ifndef FELIP_REPLAYLOG_FORMAT_H_
#define FELIP_REPLAYLOG_FORMAT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "felip/common/status.h"

namespace felip::replaylog {

inline constexpr uint32_t kMagic = 0x46524c47;  // "FRLG"
inline constexpr uint8_t kFormatVersion = 1;
// Salt of every xxHash64 seal in this format ("rlogcsum"). Distinct from
// the wire and snapshot salts, so bytes can never verify as the wrong
// kind of artifact.
inline constexpr uint64_t kChecksumSalt = 0x726c6f67'6373756dULL;

// Screens length prefixes before any allocation; both are far above
// anything the writers produce.
inline constexpr uint32_t kMaxPlanBytes = 1u << 20;
inline constexpr uint32_t kMaxRecordPayloadBytes = 1u << 26;

enum class RecordType : uint8_t {
  kBatch = 1,  // payload = one encoded wire::ReportBatch frame
};

// Serialized segment header for `plan` (which must fit kMaxPlanBytes).
std::vector<uint8_t> EncodeSegmentHeader(const std::vector<uint8_t>& plan);

// Appends one sealed record to `out`.
void AppendRecord(std::vector<uint8_t>* out, RecordType type, uint64_t key,
                  std::span<const uint8_t> payload);

struct LogRecord {
  RecordType type = RecordType::kBatch;
  uint64_t key = 0;
  std::vector<uint8_t> payload;
};

// Sequential record reader over one segment's bytes. Never aborts:
// segment bytes come from disk and may be truncated (a crash mid-append)
// or corrupt.
class SegmentParser {
 public:
  // Verifies the header. kDataLoss when the magic, version, plan bounds,
  // or header seal don't check out — a file this damaged carries nothing
  // trustworthy.
  static StatusOr<SegmentParser> Open(std::vector<uint8_t> bytes);

  // The plan bytes the header carries.
  const std::vector<uint8_t>& plan() const { return plan_; }

  // Consumes the next record. True: *record is complete and checksum-
  // valid. False: clean end of segment, exactly at a record boundary.
  // kDataLoss: the tail is torn or corrupt; iteration is over and the
  // previous record boundary is final.
  StatusOr<bool> Next(LogRecord* record);

  // Byte offset of the next unconsumed record (= the end of the last
  // cleanly read one).
  size_t position() const { return pos_; }

 private:
  SegmentParser(std::vector<uint8_t> bytes, std::vector<uint8_t> plan,
                size_t pos)
      : bytes_(std::move(bytes)), plan_(std::move(plan)), pos_(pos) {}

  std::vector<uint8_t> bytes_;
  std::vector<uint8_t> plan_;
  size_t pos_ = 0;
};

}  // namespace felip::replaylog

#endif  // FELIP_REPLAYLOG_FORMAT_H_
