#include "felip/core/felip.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

#include "felip/common/check.h"
#include "felip/common/hash.h"
#include "felip/common/numeric.h"
#include "felip/common/parallel.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"
#include "felip/post/consistency.h"
#include "felip/post/lambda_estimator.h"
#include "felip/post/norm_sub.h"

namespace felip::core {

namespace {

using data::AttributeInfo;
using grid::AxisSelection;
using grid::Grid1D;
using grid::Grid2D;
using grid::Partition1D;

bool IsNumerical(const AttributeInfo& info) {
  return !info.categorical && info.domain > 1;
}

}  // namespace

void FelipConfig::SetProtocolAllowed(fo::Protocol protocol, bool allowed) {
  if (protocol == fo::Protocol::kGrr) {
    allow_grr = allowed;
  } else if (protocol == fo::Protocol::kOlh) {
    allow_olh = allowed;
  } else if (protocol == fo::Protocol::kOue) {
    allow_oue = allowed;
  } else if (protocol == fo::Protocol::kPgr) {
    allow_pgr = allowed;
  } else {
    FELIP_CHECK(protocol == fo::Protocol::kFldp);
    allow_fldp = allowed;
  }
}

bool FelipConfig::ProtocolAllowed(fo::Protocol protocol) const {
  if (protocol == fo::Protocol::kGrr) return allow_grr;
  if (protocol == fo::Protocol::kOlh) return allow_olh;
  if (protocol == fo::Protocol::kOue) return allow_oue;
  if (protocol == fo::Protocol::kPgr) return allow_pgr;
  FELIP_CHECK(protocol == fo::Protocol::kFldp);
  return allow_fldp;
}

std::string_view PipelineStateName(PipelineState state) {
  switch (state) {
    case PipelineState::kConfigured:
      return "configured";
    case PipelineState::kCollecting:
      return "collecting";
    case PipelineState::kSealed:
      return "sealed";
    case PipelineState::kQueryable:
      return "queryable";
  }
  return "unknown";
}

void FelipPipeline::ExpectState(PipelineState expected,
                                const char* op) const {
  if (state_ == expected) return;
  std::fprintf(stderr,
               "FELIP pipeline lifecycle violation: %s requires state "
               "'%.*s' but the pipeline is '%.*s'\n",
               op,
               static_cast<int>(PipelineStateName(expected).size()),
               PipelineStateName(expected).data(),
               static_cast<int>(PipelineStateName(state_).size()),
               PipelineStateName(state_).data());
  FELIP_CHECK_MSG(false, "pipeline lifecycle violation");
}

FelipClient::FelipClient(const GridAssignment& assignment, uint32_t domain_x,
                         uint32_t domain_y)
    : is_2d_(assignment.is_2d),
      px_(domain_x, assignment.plan.lx),
      py_(assignment.is_2d ? domain_y : 1,
          assignment.is_2d ? assignment.plan.ly : 1) {}

uint64_t FelipClient::ProjectToCell(uint32_t value_x,
                                    uint32_t value_y) const {
  const uint32_t cx = px_.CellOf(value_x);
  if (!is_2d_) return cx;
  return static_cast<uint64_t>(cx) * py_.num_cells() + py_.CellOf(value_y);
}

uint64_t FelipClient::cell_domain() const {
  return static_cast<uint64_t>(px_.num_cells()) * py_.num_cells();
}

FelipPipeline::FelipPipeline(std::vector<AttributeInfo> schema,
                             uint64_t num_users, FelipConfig config)
    : schema_(std::move(schema)), num_users_(num_users),
      config_(std::move(config)) {
  FELIP_CHECK(!schema_.empty());
  FELIP_CHECK(num_users_ > 0);
  FELIP_CHECK(config_.epsilon > 0.0);
  const auto k = static_cast<uint32_t>(schema_.size());

  // Response-matrix convergence: paper recommends < 1/n.
  config_.response_matrix_options.threshold =
      std::min(config_.response_matrix_options.threshold,
               1.0 / static_cast<double>(num_users_));

  // --- Step 1: decide the grid set and the number of groups m. ---
  one_dim_index_.assign(k, -1);
  uint32_t num_one_dim = 0;
  if (k == 1) {
    num_one_dim = 1;
    one_dim_index_[0] = 0;
  } else if (config_.strategy == Strategy::kOhg) {
    for (uint32_t a = 0; a < k; ++a) {
      if (IsNumerical(schema_[a])) one_dim_index_[a] = num_one_dim++;
    }
  }
  const uint64_t num_pairs = k >= 2 ? Choose2(k) : 0;
  const uint64_t m = num_one_dim + num_pairs;
  FELIP_CHECK(m >= 1);

  // Budget division (A1 ablation): every user reports every grid with
  // eps/m, so each grid sees all n reports (optimizer group factor 1).
  const bool divide_users =
      config_.partitioning == PartitioningMode::kDivideUsers;
  per_grid_epsilon_ =
      divide_users ? config_.epsilon
                   : config_.epsilon / static_cast<double>(m);

  const auto selectivity_of = [&](uint32_t attr) {
    if (attr < config_.attribute_selectivity.size()) {
      return config_.attribute_selectivity[attr];
    }
    return config_.default_selectivity;
  };

  grid::OptimizeParams base_params;
  base_params.epsilon = per_grid_epsilon_;
  base_params.n = num_users_;
  base_params.m = divide_users ? m : 1;
  base_params.alpha1 = config_.alpha1;
  base_params.alpha2 = config_.alpha2;
  base_params.allow_grr = config_.allow_grr;
  base_params.allow_olh = config_.allow_olh;
  base_params.allow_oue = config_.allow_oue;
  base_params.allow_pgr = config_.allow_pgr;
  base_params.allow_fldp = config_.allow_fldp;
  base_params.report_budget_bytes = config_.report_budget_bytes;
  base_params.protocol_options = config_.protocol_options();

  // --- Step 2: per-grid size optimization + AFO protocol selection. ---
  // 1-D grids first (matching grids_1d_ order), then pairs in
  // lexicographic order (matching grids_2d_ order).
  for (uint32_t a = 0; a < k; ++a) {
    if (one_dim_index_[a] < 0) continue;
    grid::OptimizeParams params = base_params;
    params.rx = selectivity_of(a);
    const grid::AxisSpec axis{schema_[a].domain, schema_[a].categorical};
    GridAssignment assignment;
    assignment.is_2d = false;
    assignment.attr_x = a;
    assignment.plan = grid::Optimize1D(axis, params);
    assignments_.push_back(assignment);
    grids_1d_.emplace_back(a, Partition1D(schema_[a].domain,
                                          assignment.plan.lx));
  }
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = i + 1; j < k; ++j) {
      grid::OptimizeParams params = base_params;
      params.rx = selectivity_of(i);
      params.ry = selectivity_of(j);
      const grid::AxisSpec x{schema_[i].domain, schema_[i].categorical};
      const grid::AxisSpec y{schema_[j].domain, schema_[j].categorical};
      GridAssignment assignment;
      assignment.is_2d = true;
      assignment.attr_x = i;
      assignment.attr_y = j;
      assignment.plan = grid::Optimize2D(x, y, params);
      assignments_.push_back(assignment);
      grids_2d_.emplace_back(i, j,
                             Partition1D(schema_[i].domain,
                                         assignment.plan.lx),
                             Partition1D(schema_[j].domain,
                                         assignment.plan.ly));
    }
  }
  FELIP_CHECK(assignments_.size() == m);
}

FelipPipeline FelipPipeline::FromEstimatedGrids(
    std::vector<data::AttributeInfo> schema, uint64_t num_users,
    FelipConfig config, std::vector<std::vector<double>> grid_frequencies) {
  FelipPipeline pipeline(std::move(schema), num_users, std::move(config));
  FELIP_CHECK_MSG(grid_frequencies.size() == pipeline.assignments_.size(),
                  "snapshot grid count does not match the planned layout");
  const size_t n1 = pipeline.grids_1d_.size();
  for (size_t g = 0; g < grid_frequencies.size(); ++g) {
    if (g < n1) {
      pipeline.grids_1d_[g].SetFrequencies(std::move(grid_frequencies[g]));
    } else {
      pipeline.grids_2d_[g - n1].SetFrequencies(
          std::move(grid_frequencies[g]));
    }
  }
  // Response matrices are derived state: rebuild rather than persist.
  pipeline.response_matrices_.assign(pipeline.grids_2d_.size(),
                                     post::ResponseMatrix());
  ParallelFor(pipeline.grids_2d_.size(), [&](size_t idx) {
    const Grid2D& g2 = pipeline.grids_2d_[idx];
    pipeline.response_matrices_[idx] = post::ResponseMatrix::Build(
        g2, pipeline.OneDimGrid(g2.attr_x()),
        pipeline.OneDimGrid(g2.attr_y()),
        pipeline.config_.response_matrix_options);
  });
  pipeline.state_ = PipelineState::kQueryable;
  return pipeline;
}

std::vector<std::vector<double>> FelipPipeline::ExportGridFrequencies()
    const {
  ExpectState(PipelineState::kQueryable, "ExportGridFrequencies()");
  std::vector<std::vector<double>> result;
  result.reserve(assignments_.size());
  for (const Grid1D& g : grids_1d_) result.push_back(g.frequencies());
  for (const Grid2D& g : grids_2d_) result.push_back(g.frequencies());
  return result;
}

void FelipPipeline::Collect(const data::Dataset& dataset) {
  obs::ScopedTimer span("felip_core_collect");
  ExpectState(PipelineState::kConfigured, "Collect()");
  FELIP_CHECK(dataset.num_attributes() == schema_.size());
  FELIP_CHECK_MSG(dataset.num_rows() == num_users_,
                  "dataset size must match the planned population");
  for (uint32_t a = 0; a < dataset.num_attributes(); ++a) {
    FELIP_CHECK(dataset.attribute(a).domain == schema_[a].domain);
  }

  // One frequency oracle per grid, at the per-grid budget.
  oracles_.clear();
  for (const GridAssignment& assignment : assignments_) {
    const uint64_t domain =
        static_cast<uint64_t>(assignment.plan.lx) * assignment.plan.ly;
    oracles_.push_back(fo::MakeFrequencyOracle(assignment.plan.protocol,
                                               per_grid_epsilon_, domain,
                                               config_.protocol_options()));
  }

  const size_t n1 = grids_1d_.size();
  const auto cell_of = [&](size_t g, uint64_t row) -> uint64_t {
    const GridAssignment& assignment = assignments_[g];
    if (!assignment.is_2d) {
      return grids_1d_[g].CellOf(dataset.Value(row, assignment.attr_x));
    }
    const Grid2D& grid = grids_2d_[g - n1];
    return grid.CellOf(dataset.Value(row, assignment.attr_x),
                       dataset.Value(row, assignment.attr_y));
  };

  // Perturbation stays a single serial pass (the rng trajectory defines
  // the simulated population and must not depend on thread count); the
  // perturbed reports are buffered per grid and aggregated afterwards via
  // each oracle's sharded parallel path.
  Rng rng(config_.seed);
  const size_t m = assignments_.size();
  uint64_t reports_in = 0;
  if (config_.partitioning == PartitioningMode::kDivideUsers) {
    for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
      const size_t g = static_cast<size_t>(rng.UniformU64(m));
      oracles_[g]->BufferUserValue(cell_of(g, row), rng);
    }
    reports_in = dataset.num_rows();
  } else {
    // Sequential composition: every user reports every grid at eps/m.
    for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
      for (size_t g = 0; g < m; ++g) {
        oracles_[g]->BufferUserValue(cell_of(g, row), rng);
      }
    }
    reports_in = dataset.num_rows() * m;
  }
  {
    obs::ScopedTimer flush_span("felip_core_flush");
    for (auto& oracle : oracles_) {
      oracle->FlushReports(config_.aggregation_threads);
    }
  }
  obs::Registry::Default()
      .GetCounter("felip_core_reports_total")
      .Increment(reports_in);
  // Collect() runs an entire round in one call, so it lands directly on
  // kSealed (conceptually passing through kCollecting).
  state_ = PipelineState::kSealed;
}

void FelipPipeline::BeginIngest() {
  ExpectState(PipelineState::kConfigured, "BeginIngest()");
  // Same oracle construction as Collect(): one per grid, at the per-grid
  // budget, so a networked round aggregates into identical state.
  oracles_.clear();
  for (const GridAssignment& assignment : assignments_) {
    const uint64_t domain =
        static_cast<uint64_t>(assignment.plan.lx) * assignment.plan.ly;
    oracles_.push_back(fo::MakeFrequencyOracle(assignment.plan.protocol,
                                               per_grid_epsilon_, domain,
                                               config_.protocol_options()));
  }
  reports_ingested_ = 0;
  state_ = PipelineState::kCollecting;
}

Status FelipPipeline::IngestGrrReport(uint32_t grid_index, uint64_t report) {
  ExpectState(PipelineState::kCollecting, "IngestGrrReport()");
  if (grid_index >= oracles_.size()) {
    return Status::InvalidArgument("report names a grid that is not planned");
  }
  FELIP_RETURN_IF_ERROR(oracles_[grid_index]->IngestGrrReport(report));
  ++reports_ingested_;
  return Status::Ok();
}

Status FelipPipeline::IngestOlhReport(uint32_t grid_index,
                                      const fo::OlhReport& report) {
  ExpectState(PipelineState::kCollecting, "IngestOlhReport()");
  if (grid_index >= oracles_.size()) {
    return Status::InvalidArgument("report names a grid that is not planned");
  }
  FELIP_RETURN_IF_ERROR(oracles_[grid_index]->IngestOlhReport(report));
  ++reports_ingested_;
  return Status::Ok();
}

Status FelipPipeline::IngestOueReport(uint32_t grid_index,
                                      const std::vector<uint8_t>& bits) {
  ExpectState(PipelineState::kCollecting, "IngestOueReport()");
  if (grid_index >= oracles_.size()) {
    return Status::InvalidArgument("report names a grid that is not planned");
  }
  FELIP_RETURN_IF_ERROR(oracles_[grid_index]->IngestOueReport(bits));
  ++reports_ingested_;
  return Status::Ok();
}

Status FelipPipeline::IngestPgrReport(uint32_t grid_index, uint32_t point) {
  ExpectState(PipelineState::kCollecting, "IngestPgrReport()");
  if (grid_index >= oracles_.size()) {
    return Status::InvalidArgument("report names a grid that is not planned");
  }
  FELIP_RETURN_IF_ERROR(oracles_[grid_index]->IngestPgrReport(point));
  ++reports_ingested_;
  return Status::Ok();
}

Status FelipPipeline::IngestFldpReport(uint32_t grid_index,
                                       uint32_t subset_index,
                                       const std::vector<uint8_t>& bits) {
  ExpectState(PipelineState::kCollecting, "IngestFldpReport()");
  if (grid_index >= oracles_.size()) {
    return Status::InvalidArgument("report names a grid that is not planned");
  }
  FELIP_RETURN_IF_ERROR(
      oracles_[grid_index]->IngestFldpReport(subset_index, bits));
  ++reports_ingested_;
  return Status::Ok();
}

Status FelipPipeline::IngestReport(uint32_t grid_index,
                                   const fo::ReportData& report) {
  ExpectState(PipelineState::kCollecting, "IngestReport()");
  if (grid_index >= oracles_.size()) {
    return Status::InvalidArgument("report names a grid that is not planned");
  }
  FELIP_RETURN_IF_ERROR(oracles_[grid_index]->IngestReport(report));
  ++reports_ingested_;
  return Status::Ok();
}

uint64_t FelipPipeline::min_grid_reports() const {
  if (oracles_.empty()) return 0;
  uint64_t min = std::numeric_limits<uint64_t>::max();
  for (const std::unique_ptr<fo::FrequencyOracle>& oracle : oracles_) {
    const uint64_t n = oracle == nullptr ? 0 : oracle->num_reports();
    min = std::min(min, n);
  }
  return min;
}

Status FelipPipeline::MergeAccumulators(std::vector<fo::OracleState> states,
                                        uint64_t reports_ingested) {
  ExpectState(PipelineState::kCollecting, "MergeAccumulators()");
  if (states.size() != oracles_.size()) {
    return Status::InvalidArgument(
        "accumulator set does not match the planned grid layout");
  }
  uint64_t total = 0;
  for (const fo::OracleState& state : states) total += state.num_reports;
  if (total != reports_ingested) {
    return Status::InvalidArgument(
        "accumulator report counts disagree with the frame total");
  }
  // Merge into exported copies first so every shape check runs before any
  // oracle is touched; RestoreState then re-validates the merged state
  // (protocol, domain, report ranges) exactly like a snapshot load.
  std::vector<fo::OracleState> merged(states.size());
  for (size_t g = 0; g < states.size(); ++g) {
    merged[g] = oracles_[g]->ExportState();
    FELIP_RETURN_IF_ERROR(fo::MergeOracleState(&merged[g], states[g]));
  }
  for (size_t g = 0; g < merged.size(); ++g) {
    FELIP_RETURN_IF_ERROR(oracles_[g]->RestoreState(std::move(merged[g])));
  }
  reports_ingested_ += reports_ingested;
  obs::Registry::Default()
      .GetCounter("felip_core_accumulator_merges_total")
      .Increment();
  return Status::Ok();
}

void FelipPipeline::FinishIngest() {
  ExpectState(PipelineState::kCollecting, "FinishIngest()");
  state_ = PipelineState::kSealed;
  obs::Registry::Default()
      .GetCounter("felip_core_reports_total")
      .Increment(reports_ingested_);
}

void FelipPipeline::Finalize() {
  obs::ScopedTimer span("felip_core_finalize");
  ExpectState(PipelineState::kSealed, "Finalize()");

  // Estimation + per-grid negativity removal.
  const size_t n1 = grids_1d_.size();
  uint64_t cells_estimated = 0;
  {
    obs::ScopedTimer estimate_span("felip_core_estimate");
    for (size_t g = 0; g < assignments_.size(); ++g) {
      // The pipeline machine guarantees the oracles flushed before
      // kSealed, so an estimation failure here is programmer error.
      std::vector<double> freq =
          oracles_[g]->EstimateFrequencies(config_.aggregation_threads)
              .value();
      post::NormalizeFrequencies(&freq, config_.normalization);
      cells_estimated += freq.size();
      if (!assignments_[g].is_2d) {
        grids_1d_[g].SetFrequencies(std::move(freq));
      } else {
        grids_2d_[g - n1].SetFrequencies(std::move(freq));
      }
    }
  }
  oracles_.clear();  // reports are no longer needed
  obs::Registry::Default()
      .GetCounter("felip_core_cells_estimated_total")
      .Increment(cells_estimated);

  // Cross-grid consistency (ends with a negativity pass).
  {
    obs::ScopedTimer post_span("felip_core_post_process");
    post::MakeConsistent(static_cast<uint32_t>(schema_.size()), &grids_1d_,
                         &grids_2d_,
                         {.rounds = config_.consistency_rounds,
                          .normalization = config_.normalization});
  }

  // Response matrices for every pair (Γ includes the 1-D grids under OHG).
  // Pairs are independent, so build them in parallel.
  {
    obs::ScopedTimer rm_span("felip_core_response_matrix");
    response_matrices_.assign(grids_2d_.size(), post::ResponseMatrix());
    ParallelFor(grids_2d_.size(), [&](size_t idx) {
      const Grid2D& g2 = grids_2d_[idx];
      response_matrices_[idx] = post::ResponseMatrix::Build(
          g2, OneDimGrid(g2.attr_x()), OneDimGrid(g2.attr_y()),
          config_.response_matrix_options);
    });
  }
  state_ = PipelineState::kQueryable;
}

size_t FelipPipeline::PairGridIndex(uint32_t i, uint32_t j) const {
  FELIP_CHECK(i < j);
  const auto k = static_cast<uint32_t>(schema_.size());
  FELIP_CHECK(j < k);
  return static_cast<size_t>(PairRank(i, j, k));
}

const Grid1D* FelipPipeline::OneDimGrid(uint32_t attr) const {
  FELIP_CHECK(attr < one_dim_index_.size());
  const int idx = one_dim_index_[attr];
  return idx < 0 ? nullptr : &grids_1d_[static_cast<size_t>(idx)];
}

AxisSelection FelipPipeline::SelectionFor(const query::Query& query,
                                          uint32_t attr) const {
  const query::Predicate* p = query.FindPredicate(attr);
  if (p == nullptr) return AxisSelection::MakeAll(schema_[attr].domain);
  return p->ToSelection();
}

double FelipPipeline::AnswerPair(uint32_t i, uint32_t j,
                                 const AxisSelection& sel_i,
                                 const AxisSelection& sel_j,
                                 PairAnswerPath path,
                                 post::QueryScratch* rm_scratch) const {
  const post::ResponseMatrix& m = response_matrices_[PairGridIndex(i, j)];
  switch (path) {
    case PairAnswerPath::kScan:
      return m.Answer(sel_i, sel_j);
    case PairAnswerPath::kExact:
      return m.AnswerExact(sel_i, sel_j, rm_scratch);
    case PairAnswerPath::kPrefix:
      return m.AnswerPrefix(sel_i, sel_j, rm_scratch);
  }
  FELIP_CHECK_MSG(false, "unreachable");
  return 0.0;
}

double FelipPipeline::AnswerMarginal(uint32_t attr, const AxisSelection& sel,
                                     PairAnswerPath path,
                                     post::QueryScratch* rm_scratch) const {
  const Grid1D* g1 = OneDimGrid(attr);
  if (g1 != nullptr) return g1->Answer(sel);
  // Marginalize the first response matrix containing the attribute.
  FELIP_CHECK_MSG(schema_.size() >= 2, "no grid covers the attribute");
  const uint32_t partner = attr == 0 ? 1 : 0;
  const uint32_t i = std::min(attr, partner);
  const uint32_t j = std::max(attr, partner);
  const AxisSelection all = AxisSelection::MakeAll(schema_[partner].domain);
  return attr < partner ? AnswerPair(i, j, sel, all, path, rm_scratch)
                        : AnswerPair(i, j, all, sel, path, rm_scratch);
}

double FelipPipeline::AnswerQueryImpl(const query::Query& query,
                                      PairAnswerPath path,
                                      QueryScratch* scratch) const {
  const uint32_t lambda = query.dimension();
  if (lambda == 1) {
    const query::Predicate& p = query.predicates()[0];
    return std::clamp(
        AnswerMarginal(p.attr, p.ToSelection(), path, &scratch->rm), 0.0,
        1.0);
  }

  // Per-query-attribute selections (predicates are sorted by attribute).
  std::vector<uint32_t>& attrs = scratch->attrs;
  std::vector<AxisSelection>& selections = scratch->selections;
  attrs.clear();
  selections.clear();
  for (const query::Predicate& p : query.predicates()) {
    attrs.push_back(p.attr);
    selections.push_back(p.ToSelection());
  }

  if (lambda == 2) {
    return std::clamp(AnswerPair(attrs[0], attrs[1], selections[0],
                                 selections[1], path, &scratch->rm),
                      0.0, 1.0);
  }

  // λ >= 3: Algorithm 4 over the associated 2-D answers. The estimator's
  // proportional fit can overshoot [0, 1] by floating-point rounding, so
  // this path clamps like the λ = 1 and λ = 2 paths do.
  std::vector<double>& pair_answers = scratch->pair_answers;
  pair_answers.assign(Choose2(lambda), 0.0);
  for (uint32_t a = 0; a < lambda; ++a) {
    for (uint32_t b = a + 1; b < lambda; ++b) {
      pair_answers[post::PairIndex(a, b, lambda)] = AnswerPair(
          attrs[a], attrs[b], selections[a], selections[b], path,
          &scratch->rm);
    }
  }
  post::LambdaEstimatorOptions options;
  options.threshold = std::min(config_.lambda_threshold,
                               1.0 / static_cast<double>(num_users_));
  if (config_.lambda_quadrant_fit) {
    std::vector<double>& marginals = scratch->marginals;
    marginals.assign(lambda, 0.0);
    for (uint32_t a = 0; a < lambda; ++a) {
      marginals[a] = std::clamp(
          AnswerMarginal(attrs[a], selections[a], path, &scratch->rm), 0.0,
          1.0);
    }
    return std::clamp(post::EstimateLambdaQueryQuadrants(
                          lambda, pair_answers, marginals, options),
                      0.0, 1.0);
  }
  return std::clamp(post::EstimateLambdaQuery(lambda, pair_answers, options),
                    0.0, 1.0);
}

double FelipPipeline::AnswerQuery(const query::Query& query) const {
  obs::ScopedTimer span("felip_core_query");
  static obs::Counter& queries_total =
      obs::Registry::Default().GetCounter("felip_core_queries_total");
  queries_total.Increment();
  ExpectState(PipelineState::kQueryable, "AnswerQuery()");
  if (const auto error = query::ValidateQuery(query, schema_)) {
    FELIP_CHECK_MSG(false, error->c_str());
  }
  QueryScratch scratch;
  return AnswerQueryImpl(query, PairAnswerPath::kExact, &scratch);
}

std::vector<double> FelipPipeline::AnswerQueries(
    std::span<const query::Query> queries,
    const QueryBatchOptions& options) const {
  obs::ScopedTimer span("felip_core_query_batch");
  static obs::Counter& queries_total =
      obs::Registry::Default().GetCounter("felip_core_queries_total");
  static obs::Counter& batches_total =
      obs::Registry::Default().GetCounter("felip_core_query_batches_total");
  static obs::Histogram& batch_size = obs::Registry::Default().GetHistogram(
      "felip_core_query_batch_size",
      {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0});
  queries_total.Increment(queries.size());
  batches_total.Increment();
  batch_size.Observe(static_cast<double>(queries.size()));

  ExpectState(PipelineState::kQueryable, "AnswerQueries()");
  for (const query::Query& q : queries) {
    if (const auto error = query::ValidateQuery(q, schema_)) {
      FELIP_CHECK_MSG(false, error->c_str());
    }
  }

  std::vector<double> answers(queries.size());
  if (queries.empty()) return answers;
  unsigned threads = options.threads != 0
                         ? options.threads
                         : std::thread::hardware_concurrency();
  threads = std::max(1u, threads);
  // One contiguous shard per worker, one scratch per shard; every query's
  // arithmetic is independent of the sharding, so answers never depend on
  // the thread count.
  const size_t num_shards =
      std::min<size_t>(queries.size(), static_cast<size_t>(threads));
  std::vector<QueryScratch> scratch(num_shards);
  ParallelFor(
      num_shards,
      [&](size_t s) {
        const auto [begin, end] =
            SliceRange(queries.size(), s, num_shards);
        for (size_t q = begin; q < end; ++q) {
          answers[q] =
              AnswerQueryImpl(queries[q], options.pair_path, &scratch[s]);
        }
      },
      static_cast<unsigned>(num_shards));
  return answers;
}

std::vector<double> FelipPipeline::EstimateMarginal(uint32_t attr) const {
  ExpectState(PipelineState::kQueryable, "EstimateMarginal()");
  FELIP_CHECK(attr < schema_.size());
  const uint32_t domain = schema_[attr].domain;
  std::vector<double> marginal(domain, 0.0);
  if (const Grid1D* g1 = OneDimGrid(attr); g1 != nullptr) {
    // Spread each cell's mass uniformly over its values.
    for (uint32_t c = 0; c < g1->num_cells(); ++c) {
      const double density =
          g1->frequencies()[c] /
          static_cast<double>(g1->partition().CellSize(c));
      for (uint32_t v = g1->partition().CellBegin(c);
           v < g1->partition().CellEnd(c); ++v) {
        marginal[v] = density;
      }
    }
    return marginal;
  }
  FELIP_CHECK_MSG(schema_.size() >= 2, "no grid covers the attribute");
  const uint32_t partner = attr == 0 ? 1 : 0;
  const uint32_t i = std::min(attr, partner);
  const uint32_t j = std::max(attr, partner);
  const std::vector<double> joint =
      response_matrices_[PairGridIndex(i, j)].ToDense();
  const uint32_t dj = schema_[j].domain;
  for (uint32_t x = 0; x < schema_[i].domain; ++x) {
    for (uint32_t y = 0; y < dj; ++y) {
      marginal[attr == i ? x : y] += joint[static_cast<size_t>(x) * dj + y];
    }
  }
  return marginal;
}

std::vector<double> FelipPipeline::EstimateJoint(uint32_t i,
                                                 uint32_t j) const {
  ExpectState(PipelineState::kQueryable, "EstimateJoint()");
  FELIP_CHECK(i < schema_.size() && j < schema_.size());
  FELIP_CHECK_MSG(i != j, "joint needs two distinct attributes");
  if (i < j) return response_matrices_[PairGridIndex(i, j)].ToDense();
  // Transpose the (j, i) matrix into (i, j) orientation.
  const std::vector<double> other =
      response_matrices_[PairGridIndex(j, i)].ToDense();
  const uint32_t di = schema_[i].domain;
  const uint32_t dj = schema_[j].domain;
  std::vector<double> joint(static_cast<size_t>(di) * dj);
  for (uint32_t a = 0; a < dj; ++a) {
    for (uint32_t b = 0; b < di; ++b) {
      joint[static_cast<size_t>(b) * dj + a] =
          other[static_cast<size_t>(a) * di + b];
    }
  }
  return joint;
}

FelipPipeline RunFelip(const data::Dataset& dataset, FelipConfig config) {
  FelipPipeline pipeline(dataset.attributes(), dataset.num_rows(),
                         std::move(config));
  pipeline.Collect(dataset);
  pipeline.Finalize();
  return pipeline;
}

uint64_t GridFrequencyDigest(const FelipPipeline& pipeline) {
  uint64_t digest = 0;
  for (const std::vector<double>& grid : pipeline.ExportGridFrequencies()) {
    digest =
        XxHash64Bytes(grid.data(), grid.size() * sizeof(double), digest);
  }
  return digest;
}

}  // namespace felip::core
