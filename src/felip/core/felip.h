// FELIP end-to-end pipeline (Section 5).
//
// The aggregator plans one grid per attribute pair (plus one 1-D grid per
// numerical attribute under OHG), divides the population into one group per
// grid, and sends each user their group's grid configuration. Each user
// projects their record onto the grid, perturbs the cell index with the
// protocol AFO selected for that grid, and reports it. The aggregator
// estimates per-cell frequencies, post-processes (negativity removal +
// cross-grid consistency), builds per-pair response matrices, and answers
// λ-dimensional queries by fitting the associated 2-D answers.
//
// FelipPipeline simulates the whole round trip in-process; FelipClient is
// the device-side piece for real deployments.

#ifndef FELIP_CORE_FELIP_H_
#define FELIP_CORE_FELIP_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "felip/common/rng.h"
#include "felip/common/status.h"
#include "felip/data/dataset.h"
#include "felip/fo/frequency_oracle.h"
#include "felip/fo/registry.h"
#include "felip/grid/grid.h"
#include "felip/grid/optimizer.h"
#include "felip/post/norm_sub.h"
#include "felip/post/response_matrix.h"
#include "felip/query/query.h"

namespace felip::snapshot {
class PipelineCodec;  // serializes pipeline state; see felip/snapshot
}  // namespace felip::snapshot

namespace felip::core {

// Lifecycle of a FelipPipeline (see DESIGN.md). Exactly one state machine
// covers both collection paths:
//
//   kConfigured --Collect()-----------------------------+
//        |                                              |
//        +--BeginIngest()--> kCollecting --FinishIngest()--> kSealed
//                                                            |
//                                          Finalize()        v
//                                                        kQueryable
//
// Collect() simulates an entire round in one call, so it moves straight
// from kConfigured to kSealed. FromEstimatedGrids and snapshot loads enter
// mid-machine: a finalized snapshot restores kQueryable, a mid-round one
// restores kCollecting. Transitions are enforced with FELIP_CHECK — a
// caller driving the machine out of order is programmer error, not a
// recoverable condition.
enum class PipelineState : uint8_t {
  kConfigured = 0,  // grids planned; no reports yet
  kCollecting = 1,  // oracles live; accepting ingested reports
  kSealed = 2,      // round closed; oracle accumulators final
  kQueryable = 3,   // estimated + post-processed; queries allowed
};

// Stable lowercase name of `state` ("configured", "collecting", ...).
std::string_view PipelineStateName(PipelineState state);

// Options for FelipPipeline::SaveSnapshot.
struct SnapshotOptions {
  // Also persist the post-processed response matrices (kQueryable
  // snapshots only). Off by default: they are derived state and the
  // rebuild on load is deterministic, but persisting them trades snapshot
  // bytes for skipping the IPF fit on warm restart.
  bool include_response_matrices = false;
};

// OUG answers every query from the 2-D grids alone under the within-cell
// uniformity assumption; OHG additionally collects 1-D grids for numerical
// attributes and refines pair estimates through response matrices.
enum class Strategy { kOug, kOhg };

// How the privacy budget is shared across the m grids. FELIP always divides
// users (Theorem 5.1); kDivideBudget is implemented for the A1 ablation.
enum class PartitioningMode { kDivideUsers, kDivideBudget };

struct FelipConfig {
  Strategy strategy = Strategy::kOhg;
  PartitioningMode partitioning = PartitioningMode::kDivideUsers;
  double epsilon = 1.0;
  double alpha1 = 0.7;  // 1-D non-uniformity constant
  double alpha2 = 0.03; // 2-D non-uniformity constant

  // The aggregator's selectivity prior (Section 5.2): the expected fraction
  // of each attribute's domain a query selects. `attribute_selectivity`
  // overrides the default per attribute when non-empty.
  double default_selectivity = 0.5;
  std::vector<double> attribute_selectivity;

  // Protocols AFO may pick per grid. The paper's OUG-OLH / OHG-OLH
  // variants set allow_grr = false. PGR and FLDP are the
  // communication-conscious extension protocols (fo/pgr.h, fo/fldp.h);
  // off by default for paper fidelity.
  bool allow_grr = true;
  bool allow_olh = true;
  bool allow_oue = false;
  bool allow_pgr = false;
  bool allow_fldp = false;

  // Per-report communication budget in wire-body bytes AFO plans under;
  // 0 = unconstrained (pure error minimization).
  uint64_t report_budget_bytes = 0;

  fo::OlhOptions olh_options = {.seed_pool_size = 4096};
  fo::PgrOptions pgr_options;
  fo::FldpOptions fldp_options;

  // The per-protocol options bundle the registry-driven layers (planning,
  // oracle construction, wire configs) consume.
  fo::ProtocolOptions protocol_options() const {
    fo::ProtocolOptions options;
    options.olh = olh_options;
    options.pgr = pgr_options;
    options.fldp = fldp_options;
    return options;
  }

  // Sets the allow flag for `protocol` — the bridge from registry-resolved
  // protocols (e.g. a --protocols=olh,pgr flag) to the candidate set.
  void SetProtocolAllowed(fo::Protocol protocol, bool allowed);
  bool ProtocolAllowed(fo::Protocol protocol) const;

  int consistency_rounds = 3;
  // Negativity-removal variant applied after estimation and between
  // consistency rounds (CALM's design dimension; ablation abl7).
  post::Normalization normalization = post::Normalization::kNormSub;
  post::ResponseMatrixOptions response_matrix_options;
  double lambda_threshold = 1e-7;  // Algorithm 4 convergence
  // Extension: fit all four sign-quadrants per pair (proper IPF over
  // pairwise marginals) instead of the paper's positive-positive-only
  // update. Off by default for paper fidelity; see
  // post::EstimateLambdaQueryQuadrants.
  bool lambda_quadrant_fit = false;

  // Threads for the sharded report-aggregation and estimation paths
  // (0 = hardware concurrency, 1 = serial). Shard boundaries are fixed and
  // reductions ordered, so estimates are bit-identical for every setting;
  // see docs/aggregation.md.
  unsigned aggregation_threads = 0;

  uint64_t seed = 1;  // drives group assignment and perturbation
};

// How the batch query engine answers the 2-D pair selections a query
// decomposes into (see docs/query_engine.md):
//   * kScan — the reference per-query scan over every refined block,
//     allocating per call. Kept as the baseline the fast paths are pinned
//     against (tests) and measured against (perf_query_engine).
//   * kExact — covered-rectangle scan with per-thread scratch; identical
//     floating-point operation sequence to kScan, so answers are
//     bit-identical for every selection type. The default.
//   * kPrefix — summed-area-table corner lookups for range x range pairs
//     (falls back to kExact for IN sets); agrees with kScan to ~1e-12.
enum class PairAnswerPath { kScan, kExact, kPrefix };

struct QueryBatchOptions {
  PairAnswerPath pair_path = PairAnswerPath::kExact;
  // Worker threads (0 = hardware concurrency, 1 = serial). Each query's
  // arithmetic is independent of sharding, so answers are bit-identical
  // for every setting.
  unsigned threads = 0;
};

// One planned grid: which attributes it covers and the optimizer's output.
struct GridAssignment {
  bool is_2d = false;
  uint32_t attr_x = 0;
  uint32_t attr_y = 0;  // unused for 1-D grids
  grid::GridPlan plan;
};

// Device-side FELIP: rebuilds the assigned grid's cell layout from the
// (public) grid configuration and projects the user's private values onto a
// cell index. The cell index is then perturbed with the protocol the plan
// names — GrrClient / OlhClient / OueClient from felip/fo — before leaving
// the device; only the perturbed report is sent to the aggregator.
class FelipClient {
 public:
  // `domain_x` / `domain_y` are the domains of the assigned attributes
  // (`domain_y` is ignored for 1-D assignments).
  FelipClient(const GridAssignment& assignment, uint32_t domain_x,
              uint32_t domain_y = 1);

  // Cell index of the user's record values; `value_y` is ignored for 1-D
  // grids. This is the value to feed the frequency-oracle client.
  uint64_t ProjectToCell(uint32_t value_x, uint32_t value_y = 0) const;

  // The cell domain the frequency oracle perturbs over (lx * ly).
  uint64_t cell_domain() const;

  const grid::Partition1D& px() const { return px_; }
  const grid::Partition1D& py() const { return py_; }
  bool is_2d() const { return is_2d_; }

 private:
  bool is_2d_;
  grid::Partition1D px_;
  grid::Partition1D py_;
};

// The full simulation pipeline (aggregator + simulated user population).
class FelipPipeline {
 public:
  // Plans grids for `schema` assuming `num_users` participants.
  FelipPipeline(std::vector<data::AttributeInfo> schema, uint64_t num_users,
                FelipConfig config);

  // Reconstructs a finalized pipeline from previously estimated,
  // post-processed grid frequencies (e.g. a loaded snapshot). The grids
  // must match this configuration's planned layout; response matrices are
  // rebuilt. Used by wire::LoadSnapshot.
  static FelipPipeline FromEstimatedGrids(
      std::vector<data::AttributeInfo> schema, uint64_t num_users,
      FelipConfig config, std::vector<std::vector<double>> grid_frequencies);

  // Estimated per-grid frequencies in assignment order (1-D grids first).
  // Requires Finalize(); this is what a snapshot persists.
  std::vector<std::vector<double>> ExportGridFrequencies() const;

  // Simulates the LDP collection round: every dataset row is one user.
  // The dataset must match the schema and have exactly `num_users` rows.
  void Collect(const data::Dataset& dataset);

  // Estimation + post-processing + response matrices. Requires Collect().
  void Finalize();

  // --- Networked ingestion (felip/svc) ---
  //
  // Alternative to Collect() for deployments where already-perturbed
  // reports arrive over a transport instead of being simulated in-process.
  // BeginIngest() builds the per-grid oracles at the per-grid budget
  // (kConfigured -> kCollecting); Ingest*Report() validates one report
  // against `grid_index`'s planned protocol and domain, returning
  // kInvalidArgument on any out-of-range or mismatched input (network
  // bytes are untrusted — never fatal); FinishIngest() closes the round
  // (-> kSealed) so Finalize() can run. Aggregation is integer-count
  // based, so the estimates depend only on the multiset of accepted
  // reports, never on arrival order or batching.
  void BeginIngest();
  Status IngestGrrReport(uint32_t grid_index, uint64_t report);
  Status IngestOlhReport(uint32_t grid_index, const fo::OlhReport& report);
  Status IngestOueReport(uint32_t grid_index,
                         const std::vector<uint8_t>& bits);
  Status IngestPgrReport(uint32_t grid_index, uint32_t point);
  Status IngestFldpReport(uint32_t grid_index, uint32_t subset_index,
                          const std::vector<uint8_t>& bits);
  // Protocol-tagged entry point: validates the grid index and hands the
  // report to that grid's oracle, which accepts only its own protocol.
  // Callers (sinks, the replay engine) never branch on the protocol.
  Status IngestReport(uint32_t grid_index, const fo::ReportData& report);
  void FinishIngest();
  uint64_t reports_ingested() const { return reports_ingested_; }

  // Smallest per-grid report count across the live oracles, or 0 before
  // they exist (kConfigured). Estimation debiases by each grid's own n,
  // so a round is only sealable once every grid has at least one report;
  // clock-driven epoch cuts poll this before rotating.
  uint64_t min_grid_reports() const;

  // --- Distributed aggregation (felip/dist) ---
  //
  // Folds one shard's per-grid accumulators into this pipeline's live
  // oracles. `states` must carry one entry per planned grid in assignment
  // order, and `reports_ingested` must equal the summed report counts of
  // those entries — the cross-check every accumulator frame carries.
  // Requires kCollecting (BeginIngest first). Because aggregation is
  // integer-count based, merging N shards in any order is bit-identical
  // to ingesting the union of their report multisets directly.
  //
  // Shard state arrives over the network, so shape/range violations
  // return kInvalidArgument instead of aborting; validation runs for all
  // grids before any oracle is mutated, but a RestoreState failure after
  // that point (theoretically unreachable for states that passed the
  // shape checks) leaves the pipeline partially merged — callers must
  // discard the round on any non-OK status.
  Status MergeAccumulators(std::vector<fo::OracleState> states,
                           uint64_t reports_ingested);

  // --- Crash-safe persistence (felip/snapshot) ---
  //
  // Declared here but defined in the felip_snapshot library so core never
  // depends on the snapshot format; linking felip::felip (or
  // felip_snapshot) provides them.
  //
  // SaveSnapshot atomically writes the pipeline's full state — config,
  // schema, and either live oracle accumulators (kCollecting / kSealed)
  // or post-processed grid frequencies (kQueryable) — to `path`.
  // LoadSnapshot verifies and decodes `path` and reconstructs a pipeline
  // in the state the snapshot captured; restoring a mid-round snapshot
  // and continuing ingestion is bit-identical to never having stopped.
  Status SaveSnapshot(const std::string& path,
                      const SnapshotOptions& options = {}) const;
  static StatusOr<FelipPipeline> LoadSnapshot(const std::string& path);

  // The privacy budget each grid's oracle runs at (epsilon, or epsilon/m
  // when dividing budget). Device-side code needs this to construct
  // matching frequency-oracle clients.
  double per_grid_epsilon() const { return per_grid_epsilon_; }

  // Estimated fractional answer of a λ-dimensional query, in [0, 1].
  // Predicates must be within the schema's domains (ValidateQuery) —
  // out-of-domain predicates are programmer error in-process and fatal;
  // the networked query service rejects them with an error response
  // instead. Requires Finalize().
  double AnswerQuery(const query::Query& query) const;

  // Batch variant: answers every query, sharding the batch over up to
  // `options.threads` workers with one reusable scratch per worker (no
  // per-query allocation). answers[i] is bit-identical to
  // AnswerQuery(queries[i]) under the default kExact path. Requires
  // Finalize().
  std::vector<double> AnswerQueries(std::span<const query::Query> queries,
                                    const QueryBatchOptions& options = {})
      const;

  // Post-processed marginal distribution of `attr` over its full domain
  // (length = domain, non-negative, sums to ~1). Uses the attribute's 1-D
  // grid under OHG, else the refined pair response matrix. Requires
  // Finalize().
  std::vector<double> EstimateMarginal(uint32_t attr) const;

  // Refined joint distribution of the attribute pair (i, j), i != j, as a
  // dense d_i x d_j row-major matrix. Requires Finalize().
  std::vector<double> EstimateJoint(uint32_t i, uint32_t j) const;

  // --- Introspection (examples, benches, tests) ---
  const std::vector<data::AttributeInfo>& schema() const { return schema_; }
  const FelipConfig& config() const { return config_; }
  uint64_t num_users() const { return num_users_; }
  const std::vector<GridAssignment>& assignments() const {
    return assignments_;
  }
  uint64_t num_groups() const { return assignments_.size(); }
  const std::vector<grid::Grid1D>& grids_1d() const { return grids_1d_; }
  const std::vector<grid::Grid2D>& grids_2d() const { return grids_2d_; }
  PipelineState state() const { return state_; }
  // Deprecated shim over state(); prefer state() == kQueryable.
  bool finalized() const { return state_ == PipelineState::kQueryable; }

 private:
  friend class felip::snapshot::PipelineCodec;

  // Asserts the machine is in `expected` before an operation named `op`.
  void ExpectState(PipelineState expected, const char* op) const;
  // Per-worker workspace of the query engine: the response-matrix
  // coverage buffers plus the per-query decomposition vectors, all reused
  // across every query a worker answers.
  struct QueryScratch {
    post::QueryScratch rm;
    std::vector<uint32_t> attrs;
    std::vector<grid::AxisSelection> selections;
    std::vector<double> pair_answers;
    std::vector<double> marginals;
  };

  // Index of the 2-D grid for pair (i, j), i < j.
  size_t PairGridIndex(uint32_t i, uint32_t j) const;
  // Pointer to the 1-D grid of `attr`, or nullptr.
  const grid::Grid1D* OneDimGrid(uint32_t attr) const;
  // Per-axis selection for `attr` in `query` (whole domain when absent).
  grid::AxisSelection SelectionFor(const query::Query& query,
                                   uint32_t attr) const;
  // Estimated answer of the 2-D query restricted to pair (i, j), i < j.
  double AnswerPair(uint32_t i, uint32_t j, const grid::AxisSelection& sel_i,
                    const grid::AxisSelection& sel_j, PairAnswerPath path,
                    post::QueryScratch* rm_scratch) const;
  double AnswerMarginal(uint32_t attr, const grid::AxisSelection& sel,
                        PairAnswerPath path,
                        post::QueryScratch* rm_scratch) const;
  // Shared answering core of AnswerQuery and AnswerQueries; validation
  // and obs accounting happen in the public entry points.
  double AnswerQueryImpl(const query::Query& query, PairAnswerPath path,
                         QueryScratch* scratch) const;

  std::vector<data::AttributeInfo> schema_;
  uint64_t num_users_;
  FelipConfig config_;
  double per_grid_epsilon_;  // epsilon, or epsilon/m when dividing budget

  std::vector<GridAssignment> assignments_;
  std::vector<grid::Grid1D> grids_1d_;
  std::vector<grid::Grid2D> grids_2d_;
  // grid index (into assignments_) -> oracle; built lazily at Collect.
  std::vector<std::unique_ptr<fo::FrequencyOracle>> oracles_;
  // attr -> index into grids_1d_, or -1.
  std::vector<int> one_dim_index_;
  // pair order index -> index into grids_2d_ (identity, kept for clarity).
  std::vector<post::ResponseMatrix> response_matrices_;
  PipelineState state_ = PipelineState::kConfigured;
  uint64_t reports_ingested_ = 0;
};

// Convenience: run plan + collect + finalize in one call.
FelipPipeline RunFelip(const data::Dataset& dataset, FelipConfig config);

// Chained xxHash64 over every exported grid frequency, in assignment
// order. This is THE fingerprint of a finalized pipeline's estimates:
// felip_server prints it after a live round and felip_replay prints it
// after replaying a report log, so replay-vs-live (and resumed-vs-
// uninterrupted) runs can be compared bit for bit. Requires kQueryable.
uint64_t GridFrequencyDigest(const FelipPipeline& pipeline);

}  // namespace felip::core

#endif  // FELIP_CORE_FELIP_H_
