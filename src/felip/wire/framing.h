// Shared binary framing primitives.
//
// Every durable or networked FELIP artifact — wire messages, ack frames,
// pipeline snapshots — is built from the same three ingredients: a
// little-endian primitive writer/reader over a byte vector, length-prefixed
// variable-size fields, and an xxHash64 seal so truncation and corruption
// are detected instead of silently mis-decoded. This header is that
// toolkit; the wire message formats (felip/wire/wire.h) and the snapshot
// section format (felip/snapshot/format.h) are both expressed with it.
//
// Readers never abort: out-of-bounds reads return false and leave the
// output untouched, because framed bytes come from untrusted peers or
// possibly-corrupt files.

#ifndef FELIP_WIRE_FRAMING_H_
#define FELIP_WIRE_FRAMING_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "felip/common/hash.h"

namespace felip::wire {

// Little-endian primitive writer over a byte vector.
class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = out_->size();
    out_->resize(offset + sizeof(T));
    std::memcpy(out_->data() + offset, &value, sizeof(T));
  }

  void PutBytes(const uint8_t* data, size_t len) {
    out_->insert(out_->end(), data, data + len);
  }

 private:
  std::vector<uint8_t>* out_;
};

// Bounds-checked little-endian reader.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& in) : in_(in) {}

  template <typename T>
  bool Get(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > in_.size()) return false;
    std::memcpy(value, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool GetBytes(uint8_t* data, size_t len) {
    if (pos_ + len > in_.size()) return false;
    std::memcpy(data, in_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool Skip(size_t len) {
    if (pos_ + len > in_.size()) return false;
    pos_ += len;
    return true;
  }

  // Bytes at the current position (valid for remaining() bytes).
  const uint8_t* cursor() const { return in_.data() + pos_; }

  size_t position() const { return pos_; }
  size_t remaining() const { return in_.size() - pos_; }

 private:
  const std::vector<uint8_t>& in_;
  size_t pos_ = 0;
};

// Appends the salted xxHash64 of everything in `buffer` so far.
inline void SealChecksum(std::vector<uint8_t>* buffer, uint64_t salt) {
  const uint64_t checksum =
      XxHash64Bytes(buffer->data(), buffer->size(), salt);
  Writer w(buffer);
  w.Put<uint64_t>(checksum);
}

// Verifies a SealChecksum trailer over `buffer`. False when the buffer is
// too short to carry one or the recomputed hash disagrees.
inline bool CheckSealedChecksum(const std::vector<uint8_t>& buffer,
                                uint64_t salt) {
  if (buffer.size() < sizeof(uint64_t)) return false;
  const size_t body = buffer.size() - sizeof(uint64_t);
  uint64_t stored = 0;
  std::memcpy(&stored, buffer.data() + body, sizeof(stored));
  return XxHash64Bytes(buffer.data(), body, salt) == stored;
}

}  // namespace felip::wire

#endif  // FELIP_WIRE_FRAMING_H_
