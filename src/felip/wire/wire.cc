#include "felip/wire/wire.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "felip/common/check.h"
#include "felip/common/hash.h"
#include "felip/common/parallel.h"
#include "felip/fo/registry.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"
#include "felip/wire/framing.h"

namespace felip::wire {

namespace {

enum class MessageKind : uint8_t {
  kGridConfig = 1,
  kReport = 2,
  kReportBatch = 3,
  kSnapshot = 4,
  kQueryBatch = 5,
  kQueryResponse = 6,
  kAccumulatorPull = 7,
  kAccumulatorFrame = 8,
  kWindowedQuery = 9,
};

void WriteHeader(Writer& w, MessageKind kind) {
  w.Put<uint32_t>(kMagic);
  w.Put<uint8_t>(kVersion);
  w.Put<uint8_t>(static_cast<uint8_t>(kind));
}

// Verifies magic/version/kind and the trailing checksum; on success returns
// the payload end (the checksum trailer stripped from the logical payload
// length).
std::optional<size_t> ValidateEnvelope(const std::vector<uint8_t>& buffer,
                                       MessageKind expected_kind) {
  constexpr size_t kHeader = 4 + 1 + 1;
  constexpr size_t kTrailer = 8;
  if (buffer.size() < kHeader + kTrailer) return std::nullopt;
  if (!CheckSealedChecksum(buffer, kChecksumSalt)) return std::nullopt;
  const size_t payload_end = buffer.size() - kTrailer;
  uint32_t magic = 0;
  std::memcpy(&magic, buffer.data(), sizeof(magic));
  if (magic != kMagic) return std::nullopt;
  if (buffer[4] != kVersion) return std::nullopt;
  if (buffer[5] != static_cast<uint8_t>(expected_kind)) return std::nullopt;
  return payload_end;
}

// Per-protocol received-report byte counters
// (felip_fo_report_bytes_total_<protocol>), indexed by protocol byte and
// cached once per process. Incremented by the decode pass only, so every
// accepted report is counted exactly once even under the two-pass sharded
// decoder. The measured span is the protocol body after the grid-index/
// protocol header, so the counter agrees with ProtocolTraits::report_bytes
// — the per-report cost AFO budgets against.
obs::Counter& ReportBytesCounter(fo::Protocol protocol) {
  static std::array<obs::Counter*, fo::kNumProtocols> counters = [] {
    std::array<obs::Counter*, fo::kNumProtocols> c{};
    for (const fo::ProtocolTraits& traits : fo::AllProtocolTraits()) {
      std::string name = "felip_fo_report_bytes_total_";
      for (const char ch : traits.name) {
        name.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
      }
      c[static_cast<size_t>(traits.protocol)] =
          &obs::Registry::Default().GetCounter(name);
    }
    return c;
  }();
  return *counters[static_cast<size_t>(protocol)];
}

// Wire bytes of the query-response status. Part of the format: the
// StatusCode enum's numeric values are an in-memory detail and never
// touch the wire.
constexpr uint8_t kQueryStatusOk = 1;
constexpr uint8_t kQueryStatusInvalid = 2;
constexpr uint8_t kQueryStatusNotReady = 3;

uint8_t QueryStatusToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return kQueryStatusOk;
    case StatusCode::kInvalidArgument:
      return kQueryStatusInvalid;
    case StatusCode::kFailedPrecondition:
      return kQueryStatusNotReady;
    default:
      FELIP_CHECK_MSG(false, "status code not representable on the wire");
      return 0;
  }
}

std::optional<StatusCode> QueryStatusFromWire(uint8_t byte) {
  switch (byte) {
    case kQueryStatusOk:
      return StatusCode::kOk;
    case kQueryStatusInvalid:
      return StatusCode::kInvalidArgument;
    case kQueryStatusNotReady:
      return StatusCode::kFailedPrecondition;
    default:
      return std::nullopt;
  }
}

// The report codec frames whichever ReportData fields the protocol's
// ReportWire shape (fo/registry.h) names — new protocols reuse a shape or
// add one here; nothing in this file enumerates protocols.
void EncodeReportBody(Writer& w, const ReportMessage& m) {
  w.Put<uint32_t>(m.grid_index);
  w.Put<uint8_t>(static_cast<uint8_t>(m.protocol));
  switch (fo::GetTraits(m.protocol).wire) {
    case fo::ReportWire::kValue64:
      w.Put<uint64_t>(m.grr_report);
      break;
    case fo::ReportWire::kOlhTriple:
      w.Put<uint64_t>(m.olh.seed);
      w.Put<uint32_t>(m.olh.hashed_report);
      w.Put<uint32_t>(m.olh.seed_index);
      break;
    case fo::ReportWire::kBitVector:
      w.Put<uint32_t>(static_cast<uint32_t>(m.oue_bits.size()));
      w.PutBytes(m.oue_bits.data(), m.oue_bits.size());
      break;
    case fo::ReportWire::kValue32:
      w.Put<uint32_t>(m.pgr_point);
      break;
    case fo::ReportWire::kIndexedBits:
      w.Put<uint32_t>(m.fldp_subset_index);
      w.Put<uint32_t>(static_cast<uint32_t>(m.oue_bits.size()));
      w.PutBytes(m.oue_bits.data(), m.oue_bits.size());
      break;
  }
}

// Reads a length-prefixed bit vector into `bits`, rejecting absurd lengths
// and non-bit bytes (shared by the kBitVector and kIndexedBits shapes).
bool DecodeBitVector(Reader& r, std::vector<uint8_t>* bits) {
  uint32_t len = 0;
  if (!r.Get(&len)) return false;
  if (len > r.remaining()) return false;  // reject absurd lengths early
  bits->resize(len);
  if (!r.GetBytes(bits->data(), len)) return false;
  for (const uint8_t b : *bits) {
    if (b > 1) return false;
  }
  return true;
}

bool DecodeReportBody(Reader& r, ReportMessage* m) {
  uint8_t protocol = 0;
  if (!r.Get(&m->grid_index) || !r.Get(&protocol)) return false;
  if (!fo::KnownProtocolByte(protocol)) return false;
  m->protocol = static_cast<fo::Protocol>(protocol);
  const size_t body_start = r.position();
  bool ok = false;
  switch (fo::GetTraits(m->protocol).wire) {
    case fo::ReportWire::kValue64:
      ok = r.Get(&m->grr_report);
      break;
    case fo::ReportWire::kOlhTriple:
      ok = r.Get(&m->olh.seed) && r.Get(&m->olh.hashed_report) &&
           r.Get(&m->olh.seed_index);
      break;
    case fo::ReportWire::kBitVector:
      ok = DecodeBitVector(r, &m->oue_bits);
      break;
    case fo::ReportWire::kValue32:
      ok = r.Get(&m->pgr_point);
      break;
    case fo::ReportWire::kIndexedBits:
      ok = r.Get(&m->fldp_subset_index) && DecodeBitVector(r, &m->oue_bits);
      break;
  }
  if (ok) ReportBytesCounter(m->protocol).Increment(r.position() - body_start);
  return ok;
}

// Validates one report record's structure without materializing it: the
// index pass of the sharded decoder. Must accept exactly the inputs
// DecodeReportBody accepts (including the bit-value checks) so the decode
// pass cannot fail after this pass succeeds.
bool SkipReportBody(Reader& r) {
  uint32_t grid_index = 0;
  uint8_t protocol = 0;
  if (!r.Get(&grid_index) || !r.Get(&protocol)) return false;
  if (!fo::KnownProtocolByte(protocol)) return false;
  auto skip_bit_vector = [&r]() -> bool {
    uint32_t len = 0;
    if (!r.Get(&len)) return false;
    if (len > r.remaining()) return false;
    const uint8_t* bits = r.cursor();
    for (uint32_t i = 0; i < len; ++i) {
      if (bits[i] > 1) return false;
    }
    return r.Skip(len);
  };
  switch (fo::GetTraits(static_cast<fo::Protocol>(protocol)).wire) {
    case fo::ReportWire::kValue64:
      return r.Skip(sizeof(uint64_t));
    case fo::ReportWire::kOlhTriple:
      return r.Skip(sizeof(uint64_t) + sizeof(uint32_t) + sizeof(uint32_t));
    case fo::ReportWire::kBitVector:
      return skip_bit_vector();
    case fo::ReportWire::kValue32:
      return r.Skip(sizeof(uint32_t));
    case fo::ReportWire::kIndexedBits:
      return r.Skip(sizeof(uint32_t)) && skip_bit_vector();
  }
  return false;
}

// Decode-path instruments, cached once per process. Every public decoder
// counts the bytes it inspected; malformed inputs are counted rather than
// being fatal, so untrusted-input rejection stays observable.
struct DecodeCounters {
  obs::Counter& bytes;
  obs::Counter& malformed;
  obs::Counter& batches;
  obs::Counter& reports;
  obs::Counter& query_batches;
  obs::Counter& queries;
};

DecodeCounters& Counters() {
  static DecodeCounters counters{
      obs::Registry::Default().GetCounter("felip_wire_decode_bytes_total"),
      obs::Registry::Default().GetCounter("felip_wire_malformed_total"),
      obs::Registry::Default().GetCounter("felip_wire_report_batches_total"),
      obs::Registry::Default().GetCounter("felip_wire_reports_decoded_total"),
      obs::Registry::Default().GetCounter(
          "felip_wire_query_batches_total"),
      obs::Registry::Default().GetCounter(
          "felip_wire_queries_decoded_total")};
  return counters;
}

// All decode failures collapse to one retryable-false code; the message
// names the frame kind so service logs stay diagnosable.
Status Malformed(const char* what) { return Status::InvalidArgument(what); }

std::optional<size_t> DecodeReportBatchShardedImpl(
    const std::vector<uint8_t>& buffer,
    const std::function<void(size_t shard_index, size_t report_index,
                             ReportMessage&& message)>& sink,
    unsigned thread_count) {
  const auto payload_end =
      ValidateEnvelope(buffer, MessageKind::kReportBatch);
  if (!payload_end.has_value()) return std::nullopt;
  Reader r(buffer);
  if (!r.Skip(6)) return std::nullopt;
  uint32_t count = 0;
  if (!r.Get(&count)) return std::nullopt;

  // An adversarial count cannot exceed what the remaining payload could
  // possibly hold (every record is at least grid(4) + protocol(1) +
  // empty-OUE length(4) = 9 bytes); reject before reserving anything
  // proportional to it.
  constexpr uint64_t kMinReportBytes = 4 + 1 + 4;
  if (static_cast<uint64_t>(count) * kMinReportBytes >
      *payload_end - r.position()) {
    return std::nullopt;
  }

  // Index pass: record each report's byte offset while validating its
  // structure. After this loop every record is known well-formed, so the
  // decode pass below cannot fail.
  std::vector<size_t> offsets;
  offsets.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    offsets.push_back(r.position());
    if (!SkipReportBody(r)) return std::nullopt;
  }
  if (r.position() != *payload_end) return std::nullopt;

  const size_t num_shards = ReportBatchShardCount(count);
  ParallelFor(
      num_shards,
      [&](size_t s) {
        const auto [begin, end] = SliceRange(count, s, num_shards);
        Reader shard_reader(buffer);
        if (begin < end) FELIP_CHECK(shard_reader.Skip(offsets[begin]));
        for (size_t i = begin; i < end; ++i) {
          ReportMessage m;
          FELIP_CHECK(DecodeReportBody(shard_reader, &m));
          sink(s, i, std::move(m));
        }
      },
      thread_count);
  return count;
}

}  // namespace

size_t ReportBatchShardCount(size_t count) { return ReduceShardCount(count); }

StatusOr<size_t> DecodeReportBatchSharded(
    const std::vector<uint8_t>& buffer,
    const std::function<void(size_t shard_index, size_t report_index,
                             ReportMessage&& message)>& sink,
    unsigned thread_count) {
  obs::ScopedTimer span("felip_wire_decode_batch");
  DecodeCounters& counters = Counters();
  counters.bytes.Increment(buffer.size());
  const std::optional<size_t> count =
      DecodeReportBatchShardedImpl(buffer, sink, thread_count);
  if (!count.has_value()) {
    counters.malformed.Increment();
    return Malformed("malformed report-batch frame");
  }
  counters.batches.Increment();
  counters.reports.Increment(*count);
  return *count;
}

std::vector<uint8_t> EncodeGridConfig(const GridConfigMessage& m) {
  std::vector<uint8_t> buffer;
  Writer w(&buffer);
  WriteHeader(w, MessageKind::kGridConfig);
  w.Put<uint32_t>(m.grid_index);
  w.Put<uint8_t>(m.is_2d ? 1 : 0);
  w.Put<uint32_t>(m.attr_x);
  w.Put<uint32_t>(m.attr_y);
  w.Put<uint32_t>(m.domain_x);
  w.Put<uint32_t>(m.domain_y);
  w.Put<uint32_t>(m.lx);
  w.Put<uint32_t>(m.ly);
  w.Put<uint8_t>(static_cast<uint8_t>(m.protocol));
  w.Put<double>(m.epsilon);
  w.Put<uint32_t>(m.seed_pool_size);
  w.Put<uint64_t>(m.pool_salt);
  w.Put<uint32_t>(m.fldp_report_bits);
  w.Put<uint32_t>(m.fldp_pool_size);
  w.Put<uint64_t>(m.fldp_salt);
  SealChecksum(&buffer, kChecksumSalt);
  return buffer;
}

namespace {

std::optional<GridConfigMessage> DecodeGridConfigImpl(
    const std::vector<uint8_t>& buffer) {
  const auto payload_end = ValidateEnvelope(buffer, MessageKind::kGridConfig);
  if (!payload_end.has_value()) return std::nullopt;
  Reader r(buffer);
  uint8_t skip[6];
  if (!r.GetBytes(skip, sizeof(skip))) return std::nullopt;

  GridConfigMessage m;
  uint8_t is_2d = 0;
  uint8_t protocol = 0;
  if (!r.Get(&m.grid_index) || !r.Get(&is_2d) || !r.Get(&m.attr_x) ||
      !r.Get(&m.attr_y) || !r.Get(&m.domain_x) || !r.Get(&m.domain_y) ||
      !r.Get(&m.lx) || !r.Get(&m.ly) || !r.Get(&protocol) ||
      !r.Get(&m.epsilon) || !r.Get(&m.seed_pool_size) ||
      !r.Get(&m.pool_salt) || !r.Get(&m.fldp_report_bits) ||
      !r.Get(&m.fldp_pool_size) || !r.Get(&m.fldp_salt)) {
    return std::nullopt;
  }
  if (r.position() != *payload_end) return std::nullopt;
  if (!fo::KnownProtocolByte(protocol)) return std::nullopt;
  m.is_2d = is_2d != 0;
  m.protocol = static_cast<fo::Protocol>(protocol);
  // Semantic validation: layouts must be feasible.
  if (m.domain_x == 0 || m.domain_y == 0 || m.lx == 0 || m.ly == 0) {
    return std::nullopt;
  }
  if (m.lx > m.domain_x || m.ly > m.domain_y) return std::nullopt;
  if (!(m.epsilon > 0.0) || m.epsilon > 100.0) return std::nullopt;
  const uint64_t cells = static_cast<uint64_t>(m.lx) * m.ly;
  // An FLDP grid without the public pool parameters cannot perturb, and
  // its bucket indices are uint32 — cell domains past that would silently
  // wrap in the subset construction.
  if (m.protocol == fo::Protocol::kFldp &&
      (m.fldp_report_bits == 0 || m.fldp_pool_size == 0 ||
       cells > 0xffffffffull)) {
    return std::nullopt;
  }
  // A PGR grid whose (epsilon, cell count) the projective construction
  // cannot represent would abort (or, unscreened, hit undefined behavior)
  // in PgrParams::Make; untrusted configs are rejected instead.
  if (m.protocol == fo::Protocol::kPgr && !fo::PgrFeasible(m.epsilon, cells)) {
    return std::nullopt;
  }
  return m;
}

}  // namespace

StatusOr<GridConfigMessage> DecodeGridConfig(
    const std::vector<uint8_t>& buffer) {
  DecodeCounters& counters = Counters();
  counters.bytes.Increment(buffer.size());
  std::optional<GridConfigMessage> m = DecodeGridConfigImpl(buffer);
  if (!m.has_value()) {
    counters.malformed.Increment();
    return Malformed("malformed grid-config frame");
  }
  return *std::move(m);
}

std::vector<uint8_t> EncodeReport(const ReportMessage& m) {
  std::vector<uint8_t> buffer;
  Writer w(&buffer);
  WriteHeader(w, MessageKind::kReport);
  EncodeReportBody(w, m);
  SealChecksum(&buffer, kChecksumSalt);
  return buffer;
}

namespace {

std::optional<ReportMessage> DecodeReportImpl(
    const std::vector<uint8_t>& buffer) {
  const auto payload_end = ValidateEnvelope(buffer, MessageKind::kReport);
  if (!payload_end.has_value()) return std::nullopt;
  Reader r(buffer);
  uint8_t skip[6];
  if (!r.GetBytes(skip, sizeof(skip))) return std::nullopt;
  ReportMessage m;
  if (!DecodeReportBody(r, &m)) return std::nullopt;
  if (r.position() != *payload_end) return std::nullopt;
  return m;
}

}  // namespace

StatusOr<ReportMessage> DecodeReport(const std::vector<uint8_t>& buffer) {
  DecodeCounters& counters = Counters();
  counters.bytes.Increment(buffer.size());
  std::optional<ReportMessage> m = DecodeReportImpl(buffer);
  if (!m.has_value()) {
    counters.malformed.Increment();
    return Malformed("malformed report frame");
  }
  counters.reports.Increment();
  return *std::move(m);
}

std::vector<uint8_t> EncodeReportBatch(
    const std::vector<ReportMessage>& reports) {
  std::vector<uint8_t> buffer;
  Writer w(&buffer);
  WriteHeader(w, MessageKind::kReportBatch);
  w.Put<uint32_t>(static_cast<uint32_t>(reports.size()));
  for (const ReportMessage& m : reports) EncodeReportBody(w, m);
  SealChecksum(&buffer, kChecksumSalt);
  return buffer;
}

StatusOr<std::vector<ReportMessage>> DecodeReportBatch(
    const std::vector<uint8_t>& buffer) {
  // The sharded decoder with thread_count == 1 visits reports in index
  // order on the calling thread, so a plain push_back rebuilds the batch.
  std::vector<ReportMessage> reports;
  const StatusOr<size_t> count = DecodeReportBatchSharded(
      buffer,
      [&reports](size_t /*shard*/, size_t /*index*/, ReportMessage&& m) {
        reports.push_back(std::move(m));
      },
      /*thread_count=*/1);
  FELIP_RETURN_IF_ERROR(count.status());
  return reports;
}

namespace {

// The query-list record format, shared verbatim by QueryBatch and
// WindowedQuery frames: count u32, then per query a u16 predicate count
// and the predicate records.
void EncodeQueryList(Writer& w, const std::vector<query::Query>& queries) {
  w.Put<uint32_t>(static_cast<uint32_t>(queries.size()));
  for (const query::Query& q : queries) {
    w.Put<uint16_t>(static_cast<uint16_t>(q.predicates().size()));
    for (const query::Predicate& p : q.predicates()) {
      w.Put<uint32_t>(p.attr);
      w.Put<uint8_t>(static_cast<uint8_t>(p.op));
      w.Put<uint32_t>(p.lo);
      w.Put<uint32_t>(p.hi);
      w.Put<uint32_t>(static_cast<uint32_t>(p.values.size()));
      for (const uint32_t v : p.values) w.Put<uint32_t>(v);
    }
  }
}

}  // namespace

std::vector<uint8_t> EncodeQueryBatch(
    const std::vector<query::Query>& queries) {
  std::vector<uint8_t> buffer;
  Writer w(&buffer);
  WriteHeader(w, MessageKind::kQueryBatch);
  EncodeQueryList(w, queries);
  SealChecksum(&buffer, kChecksumSalt);
  return buffer;
}

namespace {

// One predicate record: attr(4) + op(1) + lo(4) + hi(4) + value_count(4).
constexpr uint64_t kMinPredicateBytes = 4 + 1 + 4 + 4 + 4;

bool DecodePredicateBody(Reader& r, query::Predicate* p) {
  uint8_t op = 0;
  uint32_t value_count = 0;
  if (!r.Get(&p->attr) || !r.Get(&op) || !r.Get(&p->lo) || !r.Get(&p->hi) ||
      !r.Get(&value_count)) {
    return false;
  }
  if (op > static_cast<uint8_t>(query::Op::kBetween)) return false;
  p->op = static_cast<query::Op>(op);
  if (static_cast<uint64_t>(value_count) * sizeof(uint32_t) > r.remaining()) {
    return false;
  }
  p->values.resize(value_count);
  for (uint32_t i = 0; i < value_count; ++i) {
    if (!r.Get(&p->values[i])) return false;
  }
  // Structural constraints query::Query's constructor enforces fatally;
  // network bytes are untrusted, so they must be rejected here instead.
  switch (p->op) {
    case query::Op::kEquals:
      break;
    case query::Op::kBetween:
      if (p->lo > p->hi) return false;
      break;
    case query::Op::kIn:
      if (p->values.empty()) return false;
      break;
  }
  return true;
}

// Decodes a query-list record from `r`, consuming exactly up to
// `payload_end`. The structural guarantees (operator tags, predicate
// shape, duplicate attributes, adversarial counts) are identical for
// every frame kind that carries a query list.
std::optional<std::vector<query::Query>> DecodeQueryList(
    Reader& r, size_t payload_end) {
  uint32_t count = 0;
  if (!r.Get(&count)) return std::nullopt;
  // A query is at least predicate_count(2) + one predicate record; reject
  // adversarial counts before reserving anything proportional to them.
  if (static_cast<uint64_t>(count) * (2 + kMinPredicateBytes) >
      payload_end - r.position()) {
    return std::nullopt;
  }
  std::vector<query::Query> queries;
  queries.reserve(count);
  std::vector<query::Predicate> predicates;
  std::vector<uint32_t> attrs_seen;
  for (uint32_t q = 0; q < count; ++q) {
    uint16_t predicate_count = 0;
    if (!r.Get(&predicate_count)) return std::nullopt;
    if (predicate_count == 0) return std::nullopt;
    if (static_cast<uint64_t>(predicate_count) * kMinPredicateBytes >
        payload_end - r.position()) {
      return std::nullopt;
    }
    predicates.clear();
    attrs_seen.clear();
    for (uint16_t i = 0; i < predicate_count; ++i) {
      query::Predicate p;
      if (!DecodePredicateBody(r, &p)) return std::nullopt;
      attrs_seen.push_back(p.attr);
      predicates.push_back(std::move(p));
    }
    std::sort(attrs_seen.begin(), attrs_seen.end());
    if (std::adjacent_find(attrs_seen.begin(), attrs_seen.end()) !=
        attrs_seen.end()) {
      return std::nullopt;  // duplicate attribute in one query
    }
    queries.emplace_back(predicates);
  }
  if (r.position() != payload_end) return std::nullopt;
  return queries;
}

std::optional<std::vector<query::Query>> DecodeQueryBatchImpl(
    const std::vector<uint8_t>& buffer) {
  const auto payload_end = ValidateEnvelope(buffer, MessageKind::kQueryBatch);
  if (!payload_end.has_value()) return std::nullopt;
  Reader r(buffer);
  if (!r.Skip(6)) return std::nullopt;
  return DecodeQueryList(r, *payload_end);
}

}  // namespace

StatusOr<std::vector<query::Query>> DecodeQueryBatch(
    const std::vector<uint8_t>& buffer) {
  DecodeCounters& counters = Counters();
  counters.bytes.Increment(buffer.size());
  auto queries = DecodeQueryBatchImpl(buffer);
  if (!queries.has_value()) {
    counters.malformed.Increment();
    return Malformed("malformed query-batch frame");
  }
  counters.query_batches.Increment();
  counters.queries.Increment(queries->size());
  return *std::move(queries);
}

std::vector<uint8_t> EncodeQueryResponse(const QueryResponseMessage& m) {
  std::vector<uint8_t> buffer;
  Writer w(&buffer);
  WriteHeader(w, MessageKind::kQueryResponse);
  w.Put<uint8_t>(QueryStatusToWire(m.status));
  w.Put<uint32_t>(m.bad_query);
  w.Put<uint64_t>(m.request_checksum);
  w.Put<uint64_t>(m.sealed_epochs);
  w.Put<uint32_t>(static_cast<uint32_t>(m.answers.size()));
  for (const double a : m.answers) w.Put<double>(a);
  SealChecksum(&buffer, kChecksumSalt);
  return buffer;
}

namespace {

std::optional<QueryResponseMessage> DecodeQueryResponseImpl(
    const std::vector<uint8_t>& buffer) {
  const auto payload_end =
      ValidateEnvelope(buffer, MessageKind::kQueryResponse);
  if (!payload_end.has_value()) return std::nullopt;
  Reader r(buffer);
  if (!r.Skip(6)) return std::nullopt;
  QueryResponseMessage m;
  uint8_t status = 0;
  uint32_t count = 0;
  if (!r.Get(&status) || !r.Get(&m.bad_query) ||
      !r.Get(&m.request_checksum) || !r.Get(&m.sealed_epochs) ||
      !r.Get(&count)) {
    return std::nullopt;
  }
  const std::optional<StatusCode> code = QueryStatusFromWire(status);
  if (!code.has_value()) return std::nullopt;
  m.status = *code;
  if (static_cast<uint64_t>(count) * sizeof(double) !=
      *payload_end - r.position()) {
    return std::nullopt;
  }
  m.answers.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.Get(&m.answers[i])) return std::nullopt;
    if (!std::isfinite(m.answers[i])) return std::nullopt;
  }
  if (r.position() != *payload_end) return std::nullopt;
  return m;
}

}  // namespace

StatusOr<QueryResponseMessage> DecodeQueryResponse(
    const std::vector<uint8_t>& buffer) {
  DecodeCounters& counters = Counters();
  counters.bytes.Increment(buffer.size());
  auto m = DecodeQueryResponseImpl(buffer);
  if (!m.has_value()) {
    counters.malformed.Increment();
    return Malformed("malformed query-response frame");
  }
  return *std::move(m);
}

std::vector<uint8_t> EncodeWindowedQuery(const WindowedQueryMessage& m) {
  FELIP_CHECK_MSG(std::isfinite(m.decay) && m.decay > 0.0 && m.decay <= 1.0,
                  "windowed-query decay must be in (0, 1]");
  std::vector<uint8_t> buffer;
  Writer w(&buffer);
  WriteHeader(w, MessageKind::kWindowedQuery);
  w.Put<uint32_t>(m.window);
  w.Put<double>(m.decay);
  EncodeQueryList(w, m.queries);
  SealChecksum(&buffer, kChecksumSalt);
  return buffer;
}

namespace {

std::optional<WindowedQueryMessage> DecodeWindowedQueryImpl(
    const std::vector<uint8_t>& buffer) {
  const auto payload_end =
      ValidateEnvelope(buffer, MessageKind::kWindowedQuery);
  if (!payload_end.has_value()) return std::nullopt;
  Reader r(buffer);
  if (!r.Skip(6)) return std::nullopt;
  WindowedQueryMessage m;
  if (!r.Get(&m.window) || !r.Get(&m.decay)) return std::nullopt;
  // The stream layer FELIP_CHECKs this contract; adversarial bytes must
  // be rejected here, not crash the server there.
  if (!std::isfinite(m.decay) || m.decay <= 0.0 || m.decay > 1.0) {
    return std::nullopt;
  }
  auto queries = DecodeQueryList(r, *payload_end);
  if (!queries.has_value()) return std::nullopt;
  m.queries = *std::move(queries);
  return m;
}

}  // namespace

StatusOr<WindowedQueryMessage> DecodeWindowedQuery(
    const std::vector<uint8_t>& buffer) {
  DecodeCounters& counters = Counters();
  counters.bytes.Increment(buffer.size());
  auto m = DecodeWindowedQueryImpl(buffer);
  if (!m.has_value()) {
    counters.malformed.Increment();
    return Malformed("malformed windowed-query frame");
  }
  counters.query_batches.Increment();
  counters.queries.Increment(m->queries.size());
  return *std::move(m);
}

bool IsWindowedQueryFrame(const std::vector<uint8_t>& buffer) {
  if (buffer.size() < 6) return false;
  uint32_t magic = 0;
  std::memcpy(&magic, buffer.data(), sizeof(magic));
  return magic == kMagic && buffer[4] == kVersion &&
         buffer[5] == static_cast<uint8_t>(MessageKind::kWindowedQuery);
}

std::vector<uint8_t> EncodeAccumulatorPull(const AccumulatorPullMessage& m) {
  std::vector<uint8_t> buffer;
  Writer w(&buffer);
  WriteHeader(w, MessageKind::kAccumulatorPull);
  w.Put<uint32_t>(m.shard_id);
  w.Put<uint8_t>(m.seal ? 1 : 0);
  SealChecksum(&buffer, kChecksumSalt);
  return buffer;
}

StatusOr<AccumulatorPullMessage> DecodeAccumulatorPull(
    const std::vector<uint8_t>& buffer) {
  DecodeCounters& counters = Counters();
  counters.bytes.Increment(buffer.size());
  const auto payload_end =
      ValidateEnvelope(buffer, MessageKind::kAccumulatorPull);
  auto malformed = [&counters]() -> Status {
    counters.malformed.Increment();
    return Malformed("malformed accumulator-pull frame");
  };
  if (!payload_end.has_value()) return malformed();
  Reader r(buffer);
  if (!r.Skip(6)) return malformed();
  AccumulatorPullMessage m;
  uint8_t seal = 0;
  if (!r.Get(&m.shard_id) || !r.Get(&seal)) return malformed();
  if (r.position() != *payload_end) return malformed();
  m.seal = seal != 0;
  return m;
}

std::vector<uint8_t> EncodeAccumulatorFrame(const AccumulatorFrameMessage& m) {
  std::vector<uint8_t> buffer;
  Writer w(&buffer);
  WriteHeader(w, MessageKind::kAccumulatorFrame);
  w.Put<uint32_t>(m.shard_id);
  w.Put<uint32_t>(m.num_shards);
  w.Put<uint64_t>(m.epoch);
  w.Put<uint64_t>(m.sequence);
  w.Put<uint64_t>(m.plan_digest);
  w.Put<uint64_t>(m.reports_ingested);
  w.Put<uint8_t>(m.sealed ? 1 : 0);
  w.Put<uint64_t>(m.oracle_section.size());
  w.PutBytes(m.oracle_section.data(), m.oracle_section.size());
  SealChecksum(&buffer, kChecksumSalt);
  return buffer;
}

StatusOr<AccumulatorFrameMessage> DecodeAccumulatorFrame(
    const std::vector<uint8_t>& buffer) {
  DecodeCounters& counters = Counters();
  counters.bytes.Increment(buffer.size());
  const auto payload_end =
      ValidateEnvelope(buffer, MessageKind::kAccumulatorFrame);
  auto malformed = [&counters]() -> Status {
    counters.malformed.Increment();
    return Malformed("malformed accumulator frame");
  };
  if (!payload_end.has_value()) return malformed();
  Reader r(buffer);
  if (!r.Skip(6)) return malformed();
  AccumulatorFrameMessage m;
  uint8_t sealed = 0;
  uint64_t section_len = 0;
  if (!r.Get(&m.shard_id) || !r.Get(&m.num_shards) || !r.Get(&m.epoch) ||
      !r.Get(&m.sequence) || !r.Get(&m.plan_digest) ||
      !r.Get(&m.reports_ingested) || !r.Get(&sealed) ||
      !r.Get(&section_len)) {
    return malformed();
  }
  if (m.num_shards == 0 || m.shard_id >= m.num_shards) return malformed();
  if (section_len != *payload_end - r.position()) return malformed();
  m.sealed = sealed != 0;
  m.oracle_section.assign(buffer.begin() + static_cast<ptrdiff_t>(r.position()),
                          buffer.begin() + static_cast<ptrdiff_t>(*payload_end));
  return m;
}

std::vector<uint8_t> EncodeSnapshot(
    const core::FelipPipeline& pipeline,
    const std::vector<data::AttributeInfo>& schema, uint64_t num_users,
    const core::FelipConfig& config) {
  FELIP_CHECK_MSG(pipeline.finalized(), "snapshot requires Finalize()");
  std::vector<uint8_t> buffer;
  Writer w(&buffer);
  WriteHeader(w, MessageKind::kSnapshot);

  // Layout-affecting configuration.
  w.Put<uint8_t>(static_cast<uint8_t>(config.strategy));
  w.Put<uint8_t>(static_cast<uint8_t>(config.partitioning));
  w.Put<double>(config.epsilon);
  w.Put<double>(config.alpha1);
  w.Put<double>(config.alpha2);
  w.Put<double>(config.default_selectivity);
  w.Put<uint32_t>(static_cast<uint32_t>(config.attribute_selectivity.size()));
  for (const double s : config.attribute_selectivity) w.Put<double>(s);
  w.Put<uint8_t>(config.allow_grr ? 1 : 0);
  w.Put<uint8_t>(config.allow_olh ? 1 : 0);
  w.Put<uint8_t>(config.allow_oue ? 1 : 0);
  w.Put<uint8_t>(config.allow_pgr ? 1 : 0);
  w.Put<uint8_t>(config.allow_fldp ? 1 : 0);
  w.Put<uint64_t>(config.report_budget_bytes);
  // FLDP options shift its variance model, so they affect the layout.
  w.Put<uint32_t>(config.fldp_options.report_bits);
  w.Put<uint32_t>(config.fldp_options.subset_pool_size);
  w.Put<uint64_t>(config.fldp_options.pool_salt);
  w.Put<uint8_t>(config.lambda_quadrant_fit ? 1 : 0);
  w.Put<uint64_t>(num_users);

  // Schema.
  w.Put<uint32_t>(static_cast<uint32_t>(schema.size()));
  for (const data::AttributeInfo& a : schema) {
    w.Put<uint32_t>(static_cast<uint32_t>(a.name.size()));
    w.PutBytes(reinterpret_cast<const uint8_t*>(a.name.data()),
               a.name.size());
    w.Put<uint32_t>(a.domain);
    w.Put<uint8_t>(a.categorical ? 1 : 0);
  }

  // Estimated grid frequencies, assignment order.
  const std::vector<std::vector<double>> grids =
      pipeline.ExportGridFrequencies();
  w.Put<uint32_t>(static_cast<uint32_t>(grids.size()));
  for (const std::vector<double>& f : grids) {
    w.Put<uint32_t>(static_cast<uint32_t>(f.size()));
    for (const double v : f) w.Put<double>(v);
  }
  SealChecksum(&buffer, kChecksumSalt);
  return buffer;
}

namespace {

std::optional<core::FelipPipeline> DecodeSnapshotImpl(
    const std::vector<uint8_t>& buffer) {
  const auto payload_end = ValidateEnvelope(buffer, MessageKind::kSnapshot);
  if (!payload_end.has_value()) return std::nullopt;
  Reader r(buffer);
  uint8_t skip[6];
  if (!r.GetBytes(skip, sizeof(skip))) return std::nullopt;

  core::FelipConfig config;
  uint8_t strategy = 0;
  uint8_t partitioning = 0;
  uint32_t num_selectivities = 0;
  uint8_t allow_grr = 0;
  uint8_t allow_olh = 0;
  uint8_t allow_oue = 0;
  uint8_t allow_pgr = 0;
  uint8_t allow_fldp = 0;
  uint8_t quadrant = 0;
  uint64_t num_users = 0;
  if (!r.Get(&strategy) || !r.Get(&partitioning) || !r.Get(&config.epsilon) ||
      !r.Get(&config.alpha1) || !r.Get(&config.alpha2) ||
      !r.Get(&config.default_selectivity) || !r.Get(&num_selectivities)) {
    return std::nullopt;
  }
  if (strategy > 1 || partitioning > 1) return std::nullopt;
  if (!(config.epsilon > 0.0) || config.epsilon > 100.0) return std::nullopt;
  if (num_selectivities > 4096) return std::nullopt;
  config.strategy = static_cast<core::Strategy>(strategy);
  config.partitioning = static_cast<core::PartitioningMode>(partitioning);
  config.attribute_selectivity.resize(num_selectivities);
  for (double& s : config.attribute_selectivity) {
    if (!r.Get(&s)) return std::nullopt;
  }
  if (!r.Get(&allow_grr) || !r.Get(&allow_olh) || !r.Get(&allow_oue) ||
      !r.Get(&allow_pgr) || !r.Get(&allow_fldp) ||
      !r.Get(&config.report_budget_bytes) ||
      !r.Get(&config.fldp_options.report_bits) ||
      !r.Get(&config.fldp_options.subset_pool_size) ||
      !r.Get(&config.fldp_options.pool_salt) || !r.Get(&quadrant) ||
      !r.Get(&num_users)) {
    return std::nullopt;
  }
  config.allow_grr = allow_grr != 0;
  config.allow_olh = allow_olh != 0;
  config.allow_oue = allow_oue != 0;
  config.allow_pgr = allow_pgr != 0;
  config.allow_fldp = allow_fldp != 0;
  config.lambda_quadrant_fit = quadrant != 0;
  if (!(config.allow_grr || config.allow_olh || config.allow_oue ||
        config.allow_pgr || config.allow_fldp)) {
    return std::nullopt;
  }
  if (config.allow_fldp &&
      (config.fldp_options.report_bits == 0 ||
       config.fldp_options.subset_pool_size == 0)) {
    return std::nullopt;
  }
  if (num_users == 0) return std::nullopt;

  uint32_t num_attributes = 0;
  if (!r.Get(&num_attributes)) return std::nullopt;
  if (num_attributes == 0 || num_attributes > 4096) return std::nullopt;
  std::vector<data::AttributeInfo> schema(num_attributes);
  for (data::AttributeInfo& a : schema) {
    uint32_t name_len = 0;
    if (!r.Get(&name_len)) return std::nullopt;
    if (name_len > r.remaining()) return std::nullopt;
    a.name.resize(name_len);
    if (!r.GetBytes(reinterpret_cast<uint8_t*>(a.name.data()), name_len)) {
      return std::nullopt;
    }
    uint8_t categorical = 0;
    if (!r.Get(&a.domain) || !r.Get(&categorical)) return std::nullopt;
    if (a.domain == 0) return std::nullopt;
    a.categorical = categorical != 0;
  }

  uint32_t num_grids = 0;
  if (!r.Get(&num_grids)) return std::nullopt;
  if (num_grids > 1u << 20) return std::nullopt;
  std::vector<std::vector<double>> grids(num_grids);
  for (std::vector<double>& f : grids) {
    uint32_t cells = 0;
    if (!r.Get(&cells)) return std::nullopt;
    if (static_cast<size_t>(cells) * sizeof(double) > r.remaining()) {
      return std::nullopt;
    }
    f.resize(cells);
    for (double& v : f) {
      if (!r.Get(&v)) return std::nullopt;
      if (!std::isfinite(v)) return std::nullopt;
    }
  }
  if (r.position() != *payload_end) return std::nullopt;

  // Re-plan and verify the persisted grids fit the layout. A mismatched
  // grid count aborts inside FromEstimatedGrids; catch the cheap case
  // here and let cell-count mismatches be caught by SetFrequencies.
  core::FelipPipeline probe(schema, num_users, config);
  if (probe.assignments().size() != num_grids) return std::nullopt;
  const size_t n1 = probe.grids_1d().size();
  for (size_t g = 0; g < num_grids; ++g) {
    const size_t expected = g < n1
                                ? probe.grids_1d()[g].num_cells()
                                : probe.grids_2d()[g - n1].num_cells();
    if (grids[g].size() != expected) return std::nullopt;
  }
  return core::FelipPipeline::FromEstimatedGrids(
      std::move(schema), num_users, std::move(config), std::move(grids));
}

}  // namespace

StatusOr<core::FelipPipeline> DecodeSnapshot(
    const std::vector<uint8_t>& buffer) {
  obs::ScopedTimer span("felip_wire_decode_snapshot");
  DecodeCounters& counters = Counters();
  counters.bytes.Increment(buffer.size());
  std::optional<core::FelipPipeline> pipeline = DecodeSnapshotImpl(buffer);
  if (!pipeline.has_value()) {
    counters.malformed.Increment();
    return Malformed("malformed snapshot frame");
  }
  return *std::move(pipeline);
}

Status SaveSnapshot(const core::FelipPipeline& pipeline,
                    const std::vector<data::AttributeInfo>& schema,
                    uint64_t num_users, const core::FelipConfig& config,
                    const std::string& path) {
  const std::vector<uint8_t> buffer =
      EncodeSnapshot(pipeline, schema, num_users, config);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Unavailable("cannot open snapshot file for writing");
  }
  const size_t written =
      std::fwrite(buffer.data(), 1, buffer.size(), file);
  const bool ok = std::fclose(file) == 0 && written == buffer.size();
  if (!ok) return Status::Unavailable("short write saving snapshot");
  return Status::Ok();
}

StatusOr<core::FelipPipeline> LoadSnapshot(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open snapshot file");
  }
  std::vector<uint8_t> buffer;
  uint8_t chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    buffer.insert(buffer.end(), chunk, chunk + got);
  }
  std::fclose(file);
  return DecodeSnapshot(buffer);
}

GridConfigMessage MakeGridConfig(
    const core::FelipPipeline& pipeline,
    const std::vector<data::AttributeInfo>& schema, uint32_t grid_index,
    double epsilon, const fo::ProtocolOptions& options) {
  FELIP_CHECK(grid_index < pipeline.assignments().size());
  const core::GridAssignment& a = pipeline.assignments()[grid_index];
  GridConfigMessage m;
  m.grid_index = grid_index;
  m.is_2d = a.is_2d;
  m.attr_x = a.attr_x;
  m.attr_y = a.attr_y;
  FELIP_CHECK(a.attr_x < schema.size());
  m.domain_x = schema[a.attr_x].domain;
  m.domain_y = a.is_2d ? schema[a.attr_y].domain : 1;
  m.lx = a.plan.lx;
  m.ly = a.is_2d ? a.plan.ly : 1;
  m.protocol = a.plan.protocol;
  m.epsilon = epsilon;
  if (a.plan.protocol == fo::Protocol::kOlh) {
    m.seed_pool_size = options.olh.seed_pool_size;
    m.pool_salt = options.olh.pool_salt;
  }
  if (a.plan.protocol == fo::Protocol::kFldp) {
    m.fldp_report_bits = options.fldp.report_bits;
    m.fldp_pool_size = options.fldp.subset_pool_size;
    m.fldp_salt = options.fldp.pool_salt;
  }
  return m;
}

}  // namespace felip::wire
