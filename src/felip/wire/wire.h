// Wire format for client↔aggregator messages.
//
// A real FELIP deployment ships three kinds of messages:
//   * GridConfig (aggregator -> client): which grid the client is assigned,
//     its cell layout, the protocol and epsilon to perturb with.
//   * Report (client -> aggregator): one perturbed cell report.
//   * ReportBatch: length-prefixed sequence of reports from a relay.
//
// Encoding is a compact little-endian binary format with a 4-byte magic, a
// format version, and an xxHash64 trailer so truncation and corruption are
// detected instead of silently mis-decoded (primitives shared with the
// snapshot format live in felip/wire/framing.h). Decoding never aborts:
// all failures surface as a non-ok Status (reports come from untrusted
// devices), with kInvalidArgument for malformed or corrupt frames.

#ifndef FELIP_WIRE_WIRE_H_
#define FELIP_WIRE_WIRE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "felip/common/status.h"
#include "felip/core/felip.h"
#include "felip/fo/olh.h"
#include "felip/fo/protocol.h"
#include "felip/fo/registry.h"
#include "felip/fo/report.h"
#include "felip/query/query.h"

namespace felip::wire {

inline constexpr uint32_t kMagic = 0x46454c50;  // "FELP"
inline constexpr uint8_t kVersion = 1;
// Salt of the xxHash64 trailer sealing every message ("wirecsum"). Part of
// the format: a relay re-framing messages must use the same salt.
inline constexpr uint64_t kChecksumSalt = 0x77697265'6373756dULL;

// Aggregator -> client: everything a device needs to produce its report.
struct GridConfigMessage {
  uint32_t grid_index = 0;  // index into the aggregator's assignment list
  bool is_2d = false;
  uint32_t attr_x = 0;
  uint32_t attr_y = 0;
  uint32_t domain_x = 1;
  uint32_t domain_y = 1;
  uint32_t lx = 1;
  uint32_t ly = 1;
  fo::Protocol protocol = fo::Protocol::kOlh;
  double epsilon = 1.0;
  // OLH only:
  uint32_t seed_pool_size = 0;
  uint64_t pool_salt = 0;
  // FLDP only: the public subset-pool parameters every device must share.
  uint32_t fldp_report_bits = 0;
  uint32_t fldp_pool_size = 0;
  uint64_t fldp_salt = 0;

  friend bool operator==(const GridConfigMessage&,
                         const GridConfigMessage&) = default;
};

// Client -> aggregator: one perturbed report — a protocol-tagged
// fo::ReportData addressed to a grid. The payload/protocol contract is
// documented on ReportData (fo/report.h); the codec frames exactly the
// fields the protocol's ReportWire shape (fo/registry.h) names.
struct ReportMessage : public fo::ReportData {
  uint32_t grid_index = 0;

  friend bool operator==(const ReportMessage&, const ReportMessage&) = default;
};

// --- Encoding (never fails) ---
std::vector<uint8_t> EncodeGridConfig(const GridConfigMessage& message);
std::vector<uint8_t> EncodeReport(const ReportMessage& message);
std::vector<uint8_t> EncodeReportBatch(
    const std::vector<ReportMessage>& reports);

// --- Decoding (kInvalidArgument on any malformed input) ---
StatusOr<GridConfigMessage> DecodeGridConfig(
    const std::vector<uint8_t>& buffer);
StatusOr<ReportMessage> DecodeReport(const std::vector<uint8_t>& buffer);
StatusOr<std::vector<ReportMessage>> DecodeReportBatch(
    const std::vector<uint8_t>& buffer);

// --- Query frames (the networked query service, felip/svc) ---
//
// A QueryBatch frame carries λ-dimensional counting queries from a client
// to a serving aggregator; a QueryResponse frame carries back one answer
// per query, or the index of the first query the server rejected. Both use
// the same magic/version/xxHash64-trailer envelope as every other wire
// message. Decoding validates structure (operator tags, predicate shape,
// duplicate attributes) so a decoded batch can always be materialized as
// query::Query values without tripping their constructor checks; *domain*
// validation needs a schema and happens in the service layer
// (query::ValidateQuery).
//
// The response carries a StatusCode instead of a bespoke enum. Only three
// codes are representable on the wire:
//   kOk                 -> answers[i] answers queries[i]
//   kInvalidArgument    -> a query failed validation; see bad_query
//   kFailedPrecondition -> the serving pipeline is not queryable yet
// EncodeQueryResponse FELIP_CHECKs the code is one of these; decode
// rejects any other byte as malformed.

// bad_query value when no single query can be blamed (e.g. the batch
// frame itself was structurally undecodable).
inline constexpr uint32_t kBadQueryNone = 0xffffffffu;

struct QueryResponseMessage {
  StatusCode status = StatusCode::kInvalidArgument;
  uint32_t bad_query = kBadQueryNone;  // meaningful for kInvalidArgument
  // Echo of the request frame's checksum trailer so a client can never
  // pair a stale response with the wrong request (mirrors svc::Ack).
  uint64_t request_checksum = 0;
  // Epochs sealed by the server when it answered (0 when the server does
  // not run epochs). Carried on every response, so a client pacing an
  // epoch-rotated server can observe seal progress from any query — and
  // a kFailedPrecondition tells it how far the server actually is.
  uint64_t sealed_epochs = 0;
  std::vector<double> answers;  // kOk only: one per query, in [0, 1]

  friend bool operator==(const QueryResponseMessage&,
                         const QueryResponseMessage&) = default;
};

std::vector<uint8_t> EncodeQueryBatch(
    const std::vector<query::Query>& queries);
StatusOr<std::vector<query::Query>> DecodeQueryBatch(
    const std::vector<uint8_t>& buffer);

std::vector<uint8_t> EncodeQueryResponse(const QueryResponseMessage& message);
StatusOr<QueryResponseMessage> DecodeQueryResponse(
    const std::vector<uint8_t>& buffer);

// --- Windowed query frames (the epoch-rotated service tier) ---
//
// A WindowedQuery frame asks an epoch-rotating server for decay-mixed
// answers over its newest sealed epochs instead of one pipeline's
// estimates. The query list is the QueryBatch record format verbatim
// (same structural validation); `window` and `decay` prefix it. Answers
// come back in the same QueryResponse frame as plain batches, with
// `sealed_epochs` reporting the server's seal progress.
//
// Decoding rejects a decay outside (0, 1] (or non-finite) structurally —
// the stream layer FELIP_CHECKs the same contract, and network bytes must
// never reach a check that aborts the server.

struct WindowedQueryMessage {
  uint32_t window = 0;  // newest epochs to mix; 0 = every retained epoch
  double decay = 1.0;   // (0, 1]; 1.0 = exact sliding mean
  std::vector<query::Query> queries;
};

std::vector<uint8_t> EncodeWindowedQuery(const WindowedQueryMessage& message);
StatusOr<WindowedQueryMessage> DecodeWindowedQuery(
    const std::vector<uint8_t>& buffer);

// True when `buffer` is shaped like a windowed-query frame (header peek
// only — no checksum or payload validation). The query server uses this
// to route a received frame to the right decoder; a torn frame still
// fails that decoder's full validation.
bool IsWindowedQueryFrame(const std::vector<uint8_t>& buffer);

// --- Accumulator frames (distributed aggregation tier, felip/dist) ---
//
// A root aggregator pulls per-shard accumulator state by sending an
// AccumulatorPullMessage; the shard answers with an AccumulatorFrameMessage
// whose `oracle_section` is the snapshot format's kOracles payload
// (snapshot::PipelineCodec::EncodeOracleSection) — the wire layer carries
// those bytes opaquely, so the on-disk and on-wire accumulator formats are
// one codec. Frames are cumulative exports, ordered per shard by
// (epoch, sequence): the sequence counts exports within one process
// incarnation, and the epoch bumps on every warm restart, so the root keeps
// exactly the newest frame per shard and frames from a pre-crash
// incarnation are discarded as stale. Both messages use the standard
// checksummed envelope.

struct AccumulatorPullMessage {
  uint32_t shard_id = 0;  // the shard the root believes it is addressing
  bool seal = false;      // notify the shard the round is complete
  friend bool operator==(const AccumulatorPullMessage&,
                         const AccumulatorPullMessage&) = default;
};

struct AccumulatorFrameMessage {
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  uint64_t epoch = 1;        // shard incarnation; bumps on warm restart
  uint64_t sequence = 0;     // export counter within the incarnation
  uint64_t plan_digest = 0;  // dist::PlanDigest of the shard's pipeline
  uint64_t reports_ingested = 0;
  bool sealed = false;  // the shard has seen the seal notification
  std::vector<uint8_t> oracle_section;  // snapshot kOracles payload
  friend bool operator==(const AccumulatorFrameMessage&,
                         const AccumulatorFrameMessage&) = default;
};

std::vector<uint8_t> EncodeAccumulatorPull(const AccumulatorPullMessage& m);
StatusOr<AccumulatorPullMessage> DecodeAccumulatorPull(
    const std::vector<uint8_t>& buffer);

std::vector<uint8_t> EncodeAccumulatorFrame(const AccumulatorFrameMessage& m);
StatusOr<AccumulatorFrameMessage> DecodeAccumulatorFrame(
    const std::vector<uint8_t>& buffer);

// --- Sharded batch decoding ---
//
// DecodeReportBatch materializes every report before the caller can
// aggregate any of them. The sharded variant instead validates the whole
// batch up front (envelope, checksum, and every record boundary — any
// malformed input fails before the sink sees a single report), then
// decodes fixed shards of records concurrently, handing each report to
// `sink(shard_index, report_index, message)` as it is decoded — no
// intermediate vector of all decoded reports exists.
//
// Shard boundaries depend only on the report count (never on
// `thread_count`), shard_index < ReportBatchShardCount(count), and reports
// within a shard arrive in increasing report_index order. Different shards
// may run on different threads, so the sink must only mutate state keyed
// by shard_index; fold the per-shard state in shard order afterwards for
// thread-count-independent results. With thread_count == 1 the sink runs
// entirely on the calling thread in increasing report_index order.
// Returns the report count.
StatusOr<size_t> DecodeReportBatchSharded(
    const std::vector<uint8_t>& buffer,
    const std::function<void(size_t shard_index, size_t report_index,
                             ReportMessage&& message)>& sink,
    unsigned thread_count = 0);

// Number of shards DecodeReportBatchSharded uses for `count` reports.
size_t ReportBatchShardCount(size_t count);

// Builds the config message for one of a pipeline's planned grids — the
// aggregator-side glue between planning and the wire. `options` supplies
// the per-protocol parameters devices must share (OLH seed pool, FLDP
// subset pool); only the planned protocol's fields are copied in.
GridConfigMessage MakeGridConfig(const core::FelipPipeline& pipeline,
                                 const std::vector<data::AttributeInfo>& schema,
                                 uint32_t grid_index, double epsilon,
                                 const fo::ProtocolOptions& options);

// --- Aggregator snapshots (legacy single-frame format) ---
//
// A snapshot persists a finalized pipeline's estimated grid frequencies
// plus everything needed to re-plan the identical grid layout (schema,
// population size, and the layout-affecting config fields). Response
// matrices are derived state and are rebuilt on load. The file uses the
// same checksummed envelope as the other wire messages.
//
// This format only captures a *queryable* pipeline and omits config
// fields that do not affect layout (OLH pool options, lambda threshold).
// The crash-safe sectioned format in felip/snapshot supersedes it for
// full pipeline state (including mid-collection accumulators); these
// entry points remain for published snapshot files and simple workflows.

// Serializes `pipeline` (must be queryable). `schema` and `config` must be
// the ones the pipeline was built with.
std::vector<uint8_t> EncodeSnapshot(
    const core::FelipPipeline& pipeline,
    const std::vector<data::AttributeInfo>& schema, uint64_t num_users,
    const core::FelipConfig& config);

// Rebuilds a queryable pipeline from an encoded snapshot; kInvalidArgument
// on any malformed input.
StatusOr<core::FelipPipeline> DecodeSnapshot(
    const std::vector<uint8_t>& buffer);

// File convenience wrappers. SaveSnapshot returns kUnavailable on I/O
// failure; LoadSnapshot returns kNotFound when the file cannot be opened.
Status SaveSnapshot(const core::FelipPipeline& pipeline,
                    const std::vector<data::AttributeInfo>& schema,
                    uint64_t num_users, const core::FelipConfig& config,
                    const std::string& path);
StatusOr<core::FelipPipeline> LoadSnapshot(const std::string& path);

}  // namespace felip::wire

#endif  // FELIP_WIRE_WIRE_H_
