#include "felip/common/flags.h"

#include <cstdlib>

namespace felip {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    std::string name;
    std::string value;
    if (eq == std::string::npos) {
      if (body.rfind("no-", 0) == 0) {
        name = body.substr(3);
        value = "false";
      } else {
        name = body;
        value = "true";
      }
    } else {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    }
    flags_[name] = value;
    repeated_[name].push_back(std::move(value));
  }
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

double FlagParser::GetDouble(const std::string& name, double default_value) {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  return (end == nullptr || *end != '\0') ? default_value : value;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t default_value) {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  return (end == nullptr || *end != '\0') ? default_value
                                          : static_cast<int64_t>(value);
}

uint64_t FlagParser::GetUint(const std::string& name,
                             uint64_t default_value) {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  const unsigned long long value =
      std::strtoull(it->second.c_str(), &end, 10);
  return (end == nullptr || *end != '\0') ? default_value
                                          : static_cast<uint64_t>(value);
}

bool FlagParser::GetBool(const std::string& name, bool default_value) {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> FlagParser::GetStringList(const std::string& name) {
  consumed_.insert(name);
  const auto it = repeated_.find(name);
  return it == repeated_.end() ? std::vector<std::string>{} : it->second;
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::vector<std::string> FlagParser::UnconsumedFlags() const {
  std::vector<std::string> unread;
  for (const auto& [name, value] : flags_) {
    if (consumed_.count(name) == 0) unread.push_back(name);
  }
  return unread;
}

}  // namespace felip
