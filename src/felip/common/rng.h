// Deterministic pseudo-random number generation.
//
// All randomized components of FELIP (perturbation, synthetic data, query
// generation, population shuffling) draw from felip::Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256++ seeded through SplitMix64, which is fast, has a 256-bit
// state, and passes BigCrush; <random> engines are avoided because their
// distributions are not reproducible across standard library
// implementations.

#ifndef FELIP_COMMON_RNG_H_
#define FELIP_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace felip {

// Stateless SplitMix64 step; used for seeding and cheap hash mixing.
// Advances `state` and returns the next 64-bit output.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256++ generator with reproducible distribution helpers.
class Rng {
 public:
  // Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  // Next raw 64-bit output.
  uint64_t Next();

  // Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  // multiply-shift rejection method (unbiased).
  uint64_t UniformU64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  // True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Standard normal via Box–Muller (no cached second value, keeps the
  // state trajectory simple and reproducible).
  double Gaussian();

  // Zero-mean Laplace with scale `b` (density exp(-|x|/b) / 2b).
  double Laplace(double b);

  // Zipf-distributed integer in [0, n) with exponent `s` > 0, drawn by
  // inverting the CDF over precomputed weights is avoided; this uses
  // rejection-free linear search for small n and is intended for
  // domain-sized draws (n <= ~1e5). For repeated draws prefer
  // ZipfDistribution below.
  uint64_t Zipf(uint64_t n, double s);

  // Derives an independent child generator; used to give each logical
  // component (per-user perturbation, per-attribute sampling, ...) its own
  // stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

// Precomputed-CDF Zipf sampler for repeated draws over a fixed domain.
class ZipfDistribution {
 public:
  // Weights proportional to 1/(rank+1)^s over ranks 0..n-1.
  ZipfDistribution(uint64_t n, double s);

  // Draws a rank in [0, n) by binary search over the CDF.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return static_cast<uint64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace felip

#endif  // FELIP_COMMON_RNG_H_
