#include "felip/common/status.h"

namespace felip {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kDataLoss:
      return "data-loss";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace felip
