// felip::Status — the error vocabulary of the service and wire layers.
//
// FELIP is a no-exceptions codebase: programmer errors abort via
// FELIP_CHECK, while *recoverable* conditions — untrusted bytes off the
// network, a full queue, a missing snapshot file — flow back to the caller
// as values. Historically each module grew its own shape for that
// (bool + out-param, std::optional, per-module enums like AckStatus);
// Status unifies them: a small code taxonomy shared across layers plus a
// human-readable message that survives to logs and test failures.
//
// Conventions (see DESIGN.md):
//   * Entry points that can fail recoverably return Status (or
//     StatusOr<T> when they produce a value).
//   * kOk never carries a message. Error statuses always say *what* input
//     or state was wrong, not just that something was.
//   * Codes are coarse on purpose: callers branch on code(), humans read
//     message(). Retryability is a property of the code (see
//     IsRetryable()), so transports and clients never parse messages.
//   * StatusOr<T> intentionally mirrors std::optional's observers
//     (has_value / operator* / operator->) so migrating a call site off
//     optional does not disturb its shape — the win is that failures now
//     explain themselves via status().

#ifndef FELIP_COMMON_STATUS_H_
#define FELIP_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "felip/common/check.h"

namespace felip {

enum class StatusCode : uint8_t {
  kOk = 0,
  // The input itself is wrong (malformed structure, out-of-domain value).
  // Resending the same bytes cannot succeed.
  kInvalidArgument = 1,
  // The named thing does not exist (no snapshot in the store).
  kNotFound = 2,
  // Idempotency hit: this work was already done (duplicate batch). A
  // success from the sender's point of view.
  kAlreadyExists = 3,
  // Backpressure: a bounded resource is full. Retry after a delay.
  kResourceExhausted = 4,
  // The operation is valid but the receiver is in the wrong lifecycle
  // state for it (pipeline not finalized yet). Retry may succeed later.
  kFailedPrecondition = 5,
  // Bytes were damaged or truncated in flight or at rest (checksum
  // mismatch). For a live transport a resend may succeed.
  kDataLoss = 6,
  // The peer or medium is temporarily unreachable (connect/send/recv
  // failure, timeout). Retry with backoff.
  kUnavailable = 7,
  // An invariant the implementation owns failed (I/O error writing a
  // tmp file). Not the caller's fault.
  kInternal = 8,
};

// Stable lowercase name of `code` ("ok", "invalid-argument", ...).
std::string_view StatusCodeName(StatusCode code);

// Whether a fresh attempt of the same operation can succeed without the
// caller changing anything: backpressure, wrong-state-yet, transient
// transport failure, and in-flight damage are retryable; malformed input
// and idempotency hits are terminal.
constexpr bool IsRetryable(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kFailedPrecondition ||
         code == StatusCode::kDataLoss || code == StatusCode::kUnavailable;
}

class [[nodiscard]] Status {
 public:
  // Default is OK, so `Status s; ... return s;` reads naturally.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    FELIP_CHECK_MSG(code != StatusCode::kOk || message_.empty(),
                    "kOk must not carry a message");
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code-name>: <message>".
  std::string ToString() const;

  // Codes compare; messages are documentation, not identity.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A Status or a value. Observers deliberately mirror std::optional so call
// sites written against optional-returning decoders keep their shape;
// value access on an error status is programmer error and aborts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit from both directions keeps `return Status::...` and
  // `return value;` working inside one function.
  StatusOr(Status status) : status_(std::move(status)) {
    FELIP_CHECK_MSG(!status_.ok(),
                    "StatusOr constructed from kOk without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  bool has_value() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    FELIP_CHECK_MSG(value_.has_value(), "value() on an error StatusOr");
    return *value_;
  }
  const T& value() const& {
    FELIP_CHECK_MSG(value_.has_value(), "value() on an error StatusOr");
    return *value_;
  }
  T&& value() && {
    FELIP_CHECK_MSG(value_.has_value(), "value() on an error StatusOr");
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  template <typename U>
  T value_or(U&& fallback) const& {
    return value_.has_value() ? *value_
                              : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace felip

// Propagates a non-OK Status to the caller. `expr` is evaluated once.
#define FELIP_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::felip::Status felip_status_tmp_ = (expr);      \
    if (!felip_status_tmp_.ok()) {                   \
      return felip_status_tmp_;                      \
    }                                                \
  } while (0)

// Unwraps a StatusOr into `lhs`, propagating errors. `lhs` may declare a
// new variable: FELIP_ASSIGN_OR_RETURN(auto bytes, store.ReadNewest());
#define FELIP_ASSIGN_OR_RETURN(lhs, expr)                        \
  FELIP_ASSIGN_OR_RETURN_IMPL_(                                  \
      FELIP_STATUS_CONCAT_(felip_statusor_, __LINE__), lhs, expr)

#define FELIP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#define FELIP_STATUS_CONCAT_(a, b) FELIP_STATUS_CONCAT_IMPL_(a, b)
#define FELIP_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // FELIP_COMMON_STATUS_H_
