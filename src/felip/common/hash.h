// Universal hashing for the OLH frequency oracle.
//
// OLH requires a public family H of hash functions D -> [0, g). We use
// xxHash64 (implemented from scratch below; no third-party dependency) keyed
// by a per-report 64-bit seed: H_seed(v) = XxHash64(v, seed) mod g. Seeded
// xxHash64 behaves as an (approximately) universal family for this purpose,
// which is the same construction used by production LDP implementations.

#ifndef FELIP_COMMON_HASH_H_
#define FELIP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace felip {

// xxHash64 of a 64-bit value under `seed`. Deterministic across platforms.
uint64_t XxHash64(uint64_t value, uint64_t seed);

// xxHash64 of an arbitrary byte buffer under `seed` (used by the CSV loader
// for string interning; the hot OLH path uses the fixed-width overload).
uint64_t XxHash64Bytes(const void* data, size_t len, uint64_t seed);

// OLH hash: maps `value` into [0, g) under `seed`. `g` must be >= 2.
inline uint32_t OlhHash(uint64_t value, uint64_t seed, uint32_t g) {
  return static_cast<uint32_t>(XxHash64(value, seed) % g);
}

}  // namespace felip

#endif  // FELIP_COMMON_HASH_H_
