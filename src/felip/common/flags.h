// Tiny --key=value command-line parser for the CLI tools.
//
// Supports `--name=value`, bare `--name` (boolean true), and `--no-name`
// (boolean false). Unknown-flag detection is the caller's job via
// UnconsumedFlags(), so tools can fail fast on typos.

#ifndef FELIP_COMMON_FLAGS_H_
#define FELIP_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace felip {

class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  // Typed accessors; the flag is marked consumed. Malformed numeric values
  // fall back to the default.
  std::string GetString(const std::string& name,
                        const std::string& default_value);
  double GetDouble(const std::string& name, double default_value);
  int64_t GetInt(const std::string& name, int64_t default_value);
  uint64_t GetUint(const std::string& name, uint64_t default_value);
  bool GetBool(const std::string& name, bool default_value);

  // Every value passed for a repeated flag, in command-line order (the
  // scalar accessors return only the last). Empty when the flag was never
  // passed; a bare `--name` contributes "true". Marks the flag consumed.
  std::vector<std::string> GetStringList(const std::string& name);

  bool Has(const std::string& name) const;

  // Flags that were passed but never read — almost always typos.
  std::vector<std::string> UnconsumedFlags() const;

  // Arguments that did not start with "--", in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  // Every occurrence in command-line order, for GetStringList.
  std::map<std::string, std::vector<std::string>> repeated_;
  std::set<std::string> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace felip

#endif  // FELIP_COMMON_FLAGS_H_
