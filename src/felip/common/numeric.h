// Numeric root-finding and minimisation helpers used by the grid-size
// optimizers (Section 5.2 of the paper).

#ifndef FELIP_COMMON_NUMERIC_H_
#define FELIP_COMMON_NUMERIC_H_

#include <cstdint>
#include <functional>

namespace felip {

// Finds a root of `f` in [lo, hi] by bisection. If f(lo) and f(hi) have the
// same sign the endpoint with the smaller |f| is returned (the optimizers
// use this to clamp to the feasible interval). `f` must be continuous.
double Bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol = 1e-9, int max_iter = 200);

// Minimizes a unimodal `f` on [lo, hi] by golden-section search and returns
// the minimizing argument.
double GoldenSectionMinimize(const std::function<double(double)>& f,
                             double lo, double hi, double tol = 1e-7,
                             int max_iter = 300);

// n choose 2 — the number of attribute pairs.
inline uint64_t Choose2(uint64_t n) { return n * (n - 1) / 2; }

// Rank of the pair (i, j), i < j < n, in lexicographic pair order
// ((0,1), (0,2), ..., (0,n-1), (1,2), ...): the i rows before row i hold
// Choose2(n) - Choose2(n - i) pairs, then (j - i - 1) pairs precede (i, j)
// within its row. Every pair-indexed table in the tree (2-D grid layout,
// response matrices, Algorithm 4 pair answers) uses this one mapping.
inline uint64_t PairRank(uint64_t i, uint64_t j, uint64_t n) {
  return Choose2(n) - Choose2(n - i) + (j - i - 1);
}

// Binomial coefficient for small arguments (λ <= 16 in practice).
uint64_t Binomial(uint64_t n, uint64_t k);

// Rounds a positive real grid length to an integer cell count clamped to
// [1, domain]: both neighbouring integers are candidates; the caller passes
// the error objective so the better of floor/ceil is chosen.
uint32_t RoundGridLength(double raw, uint32_t domain,
                         const std::function<double(double)>& objective);

}  // namespace felip

#endif  // FELIP_COMMON_NUMERIC_H_
