// Lightweight assertion macros for invariant enforcement.
//
// FELIP follows the no-exceptions policy common in database C++ codebases:
// programming errors and violated invariants abort with a message instead of
// throwing. Recoverable conditions are expressed with std::optional or
// status enums at the API level, never with these macros.

#ifndef FELIP_COMMON_CHECK_H_
#define FELIP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace felip::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "FELIP_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace felip::internal_check

// Aborts with a diagnostic when `cond` is false. Always on (release builds
// included): estimation code silently producing garbage is worse than a
// crash.
#define FELIP_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::felip::internal_check::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                                      \
  } while (0)

// Like FELIP_CHECK but with an explanatory message.
#define FELIP_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::felip::internal_check::CheckFailed(__FILE__, __LINE__, #cond, msg); \
    }                                                                       \
  } while (0)

#endif  // FELIP_COMMON_CHECK_H_
