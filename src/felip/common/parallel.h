// Minimal data-parallel helpers.
//
// FELIP's finalization is embarrassingly parallel across grids (estimation)
// and attribute pairs (response matrices), and its aggregation is
// embarrassingly parallel across user reports. Two primitives cover both:
//
//   * ParallelFor distributes an index range over a bounded number of
//     std::threads; callers use it where iterations touch disjoint state.
//   * ParallelReduce shards an index range into a fixed shard layout, maps
//     every shard into its own accumulator, and folds the accumulators in
//     ascending shard order. Because both the shard boundaries and the
//     fold order depend only on the element count — never on the thread
//     count — the result is bit-identical for every `max_threads` value,
//     even for non-associative accumulation such as floating-point sums.

#ifndef FELIP_COMMON_PARALLEL_H_
#define FELIP_COMMON_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace felip {

// Half-open index range [begin, end) of contiguous slice `slice` out of
// `num_slices` over [0, count). Slices cover [0, count) disjointly, are
// monotone in `slice`, and differ in size by at most one element; when
// count < num_slices the trailing slices are empty. This is the shard
// boundary math used by both ParallelFor and ParallelReduce.
inline std::pair<size_t, size_t> SliceRange(size_t count, size_t slice,
                                            size_t num_slices) {
  return {count * slice / num_slices, count * (slice + 1) / num_slices};
}

// Runs body(i) for i in [0, count), distributing contiguous shards over up
// to `max_threads` threads (0 = hardware concurrency). Falls back to the
// calling thread for small counts. `body` must not throw and iterations
// must be independent.
void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                 unsigned max_threads = 0);

// Fixed shard layout used by ParallelReduce: enough shards to spread work
// without drowning in per-shard accumulators, computed from `count` alone
// so that reduction results never depend on thread availability. Always
// at least 1 (a zero count still gets one empty shard).
inline size_t ReduceShardCount(size_t count) {
  constexpr size_t kMinPerShard = 4096;  // below this, threads cost more
  constexpr size_t kMaxShards = 64;      // bounds accumulator memory
  return std::clamp<size_t>(count / kMinPerShard, 1, kMaxShards);
}

// Deterministic sharded reduction over [0, count).
//
// The range is cut into ReduceShardCount(count) contiguous shards via
// SliceRange. Each shard gets a fresh accumulator from `make()` and is
// processed by `map(acc, begin, end)`; shards run concurrently on up to
// `max_threads` threads (0 = hardware concurrency, 1 = fully serial).
// The shard accumulators are then folded left-to-right in ascending shard
// order with `fold(into, from)` on the calling thread. Shard boundaries
// and fold order depend only on `count`, so the returned accumulator is
// bit-identical for every `max_threads` value. `make`/`map` must not
// throw; `map` calls must touch only their own accumulator.
template <typename MakeFn, typename MapFn, typename FoldFn>
auto ParallelReduce(size_t count, MakeFn&& make, MapFn&& map, FoldFn&& fold,
                    unsigned max_threads = 0) {
  using Acc = std::invoke_result_t<MakeFn&>;
  const size_t num_shards = ReduceShardCount(count);
  if (num_shards == 1) {
    Acc acc = make();
    if (count > 0) map(acc, size_t{0}, count);
    return acc;
  }
  std::vector<Acc> partial;
  partial.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) partial.push_back(make());
  ParallelFor(
      num_shards,
      [&](size_t s) {
        const auto [begin, end] = SliceRange(count, s, num_shards);
        if (begin < end) map(partial[s], begin, end);
      },
      max_threads);
  Acc result = std::move(partial[0]);
  for (size_t s = 1; s < num_shards; ++s) {
    fold(result, std::move(partial[s]));
  }
  return result;
}

}  // namespace felip

#endif  // FELIP_COMMON_PARALLEL_H_
