// Minimal data-parallel helper.
//
// FELIP's finalization is embarrassingly parallel across grids (estimation)
// and attribute pairs (response matrices). ParallelFor shards an index
// range over a bounded number of std::threads; it is deterministic in the
// sense that iteration i always runs the same work regardless of sharding,
// and callers only use it where iterations touch disjoint state.

#ifndef FELIP_COMMON_PARALLEL_H_
#define FELIP_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace felip {

// Runs body(i) for i in [0, count), distributing contiguous shards over up
// to `max_threads` threads (0 = hardware concurrency). Falls back to the
// calling thread for small counts. `body` must not throw and iterations
// must be independent.
void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                 unsigned max_threads = 0);

}  // namespace felip

#endif  // FELIP_COMMON_PARALLEL_H_
