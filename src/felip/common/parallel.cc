#include "felip/common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace felip {

void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                 unsigned max_threads) {
  if (count == 0) return;
  unsigned threads = max_threads != 0 ? max_threads
                                      : std::thread::hardware_concurrency();
  threads = std::max(1u, std::min<unsigned>(threads, count));
  if (threads == 1 || count < 2) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t]() {
      // Contiguous shards keep cache behaviour predictable.
      const auto [begin, end] = SliceRange(count, t, threads);
      for (size_t i = begin; i < end; ++i) body(i);
    });
  }
  for (std::thread& thread : pool) thread.join();
}

}  // namespace felip
