#include "felip/common/rng.h"

#include <cmath>
#include <numbers>

#include "felip/common/check.h"

namespace felip {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // xoshiro256++ requires a nonzero state; SplitMix64 of any seed yields
  // all-zero with probability ~2^-256, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  FELIP_CHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FELIP_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Box–Muller; draw u1 away from zero to keep log() finite.
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Laplace(double b) {
  FELIP_CHECK(b > 0.0);
  // Inverse CDF: u in (-1/2, 1/2], x = -b * sgn(u) * ln(1 - 2|u|).
  double u = UniformDouble() - 0.5;
  while (u == 0.5 || u == -0.5) u = UniformDouble() - 0.5;
  const double sign = u < 0.0 ? -1.0 : 1.0;
  return -b * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  FELIP_CHECK(n > 0);
  FELIP_CHECK(s > 0.0);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) total += std::pow(static_cast<double>(i + 1), -s);
  double target = UniformDouble() * total;
  for (uint64_t i = 0; i < n; ++i) {
    target -= std::pow(static_cast<double>(i + 1), -s);
    if (target <= 0.0) return i;
  }
  return n - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

ZipfDistribution::ZipfDistribution(uint64_t n, double s) {
  FELIP_CHECK(n > 0);
  FELIP_CHECK(s > 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  // First index whose CDF value exceeds u.
  uint64_t lo = 0;
  uint64_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const uint64_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace felip
