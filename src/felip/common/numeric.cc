#include "felip/common/numeric.h"

#include <algorithm>
#include <cmath>

#include "felip/common/check.h"

namespace felip {

double Bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol, int max_iter) {
  FELIP_CHECK(lo <= hi);
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0)) {
    // No sign change: clamp to the better endpoint.
    return std::fabs(flo) <= std::fabs(fhi) ? lo : hi;
  }
  for (int i = 0; i < max_iter && (hi - lo) > tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if ((fmid > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double GoldenSectionMinimize(const std::function<double(double)>& f,
                             double lo, double hi, double tol, int max_iter) {
  FELIP_CHECK(lo <= hi);
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = f(c);
  double fd = f(d);
  for (int i = 0; i < max_iter && (b - a) > tol; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

uint64_t Binomial(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  uint64_t result = 1;
  for (uint64_t i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
  }
  return result;
}

uint32_t RoundGridLength(double raw, uint32_t domain,
                         const std::function<double(double)>& objective) {
  FELIP_CHECK(domain >= 1);
  const double clamped = std::clamp(raw, 1.0, static_cast<double>(domain));
  const auto lo = static_cast<uint32_t>(std::floor(clamped));
  const uint32_t hi = std::min(domain, lo + 1);
  if (lo == hi) return lo;
  return objective(static_cast<double>(lo)) <=
                 objective(static_cast<double>(hi))
             ? lo
             : hi;
}

}  // namespace felip
