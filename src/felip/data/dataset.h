// In-memory multidimensional dataset.
//
// Records are k-dimensional vectors of ordinal-encoded values: every
// attribute (categorical or numerical) is stored as an integer in
// [0, domain). Storage is column-major, which is what both the collection
// loop (one attribute pair per user) and the ground-truth evaluator scan.

#ifndef FELIP_DATA_DATASET_H_
#define FELIP_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "felip/common/check.h"

namespace felip::data {

// Static description of one attribute.
struct AttributeInfo {
  std::string name;
  uint32_t domain = 1;       // number of distinct ordinal values
  bool categorical = false;  // categorical vs numerical (ordinal)
};

class Dataset {
 public:
  // Creates an empty dataset (0 rows) with the given schema.
  explicit Dataset(std::vector<AttributeInfo> attributes);

  // Number of user records.
  uint64_t num_rows() const { return num_rows_; }
  // Number of attributes k.
  uint32_t num_attributes() const {
    return static_cast<uint32_t>(attributes_.size());
  }

  const AttributeInfo& attribute(uint32_t attr) const {
    FELIP_CHECK(attr < attributes_.size());
    return attributes_[attr];
  }
  const std::vector<AttributeInfo>& attributes() const { return attributes_; }

  uint32_t Value(uint64_t row, uint32_t attr) const {
    FELIP_CHECK(attr < columns_.size());
    FELIP_CHECK(row < num_rows_);
    return columns_[attr][row];
  }

  // Whole column, for tight scan loops.
  const std::vector<uint32_t>& Column(uint32_t attr) const {
    FELIP_CHECK(attr < columns_.size());
    return columns_[attr];
  }

  // Appends one record; `values` must have one in-domain value per
  // attribute.
  void AppendRow(const std::vector<uint32_t>& values);

  // Moves a fully formed column set in (each column the same length, values
  // in range). Used by the generators to avoid per-row overhead.
  static Dataset FromColumns(std::vector<AttributeInfo> attributes,
                             std::vector<std::vector<uint32_t>> columns);

  // A dataset with the same schema and the first `n` rows (n <= num_rows).
  Dataset Prefix(uint64_t n) const;

  // A dataset with the schema and columns restricted to `attrs` (indices
  // into this dataset's attributes, in the new order).
  Dataset SelectAttributes(const std::vector<uint32_t>& attrs) const;

 private:
  std::vector<AttributeInfo> attributes_;
  std::vector<std::vector<uint32_t>> columns_;  // [attr][row]
  uint64_t num_rows_ = 0;
};

}  // namespace felip::data

#endif  // FELIP_DATA_DATASET_H_
