#include "felip/data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "felip/common/check.h"
#include "felip/common/rng.h"

namespace felip::data {

namespace {

// Standard normal CDF.
double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

// Inverse-CDF sample: first index whose cumulative mass exceeds u.
uint32_t SampleFromCdf(const std::vector<double>& cdf, double u) {
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  const size_t idx = it == cdf.end() ? cdf.size() - 1
                                     : static_cast<size_t>(it - cdf.begin());
  return static_cast<uint32_t>(idx);
}

std::vector<double> CdfFromPmf(const std::vector<double>& pmf) {
  std::vector<double> cdf(pmf.size());
  double acc = 0.0;
  for (size_t i = 0; i < pmf.size(); ++i) {
    acc += pmf[i];
    cdf[i] = acc;
  }
  cdf.back() = 1.0;  // guard against rounding
  return cdf;
}

}  // namespace

std::vector<double> MarginalPmf(Distribution distribution, uint32_t domain,
                                double param) {
  FELIP_CHECK(domain >= 1);
  std::vector<double> pmf(domain, 0.0);
  const double d = static_cast<double>(domain);
  switch (distribution) {
    case Distribution::kUniform:
      std::fill(pmf.begin(), pmf.end(), 1.0 / d);
      break;
    case Distribution::kGaussian: {
      const double mean = (d - 1.0) / 2.0;
      const double sd = std::max(d / 6.0, 0.5);
      for (uint32_t v = 0; v < domain; ++v) {
        const double z = (static_cast<double>(v) - mean) / sd;
        pmf[v] = std::exp(-0.5 * z * z);
      }
      break;
    }
    case Distribution::kZipf: {
      const double s = param > 0.0 ? param : 1.1;
      for (uint32_t v = 0; v < domain; ++v) {
        pmf[v] = std::pow(static_cast<double>(v + 1), -s);
      }
      break;
    }
    case Distribution::kBimodal: {
      const double sd = std::max(d / 10.0, 0.5);
      const double m1 = d / 4.0;
      const double m2 = 3.0 * d / 4.0;
      for (uint32_t v = 0; v < domain; ++v) {
        const double z1 = (static_cast<double>(v) - m1) / sd;
        const double z2 = (static_cast<double>(v) - m2) / sd;
        pmf[v] = std::exp(-0.5 * z1 * z1) + 0.7 * std::exp(-0.5 * z2 * z2);
      }
      break;
    }
    case Distribution::kExponential: {
      const double rate = param > 0.0 ? param : 5.0;
      for (uint32_t v = 0; v < domain; ++v) {
        pmf[v] = std::exp(-rate * static_cast<double>(v) / d);
      }
      break;
    }
  }
  double total = 0.0;
  for (const double p : pmf) total += p;
  FELIP_CHECK(total > 0.0);
  for (double& p : pmf) p /= total;
  return pmf;
}

Dataset GenerateSynthetic(uint64_t n,
                          const std::vector<SyntheticAttribute>& attributes,
                          uint64_t seed) {
  FELIP_CHECK(!attributes.empty());
  const auto k = static_cast<uint32_t>(attributes.size());

  std::vector<AttributeInfo> infos(k);
  std::vector<std::vector<double>> cdfs(k);
  for (uint32_t a = 0; a < k; ++a) {
    const SyntheticAttribute& spec = attributes[a];
    FELIP_CHECK_MSG(spec.correlate_with < static_cast<int>(a),
                    "correlate_with must reference an earlier attribute");
    FELIP_CHECK(std::fabs(spec.correlation) < 1.0);
    infos[a] = {spec.name, spec.domain, spec.categorical};
    cdfs[a] = CdfFromPmf(
        MarginalPmf(spec.distribution, spec.domain, spec.param));
  }

  std::vector<std::vector<uint32_t>> columns(k);
  for (auto& col : columns) col.resize(n);

  Rng rng(seed);
  std::vector<double> latent(k);  // latent standard normals per row
  for (uint64_t row = 0; row < n; ++row) {
    for (uint32_t a = 0; a < k; ++a) {
      const SyntheticAttribute& spec = attributes[a];
      double z = rng.Gaussian();
      if (spec.correlate_with >= 0) {
        const double rho = spec.correlation;
        z = rho * latent[spec.correlate_with] +
            std::sqrt(1.0 - rho * rho) * z;
      }
      latent[a] = z;
      columns[a][row] = SampleFromCdf(cdfs[a], NormalCdf(z));
    }
  }
  return Dataset::FromColumns(std::move(infos), std::move(columns));
}

namespace {

// Shared recipe for the four named datasets: `num_attributes` attributes
// alternating numerical/categorical (numerical first), marginals given by
// the two callbacks.
Dataset MakeAlternating(
    uint64_t n, uint32_t num_numerical, uint32_t num_categorical,
    uint32_t numerical_domain, uint32_t categorical_domain, uint64_t seed,
    Distribution numerical_dist, Distribution categorical_dist) {
  FELIP_CHECK(num_numerical + num_categorical >= 1);
  std::vector<SyntheticAttribute> specs;
  for (uint32_t i = 0; i < num_numerical; ++i) {
    specs.push_back({.name = "num" + std::to_string(i),
                     .domain = numerical_domain,
                     .categorical = false,
                     .distribution = numerical_dist});
  }
  for (uint32_t i = 0; i < num_categorical; ++i) {
    specs.push_back({.name = "cat" + std::to_string(i),
                     .domain = categorical_domain,
                     .categorical = true,
                     .distribution = categorical_dist});
  }
  return GenerateSynthetic(n, specs, seed);
}

}  // namespace

Dataset MakeUniform(uint64_t n, uint32_t num_numerical,
                    uint32_t num_categorical, uint32_t numerical_domain,
                    uint32_t categorical_domain, uint64_t seed) {
  return MakeAlternating(n, num_numerical, num_categorical, numerical_domain,
                         categorical_domain, seed, Distribution::kUniform,
                         Distribution::kUniform);
}

Dataset MakeNormal(uint64_t n, uint32_t num_numerical,
                   uint32_t num_categorical, uint32_t numerical_domain,
                   uint32_t categorical_domain, uint64_t seed) {
  return MakeAlternating(n, num_numerical, num_categorical, numerical_domain,
                         categorical_domain, seed, Distribution::kGaussian,
                         Distribution::kGaussian);
}

Dataset MakeIpumsLike(uint64_t n, uint32_t num_attributes,
                      uint32_t numerical_domain, uint32_t categorical_domain,
                      uint64_t seed) {
  FELIP_CHECK(num_attributes >= 1 && num_attributes <= 10);
  // 10-attribute census-style schema; attributes alternate numerical /
  // categorical so any prefix keeps a mix of kinds. age↔income and
  // income↔capital-gain correlate through the copula.
  const std::vector<SyntheticAttribute> full = {
      {.name = "age", .domain = numerical_domain, .categorical = false,
       .distribution = Distribution::kGaussian},
      {.name = "education", .domain = categorical_domain, .categorical = true,
       .distribution = Distribution::kZipf, .param = 0.8},
      {.name = "income", .domain = numerical_domain, .categorical = false,
       .distribution = Distribution::kExponential, .param = 4.0,
       .correlate_with = 0, .correlation = 0.45},
      {.name = "marital_status", .domain = categorical_domain,
       .categorical = true, .distribution = Distribution::kZipf,
       .param = 1.2},
      {.name = "hours_per_week", .domain = numerical_domain,
       .categorical = false, .distribution = Distribution::kBimodal},
      {.name = "occupation", .domain = categorical_domain,
       .categorical = true, .distribution = Distribution::kUniform},
      {.name = "capital_gain", .domain = numerical_domain,
       .categorical = false, .distribution = Distribution::kExponential,
       .param = 7.0, .correlate_with = 2, .correlation = 0.35},
      {.name = "race", .domain = categorical_domain, .categorical = true,
       .distribution = Distribution::kZipf, .param = 1.6},
      {.name = "weeks_worked", .domain = numerical_domain,
       .categorical = false, .distribution = Distribution::kGaussian},
      {.name = "sex", .domain = categorical_domain, .categorical = true,
       .distribution = Distribution::kUniform},
  };
  std::vector<SyntheticAttribute> specs(full.begin(),
                                        full.begin() + num_attributes);
  // Drop copula links that point past the kept prefix (cannot happen with
  // this schema, but keep the guard for edits).
  for (auto& s : specs) {
    if (s.correlate_with >= static_cast<int>(num_attributes)) {
      s.correlate_with = -1;
    }
  }
  return GenerateSynthetic(n, specs, seed);
}

Dataset MakeLoanLike(uint64_t n, uint32_t num_attributes,
                     uint32_t numerical_domain, uint32_t categorical_domain,
                     uint64_t seed) {
  FELIP_CHECK(num_attributes >= 1 && num_attributes <= 10);
  const std::vector<SyntheticAttribute> full = {
      {.name = "loan_amount", .domain = numerical_domain,
       .categorical = false, .distribution = Distribution::kExponential,
       .param = 3.0},
      {.name = "grade", .domain = categorical_domain, .categorical = true,
       .distribution = Distribution::kZipf, .param = 1.4},
      {.name = "interest_rate", .domain = numerical_domain,
       .categorical = false, .distribution = Distribution::kGaussian,
       .correlate_with = 1, .correlation = 0.5},
      {.name = "home_ownership", .domain = categorical_domain,
       .categorical = true, .distribution = Distribution::kZipf,
       .param = 2.0},
      {.name = "annual_income", .domain = numerical_domain,
       .categorical = false, .distribution = Distribution::kExponential,
       .param = 6.0},
      {.name = "purpose", .domain = categorical_domain, .categorical = true,
       .distribution = Distribution::kZipf, .param = 1.0},
      {.name = "credit_score", .domain = numerical_domain,
       .categorical = false, .distribution = Distribution::kGaussian,
       .correlate_with = 4, .correlation = 0.4},
      {.name = "term", .domain = categorical_domain, .categorical = true,
       .distribution = Distribution::kZipf, .param = 2.5},
      {.name = "debt_to_income", .domain = numerical_domain,
       .categorical = false, .distribution = Distribution::kBimodal},
      {.name = "verification", .domain = categorical_domain,
       .categorical = true, .distribution = Distribution::kUniform},
  };
  std::vector<SyntheticAttribute> specs(full.begin(),
                                        full.begin() + num_attributes);
  for (auto& s : specs) {
    if (s.correlate_with >= static_cast<int>(num_attributes)) {
      s.correlate_with = -1;
    }
  }
  return GenerateSynthetic(n, specs, seed);
}

}  // namespace felip::data
