// Synthetic dataset generators.
//
// All generators are driven by per-attribute marginal distributions
// (sampled by inverse-CDF over a precomputed pmf) and an optional Gaussian
// copula for pairwise correlation: correlated attributes share a latent
// standard-normal factor, and each attribute maps its latent percentile
// through its own marginal inverse CDF. This reproduces the properties the
// paper's experiments exercise — marginal skew, inter-attribute
// correlation, and mixed attribute types — with fully reproducible seeds.
//
// MakeIpumsLike / MakeLoanLike are the documented substitutes for the
// paper's IPUMS census extract and Lending Club loan data (see DESIGN.md,
// "Substitutions").

#ifndef FELIP_DATA_SYNTHETIC_H_
#define FELIP_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "felip/data/dataset.h"

namespace felip::data {

// Marginal distribution families for one attribute.
enum class Distribution {
  kUniform,
  kGaussian,     // truncated, mean = d/2, sd = d/6 (covers the domain)
  kZipf,         // pmf ∝ 1/(v+1)^param (param = exponent, default 1.1)
  kBimodal,      // two Gaussian bumps at d/4 and 3d/4, sd = d/10
  kExponential,  // right-skewed, pmf ∝ exp(-param * v / d) (default 5)
};

struct SyntheticAttribute {
  std::string name;
  uint32_t domain = 1;
  bool categorical = false;
  Distribution distribution = Distribution::kUniform;
  double param = 0.0;  // family parameter; 0 => family default
  // Index of an earlier attribute this one correlates with via the Gaussian
  // copula, or -1 for independence.
  int correlate_with = -1;
  double correlation = 0.0;  // in (-1, 1)
};

// Probability mass function of one marginal over [0, domain); sums to 1.
std::vector<double> MarginalPmf(Distribution distribution, uint32_t domain,
                                double param);

// Generates n rows from the attribute specs.
Dataset GenerateSynthetic(uint64_t n,
                          const std::vector<SyntheticAttribute>& attributes,
                          uint64_t seed);

// The paper's "Uniform" dataset: `num_numerical` numerical +
// `num_categorical` categorical attributes, all marginals uniform.
Dataset MakeUniform(uint64_t n, uint32_t num_numerical,
                    uint32_t num_categorical, uint32_t numerical_domain,
                    uint32_t categorical_domain, uint64_t seed);

// The paper's "Normal" dataset: truncated Gaussians centered mid-domain.
Dataset MakeNormal(uint64_t n, uint32_t num_numerical,
                   uint32_t num_categorical, uint32_t numerical_domain,
                   uint32_t categorical_domain, uint64_t seed);

// IPUMS-like census simulator: 10 attributes (5 categorical + 5 numerical)
// with heterogeneous skew and age↔income-style correlations. Domains are
// configurable so the paper's attribute/domain sweeps can reuse it; pass 0
// to keep only the first `num_attributes` attributes (alternating kinds).
Dataset MakeIpumsLike(uint64_t n, uint32_t num_attributes,
                      uint32_t numerical_domain, uint32_t categorical_domain,
                      uint64_t seed);

// Lending-Club-like simulator: heavier categorical point masses and long
// right tails on the numerical attributes.
Dataset MakeLoanLike(uint64_t n, uint32_t num_attributes,
                     uint32_t numerical_domain, uint32_t categorical_domain,
                     uint64_t seed);

}  // namespace felip::data

#endif  // FELIP_DATA_SYNTHETIC_H_
