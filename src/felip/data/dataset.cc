#include "felip/data/dataset.h"

#include <utility>

namespace felip::data {

Dataset::Dataset(std::vector<AttributeInfo> attributes)
    : attributes_(std::move(attributes)), columns_(attributes_.size()) {
  FELIP_CHECK_MSG(!attributes_.empty(), "dataset needs >= 1 attribute");
  for (const AttributeInfo& a : attributes_) {
    FELIP_CHECK_MSG(a.domain >= 1, "attribute domain must be >= 1");
  }
}

void Dataset::AppendRow(const std::vector<uint32_t>& values) {
  FELIP_CHECK(values.size() == attributes_.size());
  for (size_t a = 0; a < values.size(); ++a) {
    FELIP_CHECK_MSG(values[a] < attributes_[a].domain,
                    "row value out of attribute domain");
    columns_[a].push_back(values[a]);
  }
  ++num_rows_;
}

Dataset Dataset::FromColumns(std::vector<AttributeInfo> attributes,
                             std::vector<std::vector<uint32_t>> columns) {
  Dataset ds(std::move(attributes));
  FELIP_CHECK(columns.size() == ds.attributes_.size());
  const uint64_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t a = 0; a < columns.size(); ++a) {
    FELIP_CHECK_MSG(columns[a].size() == rows, "ragged columns");
    for (const uint32_t v : columns[a]) {
      FELIP_CHECK_MSG(v < ds.attributes_[a].domain,
                      "column value out of attribute domain");
    }
  }
  ds.columns_ = std::move(columns);
  ds.num_rows_ = rows;
  return ds;
}

Dataset Dataset::Prefix(uint64_t n) const {
  FELIP_CHECK(n <= num_rows_);
  std::vector<std::vector<uint32_t>> cols(columns_.size());
  for (size_t a = 0; a < columns_.size(); ++a) {
    cols[a].assign(columns_[a].begin(), columns_[a].begin() + n);
  }
  return FromColumns(attributes_, std::move(cols));
}

Dataset Dataset::SelectAttributes(const std::vector<uint32_t>& attrs) const {
  std::vector<AttributeInfo> infos;
  std::vector<std::vector<uint32_t>> cols;
  infos.reserve(attrs.size());
  cols.reserve(attrs.size());
  for (const uint32_t a : attrs) {
    FELIP_CHECK(a < attributes_.size());
    infos.push_back(attributes_[a]);
    cols.push_back(columns_[a]);
  }
  return FromColumns(std::move(infos), std::move(cols));
}

}  // namespace felip::data
