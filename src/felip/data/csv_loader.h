// CSV loading with ordinal encoding.
//
// Lets users run FELIP on real extracts (e.g. the IPUMS or Lending Club
// files the paper used) without preprocessing: categorical columns are
// dictionary-encoded in first-appearance order; numerical columns are
// parsed as doubles and equi-width quantized into the requested domain.

#ifndef FELIP_DATA_CSV_LOADER_H_
#define FELIP_DATA_CSV_LOADER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "felip/data/dataset.h"

namespace felip::data {

struct CsvColumnSpec {
  std::string name;          // header name to select
  bool categorical = false;  // dictionary-encode vs quantize
  // Target domain. For categorical columns 0 means "use the number of
  // distinct values observed"; for numerical columns it is required.
  uint32_t domain = 0;
  // Numerical columns only: equi-depth (quantile) bins instead of
  // equi-width. Equi-depth keeps heavy-tailed columns (income, loan
  // amounts) from collapsing into one bin.
  bool equi_depth = false;
};

struct CsvLoadResult {
  Dataset dataset;
  // For each categorical column, the dictionary mapping ordinal -> label.
  std::vector<std::vector<std::string>> dictionaries;
  // For each numerical column, the (min, max) used for quantization.
  std::vector<std::pair<double, double>> numeric_ranges;
  uint64_t rows_skipped = 0;  // rows dropped due to parse errors
};

// Loads `path` selecting the given columns. Returns std::nullopt when the
// file cannot be opened, a selected column is missing from the header, or a
// categorical column exceeds its declared domain. Rows with unparsable
// numerical fields are skipped and counted.
std::optional<CsvLoadResult> LoadCsv(const std::string& path,
                                     const std::vector<CsvColumnSpec>& columns,
                                     uint64_t max_rows = 0);

// Splits one CSV line honoring double quotes (exposed for tests).
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace felip::data

#endif  // FELIP_DATA_CSV_LOADER_H_
