#include "felip/data/csv_loader.h"

#include <algorithm>
#include <cmath>
#include <charconv>
#include <fstream>
#include <unordered_map>

namespace felip::data {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

namespace {

std::optional<double> ParseDouble(const std::string& s) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

}  // namespace

std::optional<CsvLoadResult> LoadCsv(
    const std::string& path, const std::vector<CsvColumnSpec>& columns,
    uint64_t max_rows) {
  if (columns.empty()) return std::nullopt;
  std::ifstream file(path);
  if (!file.is_open()) return std::nullopt;

  std::string line;
  if (!std::getline(file, line)) return std::nullopt;
  const std::vector<std::string> header = SplitCsvLine(line);

  // Map selected columns to CSV field indices.
  std::vector<size_t> field_index(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    const auto it = std::find(header.begin(), header.end(), columns[c].name);
    if (it == header.end()) return std::nullopt;
    field_index[c] = static_cast<size_t>(it - header.begin());
  }

  // First pass: read raw fields (bounded by max_rows if given).
  struct RawColumn {
    std::vector<std::string> labels;  // categorical
    std::vector<double> values;      // numerical
  };
  std::vector<RawColumn> raw(columns.size());
  uint64_t rows_skipped = 0;
  uint64_t rows_kept = 0;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    if (max_rows > 0 && rows_kept >= max_rows) break;
    const std::vector<std::string> fields = SplitCsvLine(line);
    bool ok = fields.size() >= header.size();
    std::vector<double> parsed(columns.size(), 0.0);
    if (ok) {
      for (size_t c = 0; c < columns.size() && ok; ++c) {
        if (!columns[c].categorical) {
          const auto v = ParseDouble(fields[field_index[c]]);
          if (!v.has_value()) {
            ok = false;
          } else {
            parsed[c] = *v;
          }
        }
      }
    }
    if (!ok) {
      ++rows_skipped;
      continue;
    }
    for (size_t c = 0; c < columns.size(); ++c) {
      if (columns[c].categorical) {
        raw[c].labels.push_back(fields[field_index[c]]);
      } else {
        raw[c].values.push_back(parsed[c]);
      }
    }
    ++rows_kept;
  }

  // Second pass: encode.
  std::vector<AttributeInfo> infos(columns.size());
  std::vector<std::vector<uint32_t>> encoded(columns.size());
  std::vector<std::vector<std::string>> dictionaries;
  std::vector<std::pair<double, double>> numeric_ranges;
  for (size_t c = 0; c < columns.size(); ++c) {
    encoded[c].resize(rows_kept);
    if (columns[c].categorical) {
      std::unordered_map<std::string, uint32_t> dict;
      std::vector<std::string> ordered;
      for (size_t r = 0; r < rows_kept; ++r) {
        const std::string& label = raw[c].labels[r];
        auto [it, inserted] =
            dict.emplace(label, static_cast<uint32_t>(ordered.size()));
        if (inserted) ordered.push_back(label);
        encoded[c][r] = it->second;
      }
      const auto distinct = static_cast<uint32_t>(ordered.size());
      if (columns[c].domain != 0 && distinct > columns[c].domain) {
        return std::nullopt;  // more labels than the declared domain
      }
      infos[c] = {columns[c].name,
                  columns[c].domain != 0 ? columns[c].domain
                                         : std::max<uint32_t>(distinct, 1),
                  true};
      dictionaries.push_back(std::move(ordered));
    } else {
      if (columns[c].domain == 0) return std::nullopt;
      double lo = 0.0;
      double hi = 0.0;
      if (rows_kept > 0) {
        lo = *std::min_element(raw[c].values.begin(), raw[c].values.end());
        hi = *std::max_element(raw[c].values.begin(), raw[c].values.end());
      }
      const double span = hi > lo ? hi - lo : 1.0;
      const uint32_t d = columns[c].domain;
      if (columns[c].equi_depth && rows_kept > 0) {
        // Quantile boundaries: bin k covers values in
        // [sorted[k*n/d], sorted[(k+1)*n/d]).
        std::vector<double> sorted = raw[c].values;
        std::sort(sorted.begin(), sorted.end());
        std::vector<double> upper(d);
        for (uint32_t k = 0; k < d; ++k) {
          // Bin k holds ranks [n*k/d, n*(k+1)/d); its inclusive upper
          // boundary is the last rank inside it.
          size_t idx = static_cast<size_t>(rows_kept) * (k + 1) / d;
          idx = idx == 0 ? 0 : idx - 1;
          upper[k] = sorted[std::min<size_t>(idx, rows_kept - 1)];
        }
        for (size_t r = 0; r < rows_kept; ++r) {
          const auto it = std::lower_bound(upper.begin(), upper.end() - 1,
                                           raw[c].values[r]);
          encoded[c][r] = static_cast<uint32_t>(it - upper.begin());
        }
      } else {
        for (size_t r = 0; r < rows_kept; ++r) {
          const double frac = (raw[c].values[r] - lo) / span;
          const auto bin = static_cast<uint32_t>(std::min(
              static_cast<double>(d - 1), std::floor(frac * d)));
          encoded[c][r] = bin;
        }
      }
      infos[c] = {columns[c].name, d, false};
      numeric_ranges.emplace_back(lo, hi);
    }
  }

  CsvLoadResult result{
      Dataset::FromColumns(std::move(infos), std::move(encoded)),
      std::move(dictionaries), std::move(numeric_ranges), rows_skipped};
  return result;
}

}  // namespace felip::data
