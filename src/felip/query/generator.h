// Random workload generation (Section 6.2).
//
// Mirrors the paper's evaluation: λ attributes are drawn at random; each
// numerical attribute gets a BETWEEN predicate covering a fraction s of its
// domain at a random offset, each categorical attribute an IN predicate
// over ceil(s * d) random values.

#ifndef FELIP_QUERY_GENERATOR_H_
#define FELIP_QUERY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "felip/common/rng.h"
#include "felip/data/dataset.h"
#include "felip/query/query.h"

namespace felip::query {

struct GeneratorOptions {
  uint32_t dimension = 2;    // λ, clamped to the number of attributes
  double selectivity = 0.5;  // per-attribute fraction s in (0, 1]
  // Restrict to numerical attributes with BETWEEN predicates only (the
  // Section 6.3 range-query setting used against TDG/HDG).
  bool range_only = false;
};

// Generates one random query.
Query GenerateQuery(const data::Dataset& dataset,
                    const GeneratorOptions& options, Rng& rng);

// Generates `count` independent random queries.
std::vector<Query> GenerateQueries(const data::Dataset& dataset,
                                   uint32_t count,
                                   const GeneratorOptions& options, Rng& rng);

}  // namespace felip::query

#endif  // FELIP_QUERY_GENERATOR_H_
