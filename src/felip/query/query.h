// Multi-dimensional counting queries (Section 4).
//
// A λ-dimensional query is a conjunction of per-attribute predicates:
// equality / IN over categorical values, BETWEEN over ordinal ranges. Its
// answer is the fraction of records satisfying every predicate.

#ifndef FELIP_QUERY_QUERY_H_
#define FELIP_QUERY_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "felip/data/dataset.h"
#include "felip/grid/grid.h"

namespace felip::query {

enum class Op {
  kEquals,   // attribute == value (lo == hi)
  kIn,       // attribute in {values}
  kBetween,  // lo <= attribute <= hi
};

struct Predicate {
  uint32_t attr = 0;
  Op op = Op::kBetween;
  uint32_t lo = 0;  // kBetween / kEquals
  uint32_t hi = 0;
  std::vector<uint32_t> values;  // kIn

  // True when `value` satisfies this predicate.
  bool Matches(uint32_t value) const;

  // Grid-layer selection equivalent to this predicate.
  grid::AxisSelection ToSelection() const;

  // Number of domain values the predicate selects.
  uint64_t SelectedCount(uint32_t domain) const;
};

class Query {
 public:
  // Predicates must reference distinct attributes.
  explicit Query(std::vector<Predicate> predicates);

  const std::vector<Predicate>& predicates() const { return predicates_; }
  uint32_t dimension() const {
    return static_cast<uint32_t>(predicates_.size());
  }

  // The predicate on `attr`, or nullptr when unconstrained.
  const Predicate* FindPredicate(uint32_t attr) const;

  bool Matches(const data::Dataset& dataset, uint64_t row) const;

 private:
  std::vector<Predicate> predicates_;  // sorted by attribute index
};

// Exact answer of `query` over `dataset`, as a fraction of records.
double TrueAnswer(const data::Dataset& dataset, const Query& query);

// --- Schema validation ---
//
// A predicate can be structurally well-formed yet reference values outside
// its attribute's domain (a BETWEEN with hi >= domain, an IN listing an
// out-of-domain value). Such predicates would silently skew coverage
// denominators if answered, so every answering entry point — in-process
// AnswerQuery and the networked query service — rejects them up front.
// Returns std::nullopt when valid, else a description of the first
// violation.
std::optional<std::string> ValidatePredicate(
    const Predicate& predicate,
    const std::vector<data::AttributeInfo>& schema);
std::optional<std::string> ValidateQuery(
    const Query& query, const std::vector<data::AttributeInfo>& schema);

}  // namespace felip::query

#endif  // FELIP_QUERY_QUERY_H_
