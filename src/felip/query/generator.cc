#include "felip/query/generator.h"

#include <algorithm>
#include <cmath>

#include "felip/common/check.h"

namespace felip::query {

Query GenerateQuery(const data::Dataset& dataset,
                    const GeneratorOptions& options, Rng& rng) {
  FELIP_CHECK(options.dimension >= 1);
  FELIP_CHECK(options.selectivity > 0.0 && options.selectivity <= 1.0);

  // Candidate attributes.
  std::vector<uint32_t> candidates;
  for (uint32_t a = 0; a < dataset.num_attributes(); ++a) {
    if (options.range_only && dataset.attribute(a).categorical) continue;
    candidates.push_back(a);
  }
  FELIP_CHECK_MSG(!candidates.empty(), "no eligible attributes for queries");
  const uint32_t lambda =
      std::min<uint32_t>(options.dimension,
                         static_cast<uint32_t>(candidates.size()));

  // Partial Fisher–Yates draw of λ distinct attributes.
  for (uint32_t i = 0; i < lambda; ++i) {
    const auto j =
        i + static_cast<uint32_t>(rng.UniformU64(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
  }

  std::vector<Predicate> predicates;
  predicates.reserve(lambda);
  for (uint32_t i = 0; i < lambda; ++i) {
    const uint32_t attr = candidates[i];
    const data::AttributeInfo& info = dataset.attribute(attr);
    const auto selected = std::max<uint32_t>(
        1, static_cast<uint32_t>(
               std::llround(options.selectivity * info.domain)));
    Predicate p;
    p.attr = attr;
    if (info.categorical && !options.range_only) {
      // IN over `selected` distinct random values.
      std::vector<uint32_t> values(info.domain);
      for (uint32_t v = 0; v < info.domain; ++v) values[v] = v;
      for (uint32_t v = 0; v < selected; ++v) {
        const auto j =
            v + static_cast<uint32_t>(rng.UniformU64(values.size() - v));
        std::swap(values[v], values[j]);
      }
      values.resize(selected);
      if (selected == 1) {
        p.op = Op::kEquals;
        p.lo = p.hi = values[0];
      } else {
        p.op = Op::kIn;
        p.values = std::move(values);
      }
    } else {
      // BETWEEN over a random interval of `selected` values.
      const uint32_t span = std::min(selected, info.domain);
      const auto start = static_cast<uint32_t>(
          rng.UniformU64(info.domain - span + 1));
      p.op = Op::kBetween;
      p.lo = start;
      p.hi = start + span - 1;
    }
    predicates.push_back(std::move(p));
  }
  return Query(std::move(predicates));
}

std::vector<Query> GenerateQueries(const data::Dataset& dataset,
                                   uint32_t count,
                                   const GeneratorOptions& options,
                                   Rng& rng) {
  std::vector<Query> queries;
  queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    queries.push_back(GenerateQuery(dataset, options, rng));
  }
  return queries;
}

}  // namespace felip::query
