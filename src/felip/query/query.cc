#include "felip/query/query.h"

#include <algorithm>

#include "felip/common/check.h"

namespace felip::query {

bool Predicate::Matches(uint32_t value) const {
  switch (op) {
    case Op::kEquals:
      return value == lo;
    case Op::kBetween:
      return value >= lo && value <= hi;
    case Op::kIn:
      return std::find(values.begin(), values.end(), value) != values.end();
  }
  return false;
}

grid::AxisSelection Predicate::ToSelection() const {
  switch (op) {
    case Op::kEquals:
      return grid::AxisSelection::MakeRange(lo, lo);
    case Op::kBetween:
      return grid::AxisSelection::MakeRange(lo, hi);
    case Op::kIn:
      return grid::AxisSelection::MakeSet(values);
  }
  FELIP_CHECK_MSG(false, "unreachable");
  return grid::AxisSelection::MakeRange(0, 0);
}

uint64_t Predicate::SelectedCount(uint32_t domain) const {
  return ToSelection().SelectedCount(domain);
}

Query::Query(std::vector<Predicate> predicates)
    : predicates_(std::move(predicates)) {
  FELIP_CHECK_MSG(!predicates_.empty(), "query needs >= 1 predicate");
  std::sort(predicates_.begin(), predicates_.end(),
            [](const Predicate& a, const Predicate& b) {
              return a.attr < b.attr;
            });
  for (size_t i = 1; i < predicates_.size(); ++i) {
    FELIP_CHECK_MSG(predicates_[i - 1].attr != predicates_[i].attr,
                    "duplicate attribute in query");
  }
  for (const Predicate& p : predicates_) {
    if (p.op == Op::kBetween) FELIP_CHECK(p.lo <= p.hi);
    if (p.op == Op::kIn) FELIP_CHECK(!p.values.empty());
  }
}

const Predicate* Query::FindPredicate(uint32_t attr) const {
  for (const Predicate& p : predicates_) {
    if (p.attr == attr) return &p;
  }
  return nullptr;
}

bool Query::Matches(const data::Dataset& dataset, uint64_t row) const {
  for (const Predicate& p : predicates_) {
    if (!p.Matches(dataset.Value(row, p.attr))) return false;
  }
  return true;
}

double TrueAnswer(const data::Dataset& dataset, const Query& query) {
  FELIP_CHECK(dataset.num_rows() > 0);
  for (const Predicate& p : query.predicates()) {
    FELIP_CHECK(p.attr < dataset.num_attributes());
  }
  // Column-wise evaluation: intersect per-predicate match masks.
  std::vector<uint8_t> match(dataset.num_rows(), 1);
  for (const Predicate& p : query.predicates()) {
    const std::vector<uint32_t>& col = dataset.Column(p.attr);
    if (p.op == Op::kBetween || p.op == Op::kEquals) {
      const uint32_t lo = p.lo;
      const uint32_t hi = p.op == Op::kEquals ? p.lo : p.hi;
      for (uint64_t r = 0; r < col.size(); ++r) {
        match[r] &= static_cast<uint8_t>(col[r] >= lo && col[r] <= hi);
      }
    } else {
      std::vector<uint32_t> sorted = p.values;
      std::sort(sorted.begin(), sorted.end());
      for (uint64_t r = 0; r < col.size(); ++r) {
        match[r] &= static_cast<uint8_t>(
            std::binary_search(sorted.begin(), sorted.end(), col[r]));
      }
    }
  }
  uint64_t count = 0;
  for (const uint8_t m : match) count += m;
  return static_cast<double>(count) / static_cast<double>(dataset.num_rows());
}

namespace {

std::string Describe(const Predicate& p, const char* what, uint64_t value,
                     uint32_t domain) {
  return "predicate on attribute " + std::to_string(p.attr) + ": " + what +
         " " + std::to_string(value) + " outside domain [0, " +
         std::to_string(domain) + ")";
}

}  // namespace

std::optional<std::string> ValidatePredicate(
    const Predicate& predicate,
    const std::vector<data::AttributeInfo>& schema) {
  if (predicate.attr >= schema.size()) {
    return "predicate references attribute " +
           std::to_string(predicate.attr) + " but the schema has " +
           std::to_string(schema.size()) + " attributes";
  }
  const uint32_t domain = schema[predicate.attr].domain;
  switch (predicate.op) {
    case Op::kEquals:
      if (predicate.lo >= domain) {
        return Describe(predicate, "value", predicate.lo, domain);
      }
      break;
    case Op::kBetween:
      if (predicate.lo > predicate.hi) {
        return "predicate on attribute " + std::to_string(predicate.attr) +
               ": BETWEEN bounds inverted (lo " +
               std::to_string(predicate.lo) + " > hi " +
               std::to_string(predicate.hi) + ")";
      }
      if (predicate.hi >= domain) {
        return Describe(predicate, "upper bound", predicate.hi, domain);
      }
      break;
    case Op::kIn:
      if (predicate.values.empty()) {
        return "predicate on attribute " + std::to_string(predicate.attr) +
               ": IN lists no values";
      }
      for (const uint32_t v : predicate.values) {
        if (v >= domain) return Describe(predicate, "IN value", v, domain);
      }
      break;
  }
  return std::nullopt;
}

std::optional<std::string> ValidateQuery(
    const Query& query, const std::vector<data::AttributeInfo>& schema) {
  for (const Predicate& p : query.predicates()) {
    if (auto error = ValidatePredicate(p, schema)) return error;
  }
  return std::nullopt;
}

}  // namespace felip::query
