#include "felip/simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "felip/common/check.h"

namespace felip::simd {

namespace {

// Sentinel for "no override active" in the atomic override slot.
constexpr int kNoOverride = -1;

std::atomic<int> g_override{kNoOverride};

// Best compiled-in level this CPU can run, ignoring FELIP_SIMD.
Level DetectBestLevel() {
#if defined(FELIP_SIMD_HAS_AVX2)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
#if defined(FELIP_SIMD_HAS_NEON)
  return Level::kNeon;
#endif
  return Level::kScalar;
}

struct Resolved {
  Level level;
  std::string how;
};

Resolved ResolveFromEnvironment() {
  const char* env = std::getenv("FELIP_SIMD");
  if (env == nullptr || env[0] == '\0') {
    return {DetectBestLevel(), "auto-detected"};
  }
  Level requested;
  if (!ParseLevel(env, &requested)) {
    std::fprintf(stderr,
                 "FELIP_SIMD=%s is not scalar|avx2|neon|auto; "
                 "using auto-detection\n",
                 env);
    return {DetectBestLevel(), "auto-detected (bad FELIP_SIMD ignored)"};
  }
  if (!LevelSupported(requested)) {
    std::fprintf(stderr,
                 "FELIP_SIMD=%s requests a level this build/CPU cannot "
                 "run; falling back to scalar\n",
                 env);
    return {Level::kScalar, std::string("scalar fallback (FELIP_SIMD=") +
                                env + " unavailable)"};
  }
  return {requested, std::string("FELIP_SIMD=") + env};
}

const Resolved& StartupResolution() {
  static const Resolved resolved = ResolveFromEnvironment();
  return resolved;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "unknown";
}

bool ParseLevel(std::string_view token, Level* level) {
  FELIP_CHECK(level != nullptr);
  if (token == "scalar") {
    *level = Level::kScalar;
    return true;
  }
  if (token == "avx2") {
    *level = Level::kAvx2;
    return true;
  }
  if (token == "neon") {
    *level = Level::kNeon;
    return true;
  }
  if (token == "auto") {
    *level = DetectBestLevel();
    return true;
  }
  return false;
}

std::vector<Level> CompiledLevels() {
  std::vector<Level> levels = {Level::kScalar};
#if defined(FELIP_SIMD_HAS_AVX2)
  levels.push_back(Level::kAvx2);
#endif
#if defined(FELIP_SIMD_HAS_NEON)
  levels.push_back(Level::kNeon);
#endif
  return levels;
}

bool LevelSupported(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
#if defined(FELIP_SIMD_HAS_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kNeon:
#if defined(FELIP_SIMD_HAS_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Level ActiveLevel() {
  const int override_level = g_override.load(std::memory_order_relaxed);
  if (override_level != kNoOverride) {
    return static_cast<Level>(override_level);
  }
  return StartupResolution().level;
}

std::string DescribeDispatch() {
  const Resolved& resolved = StartupResolution();
  return std::string(LevelName(ActiveLevel())) + " (" + resolved.how + ")";
}

ScopedLevelOverride::ScopedLevelOverride(Level level) {
  FELIP_CHECK_MSG(LevelSupported(level),
                  "ScopedLevelOverride on an unsupported dispatch level");
  previous_ = g_override.exchange(static_cast<int>(level),
                                  std::memory_order_relaxed);
}

ScopedLevelOverride::~ScopedLevelOverride() {
  g_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace felip::simd
