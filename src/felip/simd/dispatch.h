// Runtime SIMD dispatch for the hot-loop kernels in felip/simd/kernels.h.
//
// Every kernel has a scalar baseline plus optional AVX2 / NEON variants
// compiled into their own translation units with the matching target
// flags. Which variant runs is decided ONCE at startup:
//
//   1. FELIP_SIMD=scalar|avx2|neon|auto forces a level. Requesting a level
//      that is not compiled in or not supported by this CPU falls back to
//      scalar with a warning on stderr (never to a different vector level,
//      so a forced run is always comparable to what was asked for).
//   2. Otherwise the best compiled-in level the CPU supports is picked via
//      CPUID (x86) / architecture (aarch64, where NEON is baseline).
//
// Dispatch never affects results: every vector kernel is required — and
// differentially tested (tests/simd/) — to be BIT-IDENTICAL to the scalar
// baseline for any input, including all remainder/tail lengths. Floating
// point kernels achieve this by defining one canonical lane-folded
// accumulation order that the scalar baseline implements literally (see
// docs/simd.md); integer kernels are exact by nature.

#ifndef FELIP_SIMD_DISPATCH_H_
#define FELIP_SIMD_DISPATCH_H_

#include <string>
#include <string_view>
#include <vector>

namespace felip::simd {

enum class Level {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

// Stable lowercase name ("scalar", "avx2", "neon") — the same tokens
// FELIP_SIMD accepts and the BENCH_*.json `dispatch` field records.
const char* LevelName(Level level);

// Parses a FELIP_SIMD value. Returns true and sets *level for a valid
// token ("auto" maps to the detected best level); false for junk.
bool ParseLevel(std::string_view token, Level* level);

// Levels whose kernels are compiled into this binary (always includes
// kScalar, in ascending Level order).
std::vector<Level> CompiledLevels();

// True when this machine can execute `level`'s kernels (kScalar always;
// kAvx2/kNeon require both compiled-in support and CPU capability).
bool LevelSupported(Level level);

// The level selected at startup (CPUID + FELIP_SIMD override), or the
// innermost active ScopedLevelOverride. All hot-loop call sites read this
// per call, so an override applies to everything downstream.
Level ActiveLevel();

// Human-readable description of how the active level was chosen, e.g.
// "avx2 (auto-detected)" or "scalar (FELIP_SIMD=scalar)".
std::string DescribeDispatch();

// Test-only: forces ActiveLevel() to `level` for this scope. The level
// must be supported (FELIP_CHECKed). Not reentrancy-safe across threads —
// install before spawning workers, as the differential and golden tests
// do.
class ScopedLevelOverride {
 public:
  explicit ScopedLevelOverride(Level level);
  ~ScopedLevelOverride();
  ScopedLevelOverride(const ScopedLevelOverride&) = delete;
  ScopedLevelOverride& operator=(const ScopedLevelOverride&) = delete;

 private:
  int previous_;
};

}  // namespace felip::simd

#endif  // FELIP_SIMD_DISPATCH_H_
