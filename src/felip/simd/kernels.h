// Hot-loop kernels with runtime-dispatched scalar / AVX2 / NEON variants.
//
// Callers pass a dispatch Level explicitly (normally simd::ActiveLevel());
// levels that are not compiled into the binary silently execute the scalar
// baseline, so passing any Level is always safe. Every variant of every
// kernel is bit-identical to the scalar baseline for every input — the
// contract tests/simd/kernel_differential_test.cc enforces across all
// remainder lengths, adversarial values, and random seeds:
//
//   * Integer kernels (byte counting, histograms, OLH support) are exact
//     by nature — the vector variants merely reorganize commutative
//     integer additions.
//   * Floating-point kernels (Dot, Sum, ScaleAbsDelta) define ONE
//     canonical accumulation order — kLanes independent lane accumulators
//     folded as (l0 + l1) + (l2 + l3), then a sequential tail — which the
//     scalar baseline implements literally and the vector variants map
//     onto their registers. All kernel translation units are compiled
//     with -ffp-contract=off so no variant (including scalar) silently
//     fuses a multiply-add. See docs/simd.md.

#ifndef FELIP_SIMD_KERNELS_H_
#define FELIP_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "felip/simd/dispatch.h"

namespace felip::simd {

// Lane count of the canonical floating-point accumulation order (one
// AVX2 double register). Tail lengths 0..kLanes+1 are the interesting
// differential-test cases.
inline constexpr size_t kLanes = 4;

// --- Integer kernels (exact; any reordering is bit-identical) ---

// OUE bit-unpacking: acc[i] += (bits[i] != 0) for i in [0, n).
void AccumulateNonzeroBytes(Level level, const uint8_t* bits, size_t n,
                            uint64_t* acc);

// into[i] += from[i] for i in [0, n). (Accumulator folds.)
void AddU64(Level level, uint64_t* into, const uint64_t* from, size_t n);

// GRR / pooled-OLH support counting: ++acc[keys[i]] for i in [0, n).
// Every key must be < bins (callers validate; the kernel does not).
// Non-scalar levels split small histograms across conflict-free lane
// copies (structure-of-arrays) to break store-to-load dependency chains,
// then fold — integer adds, so counts are identical to the scalar loop.
void HistogramU64(Level level, const uint64_t* keys, size_t n,
                  uint64_t* acc, size_t bins);

// Per-user OLH support counting over a contiguous value range:
//   acc[i] += (XxHash64(first_value + i, seed) % g == target)
// for i in [0, n). Requires g >= 2 and target < g. The AVX2 variant
// evaluates the specialized 8-byte xxHash64 and the mod-g reduction in
// 64-bit lanes (see fastdiv.h).
void OlhSupportRange(Level level, uint64_t seed, uint32_t g,
                     uint32_t target, uint64_t first_value, size_t n,
                     uint64_t* acc);

// Pooled OLH support of one value: sum over s in [0, num_seeds) of
// pool_counts[s * g + XxHash64(value, seeds[s]) % g]. Requires g >= 2.
uint64_t OlhPoolSupport(Level level, uint64_t value, const uint64_t* seeds,
                        size_t num_seeds, uint32_t g,
                        const uint32_t* pool_counts);

// --- Floating-point kernels (canonical lane-folded order) ---

// dst[i] = a[i] + b[i] for i in [0, n). Element-wise, so exact at any
// width. (Prefix-sum row propagation.)
void AddF64(Level level, const double* a, const double* b, double* dst,
            size_t n);

// Canonical lane-folded dot product of a[0..n) and b[0..n).
double Dot(Level level, const double* a, const double* b, size_t n);

// Canonical lane-folded sum of p[0..n).
double Sum(Level level, const double* p, size_t n);

// p[i] *= scale for i in [0, n); returns the canonical lane-folded sum of
// |p_after - p_before|. (Weighted-update rescale + convergence residual.)
double ScaleAbsDelta(Level level, double* p, size_t n, double scale);

}  // namespace felip::simd

#endif  // FELIP_SIMD_KERNELS_H_
