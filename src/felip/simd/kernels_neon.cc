// NEON kernel variants (AArch64). Compiled only when the toolchain
// targets ARM with Advanced SIMD (see CMakeLists.txt); the OLH hash
// kernels intentionally have no NEON variant yet and inherit the scalar
// baseline via the trampolines.
//
// NEON double vectors are 2 lanes wide, so the canonical 4-lane
// accumulation order is carried in two float64x2_t registers: acc01
// holds scalar lanes {0,1}, acc23 holds {2,3}. The fold
// (l0 + l1) + (l2 + l3) then maps onto one vpaddd per pair.

#if defined(FELIP_SIMD_HAS_NEON)

#include <arm_neon.h>

#include <cmath>

#include "felip/simd/kernels.h"
#include "felip/simd/kernels_internal.h"

namespace felip::simd::neon {

void AccumulateNonzeroBytes(const uint8_t* bits, size_t n, uint64_t* acc) {
  const uint8x16_t one = vdupq_n_u8(1);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t ones = vminq_u8(vld1q_u8(bits + i), one);
    // Widen byte lanes 0/1-valued to uint64_t and accumulate.
    const uint16x8_t w16_lo = vmovl_u8(vget_low_u8(ones));
    const uint16x8_t w16_hi = vmovl_u8(vget_high_u8(ones));
    const uint16x8_t w16[2] = {w16_lo, w16_hi};
    for (size_t half = 0; half < 2; ++half) {
      const uint32x4_t w32_lo = vmovl_u16(vget_low_u16(w16[half]));
      const uint32x4_t w32_hi = vmovl_u16(vget_high_u16(w16[half]));
      const uint32x4_t w32[2] = {w32_lo, w32_hi};
      for (size_t quarter = 0; quarter < 2; ++quarter) {
        const size_t base = i + half * 8 + quarter * 4;
        uint64x2_t a0 = vld1q_u64(acc + base);
        uint64x2_t a1 = vld1q_u64(acc + base + 2);
        a0 = vaddq_u64(a0, vmovl_u32(vget_low_u32(w32[quarter])));
        a1 = vaddq_u64(a1, vmovl_u32(vget_high_u32(w32[quarter])));
        vst1q_u64(acc + base, a0);
        vst1q_u64(acc + base + 2, a1);
      }
    }
  }
  for (; i < n; ++i) acc[i] += bits[i] != 0 ? 1 : 0;
}

void AddU64(uint64_t* into, const uint64_t* from, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(into + i, vaddq_u64(vld1q_u64(into + i), vld1q_u64(from + i)));
  }
  for (; i < n; ++i) into[i] += from[i];
}

void AddF64(const double* a, const double* b, double* dst, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

namespace {

// (l0 + l1) + (l2 + l3) with scalar lanes {0,1} in acc01, {2,3} in acc23.
inline double FoldLanes(float64x2_t acc01, float64x2_t acc23) {
  const double l01 = vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1);
  const double l23 = vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1);
  return l01 + l23;
}

}  // namespace

double Dot(const double* a, const double* b, size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const size_t blocked = n - n % 4;
  for (size_t i = 0; i < blocked; i += 4) {
    // Explicit mul then add (not vfmaq) to match the contract-free
    // scalar baseline rounding-for-rounding.
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc23 = vaddq_f64(acc23,
                      vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
  }
  double total = FoldLanes(acc01, acc23);
  for (size_t i = blocked; i < n; ++i) total += a[i] * b[i];
  return total;
}

double Sum(const double* p, size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const size_t blocked = n - n % 4;
  for (size_t i = 0; i < blocked; i += 4) {
    acc01 = vaddq_f64(acc01, vld1q_f64(p + i));
    acc23 = vaddq_f64(acc23, vld1q_f64(p + i + 2));
  }
  double total = FoldLanes(acc01, acc23);
  for (size_t i = blocked; i < n; ++i) total += p[i];
  return total;
}

double ScaleAbsDelta(double* p, size_t n, double scale) {
  const float64x2_t vscale = vdupq_n_f64(scale);
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const size_t blocked = n - n % 4;
  for (size_t i = 0; i < blocked; i += 4) {
    const float64x2_t before01 = vld1q_f64(p + i);
    const float64x2_t before23 = vld1q_f64(p + i + 2);
    const float64x2_t after01 = vmulq_f64(before01, vscale);
    const float64x2_t after23 = vmulq_f64(before23, vscale);
    acc01 = vaddq_f64(acc01, vabsq_f64(vsubq_f64(after01, before01)));
    acc23 = vaddq_f64(acc23, vabsq_f64(vsubq_f64(after23, before23)));
    vst1q_f64(p + i, after01);
    vst1q_f64(p + i + 2, after23);
  }
  double total = FoldLanes(acc01, acc23);
  for (size_t i = blocked; i < n; ++i) {
    const double before = p[i];
    const double after = before * scale;
    total += std::fabs(after - before);
    p[i] = after;
  }
  return total;
}

}  // namespace felip::simd::neon

#endif  // FELIP_SIMD_HAS_NEON
