// Internal glue between the kernel dispatch trampolines and the per-level
// translation units. Not part of the public API.
//
// The scalar reference implementations live here as inline functions so
// the vector TUs can fall back to them for kernels they do not accelerate
// (e.g. the NEON build inherits the scalar OLH support kernel) without a
// cross-TU call — and so the trampolines in kernels_scalar.cc and the
// vector TUs agree on one definition of the canonical accumulation order.

#ifndef FELIP_SIMD_KERNELS_INTERNAL_H_
#define FELIP_SIMD_KERNELS_INTERNAL_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "felip/common/hash.h"
#include "felip/simd/kernels.h"

namespace felip::simd {

// Largest histogram (in bins) that the lane-split cache layout applies
// to: 4 lane copies of uint32_t counts (32 KiB at this bound) must stay
// inside L1 for the scatter to win. Measured on the reference container,
// the lane split is ~15-20% faster through 2048 bins (and ~3x on a
// single hot bucket, where it breaks the serial same-bin dependency) but
// LOSES above ~4096 bins, where quadrupling the resident counter bytes
// costs more than the conflict-freedom buys. Above this the plain
// scalar loop wins on memory footprint.
inline constexpr size_t kLaneHistogramMaxBins = 2048;

// Reports per lane-copy flush: uint32_t lane counters cannot overflow
// within one chunk, so chunked callers can feed any n.
inline constexpr size_t kLaneHistogramChunk = size_t{1} << 31;

namespace scalar_impl {

inline void AccumulateNonzeroBytes(const uint8_t* bits, size_t n,
                                   uint64_t* acc) {
  for (size_t i = 0; i < n; ++i) {
    acc[i] += bits[i] != 0 ? 1 : 0;
  }
}

inline void AddU64(uint64_t* into, const uint64_t* from, size_t n) {
  for (size_t i = 0; i < n; ++i) into[i] += from[i];
}

inline void HistogramU64(const uint64_t* keys, size_t n, uint64_t* acc) {
  for (size_t i = 0; i < n; ++i) ++acc[keys[i]];
}

inline void OlhSupportRange(uint64_t seed, uint32_t g, uint32_t target,
                            uint64_t first_value, size_t n, uint64_t* acc) {
  for (size_t i = 0; i < n; ++i) {
    if (OlhHash(first_value + i, seed, g) == target) ++acc[i];
  }
}

inline uint64_t OlhPoolSupport(uint64_t value, const uint64_t* seeds,
                               size_t num_seeds, uint32_t g,
                               const uint32_t* pool_counts) {
  uint64_t support = 0;
  for (size_t s = 0; s < num_seeds; ++s) {
    const uint32_t h = OlhHash(value, seeds[s], g);
    support += pool_counts[s * g + h];
  }
  return support;
}

inline void AddF64(const double* a, const double* b, double* dst,
                   size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
}

// The canonical lane-folded reductions. The loop shape below IS the
// specification: kLanes independent accumulators over the blocked body,
// folded (l0 + l1) + (l2 + l3), then a sequential tail on the folded
// total. Vector variants must reproduce these exact roundings.

inline double Dot(const double* a, const double* b, size_t n) {
  double lane[kLanes] = {0.0, 0.0, 0.0, 0.0};
  const size_t blocked = n - n % kLanes;
  for (size_t i = 0; i < blocked; i += kLanes) {
    for (size_t k = 0; k < kLanes; ++k) {
      lane[k] += a[i + k] * b[i + k];
    }
  }
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (size_t i = blocked; i < n; ++i) total += a[i] * b[i];
  return total;
}

inline double Sum(const double* p, size_t n) {
  double lane[kLanes] = {0.0, 0.0, 0.0, 0.0};
  const size_t blocked = n - n % kLanes;
  for (size_t i = 0; i < blocked; i += kLanes) {
    for (size_t k = 0; k < kLanes; ++k) {
      lane[k] += p[i + k];
    }
  }
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (size_t i = blocked; i < n; ++i) total += p[i];
  return total;
}

inline double ScaleAbsDelta(double* p, size_t n, double scale) {
  double lane[kLanes] = {0.0, 0.0, 0.0, 0.0};
  const size_t blocked = n - n % kLanes;
  for (size_t i = 0; i < blocked; i += kLanes) {
    for (size_t k = 0; k < kLanes; ++k) {
      const double before = p[i + k];
      const double after = before * scale;
      lane[k] += std::fabs(after - before);
      p[i + k] = after;
    }
  }
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (size_t i = blocked; i < n; ++i) {
    const double before = p[i];
    const double after = before * scale;
    total += std::fabs(after - before);
    p[i] = after;
  }
  return total;
}

}  // namespace scalar_impl

// Shared by the vector levels: four conflict-free uint32_t lane
// histograms (structure-of-arrays) folded into `acc`. Breaks the
// store-to-load forwarding chain that serializes repeated increments of
// one hot bucket. Callers guarantee bins <= kLaneHistogramMaxBins and
// n < kLaneHistogramChunk (so no uint32_t lane counter can overflow).
void LaneSplitHistogramU64(const uint64_t* keys, size_t n, uint64_t* acc,
                           size_t bins);

#if defined(FELIP_SIMD_HAS_AVX2)
namespace avx2 {
void AccumulateNonzeroBytes(const uint8_t* bits, size_t n, uint64_t* acc);
void AddU64(uint64_t* into, const uint64_t* from, size_t n);
void OlhSupportRange(uint64_t seed, uint32_t g, uint32_t target,
                     uint64_t first_value, size_t n, uint64_t* acc);
uint64_t OlhPoolSupport(uint64_t value, const uint64_t* seeds,
                        size_t num_seeds, uint32_t g,
                        const uint32_t* pool_counts);
void AddF64(const double* a, const double* b, double* dst, size_t n);
double Dot(const double* a, const double* b, size_t n);
double Sum(const double* p, size_t n);
double ScaleAbsDelta(double* p, size_t n, double scale);
}  // namespace avx2
#endif

// Vector-level histograms share LaneSplitHistogramU64 above, and the NEON
// build inherits the scalar OLH hash kernels, so neither level declares
// per-level variants for those here.
#if defined(FELIP_SIMD_HAS_NEON)
namespace neon {
void AccumulateNonzeroBytes(const uint8_t* bits, size_t n, uint64_t* acc);
void AddU64(uint64_t* into, const uint64_t* from, size_t n);
void AddF64(const double* a, const double* b, double* dst, size_t n);
double Dot(const double* a, const double* b, size_t n);
double Sum(const double* p, size_t n);
double ScaleAbsDelta(double* p, size_t n, double scale);
}  // namespace neon
#endif

}  // namespace felip::simd

#endif  // FELIP_SIMD_KERNELS_INTERNAL_H_
