// AVX2 kernel variants. This TU is compiled with -mavx2 and
// -ffp-contract=off; it must only ever run after a runtime CPUID check
// (the trampolines in kernels_scalar.cc guarantee that).
//
// Bit-identity with the scalar baseline:
//   * Integer kernels reorganize commutative integer adds — exact.
//   * OlhSupportRange / OlhPoolSupport evaluate the specialized 8-byte
//     xxHash64 path in 64-bit lanes instruction-for-instruction, and
//     replace `% g` with the exact magic-multiply division from
//     fastdiv.h — equal for every uint64_t dividend.
//   * Dot / Sum / ScaleAbsDelta keep one __m256d accumulator whose lane
//     k receives exactly the terms of scalar lane accumulator k, folded
//     (l0 + l1) + (l2 + l3) like the scalar baseline, with the identical
//     sequential tail.

#if defined(FELIP_SIMD_HAS_AVX2)

#include <immintrin.h>

#include <cmath>

#include "felip/simd/fastdiv.h"
#include "felip/simd/kernels.h"
#include "felip/simd/kernels_internal.h"

namespace felip::simd::avx2 {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline __m256i Rotl64(__m256i x, int r) {
  return _mm256_or_si256(_mm256_slli_epi64(x, r),
                         _mm256_srli_epi64(x, 64 - r));
}

// Low 64 bits of a 64x64 multiply per lane. AVX2 has no 64-bit multiply,
// so build it from 32x32->64 partial products:
//   lo64(a*b) = loL*lbL + ((aL*bH + aH*bL) << 32)
inline __m256i MulLow64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                         _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

// High 64 bits of a 64x64 multiply per lane (full 128-bit product from
// four 32x32 partials; carries folded through the cross term).
inline __m256i MulHigh64(__m256i a, __m256i b) {
  const __m256i mask = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  const __m256i hi_lo = _mm256_mul_epu32(a_hi, b);
  const __m256i lo_hi = _mm256_mul_epu32(a, b_hi);
  const __m256i hi_hi = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i cross = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(lo_lo, 32),
                       _mm256_and_si256(hi_lo, mask)),
      _mm256_and_si256(lo_hi, mask));
  return _mm256_add_epi64(
      _mm256_add_epi64(hi_hi, _mm256_srli_epi64(hi_lo, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(lo_hi, 32),
                       _mm256_srli_epi64(cross, 32)));
}

// Specialized 8-byte xxHash64 (see felip/common/hash.cc) in 64-bit lanes.
// Both the value and the seed are per-lane: OlhSupportRange varies the
// value under one seed, OlhPoolSupport varies the seed over one value.
inline __m256i XxHash64Lanes(__m256i value, __m256i seed) {
  const __m256i p1 = _mm256_set1_epi64x(static_cast<int64_t>(kPrime1));
  const __m256i p2 = _mm256_set1_epi64x(static_cast<int64_t>(kPrime2));
  const __m256i p3 = _mm256_set1_epi64x(static_cast<int64_t>(kPrime3));
  // Round(0, value) = Rotl(value * kPrime2, 31) * kPrime1
  const __m256i round0 = MulLow64(Rotl64(MulLow64(value, p2), 31), p1);
  __m256i h = _mm256_add_epi64(
      seed, _mm256_set1_epi64x(static_cast<int64_t>(kPrime5 + 8)));
  h = _mm256_xor_si256(h, round0);
  h = _mm256_add_epi64(MulLow64(Rotl64(h, 27), p1),
                       _mm256_set1_epi64x(static_cast<int64_t>(kPrime4)));
  // Avalanche.
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
  h = MulLow64(h, p2);
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 29));
  h = MulLow64(h, p3);
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 32));
  return h;
}

// Exact n % d.divisor per lane (FastDivRemainder in 64-bit lanes).
inline __m256i FastDivRemainderLanes(const FastDivU64& d, __m256i n) {
  if (d.magic == 0) {
    return _mm256_and_si256(
        n, _mm256_set1_epi64x(static_cast<int64_t>(d.divisor - 1)));
  }
  __m256i q =
      MulHigh64(n, _mm256_set1_epi64x(static_cast<int64_t>(d.magic)));
  if (d.add) {
    const __m256i t = _mm256_srli_epi64(_mm256_sub_epi64(n, q), 1);
    q = _mm256_srli_epi64(_mm256_add_epi64(t, q), static_cast<int>(d.shift));
  } else {
    q = _mm256_srli_epi64(q, static_cast<int>(d.shift));
  }
  return _mm256_sub_epi64(
      n, MulLow64(q, _mm256_set1_epi64x(static_cast<int64_t>(d.divisor))));
}

}  // namespace

void AccumulateNonzeroBytes(const uint8_t* bits, size_t n, uint64_t* acc) {
  const __m128i one = _mm_set1_epi8(1);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bits + i));
    // Any nonzero byte -> 1, zero stays 0.
    const __m128i ones = _mm_min_epu8(bytes, one);
    const auto accumulate_quad = [acc, i](size_t k, __m128i low4) {
      __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + k));
      a = _mm256_add_epi64(a, _mm256_cvtepu8_epi64(low4));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + k), a);
    };
    // The byte-shift count must be an immediate, so unroll the 4 quads.
    accumulate_quad(0, ones);
    accumulate_quad(4, _mm_srli_si128(ones, 4));
    accumulate_quad(8, _mm_srli_si128(ones, 8));
    accumulate_quad(12, _mm_srli_si128(ones, 12));
  }
  for (; i < n; ++i) acc[i] += bits[i] != 0 ? 1 : 0;
}

void AddU64(uint64_t* into, const uint64_t* from, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(into + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(from + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(into + i),
                        _mm256_add_epi64(a, b));
  }
  for (; i < n; ++i) into[i] += from[i];
}

void OlhSupportRange(uint64_t seed, uint32_t g, uint32_t target,
                     uint64_t first_value, size_t n, uint64_t* acc) {
  const FastDivU64 div = MakeFastDivU64(g);
  const __m256i target_lanes =
      _mm256_set1_epi64x(static_cast<int64_t>(target));
  __m256i value = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<int64_t>(first_value)),
      _mm256_set_epi64x(3, 2, 1, 0));
  const __m256i step = _mm256_set1_epi64x(4);
  const __m256i seed_lanes = _mm256_set1_epi64x(static_cast<int64_t>(seed));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i hashed = XxHash64Lanes(value, seed_lanes);
    const __m256i rem = FastDivRemainderLanes(div, hashed);
    // cmpeq lanes are all-ones (-1) on match: acc -= mask adds 1.
    const __m256i match = _mm256_cmpeq_epi64(rem, target_lanes);
    __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    a = _mm256_sub_epi64(a, match);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), a);
    value = _mm256_add_epi64(value, step);
  }
  if (i < n) {
    scalar_impl::OlhSupportRange(seed, g, target, first_value + i, n - i,
                                 acc + i);
  }
}

uint64_t OlhPoolSupport(uint64_t value, const uint64_t* seeds,
                        size_t num_seeds, uint32_t g,
                        const uint32_t* pool_counts) {
  const FastDivU64 div = MakeFastDivU64(g);
  const __m256i value_lanes =
      _mm256_set1_epi64x(static_cast<int64_t>(value));
  __m256i support = _mm256_setzero_si256();
  // Row offsets s * g for four consecutive seeds.
  const int64_t g64 = static_cast<int64_t>(g);
  __m256i row = _mm256_set_epi64x(3 * g64, 2 * g64, g64, 0);
  const __m256i row_step = _mm256_set1_epi64x(4 * g64);
  size_t s = 0;
  for (; s + 4 <= num_seeds; s += 4) {
    // Hash one value under four different seeds at once.
    const __m256i seed_lanes =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(seeds + s));
    const __m256i hashed = XxHash64Lanes(value_lanes, seed_lanes);
    const __m256i rem = FastDivRemainderLanes(div, hashed);
    const __m256i idx = _mm256_add_epi64(row, rem);
    // Four uint32_t pool counts gathered by 64-bit index.
    const __m128i counts = _mm256_i64gather_epi32(
        reinterpret_cast<const int*>(pool_counts), idx, 4);
    support = _mm256_add_epi64(support, _mm256_cvtepu32_epi64(counts));
    row = _mm256_add_epi64(row, row_step);
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), support);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  if (s < num_seeds) {
    // Tail seeds index rows s.. so advance the count matrix with them.
    total += scalar_impl::OlhPoolSupport(value, seeds + s, num_seeds - s, g,
                                         pool_counts + s * g);
  }
  return total;
}

void AddF64(const double* a, const double* b, double* dst, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

namespace {

// Fold one __m256d accumulator exactly like the scalar baseline:
// (lane0 + lane1) + (lane2 + lane3).
inline double FoldLanes(__m256d acc) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

}  // namespace

double Dot(const double* a, const double* b, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const size_t blocked = n - n % 4;
  for (size_t i = 0; i < blocked; i += 4) {
    // mul then add (no FMA): lane k performs exactly
    // lane[k] += a[i+k] * b[i+k] of the scalar baseline.
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double total = FoldLanes(acc);
  for (size_t i = blocked; i < n; ++i) total += a[i] * b[i];
  return total;
}

double Sum(const double* p, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const size_t blocked = n - n % 4;
  for (size_t i = 0; i < blocked; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(p + i));
  }
  double total = FoldLanes(acc);
  for (size_t i = blocked; i < n; ++i) total += p[i];
  return total;
}

double ScaleAbsDelta(double* p, size_t n, double scale) {
  // fabs == clear the sign bit, identical to std::fabs on binary64.
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  const __m256d vscale = _mm256_set1_pd(scale);
  __m256d acc = _mm256_setzero_pd();
  const size_t blocked = n - n % 4;
  for (size_t i = 0; i < blocked; i += 4) {
    const __m256d before = _mm256_loadu_pd(p + i);
    const __m256d after = _mm256_mul_pd(before, vscale);
    const __m256d delta =
        _mm256_and_pd(_mm256_sub_pd(after, before), abs_mask);
    acc = _mm256_add_pd(acc, delta);
    _mm256_storeu_pd(p + i, after);
  }
  double total = FoldLanes(acc);
  for (size_t i = blocked; i < n; ++i) {
    const double before = p[i];
    const double after = before * scale;
    total += std::fabs(after - before);
    p[i] = after;
  }
  return total;
}

}  // namespace felip::simd::avx2

#endif  // FELIP_SIMD_HAS_AVX2
