// Scalar baselines and the dispatch trampolines. Compiled with
// -ffp-contract=off (see CMakeLists.txt) so the canonical accumulation
// order in kernels_internal.h is what actually executes — a fused
// multiply-add here would change roundings and break bit-identity with
// the vector variants.

#include <algorithm>
#include <vector>

#include "felip/simd/kernels.h"
#include "felip/simd/kernels_internal.h"

namespace felip::simd {

void LaneSplitHistogramU64(const uint64_t* keys, size_t n, uint64_t* acc,
                           size_t bins) {
  constexpr size_t kHistLanes = 4;
  std::vector<uint32_t> lanes(kHistLanes * bins, 0);
  uint32_t* l0 = lanes.data();
  uint32_t* l1 = l0 + bins;
  uint32_t* l2 = l1 + bins;
  uint32_t* l3 = l2 + bins;
  const size_t blocked = n - n % kHistLanes;
  for (size_t i = 0; i < blocked; i += kHistLanes) {
    ++l0[keys[i]];
    ++l1[keys[i + 1]];
    ++l2[keys[i + 2]];
    ++l3[keys[i + 3]];
  }
  for (size_t i = blocked; i < n; ++i) ++l0[keys[i]];
  for (size_t b = 0; b < bins; ++b) {
    acc[b] += static_cast<uint64_t>(l0[b]) + l1[b] + l2[b] + l3[b];
  }
}

namespace {

// True when `level` resolves to a compiled-in vector variant; otherwise
// every trampoline below runs the scalar baseline.
inline bool UseAvx2(Level level) {
#if defined(FELIP_SIMD_HAS_AVX2)
  return level == Level::kAvx2;
#else
  (void)level;
  return false;
#endif
}

inline bool UseNeon(Level level) {
#if defined(FELIP_SIMD_HAS_NEON)
  return level == Level::kNeon;
#else
  (void)level;
  return false;
#endif
}

}  // namespace

void AccumulateNonzeroBytes(Level level, const uint8_t* bits, size_t n,
                            uint64_t* acc) {
#if defined(FELIP_SIMD_HAS_AVX2)
  if (UseAvx2(level)) return avx2::AccumulateNonzeroBytes(bits, n, acc);
#endif
#if defined(FELIP_SIMD_HAS_NEON)
  if (UseNeon(level)) return neon::AccumulateNonzeroBytes(bits, n, acc);
#endif
  scalar_impl::AccumulateNonzeroBytes(bits, n, acc);
}

void AddU64(Level level, uint64_t* into, const uint64_t* from, size_t n) {
#if defined(FELIP_SIMD_HAS_AVX2)
  if (UseAvx2(level)) return avx2::AddU64(into, from, n);
#endif
#if defined(FELIP_SIMD_HAS_NEON)
  if (UseNeon(level)) return neon::AddU64(into, from, n);
#endif
  scalar_impl::AddU64(into, from, n);
}

void HistogramU64(Level level, const uint64_t* keys, size_t n,
                  uint64_t* acc, size_t bins) {
  const bool vector_level = UseAvx2(level) || UseNeon(level);
  if (vector_level && bins <= kLaneHistogramMaxBins && bins > 0) {
    // Chunk so uint32_t lane counters cannot overflow for any n.
    size_t done = 0;
    while (done < n) {
      const size_t chunk = std::min(n - done, kLaneHistogramChunk - 1);
      LaneSplitHistogramU64(keys + done, chunk, acc, bins);
      done += chunk;
    }
    return;
  }
  scalar_impl::HistogramU64(keys, n, acc);
}

void OlhSupportRange(Level level, uint64_t seed, uint32_t g,
                     uint32_t target, uint64_t first_value, size_t n,
                     uint64_t* acc) {
#if defined(FELIP_SIMD_HAS_AVX2)
  if (UseAvx2(level)) {
    return avx2::OlhSupportRange(seed, g, target, first_value, n, acc);
  }
#endif
  // NEON inherits the scalar support kernel (no 64-bit lane hash yet).
  scalar_impl::OlhSupportRange(seed, g, target, first_value, n, acc);
}

uint64_t OlhPoolSupport(Level level, uint64_t value, const uint64_t* seeds,
                        size_t num_seeds, uint32_t g,
                        const uint32_t* pool_counts) {
#if defined(FELIP_SIMD_HAS_AVX2)
  if (UseAvx2(level)) {
    return avx2::OlhPoolSupport(value, seeds, num_seeds, g, pool_counts);
  }
#endif
  return scalar_impl::OlhPoolSupport(value, seeds, num_seeds, g,
                                     pool_counts);
}

void AddF64(Level level, const double* a, const double* b, double* dst,
            size_t n) {
#if defined(FELIP_SIMD_HAS_AVX2)
  if (UseAvx2(level)) return avx2::AddF64(a, b, dst, n);
#endif
#if defined(FELIP_SIMD_HAS_NEON)
  if (UseNeon(level)) return neon::AddF64(a, b, dst, n);
#endif
  scalar_impl::AddF64(a, b, dst, n);
}

double Dot(Level level, const double* a, const double* b, size_t n) {
#if defined(FELIP_SIMD_HAS_AVX2)
  if (UseAvx2(level)) return avx2::Dot(a, b, n);
#endif
#if defined(FELIP_SIMD_HAS_NEON)
  if (UseNeon(level)) return neon::Dot(a, b, n);
#endif
  return scalar_impl::Dot(a, b, n);
}

double Sum(Level level, const double* p, size_t n) {
#if defined(FELIP_SIMD_HAS_AVX2)
  if (UseAvx2(level)) return avx2::Sum(p, n);
#endif
#if defined(FELIP_SIMD_HAS_NEON)
  if (UseNeon(level)) return neon::Sum(p, n);
#endif
  return scalar_impl::Sum(p, n);
}

double ScaleAbsDelta(Level level, double* p, size_t n, double scale) {
#if defined(FELIP_SIMD_HAS_AVX2)
  if (UseAvx2(level)) return avx2::ScaleAbsDelta(p, n, scale);
#endif
#if defined(FELIP_SIMD_HAS_NEON)
  if (UseNeon(level)) return neon::ScaleAbsDelta(p, n, scale);
#endif
  return scalar_impl::ScaleAbsDelta(p, n, scale);
}

}  // namespace felip::simd
