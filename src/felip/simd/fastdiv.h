// Exact division of 64-bit dividends by a runtime-constant divisor via
// magic-multiply, the Granlund–Montgomery / libdivide "branchfull"
// construction compilers use for constant divisors.
//
// The OLH support kernels need `XxHash64(v, seed) % g` for millions of
// (v, seed) pairs with one fixed g; a hardware 64-bit divide per element
// costs more than the whole vectorized hash. MakeFastDivU64 precomputes a
// (magic, shift, add) triple once per call; FastDivQuotient then needs only
// a high-multiply and shifts — and, unlike the hardware divide, it
// vectorizes (the AVX2 kernel evaluates it in 64-bit lanes). The result is
// the EXACT quotient for every uint64_t dividend, which the differential
// suite verifies against the native `/` operator.

#ifndef FELIP_SIMD_FASTDIV_H_
#define FELIP_SIMD_FASTDIV_H_

#include <cstdint>

#include "felip/common/check.h"

namespace felip::simd {

struct FastDivU64 {
  uint64_t magic = 0;  // 0 marks a power-of-two divisor (pure shift)
  unsigned shift = 0;
  bool add = false;  // magic overflowed 64 bits; apply the add fixup
  uint64_t divisor = 1;
};

inline uint64_t MulHighU64(uint64_t a, uint64_t b) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * b) >> 64);
}

// Precomputes the reciprocal for `divisor` >= 1.
inline FastDivU64 MakeFastDivU64(uint64_t divisor) {
  FELIP_CHECK(divisor >= 1);
  FastDivU64 result;
  result.divisor = divisor;
  if ((divisor & (divisor - 1)) == 0) {
    result.magic = 0;
    result.shift = static_cast<unsigned>(__builtin_ctzll(divisor));
    result.add = false;
    return result;
  }
  const unsigned floor_log2 =
      63u - static_cast<unsigned>(__builtin_clzll(divisor));
  // floor(2^(64 + floor_log2) / divisor) and its remainder.
  const unsigned __int128 numerator =
      static_cast<unsigned __int128>(1) << (64 + floor_log2);
  uint64_t proposed = static_cast<uint64_t>(numerator / divisor);
  const uint64_t rem = static_cast<uint64_t>(numerator % divisor);
  const uint64_t e = divisor - rem;
  if (e < (uint64_t{1} << floor_log2)) {
    result.add = false;
  } else {
    // The magic number would need 65 bits; double it (dropping the top
    // bit) and compensate with the add fixup in FastDivQuotient.
    proposed += proposed;
    const uint64_t twice_rem = rem + rem;
    if (twice_rem >= divisor || twice_rem < rem) proposed += 1;
    result.add = true;
  }
  result.magic = proposed + 1;
  result.shift = floor_log2;
  return result;
}

// Exact n / d.divisor for every n.
inline uint64_t FastDivQuotient(const FastDivU64& d, uint64_t n) {
  if (d.magic == 0) return n >> d.shift;
  const uint64_t q = MulHighU64(n, d.magic);
  if (d.add) {
    return (((n - q) >> 1) + q) >> d.shift;
  }
  return q >> d.shift;
}

// Exact n % d.divisor for every n.
inline uint64_t FastDivRemainder(const FastDivU64& d, uint64_t n) {
  if (d.magic == 0) return n & (d.divisor - 1);
  return n - FastDivQuotient(d, n) * d.divisor;
}

}  // namespace felip::simd

#endif  // FELIP_SIMD_FASTDIV_H_
