#include "felip/dist/partition.h"

#include <algorithm>

#include "felip/common/check.h"
#include "felip/common/hash.h"

namespace felip::dist {

ShardRouter::ShardRouter(uint32_t num_shards, uint32_t virtual_nodes)
    : num_shards_(num_shards) {
  FELIP_CHECK_MSG(num_shards >= 1, "ShardRouter needs at least one shard");
  FELIP_CHECK_MSG(virtual_nodes >= 1, "ShardRouter needs virtual nodes");
  ring_.reserve(static_cast<size_t>(num_shards) * virtual_nodes);
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    for (uint32_t vnode = 0; vnode < virtual_nodes; ++vnode) {
      const uint64_t id = (static_cast<uint64_t>(shard) << 32) | vnode;
      ring_.push_back({XxHash64(id, kRingSalt), shard});
    }
  }
  // Sorting by (position, shard) makes the rare position collision
  // deterministic too: the lower shard id wins everywhere.
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.position != b.position ? a.position < b.position
                                    : a.shard < b.shard;
  });
}

uint32_t ShardRouter::OwnerShard(uint64_t key) const {
  const uint64_t position = XxHash64(key, kRingSalt);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), position,
      [](const Point& p, uint64_t pos) { return p.position < pos; });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return it->shard;
}

}  // namespace felip::dist
