#include "felip/dist/root.h"

#include <chrono>
#include <thread>
#include <utility>

#include "felip/common/check.h"
#include "felip/obs/metrics.h"
#include "felip/snapshot/pipeline_snapshot.h"

namespace felip::dist {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

RootAggregator::RootAggregator(svc::Transport* transport,
                               std::vector<std::string> shard_endpoints,
                               RootAggregatorOptions options)
    : transport_(transport),
      endpoints_(std::move(shard_endpoints)),
      options_(options),
      connections_(endpoints_.size()),
      latest_(endpoints_.size()) {
  FELIP_CHECK(transport != nullptr);
  FELIP_CHECK_MSG(!endpoints_.empty(), "root aggregator needs shards");
}

Status RootAggregator::PullShard(size_t shard, bool seal) {
  if (connections_[shard] == nullptr) {
    connections_[shard] = transport_->Connect(endpoints_[shard],
                                              options_.connect_timeout_ms);
    if (connections_[shard] == nullptr) {
      ++pull_failures_;
      return Status::Unavailable("cannot reach shard " + endpoints_[shard]);
    }
  }
  auto fail = [this, shard](std::string message) -> Status {
    connections_[shard].reset();
    ++pull_failures_;
    return Status::Unavailable(std::move(message));
  };
  wire::AccumulatorPullMessage pull;
  pull.shard_id = static_cast<uint32_t>(shard);
  pull.seal = seal;
  if (!connections_[shard]->SendFrame(wire::EncodeAccumulatorPull(pull))) {
    return fail("pull send failed for shard " + endpoints_[shard]);
  }
  std::vector<uint8_t> response;
  if (connections_[shard]->RecvFrame(&response,
                                     options_.response_timeout_ms) !=
      svc::RecvStatus::kOk) {
    return fail("pull receive failed for shard " + endpoints_[shard]);
  }
  StatusOr<wire::AccumulatorFrameMessage> frame =
      wire::DecodeAccumulatorFrame(response);
  if (!frame.ok()) {
    return fail("shard " + endpoints_[shard] +
                " answered with a malformed frame");
  }
  // A decodable frame from the wrong shard or plan is misconfiguration,
  // not transient noise — fail the round loudly.
  if (frame->shard_id != shard || frame->num_shards != endpoints_.size()) {
    return Status::FailedPrecondition(
        "shard " + endpoints_[shard] + " disagrees about the topology");
  }
  if (options_.plan_digest != 0 && frame->plan_digest != 0 &&
      frame->plan_digest != options_.plan_digest) {
    return Status::FailedPrecondition(
        "shard " + endpoints_[shard] + " runs a different plan");
  }
  Adopt(shard, *std::move(frame));
  return Status::Ok();
}

void RootAggregator::Adopt(size_t shard,
                           wire::AccumulatorFrameMessage&& frame) {
  ++frames_pulled_;
  obs::Registry::Default()
      .GetCounter("felip_dist_frames_pulled_total")
      .Increment();
  std::optional<wire::AccumulatorFrameMessage>& held = latest_[shard];
  if (held.has_value() &&
      (held->epoch > frame.epoch ||
       (held->epoch == frame.epoch && held->sequence >= frame.sequence))) {
    ++frames_stale_;
    obs::Registry::Default()
        .GetCounter("felip_dist_frames_stale_total")
        .Increment();
    return;
  }
  held = std::move(frame);
}

uint64_t RootAggregator::total_reports() const {
  uint64_t total = 0;
  for (const auto& frame : latest_) {
    if (frame.has_value()) total += frame->reports_ingested;
  }
  return total;
}

bool RootAggregator::complete() const {
  for (const auto& frame : latest_) {
    if (!frame.has_value()) return false;
  }
  return total_reports() == options_.expected_reports;
}

Status RootAggregator::PullUntilComplete(int timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    for (size_t shard = 0; shard < endpoints_.size(); ++shard) {
      Status status = PullShard(shard, /*seal=*/false);
      // Unavailable is retried from the next sweep; anything else
      // (topology or plan mismatch) is fatal for the round.
      if (!status.ok() && status.code() != StatusCode::kUnavailable) {
        return status;
      }
    }
    if (complete()) return Status::Ok();
    if (Clock::now() >= deadline) {
      return Status::Unavailable(
          "shards did not account for the expected reports in time");
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
  }
}

Status RootAggregator::MergeInto(core::FelipPipeline* pipeline) {
  FELIP_CHECK(pipeline != nullptr);
  if (!complete()) {
    return Status::FailedPrecondition(
        "MergeInto() before the pull round completed");
  }
  // Best-effort seal notification: merging only reads frames the root
  // already holds, so a shard that misses the seal simply exits on its
  // own timeout.
  for (size_t shard = 0; shard < endpoints_.size(); ++shard) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (PullShard(shard, /*seal=*/true).ok()) break;
    }
  }
  if (pipeline->state() == core::PipelineState::kConfigured) {
    pipeline->BeginIngest();
  }
  for (size_t shard = 0; shard < endpoints_.size(); ++shard) {
    const wire::AccumulatorFrameMessage& frame = *latest_[shard];
    std::vector<fo::OracleState> states;
    FELIP_RETURN_IF_ERROR(snapshot::PipelineCodec::DecodeOracleSection(
        frame.oracle_section, &states));
    FELIP_RETURN_IF_ERROR(pipeline->MergeAccumulators(
        std::move(states), frame.reports_ingested));
  }
  pipeline->FinishIngest();
  obs::Registry::Default()
      .GetCounter("felip_dist_rounds_merged_total")
      .Increment();
  return Status::Ok();
}

}  // namespace felip::dist
