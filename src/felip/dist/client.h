// Client-side router of the distributed tier: one IngestClient per shard,
// batches routed by the consistent hash of their idempotency key.
//
// The key is the encoded frame's xxHash64 checksum trailer — the same
// value the shard's dedup window stores — so a batch always lands on
// exactly one shard, and a resend after any failure lands on the same
// shard and dedups there. Retries, backpressure handling, and reconnects
// are the per-shard IngestClient's; this class only routes.

#ifndef FELIP_DIST_CLIENT_H_
#define FELIP_DIST_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "felip/dist/partition.h"
#include "felip/svc/client.h"
#include "felip/svc/transport.h"
#include "felip/wire/wire.h"

namespace felip::dist {

class ShardedIngestClient {
 public:
  // `transport` must outlive this client; `shard_endpoints[i]` is shard
  // i's ingest endpoint.
  ShardedIngestClient(svc::Transport* transport,
                      std::vector<std::string> shard_endpoints,
                      svc::IngestClientOptions options = {});

  // Encodes, routes, and delivers one batch (same contract as
  // svc::IngestClient::SendBatch).
  svc::SendOutcome SendBatch(const std::vector<wire::ReportMessage>& batch);

  // Routes an already-encoded batch frame by its checksum trailer.
  svc::SendOutcome SendEncodedBatch(const std::vector<uint8_t>& frame);

  const ShardRouter& router() const { return router_; }
  uint32_t num_shards() const { return router_.num_shards(); }

  // Batches routed to `shard` so far (delivered or not).
  uint64_t batches_routed(uint32_t shard) const;
  // Summed over the per-shard clients.
  uint64_t retries() const;
  uint64_t reconnects() const;

 private:
  ShardRouter router_;
  std::vector<std::unique_ptr<svc::IngestClient>> clients_;
  std::vector<uint64_t> routed_;
};

}  // namespace felip::dist

#endif  // FELIP_DIST_CLIENT_H_
