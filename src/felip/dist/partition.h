// Consistent-hash partitioning of report batches across shard servers.
//
// The distributed tier routes every encoded report batch by its
// idempotency key — the xxHash64 checksum trailer the ingest service
// already dedups on — so the router, the shard's PreseedDedup filter, and
// the server's dedup window all speak the same key space. Ownership uses a
// classic consistent-hash ring: each shard contributes `virtual_nodes`
// points at XxHash64(shard << 32 | vnode, kRingSalt), and a key belongs to
// the first ring point at or clockwise-after XxHash64(key, kRingSalt)
// (wrapping past the top). xxHash64 is platform-stable, so every process —
// client, shard, root, replayer — derives the identical ring from
// (num_shards, virtual_nodes) alone, with no coordination service.
//
// Virtual nodes smooth the partition sizes (~N/shards keys each) and keep
// most assignments stable when num_shards changes; the preseed filter
// (IngestServerOptions::owns_key) handles the keys that do move.

#ifndef FELIP_DIST_PARTITION_H_
#define FELIP_DIST_PARTITION_H_

#include <cstdint>
#include <vector>

namespace felip::dist {

// Salt separating ring-position hashes from every other xxHash64 use in
// the codebase (checksums, dedup keys, digests).
inline constexpr uint64_t kRingSalt = 0x6465'7273'6861'7264ull;

class ShardRouter {
 public:
  static constexpr uint32_t kDefaultVirtualNodes = 64;

  // Builds the ring for `num_shards` >= 1 shards. Every process given the
  // same arguments builds the identical ring.
  explicit ShardRouter(uint32_t num_shards,
                       uint32_t virtual_nodes = kDefaultVirtualNodes);

  // The shard owning `key`, in [0, num_shards).
  uint32_t OwnerShard(uint64_t key) const;

  uint32_t num_shards() const { return num_shards_; }

 private:
  struct Point {
    uint64_t position;
    uint32_t shard;
  };

  uint32_t num_shards_;
  std::vector<Point> ring_;  // sorted by (position, shard)
};

}  // namespace felip::dist

#endif  // FELIP_DIST_PARTITION_H_
