#include "felip/dist/accumulator.h"

#include <charconv>
#include <chrono>
#include <filesystem>
#include <string>
#include <system_error>

#include "felip/common/check.h"
#include "felip/common/hash.h"
#include "felip/dist/partition.h"
#include "felip/obs/metrics.h"
#include "felip/snapshot/pipeline_snapshot.h"
#include "felip/snapshot/store.h"
#include "felip/wire/wire.h"

namespace felip::dist {

uint64_t PlanDigest(const core::FelipPipeline& pipeline) {
  const std::vector<uint8_t> config = snapshot::EncodeConfigSection(
      pipeline.config(), pipeline.num_users());
  const std::vector<uint8_t> schema =
      snapshot::EncodeSchemaSection(pipeline.schema());
  uint64_t digest = XxHash64Bytes(config.data(), config.size(), kRingSalt);
  return XxHash64Bytes(schema.data(), schema.size(), digest);
}

StatusOr<uint64_t> BumpShardEpoch(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable("cannot create shard epoch directory: " + dir);
  }
  const std::string path =
      (std::filesystem::path(dir) / "EPOCH").string();
  uint64_t epoch = 0;
  StatusOr<std::vector<uint8_t>> bytes = snapshot::ReadFileBytes(path);
  if (bytes.ok()) {
    const char* begin = reinterpret_cast<const char*>(bytes->data());
    const auto [ptr, parse_ec] =
        std::from_chars(begin, begin + bytes->size(), epoch);
    if (parse_ec != std::errc()) {
      return Status::DataLoss("shard epoch file is corrupt: " + path);
    }
  }
  ++epoch;
  const std::string text = std::to_string(epoch);
  FELIP_RETURN_IF_ERROR(snapshot::WriteFileAtomic(
      path, std::vector<uint8_t>(text.begin(), text.end())));
  return epoch;
}

ShardAccumulatorServer::ShardAccumulatorServer(svc::Transport* transport,
                                               const std::string& endpoint,
                                               svc::PipelineSink* sink,
                                               ShardAccumulatorOptions options)
    : transport_(transport),
      endpoint_(endpoint),
      sink_(sink),
      options_(options) {
  FELIP_CHECK(transport != nullptr);
  FELIP_CHECK(sink != nullptr);
  FELIP_CHECK_MSG(options.shard_id < options.num_shards,
                  "shard id out of range");
}

ShardAccumulatorServer::~ShardAccumulatorServer() { Stop(); }

bool ShardAccumulatorServer::Start() {
  frame_server_ = transport_->NewServer(endpoint_);
  if (frame_server_ == nullptr) return false;
  if (!frame_server_->Start([this](uint64_t, std::vector<uint8_t>&& payload) {
        return HandlePull(std::move(payload));
      })) {
    frame_server_.reset();
    return false;
  }
  return true;
}

void ShardAccumulatorServer::Stop() {
  if (frame_server_ != nullptr) {
    frame_server_->Stop();
    frame_server_.reset();
  }
}

std::string ShardAccumulatorServer::endpoint() const {
  FELIP_CHECK_MSG(frame_server_ != nullptr, "endpoint() before Start()");
  return frame_server_->endpoint();
}

bool ShardAccumulatorServer::WaitForSeal(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return sealed_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                             [this] { return sealed_; });
}

std::vector<uint8_t> ShardAccumulatorServer::HandlePull(
    std::vector<uint8_t>&& payload) {
  static obs::Counter& served_total = obs::Registry::Default().GetCounter(
      "felip_dist_frames_served_total");
  static obs::Counter& rejected_total = obs::Registry::Default().GetCounter(
      "felip_dist_pulls_rejected_total");
  StatusOr<wire::AccumulatorPullMessage> pull =
      wire::DecodeAccumulatorPull(payload);
  if (!pull.ok() || pull->shard_id != options_.shard_id) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pulls_rejected_;
    rejected_total.Increment();
    // No response: the root's receive times out and it reconnects; a
    // persistent mismatch means the topology is misconfigured.
    return {};
  }
  wire::AccumulatorFrameMessage frame;
  frame.shard_id = options_.shard_id;
  frame.num_shards = options_.num_shards;
  frame.epoch = options_.epoch;
  frame.plan_digest = options_.plan_digest;
  // Export under the sink's ingest mutex: one consistent cut of
  // (oracle states, reports_ingested), even while batches drain.
  sink_->WithPipelineLocked([&frame](core::FelipPipeline& pipeline) {
    frame.reports_ingested = pipeline.reports_ingested();
    frame.oracle_section =
        snapshot::PipelineCodec::EncodeOracleSection(pipeline);
  });
  {
    std::lock_guard<std::mutex> lock(mutex_);
    frame.sequence = ++sequence_;
    if (pull->seal) sealed_ = true;
    frame.sealed = sealed_;
    ++frames_served_;
  }
  if (pull->seal) sealed_cv_.notify_all();
  served_total.Increment();
  return wire::EncodeAccumulatorFrame(frame);
}

uint64_t ShardAccumulatorServer::frames_served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_served_;
}

uint64_t ShardAccumulatorServer::pulls_rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pulls_rejected_;
}

}  // namespace felip::dist
