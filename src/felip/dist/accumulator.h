// Shard-side accumulator endpoint of the distributed aggregation tier.
//
// A shard process runs the ordinary ingest gate chain (IngestServer ->
// PipelineSink -> FelipPipeline) over its consistent-hash partition of the
// report stream, and additionally serves *accumulator frames* on a second
// endpoint: each AccumulatorPull is answered with a cumulative export of
// the shard's per-grid oracle states, taken under the sink's ingest mutex
// so the frame is one consistent cut (reports_ingested in step with the
// oracle counts). Frames carry (epoch, sequence) so the root aggregator
// can order them per shard across warm restarts, plus the shard's plan
// digest so a misconfigured topology fails loudly instead of merging
// incompatible layouts.
//
// Export is cumulative, never draining: pulling twice is harmless, the
// newest frame supersedes all earlier ones, and a root can therefore poll
// on any schedule — the merged result only depends on the final frame per
// shard. A pull flagged `seal` additionally records that the root has
// everything it needs; WaitForSeal lets the shard process block on that
// before shutting down.

#ifndef FELIP_DIST_ACCUMULATOR_H_
#define FELIP_DIST_ACCUMULATOR_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "felip/common/status.h"
#include "felip/core/felip.h"
#include "felip/svc/sink.h"
#include "felip/svc/transport.h"

namespace felip::dist {

// Chained xxHash64 over the snapshot config + schema section bytes of
// `pipeline` — the fingerprint of the planned layout. Grid planning is
// deterministic in (schema, num_users, config), so every process of one
// topology (shards, root, clients) computes the same digest, and frames
// from a differently-planned shard are rejected before any merge.
uint64_t PlanDigest(const core::FelipPipeline& pipeline);

// Reads, increments, and atomically rewrites the shard epoch file
// (`dir`/EPOCH). Call once at process start with the shard's snapshot
// directory: the first incarnation gets epoch 1, every warm restart a
// strictly larger value, so the root discards frames from dead
// incarnations. Creates `dir` if needed.
StatusOr<uint64_t> BumpShardEpoch(const std::string& dir);

struct ShardAccumulatorOptions {
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  uint64_t epoch = 1;
  uint64_t plan_digest = 0;
};

class ShardAccumulatorServer {
 public:
  // `transport` and `sink` must outlive this server.
  ShardAccumulatorServer(svc::Transport* transport,
                         const std::string& endpoint, svc::PipelineSink* sink,
                         ShardAccumulatorOptions options);
  ~ShardAccumulatorServer();

  ShardAccumulatorServer(const ShardAccumulatorServer&) = delete;
  ShardAccumulatorServer& operator=(const ShardAccumulatorServer&) = delete;

  // Binds the endpoint; false if the transport could not.
  bool Start();
  void Stop();

  // Resolved endpoint the root should pull from.
  std::string endpoint() const;

  // Blocks until a seal pull arrives or `timeout_ms` elapses; true when
  // sealed. The caller stops its ingest server afterwards — the root only
  // seals once the round's every report is accounted for.
  bool WaitForSeal(int timeout_ms);

  uint64_t frames_served() const;
  uint64_t pulls_rejected() const;

 private:
  std::vector<uint8_t> HandlePull(std::vector<uint8_t>&& payload);

  svc::Transport* transport_;
  std::string endpoint_;
  svc::PipelineSink* sink_;
  ShardAccumulatorOptions options_;
  std::unique_ptr<svc::FrameServer> frame_server_;

  mutable std::mutex mutex_;
  std::condition_variable sealed_cv_;
  bool sealed_ = false;
  uint64_t sequence_ = 0;
  uint64_t frames_served_ = 0;
  uint64_t pulls_rejected_ = 0;
};

}  // namespace felip::dist

#endif  // FELIP_DIST_ACCUMULATOR_H_
