#include "felip/dist/client.h"

#include <utility>

#include "felip/common/check.h"
#include "felip/svc/message.h"

namespace felip::dist {

ShardedIngestClient::ShardedIngestClient(
    svc::Transport* transport, std::vector<std::string> shard_endpoints,
    svc::IngestClientOptions options)
    : router_(static_cast<uint32_t>(shard_endpoints.size())),
      routed_(shard_endpoints.size(), 0) {
  FELIP_CHECK(transport != nullptr);
  FELIP_CHECK_MSG(!shard_endpoints.empty(),
                  "sharded client needs at least one endpoint");
  clients_.reserve(shard_endpoints.size());
  for (std::string& endpoint : shard_endpoints) {
    clients_.push_back(std::make_unique<svc::IngestClient>(
        transport, std::move(endpoint), options));
  }
}

svc::SendOutcome ShardedIngestClient::SendBatch(
    const std::vector<wire::ReportMessage>& batch) {
  return SendEncodedBatch(wire::EncodeReportBatch(batch));
}

svc::SendOutcome ShardedIngestClient::SendEncodedBatch(
    const std::vector<uint8_t>& frame) {
  const std::optional<uint64_t> key = svc::ChecksumTrailer(frame);
  if (!key.has_value()) {
    svc::SendOutcome outcome;
    outcome.status =
        Status::InvalidArgument("batch frame has no checksum trailer");
    return outcome;
  }
  const uint32_t shard = router_.OwnerShard(*key);
  ++routed_[shard];
  return clients_[shard]->SendEncodedBatch(frame);
}

uint64_t ShardedIngestClient::batches_routed(uint32_t shard) const {
  FELIP_CHECK(shard < routed_.size());
  return routed_[shard];
}

uint64_t ShardedIngestClient::retries() const {
  uint64_t total = 0;
  for (const auto& client : clients_) total += client->retries();
  return total;
}

uint64_t ShardedIngestClient::reconnects() const {
  uint64_t total = 0;
  for (const auto& client : clients_) total += client->reconnects();
  return total;
}

}  // namespace felip::dist
