// Root aggregator of the distributed tier: pulls cumulative accumulator
// frames from every shard and folds them into one pipeline.
//
// The root is a client of each shard's accumulator endpoint. It polls on
// its own schedule, keeps only the newest frame per shard — frames are
// ordered by (epoch, sequence), so anything a restarted shard exported in
// a dead incarnation is discarded as stale — and declares the round
// complete once every shard has reported and the newest frames account
// for exactly the expected population. Because every frame is a full
// cumulative cut and merging is integer-count addition folded in shard-id
// order, the merged pipeline is bit-identical to single-node collection
// for ANY pull schedule, shard count, retry pattern, or mid-round shard
// restart.
//
// Transport failures (timeouts, fault injection, a shard that is
// currently dead) are retried from the poll loop with a fresh connection;
// a frame that decodes but disagrees on topology or plan digest is a
// configuration error and fails the round immediately.

#ifndef FELIP_DIST_ROOT_H_
#define FELIP_DIST_ROOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "felip/common/status.h"
#include "felip/core/felip.h"
#include "felip/svc/transport.h"
#include "felip/wire/wire.h"

namespace felip::dist {

struct RootAggregatorOptions {
  // The round is complete when the newest frames sum to exactly this many
  // ingested reports (the global user count: every user reports once and
  // the shards' dedup windows make counting exactly-once).
  uint64_t expected_reports = 0;
  // When non-zero, every frame's plan digest must match.
  uint64_t plan_digest = 0;
  int connect_timeout_ms = 2000;
  int response_timeout_ms = 2000;
  // Pause between poll sweeps while the round is incomplete.
  int poll_interval_ms = 20;
};

class RootAggregator {
 public:
  // `transport` must outlive this aggregator; `shard_endpoints[i]` is
  // shard i's accumulator endpoint.
  RootAggregator(svc::Transport* transport,
                 std::vector<std::string> shard_endpoints,
                 RootAggregatorOptions options);

  // Polls every shard until the round is complete or `timeout_ms`
  // elapses (kUnavailable). Safe to call while ingest is still running —
  // completion is defined by the frames, not by timing.
  Status PullUntilComplete(int timeout_ms);

  // Sends a best-effort seal pull to every shard (so shard processes
  // blocked in WaitForSeal can shut down), then folds the newest frame of
  // each shard into `pipeline` in shard-id order and closes the round:
  // kConfigured pipelines get BeginIngest(), and FinishIngest() runs
  // after the last merge, leaving the pipeline kSealed for Finalize().
  // Requires a completed PullUntilComplete; any merge error discards the
  // round (the pipeline must not be reused).
  Status MergeInto(core::FelipPipeline* pipeline);

  // Sum of reports_ingested over the newest frames held so far.
  uint64_t total_reports() const;
  // True once every shard has a frame and total_reports() matches.
  bool complete() const;

  uint64_t frames_pulled() const { return frames_pulled_; }
  uint64_t frames_stale() const { return frames_stale_; }
  uint64_t pull_failures() const { return pull_failures_; }

 private:
  // One pull round-trip to `shard`; reconnects as needed. On any
  // transport or validation failure the connection is dropped so the next
  // attempt starts clean.
  Status PullShard(size_t shard, bool seal);
  // Keeps `frame` iff it is newer than the shard's current one.
  void Adopt(size_t shard, wire::AccumulatorFrameMessage&& frame);

  svc::Transport* transport_;
  std::vector<std::string> endpoints_;
  RootAggregatorOptions options_;
  std::vector<std::unique_ptr<svc::FrameConnection>> connections_;
  std::vector<std::optional<wire::AccumulatorFrameMessage>> latest_;
  uint64_t frames_pulled_ = 0;
  uint64_t frames_stale_ = 0;
  uint64_t pull_failures_ = 0;
};

}  // namespace felip::dist

#endif  // FELIP_DIST_ROOT_H_
