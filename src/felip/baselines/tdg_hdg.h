// TDG and HDG baselines (Yang et al., VLDB'20; Section 3.2 of the FELIP
// paper).
//
// Both lay grids over attribute pairs and collect them with OLH under user
// division. Unlike FELIP they use one shared granularity for all 1-D grids
// (g1) and one for all 2-D grids (g2), derived assuming 50% query
// selectivity and rounded to the nearest power of two (their divisibility
// workaround — the limitation Section 3.2 discusses). TDG collects only the
// 2-D grids and answers under within-cell uniformity; HDG adds 1-D grids
// for every attribute, enforces consistency, and refines pair answers
// through response matrices.

#ifndef FELIP_BASELINES_TDG_HDG_H_
#define FELIP_BASELINES_TDG_HDG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "felip/data/dataset.h"
#include "felip/fo/frequency_oracle.h"
#include "felip/grid/grid.h"
#include "felip/post/response_matrix.h"
#include "felip/query/query.h"

namespace felip::baselines {

enum class YangStrategy { kTdg, kHdg };

struct TdgHdgConfig {
  YangStrategy strategy = YangStrategy::kHdg;
  double epsilon = 1.0;
  double alpha1 = 0.7;
  double alpha2 = 0.03;
  fo::OlhOptions olh_options = {.seed_pool_size = 4096};
  int consistency_rounds = 3;
  post::ResponseMatrixOptions response_matrix_options;
  double lambda_threshold = 1e-7;
  uint64_t seed = 1;
};

// Shared-granularity derivations (exposed for tests): the optimal real
// values at 50% selectivity, before power-of-two rounding.
double TdgHdgRawG1(double epsilon, uint64_t n, uint64_t m, double alpha1);
double TdgHdgRawG2(double epsilon, uint64_t n, uint64_t m, double alpha2);
// Nearest power of two, clamped to [1, domain].
uint32_t NearestPowerOfTwo(double value, uint32_t domain);

class TdgHdgPipeline {
 public:
  // Requires >= 2 attributes.
  TdgHdgPipeline(std::vector<data::AttributeInfo> schema, uint64_t num_users,
                 TdgHdgConfig config);

  void Collect(const data::Dataset& dataset);
  void Finalize();
  double AnswerQuery(const query::Query& query) const;

  uint32_t g1() const { return g1_; }
  uint32_t g2() const { return g2_; }
  uint64_t num_groups() const {
    return grids_1d_.size() + grids_2d_.size();
  }
  const std::vector<grid::Grid2D>& grids_2d() const { return grids_2d_; }

 private:
  size_t PairGridIndex(uint32_t i, uint32_t j) const;
  grid::AxisSelection SelectionFor(const query::Query& query,
                                   uint32_t attr) const;
  double AnswerPair(uint32_t i, uint32_t j, const grid::AxisSelection& sel_i,
                    const grid::AxisSelection& sel_j) const;

  std::vector<data::AttributeInfo> schema_;
  uint64_t num_users_;
  TdgHdgConfig config_;
  uint32_t g1_ = 1;  // raw shared granularity before per-attribute capping
  uint32_t g2_ = 1;
  std::vector<grid::Grid1D> grids_1d_;  // HDG only; one per attribute
  std::vector<grid::Grid2D> grids_2d_;  // one per pair, lexicographic
  std::vector<std::unique_ptr<fo::FrequencyOracle>> oracles_;
  std::vector<post::ResponseMatrix> response_matrices_;  // HDG only
  bool collected_ = false;
  bool finalized_ = false;
};

}  // namespace felip::baselines

#endif  // FELIP_BASELINES_TDG_HDG_H_
