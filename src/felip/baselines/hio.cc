#include "felip/baselines/hio.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "felip/common/check.h"
#include "felip/common/hash.h"
#include "felip/common/rng.h"
#include "felip/fo/protocol.h"
#include "felip/grid/partition.h"

namespace felip::baselines {

namespace {

using grid::Partition1D;

constexpr uint64_t kIntervalIdSalt = 0x48494f5f69645f31ULL;  // "HIO_id_1"

}  // namespace

HioPipeline::HioPipeline(std::vector<data::AttributeInfo> schema,
                         HioConfig config)
    : schema_(std::move(schema)), config_(std::move(config)) {
  FELIP_CHECK(!schema_.empty());
  FELIP_CHECK(config_.epsilon > 0.0);
  FELIP_CHECK(config_.branching >= 2);

  levels_.resize(schema_.size());
  num_groups_ = 1;
  for (size_t a = 0; a < schema_.size(); ++a) {
    const data::AttributeInfo& info = schema_[a];
    std::vector<uint32_t>& lv = levels_[a];
    lv.push_back(1);  // root covers the whole domain
    if (info.domain > 1) {
      if (info.categorical) {
        lv.push_back(info.domain);  // categorical: root + leaves only
      } else {
        uint64_t cells = 1;
        while (cells < info.domain) {
          cells = std::min<uint64_t>(cells * config_.branching, info.domain);
          lv.push_back(static_cast<uint32_t>(cells));
        }
      }
    }
    num_groups_ *= lv.size();
  }
  g_ = fo::OlhHashRange(config_.epsilon);
  const double e = std::exp(config_.epsilon);
  p_ = e / (e + static_cast<double>(g_) - 1.0);
}

uint64_t HioPipeline::GroupKey(
    const std::vector<uint32_t>& tuple_levels) const {
  uint64_t key = 0;
  for (size_t a = 0; a < tuple_levels.size(); ++a) {
    key = key * levels_[a].size() + tuple_levels[a];
  }
  return key;
}

uint64_t HioPipeline::IntervalId(const std::vector<uint32_t>& tuple_levels,
                                 const std::vector<uint32_t>& cells) const {
  // Hash (levels, cells) down to 64 bits; the interval space can exceed
  // 2^64, and OLH re-hashes anyway, so collisions are negligible noise.
  uint64_t h = XxHash64(GroupKey(tuple_levels), kIntervalIdSalt);
  return XxHash64Bytes(cells.data(), cells.size() * sizeof(uint32_t), h);
}

void HioPipeline::Collect(const data::Dataset& dataset) {
  FELIP_CHECK_MSG(!collected_, "Collect() called twice");
  FELIP_CHECK(dataset.num_attributes() == schema_.size());
  FELIP_CHECK(dataset.num_rows() > 0);
  const auto k = static_cast<uint32_t>(schema_.size());

  fo::OlhClient client(config_.epsilon,
                       std::numeric_limits<uint64_t>::max());
  Rng rng(config_.seed);
  std::vector<uint32_t> tuple(k);
  std::vector<uint32_t> cells(k);
  for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
    // Uniform level tuple via mixed-radix decode of a uniform index.
    uint64_t idx = rng.UniformU64(num_groups_);
    for (uint32_t a = 0; a < k; ++a) {
      tuple[a] = static_cast<uint32_t>(idx % levels_[a].size());
      idx /= levels_[a].size();
    }
    for (uint32_t a = 0; a < k; ++a) {
      const Partition1D part(schema_[a].domain, LevelCells(a, tuple[a]));
      cells[a] = part.CellOf(dataset.Value(row, a));
    }
    group_reports_[GroupKey(tuple)].push_back(
        client.Perturb(IntervalId(tuple, cells), rng));
  }
  collected_ = true;
}

double HioPipeline::EstimateInterval(uint64_t group_key,
                                     uint64_t interval_id) const {
  const auto it = group_reports_.find(group_key);
  if (it == group_reports_.end()) return 0.0;  // empty group
  const std::vector<fo::OlhReport>& reports = it->second;
  uint64_t support = 0;
  for (const fo::OlhReport& r : reports) {
    if (OlhHash(interval_id, r.seed, g_) == r.hashed_report) ++support;
  }
  const auto n = static_cast<double>(reports.size());
  const double inv_g = 1.0 / static_cast<double>(g_);
  return (static_cast<double>(support) - n * inv_g) / (n * (p_ - inv_g));
}

std::vector<HioPipeline::IntervalRef> HioPipeline::DecomposeRange(
    uint32_t attr, uint32_t lo, uint32_t hi) const {
  std::vector<IntervalRef> result;
  const uint32_t num_levels = static_cast<uint32_t>(levels_[attr].size());
  // Iterative DFS from the root; hierarchy boundaries nest, so children of
  // a node are exactly the next level's cells inside its value range.
  std::vector<std::pair<uint32_t, uint32_t>> stack = {{0, 0}};
  while (!stack.empty()) {
    const auto [level, cell] = stack.back();
    stack.pop_back();
    const Partition1D part(schema_[attr].domain, LevelCells(attr, level));
    const uint32_t begin = part.CellBegin(cell);
    const uint32_t end = part.CellEnd(cell);  // exclusive
    if (end - 1 < lo || begin > hi) continue;
    if (begin >= lo && end - 1 <= hi) {
      result.push_back({level, cell, 1.0});
      continue;
    }
    FELIP_CHECK_MSG(level + 1 < num_levels,
                    "partially covered leaf interval");
    const Partition1D child(schema_[attr].domain,
                            LevelCells(attr, level + 1));
    const uint32_t c0 = child.CellOf(begin);
    const uint32_t c1 = child.CellOf(end - 1);
    for (uint32_t c = c0; c <= c1; ++c) stack.push_back({level + 1, c});
  }
  return result;
}

std::vector<HioPipeline::IntervalRef> HioPipeline::DecomposeSet(
    uint32_t attr, const std::vector<uint32_t>& values) const {
  const auto leaf = static_cast<uint32_t>(levels_[attr].size() - 1);
  if (values.size() >= schema_[attr].domain) return {{0, 0, 1.0}};  // root
  std::vector<IntervalRef> result;
  result.reserve(values.size());
  for (const uint32_t v : values) result.push_back({leaf, v, 1.0});
  return result;
}

std::vector<HioPipeline::IntervalRef> HioPipeline::SnapRange(
    uint32_t attr, uint32_t lo, uint32_t hi, uint64_t budget) const {
  FELIP_CHECK(budget >= 1);
  // Finest level whose overlapping-cell count fits the budget (level 0
  // always fits with one cell).
  std::vector<IntervalRef> best = {{0, 0, 1.0}};
  {
    const Partition1D root(schema_[attr].domain, 1);
    best[0].weight = root.OverlapFraction(0, lo, hi);
  }
  for (uint32_t level = 1; level < levels_[attr].size(); ++level) {
    const Partition1D part(schema_[attr].domain, LevelCells(attr, level));
    const uint32_t c0 = part.CellOf(lo);
    const uint32_t c1 = part.CellOf(hi);
    if (static_cast<uint64_t>(c1) - c0 + 1 > budget) break;
    best.clear();
    for (uint32_t c = c0; c <= c1; ++c) {
      best.push_back({level, c, part.OverlapFraction(c, lo, hi)});
    }
  }
  return best;
}

double HioPipeline::AnswerQuery(const query::Query& query) const {
  FELIP_CHECK_MSG(collected_, "AnswerQuery() requires Collect()");
  const auto k = static_cast<uint32_t>(schema_.size());
  for (const query::Predicate& p : query.predicates()) {
    FELIP_CHECK(p.attr < k);
  }

  // Expand to all k attributes; remember range bounds for snapping.
  std::vector<std::vector<IntervalRef>> decomposition(k);
  std::vector<std::pair<int64_t, int64_t>> range_of(k, {-1, -1});
  for (uint32_t a = 0; a < k; ++a) {
    const query::Predicate* p = query.FindPredicate(a);
    if (p == nullptr) {
      decomposition[a] = {{0, 0, 1.0}};
    } else if (p->op == query::Op::kIn) {
      decomposition[a] = DecomposeSet(a, p->values);
    } else {
      const uint32_t hi = p->op == query::Op::kEquals ? p->lo : p->hi;
      decomposition[a] = DecomposeRange(a, p->lo, hi);
      range_of[a] = {p->lo, hi};
    }
  }

  // Cap the cross-product by snapping the longest range decompositions to
  // coarser levels (documented approximation; see the header comment).
  auto term_count = [&]() {
    double product = 1.0;
    for (const auto& d : decomposition) {
      product *= static_cast<double>(d.size());
    }
    return product;
  };
  while (term_count() > static_cast<double>(config_.max_query_terms)) {
    uint32_t widest = k;
    size_t widest_size = 1;
    for (uint32_t a = 0; a < k; ++a) {
      if (range_of[a].first >= 0 && decomposition[a].size() > widest_size) {
        widest = a;
        widest_size = decomposition[a].size();
      }
    }
    if (widest == k || widest_size <= 2) break;  // nothing left to shrink
    decomposition[widest] =
        SnapRange(widest, static_cast<uint32_t>(range_of[widest].first),
                  static_cast<uint32_t>(range_of[widest].second),
                  widest_size / 2);
  }

  // Sum the estimates of all cross-product k-dim intervals.
  double total = 0.0;
  std::vector<uint32_t> tuple(k);
  std::vector<uint32_t> cells(k);
  std::vector<size_t> cursor(k, 0);
  while (true) {
    double weight = 1.0;
    for (uint32_t a = 0; a < k; ++a) {
      const IntervalRef& ref = decomposition[a][cursor[a]];
      tuple[a] = ref.level;
      cells[a] = ref.index;
      weight *= ref.weight;
    }
    total +=
        weight * EstimateInterval(GroupKey(tuple), IntervalId(tuple, cells));
    // Odometer increment over the decomposition lists.
    uint32_t a = 0;
    for (; a < k; ++a) {
      if (++cursor[a] < decomposition[a].size()) break;
      cursor[a] = 0;
    }
    if (a == k) break;
  }
  return std::clamp(total, 0.0, 1.0);
}

}  // namespace felip::baselines
