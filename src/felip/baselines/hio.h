// HIO baseline (Wang et al., SIGMOD'19; Section 3.1 of the FELIP paper).
//
// Each attribute gets a b-ary hierarchy of interval levels (level j splits
// the domain into ~b^j near-equal intervals; categorical attributes get
// just root + leaves). Users are divided uniformly over all level-tuple
// combinations; a user assigned tuple (l_1..l_k) reports — via OLH — the
// k-dim interval containing their record at those levels. A query is
// expanded to all k attributes (unconstrained attributes take the root
// interval), each attribute's constraint is decomposed into the minimal
// hierarchy intervals, and the estimates of all cross-product k-dim
// intervals are summed.
//
// The k-dim interval space is astronomically large (up to d^k), so the
// aggregator never materializes frequencies: reports are stored per group
// and support counts are evaluated lazily per queried interval. When the
// cross-product of per-attribute decompositions would exceed
// `max_query_terms`, the longest decompositions are snapped outward to a
// coarser level (full covering cells, scaled by the covered fraction) — a
// documented approximation that keeps high-λ queries tractable.

#ifndef FELIP_BASELINES_HIO_H_
#define FELIP_BASELINES_HIO_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "felip/data/dataset.h"
#include "felip/fo/olh.h"
#include "felip/query/query.h"

namespace felip::baselines {

struct HioConfig {
  double epsilon = 1.0;
  uint32_t branching = 4;  // hierarchy fan-out b
  uint64_t max_query_terms = 100000;
  uint64_t seed = 1;
};

class HioPipeline {
 public:
  HioPipeline(std::vector<data::AttributeInfo> schema, HioConfig config);

  // Simulates the LDP collection round over the dataset.
  void Collect(const data::Dataset& dataset);

  // Estimated fractional answer (clamped to [0, 1]).
  double AnswerQuery(const query::Query& query) const;

  // Number of level-tuple user groups (h+1)^k — introspection.
  uint64_t num_groups() const { return num_groups_; }
  // Number of hierarchy levels of `attr`.
  uint32_t num_levels(uint32_t attr) const {
    return static_cast<uint32_t>(levels_[attr].size());
  }

 private:
  // One hierarchy interval reference.
  struct IntervalRef {
    uint32_t level = 0;
    uint32_t index = 0;
    double weight = 1.0;  // < 1 for snapped (coarsened) edge intervals
  };

  // Number of cells at `level` of `attr`.
  uint32_t LevelCells(uint32_t attr, uint32_t level) const {
    return levels_[attr][level];
  }

  // Greedy minimal decomposition of [lo, hi] into hierarchy intervals.
  std::vector<IntervalRef> DecomposeRange(uint32_t attr, uint32_t lo,
                                          uint32_t hi) const;
  // Decomposition of an arbitrary value set (leaf level).
  std::vector<IntervalRef> DecomposeSet(
      uint32_t attr, const std::vector<uint32_t>& values) const;
  // Snapped single-level decomposition used when the cross-product blows
  // up: the cells of the coarsest feasible level overlapping the range,
  // weighted by the fraction of each cell the range covers.
  std::vector<IntervalRef> SnapRange(uint32_t attr, uint32_t lo, uint32_t hi,
                                     uint64_t budget) const;

  // Deterministic 64-bit id of a k-dim interval at a level tuple.
  uint64_t IntervalId(const std::vector<uint32_t>& tuple_levels,
                      const std::vector<uint32_t>& cells) const;
  // Mixed-radix index of a level tuple (group key).
  uint64_t GroupKey(const std::vector<uint32_t>& tuple_levels) const;

  // OLH support-count estimate of one interval id within one group.
  double EstimateInterval(uint64_t group_key, uint64_t interval_id) const;

  std::vector<data::AttributeInfo> schema_;
  HioConfig config_;
  // levels_[attr][level] = number of cells at that level.
  std::vector<std::vector<uint32_t>> levels_;
  uint64_t num_groups_ = 1;
  // OLH parameters (per-user seeds; groups are tiny).
  uint32_t g_ = 2;
  double p_ = 0.5;
  std::unordered_map<uint64_t, std::vector<fo::OlhReport>> group_reports_;
  bool collected_ = false;
};

}  // namespace felip::baselines

#endif  // FELIP_BASELINES_HIO_H_
