#include "felip/baselines/tdg_hdg.h"

#include <algorithm>
#include <cmath>

#include "felip/common/check.h"
#include "felip/common/numeric.h"
#include "felip/common/rng.h"
#include "felip/post/consistency.h"
#include "felip/post/lambda_estimator.h"
#include "felip/post/norm_sub.h"

namespace felip::baselines {

namespace {

using grid::AxisSelection;
using grid::Grid1D;
using grid::Grid2D;
using grid::Partition1D;

}  // namespace

double TdgHdgRawG1(double epsilon, uint64_t n, uint64_t m, double alpha1) {
  // Minimize (a1/g)^2 + g * (1/2) * 4 m e / (n (e-1)^2)  [r = 1/2].
  const double e = std::exp(epsilon);
  return std::cbrt(static_cast<double>(n) * alpha1 * alpha1 * (e - 1.0) *
                   (e - 1.0) / (static_cast<double>(m) * e));
}

double TdgHdgRawG2(double epsilon, uint64_t n, uint64_t m, double alpha2) {
  // Minimize (2 a2 / g)^2 + (g^2 / 4) * 4 m e / (n (e-1)^2)  [rx = ry = 1/2].
  const double e = std::exp(epsilon);
  return std::pow(4.0 * static_cast<double>(n) * alpha2 * alpha2 * (e - 1.0) *
                      (e - 1.0) / (static_cast<double>(m) * e),
                  0.25);
}

uint32_t NearestPowerOfTwo(double value, uint32_t domain) {
  if (value <= 1.0) return 1;
  const double log2v = std::log2(value);
  const double rounded = std::round(log2v);
  const double pow2 = std::exp2(rounded);
  const auto g = static_cast<uint32_t>(
      std::clamp(pow2, 1.0, static_cast<double>(domain)));
  return g;
}

TdgHdgPipeline::TdgHdgPipeline(std::vector<data::AttributeInfo> schema,
                               uint64_t num_users, TdgHdgConfig config)
    : schema_(std::move(schema)), num_users_(num_users),
      config_(std::move(config)) {
  FELIP_CHECK_MSG(schema_.size() >= 2, "TDG/HDG needs >= 2 attributes");
  FELIP_CHECK(num_users_ > 0);
  FELIP_CHECK(config_.epsilon > 0.0);
  const auto k = static_cast<uint32_t>(schema_.size());
  const bool hdg = config_.strategy == YangStrategy::kHdg;
  const uint64_t m = (hdg ? k : 0) + Choose2(k);

  config_.response_matrix_options.threshold =
      std::min(config_.response_matrix_options.threshold,
               1.0 / static_cast<double>(num_users_));

  // Shared granularities (50% selectivity assumption + power-of-two
  // rounding). Per-attribute the granularity is additionally capped by the
  // domain, mirroring that grids cannot have more cells than values.
  const uint32_t max_domain =
      std::max_element(schema_.begin(), schema_.end(),
                       [](const auto& a, const auto& b) {
                         return a.domain < b.domain;
                       })
          ->domain;
  g1_ = NearestPowerOfTwo(
      TdgHdgRawG1(config_.epsilon, num_users_, m, config_.alpha1),
      max_domain);
  g2_ = NearestPowerOfTwo(
      TdgHdgRawG2(config_.epsilon, num_users_, m, config_.alpha2),
      max_domain);

  if (hdg) {
    for (uint32_t a = 0; a < k; ++a) {
      grids_1d_.emplace_back(
          a, Partition1D(schema_[a].domain,
                         std::min(g1_, schema_[a].domain)));
    }
  }
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = i + 1; j < k; ++j) {
      grids_2d_.emplace_back(
          i, j,
          Partition1D(schema_[i].domain, std::min(g2_, schema_[i].domain)),
          Partition1D(schema_[j].domain, std::min(g2_, schema_[j].domain)));
    }
  }
}

void TdgHdgPipeline::Collect(const data::Dataset& dataset) {
  FELIP_CHECK_MSG(!collected_, "Collect() called twice");
  FELIP_CHECK(dataset.num_attributes() == schema_.size());
  FELIP_CHECK(dataset.num_rows() == num_users_);

  const size_t n1 = grids_1d_.size();
  const size_t m = n1 + grids_2d_.size();
  oracles_.clear();
  for (size_t g = 0; g < m; ++g) {
    const uint64_t domain = g < n1 ? grids_1d_[g].num_cells()
                                   : grids_2d_[g - n1].num_cells();
    oracles_.push_back(fo::MakeFrequencyOracle(fo::Protocol::kOlh,
                                               config_.epsilon, domain,
                                               config_.olh_options));
  }

  Rng rng(config_.seed);
  for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
    const size_t g = static_cast<size_t>(rng.UniformU64(m));
    uint64_t cell;
    if (g < n1) {
      const Grid1D& grid = grids_1d_[g];
      cell = grid.CellOf(dataset.Value(row, grid.attr()));
    } else {
      const Grid2D& grid = grids_2d_[g - n1];
      cell = grid.CellOf(dataset.Value(row, grid.attr_x()),
                         dataset.Value(row, grid.attr_y()));
    }
    oracles_[g]->SubmitUserValue(cell, rng);
  }
  collected_ = true;
}

void TdgHdgPipeline::Finalize() {
  FELIP_CHECK_MSG(collected_, "Finalize() requires Collect()");
  FELIP_CHECK_MSG(!finalized_, "Finalize() called twice");
  const size_t n1 = grids_1d_.size();
  for (size_t g = 0; g < oracles_.size(); ++g) {
    // SubmitUserValue aggregates eagerly, so the buffer is always flushed.
    std::vector<double> freq = oracles_[g]->EstimateFrequencies().value();
    post::RemoveNegativity(&freq);
    if (g < n1) {
      grids_1d_[g].SetFrequencies(std::move(freq));
    } else {
      grids_2d_[g - n1].SetFrequencies(std::move(freq));
    }
  }
  oracles_.clear();

  if (config_.strategy == YangStrategy::kHdg) {
    post::MakeConsistent(static_cast<uint32_t>(schema_.size()), &grids_1d_,
                         &grids_2d_,
                         {.rounds = config_.consistency_rounds});
    response_matrices_.clear();
    response_matrices_.reserve(grids_2d_.size());
    for (const Grid2D& g2 : grids_2d_) {
      response_matrices_.push_back(post::ResponseMatrix::Build(
          g2, &grids_1d_[g2.attr_x()], &grids_1d_[g2.attr_y()],
          config_.response_matrix_options));
    }
  }
  finalized_ = true;
}

size_t TdgHdgPipeline::PairGridIndex(uint32_t i, uint32_t j) const {
  FELIP_CHECK(i < j);
  const auto k = static_cast<uint32_t>(schema_.size());
  FELIP_CHECK(j < k);
  return static_cast<size_t>(i) * (2 * k - i - 1) / 2 + (j - i - 1);
}

AxisSelection TdgHdgPipeline::SelectionFor(const query::Query& query,
                                           uint32_t attr) const {
  const query::Predicate* p = query.FindPredicate(attr);
  if (p == nullptr) return AxisSelection::MakeAll(schema_[attr].domain);
  return p->ToSelection();
}

double TdgHdgPipeline::AnswerPair(uint32_t i, uint32_t j,
                                  const AxisSelection& sel_i,
                                  const AxisSelection& sel_j) const {
  const size_t idx = PairGridIndex(i, j);
  if (config_.strategy == YangStrategy::kHdg) {
    return response_matrices_[idx].Answer(sel_i, sel_j);
  }
  return grids_2d_[idx].Answer(sel_i, sel_j);  // TDG: uniformity assumption
}

double TdgHdgPipeline::AnswerQuery(const query::Query& query) const {
  FELIP_CHECK_MSG(finalized_, "AnswerQuery() requires Finalize()");
  const uint32_t lambda = query.dimension();
  for (const query::Predicate& p : query.predicates()) {
    FELIP_CHECK(p.attr < schema_.size());
  }
  if (lambda == 1) {
    const query::Predicate& p = query.predicates()[0];
    if (config_.strategy == YangStrategy::kHdg) {
      return std::clamp(grids_1d_[p.attr].Answer(p.ToSelection()), 0.0, 1.0);
    }
    const uint32_t partner = p.attr == 0 ? 1 : 0;
    const AxisSelection all =
        AxisSelection::MakeAll(schema_[partner].domain);
    const uint32_t i = std::min(p.attr, partner);
    const uint32_t j = std::max(p.attr, partner);
    return std::clamp(p.attr < partner
                          ? AnswerPair(i, j, p.ToSelection(), all)
                          : AnswerPair(i, j, all, p.ToSelection()),
                      0.0, 1.0);
  }

  std::vector<uint32_t> attrs;
  std::vector<AxisSelection> selections;
  for (const query::Predicate& p : query.predicates()) {
    attrs.push_back(p.attr);
    selections.push_back(p.ToSelection());
  }
  if (lambda == 2) {
    return std::clamp(
        AnswerPair(attrs[0], attrs[1], selections[0], selections[1]), 0.0,
        1.0);
  }
  std::vector<double> pair_answers(Choose2(lambda), 0.0);
  for (uint32_t a = 0; a < lambda; ++a) {
    for (uint32_t b = a + 1; b < lambda; ++b) {
      pair_answers[post::PairIndex(a, b, lambda)] =
          AnswerPair(attrs[a], attrs[b], selections[a], selections[b]);
    }
  }
  post::LambdaEstimatorOptions options;
  options.threshold = std::min(config_.lambda_threshold,
                               1.0 / static_cast<double>(num_users_));
  return post::EstimateLambdaQuery(lambda, pair_answers, options);
}

}  // namespace felip::baselines
