// Streaming FELIP — the paper's closing future-work direction ("leverage
// low-dimensional grids to answer queries over data streams").
//
// Users arrive over time in epochs and each user reports exactly once, in
// their arrival epoch, so the per-user privacy guarantee is the plain
// eps-LDP of that epoch's collection (no budget accumulation over time).
// The aggregator runs one FELIP round per epoch and answers queries against
// an exponentially decayed mixture of the per-epoch estimates:
//
//   answer_t(q) = Σ_e decay^(t-e) · answer_e(q) / Σ_e decay^(t-e)
//
// keeping only the most recent `max_epochs` rounds, which bounds memory and
// lets the estimate track drifting populations.
//
// The service-tier epoch layer (epoch_store.h / epoch_service.h) promotes
// this in-process loop to sealed on-disk segments; both layers share
// EpochConfig and DecayMix below so a served windowed answer is bit-identical
// to the in-process collector over the same arrivals.

#ifndef FELIP_STREAM_STREAMING_H_
#define FELIP_STREAM_STREAMING_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "felip/common/status.h"
#include "felip/core/felip.h"
#include "felip/data/dataset.h"
#include "felip/query/query.h"

namespace felip::stream {

struct StreamConfig {
  core::FelipConfig felip;   // per-epoch collection configuration
  double decay = 0.6;        // weight ratio between consecutive epochs, (0, 1]
  uint32_t max_epochs = 8;   // history window (older epochs are dropped)
  // Overrides felip.aggregation_threads for epoch ingestion when nonzero:
  // a streaming deployment typically wants the epoch's sharded aggregation
  // to use all cores even if the embedded FELIP config is tuned for
  // offline runs. Estimates are identical for every setting.
  unsigned aggregation_threads = 0;
};

// The per-epoch collection config for epoch `epoch_index` (0-based): the
// base config with the seed decorrelated per epoch while keeping runs
// reproducible. Every layer that replays an epoch round — the in-process
// collector, the epoch rotation service, and the population simulator in
// felip_client — must derive seeds through this one function, or served
// answers stop being bit-identical to in-process ones.
core::FelipConfig EpochConfig(const core::FelipConfig& base,
                              uint64_t epoch_index);

// Decay-weighted mixture of per-epoch answers, oldest epoch first. Folded
// as a Horner evaluation with a running weight — one multiply per epoch, no
// pow() — so long windows neither underflow to subnormals nor depend on the
// fold direction:
//
//   total = total·decay + answer_e;  norm = norm·decay + 1
//
// after which the newest epoch carries weight 1 and epoch t-k carries
// decay^k exactly as documented above. Requires a nonempty span and
// decay ∈ (0, 1] (callers validate; see StreamConfig).
double DecayMix(std::span<const double> answers_oldest_first, double decay);

class StreamingCollector {
 public:
  StreamingCollector(std::vector<data::AttributeInfo> schema,
                     StreamConfig config);

  // Runs one full FELIP round over this epoch's arrivals. The epoch's
  // schema must match; each record is one (new) user.
  void IngestEpoch(const data::Dataset& epoch);

  // Decay-weighted estimate over the retained epochs. Fails with
  // kFailedPrecondition before the first epoch is ingested (a retryable
  // condition for a service — the next epoch seal satisfies it).
  StatusOr<double> AnswerQuery(const query::Query& query) const;

  // Estimate from the newest epoch only (no history smoothing). Same
  // empty-history contract as AnswerQuery.
  StatusOr<double> AnswerQueryLatest(const query::Query& query) const;

  uint64_t epochs_ingested() const { return epochs_ingested_; }
  size_t epochs_retained() const { return history_.size(); }

 private:
  std::vector<data::AttributeInfo> schema_;
  StreamConfig config_;
  uint64_t epochs_ingested_ = 0;
  // Newest epoch at the back.
  std::deque<std::unique_ptr<core::FelipPipeline>> history_;
};

}  // namespace felip::stream

#endif  // FELIP_STREAM_STREAMING_H_
