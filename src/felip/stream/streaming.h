// Streaming FELIP — the paper's closing future-work direction ("leverage
// low-dimensional grids to answer queries over data streams").
//
// Users arrive over time in epochs and each user reports exactly once, in
// their arrival epoch, so the per-user privacy guarantee is the plain
// eps-LDP of that epoch's collection (no budget accumulation over time).
// The aggregator runs one FELIP round per epoch and answers queries against
// an exponentially decayed mixture of the per-epoch estimates:
//
//   answer_t(q) = Σ_e decay^(t-e) · answer_e(q) / Σ_e decay^(t-e)
//
// keeping only the most recent `max_epochs` rounds, which bounds memory and
// lets the estimate track drifting populations.

#ifndef FELIP_STREAM_STREAMING_H_
#define FELIP_STREAM_STREAMING_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "felip/core/felip.h"
#include "felip/data/dataset.h"
#include "felip/query/query.h"

namespace felip::stream {

struct StreamConfig {
  core::FelipConfig felip;   // per-epoch collection configuration
  double decay = 0.6;        // weight ratio between consecutive epochs, (0, 1]
  uint32_t max_epochs = 8;   // history window (older epochs are dropped)
  // Overrides felip.aggregation_threads for epoch ingestion when nonzero:
  // a streaming deployment typically wants the epoch's sharded aggregation
  // to use all cores even if the embedded FELIP config is tuned for
  // offline runs. Estimates are identical for every setting.
  unsigned aggregation_threads = 0;
};

class StreamingCollector {
 public:
  StreamingCollector(std::vector<data::AttributeInfo> schema,
                     StreamConfig config);

  // Runs one full FELIP round over this epoch's arrivals. The epoch's
  // schema must match; each record is one (new) user.
  void IngestEpoch(const data::Dataset& epoch);

  // Decay-weighted estimate over the retained epochs. Requires at least
  // one ingested epoch.
  double AnswerQuery(const query::Query& query) const;

  // Estimate from the newest epoch only (no history smoothing).
  double AnswerQueryLatest(const query::Query& query) const;

  uint64_t epochs_ingested() const { return epochs_ingested_; }
  size_t epochs_retained() const { return history_.size(); }

 private:
  std::vector<data::AttributeInfo> schema_;
  StreamConfig config_;
  uint64_t epochs_ingested_ = 0;
  // Newest epoch at the back.
  std::deque<std::unique_ptr<core::FelipPipeline>> history_;
};

}  // namespace felip::stream

#endif  // FELIP_STREAM_STREAMING_H_
