#include "felip/stream/epoch_store.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <system_error>

#include "felip/common/check.h"
#include "felip/snapshot/store.h"
#include "felip/wire/framing.h"

namespace felip::stream {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kEpochMagic = 0x46455347;  // "FESG"
constexpr uint8_t kEpochVersion = 1;
// Distinct from the wire ("wirecsum") and snapshot ("snapcsum") salts, so
// a segment can never verify as either of those artifacts or vice versa.
constexpr uint64_t kEpochChecksumSalt = 0x65706f63'6373756dULL;  // epoccsum

constexpr char kPrefix[] = "epoch-";
constexpr char kSuffix[] = ".fesg";

// Sequence number of a segment file name, or 0 when the name does not
// match epoch-<seq>.fesg.
uint64_t SequenceOf(const std::string& name) {
  const std::string_view prefix(kPrefix);
  const std::string_view suffix(kSuffix);
  if (name.size() <= prefix.size() + suffix.size()) return 0;
  if (name.compare(0, prefix.size(), prefix) != 0) return 0;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return 0;
  }
  uint64_t seq = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

}  // namespace

std::vector<uint8_t> EncodeEpochSegment(const EpochSegment& segment) {
  std::vector<uint8_t> bytes;
  wire::Writer w(&bytes);
  w.Put<uint32_t>(kEpochMagic);
  w.Put<uint8_t>(kEpochVersion);
  w.Put<uint64_t>(segment.seq);
  w.Put<uint64_t>(segment.reports);
  w.Put<double>(segment.epsilon);
  w.Put<uint64_t>(static_cast<uint64_t>(segment.snapshot.size()));
  w.PutBytes(segment.snapshot.data(), segment.snapshot.size());
  wire::SealChecksum(&bytes, kEpochChecksumSalt);
  return bytes;
}

StatusOr<EpochSegment> DecodeEpochSegment(const std::vector<uint8_t>& bytes) {
  // The trailer gates everything: a truncated or bit-flipped segment must
  // be indistinguishable from garbage, never half-decoded.
  if (!wire::CheckSealedChecksum(bytes, kEpochChecksumSalt)) {
    return Status::DataLoss("epoch segment checksum mismatch or truncation");
  }
  wire::Reader r(bytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  EpochSegment segment;
  uint64_t snapshot_len = 0;
  if (!r.Get(&magic) || !r.Get(&version) || !r.Get(&segment.seq) ||
      !r.Get(&segment.reports) || !r.Get(&segment.epsilon) ||
      !r.Get(&snapshot_len)) {
    return Status::DataLoss("epoch segment header is truncated");
  }
  if (magic != kEpochMagic) {
    return Status::InvalidArgument("not an epoch segment (bad magic)");
  }
  if (version != kEpochVersion) {
    return Status::InvalidArgument(
        "unsupported epoch segment version " + std::to_string(version));
  }
  if (segment.seq == 0) {
    return Status::InvalidArgument("epoch segment sequence must be >= 1");
  }
  if (!std::isfinite(segment.epsilon) || segment.epsilon <= 0.0) {
    return Status::InvalidArgument(
        "epoch segment carries a non-positive privacy budget");
  }
  // The snapshot must occupy exactly the bytes between the header and the
  // trailer; anything else is a framing error a checksum cannot excuse.
  if (snapshot_len != r.remaining() - sizeof(uint64_t)) {
    return Status::DataLoss("epoch segment snapshot length mismatch");
  }
  segment.snapshot.resize(snapshot_len);
  if (snapshot_len > 0 &&
      !r.GetBytes(segment.snapshot.data(), snapshot_len)) {
    return Status::DataLoss("epoch segment snapshot is truncated");
  }
  return segment;
}

EpochStore::EpochStore(std::string dir, size_t keep_last_n)
    : dir_(std::move(dir)), keep_last_n_(keep_last_n) {
  FELIP_CHECK_MSG(keep_last_n_ >= 1, "keep_last_n must be at least 1");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  // Resume the sequence past any existing segments so a restarted server
  // never reuses (and silently clobbers) a committed epoch.
  for (const std::string& path : ListOldestFirst()) {
    const uint64_t seq = SequenceOf(fs::path(path).filename().string());
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

StatusOr<std::string> EpochStore::Write(const EpochSegment& segment) {
  FELIP_CHECK_MSG(segment.seq >= next_seq_,
                  "epoch segments must seal in increasing sequence");
  const std::string path =
      (fs::path(dir_) / (kPrefix + std::to_string(segment.seq) + kSuffix))
          .string();
  FELIP_RETURN_IF_ERROR(
      snapshot::WriteFileAtomic(path, EncodeEpochSegment(segment)));
  next_seq_ = segment.seq + 1;

  // Compaction failures are ignored on purpose: the new segment is already
  // durable, and leaking an expired file is strictly better than failing
  // the seal that produced a good one.
  const std::vector<std::string> all = ListOldestFirst();
  if (all.size() > keep_last_n_) {
    for (size_t i = 0; i < all.size() - keep_last_n_; ++i) {
      std::error_code ec;
      fs::remove(all[i], ec);
    }
  }
  return path;
}

LoadedEpochs EpochStore::LoadAll() const {
  LoadedEpochs loaded;
  for (const std::string& path : ListOldestFirst()) {
    const StatusOr<std::vector<uint8_t>> bytes =
        snapshot::ReadFileBytes(path);
    if (!bytes.ok()) {
      ++loaded.files_skipped;
      continue;
    }
    StatusOr<EpochSegment> segment = DecodeEpochSegment(*bytes);
    if (!segment.ok()) {
      ++loaded.files_skipped;
      continue;
    }
    // The file name is untrusted; the sealed header is the identity.
    if (SequenceOf(fs::path(path).filename().string()) != segment->seq) {
      ++loaded.files_skipped;
      continue;
    }
    loaded.segments.push_back(*std::move(segment));
  }
  return loaded;
}

std::vector<std::string> EpochStore::ListOldestFirst() const {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const uint64_t seq = SequenceOf(it->path().filename().string());
    if (seq > 0) found.emplace_back(seq, it->path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [seq, path] : found) paths.push_back(std::move(path));
  return paths;
}

}  // namespace felip::stream
