#include "felip/stream/epoch_service.h"

#include <algorithm>
#include <utility>

#include "felip/common/check.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"
#include "felip/snapshot/pipeline_snapshot.h"
#include "felip/stream/streaming.h"

namespace felip::stream {

namespace {

struct EpochCounters {
  obs::Counter& seals;
  obs::Counter& seal_failures;
  obs::Counter& reports;
  obs::Counter& recovered;
  obs::Counter& skipped;
  obs::Gauge& retained;
  obs::Gauge& window_epsilon;

  static EpochCounters& Get() {
    static EpochCounters counters{
        obs::Registry::Default().GetCounter("felip_epoch_seals_total"),
        obs::Registry::Default().GetCounter("felip_epoch_seal_failures_total"),
        obs::Registry::Default().GetCounter("felip_epoch_reports_total"),
        obs::Registry::Default().GetCounter(
            "felip_epoch_segments_recovered_total"),
        obs::Registry::Default().GetCounter(
            "felip_epoch_segments_skipped_total"),
        obs::Registry::Default().GetGauge("felip_epoch_segments_retained"),
        obs::Registry::Default().GetGauge("felip_epoch_window_epsilon_sum"),
    };
    return counters;
  }
};

// The two epochs must serve the same attribute layout; names are
// cosmetic, domains and kinds are load-bearing.
bool SameSchema(const std::vector<data::AttributeInfo>& a,
                const std::vector<data::AttributeInfo>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].domain != b[i].domain || a[i].categorical != b[i].categorical) {
      return false;
    }
  }
  return true;
}

}  // namespace

EpochSet::EpochSet(size_t max_epochs) : max_epochs_(max_epochs) {
  FELIP_CHECK_MSG(max_epochs_ >= 1, "EpochSet window must hold >= 1 epoch");
}

void EpochSet::Append(SealedEpoch epoch) {
  FELIP_CHECK(epoch.pipeline != nullptr);
  FELIP_CHECK_MSG(
      epoch.pipeline->state() == core::PipelineState::kQueryable,
      "only finalized epochs can be served");
  std::lock_guard<std::mutex> lock(mutex_);
  if (!epochs_.empty()) {
    FELIP_CHECK_MSG(epoch.seq > epochs_.back().seq,
                    "epoch sequences must be strictly increasing");
    FELIP_CHECK_MSG(SameSchema(epoch.pipeline->schema(),
                               epochs_.back().pipeline->schema()),
                    "sealed epochs must share one schema");
  }
  epochs_.push_back(std::move(epoch));
  while (epochs_.size() > max_epochs_) epochs_.pop_front();
  EpochCounters::Get().retained.Set(static_cast<double>(epochs_.size()));
}

size_t EpochSet::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epochs_.size();
}

uint64_t EpochSet::newest_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epochs_.empty() ? 0 : epochs_.back().seq;
}

std::vector<data::AttributeInfo> EpochSet::schema() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (epochs_.empty()) return {};
  return epochs_.back().pipeline->schema();
}

StatusOr<std::vector<double>> EpochSet::AnswerWindowed(
    std::span<const query::Query> queries, uint32_t window, double decay,
    const core::QueryBatchOptions& options) const {
  obs::ScopedTimer span("felip_epoch_answer_windowed");
  FELIP_CHECK_MSG(decay > 0.0 && decay <= 1.0,
                  "decay must be in (0, 1] (the wire decoder enforces this "
                  "for network input)");
  std::lock_guard<std::mutex> lock(mutex_);
  if (epochs_.empty()) {
    return Status::FailedPrecondition("no epoch has been sealed yet");
  }
  const size_t span_epochs =
      window == 0 ? epochs_.size()
                  : std::min<size_t>(window, epochs_.size());
  const size_t first = epochs_.size() - span_epochs;

  // One batch-engine pass per epoch (oldest first), then the shared
  // DecayMix fold per query — the exact arithmetic StreamingCollector
  // performs, so the served answer is bit-identical to in-process.
  std::vector<std::vector<double>> per_epoch;
  per_epoch.reserve(span_epochs);
  for (size_t e = first; e < epochs_.size(); ++e) {
    per_epoch.push_back(epochs_[e].pipeline->AnswerQueries(queries, options));
  }
  std::vector<double> answers(queries.size());
  std::vector<double> history(span_epochs);
  for (size_t q = 0; q < queries.size(); ++q) {
    for (size_t e = 0; e < span_epochs; ++e) history[e] = per_epoch[e][q];
    answers[q] = DecayMix(history, decay);
  }
  return answers;
}

StatusOr<std::vector<double>> EpochSet::AnswerLatest(
    std::span<const query::Query> queries,
    const core::QueryBatchOptions& options) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (epochs_.empty()) {
    return Status::FailedPrecondition("no epoch has been sealed yet");
  }
  return epochs_.back().pipeline->AnswerQueries(queries, options);
}

EpochSet::BudgetReport EpochSet::WindowBudget(uint32_t window) const {
  std::lock_guard<std::mutex> lock(mutex_);
  BudgetReport report;
  const size_t span_epochs =
      window == 0 ? epochs_.size()
                  : std::min<size_t>(window, epochs_.size());
  for (size_t e = epochs_.size() - span_epochs; e < epochs_.size(); ++e) {
    report.max_epoch_epsilon =
        std::max(report.max_epoch_epsilon, epochs_[e].epsilon);
    report.sum_epsilon += epochs_[e].epsilon;
    report.reports += epochs_[e].reports;
    ++report.epochs;
  }
  return report;
}

EpochRotationService::EpochRotationService(EpochStore* store, EpochSet* epochs,
                                           core::SnapshotOptions options)
    : store_(store), epochs_(epochs), options_(options) {
  FELIP_CHECK(store != nullptr);
  FELIP_CHECK(epochs != nullptr);
}

uint64_t EpochRotationService::open_epoch_index() const {
  return std::max(store_->next_seq(), epochs_->newest_seq() + 1) - 1;
}

EpochRotationService::RecoveredEpochs EpochRotationService::RecoverSegments() {
  EpochCounters& counters = EpochCounters::Get();
  RecoveredEpochs recovered;
  LoadedEpochs loaded = store_->LoadAll();
  recovered.segments_skipped = loaded.files_skipped;
  for (EpochSegment& segment : loaded.segments) {
    StatusOr<snapshot::RecoveredPipeline> state =
        snapshot::PipelineCodec::Decode(segment.snapshot);
    if (!state.ok() ||
        state->pipeline.state() != core::PipelineState::kQueryable) {
      ++recovered.segments_skipped;
      continue;
    }
    recovered.dedup_keys.insert(recovered.dedup_keys.end(),
                                state->dedup_keys.begin(),
                                state->dedup_keys.end());
    SealedEpoch epoch;
    epoch.seq = segment.seq;
    epoch.reports = segment.reports;
    epoch.epsilon = segment.epsilon;
    epoch.pipeline = std::make_shared<core::FelipPipeline>(
        std::move(state->pipeline));
    epochs_->Append(std::move(epoch));
    ++recovered.segments_loaded;
  }
  counters.recovered.Increment(recovered.segments_loaded);
  counters.skipped.Increment(recovered.segments_skipped);
  counters.window_epsilon.Set(epochs_->WindowBudget().sum_epsilon);
  return recovered;
}

StatusOr<std::string> EpochRotationService::SealEpoch(
    std::unique_ptr<core::FelipPipeline> pipeline,
    std::span<const uint64_t> drained_keys) {
  obs::ScopedTimer span("felip_epoch_seal");
  EpochCounters& counters = EpochCounters::Get();
  FELIP_CHECK(pipeline != nullptr);
  FELIP_CHECK_MSG(pipeline->reports_ingested() > 0,
                  "an empty epoch cannot be sealed (skip the tick instead)");
  if (pipeline->state() == core::PipelineState::kCollecting) {
    pipeline->FinishIngest();
  }
  if (pipeline->state() == core::PipelineState::kSealed) {
    pipeline->Finalize();
  }
  FELIP_CHECK_MSG(pipeline->state() == core::PipelineState::kQueryable,
                  "SealEpoch needs a collecting, sealed, or finalized "
                  "pipeline");

  EpochSegment segment;
  segment.seq = std::max(store_->next_seq(), epochs_->newest_seq() + 1);
  segment.reports = pipeline->reports_ingested();
  segment.epsilon = pipeline->config().epsilon;
  segment.snapshot =
      snapshot::PipelineCodec::Encode(*pipeline, options_, drained_keys);

  SealedEpoch epoch;
  epoch.seq = segment.seq;
  epoch.reports = segment.reports;
  epoch.epsilon = segment.epsilon;
  epoch.pipeline = std::move(pipeline);

  StatusOr<std::string> path = store_->Write(segment);
  // Serve the epoch either way: a failed commit degrades what a restart
  // can recover, not what live queries see (and the counter is the
  // operator's durability signal, mirroring checkpoint failures).
  epochs_->Append(std::move(epoch));
  ++epochs_sealed_;
  counters.seals.Increment();
  counters.reports.Increment(segment.reports);
  counters.window_epsilon.Set(epochs_->WindowBudget().sum_epsilon);
  if (!path.ok()) {
    ++seal_failures_;
    counters.seal_failures.Increment();
  }
  return path;
}

}  // namespace felip::stream
