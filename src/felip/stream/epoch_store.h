// On-disk store for sealed epoch segments.
//
// The service-tier promotion of the in-process streaming collector
// (streaming.h) seals each finished epoch's pipeline into one immutable
// segment file, epoch-<seq>.fesg:
//
//   [magic 'FESG' u32][version u8][seq u64][reports u64][epsilon f64]
//   [snapshot_len u64][PipelineCodec bytes][salted xxHash64 trailer]
//
// The embedded snapshot is the full PipelineCodec encoding of the sealed
// (kQueryable) pipeline plus the batch dedup keys drained into that epoch,
// so a restarted server can both answer windowed queries from the segment
// set and recognize resent batches the sealed epochs already counted.
//
// EpochStore mirrors SnapshotStore's file discipline exactly: tmp + fsync
// + atomic rename commits (a crash leaves the previous segment set or the
// previous set plus one complete file, never a torn one), keep-last-N
// compaction after each seal, and a sequence resumed past existing files
// so a restart never clobbers a committed epoch. Reading is
// recovery-oriented: LoadAll() decodes every segment that verifies and
// accounts for the ones that do not, so one damaged file costs one epoch
// of history, not the whole window.

#ifndef FELIP_STREAM_EPOCH_STORE_H_
#define FELIP_STREAM_EPOCH_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "felip/common/status.h"

namespace felip::stream {

// One sealed epoch, as persisted. `seq` is 1-based and equals the 0-based
// epoch index + 1 (epoch 0 seals as epoch-1.fesg), so the highest sealed
// sequence is also the count of epochs ever sealed.
struct EpochSegment {
  uint64_t seq = 0;
  uint64_t reports = 0;   // users counted by the sealed pipeline
  double epsilon = 0.0;   // per-epoch privacy budget spent (eps-LDP)
  std::vector<uint8_t> snapshot;  // PipelineCodec bytes (pipeline + keys)
};

// Serializes `segment` with the sealed checksum trailer. Never fails.
std::vector<uint8_t> EncodeEpochSegment(const EpochSegment& segment);

// Verifies and decodes segment bytes. kDataLoss on truncation or checksum
// mismatch, kInvalidArgument on wrong magic / unsupported version /
// non-finite budget — these bytes come from disk and must fail cleanly.
StatusOr<EpochSegment> DecodeEpochSegment(const std::vector<uint8_t>& bytes);

// Everything LoadAll could recover from a segment directory.
struct LoadedEpochs {
  std::vector<EpochSegment> segments;  // oldest first (ascending seq)
  size_t files_skipped = 0;            // present but damaged / undecodable
};

class EpochStore {
 public:
  // `dir` is created if absent. `keep_last_n` >= 1 bounds how many sealed
  // segments survive compaction — it should be at least the query window,
  // or windowed answers lose their oldest epochs to compaction.
  explicit EpochStore(std::string dir, size_t keep_last_n = 8);

  // Commits `segment` and compacts segments beyond keep_last_n; returns
  // the committed file's path. segment.seq must be >= next_seq() — seals
  // are sequential, but a failed commit may leave a gap the next seal
  // skips over (degraded durability for that one epoch, never a clobbered
  // committed file).
  StatusOr<std::string> Write(const EpochSegment& segment);

  // Decodes every verifiable segment in the directory, oldest first.
  // Damaged files are skipped and counted, never fatal.
  LoadedEpochs LoadAll() const;

  // Absolute-ordered segment paths, oldest (lowest sequence) first.
  std::vector<std::string> ListOldestFirst() const;

  // The sequence the next sealed epoch will take; equivalently, one past
  // the highest sequence ever committed to this directory (compaction
  // never lowers it because the newest segment always survives).
  uint64_t next_seq() const { return next_seq_; }

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  size_t keep_last_n_;
  uint64_t next_seq_ = 1;  // advanced past existing files at construction
};

}  // namespace felip::stream

#endif  // FELIP_STREAM_EPOCH_STORE_H_
