// Service-tier epoch rotation: the in-process streaming collector
// (streaming.h), promoted to sealed on-disk segments and a concurrently
// queryable window.
//
// Division of labor:
//
//   * EpochSet — the in-memory window of sealed epochs. The transport IO
//     thread answers sliding-window / decay-mixed query batches from it
//     (svc::QueryServer) while the rotation path appends freshly sealed
//     epochs; one mutex serializes the two. Answers are computed with the
//     exact same per-epoch batch engine (kExact path) and the shared
//     DecayMix fold as StreamingCollector, so a served windowed answer is
//     bit-identical to the in-process collector over the same arrivals.
//
//   * EpochRotationService — seals pipelines into the EpochStore and
//     reloads the segment set on restart. SealEpoch runs on the ingest
//     drain path under the server's drain lock (see IngestServerOptions::
//     after_drain / IngestServer::WithDrainCut): the open pipeline and the
//     drained dedup keys it captures are one consistent cut, exactly like
//     a checkpoint. Each sealed segment embeds the full drained-key window
//     at seal time, so a restarted server preseeds its dedup windows from
//     the segments and resent batches from sealed epochs are recognized
//     instead of double-counted into the new open epoch.
//
// Privacy-budget accounting: each user reports once, in their arrival
// epoch, so one epoch costs its epsilon for its reporters and nothing for
// anyone else. The per-epoch epsilon is carried in every segment, and
// WindowEpsilon() surfaces the maximum budget any single user in a served
// window could have spent (= that epoch's epsilon; the sum over the window
// is also exported as a worst-case-composition gauge for operators who
// cannot rule out repeat reporters).

#ifndef FELIP_STREAM_EPOCH_SERVICE_H_
#define FELIP_STREAM_EPOCH_SERVICE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "felip/common/status.h"
#include "felip/core/felip.h"
#include "felip/data/dataset.h"
#include "felip/query/query.h"
#include "felip/stream/epoch_store.h"

namespace felip::stream {

// One sealed epoch held in memory: the decoded segment header plus its
// queryable pipeline. The pipeline is shared because an answer in flight
// on the IO thread may still be reading an epoch the rotation path is
// evicting from the window.
struct SealedEpoch {
  uint64_t seq = 0;
  uint64_t reports = 0;
  double epsilon = 0.0;
  std::shared_ptr<const core::FelipPipeline> pipeline;
};

class EpochSet {
 public:
  // Retains the newest `max_epochs` sealed epochs (>= 1) — the serving
  // window; it should match the store's keep_last_n so disk and memory
  // agree about history.
  explicit EpochSet(size_t max_epochs);

  EpochSet(const EpochSet&) = delete;
  EpochSet& operator=(const EpochSet&) = delete;

  // Appends a freshly sealed epoch (pipeline must be kQueryable, sequence
  // strictly increasing, schema identical to the retained epochs') and
  // evicts beyond the window. Thread-safe against concurrent answering.
  void Append(SealedEpoch epoch);

  size_t size() const;
  // Highest sealed sequence, which (seals being sequential from 1) is also
  // the count of epochs ever sealed — the client-visible progress marker
  // echoed in windowed query responses. 0 when nothing is sealed yet.
  uint64_t newest_seq() const;
  // Schema served by the window; empty before the first seal.
  std::vector<data::AttributeInfo> schema() const;

  // Decay-weighted answers over the newest `window` retained epochs
  // (0 = every retained epoch; a window deeper than the retained history
  // answers from what is retained). decay follows the StreamConfig
  // contract: (0, 1], with 1.0 the exact sliding mean. One answer per
  // query, each the DecayMix of that query's per-epoch answers — the
  // bit-identical twin of StreamingCollector::AnswerQuery over the same
  // arrivals. kFailedPrecondition before the first seal (retryable: the
  // next seal satisfies it).
  StatusOr<std::vector<double>> AnswerWindowed(
      std::span<const query::Query> queries, uint32_t window, double decay,
      const core::QueryBatchOptions& options = {}) const;

  // Answers from the newest sealed epoch only (the epoch-mode service of
  // plain query batches). Same empty-window contract as AnswerWindowed.
  StatusOr<std::vector<double>> AnswerLatest(
      std::span<const query::Query> queries,
      const core::QueryBatchOptions& options = {}) const;

  // Worst-case privacy budget across the newest `window` epochs
  // (0 = all retained): `max` is the per-user guarantee under the
  // report-once model (the largest single epoch epsilon); `sum` is the
  // sequential-composition bound if one user reported in every epoch.
  struct BudgetReport {
    double max_epoch_epsilon = 0.0;
    double sum_epsilon = 0.0;
    uint64_t reports = 0;
    size_t epochs = 0;
  };
  BudgetReport WindowBudget(uint32_t window = 0) const;

 private:
  const size_t max_epochs_;
  mutable std::mutex mutex_;
  std::deque<SealedEpoch> epochs_;  // oldest first, newest at the back
};

class EpochRotationService {
 public:
  // `store` and `epochs` must outlive the service. `options` controls the
  // embedded pipeline snapshots (fidelity/size trade, as for checkpoints).
  EpochRotationService(EpochStore* store, EpochSet* epochs,
                       core::SnapshotOptions options = {});

  // What RecoverSegments could reconstruct from the store's directory.
  struct RecoveredEpochs {
    size_t segments_loaded = 0;
    // Damaged files plus segments whose embedded snapshot fails to decode
    // or is not queryable: one bad epoch costs that epoch, never recovery.
    size_t segments_skipped = 0;
    // Union of every recovered segment's drained batch keys, oldest
    // segment first — preseed the ingest server's dedup windows with
    // these so resends of batches sealed epochs already counted are
    // recognized (IngestServer::PreseedDedup dedups the union).
    std::vector<uint64_t> dedup_keys;
  };
  RecoveredEpochs RecoverSegments();

  // The 0-based index of the epoch currently collecting: equal to the
  // number of epochs ever sealed (the in-memory set can run ahead of the
  // store by the epochs whose commit failed). Derive its per-epoch config
  // with EpochConfig(base, open_epoch_index()).
  uint64_t open_epoch_index() const;

  // Seals `pipeline` as the next epoch: finishes ingestion (any
  // collecting or sealed state is accepted; the pipeline must have
  // ingested at least one report through the networked report path —
  // Collect()-sealed pipelines do not track reports_ingested and are not
  // service epochs), finalizes, encodes the segment with the drained
  // keys of the caller's consistent cut, commits it atomically, and
  // appends the epoch to the set. The caller must hold the ingest
  // server's drain lock (or otherwise guarantee no concurrent ingestion
  // into `pipeline`). On a write failure the epoch is still appended to
  // the in-memory set and served — losing durability degrades restart
  // fidelity, not live answers — and the failure is counted.
  StatusOr<std::string> SealEpoch(
      std::unique_ptr<core::FelipPipeline> pipeline,
      std::span<const uint64_t> drained_keys);

  uint64_t epochs_sealed() const { return epochs_sealed_; }
  uint64_t seal_failures() const { return seal_failures_; }

 private:
  EpochStore* store_;
  EpochSet* epochs_;
  core::SnapshotOptions options_;
  uint64_t epochs_sealed_ = 0;
  uint64_t seal_failures_ = 0;
};

}  // namespace felip::stream

#endif  // FELIP_STREAM_EPOCH_SERVICE_H_
