#include "felip/stream/streaming.h"

#include <cstdio>

#include "felip/common/check.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"

namespace felip::stream {

namespace {

// Rejects degenerate stream configurations at construction, naming the
// field and the value (the lifecycle-machine convention): decay outside
// (0, 1] either zeroes every non-newest weight (degenerating the mix
// normalizer) or weights stale epochs above fresh ones, and max_epochs = 0
// would evict the epoch that was just ingested.
void ValidateStreamConfig(const StreamConfig& config) {
  if (!(config.decay > 0.0 && config.decay <= 1.0)) {
    std::fprintf(stderr,
                 "invalid stream config: StreamConfig.decay = %g is outside "
                 "(0, 1]\n",
                 config.decay);
    FELIP_CHECK_MSG(false, "StreamConfig.decay must be in (0, 1]");
  }
  if (config.max_epochs < 1) {
    std::fprintf(stderr,
                 "invalid stream config: StreamConfig.max_epochs = %u must "
                 "be >= 1 (a zero window evicts the epoch just ingested)\n",
                 config.max_epochs);
    FELIP_CHECK_MSG(false, "StreamConfig.max_epochs must be >= 1");
  }
}

}  // namespace

core::FelipConfig EpochConfig(const core::FelipConfig& base,
                              uint64_t epoch_index) {
  core::FelipConfig felip = base;
  // Decorrelate epoch randomness while keeping runs reproducible.
  felip.seed = felip.seed * 1000003 + epoch_index + 1;
  return felip;
}

double DecayMix(std::span<const double> answers_oldest_first, double decay) {
  FELIP_CHECK_MSG(!answers_oldest_first.empty(),
                  "DecayMix over an empty window");
  double total = 0.0;
  double norm = 0.0;
  for (const double answer : answers_oldest_first) {
    total = total * decay + answer;
    norm = norm * decay + 1.0;
  }
  return total / norm;
}

StreamingCollector::StreamingCollector(
    std::vector<data::AttributeInfo> schema, StreamConfig config)
    : schema_(std::move(schema)), config_(std::move(config)) {
  FELIP_CHECK(!schema_.empty());
  ValidateStreamConfig(config_);
}

void StreamingCollector::IngestEpoch(const data::Dataset& epoch) {
  obs::ScopedTimer span("felip_stream_ingest_epoch");
  FELIP_CHECK(epoch.num_attributes() == schema_.size());
  FELIP_CHECK_MSG(epoch.num_rows() > 0, "empty epoch");
  for (uint32_t a = 0; a < epoch.num_attributes(); ++a) {
    FELIP_CHECK(epoch.attribute(a).domain == schema_[a].domain);
  }
  core::FelipConfig felip = EpochConfig(config_.felip, epochs_ingested_);
  if (config_.aggregation_threads != 0) {
    felip.aggregation_threads = config_.aggregation_threads;
  }
  auto pipeline = std::make_unique<core::FelipPipeline>(
      schema_, epoch.num_rows(), felip);
  pipeline->Collect(epoch);
  pipeline->Finalize();
  history_.push_back(std::move(pipeline));
  if (history_.size() > config_.max_epochs) history_.pop_front();
  ++epochs_ingested_;
  obs::Registry& registry = obs::Registry::Default();
  registry.GetCounter("felip_stream_epochs_ingested_total").Increment();
  registry.GetCounter("felip_stream_users_total")
      .Increment(epoch.num_rows());
  registry.GetGauge("felip_stream_epochs_retained")
      .Set(static_cast<double>(history_.size()));
}

StatusOr<double> StreamingCollector::AnswerQuery(
    const query::Query& query) const {
  if (history_.empty()) {
    return Status::FailedPrecondition("no epochs ingested");
  }
  std::vector<double> answers;
  answers.reserve(history_.size());
  for (const auto& pipeline : history_) {  // oldest first
    answers.push_back(pipeline->AnswerQuery(query));
  }
  return DecayMix(answers, config_.decay);
}

StatusOr<double> StreamingCollector::AnswerQueryLatest(
    const query::Query& query) const {
  if (history_.empty()) {
    return Status::FailedPrecondition("no epochs ingested");
  }
  return history_.back()->AnswerQuery(query);
}

}  // namespace felip::stream
