#include "felip/stream/streaming.h"

#include "felip/common/check.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"

namespace felip::stream {

StreamingCollector::StreamingCollector(
    std::vector<data::AttributeInfo> schema, StreamConfig config)
    : schema_(std::move(schema)), config_(std::move(config)) {
  FELIP_CHECK(!schema_.empty());
  FELIP_CHECK(config_.decay > 0.0 && config_.decay <= 1.0);
  FELIP_CHECK(config_.max_epochs >= 1);
}

void StreamingCollector::IngestEpoch(const data::Dataset& epoch) {
  obs::ScopedTimer span("felip_stream_ingest_epoch");
  FELIP_CHECK(epoch.num_attributes() == schema_.size());
  FELIP_CHECK_MSG(epoch.num_rows() > 0, "empty epoch");
  for (uint32_t a = 0; a < epoch.num_attributes(); ++a) {
    FELIP_CHECK(epoch.attribute(a).domain == schema_[a].domain);
  }
  core::FelipConfig felip = config_.felip;
  // Decorrelate epoch randomness while keeping runs reproducible.
  felip.seed = felip.seed * 1000003 + epochs_ingested_ + 1;
  if (config_.aggregation_threads != 0) {
    felip.aggregation_threads = config_.aggregation_threads;
  }
  auto pipeline = std::make_unique<core::FelipPipeline>(
      schema_, epoch.num_rows(), felip);
  pipeline->Collect(epoch);
  pipeline->Finalize();
  history_.push_back(std::move(pipeline));
  if (history_.size() > config_.max_epochs) history_.pop_front();
  ++epochs_ingested_;
  obs::Registry& registry = obs::Registry::Default();
  registry.GetCounter("felip_stream_epochs_ingested_total").Increment();
  registry.GetCounter("felip_stream_users_total")
      .Increment(epoch.num_rows());
  registry.GetGauge("felip_stream_epochs_retained")
      .Set(static_cast<double>(history_.size()));
}

double StreamingCollector::AnswerQuery(const query::Query& query) const {
  FELIP_CHECK_MSG(!history_.empty(), "no epochs ingested");
  double weight = 1.0;  // newest epoch
  double total_weight = 0.0;
  double total = 0.0;
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    total += weight * (*it)->AnswerQuery(query);
    total_weight += weight;
    weight *= config_.decay;
  }
  return total / total_weight;
}

double StreamingCollector::AnswerQueryLatest(
    const query::Query& query) const {
  FELIP_CHECK_MSG(!history_.empty(), "no epochs ingested");
  return history_.back()->AnswerQuery(query);
}

}  // namespace felip::stream
