// Lightweight stage tracing: RAII timer spans with parent/child nesting.
//
// A ScopedTimer marks one pipeline stage. Spans nest per thread: a timer
// opened while another is active becomes its child, and the full path
// ("felip_core_collect/felip_core_flush") is what the registry
// accumulates, so RenderText/RenderJson show both how long a stage took
// and under which parent it ran. Each span also feeds a latency histogram
// under its own (unnested) name + "_seconds", giving p50/p95/p99 per
// stage regardless of call site.
//
// Spans are meant for stage-level granularity (collection rounds, flushes,
// estimation passes), not per-report events — ending a span takes a
// registry lookup under a mutex. Per-event hot paths should cache a
// Counter/Histogram reference instead (see docs/observability.md).

#ifndef FELIP_OBS_TRACE_H_
#define FELIP_OBS_TRACE_H_

#include <string>
#include <string_view>

#ifndef FELIP_OBS_NOOP
#include <chrono>
#endif

#include "felip/obs/metrics.h"

namespace felip::obs {

#ifndef FELIP_OBS_NOOP

class ScopedTimer {
 public:
  // Opens a span named `name` (convention: felip_<subsystem>_<stage>)
  // reporting to the default registry.
  explicit ScopedTimer(std::string_view name);
  ScopedTimer(std::string_view name, Registry& registry);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Full nested path of this span ("parent/child/..."), fixed at
  // construction.
  const std::string& path() const { return path_; }

  // The calling thread's innermost active span path, or "" when no span
  // is open (exposed for tests).
  static std::string CurrentPath();

 private:
  Registry* registry_;
  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

#else  // FELIP_OBS_NOOP

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view) {}
  ScopedTimer(std::string_view, Registry&) {}
  const std::string& path() const { return path_; }
  static std::string CurrentPath() { return ""; }

 private:
  std::string path_;
};

#endif  // FELIP_OBS_NOOP

}  // namespace felip::obs

#endif  // FELIP_OBS_TRACE_H_
