// Pipeline-wide observability: metrics registry.
//
// Three instrument kinds cover the pipeline's needs:
//
//   * Counter — monotonic. Increments land in one of a fixed set of
//     cache-line-padded shards chosen per thread, so concurrent writers
//     never contend on one atomic; reads fold the shards in ascending
//     index order. Shard totals are integers, so the folded value is
//     identical regardless of which thread incremented which shard.
//   * Gauge — a single double, set or adjusted at will.
//   * Histogram — fixed upper-bound buckets (Prometheus `le` semantics:
//     a value lands in the first bucket whose bound is >= the value),
//     plus a fixed-point sum so the folded total never depends on
//     accumulation order. Quantile() reports p50/p95/p99-style estimates
//     as the covering bucket's upper bound.
//
// Instruments live in a Registry keyed by name (convention:
// felip_<subsystem>_<name>, see docs/observability.md). Pointers returned
// by the Get* accessors are stable for the registry's lifetime, so call
// sites cache them in function-local statics and pay only the atomic
// update per event. Registry::RenderText emits Prometheus text
// exposition; RenderJson emits the dump the bench harness records.
//
// Building with -DFELIP_OBS_NOOP=ON compiles every instrument down to an
// empty inline body so perf-sensitive builds can measure the
// instrumentation overhead (acceptance: < 2% on perf_parallel_aggregation).

#ifndef FELIP_OBS_METRICS_H_
#define FELIP_OBS_METRICS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef FELIP_OBS_NOOP
#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#endif

namespace felip::obs {

// Upper bounds for latency histograms: 1-2.5-5 steps per decade from 1 us
// to 10 s. Values above the last bound land in the implicit +Inf bucket.
const std::vector<double>& LatencyBuckets();

#ifndef FELIP_OBS_NOOP

inline constexpr size_t kCounterShards = 16;

// Monotonic counter with per-thread sharded increments.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1);

  // Folds the shards in ascending index order.
  uint64_t Value() const;

  // Test-only: zeroes every shard (breaks monotonicity, by design).
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kCounterShards> shards_;
};

// A single double value; Set/Add are atomic.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value);
  void Add(double delta);
  double Value() const;
  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of the double
};

// Fixed-bucket histogram. Bounds are ascending upper bounds; an implicit
// overflow bucket catches values above the last bound. The sum is kept in
// fixed-point nano-units so concurrent observation order never changes it.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;

  // Smallest bucket upper bound whose cumulative count reaches
  // ceil(q * Count()). Returns the last finite bound when the rank falls
  // in the overflow bucket, and 0 when the histogram is empty.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket counts; size bounds().size() + 1 (last entry = overflow).
  std::vector<uint64_t> BucketCounts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_nano_units_{0};  // value * 1e9, rounded
};

// Accumulated statistics of one span path (see trace.h).
struct SpanStats {
  uint64_t count = 0;
  double total_seconds = 0.0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry every instrumented subsystem reports to.
  static Registry& Default();

  // Find-or-create; returned references stay valid for the registry's
  // lifetime. A histogram name must always be requested with the same
  // bounds (the first call wins; later bounds are ignored).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);  // LatencyBuckets()
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds);

  // Folds `nanos` into the span statistics of `path` (trace.h calls this).
  void RecordSpan(std::string_view path, uint64_t nanos);

  // Prometheus text exposition of every instrument, sorted by name. Span
  // statistics render as felip_span_{count,seconds}_total{path="..."}.
  std::string RenderText() const;

  // JSON dump for the bench harness: counters, gauges, histograms (with
  // count/sum/p50/p95/p99), and span paths.
  std::string RenderJson() const;

  // --- Introspection (tests, harnesses) ---
  // Value of a named instrument, or 0 / empty when absent.
  uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  uint64_t HistogramCount(std::string_view name) const;
  SpanStats SpanStatsFor(std::string_view path) const;
  std::vector<std::string> SpanPaths() const;

  // Test-only: zeroes every instrument in place. Cached references stay
  // valid; no instrument is deallocated.
  void Reset();

 private:
  struct SpanCell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> total_nanos{0};
  };

  // std::map node stability keeps references valid across inserts; the
  // mutex guards only map mutation and lookup, never the hot-path update.
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<SpanCell>, std::less<>> spans_;
};

#else  // FELIP_OBS_NOOP: identical API, empty bodies.

class Counter {
 public:
  void Increment(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(double) {}
  void Add(double) {}
  double Value() const { return 0.0; }
  void Reset() {}
};

class Histogram {
 public:
  void Observe(double) {}
  uint64_t Count() const { return 0; }
  double Sum() const { return 0.0; }
  double Quantile(double) const { return 0.0; }
  const std::vector<double>& bounds() const { return LatencyBuckets(); }
  std::vector<uint64_t> BucketCounts() const { return {}; }
  void Reset() {}
};

struct SpanStats {
  uint64_t count = 0;
  double total_seconds = 0.0;
};

class Registry {
 public:
  static Registry& Default();
  Counter& GetCounter(std::string_view) { return counter_; }
  Gauge& GetGauge(std::string_view) { return gauge_; }
  Histogram& GetHistogram(std::string_view) { return histogram_; }
  Histogram& GetHistogram(std::string_view, std::vector<double>) {
    return histogram_;
  }
  void RecordSpan(std::string_view, uint64_t) {}
  std::string RenderText() const {
    return "# FELIP_OBS_NOOP build: instrumentation compiled out\n";
  }
  std::string RenderJson() const { return "{}"; }
  uint64_t CounterValue(std::string_view) const { return 0; }
  double GaugeValue(std::string_view) const { return 0.0; }
  uint64_t HistogramCount(std::string_view) const { return 0; }
  SpanStats SpanStatsFor(std::string_view) const { return {}; }
  std::vector<std::string> SpanPaths() const { return {}; }
  void Reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // FELIP_OBS_NOOP

}  // namespace felip::obs

#endif  // FELIP_OBS_METRICS_H_
