#include "felip/obs/trace.h"

#ifndef FELIP_OBS_NOOP

#include <vector>

#include "felip/common/check.h"

namespace felip::obs {

namespace {

// Per-thread stack of active span paths (innermost at the back). Heap
// allocated so thread exit never races instrument teardown.
std::vector<std::string>& SpanStack() {
  thread_local std::vector<std::string>* stack =
      new std::vector<std::string>;
  return *stack;
}

}  // namespace

ScopedTimer::ScopedTimer(std::string_view name)
    : ScopedTimer(name, Registry::Default()) {}

ScopedTimer::ScopedTimer(std::string_view name, Registry& registry)
    : registry_(&registry), name_(name) {
  std::vector<std::string>& stack = SpanStack();
  path_ = stack.empty() ? name_ : stack.back() + "/" + name_;
  stack.push_back(path_);
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const auto nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
          .count());
  std::vector<std::string>& stack = SpanStack();
  FELIP_CHECK_MSG(!stack.empty() && stack.back() == path_,
                  "ScopedTimer spans must end in reverse creation order");
  stack.pop_back();
  registry_->RecordSpan(path_, nanos);
  registry_->GetHistogram(name_ + "_seconds")
      .Observe(static_cast<double>(nanos) * 1e-9);
}

std::string ScopedTimer::CurrentPath() {
  const std::vector<std::string>& stack = SpanStack();
  return stack.empty() ? "" : stack.back();
}

}  // namespace felip::obs

#endif  // FELIP_OBS_NOOP
