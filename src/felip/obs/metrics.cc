#include "felip/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "felip/common/check.h"

namespace felip::obs {

const std::vector<double>& LatencyBuckets() {
  static const std::vector<double>* buckets = [] {
    auto* b = new std::vector<double>;
    for (double decade = 1e-6; decade < 20.0; decade *= 10.0) {
      b->push_back(decade);
      b->push_back(decade * 2.5);
      b->push_back(decade * 5.0);
    }
    return b;
  }();
  return *buckets;
}

#ifndef FELIP_OBS_NOOP

namespace {

// Threads are assigned counter shards round-robin at first use; two
// threads may share a shard (totals stay exact), but increments from one
// thread never migrate between shards.
size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

int64_t ToNanoUnits(double value) {
  return static_cast<int64_t>(std::llround(value * 1e9));
}

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out->append(buf);
}

// Minimal JSON string escaping (names are metric identifiers, but stay
// safe for arbitrary input).
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

void Counter::Increment(uint64_t delta) {
  shards_[ThisThreadShard()].value.fetch_add(delta,
                                             std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

void Gauge::Set(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  bits_.store(bits, std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  for (;;) {
    double current = 0.0;
    std::memcpy(&current, &observed, sizeof(current));
    const double next = current + delta;
    uint64_t next_bits = 0;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (bits_.compare_exchange_weak(observed, next_bits,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

double Gauge::Value() const {
  const uint64_t bits = bits_.load(std::memory_order_relaxed);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  FELIP_CHECK_MSG(!bounds_.empty(), "histogram needs >= 1 bucket bound");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    FELIP_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                    "histogram bounds must be strictly ascending");
  }
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound is >= value (Prometheus `le`).
  size_t bucket = bounds_.size();  // overflow by default
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nano_units_.fetch_add(ToNanoUnits(value), std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return static_cast<double>(
             sum_nano_units_.load(std::memory_order_relaxed)) *
         1e-9;
}

double Histogram::Quantile(double q) const {
  FELIP_CHECK(q >= 0.0 && q <= 1.0);
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  const auto rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return bounds_[i];
  }
  return bounds_.back();  // rank falls in the overflow bucket
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nano_units_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Default() {
  static Registry* registry = new Registry;
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  return GetHistogram(name, LatencyBuckets());
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void Registry::RecordSpan(std::string_view path, uint64_t nanos) {
  SpanCell* cell = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = spans_.find(path);
    if (it == spans_.end()) {
      it = spans_.emplace(std::string(path), std::make_unique<SpanCell>())
               .first;
    }
    cell = it->second.get();
  }
  cell->count.fetch_add(1, std::memory_order_relaxed);
  cell->total_nanos.fetch_add(nanos, std::memory_order_relaxed);
}

std::string Registry::RenderText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    AppendU64(&out, counter->Value());
    out += "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    AppendDouble(&out, gauge->Value());
    out += "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out += "# TYPE " + name + " histogram\n";
    const std::vector<uint64_t> buckets = histogram->BucketCounts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram->bounds().size(); ++i) {
      cumulative += buckets[i];
      out += name + "_bucket{le=\"";
      AppendDouble(&out, histogram->bounds()[i]);
      out += "\"} ";
      AppendU64(&out, cumulative);
      out += "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    AppendU64(&out, histogram->Count());
    out += "\n";
    out += name + "_sum ";
    AppendDouble(&out, histogram->Sum());
    out += "\n";
    out += name + "_count ";
    AppendU64(&out, histogram->Count());
    out += "\n";
  }
  if (!spans_.empty()) {
    out += "# TYPE felip_span_count_total counter\n";
    for (const auto& [path, cell] : spans_) {
      out += "felip_span_count_total{path=\"" + path + "\"} ";
      AppendU64(&out, cell->count.load(std::memory_order_relaxed));
      out += "\n";
    }
    out += "# TYPE felip_span_seconds_total counter\n";
    for (const auto& [path, cell] : spans_) {
      out += "felip_span_seconds_total{path=\"" + path + "\"} ";
      AppendDouble(&out, static_cast<double>(cell->total_nanos.load(
                             std::memory_order_relaxed)) *
                             1e-9);
      out += "\n";
    }
  }
  return out;
}

std::string Registry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(&out, name);
    out += ": ";
    AppendU64(&out, counter->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(&out, name);
    out += ": ";
    AppendDouble(&out, gauge->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(&out, name);
    out += ": {\"count\": ";
    AppendU64(&out, histogram->Count());
    out += ", \"sum\": ";
    AppendDouble(&out, histogram->Sum());
    out += ", \"p50\": ";
    AppendDouble(&out, histogram->Quantile(0.50));
    out += ", \"p95\": ";
    AppendDouble(&out, histogram->Quantile(0.95));
    out += ", \"p99\": ";
    AppendDouble(&out, histogram->Quantile(0.99));
    out += "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"spans\": {";
  first = true;
  for (const auto& [path, cell] : spans_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(&out, path);
    out += ": {\"count\": ";
    AppendU64(&out, cell->count.load(std::memory_order_relaxed));
    out += ", \"total_seconds\": ";
    AppendDouble(&out, static_cast<double>(cell->total_nanos.load(
                           std::memory_order_relaxed)) *
                           1e-9);
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

uint64_t Registry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

double Registry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->Value();
}

uint64_t Registry::HistogramCount(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? 0 : it->second->Count();
}

SpanStats Registry::SpanStatsFor(std::string_view path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = spans_.find(path);
  if (it == spans_.end()) return {};
  return {it->second->count.load(std::memory_order_relaxed),
          static_cast<double>(
              it->second->total_nanos.load(std::memory_order_relaxed)) *
              1e-9};
}

std::vector<std::string> Registry::SpanPaths() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> paths;
  paths.reserve(spans_.size());
  for (const auto& [path, cell] : spans_) paths.push_back(path);
  return paths;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [path, cell] : spans_) {
    cell->count.store(0, std::memory_order_relaxed);
    cell->total_nanos.store(0, std::memory_order_relaxed);
  }
}

#else  // FELIP_OBS_NOOP

Registry& Registry::Default() {
  static Registry* registry = new Registry;
  return *registry;
}

#endif  // FELIP_OBS_NOOP

}  // namespace felip::obs
