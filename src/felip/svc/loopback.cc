#include "felip/svc/loopback.h"

#include <condition_variable>
#include <deque>
#include <thread>
#include <utility>

#include "felip/common/check.h"

namespace felip::svc {

namespace internal {

// Shared state of one loopback connection. Both halves (the client handle
// and the server dispatcher) hold a shared_ptr, so either side may close
// or disappear without invalidating the other.
struct LoopbackConnState {
  explicit LoopbackConnState(uint64_t id) : id(id) {}

  const uint64_t id;
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<std::vector<uint8_t>> responses;
  bool closed = false;

  void PushResponse(std::vector<uint8_t> frame) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (closed) return;
      responses.push_back(std::move(frame));
    }
    ready.notify_all();
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      closed = true;
    }
    ready.notify_all();
  }
};

// Server-side shared state: the inbound frame queue the dispatcher thread
// consumes. Unbounded by design — it models the kernel socket buffer, not
// the service's backpressure point (that is the IngestServer's
// BoundedQueue, which rejects with retry-after when full).
struct LoopbackServerState {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<std::pair<std::shared_ptr<LoopbackConnState>,
                       std::vector<uint8_t>>>
      inbound;
  bool stopped = false;
  uint64_t next_connection_id = 1;

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stopped = true;
    }
    ready.notify_all();
  }
};

}  // namespace internal

namespace {

using internal::LoopbackConnState;
using internal::LoopbackServerState;

class LoopbackConnection final : public FrameConnection {
 public:
  LoopbackConnection(std::shared_ptr<LoopbackConnState> state,
                     std::shared_ptr<LoopbackServerState> server)
      : state_(std::move(state)), server_(std::move(server)) {}

  ~LoopbackConnection() override { Close(); }

  bool SendFrame(const std::vector<uint8_t>& payload) override {
    if (payload.size() > kMaxFrameBytes) return false;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->closed) return false;
    }
    {
      std::lock_guard<std::mutex> lock(server_->mutex);
      if (server_->stopped) return false;
      server_->inbound.emplace_back(state_, payload);
    }
    server_->ready.notify_one();
    return true;
  }

  RecvStatus RecvFrame(std::vector<uint8_t>* payload,
                       int timeout_ms) override {
    std::unique_lock<std::mutex> lock(state_->mutex);
    const bool got = state_->ready.wait_for(
        lock, std::chrono::milliseconds(timeout_ms),
        [this] { return state_->closed || !state_->responses.empty(); });
    if (!state_->responses.empty()) {
      *payload = std::move(state_->responses.front());
      state_->responses.pop_front();
      return RecvStatus::kOk;
    }
    if (state_->closed) return RecvStatus::kClosed;
    (void)got;
    return RecvStatus::kTimeout;
  }

  void Close() override { state_->Close(); }

 private:
  std::shared_ptr<LoopbackConnState> state_;
  std::shared_ptr<LoopbackServerState> server_;
};

}  // namespace

class LoopbackServer final : public FrameServer {
 public:
  LoopbackServer(LoopbackTransport* transport, std::string endpoint)
      : transport_(transport), endpoint_(std::move(endpoint)),
        state_(std::make_shared<LoopbackServerState>()) {}

  ~LoopbackServer() override { Stop(); }

  bool Start(FrameHandler handler) override {
    FELIP_CHECK_MSG(!dispatcher_.joinable(), "Start() called twice");
    {
      std::lock_guard<std::mutex> lock(transport_->mutex_);
      if (transport_->servers_.count(endpoint_) > 0) return false;
      transport_->servers_[endpoint_] = state_;
    }
    handler_ = std::move(handler);
    dispatcher_ = std::thread([this] { DispatchLoop(); });
    return true;
  }

  void Stop() override {
    {
      std::lock_guard<std::mutex> lock(transport_->mutex_);
      auto it = transport_->servers_.find(endpoint_);
      if (it != transport_->servers_.end() && it->second == state_) {
        transport_->servers_.erase(it);
      }
    }
    state_->Stop();
    if (dispatcher_.joinable()) dispatcher_.join();
  }

  std::string endpoint() const override { return endpoint_; }

 private:
  void DispatchLoop() {
    for (;;) {
      std::shared_ptr<LoopbackConnState> conn;
      std::vector<uint8_t> frame;
      {
        std::unique_lock<std::mutex> lock(state_->mutex);
        state_->ready.wait(lock, [this] {
          return state_->stopped || !state_->inbound.empty();
        });
        if (state_->inbound.empty()) return;  // stopped and drained
        conn = std::move(state_->inbound.front().first);
        frame = std::move(state_->inbound.front().second);
        state_->inbound.pop_front();
      }
      std::vector<uint8_t> response = handler_(conn->id, std::move(frame));
      if (!response.empty()) conn->PushResponse(std::move(response));
    }
  }

  LoopbackTransport* transport_;
  const std::string endpoint_;
  std::shared_ptr<LoopbackServerState> state_;
  FrameHandler handler_;
  std::thread dispatcher_;
};

std::unique_ptr<FrameServer> LoopbackTransport::NewServer(
    const std::string& endpoint) {
  return std::make_unique<LoopbackServer>(this, endpoint);
}

std::unique_ptr<FrameConnection> LoopbackTransport::Connect(
    const std::string& endpoint, int /*timeout_ms*/) {
  std::shared_ptr<LoopbackServerState> server;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = servers_.find(endpoint);
    if (it == servers_.end()) return nullptr;
    server = it->second;
  }
  std::shared_ptr<LoopbackConnState> conn;
  {
    std::lock_guard<std::mutex> lock(server->mutex);
    if (server->stopped) return nullptr;
    conn = std::make_shared<LoopbackConnState>(server->next_connection_id++);
  }
  return std::make_unique<LoopbackConnection>(std::move(conn),
                                              std::move(server));
}

}  // namespace felip::svc
