// In-process loopback transport: deterministic frame delivery over plain
// queues, no sockets. The reference implementation of the Transport
// contract and the backbone of the e2e equivalence tests — a fixed-seed
// run through the loopback must produce estimates bit-identical to the
// in-process pipeline (see tests/svc/loopback_e2e_test.cc).
//
// Each server runs one dispatcher thread that pops inbound frames in
// arrival order and invokes the handler serially, mirroring the TCP event
// loop's single-threaded handler guarantee. Endpoints are arbitrary
// strings scoped to one LoopbackTransport instance.

#ifndef FELIP_SVC_LOOPBACK_H_
#define FELIP_SVC_LOOPBACK_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "felip/svc/transport.h"

namespace felip::svc {

namespace internal {
struct LoopbackServerState;
}  // namespace internal

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport() = default;

  std::unique_ptr<FrameServer> NewServer(const std::string& endpoint) override;
  std::unique_ptr<FrameConnection> Connect(const std::string& endpoint,
                                           int timeout_ms) override;

 private:
  friend class LoopbackServer;

  std::mutex mutex_;
  // Started servers by endpoint. Entries are shared so a connection made
  // just before Stop() fails cleanly instead of dangling.
  std::map<std::string, std::shared_ptr<internal::LoopbackServerState>>
      servers_;
};

}  // namespace felip::svc

#endif  // FELIP_SVC_LOOPBACK_H_
