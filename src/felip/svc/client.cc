#include "felip/svc/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "felip/obs/metrics.h"
#include "felip/svc/message.h"

namespace felip::svc {

namespace {

void SleepMs(uint32_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

IngestClient::IngestClient(Transport* transport, std::string endpoint,
                           IngestClientOptions options)
    : transport_(transport),
      endpoint_(std::move(endpoint)),
      options_(options),
      rng_(options.jitter_seed) {
  FELIP_CHECK(transport != nullptr);
  FELIP_CHECK(options_.max_attempts > 0);
}

SendOutcome IngestClient::SendBatch(
    const std::vector<wire::ReportMessage>& batch) {
  return SendEncodedBatch(wire::EncodeReportBatch(batch));
}

SendOutcome IngestClient::SendEncodedBatch(
    const std::vector<uint8_t>& frame) {
  static obs::Counter& batches_total = obs::Registry::Default().GetCounter(
      "felip_svc_client_batches_total");
  static obs::Counter& retries_total = obs::Registry::Default().GetCounter(
      "felip_svc_client_retries_total");
  batches_total.Increment();

  SendOutcome outcome;
  const std::optional<uint64_t> checksum = ChecksumTrailer(frame);
  FELIP_CHECK_MSG(checksum.has_value(), "batch frame has no checksum trailer");

  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    outcome.attempts = attempt;
    if (attempt > 1) {
      retries_total.Increment();
      retries_.fetch_add(1);
    }

    if (!EnsureConnected()) {
      outcome.status = Status::Unavailable("cannot connect to the server");
      SleepMs(BackoffMs(attempt));
      continue;
    }
    if (!connection_->SendFrame(frame)) {
      outcome.status = Status::Unavailable("send failed; reconnecting");
      DropConnection();
      SleepMs(BackoffMs(attempt));
      continue;
    }

    std::vector<uint8_t> response;
    const RecvStatus recv_status =
        connection_->RecvFrame(&response, options_.response_timeout_ms);
    if (recv_status != RecvStatus::kOk) {
      // After a timeout a late ack could desynchronize request/response
      // pairing on this connection, so both failure kinds reconnect.
      outcome.status = Status::Unavailable("no ack before the timeout");
      DropConnection();
      SleepMs(BackoffMs(attempt));
      continue;
    }

    const StatusOr<Ack> ack = DecodeAck(response);
    if (!ack.ok() || ack->batch_checksum != *checksum) {
      outcome.status =
          Status::Unavailable("ack was undecodable or mismatched");
      DropConnection();
      SleepMs(BackoffMs(attempt));
      continue;
    }
    switch (ack->status) {
      case StatusCode::kOk:
        outcome.status = Status::Ok();
        return outcome;
      case StatusCode::kAlreadyExists:
        outcome.status =
            Status::AlreadyExists("batch counted by a prior attempt");
        outcome.duplicate = true;
        return outcome;
      case StatusCode::kResourceExhausted:
        outcome.status =
            Status::ResourceExhausted("server backpressure; retrying");
        SleepMs(ack->retry_after_ms + Jitter(options_.backoff_initial_ms));
        continue;
      case StatusCode::kDataLoss:
        // Damaged in flight; the frame itself is fine — resend.
        outcome.status = Status::DataLoss("frame damaged in flight");
        SleepMs(BackoffMs(attempt));
        continue;
      default:
        // DecodeAck only yields the four codes above.
        FELIP_CHECK_MSG(false, "unreachable ack status");
    }
  }
  return outcome;
}

bool IngestClient::EnsureConnected() {
  if (connection_ != nullptr) return true;
  connection_ = transport_->Connect(endpoint_, options_.connect_timeout_ms);
  if (connection_ == nullptr) return false;
  static obs::Counter& reconnects_total = obs::Registry::Default().GetCounter(
      "felip_svc_client_reconnects_total");
  reconnects_total.Increment();
  reconnects_.fetch_add(1);
  return true;
}

void IngestClient::DropConnection() {
  if (connection_ == nullptr) return;
  connection_->Close();
  connection_.reset();
}

uint32_t IngestClient::BackoffMs(int attempt) {
  const int shift = std::min(attempt - 1, 16);
  const uint64_t base =
      std::min<uint64_t>(static_cast<uint64_t>(options_.backoff_initial_ms)
                             << shift,
                         options_.backoff_cap_ms);
  return static_cast<uint32_t>(base) + Jitter(static_cast<uint32_t>(base));
}

uint32_t IngestClient::Jitter(uint32_t bound_ms) {
  if (bound_ms == 0) return 0;
  std::lock_guard<std::mutex> lock(rng_mutex_);
  return static_cast<uint32_t>(rng_.UniformU64(bound_ms + 1));
}

}  // namespace felip::svc
