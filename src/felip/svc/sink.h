// Where decoded reports go: the boundary between the ingest service and
// the aggregation pipeline.
//
// IngestServer workers hand fully decoded, structurally valid batches to a
// ReportSink. PipelineSink is the production sink: it feeds a planned
// FelipPipeline's ingestion API (BeginIngest/Ingest*/FinishIngest) under a
// mutex. Per-report validation (grid index in range, protocol matching the
// grid's plan, payload within the grid's domain) happens inside the
// pipeline's oracles and rejected reports are counted, never fatal —
// these bytes come from the network.
//
// Aggregation counts are integers, so the final estimates depend only on
// the multiset of accepted reports — never on batch arrival order or
// which worker ingested what. That is what makes the networked path
// bit-identical to the in-process pipeline.

#ifndef FELIP_SVC_SINK_H_
#define FELIP_SVC_SINK_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>

#include "felip/core/felip.h"
#include "felip/wire/wire.h"

namespace felip::svc {

class ReportSink {
 public:
  virtual ~ReportSink() = default;

  // Ingests one decoded batch; returns how many reports were accepted.
  // Called concurrently by server workers; implementations synchronize.
  virtual size_t IngestBatch(
      std::span<const wire::ReportMessage> reports) = 0;
};

// Thread-safe sink over a planned (not yet collected) FelipPipeline.
// Calls pipeline->BeginIngest() on construction when the pipeline is
// still kConfigured; a pipeline restored from a snapshot arrives already
// kCollecting and is adopted as-is (any other state is programmer error).
// Call Finish() once all batches are in, then Finalize() the pipeline as
// usual.
class PipelineSink final : public ReportSink {
 public:
  explicit PipelineSink(core::FelipPipeline* pipeline);

  size_t IngestBatch(std::span<const wire::ReportMessage> reports) override;

  // Marks the collection round complete (FelipPipeline::FinishIngest).
  void Finish();

  // Runs `fn` on the pipeline under the sink's ingest mutex. Every
  // pipeline mutation flows through IngestBatch under that same mutex, so
  // `fn` observes a consistent accumulator cut (reports_ingested in step
  // with the oracle states) — this is how a shard exports accumulator
  // frames while ingestion is live (felip/dist). `fn` must not call back
  // into the sink.
  void WithPipelineLocked(const std::function<void(core::FelipPipeline&)>& fn);

  // Atomically redirects ingestion to `next` (BeginIngest is called when
  // it is still kConfigured, mirroring construction) and returns the
  // previous pipeline. Batches already drained went to the old pipeline
  // in full; batches drained after go to `next` in full — no batch is
  // split across the two. This is the epoch-rotation cut: the caller
  // seals the returned pipeline while the sink keeps ingesting into
  // `next`. The caller keeps ownership of both pipelines.
  core::FelipPipeline* SwapPipeline(core::FelipPipeline* next);

  uint64_t accepted() const { return accepted_; }
  uint64_t rejected() const { return rejected_; }

 private:
  std::mutex mutex_;
  core::FelipPipeline* pipeline_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace felip::svc

#endif  // FELIP_SVC_SINK_H_
