// Fault-injecting transport decorator.
//
// Wraps any Transport and corrupts the *client side* of every connection
// it creates, driven by the deterministic RNG so a fixed seed replays the
// exact same fault sequence. Four send-path faults and one receive-path
// fault are supported:
//
//   * drop       — the frame silently vanishes (client times out, resends)
//   * truncate   — a strict prefix is delivered; the wire checksum fails
//                  and the server acks kMalformed (client resends)
//   * delay      — the frame is delivered after delay_ms
//   * reset      — the connection is closed instead of sending (client
//                  reconnects and resends)
//   * drop_response — the frame is delivered but the next response is
//                  swallowed (client times out; the resend dedups as a
//                  duplicate on the server — the idempotency test case)
//
// Faults are evaluated independently per SendFrame in the order above;
// at most one fires per frame. The server side (NewServer) passes through
// untouched: the service's recovery story is client-driven retry, so
// faulting the client edge exercises every code path while keeping the
// server deterministic.

#ifndef FELIP_SVC_FAULT_INJECTION_H_
#define FELIP_SVC_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "felip/common/rng.h"
#include "felip/svc/transport.h"

namespace felip::svc {

struct FaultOptions {
  double drop_prob = 0.0;
  double truncate_prob = 0.0;
  double delay_prob = 0.0;
  double reset_prob = 0.0;
  double drop_response_prob = 0.0;
  uint32_t delay_ms = 1;
  uint64_t seed = 1;
};

class FaultInjectingTransport final : public Transport {
 public:
  // `inner` must outlive this transport.
  FaultInjectingTransport(Transport* inner, FaultOptions options);

  std::unique_ptr<FrameServer> NewServer(const std::string& endpoint) override;
  std::unique_ptr<FrameConnection> Connect(const std::string& endpoint,
                                           int timeout_ms) override;

  // --- Introspection (tests assert faults actually fired) ---
  uint64_t drops() const { return drops_.load(); }
  uint64_t truncations() const { return truncations_.load(); }
  uint64_t delays() const { return delays_.load(); }
  uint64_t resets() const { return resets_.load(); }
  uint64_t dropped_responses() const { return dropped_responses_.load(); }
  uint64_t faults_injected() const {
    return drops() + truncations() + delays() + resets() +
           dropped_responses();
  }

 private:
  friend class FaultConnection;

  // Which fault (if any) the next frame suffers; consults the shared RNG
  // under the mutex so concurrent connections still draw one global
  // deterministic sequence.
  enum class Fault { kNone, kDrop, kTruncate, kDelay, kReset, kDropResponse };
  Fault NextFault(size_t* truncate_at, size_t frame_size);

  Transport* inner_;
  FaultOptions options_;
  std::mutex rng_mutex_;
  Rng rng_;
  std::atomic<uint64_t> drops_{0};
  std::atomic<uint64_t> truncations_{0};
  std::atomic<uint64_t> delays_{0};
  std::atomic<uint64_t> resets_{0};
  std::atomic<uint64_t> dropped_responses_{0};
};

}  // namespace felip::svc

#endif  // FELIP_SVC_FAULT_INJECTION_H_
