#include "felip/svc/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "felip/common/check.h"
#include "felip/obs/metrics.h"

namespace felip::svc {

namespace {

using Clock = std::chrono::steady_clock;

bool ParseEndpoint(const std::string& endpoint, sockaddr_in* addr) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) return false;
  const std::string host = endpoint.substr(0, colon);
  const std::string port = endpoint.substr(colon + 1);
  char* end = nullptr;
  const unsigned long p = std::strtoul(port.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || p > 65535) return false;
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(p));
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) return false;
  return true;
}

std::string FormatEndpoint(const sockaddr_in& addr) {
  char host[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
  return std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void AppendFrame(std::vector<uint8_t>* out,
                 const std::vector<uint8_t>& payload) {
  const auto len = static_cast<uint32_t>(payload.size());
  uint8_t prefix[4];
  std::memcpy(prefix, &len, sizeof(prefix));
  out->insert(out->end(), prefix, prefix + sizeof(prefix));
  out->insert(out->end(), payload.begin(), payload.end());
}

// Extracts the next complete frame from `buffer`, erasing consumed bytes.
// Returns false when no complete frame is buffered; *violation is set when
// the length prefix itself is invalid.
bool ExtractFrame(std::vector<uint8_t>* buffer, std::vector<uint8_t>* frame,
                  bool* violation) {
  *violation = false;
  if (buffer->size() < 4) return false;
  uint32_t len = 0;
  std::memcpy(&len, buffer->data(), sizeof(len));
  if (len > kMaxFrameBytes) {
    *violation = true;
    return false;
  }
  if (buffer->size() < 4 + static_cast<size_t>(len)) return false;
  frame->assign(buffer->begin() + 4, buffer->begin() + 4 + len);
  buffer->erase(buffer->begin(), buffer->begin() + 4 + len);
  return true;
}

// Remaining milliseconds until `deadline`, clamped to >= 0.
int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

class TcpConnection final : public FrameConnection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection() override { Close(); }

  bool SendFrame(const std::vector<uint8_t>& payload) override {
    if (fd_ < 0 || payload.size() > kMaxFrameBytes) return false;
    std::vector<uint8_t> bytes;
    bytes.reserve(payload.size() + 4);
    AppendFrame(&bytes, payload);
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{fd_, POLLOUT, 0};
        if (poll(&pfd, 1, kWriteStallMs) <= 0) return false;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  RecvStatus RecvFrame(std::vector<uint8_t>* payload,
                       int timeout_ms) override {
    if (fd_ < 0) return RecvStatus::kClosed;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      bool violation = false;
      if (ExtractFrame(&buffer_, payload, &violation)) return RecvStatus::kOk;
      if (violation) {
        Close();
        return RecvStatus::kClosed;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = poll(&pfd, 1, RemainingMs(deadline));
      if (ready == 0) return RecvStatus::kTimeout;
      if (ready < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::kClosed;
      }
      uint8_t chunk[16384];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer_.insert(buffer_.end(), chunk, chunk + n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      if (n < 0 && errno == EINTR) continue;
      Close();
      return RecvStatus::kClosed;
    }
  }

  void Close() override {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

 private:
  // How long one send() may stall on a full socket buffer before the
  // connection is declared broken.
  static constexpr int kWriteStallMs = 5000;

  int fd_;
  std::vector<uint8_t> buffer_;
};

class TcpServer final : public FrameServer {
 public:
  explicit TcpServer(const std::string& endpoint) {
    sockaddr_in addr{};
    if (!ParseEndpoint(endpoint, &addr)) return;
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return;
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        listen(listen_fd_, SOMAXCONN) != 0 || !SetNonBlocking(listen_fd_)) {
      close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    endpoint_ = FormatEndpoint(bound);
  }

  ~TcpServer() override {
    Stop();
    if (listen_fd_ >= 0) close(listen_fd_);
  }

  bool ok() const { return listen_fd_ >= 0; }

  bool Start(FrameHandler handler) override {
    FELIP_CHECK_MSG(!loop_.joinable(), "Start() called twice");
    if (listen_fd_ < 0) return false;
    if (pipe(stop_pipe_) != 0) return false;
    SetNonBlocking(stop_pipe_[0]);
    handler_ = std::move(handler);
    loop_ = std::thread([this] { EventLoop(); });
    return true;
  }

  void Stop() override {
    if (!loop_.joinable()) return;
    const uint8_t byte = 1;
    [[maybe_unused]] const ssize_t n = write(stop_pipe_[1], &byte, 1);
    loop_.join();
    close(stop_pipe_[0]);
    close(stop_pipe_[1]);
  }

  std::string endpoint() const override { return endpoint_; }

 private:
  struct Conn {
    std::vector<uint8_t> read_buffer;
    std::vector<uint8_t> write_buffer;
    uint64_t id = 0;
  };

  void EventLoop() {
    obs::Registry& registry = obs::Registry::Default();
    obs::Counter& connections_total =
        registry.GetCounter("felip_svc_tcp_connections_total");
    obs::Counter& frames_total =
        registry.GetCounter("felip_svc_tcp_frames_total");
    obs::Counter& violations_total =
        registry.GetCounter("felip_svc_tcp_protocol_violations_total");

    std::map<int, Conn> conns;
    uint64_t next_id = 1;
    std::vector<pollfd> pfds;
    for (;;) {
      pfds.clear();
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfds.push_back({stop_pipe_[0], POLLIN, 0});
      for (const auto& [fd, conn] : conns) {
        short events = POLLIN;
        if (!conn.write_buffer.empty()) events |= POLLOUT;
        pfds.push_back({fd, events, 0});
      }
      if (poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (pfds[1].revents != 0) break;  // stop requested

      if (pfds[0].revents & POLLIN) {
        for (;;) {
          const int fd = accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          if (!SetNonBlocking(fd)) {
            close(fd);
            continue;
          }
          const int one = 1;
          setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          conns[fd].id = next_id++;
          connections_total.Increment();
        }
      }

      std::vector<int> dead;
      for (size_t i = 2; i < pfds.size(); ++i) {
        const int fd = pfds[i].fd;
        Conn& conn = conns[fd];
        if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
          dead.push_back(fd);
          continue;
        }
        if (pfds[i].revents & POLLIN) {
          bool closed = false;
          for (;;) {
            uint8_t chunk[16384];
            const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
            if (n > 0) {
              conn.read_buffer.insert(conn.read_buffer.end(), chunk,
                                      chunk + n);
              continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            if (n < 0 && errno == EINTR) continue;
            closed = true;  // orderly shutdown or error
            break;
          }
          // Dispatch every complete frame that arrived.
          for (;;) {
            std::vector<uint8_t> frame;
            bool violation = false;
            if (!ExtractFrame(&conn.read_buffer, &frame, &violation)) {
              if (violation) {
                violations_total.Increment();
                closed = true;
              }
              break;
            }
            frames_total.Increment();
            std::vector<uint8_t> response =
                handler_(conn.id, std::move(frame));
            if (!response.empty()) {
              AppendFrame(&conn.write_buffer, response);
            }
          }
          if (!conn.write_buffer.empty()) FlushWrites(fd, &conn);
          if (closed) {
            dead.push_back(fd);
            continue;
          }
        }
        if (pfds[i].revents & POLLOUT) {
          if (!FlushWrites(fd, &conn)) dead.push_back(fd);
        }
      }
      for (const int fd : dead) {
        close(fd);
        conns.erase(fd);
      }
    }
    for (const auto& [fd, conn] : conns) close(fd);
  }

  // Writes as much of the buffered response bytes as the socket accepts;
  // false on a hard error.
  static bool FlushWrites(int fd, Conn* conn) {
    size_t sent = 0;
    while (sent < conn->write_buffer.size()) {
      const ssize_t n = send(fd, conn->write_buffer.data() + sent,
                             conn->write_buffer.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    conn->write_buffer.erase(conn->write_buffer.begin(),
                             conn->write_buffer.begin() + sent);
    return true;
  }

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::string endpoint_;
  FrameHandler handler_;
  std::thread loop_;
};

}  // namespace

std::unique_ptr<FrameServer> TcpTransport::NewServer(
    const std::string& endpoint) {
  auto server = std::make_unique<TcpServer>(endpoint);
  if (!server->ok()) return nullptr;
  return server;
}

std::unique_ptr<FrameConnection> TcpTransport::Connect(
    const std::string& endpoint, int timeout_ms) {
  sockaddr_in addr{};
  if (!ParseEndpoint(endpoint, &addr)) return nullptr;
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  if (!SetNonBlocking(fd)) {
    close(fd);
    return nullptr;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      close(fd);
      return nullptr;
    }
    pollfd pfd{fd, POLLOUT, 0};
    if (poll(&pfd, 1, timeout_ms) <= 0) {
      close(fd);
      return nullptr;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      close(fd);
      return nullptr;
    }
  }
  return std::make_unique<TcpConnection>(fd);
}

}  // namespace felip::svc
