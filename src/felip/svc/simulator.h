// Device-population simulator for the networked ingest path.
//
// FelipPipeline::Collect simulates users in-process: one Rng seeded with
// FelipConfig::seed drives group assignment and perturbation for every
// row, in row order. PopulationSimulator replays that exact trajectory on
// the *client side of the wire*: it rebuilds each grid's device
// (FelipClient projection + the grid's frequency-oracle client) from the
// public GridConfigMessages, draws from an identically seeded Rng, and
// emits the perturbed reports as wire batches instead of aggregating them
// locally.
//
// Because the aggregator counts integers, a server that accepts this
// report multiset — in any order, over any number of connections —
// produces estimates bit-identical to Collect() on the same dataset and
// seed. That equivalence is the ingest service's end-to-end test.

#ifndef FELIP_SVC_SIMULATOR_H_
#define FELIP_SVC_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "felip/core/felip.h"
#include "felip/data/dataset.h"
#include "felip/fo/report.h"
#include "felip/wire/wire.h"

namespace felip::svc {

struct SimulatorOptions {
  // Must match the pipeline's FelipConfig (seed drives the shared
  // assignment/perturbation trajectory; partitioning selects it).
  uint64_t seed = 1;
  core::PartitioningMode partitioning = core::PartitioningMode::kDivideUsers;
  // Reports per emitted batch. Batch boundaries cannot affect estimates —
  // only the report multiset matters.
  size_t batch_size = 1024;
};

// Receives each full batch; false aborts the run (delivery failed).
using BatchConsumer =
    std::function<bool(const std::vector<wire::ReportMessage>& batch)>;

class PopulationSimulator {
 public:
  // `grid_configs` must cover grid indices 0..m-1 in order, with epsilon
  // already set to the per-grid budget (wire::MakeGridConfig does both).
  PopulationSimulator(std::vector<wire::GridConfigMessage> grid_configs,
                      SimulatorOptions options);

  // Replays the collection round over `dataset`, handing batches to
  // `consume`. Returns the number of reports emitted, or nullopt if a
  // consume call failed.
  std::optional<uint64_t> Run(const data::Dataset& dataset,
                              const BatchConsumer& consume) const;

 private:
  // One grid's device-side state, rebuilt from its public config. The
  // registry's ReportClient wraps the grid's protocol client with an
  // identical rng trajectory, so the simulator needs no per-protocol
  // branches (fo/registry.h).
  struct Device {
    core::FelipClient projector;
    std::unique_ptr<fo::ReportClient> client;
  };

  wire::ReportMessage MakeReport(size_t grid, uint64_t cell, Rng& rng) const;

  std::vector<wire::GridConfigMessage> configs_;
  SimulatorOptions options_;
  std::vector<Device> devices_;
};

}  // namespace felip::svc

#endif  // FELIP_SVC_SIMULATOR_H_
