// TCP transport: length-prefixed frames over POSIX sockets.
//
// Frame layout on the stream: a 4-byte little-endian payload length
// followed by the payload bytes. Lengths above kMaxFrameBytes are a
// protocol violation and close the connection (a corrupt prefix must not
// drive a huge allocation).
//
// The server side runs one poll()-based event loop thread: it accepts on
// the listening socket, keeps a growable read buffer per connection,
// extracts complete frames as bytes arrive (slow clients that dribble a
// frame over many segments cost buffered bytes, never a blocked thread),
// invokes the handler, and flushes response bytes with POLLOUT when the
// socket's send buffer is full. A self-pipe wakes the loop for Stop().
//
// The client side is blocking-with-timeout over a non-blocking socket:
// connect, send, and receive each poll() against their own deadline.
//
// Endpoints are "host:port" with numeric IPv4 hosts; port 0 binds an
// ephemeral port, resolved via endpoint() after Start().

#ifndef FELIP_SVC_TCP_H_
#define FELIP_SVC_TCP_H_

#include <memory>
#include <string>

#include "felip/svc/transport.h"

namespace felip::svc {

class TcpTransport final : public Transport {
 public:
  std::unique_ptr<FrameServer> NewServer(const std::string& endpoint) override;
  std::unique_ptr<FrameConnection> Connect(const std::string& endpoint,
                                           int timeout_ms) override;
};

}  // namespace felip::svc

#endif  // FELIP_SVC_TCP_H_
