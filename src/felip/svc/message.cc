#include "felip/svc/message.h"

#include <cstring>

#include "felip/common/check.h"
#include "felip/common/hash.h"
#include "felip/wire/wire.h"

namespace felip::svc {

namespace {

inline constexpr uint8_t kAckMagic = 0xAC;
inline constexpr uint8_t kAckVersion = 1;
inline constexpr size_t kAckBytes = 1 + 1 + 1 + 4 + 8;

// Wire bytes of the ack status (see the header comment).
inline constexpr uint8_t kAckAccepted = 1;
inline constexpr uint8_t kAckDuplicate = 2;
inline constexpr uint8_t kAckRetryLater = 3;
inline constexpr uint8_t kAckMalformed = 4;

uint8_t AckStatusToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return kAckAccepted;
    case StatusCode::kAlreadyExists:
      return kAckDuplicate;
    case StatusCode::kResourceExhausted:
      return kAckRetryLater;
    case StatusCode::kDataLoss:
      return kAckMalformed;
    default:
      FELIP_CHECK_MSG(false, "status code not representable in an ack");
      return 0;
  }
}

std::optional<StatusCode> AckStatusFromWire(uint8_t byte) {
  switch (byte) {
    case kAckAccepted:
      return StatusCode::kOk;
    case kAckDuplicate:
      return StatusCode::kAlreadyExists;
    case kAckRetryLater:
      return StatusCode::kResourceExhausted;
    case kAckMalformed:
      return StatusCode::kDataLoss;
    default:
      return std::nullopt;
  }
}

}  // namespace

std::vector<uint8_t> EncodeAck(const Ack& ack) {
  std::vector<uint8_t> frame(kAckBytes);
  frame[0] = kAckMagic;
  frame[1] = kAckVersion;
  frame[2] = AckStatusToWire(ack.status);
  std::memcpy(frame.data() + 3, &ack.retry_after_ms,
              sizeof(ack.retry_after_ms));
  std::memcpy(frame.data() + 7, &ack.batch_checksum,
              sizeof(ack.batch_checksum));
  return frame;
}

StatusOr<Ack> DecodeAck(const std::vector<uint8_t>& frame) {
  if (frame.size() != kAckBytes) {
    return Status::InvalidArgument("ack frame has the wrong size");
  }
  if (frame[0] != kAckMagic || frame[1] != kAckVersion) {
    return Status::InvalidArgument("ack frame magic/version mismatch");
  }
  const std::optional<StatusCode> code = AckStatusFromWire(frame[2]);
  if (!code.has_value()) {
    return Status::InvalidArgument("ack frame carries an unknown status");
  }
  Ack ack;
  ack.status = *code;
  std::memcpy(&ack.retry_after_ms, frame.data() + 3,
              sizeof(ack.retry_after_ms));
  std::memcpy(&ack.batch_checksum, frame.data() + 7,
              sizeof(ack.batch_checksum));
  return ack;
}

std::optional<uint64_t> ChecksumTrailer(const std::vector<uint8_t>& frame) {
  if (frame.size() < sizeof(uint64_t)) return std::nullopt;
  uint64_t checksum = 0;
  std::memcpy(&checksum, frame.data() + frame.size() - sizeof(checksum),
              sizeof(checksum));
  return checksum;
}

bool VerifyChecksumTrailer(const std::vector<uint8_t>& frame) {
  const std::optional<uint64_t> stored = ChecksumTrailer(frame);
  if (!stored.has_value()) return false;
  const size_t body = frame.size() - sizeof(uint64_t);
  return XxHash64Bytes(frame.data(), body, wire::kChecksumSalt) == *stored;
}

}  // namespace felip::svc
