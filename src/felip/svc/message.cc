#include "felip/svc/message.h"

#include <cstring>

#include "felip/common/hash.h"
#include "felip/wire/wire.h"

namespace felip::svc {

namespace {

inline constexpr uint8_t kAckMagic = 0xAC;
inline constexpr uint8_t kAckVersion = 1;
inline constexpr size_t kAckBytes = 1 + 1 + 1 + 4 + 8;

}  // namespace

std::vector<uint8_t> EncodeAck(const Ack& ack) {
  std::vector<uint8_t> frame(kAckBytes);
  frame[0] = kAckMagic;
  frame[1] = kAckVersion;
  frame[2] = static_cast<uint8_t>(ack.status);
  std::memcpy(frame.data() + 3, &ack.retry_after_ms,
              sizeof(ack.retry_after_ms));
  std::memcpy(frame.data() + 7, &ack.batch_checksum,
              sizeof(ack.batch_checksum));
  return frame;
}

std::optional<Ack> DecodeAck(const std::vector<uint8_t>& frame) {
  if (frame.size() != kAckBytes) return std::nullopt;
  if (frame[0] != kAckMagic || frame[1] != kAckVersion) return std::nullopt;
  if (frame[2] < static_cast<uint8_t>(AckStatus::kAccepted) ||
      frame[2] > static_cast<uint8_t>(AckStatus::kMalformed)) {
    return std::nullopt;
  }
  Ack ack;
  ack.status = static_cast<AckStatus>(frame[2]);
  std::memcpy(&ack.retry_after_ms, frame.data() + 3,
              sizeof(ack.retry_after_ms));
  std::memcpy(&ack.batch_checksum, frame.data() + 7,
              sizeof(ack.batch_checksum));
  return ack;
}

std::optional<uint64_t> ChecksumTrailer(const std::vector<uint8_t>& frame) {
  if (frame.size() < sizeof(uint64_t)) return std::nullopt;
  uint64_t checksum = 0;
  std::memcpy(&checksum, frame.data() + frame.size() - sizeof(checksum),
              sizeof(checksum));
  return checksum;
}

bool VerifyChecksumTrailer(const std::vector<uint8_t>& frame) {
  const std::optional<uint64_t> stored = ChecksumTrailer(frame);
  if (!stored.has_value()) return false;
  const size_t body = frame.size() - sizeof(uint64_t);
  return XxHash64Bytes(frame.data(), body, wire::kChecksumSalt) == *stored;
}

}  // namespace felip::svc
