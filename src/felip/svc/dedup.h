// Bounded idempotency window for batch checksums.
//
// The ingest server dedups batches on their xxHash64 trailer. An unbounded
// seen-set grows forever on a long-lived server, so DedupWindow bounds it:
// a FIFO of the most recently admitted keys plus a hash set for O(1)
// membership. When the window is full, admitting a new key evicts the
// *oldest* key — deterministically, independent of hash table iteration
// order — so two servers fed the same admission sequence always hold the
// same window.
//
// Eviction narrows the duplicate-detection horizon, it never corrupts it:
// a key still inside the window can never be re-admitted, and an evicted
// key's resend is simply treated as a fresh batch (the client must have
// seen its ack long before kDefaultCapacity newer batches arrived).
//
// Not thread-safe; the server calls it under its admission mutex.

#ifndef FELIP_SVC_DEDUP_H_
#define FELIP_SVC_DEDUP_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

namespace felip::svc {

inline constexpr size_t kDefaultDedupCapacity = 1u << 20;

class DedupWindow {
 public:
  // `capacity` must be positive.
  explicit DedupWindow(size_t capacity = kDefaultDedupCapacity);

  // Admits `key`. False (and no state change) if the key is already in
  // the window; true otherwise, evicting the oldest key first when full.
  bool Insert(uint64_t key);

  bool Contains(uint64_t key) const { return set_.contains(key); }

  // Keys currently in the window, oldest first — the admission order, so
  // a snapshot-restored window evicts in the same order the original
  // would have.
  std::vector<uint64_t> Keys() const;

  size_t size() const { return fifo_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  std::deque<uint64_t> fifo_;
  std::unordered_set<uint64_t> set_;
  uint64_t evictions_ = 0;
};

}  // namespace felip::svc

#endif  // FELIP_SVC_DEDUP_H_
