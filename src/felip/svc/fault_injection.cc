#include "felip/svc/fault_injection.h"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "felip/obs/metrics.h"

namespace felip::svc {

class FaultConnection final : public FrameConnection {
 public:
  FaultConnection(FaultInjectingTransport* owner,
                  std::unique_ptr<FrameConnection> inner)
      : owner_(owner), inner_(std::move(inner)) {}

  bool SendFrame(const std::vector<uint8_t>& payload) override {
    size_t truncate_at = 0;
    switch (owner_->NextFault(&truncate_at, payload.size())) {
      case FaultInjectingTransport::Fault::kNone:
        break;
      case FaultInjectingTransport::Fault::kDrop:
        owner_->drops_.fetch_add(1);
        FaultCounter("drops").Increment();
        return true;  // "sent", never arrives
      case FaultInjectingTransport::Fault::kTruncate: {
        owner_->truncations_.fetch_add(1);
        FaultCounter("truncations").Increment();
        const std::vector<uint8_t> prefix(payload.begin(),
                                          payload.begin() + truncate_at);
        return inner_->SendFrame(prefix);
      }
      case FaultInjectingTransport::Fault::kDelay:
        owner_->delays_.fetch_add(1);
        FaultCounter("delays").Increment();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(owner_->options_.delay_ms));
        break;
      case FaultInjectingTransport::Fault::kReset:
        owner_->resets_.fetch_add(1);
        FaultCounter("resets").Increment();
        inner_->Close();
        return false;
      case FaultInjectingTransport::Fault::kDropResponse:
        owner_->dropped_responses_.fetch_add(1);
        FaultCounter("dropped_responses").Increment();
        swallow_next_response_ = true;
        break;
    }
    return inner_->SendFrame(payload);
  }

  RecvStatus RecvFrame(std::vector<uint8_t>* payload,
                       int timeout_ms) override {
    const RecvStatus status = inner_->RecvFrame(payload, timeout_ms);
    if (status == RecvStatus::kOk && swallow_next_response_) {
      swallow_next_response_ = false;
      payload->clear();
      // The frame existed but the client never sees it; report a timeout
      // so the retry path engages exactly as it would for a lost packet.
      return RecvStatus::kTimeout;
    }
    return status;
  }

  void Close() override { inner_->Close(); }

 private:
  static obs::Counter& FaultCounter(const char* kind) {
    return obs::Registry::Default().GetCounter(
        std::string("felip_svc_fault_") + kind + "_total");
  }

  FaultInjectingTransport* owner_;
  std::unique_ptr<FrameConnection> inner_;
  bool swallow_next_response_ = false;
};

FaultInjectingTransport::FaultInjectingTransport(Transport* inner,
                                                 FaultOptions options)
    : inner_(inner), options_(options), rng_(options.seed) {}

std::unique_ptr<FrameServer> FaultInjectingTransport::NewServer(
    const std::string& endpoint) {
  return inner_->NewServer(endpoint);
}

std::unique_ptr<FrameConnection> FaultInjectingTransport::Connect(
    const std::string& endpoint, int timeout_ms) {
  std::unique_ptr<FrameConnection> inner =
      inner_->Connect(endpoint, timeout_ms);
  if (inner == nullptr) return nullptr;
  return std::make_unique<FaultConnection>(this, std::move(inner));
}

FaultInjectingTransport::Fault FaultInjectingTransport::NextFault(
    size_t* truncate_at, size_t frame_size) {
  std::lock_guard<std::mutex> lock(rng_mutex_);
  if (rng_.Bernoulli(options_.drop_prob)) return Fault::kDrop;
  if (rng_.Bernoulli(options_.truncate_prob) && frame_size > 1) {
    // Strict prefix, at least one byte short.
    *truncate_at = static_cast<size_t>(rng_.UniformU64(frame_size - 1)) + 1;
    return Fault::kTruncate;
  }
  if (rng_.Bernoulli(options_.delay_prob)) return Fault::kDelay;
  if (rng_.Bernoulli(options_.reset_prob)) return Fault::kReset;
  if (rng_.Bernoulli(options_.drop_response_prob)) {
    return Fault::kDropResponse;
  }
  return Fault::kNone;
}

}  // namespace felip::svc
