// Report-collection server: transport frames in, sharded aggregation out.
//
// An IngestServer listens on a Transport endpoint and handles each
// inbound frame on the transport's IO thread:
//
//   1. Verify the wire checksum trailer. Frames that fail (truncated or
//      corrupted in flight) are acked kMalformed and never enqueued.
//   2. Deduplicate on the xxHash64 trailer — the batch's idempotency key.
//      A batch already accepted (in the queue or drained) acks kDuplicate
//      without re-enqueueing, so client retries never double-count.
//   3. Push onto a bounded MPMC queue. A full queue is explicit
//      backpressure: the frame is acked kRetryLater with a suggested
//      retry_after_ms and NOT recorded as seen, so the client's resend is
//      a fresh attempt.
//
// A pool of worker threads drains the queue, decodes each batch with
// wire::DecodeReportBatchSharded (structural validation before any report
// reaches the sink), and hands the decoded reports to a ReportSink.
// Aggregation is integer-count based, so estimates depend only on the
// multiset of accepted batches — worker count, queue order, and batch
// boundaries cannot change the result.
//
// Stop() stops the transport first (no new frames), then shuts the queue
// down and joins the workers after they drain every accepted batch.

#ifndef FELIP_SVC_SERVER_H_
#define FELIP_SVC_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "felip/svc/queue.h"
#include "felip/svc/sink.h"
#include "felip/svc/transport.h"

namespace felip::svc {

struct IngestServerOptions {
  // Batches buffered between the IO thread and the workers; a full queue
  // acks kRetryLater (backpressure).
  size_t queue_capacity = 64;
  // Worker threads draining the queue into the sink.
  unsigned worker_threads = 2;
  // Threads each worker hands to the sharded batch decoder (1 = serial).
  unsigned decode_threads = 1;
  // Suggested client wait carried in kRetryLater acks.
  uint32_t retry_after_ms = 5;
};

class IngestServer {
 public:
  // `transport` and `sink` must outlive this server.
  IngestServer(Transport* transport, const std::string& endpoint,
               ReportSink* sink, IngestServerOptions options = {});
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  // Binds the endpoint and spawns the worker pool. False if the transport
  // could not bind.
  bool Start();

  // Stops accepting, drains every queued batch, joins workers. Idempotent.
  void Stop();

  // Resolved endpoint (e.g. the actual TCP port when bound to port 0).
  std::string endpoint() const;

  // Blocks until the sink has been offered `count` reports (accepted or
  // rejected) or `timeout_ms` elapses; true on success. Lets tests and
  // drivers await a quiesced queue without polling the transport.
  bool WaitForReports(uint64_t count, int timeout_ms);

  // --- Stats (exact once Stop() returned or WaitForReports succeeded) ---
  uint64_t batches_accepted() const { return batches_accepted_.load(); }
  uint64_t batches_duplicate() const { return batches_duplicate_.load(); }
  uint64_t batches_rejected() const { return batches_rejected_.load(); }
  uint64_t batches_malformed() const { return batches_malformed_.load(); }
  uint64_t batches_undecodable() const { return batches_undecodable_.load(); }
  uint64_t reports_seen() const;

 private:
  std::vector<uint8_t> HandleFrame(uint64_t connection_id,
                                   std::vector<uint8_t>&& payload);
  void WorkerLoop();

  Transport* transport_;
  std::string endpoint_;
  ReportSink* sink_;
  IngestServerOptions options_;

  std::unique_ptr<FrameServer> frame_server_;
  BoundedQueue<std::vector<uint8_t>> queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;

  // Idempotency: checksums of every batch ever accepted into the queue.
  std::mutex seen_mutex_;
  std::unordered_set<uint64_t> seen_checksums_;

  // Reports offered to the sink so far; guarded by reports_mutex_ for the
  // WaitForReports condition.
  mutable std::mutex reports_mutex_;
  std::condition_variable reports_cv_;
  uint64_t reports_seen_ = 0;

  std::atomic<uint64_t> batches_accepted_{0};
  std::atomic<uint64_t> batches_duplicate_{0};
  std::atomic<uint64_t> batches_rejected_{0};
  std::atomic<uint64_t> batches_malformed_{0};
  std::atomic<uint64_t> batches_undecodable_{0};
};

}  // namespace felip::svc

#endif  // FELIP_SVC_SERVER_H_
