// Report-collection server: transport frames in, sharded aggregation out.
//
// An IngestServer listens on a Transport endpoint and handles each
// inbound frame on the transport's IO thread:
//
//   1. Verify the wire checksum trailer. Frames that fail (truncated or
//      corrupted in flight) are acked kDataLoss and never enqueued.
//   2. Deduplicate on the xxHash64 trailer — the batch's idempotency key.
//      A batch already accepted (in the queue or drained) acks
//      kAlreadyExists without re-enqueueing, so client retries never
//      double-count. The seen-set is a bounded FIFO window (DedupWindow),
//      so a long-lived server's memory stays flat.
//   3. Push onto a bounded MPMC queue. A full queue is explicit
//      backpressure: the frame is acked kResourceExhausted with a
//      suggested retry_after_ms and NOT recorded as seen, so the client's
//      resend is a fresh attempt.
//
// A pool of worker threads drains the queue, decodes each batch with
// wire::DecodeReportBatchSharded (structural validation before any report
// reaches the sink), and hands the decoded reports to a ReportSink.
// Aggregation is integer-count based, so estimates depend only on the
// multiset of accepted batches — worker count, queue order, and batch
// boundaries cannot change the result.
//
// --- Crash-safe checkpointing ---
//
// When a checkpoint callback is configured, the server maintains a second
// key window: the checksums of batches whose reports have actually
// reached the sink ("drained"), appended under the same lock as the sink
// call. Every `checkpoint_every_batches` drained batches (or
// `checkpoint_every_ms`, whichever fires first) the callback runs under
// that same lock with the drained keys — so the pipeline state it
// snapshots and the keys it persists are a single consistent cut. A batch
// that was acked but not yet drained at a crash is simply absent from the
// cut; the client's resend is admitted fresh, preserving exactly-once
// counting. On restart, PreseedDedup() reloads the persisted keys before
// Start() so resends of already-drained batches ack kAlreadyExists.
//
// Stop() stops the transport first (no new frames), then shuts the queue
// down and joins the workers after they drain every accepted batch, then
// fires one final checkpoint so a clean shutdown persists everything.

#ifndef FELIP_SVC_SERVER_H_
#define FELIP_SVC_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "felip/common/status.h"
#include "felip/svc/dedup.h"
#include "felip/svc/queue.h"
#include "felip/svc/sink.h"
#include "felip/svc/transport.h"

namespace felip::svc {

// Persists one consistent cut of the pipeline: called with the idempotency
// keys of every batch drained into the sink so far (oldest first), while
// the server guarantees no concurrent sink mutation. Returning non-OK
// counts a failure; the server keeps serving and retries at the next
// checkpoint trigger.
using CheckpointFn = std::function<Status(std::span<const uint64_t>)>;

// Durable report log hook (felip/replaylog): called with a drained
// batch's idempotency key and its full encoded frame, inside the same
// critical section as the sink ingest — after the batch reached the sink
// and before any checkpoint fires, so a checkpoint cut never includes an
// unlogged batch. Returning non-OK counts a failure (log_failures()); the
// server keeps serving, and the batch stays counted — the log is a replay
// corpus, not the source of truth.
using ReportLogFn =
    std::function<Status(uint64_t key, std::span<const uint8_t> frame)>;

struct IngestServerOptions {
  // Batches buffered between the IO thread and the workers; a full queue
  // acks kResourceExhausted (backpressure).
  size_t queue_capacity = 64;
  // Worker threads draining the queue into the sink.
  unsigned worker_threads = 2;
  // Threads each worker hands to the sharded batch decoder (1 = serial).
  unsigned decode_threads = 1;
  // Suggested client wait carried in kResourceExhausted acks.
  uint32_t retry_after_ms = 5;
  // Max keys remembered by each dedup window (admission and drained).
  size_t dedup_capacity = kDefaultDedupCapacity;
  // Checkpoint cadence; either trigger fires a checkpoint (0 disables
  // that trigger). Ignored without a `checkpoint` callback.
  uint64_t checkpoint_every_batches = 0;
  uint64_t checkpoint_every_ms = 0;
  CheckpointFn checkpoint;
  // Append every drained batch to a durable report log. Unset = zero
  // overhead on the drain path.
  ReportLogFn report_log;
  // Shard-ownership predicate over the batch idempotency key (the wire
  // checksum trailer). Only consulted by PreseedDedup: keys the predicate
  // rejects are NOT preseeded, so a server restarted under a different
  // shard layout never pre-rejects a batch that now belongs to another
  // shard's partition. Unset = this server owns every key.
  std::function<bool(uint64_t key)> owns_key;
  // Runs after every drained batch, inside the same critical section as
  // the sink ingest and any checkpoint, with the full drained-key window
  // (oldest first). This is the epoch-rotation hook: the callback sees
  // the sink's state as a consistent cut — the batch that just drained is
  // fully in, no other batch is partially in — and may swap the sink's
  // pipeline and seal the old one (stream::EpochRotationService). Keep it
  // fast when it does not rotate; it runs on the worker's drain path.
  std::function<void(std::span<const uint64_t> drained_keys)> after_drain;
};

class IngestServer {
 public:
  // `transport` and `sink` must outlive this server.
  IngestServer(Transport* transport, const std::string& endpoint,
               ReportSink* sink, IngestServerOptions options = {});
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  // Seeds both dedup windows with the drained keys recovered from a
  // snapshot (oldest first), so resends of batches the snapshot already
  // counts ack kAlreadyExists instead of double-counting. Keys rejected
  // by `options.owns_key` are skipped (and counted in
  // preseed_filtered()) — a resharded restart must not carry another
  // shard's history. Must be called before Start().
  void PreseedDedup(std::span<const uint64_t> drained_keys);

  // Binds the endpoint and spawns the worker pool. False if the transport
  // could not bind.
  bool Start();

  // Stops accepting, drains every queued batch, joins workers, fires a
  // final checkpoint when one is configured. Idempotent.
  void Stop();

  // Resolved endpoint (e.g. the actual TCP port when bound to port 0).
  std::string endpoint() const;

  // Blocks until the sink has been offered `count` reports (accepted or
  // rejected) or `timeout_ms` elapses; true on success. Lets tests and
  // drivers await a quiesced queue without polling the transport.
  bool WaitForReports(uint64_t count, int timeout_ms);

  // Runs `fn` under the drain lock with the drained-key window (oldest
  // first): no batch is mid-ingest while it runs, so — like a checkpoint
  // or the after_drain hook — it observes one consistent cut of the sink.
  // This is how a clock-driven rotation thread seals an epoch between
  // batches. `fn` must not call back into the server.
  void WithDrainCut(
      const std::function<void(std::span<const uint64_t> drained_keys)>& fn);

  // --- Stats (exact once Stop() returned or WaitForReports succeeded) ---
  uint64_t batches_accepted() const { return batches_accepted_.load(); }
  uint64_t batches_duplicate() const { return batches_duplicate_.load(); }
  uint64_t batches_rejected() const { return batches_rejected_.load(); }
  uint64_t batches_malformed() const { return batches_malformed_.load(); }
  uint64_t batches_undecodable() const { return batches_undecodable_.load(); }
  uint64_t checkpoints_written() const { return checkpoints_written_.load(); }
  uint64_t checkpoint_failures() const { return checkpoint_failures_.load(); }
  uint64_t batches_logged() const { return batches_logged_.load(); }
  uint64_t log_failures() const { return log_failures_.load(); }
  uint64_t preseed_filtered() const { return preseed_filtered_.load(); }
  uint64_t dedup_evictions() const;
  uint64_t reports_seen() const;

 private:
  std::vector<uint8_t> HandleFrame(uint64_t connection_id,
                                   std::vector<uint8_t>&& payload);
  void WorkerLoop();
  // Runs the checkpoint callback; caller must hold drain_mutex_.
  void CheckpointLocked();

  Transport* transport_;
  std::string endpoint_;
  ReportSink* sink_;
  IngestServerOptions options_;

  std::unique_ptr<FrameServer> frame_server_;
  BoundedQueue<std::vector<uint8_t>> queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;

  // Idempotency: admission window of every batch accepted into the queue.
  mutable std::mutex seen_mutex_;
  DedupWindow seen_;

  // Serializes {sink ingestion, drained-key append, checkpoint} so a
  // checkpoint always captures a batch and its key together or not at all.
  std::mutex drain_mutex_;
  DedupWindow drained_;
  uint64_t batches_since_checkpoint_ = 0;
  std::chrono::steady_clock::time_point last_checkpoint_;

  // Reports offered to the sink so far; guarded by reports_mutex_ for the
  // WaitForReports condition.
  mutable std::mutex reports_mutex_;
  std::condition_variable reports_cv_;
  uint64_t reports_seen_ = 0;

  std::atomic<uint64_t> batches_accepted_{0};
  std::atomic<uint64_t> batches_duplicate_{0};
  std::atomic<uint64_t> batches_rejected_{0};
  std::atomic<uint64_t> batches_malformed_{0};
  std::atomic<uint64_t> batches_undecodable_{0};
  std::atomic<uint64_t> checkpoints_written_{0};
  std::atomic<uint64_t> checkpoint_failures_{0};
  std::atomic<uint64_t> batches_logged_{0};
  std::atomic<uint64_t> log_failures_{0};
  std::atomic<uint64_t> preseed_filtered_{0};
};

}  // namespace felip::svc

#endif  // FELIP_SVC_SERVER_H_
