#include "felip/svc/simulator.h"

#include <utility>

#include "felip/common/check.h"
#include "felip/fo/registry.h"

namespace felip::svc {

namespace {

core::GridAssignment AssignmentOf(const wire::GridConfigMessage& config) {
  core::GridAssignment assignment;
  assignment.is_2d = config.is_2d;
  assignment.attr_x = config.attr_x;
  assignment.attr_y = config.attr_y;
  assignment.plan.lx = config.lx;
  assignment.plan.ly = config.ly;
  assignment.plan.protocol = config.protocol;
  return assignment;
}

}  // namespace

PopulationSimulator::PopulationSimulator(
    std::vector<wire::GridConfigMessage> grid_configs, SimulatorOptions options)
    : configs_(std::move(grid_configs)), options_(options) {
  FELIP_CHECK_MSG(!configs_.empty(), "simulator needs at least one grid");
  devices_.reserve(configs_.size());
  for (size_t g = 0; g < configs_.size(); ++g) {
    const wire::GridConfigMessage& config = configs_[g];
    FELIP_CHECK_MSG(config.grid_index == g,
                    "grid configs must cover indices 0..m-1 in order");
    const core::GridAssignment assignment = AssignmentOf(config);
    Device device{core::FelipClient(assignment, config.domain_x,
                                    config.domain_y),
                  nullptr};
    const uint64_t cells = device.projector.cell_domain();
    // Rehydrate the per-protocol options devices need from the public
    // config fields; protocols that carry none ignore them.
    fo::ProtocolOptions options;
    options.olh.seed_pool_size = config.seed_pool_size;
    options.olh.pool_salt = config.pool_salt;
    options.fldp.report_bits = config.fldp_report_bits;
    options.fldp.subset_pool_size = config.fldp_pool_size;
    options.fldp.pool_salt = config.fldp_salt;
    device.client =
        fo::MakeReportClient(config.protocol, config.epsilon, cells, options);
    devices_.push_back(std::move(device));
  }
}

wire::ReportMessage PopulationSimulator::MakeReport(size_t grid, uint64_t cell,
                                                    Rng& rng) const {
  const Device& device = devices_[grid];
  wire::ReportMessage m;
  static_cast<fo::ReportData&>(m) = device.client->Perturb(cell, rng);
  m.grid_index = static_cast<uint32_t>(grid);
  return m;
}

std::optional<uint64_t> PopulationSimulator::Run(
    const data::Dataset& dataset, const BatchConsumer& consume) const {
  const size_t m = devices_.size();
  const auto cell_of = [&](size_t g, uint64_t row) -> uint64_t {
    const wire::GridConfigMessage& config = configs_[g];
    const Device& device = devices_[g];
    const uint32_t x = dataset.Value(row, config.attr_x);
    const uint32_t y = config.is_2d ? dataset.Value(row, config.attr_y) : 0;
    return device.projector.ProjectToCell(x, y);
  };

  std::vector<wire::ReportMessage> batch;
  batch.reserve(options_.batch_size);
  uint64_t emitted = 0;
  const auto emit = [&](wire::ReportMessage&& report) -> bool {
    batch.push_back(std::move(report));
    ++emitted;
    if (batch.size() < options_.batch_size) return true;
    if (!consume(batch)) return false;
    batch.clear();
    return true;
  };

  // The exact trajectory of FelipPipeline::Collect: one Rng, row order,
  // group draw then perturbation (kDivideUsers), or every grid per row
  // (kDivideBudget).
  Rng rng(options_.seed);
  if (options_.partitioning == core::PartitioningMode::kDivideUsers) {
    for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
      const size_t g = static_cast<size_t>(rng.UniformU64(m));
      if (!emit(MakeReport(g, cell_of(g, row), rng))) return std::nullopt;
    }
  } else {
    for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
      for (size_t g = 0; g < m; ++g) {
        if (!emit(MakeReport(g, cell_of(g, row), rng))) return std::nullopt;
      }
    }
  }
  if (!batch.empty() && !consume(batch)) return std::nullopt;
  return emitted;
}

}  // namespace felip::svc
