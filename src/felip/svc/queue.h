// Bounded multi-producer multi-consumer queue: the ingest service's only
// buffering point between transport IO and the aggregation workers.
//
// The capacity bound is the backpressure mechanism, not an implementation
// detail: TryPush never blocks and never grows the queue, so the IO thread
// can translate "queue full" into an explicit retry-after response instead
// of letting a fast client run the server out of memory. Consumers block in
// Pop until an item arrives or the queue is shut down; Shutdown wakes every
// consumer and makes all further pushes fail, which is how the server
// drains its worker pool on Stop.

#ifndef FELIP_SVC_QUEUE_H_
#define FELIP_SVC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "felip/common/check.h"

namespace felip::svc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    FELIP_CHECK(capacity_ > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues unless the queue is full or shut down; never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutdown_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until an item is available or Shutdown; nullopt only after
  // Shutdown with the queue fully drained (consumers finish in-flight
  // items before exiting).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return shutdown_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Fails all future pushes and wakes blocked consumers. Items already
  // queued are still handed out by Pop.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool shutdown_ = false;
};

}  // namespace felip::svc

#endif  // FELIP_SVC_QUEUE_H_
