// Networked query answering over the ingest service's transport stack.
//
// A QueryServer binds a Transport endpoint and serves wire::QueryBatch
// frames from a finalized FelipPipeline. Every inbound frame passes the
// same synchronous integrity gate as ingest:
//
//   1. Verify the wire checksum trailer. Frames damaged in flight are
//      acked kDataLoss (svc::Ack) and never decoded.
//   2. Decode with wire::DecodeQueryBatch (structural validation; an
//      undecodable but checksum-valid frame is a bad client, not
//      corruption, and gets a kInvalidArgument response instead of an
//      ack).
//   3. Validate every query against the pipeline's schema
//      (query::ValidateQuery): out-of-domain predicates are rejected with
//      kInvalidArgument and the offending query's index — never silently
//      mis-answered, and never fatal (network input is untrusted).
//   4. Answer via FelipPipeline::AnswerQueries and respond kOk with one
//      answer per query. The response echoes the request's checksum
//      trailer so clients can never pair a stale response with the wrong
//      request.
//
// Answering runs on the transport's IO thread: queries are pure reads of
// immutable queryable-state, the batch engine parallelizes internally
// via answer_threads, and one response per connection at a time matches
// the request/response framing. A pipeline that is not queryable yet
// answers kFailedPrecondition, which clients treat as retryable (see
// IsRetryable()).
//
// QueryClient drives the same retry loop as IngestClient (queries are
// idempotent reads, so resending is always safe): capped exponential
// backoff with deterministic jitter on connection failures, timeouts,
// damaged frames, and kFailedPrecondition; kOk and kInvalidArgument are
// terminal.

#ifndef FELIP_SVC_QUERY_SERVICE_H_
#define FELIP_SVC_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "felip/common/rng.h"
#include "felip/common/status.h"
#include "felip/core/felip.h"
#include "felip/stream/epoch_service.h"
#include "felip/svc/transport.h"
#include "felip/wire/wire.h"

namespace felip::svc {

struct QueryServerOptions {
  // Threads the batch engine uses per inbound batch (0 = hardware
  // concurrency, 1 = serial). Answers are identical for every setting.
  unsigned answer_threads = 0;
  // How the engine answers pair selections; kExact is bit-identical to
  // the in-process AnswerQuery path.
  core::PairAnswerPath pair_path = core::PairAnswerPath::kExact;
  // Batches with more queries than this are rejected kInvalid — bounds
  // per-frame answer memory independently of the frame-size cap.
  size_t max_batch_queries = 1u << 20;
};

class QueryServer {
 public:
  // `transport`, `pipeline`, and `epochs` must outlive this server; at
  // least one of `pipeline` / `epochs` must be set.
  //
  // Backends:
  //   * `pipeline` serves plain QueryBatch frames from one finalized
  //     round (kFailedPrecondition until it reaches kQueryable).
  //   * `epochs` (an epoch-rotated server's sealed window) serves
  //     WindowedQuery frames — and, when `pipeline` is null, plain
  //     batches too, from the newest sealed epoch. Before the first seal
  //     both answer kFailedPrecondition (retryable: the next seal
  //     satisfies it). Every response reports epochs.newest_seq() in
  //     sealed_epochs so clients can pace against rotation.
  // A windowed frame sent to a server without `epochs` is a terminal
  // kInvalidArgument: this server will never grow a window.
  QueryServer(Transport* transport, const std::string& endpoint,
              const core::FelipPipeline* pipeline,
              QueryServerOptions options = {},
              const stream::EpochSet* epochs = nullptr);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds the endpoint and starts serving. False if the transport could
  // not bind.
  bool Start();

  // Stops serving and closes every connection. Idempotent.
  void Stop();

  // Resolved endpoint (e.g. the actual TCP port when bound to port 0).
  std::string endpoint() const;

  // Blocks until `count` batches have been answered kOk or `timeout_ms`
  // elapses; true on success. Lets drivers await a known workload without
  // polling.
  bool WaitForBatches(uint64_t count, int timeout_ms);

  // --- Stats ---
  uint64_t batches_answered() const { return batches_answered_.load(); }
  uint64_t queries_answered() const { return queries_answered_.load(); }
  uint64_t batches_malformed() const { return batches_malformed_.load(); }
  uint64_t batches_invalid() const { return batches_invalid_.load(); }
  uint64_t batches_not_ready() const { return batches_not_ready_.load(); }
  uint64_t windowed_answered() const { return windowed_answered_.load(); }

 private:
  std::vector<uint8_t> HandleFrame(uint64_t connection_id,
                                   std::vector<uint8_t>&& payload);
  std::vector<uint8_t> HandleWindowedFrame(std::vector<uint8_t>&& payload,
                                           uint64_t checksum);

  Transport* transport_;
  std::string endpoint_;
  const core::FelipPipeline* pipeline_;
  const stream::EpochSet* epochs_;
  QueryServerOptions options_;

  std::unique_ptr<FrameServer> frame_server_;
  bool started_ = false;

  mutable std::mutex answered_mutex_;
  std::condition_variable answered_cv_;

  std::atomic<uint64_t> batches_answered_{0};
  std::atomic<uint64_t> queries_answered_{0};
  std::atomic<uint64_t> batches_malformed_{0};
  std::atomic<uint64_t> batches_invalid_{0};
  std::atomic<uint64_t> batches_not_ready_{0};
  std::atomic<uint64_t> windowed_answered_{0};
};

struct QueryClientOptions {
  int connect_timeout_ms = 2000;
  int response_timeout_ms = 5000;
  int max_attempts = 16;
  uint32_t backoff_initial_ms = 1;
  uint32_t backoff_cap_ms = 64;
  uint64_t jitter_seed = 1;
};

struct QueryOutcome {
  // Final status: kOk with one answer per query, kInvalidArgument with
  // the server's verdict (see bad_query), or the last transport failure
  // after max_attempts were exhausted.
  Status status = Status::Unavailable("no response was ever received");
  uint32_t bad_query = wire::kBadQueryNone;  // kInvalidArgument only
  std::vector<double> answers;               // kOk only
  // Server seal progress from the last pairable response (0 when the
  // server does not run epochs) — what an epoch-pacing client polls.
  uint64_t sealed_epochs = 0;
  int attempts = 0;

  bool ok() const { return status.ok(); }
};

class QueryClient {
 public:
  // `transport` must outlive the client.
  QueryClient(Transport* transport, std::string endpoint,
              QueryClientOptions options = {});

  // Encodes `queries` and delivers them, retrying until a terminal
  // response (kOk / kInvalid) or max_attempts. Queries are idempotent
  // reads, so resending after a lost response is always safe.
  QueryOutcome AnswerQueries(const std::vector<query::Query>& queries);

  // Asks an epoch-rotated server for decay-mixed answers over its newest
  // `window` sealed epochs (0 = every retained epoch; decay in (0, 1]).
  // Same retry loop as AnswerQueries — a server that has not sealed its
  // first epoch answers kFailedPrecondition, which retries until a seal
  // lands or attempts run out.
  QueryOutcome AnswerWindowed(const std::vector<query::Query>& queries,
                              uint32_t window, double decay);

  // --- Introspection ---
  uint64_t retries() const { return retries_.load(); }
  uint64_t reconnects() const { return reconnects_.load(); }

 private:
  // The shared send-retry-pair loop over one encoded request frame.
  QueryOutcome Deliver(const std::vector<uint8_t>& frame);
  bool EnsureConnected();
  void DropConnection();
  uint32_t BackoffMs(int attempt);
  uint32_t Jitter(uint32_t bound_ms);

  Transport* transport_;
  std::string endpoint_;
  QueryClientOptions options_;
  std::unique_ptr<FrameConnection> connection_;
  std::mutex rng_mutex_;
  Rng rng_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> reconnects_{0};
};

}  // namespace felip::svc

#endif  // FELIP_SVC_QUERY_SERVICE_H_
