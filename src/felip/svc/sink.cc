#include "felip/svc/sink.h"

#include "felip/common/check.h"
#include "felip/obs/metrics.h"

namespace felip::svc {

PipelineSink::PipelineSink(core::FelipPipeline* pipeline)
    : pipeline_(pipeline) {
  FELIP_CHECK(pipeline != nullptr);
  if (pipeline_->state() == core::PipelineState::kConfigured) {
    pipeline_->BeginIngest();
  } else {
    FELIP_CHECK_MSG(pipeline_->state() == core::PipelineState::kCollecting,
                    "PipelineSink needs a configured or collecting pipeline");
  }
}

size_t PipelineSink::IngestBatch(std::span<const wire::ReportMessage> reports) {
  static obs::Counter& rejected_total = obs::Registry::Default().GetCounter(
      "felip_svc_reports_rejected_total");
  std::lock_guard<std::mutex> lock(mutex_);
  size_t accepted = 0;
  for (const wire::ReportMessage& m : reports) {
    // ReportMessage is a protocol-tagged fo::ReportData; the pipeline
    // dispatches on the tag, so the sink needs no per-protocol branches.
    const Status status = pipeline_->IngestReport(m.grid_index, m);
    if (status.ok()) {
      ++accepted;
    } else {
      rejected_total.Increment();
    }
  }
  accepted_ += accepted;
  rejected_ += reports.size() - accepted;
  return accepted;
}

void PipelineSink::Finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  pipeline_->FinishIngest();
}

void PipelineSink::WithPipelineLocked(
    const std::function<void(core::FelipPipeline&)>& fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  fn(*pipeline_);
}

core::FelipPipeline* PipelineSink::SwapPipeline(core::FelipPipeline* next) {
  FELIP_CHECK(next != nullptr);
  if (next->state() == core::PipelineState::kConfigured) {
    next->BeginIngest();
  } else {
    FELIP_CHECK_MSG(next->state() == core::PipelineState::kCollecting,
                    "SwapPipeline needs a configured or collecting pipeline");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  core::FelipPipeline* prev = pipeline_;
  pipeline_ = next;
  return prev;
}

}  // namespace felip::svc
