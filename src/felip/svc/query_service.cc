#include "felip/svc/query_service.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <thread>
#include <utility>

#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"
#include "felip/svc/message.h"

namespace felip::svc {

namespace {

struct QueryCounters {
  obs::Counter& batches;
  obs::Counter& queries;
  obs::Counter& invalid;
  obs::Counter& malformed;
  obs::Counter& not_ready;
  obs::Counter& windowed;
  obs::Counter& windowed_queries;

  static QueryCounters& Get() {
    static QueryCounters counters{
        obs::Registry::Default().GetCounter("felip_svc_query_batches_total"),
        obs::Registry::Default().GetCounter("felip_svc_queries_total"),
        obs::Registry::Default().GetCounter("felip_svc_query_invalid_total"),
        obs::Registry::Default().GetCounter(
            "felip_svc_query_malformed_total"),
        obs::Registry::Default().GetCounter(
            "felip_svc_query_not_ready_total"),
        obs::Registry::Default().GetCounter(
            "felip_svc_windowed_batches_total"),
        obs::Registry::Default().GetCounter(
            "felip_svc_windowed_queries_total"),
    };
    return counters;
  }
};

void SleepMs(uint32_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

QueryServer::QueryServer(Transport* transport, const std::string& endpoint,
                         const core::FelipPipeline* pipeline,
                         QueryServerOptions options,
                         const stream::EpochSet* epochs)
    : transport_(transport),
      endpoint_(endpoint),
      pipeline_(pipeline),
      epochs_(epochs),
      options_(options) {
  FELIP_CHECK(transport != nullptr);
  FELIP_CHECK_MSG(pipeline != nullptr || epochs != nullptr,
                  "a query server needs a pipeline or an epoch window");
}

QueryServer::~QueryServer() { Stop(); }

bool QueryServer::Start() {
  FELIP_CHECK_MSG(!started_, "Start() called twice");
  frame_server_ = transport_->NewServer(endpoint_);
  if (frame_server_ == nullptr) return false;
  if (!frame_server_->Start([this](uint64_t connection_id,
                                   std::vector<uint8_t>&& payload) {
        return HandleFrame(connection_id, std::move(payload));
      })) {
    frame_server_.reset();
    return false;
  }
  started_ = true;
  return true;
}

void QueryServer::Stop() {
  if (!started_) return;
  started_ = false;
  frame_server_->Stop();
  frame_server_.reset();
}

std::string QueryServer::endpoint() const {
  return frame_server_ != nullptr ? frame_server_->endpoint() : endpoint_;
}

bool QueryServer::WaitForBatches(uint64_t count, int timeout_ms) {
  std::unique_lock<std::mutex> lock(answered_mutex_);
  return answered_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms),
      [&] { return batches_answered_.load() >= count; });
}

std::vector<uint8_t> QueryServer::HandleFrame(
    uint64_t /*connection_id*/, std::vector<uint8_t>&& payload) {
  obs::ScopedTimer span("felip_svc_query_batch");
  QueryCounters& counters = QueryCounters::Get();

  // Gate 1: integrity. A frame that fails its checksum was damaged in
  // flight; ack kDataLoss so the client resends the same bytes.
  if (!VerifyChecksumTrailer(payload)) {
    batches_malformed_.fetch_add(1);
    counters.malformed.Increment();
    Ack ack;
    ack.status = StatusCode::kDataLoss;
    ack.batch_checksum = ChecksumTrailer(payload).value_or(0);
    return EncodeAck(ack);
  }
  const uint64_t checksum = *ChecksumTrailer(payload);

  // Windowed frames take the epoch route; everything below this point is
  // a plain query batch.
  if (wire::IsWindowedQueryFrame(payload)) {
    return HandleWindowedFrame(std::move(payload), checksum);
  }

  wire::QueryResponseMessage response;
  response.request_checksum = checksum;
  if (epochs_ != nullptr) response.sealed_epochs = epochs_->newest_seq();

  // Gate 2: structure. Checksum-valid but undecodable means a bad
  // client, not corruption — a resend would fail identically, so the
  // response is a terminal kInvalidArgument rather than an ack.
  const auto queries = wire::DecodeQueryBatch(payload);
  if (!queries.ok() || queries->size() > options_.max_batch_queries) {
    batches_invalid_.fetch_add(1);
    counters.invalid.Increment();
    response.status = StatusCode::kInvalidArgument;
    response.bad_query = wire::kBadQueryNone;
    return wire::EncodeQueryResponse(response);
  }

  // Readiness gate. Pipeline mode: the one round must be queryable.
  // Epoch mode (no pipeline): at least one epoch must have sealed — and
  // this check must come before schema validation, because the window's
  // schema is empty until the first seal and would wrongly turn valid
  // queries into terminal kInvalidArgument.
  if (pipeline_ != nullptr
          ? pipeline_->state() != core::PipelineState::kQueryable
          : response.sealed_epochs == 0) {
    batches_not_ready_.fetch_add(1);
    counters.not_ready.Increment();
    response.status = StatusCode::kFailedPrecondition;
    return wire::EncodeQueryResponse(response);
  }

  // Gate 3: schema domains. AnswerQuery treats out-of-domain predicates
  // as fatal programmer error in-process; over the network they are an
  // untrusted client's input and get a terminal kInvalidArgument naming
  // the first offending query.
  const std::vector<data::AttributeInfo> schema =
      pipeline_ != nullptr ? pipeline_->schema() : epochs_->schema();
  for (size_t q = 0; q < queries->size(); ++q) {
    if (query::ValidateQuery((*queries)[q], schema)) {
      batches_invalid_.fetch_add(1);
      counters.invalid.Increment();
      response.status = StatusCode::kInvalidArgument;
      response.bad_query = static_cast<uint32_t>(q);
      return wire::EncodeQueryResponse(response);
    }
  }

  core::QueryBatchOptions batch_options;
  batch_options.threads = options_.answer_threads;
  batch_options.pair_path = options_.pair_path;
  if (pipeline_ != nullptr) {
    response.answers = pipeline_->AnswerQueries(
        std::span<const query::Query>(*queries), batch_options);
  } else {
    auto answers = epochs_->AnswerLatest(
        std::span<const query::Query>(*queries), batch_options);
    if (!answers.ok()) {
      // Unreachable once sealed_epochs > 0 (the window only grows), but
      // degrade to retryable rather than crash on a contract drift.
      batches_not_ready_.fetch_add(1);
      counters.not_ready.Increment();
      response.status = StatusCode::kFailedPrecondition;
      return wire::EncodeQueryResponse(response);
    }
    response.answers = std::move(answers).value();
  }
  response.status = StatusCode::kOk;
  response.bad_query = wire::kBadQueryNone;

  counters.batches.Increment();
  counters.queries.Increment(queries->size());
  queries_answered_.fetch_add(queries->size());
  {
    std::lock_guard<std::mutex> lock(answered_mutex_);
    batches_answered_.fetch_add(1);
  }
  answered_cv_.notify_all();
  return wire::EncodeQueryResponse(response);
}

std::vector<uint8_t> QueryServer::HandleWindowedFrame(
    std::vector<uint8_t>&& payload, uint64_t checksum) {
  obs::ScopedTimer span("felip_svc_windowed_batch");
  QueryCounters& counters = QueryCounters::Get();

  wire::QueryResponseMessage response;
  response.request_checksum = checksum;

  // Structure gate, same contract as the plain batch: checksum-valid but
  // undecodable (including an out-of-range decay) is a bad client and a
  // terminal kInvalidArgument.
  const auto request = wire::DecodeWindowedQuery(payload);
  if (!request.ok() || request->queries.size() > options_.max_batch_queries) {
    batches_invalid_.fetch_add(1);
    counters.invalid.Increment();
    response.status = StatusCode::kInvalidArgument;
    response.bad_query = wire::kBadQueryNone;
    return wire::EncodeQueryResponse(response);
  }

  // A server without an epoch window can never answer a windowed query:
  // terminal, not retryable.
  if (epochs_ == nullptr) {
    batches_invalid_.fetch_add(1);
    counters.invalid.Increment();
    response.status = StatusCode::kInvalidArgument;
    response.bad_query = wire::kBadQueryNone;
    return wire::EncodeQueryResponse(response);
  }
  response.sealed_epochs = epochs_->newest_seq();

  // Readiness before schema: the window's schema is empty until the
  // first seal, and an empty schema would wrongly reject valid queries
  // with a terminal status. Retry until the first epoch lands.
  if (response.sealed_epochs == 0) {
    batches_not_ready_.fetch_add(1);
    counters.not_ready.Increment();
    response.status = StatusCode::kFailedPrecondition;
    return wire::EncodeQueryResponse(response);
  }

  const std::vector<data::AttributeInfo> schema = epochs_->schema();
  for (size_t q = 0; q < request->queries.size(); ++q) {
    if (query::ValidateQuery(request->queries[q], schema)) {
      batches_invalid_.fetch_add(1);
      counters.invalid.Increment();
      response.status = StatusCode::kInvalidArgument;
      response.bad_query = static_cast<uint32_t>(q);
      return wire::EncodeQueryResponse(response);
    }
  }

  core::QueryBatchOptions batch_options;
  batch_options.threads = options_.answer_threads;
  batch_options.pair_path = options_.pair_path;
  auto answers = epochs_->AnswerWindowed(
      std::span<const query::Query>(request->queries), request->window,
      request->decay, batch_options);
  if (!answers.ok()) {
    // Unreachable once sealed_epochs > 0 (the window only grows), but
    // degrade to retryable rather than crash on a contract drift.
    batches_not_ready_.fetch_add(1);
    counters.not_ready.Increment();
    response.status = StatusCode::kFailedPrecondition;
    return wire::EncodeQueryResponse(response);
  }
  response.status = StatusCode::kOk;
  response.bad_query = wire::kBadQueryNone;
  response.answers = std::move(answers).value();

  counters.windowed.Increment();
  counters.windowed_queries.Increment(request->queries.size());
  windowed_answered_.fetch_add(1);
  queries_answered_.fetch_add(request->queries.size());
  {
    std::lock_guard<std::mutex> lock(answered_mutex_);
    batches_answered_.fetch_add(1);
  }
  answered_cv_.notify_all();
  return wire::EncodeQueryResponse(response);
}

QueryClient::QueryClient(Transport* transport, std::string endpoint,
                         QueryClientOptions options)
    : transport_(transport),
      endpoint_(std::move(endpoint)),
      options_(options),
      rng_(options.jitter_seed) {
  FELIP_CHECK(transport != nullptr);
  FELIP_CHECK(options_.max_attempts > 0);
}

QueryOutcome QueryClient::AnswerQueries(
    const std::vector<query::Query>& queries) {
  static obs::Counter& batches_total = obs::Registry::Default().GetCounter(
      "felip_svc_query_client_batches_total");
  batches_total.Increment();
  return Deliver(wire::EncodeQueryBatch(queries));
}

QueryOutcome QueryClient::AnswerWindowed(
    const std::vector<query::Query>& queries, uint32_t window, double decay) {
  static obs::Counter& windowed_total = obs::Registry::Default().GetCounter(
      "felip_svc_query_client_windowed_total");
  windowed_total.Increment();
  wire::WindowedQueryMessage request;
  request.window = window;
  request.decay = decay;  // EncodeWindowedQuery checks the (0, 1] contract.
  request.queries = queries;
  return Deliver(wire::EncodeWindowedQuery(request));
}

QueryOutcome QueryClient::Deliver(const std::vector<uint8_t>& frame) {
  static obs::Counter& retries_total = obs::Registry::Default().GetCounter(
      "felip_svc_query_client_retries_total");

  const std::optional<uint64_t> checksum = ChecksumTrailer(frame);
  FELIP_CHECK_MSG(checksum.has_value(), "query frame has no checksum trailer");

  QueryOutcome outcome;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    outcome.attempts = attempt;
    if (attempt > 1) {
      retries_total.Increment();
      retries_.fetch_add(1);
    }

    if (!EnsureConnected()) {
      outcome.status = Status::Unavailable("cannot connect to the server");
      SleepMs(BackoffMs(attempt));
      continue;
    }
    if (!connection_->SendFrame(frame)) {
      outcome.status = Status::Unavailable("send failed; reconnecting");
      DropConnection();
      SleepMs(BackoffMs(attempt));
      continue;
    }

    std::vector<uint8_t> response;
    const RecvStatus recv_status =
        connection_->RecvFrame(&response, options_.response_timeout_ms);
    if (recv_status != RecvStatus::kOk) {
      // A late response could desynchronize request/response pairing on
      // this connection, so both failure kinds reconnect.
      outcome.status = Status::Unavailable("no response before the timeout");
      DropConnection();
      SleepMs(BackoffMs(attempt));
      continue;
    }

    if (auto decoded = wire::DecodeQueryResponse(response);
        decoded.ok() && decoded->request_checksum == *checksum) {
      outcome.sealed_epochs = decoded->sealed_epochs;
      switch (decoded->status) {
        case StatusCode::kOk:
          outcome.status = Status::Ok();
          outcome.answers = std::move(decoded->answers);
          return outcome;
        case StatusCode::kInvalidArgument:
          // Terminal: resending the same queries cannot succeed.
          outcome.status =
              Status::InvalidArgument("the server rejected a query");
          outcome.bad_query = decoded->bad_query;
          return outcome;
        case StatusCode::kFailedPrecondition:
          // The round is still finalizing (or the first epoch has not
          // sealed yet); retry after backoff.
          outcome.status = Status::FailedPrecondition(
              "the serving backend is not queryable yet");
          SleepMs(BackoffMs(attempt));
          continue;
        default:
          // DecodeQueryResponse only yields the three codes above.
          FELIP_CHECK_MSG(false, "unreachable query-response status");
      }
    }

    // A kDataLoss ack means the frame was damaged in flight: resend on
    // the same connection. Anything else is an unpairable response.
    const StatusOr<Ack> ack = DecodeAck(response);
    if (ack.ok() && ack->status == StatusCode::kDataLoss) {
      outcome.status = Status::DataLoss("frame damaged in flight");
      SleepMs(BackoffMs(attempt));
      continue;
    }
    outcome.status = Status::Unavailable("unpairable response; reconnecting");
    DropConnection();
    SleepMs(BackoffMs(attempt));
  }
  return outcome;
}

bool QueryClient::EnsureConnected() {
  if (connection_ != nullptr) return true;
  connection_ = transport_->Connect(endpoint_, options_.connect_timeout_ms);
  if (connection_ == nullptr) return false;
  static obs::Counter& reconnects_total = obs::Registry::Default().GetCounter(
      "felip_svc_query_client_reconnects_total");
  reconnects_total.Increment();
  reconnects_.fetch_add(1);
  return true;
}

void QueryClient::DropConnection() {
  if (connection_ == nullptr) return;
  connection_->Close();
  connection_.reset();
}

uint32_t QueryClient::BackoffMs(int attempt) {
  const int shift = std::min(attempt - 1, 16);
  const uint64_t base =
      std::min<uint64_t>(static_cast<uint64_t>(options_.backoff_initial_ms)
                             << shift,
                         options_.backoff_cap_ms);
  return static_cast<uint32_t>(base) + Jitter(static_cast<uint32_t>(base));
}

uint32_t QueryClient::Jitter(uint32_t bound_ms) {
  if (bound_ms == 0) return 0;
  std::lock_guard<std::mutex> lock(rng_mutex_);
  return static_cast<uint32_t>(rng_.UniformU64(bound_ms + 1));
}

}  // namespace felip::svc
