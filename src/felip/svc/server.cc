#include "felip/svc/server.h"

#include <chrono>
#include <utility>

#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"
#include "felip/svc/message.h"
#include "felip/wire/wire.h"

namespace felip::svc {

namespace {

struct ServerCounters {
  obs::Counter& accepted;
  obs::Counter& duplicate;
  obs::Counter& rejected;
  obs::Counter& malformed;
  obs::Counter& reports;
  obs::Gauge& queue_depth;
  obs::Counter& checkpoints;
  obs::Counter& checkpoint_failures;
  obs::Counter& logged;
  obs::Counter& log_failures;

  static ServerCounters& Get() {
    static ServerCounters counters{
        obs::Registry::Default().GetCounter(
            "felip_svc_batches_accepted_total"),
        obs::Registry::Default().GetCounter(
            "felip_svc_batches_duplicate_total"),
        obs::Registry::Default().GetCounter(
            "felip_svc_batches_rejected_total"),
        obs::Registry::Default().GetCounter(
            "felip_svc_batches_malformed_total"),
        obs::Registry::Default().GetCounter("felip_svc_reports_total"),
        obs::Registry::Default().GetGauge("felip_svc_queue_depth"),
        obs::Registry::Default().GetCounter(
            "felip_svc_checkpoints_total"),
        obs::Registry::Default().GetCounter(
            "felip_svc_checkpoint_failures_total"),
        obs::Registry::Default().GetCounter("felip_svc_batches_logged_total"),
        obs::Registry::Default().GetCounter("felip_svc_log_failures_total"),
    };
    return counters;
  }
};

}  // namespace

IngestServer::IngestServer(Transport* transport, const std::string& endpoint,
                           ReportSink* sink, IngestServerOptions options)
    : transport_(transport),
      endpoint_(endpoint),
      sink_(sink),
      options_(options),
      queue_(options.queue_capacity),
      seen_(options.dedup_capacity),
      drained_(options.dedup_capacity) {
  FELIP_CHECK(transport != nullptr);
  FELIP_CHECK(sink != nullptr);
  FELIP_CHECK(options_.worker_threads > 0);
}

IngestServer::~IngestServer() { Stop(); }

void IngestServer::PreseedDedup(std::span<const uint64_t> drained_keys) {
  FELIP_CHECK_MSG(!started_, "PreseedDedup() after Start()");
  std::lock_guard<std::mutex> seen_lock(seen_mutex_);
  std::lock_guard<std::mutex> drain_lock(drain_mutex_);
  for (const uint64_t key : drained_keys) {
    if (options_.owns_key && !options_.owns_key(key)) {
      preseed_filtered_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    seen_.Insert(key);
    drained_.Insert(key);
  }
}

bool IngestServer::Start() {
  FELIP_CHECK_MSG(!started_, "Start() called twice");
  frame_server_ = transport_->NewServer(endpoint_);
  if (frame_server_ == nullptr) return false;
  if (!frame_server_->Start([this](uint64_t connection_id,
                                   std::vector<uint8_t>&& payload) {
        return HandleFrame(connection_id, std::move(payload));
      })) {
    frame_server_.reset();
    return false;
  }
  last_checkpoint_ = std::chrono::steady_clock::now();
  workers_.reserve(options_.worker_threads);
  for (unsigned w = 0; w < options_.worker_threads; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  started_ = true;
  return true;
}

void IngestServer::Stop() {
  if (!started_) return;
  started_ = false;
  // Order matters: no new frames first, then let the workers drain what
  // was already accepted (acked batches must be aggregated exactly once).
  frame_server_->Stop();
  queue_.Shutdown();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  frame_server_.reset();
  // Final checkpoint: a clean shutdown leaves nothing unpersisted.
  if (options_.checkpoint) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    if (batches_since_checkpoint_ > 0) CheckpointLocked();
  }
}

std::string IngestServer::endpoint() const {
  return frame_server_ != nullptr ? frame_server_->endpoint() : endpoint_;
}

uint64_t IngestServer::reports_seen() const {
  std::lock_guard<std::mutex> lock(reports_mutex_);
  return reports_seen_;
}

uint64_t IngestServer::dedup_evictions() const {
  std::lock_guard<std::mutex> lock(seen_mutex_);
  return seen_.evictions();
}

bool IngestServer::WaitForReports(uint64_t count, int timeout_ms) {
  std::unique_lock<std::mutex> lock(reports_mutex_);
  return reports_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                              [&] { return reports_seen_ >= count; });
}

void IngestServer::WithDrainCut(
    const std::function<void(std::span<const uint64_t> drained_keys)>& fn) {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  fn(drained_.Keys());
}

std::vector<uint8_t> IngestServer::HandleFrame(
    uint64_t /*connection_id*/, std::vector<uint8_t>&& payload) {
  ServerCounters& counters = ServerCounters::Get();
  Ack ack;
  ack.batch_checksum = ChecksumTrailer(payload).value_or(0);

  // Checksum verification happens synchronously on the IO thread so a
  // truncated or corrupted frame is rejected before it costs queue space.
  if (!VerifyChecksumTrailer(payload)) {
    batches_malformed_.fetch_add(1);
    counters.malformed.Increment();
    ack.status = StatusCode::kDataLoss;
    return EncodeAck(ack);
  }

  {
    std::lock_guard<std::mutex> lock(seen_mutex_);
    if (seen_.Contains(ack.batch_checksum)) {
      batches_duplicate_.fetch_add(1);
      counters.duplicate.Increment();
      ack.status = StatusCode::kAlreadyExists;
      return EncodeAck(ack);
    }
    if (!queue_.TryPush(std::move(payload))) {
      // Backpressure: not recorded as seen — the resend is a fresh try.
      batches_rejected_.fetch_add(1);
      counters.rejected.Increment();
      ack.status = StatusCode::kResourceExhausted;
      ack.retry_after_ms = options_.retry_after_ms;
      return EncodeAck(ack);
    }
    seen_.Insert(ack.batch_checksum);
  }
  counters.queue_depth.Set(static_cast<double>(queue_.size()));
  batches_accepted_.fetch_add(1);
  counters.accepted.Increment();
  ack.status = StatusCode::kOk;
  return EncodeAck(ack);
}

void IngestServer::CheckpointLocked() {
  ServerCounters& counters = ServerCounters::Get();
  const std::vector<uint64_t> keys = drained_.Keys();
  const Status status = options_.checkpoint(keys);
  if (status.ok()) {
    checkpoints_written_.fetch_add(1);
    counters.checkpoints.Increment();
    batches_since_checkpoint_ = 0;
  } else {
    // Keep serving: the next trigger retries with a fresh cut. The
    // counter is the operator's signal that durability is degraded.
    checkpoint_failures_.fetch_add(1);
    counters.checkpoint_failures.Increment();
  }
  last_checkpoint_ = std::chrono::steady_clock::now();
}

void IngestServer::WorkerLoop() {
  ServerCounters& counters = ServerCounters::Get();
  while (true) {
    std::optional<std::vector<uint8_t>> frame = queue_.Pop();
    if (!frame.has_value()) return;
    counters.queue_depth.Set(static_cast<double>(queue_.size()));

    obs::ScopedTimer span("felip_svc_drain");
    // The sharded decoder validates every record before the first sink
    // call, so structurally bad batches (checksum-valid garbage from an
    // adversarial client — honest retries can't produce them) are dropped
    // whole, and messages collected here are always well-formed.
    std::vector<wire::ReportMessage> messages;
    std::mutex messages_mutex;
    const StatusOr<size_t> count = wire::DecodeReportBatchSharded(
        *frame,
        [&](size_t /*shard*/, size_t /*index*/, wire::ReportMessage&& m) {
          std::lock_guard<std::mutex> lock(messages_mutex);
          messages.push_back(std::move(m));
        },
        options_.decode_threads);
    if (!count.ok()) {
      batches_undecodable_.fetch_add(1);
      continue;
    }
    {
      // Sink mutation, drained-key append, and any checkpoint form one
      // critical section: a checkpoint can never see the batch's reports
      // without its key or vice versa.
      std::lock_guard<std::mutex> lock(drain_mutex_);
      const uint64_t key = ChecksumTrailer(*frame).value_or(0);
      sink_->IngestBatch(messages);
      drained_.Insert(key);
      // Log before any checkpoint trigger: a checkpoint cut must never
      // include a batch the report log is missing (docs/replay.md).
      if (options_.report_log) {
        if (options_.report_log(key, *frame).ok()) {
          batches_logged_.fetch_add(1);
          counters.logged.Increment();
        } else {
          log_failures_.fetch_add(1);
          counters.log_failures.Increment();
        }
      }
      ++batches_since_checkpoint_;
      if (options_.checkpoint) {
        const bool batch_due =
            options_.checkpoint_every_batches > 0 &&
            batches_since_checkpoint_ >= options_.checkpoint_every_batches;
        const bool time_due =
            options_.checkpoint_every_ms > 0 &&
            std::chrono::steady_clock::now() - last_checkpoint_ >=
                std::chrono::milliseconds(options_.checkpoint_every_ms);
        if (batch_due || time_due) CheckpointLocked();
      }
      // Rotation hook last: if it swaps the sink's pipeline, the batch
      // just drained (and any checkpoint of it) belongs wholly to the
      // epoch being sealed.
      if (options_.after_drain) options_.after_drain(drained_.Keys());
    }
    counters.reports.Increment(messages.size());
    {
      std::lock_guard<std::mutex> lock(reports_mutex_);
      reports_seen_ += messages.size();
    }
    reports_cv_.notify_all();
  }
}

}  // namespace felip::svc
