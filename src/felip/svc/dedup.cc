#include "felip/svc/dedup.h"

#include "felip/common/check.h"

namespace felip::svc {

DedupWindow::DedupWindow(size_t capacity) : capacity_(capacity) {
  FELIP_CHECK_MSG(capacity > 0, "dedup window capacity must be positive");
}

bool DedupWindow::Insert(uint64_t key) {
  if (set_.contains(key)) return false;
  if (fifo_.size() == capacity_) {
    set_.erase(fifo_.front());
    fifo_.pop_front();
    ++evictions_;
  }
  fifo_.push_back(key);
  set_.insert(key);
  return true;
}

std::vector<uint64_t> DedupWindow::Keys() const {
  return std::vector<uint64_t>(fifo_.begin(), fifo_.end());
}

}  // namespace felip::svc
