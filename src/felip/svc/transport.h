// Transport abstraction for the ingest service.
//
// The service moves *frames* — opaque byte payloads, length-prefixed on
// stream transports — between an IngestClient and an IngestServer. Three
// implementations share this interface:
//
//   * TcpTransport (tcp.h): POSIX TCP sockets. The server side runs a
//     single poll()-based event loop with one read buffer per connection;
//     the client side is blocking with timeouts.
//   * LoopbackTransport (loopback.h): in-process queues, fully
//     deterministic, used by unit tests and the e2e equivalence suite.
//   * FaultInjectingTransport (fault_injection.h): decorator over either,
//     injecting drops, truncations, delays, and connection resets from the
//     deterministic RNG.
//
// Server side is event-driven: Start() spawns the transport's IO machinery
// and every complete inbound frame is handed to the FrameHandler, whose
// return value is written back as the response frame on the same
// connection. The handler runs on the transport's IO thread, so it must be
// fast and non-blocking — the IngestServer's handler only validates,
// dedups, and pushes to its bounded queue.
//
// Client side is blocking request/response: SendFrame writes one frame,
// RecvFrame waits for the next inbound frame with a timeout. A connection
// is ordered and reliable until it fails; any failure surfaces as
// kClosed / false, after which the caller reconnects.

#ifndef FELIP_SVC_TRANSPORT_H_
#define FELIP_SVC_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace felip::svc {

// Frames above this size are a protocol violation: the peer is
// disconnected rather than buffered. Large enough for a ~1M-report OLH
// batch; small enough that a corrupt length prefix cannot trigger a huge
// allocation.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class RecvStatus {
  kOk,       // *payload holds one complete frame
  kTimeout,  // no frame within the deadline; connection still usable
  kClosed,   // peer closed or connection failed
};

// One established client->server connection (client-side handle).
class FrameConnection {
 public:
  virtual ~FrameConnection() = default;

  // Sends one frame; false when the connection is broken.
  virtual bool SendFrame(const std::vector<uint8_t>& payload) = 0;

  // Waits up to `timeout_ms` for the next inbound frame.
  virtual RecvStatus RecvFrame(std::vector<uint8_t>* payload,
                               int timeout_ms) = 0;

  virtual void Close() = 0;
};

// Invoked by the server transport for every complete inbound frame;
// `connection_id` is stable per connection. The returned frame is sent
// back on the same connection (empty return = no response).
using FrameHandler = std::function<std::vector<uint8_t>(
    uint64_t connection_id, std::vector<uint8_t>&& payload)>;

// Server-side frame source bound to one endpoint.
class FrameServer {
 public:
  virtual ~FrameServer() = default;

  // Starts accepting connections and dispatching frames to `handler`.
  virtual bool Start(FrameHandler handler) = 0;

  // Stops the IO machinery and closes every connection. Idempotent; after
  // Stop no further handler invocations happen.
  virtual void Stop() = 0;

  // The resolved endpoint clients should Connect to (e.g. "127.0.0.1:port"
  // after binding port 0).
  virtual std::string endpoint() const = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Binds a server to `endpoint`; nullptr on failure (e.g. port in use).
  virtual std::unique_ptr<FrameServer> NewServer(
      const std::string& endpoint) = 0;

  // Connects to a started server; nullptr on failure or timeout.
  virtual std::unique_ptr<FrameConnection> Connect(
      const std::string& endpoint, int timeout_ms) = 0;
};

}  // namespace felip::svc

#endif  // FELIP_SVC_TRANSPORT_H_
