// Application-level messages of the ingest protocol.
//
// A request frame is an encoded wire::ReportBatch, unchanged: the wire
// format's magic/version/xxHash64-trailer envelope already gives the
// service integrity checking, and the trailer doubles as the batch's
// idempotency key — two frames with the same trailer carry the same
// batch, so the server aggregates at most one of them and acks the rest
// as duplicates.
//
// A response frame is the fixed-size Ack below: the batch outcome, a
// retry-after hint for backpressure rejects, and an echo of the request's
// checksum so a client can never mis-attribute a response (connections
// carry one request at a time, but a stale response from a previous
// attempt may still be in flight after a timeout).

#ifndef FELIP_SVC_MESSAGE_H_
#define FELIP_SVC_MESSAGE_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace felip::svc {

enum class AckStatus : uint8_t {
  kAccepted = 1,    // queued for aggregation; the batch will be counted
  kDuplicate = 2,   // already accepted earlier; success for the client
  kRetryLater = 3,  // queue full (backpressure): resend after the hint
  kMalformed = 4,   // frame failed integrity checks: resend the batch
};

struct Ack {
  AckStatus status = AckStatus::kMalformed;
  uint32_t retry_after_ms = 0;   // meaningful for kRetryLater
  uint64_t batch_checksum = 0;   // echo of the request's trailer

  friend bool operator==(const Ack&, const Ack&) = default;
};

std::vector<uint8_t> EncodeAck(const Ack& ack);
std::optional<Ack> DecodeAck(const std::vector<uint8_t>& frame);

// The xxHash64 trailer of an encoded wire message — the batch idempotency
// key; nullopt when the frame is too short to carry one.
std::optional<uint64_t> ChecksumTrailer(const std::vector<uint8_t>& frame);

// Recomputes the trailer over the frame body and compares. This is the
// server's synchronous integrity gate: truncated or corrupted frames are
// acked kMalformed from the IO thread, before anything is queued.
bool VerifyChecksumTrailer(const std::vector<uint8_t>& frame);

}  // namespace felip::svc

#endif  // FELIP_SVC_MESSAGE_H_
