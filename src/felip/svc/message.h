// Application-level messages of the ingest protocol.
//
// A request frame is an encoded wire::ReportBatch, unchanged: the wire
// format's magic/version/xxHash64-trailer envelope already gives the
// service integrity checking, and the trailer doubles as the batch's
// idempotency key — two frames with the same trailer carry the same
// batch, so the server aggregates at most one of them and acks the rest
// as duplicates.
//
// A response frame is the fixed-size Ack below: the batch outcome as a
// StatusCode, a retry-after hint for backpressure rejects, and an echo of
// the request's checksum so a client can never mis-attribute a response
// (connections carry one request at a time, but a stale response from a
// previous attempt may still be in flight after a timeout).
//
// Only four codes are representable in an ack, and their wire bytes are
// the original ack protocol's values (the enum's numeric values never
// touch the wire):
//   kOk                (byte 1) — queued for aggregation; will be counted
//   kAlreadyExists     (byte 2) — accepted earlier; success for the client
//   kResourceExhausted (byte 3) — queue full (backpressure): resend later
//   kDataLoss          (byte 4) — frame failed integrity checks: resend
// EncodeAck FELIP_CHECKs the code is one of these; DecodeAck rejects any
// other byte as malformed. Note IsRetryable() gives the client policy for
// the two retry codes directly.

#ifndef FELIP_SVC_MESSAGE_H_
#define FELIP_SVC_MESSAGE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "felip/common/status.h"

namespace felip::svc {

struct Ack {
  StatusCode status = StatusCode::kDataLoss;
  uint32_t retry_after_ms = 0;   // meaningful for kResourceExhausted
  uint64_t batch_checksum = 0;   // echo of the request's trailer

  friend bool operator==(const Ack&, const Ack&) = default;
};

std::vector<uint8_t> EncodeAck(const Ack& ack);
// kInvalidArgument when the frame is not a well-formed ack.
StatusOr<Ack> DecodeAck(const std::vector<uint8_t>& frame);

// The xxHash64 trailer of an encoded wire message — the batch idempotency
// key; nullopt when the frame is too short to carry one.
std::optional<uint64_t> ChecksumTrailer(const std::vector<uint8_t>& frame);

// Recomputes the trailer over the frame body and compares. This is the
// server's synchronous integrity gate: truncated or corrupted frames are
// acked kDataLoss from the IO thread, before anything is queued.
bool VerifyChecksumTrailer(const std::vector<uint8_t>& frame);

}  // namespace felip::svc

#endif  // FELIP_SVC_MESSAGE_H_
