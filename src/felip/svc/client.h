// Report-submitting client: at-least-once delivery, exactly-once counting.
//
// IngestClient sends encoded report batches over a Transport and drives
// the retry loop against the server's ack protocol (StatusCodes; see
// svc/message.h for the wire mapping):
//
//   * kOk / kAlreadyExists — done. AlreadyExists means an earlier attempt
//     landed but its ack was lost; the xxHash64 trailer the server dedups
//     on makes the resend harmless, so retries never double-count.
//   * kResourceExhausted — server backpressure; wait the suggested
//     retry_after_ms (plus deterministic jitter) and resend.
//   * kDataLoss — the frame was damaged in flight; resend.
//   * timeout / connection loss — reconnect and resend under capped
//     exponential backoff with deterministic jitter.
//
// Every ack must echo the batch checksum; a mismatched or undecodable
// response is treated like a lost one. All waits are bounded, all retry
// randomness comes from the seeded Rng, so a fixed seed replays the same
// schedule.

#ifndef FELIP_SVC_CLIENT_H_
#define FELIP_SVC_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "felip/common/rng.h"
#include "felip/common/status.h"
#include "felip/svc/transport.h"
#include "felip/wire/wire.h"

namespace felip::svc {

struct IngestClientOptions {
  int connect_timeout_ms = 2000;
  int response_timeout_ms = 2000;
  // Delivery attempts per batch before giving up.
  int max_attempts = 16;
  // Capped exponential backoff between failed attempts.
  uint32_t backoff_initial_ms = 1;
  uint32_t backoff_cap_ms = 64;
  // Seeds the jitter Rng; fixed seed => identical retry schedule.
  uint64_t jitter_seed = 1;
};

struct SendOutcome {
  // Final status of the delivery. kOk: accepted; kAlreadyExists: counted
  // by a prior attempt (success for the caller); anything else: the last
  // failure after max_attempts were exhausted.
  Status status = Status::Unavailable("batch was never sent");
  int attempts = 0;
  // True when the batch had already been aggregated by a prior attempt
  // whose ack was lost (the idempotent-resend path).
  bool duplicate = false;

  // The batch is durably counted exactly once server-side.
  bool ok() const {
    return status.ok() || status.code() == StatusCode::kAlreadyExists;
  }
};

class IngestClient {
 public:
  // `transport` must outlive the client.
  IngestClient(Transport* transport, std::string endpoint,
               IngestClientOptions options = {});

  // Encodes `batch` and delivers it (at least once; counted exactly once).
  SendOutcome SendBatch(const std::vector<wire::ReportMessage>& batch);

  // Delivers an already-encoded batch frame (wire::EncodeReportBatch).
  SendOutcome SendEncodedBatch(const std::vector<uint8_t>& frame);

  // --- Introspection ---
  uint64_t retries() const { return retries_.load(); }
  uint64_t reconnects() const { return reconnects_.load(); }

 private:
  bool EnsureConnected();
  void DropConnection();
  // Capped exponential backoff + jitter for the given 1-based attempt.
  uint32_t BackoffMs(int attempt);
  uint32_t Jitter(uint32_t bound_ms);

  Transport* transport_;
  std::string endpoint_;
  IngestClientOptions options_;
  std::unique_ptr<FrameConnection> connection_;
  std::mutex rng_mutex_;
  Rng rng_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> reconnects_{0};
};

}  // namespace felip::svc

#endif  // FELIP_SVC_CLIENT_H_
