#include "felip/post/response_matrix.h"

#include <algorithm>
#include <cmath>

#include "felip/common/check.h"

namespace felip::post {

namespace {

using grid::Grid1D;
using grid::Grid2D;
using grid::Partition1D;

// One proportional-fitting constraint: the blocks in the rectangle
// [x0, x1) x [y0, y1) (block indices) must sum to `target`.
struct Constraint {
  uint32_t x0, x1, y0, y1;
  double target;
};

// Index of `value` in the block boundary list `b` (first i with
// b[i] <= value < b[i+1]).
uint32_t BlockOf(const std::vector<uint32_t>& b, uint32_t value) {
  const auto it = std::upper_bound(b.begin(), b.end(), value);
  FELIP_CHECK(it != b.begin());
  return static_cast<uint32_t>(it - b.begin()) - 1;
}

// Maps a cell's half-open value interval to a half-open block range.
// Boundaries refine the cells, so the mapping is exact.
std::pair<uint32_t, uint32_t> BlockRange(const std::vector<uint32_t>& b,
                                         uint32_t begin, uint32_t end) {
  const uint32_t b0 = BlockOf(b, begin);
  const uint32_t b1 = BlockOf(b, end - 1) + 1;
  FELIP_CHECK(b[b0] == begin);
  FELIP_CHECK(b[b1] == end);
  return {b0, b1};
}

// Builds all constraints for the related grids, in Γ order (1-D x, 1-D y,
// then the 2-D grid) — the order the dense reference also uses.
std::vector<Constraint> BuildConstraints(const Grid2D& g2, const Grid1D* gx,
                                         const Grid1D* gy,
                                         const std::vector<uint32_t>& bx,
                                         const std::vector<uint32_t>& by) {
  std::vector<Constraint> constraints;
  const auto nby = static_cast<uint32_t>(by.size() - 1);
  const auto nbx = static_cast<uint32_t>(bx.size() - 1);
  if (gx != nullptr) {
    for (uint32_t c = 0; c < gx->num_cells(); ++c) {
      const auto [x0, x1] = BlockRange(bx, gx->partition().CellBegin(c),
                                       gx->partition().CellEnd(c));
      constraints.push_back({x0, x1, 0, nby, gx->frequencies()[c]});
    }
  }
  if (gy != nullptr) {
    for (uint32_t c = 0; c < gy->num_cells(); ++c) {
      const auto [y0, y1] = BlockRange(by, gy->partition().CellBegin(c),
                                       gy->partition().CellEnd(c));
      constraints.push_back({0, nbx, y0, y1, gy->frequencies()[c]});
    }
  }
  for (uint32_t cx = 0; cx < g2.px().num_cells(); ++cx) {
    const auto [x0, x1] =
        BlockRange(bx, g2.px().CellBegin(cx), g2.px().CellEnd(cx));
    for (uint32_t cy = 0; cy < g2.py().num_cells(); ++cy) {
      const auto [y0, y1] =
          BlockRange(by, g2.py().CellBegin(cy), g2.py().CellEnd(cy));
      constraints.push_back(
          {x0, x1, y0, y1, g2.frequencies()[g2.CellIndex(cx, cy)]});
    }
  }
  return constraints;
}

void ValidateInputs(const Grid2D& g2, const Grid1D* gx, const Grid1D* gy) {
  if (gx != nullptr) {
    FELIP_CHECK_MSG(gx->attr() == g2.attr_x(), "gx is not the x attribute");
    FELIP_CHECK(gx->partition().domain() == g2.px().domain());
  }
  if (gy != nullptr) {
    FELIP_CHECK_MSG(gy->attr() == g2.attr_y(), "gy is not the y attribute");
    FELIP_CHECK(gy->partition().domain() == g2.py().domain());
  }
}

}  // namespace

ResponseMatrix ResponseMatrix::Build(const Grid2D& g2, const Grid1D* gx,
                                     const Grid1D* gy,
                                     const ResponseMatrixOptions& options) {
  ValidateInputs(g2, gx, gy);
  ResponseMatrix m;
  m.domain_x_ = g2.px().domain();
  m.domain_y_ = g2.py().domain();

  std::vector<const Partition1D*> parts_x = {&g2.px()};
  if (gx != nullptr) parts_x.push_back(&gx->partition());
  std::vector<const Partition1D*> parts_y = {&g2.py()};
  if (gy != nullptr) parts_y.push_back(&gy->partition());
  m.bx_ = grid::CommonRefinementBoundaries(parts_x);
  m.by_ = grid::CommonRefinementBoundaries(parts_y);

  const auto nbx = static_cast<uint32_t>(m.bx_.size() - 1);
  const auto nby = static_cast<uint32_t>(m.by_.size() - 1);
  m.mass_.resize(static_cast<size_t>(nbx) * nby);

  // Uniform joint start: block mass proportional to block area.
  const double inv_total =
      1.0 / (static_cast<double>(m.domain_x_) * m.domain_y_);
  for (uint32_t i = 0; i < nbx; ++i) {
    const double w = m.bx_[i + 1] - m.bx_[i];
    for (uint32_t j = 0; j < nby; ++j) {
      const double h = m.by_[j + 1] - m.by_[j];
      m.mass_[static_cast<size_t>(i) * nby + j] = w * h * inv_total;
    }
  }

  const std::vector<Constraint> constraints =
      BuildConstraints(g2, gx, gy, m.bx_, m.by_);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double total_change = 0.0;
    for (const Constraint& c : constraints) {
      double sum = 0.0;
      for (uint32_t i = c.x0; i < c.x1; ++i) {
        const double* row = &m.mass_[static_cast<size_t>(i) * nby];
        for (uint32_t j = c.y0; j < c.y1; ++j) sum += row[j];
      }
      if (sum <= 0.0) continue;  // Algorithm 3 line 8: skip S == 0
      const double scale = c.target / sum;
      if (scale == 1.0) continue;
      for (uint32_t i = c.x0; i < c.x1; ++i) {
        double* row = &m.mass_[static_cast<size_t>(i) * nby];
        for (uint32_t j = c.y0; j < c.y1; ++j) {
          const double updated = row[j] * scale;
          total_change += std::fabs(updated - row[j]);
          row[j] = updated;
        }
      }
    }
    if (total_change < options.threshold) break;
  }
  return m;
}

double ResponseMatrix::Answer(const grid::AxisSelection& sel_x,
                              const grid::AxisSelection& sel_y) const {
  const auto nbx = static_cast<uint32_t>(bx_.size() - 1);
  const auto nby = static_cast<uint32_t>(by_.size() - 1);
  std::vector<double> cover_y(nby);
  for (uint32_t j = 0; j < nby; ++j) {
    cover_y[j] = sel_y.CoverageOfInterval(by_[j], by_[j + 1]);
  }
  double total = 0.0;
  for (uint32_t i = 0; i < nbx; ++i) {
    const double cx = sel_x.CoverageOfInterval(bx_[i], bx_[i + 1]);
    if (cx == 0.0) continue;
    const double* row = &mass_[static_cast<size_t>(i) * nby];
    double row_sum = 0.0;
    for (uint32_t j = 0; j < nby; ++j) {
      if (cover_y[j] != 0.0) row_sum += row[j] * cover_y[j];
    }
    total += row_sum * cx;
  }
  return total;
}

std::vector<double> ResponseMatrix::ToDense() const {
  const auto nby = static_cast<uint32_t>(by_.size() - 1);
  std::vector<double> dense(static_cast<size_t>(domain_x_) * domain_y_);
  for (uint32_t i = 0; i + 1 < bx_.size(); ++i) {
    const double w = bx_[i + 1] - bx_[i];
    for (uint32_t j = 0; j + 1 < by_.size(); ++j) {
      const double h = by_[j + 1] - by_[j];
      const double density = mass_[static_cast<size_t>(i) * nby + j] / (w * h);
      for (uint32_t x = bx_[i]; x < bx_[i + 1]; ++x) {
        for (uint32_t y = by_[j]; y < by_[j + 1]; ++y) {
          dense[static_cast<size_t>(x) * domain_y_ + y] = density;
        }
      }
    }
  }
  return dense;
}

std::vector<double> BuildResponseMatrixDense(
    const Grid2D& g2, const Grid1D* gx, const Grid1D* gy,
    const ResponseMatrixOptions& options) {
  ValidateInputs(g2, gx, gy);
  const uint32_t dx = g2.px().domain();
  const uint32_t dy = g2.py().domain();
  std::vector<double> m(static_cast<size_t>(dx) * dy,
                        1.0 / (static_cast<double>(dx) * dy));

  // Value-space constraints in the same Γ order as the block version.
  struct Region {
    uint32_t x0, x1, y0, y1;  // half-open value ranges
    double target;
  };
  std::vector<Region> regions;
  if (gx != nullptr) {
    for (uint32_t c = 0; c < gx->num_cells(); ++c) {
      regions.push_back({gx->partition().CellBegin(c),
                         gx->partition().CellEnd(c), 0, dy,
                         gx->frequencies()[c]});
    }
  }
  if (gy != nullptr) {
    for (uint32_t c = 0; c < gy->num_cells(); ++c) {
      regions.push_back({0, dx, gy->partition().CellBegin(c),
                         gy->partition().CellEnd(c), gy->frequencies()[c]});
    }
  }
  for (uint32_t cx = 0; cx < g2.px().num_cells(); ++cx) {
    for (uint32_t cy = 0; cy < g2.py().num_cells(); ++cy) {
      regions.push_back({g2.px().CellBegin(cx), g2.px().CellEnd(cx),
                         g2.py().CellBegin(cy), g2.py().CellEnd(cy),
                         g2.frequencies()[g2.CellIndex(cx, cy)]});
    }
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double total_change = 0.0;
    for (const Region& r : regions) {
      double sum = 0.0;
      for (uint32_t x = r.x0; x < r.x1; ++x) {
        const double* row = &m[static_cast<size_t>(x) * dy];
        for (uint32_t y = r.y0; y < r.y1; ++y) sum += row[y];
      }
      if (sum <= 0.0) continue;
      const double scale = r.target / sum;
      if (scale == 1.0) continue;
      for (uint32_t x = r.x0; x < r.x1; ++x) {
        double* row = &m[static_cast<size_t>(x) * dy];
        for (uint32_t y = r.y0; y < r.y1; ++y) {
          const double updated = row[y] * scale;
          total_change += std::fabs(updated - row[y]);
          row[y] = updated;
        }
      }
    }
    if (total_change < options.threshold) break;
  }
  return m;
}

}  // namespace felip::post
