#include "felip/post/response_matrix.h"

#include <algorithm>
#include <cmath>

#include "felip/common/check.h"
#include "felip/simd/dispatch.h"
#include "felip/simd/kernels.h"

namespace felip::post {

namespace {

using grid::Grid1D;
using grid::Grid2D;
using grid::Partition1D;

// One proportional-fitting constraint: the blocks in the rectangle
// [x0, x1) x [y0, y1) (block indices) must sum to `target`.
struct Constraint {
  uint32_t x0, x1, y0, y1;
  double target;
};

// Index of `value` in the block boundary list `b` (first i with
// b[i] <= value < b[i+1]).
uint32_t BlockOf(const std::vector<uint32_t>& b, uint32_t value) {
  const auto it = std::upper_bound(b.begin(), b.end(), value);
  FELIP_CHECK(it != b.begin());
  return static_cast<uint32_t>(it - b.begin()) - 1;
}

// Maps a cell's half-open value interval to a half-open block range.
// Boundaries refine the cells, so the mapping is exact.
std::pair<uint32_t, uint32_t> BlockRange(const std::vector<uint32_t>& b,
                                         uint32_t begin, uint32_t end) {
  const uint32_t b0 = BlockOf(b, begin);
  const uint32_t b1 = BlockOf(b, end - 1) + 1;
  FELIP_CHECK(b[b0] == begin);
  FELIP_CHECK(b[b1] == end);
  return {b0, b1};
}

// Builds all constraints for the related grids, in Γ order (1-D x, 1-D y,
// then the 2-D grid) — the order the dense reference also uses.
std::vector<Constraint> BuildConstraints(const Grid2D& g2, const Grid1D* gx,
                                         const Grid1D* gy,
                                         const std::vector<uint32_t>& bx,
                                         const std::vector<uint32_t>& by) {
  std::vector<Constraint> constraints;
  const auto nby = static_cast<uint32_t>(by.size() - 1);
  const auto nbx = static_cast<uint32_t>(bx.size() - 1);
  if (gx != nullptr) {
    for (uint32_t c = 0; c < gx->num_cells(); ++c) {
      const auto [x0, x1] = BlockRange(bx, gx->partition().CellBegin(c),
                                       gx->partition().CellEnd(c));
      constraints.push_back({x0, x1, 0, nby, gx->frequencies()[c]});
    }
  }
  if (gy != nullptr) {
    for (uint32_t c = 0; c < gy->num_cells(); ++c) {
      const auto [y0, y1] = BlockRange(by, gy->partition().CellBegin(c),
                                       gy->partition().CellEnd(c));
      constraints.push_back({0, nbx, y0, y1, gy->frequencies()[c]});
    }
  }
  for (uint32_t cx = 0; cx < g2.px().num_cells(); ++cx) {
    const auto [x0, x1] =
        BlockRange(bx, g2.px().CellBegin(cx), g2.px().CellEnd(cx));
    for (uint32_t cy = 0; cy < g2.py().num_cells(); ++cy) {
      const auto [y0, y1] =
          BlockRange(by, g2.py().CellBegin(cy), g2.py().CellEnd(cy));
      constraints.push_back(
          {x0, x1, y0, y1, g2.frequencies()[g2.CellIndex(cx, cy)]});
    }
  }
  return constraints;
}

// Inclusive block interval [*first, *last] that `sel` can touch in the
// boundary list `b` over `domain`, or false when the selection lies
// entirely at or above the domain (zero coverage everywhere). Selections
// are contiguous (ranges) or sorted (sets), so the touched blocks are the
// ones between the blocks of the smallest and largest selected values;
// blocks outside contribute exactly-zero coverage.
bool TouchedBlocks(const std::vector<uint32_t>& b, uint32_t domain,
                   const grid::AxisSelection& sel, uint32_t* first,
                   uint32_t* last) {
  const uint32_t lo = sel.is_range() ? sel.lo() : sel.values().front();
  const uint32_t hi = sel.is_range() ? sel.hi() : sel.values().back();
  if (lo >= domain) return false;
  *first = BlockOf(b, lo);
  *last = BlockOf(b, std::min(hi, domain - 1));
  return true;
}

// One per-axis run of blocks [b0, b1) sharing a coverage weight: the
// fractional first block, the fully-covered interior, the fractional last
// block. At most three per axis for a range selection.
struct Segment {
  uint32_t b0, b1;
  double w;
};

int RangeSegments(const std::vector<uint32_t>& b,
                  const grid::AxisSelection& sel, uint32_t first,
                  uint32_t last, Segment out[3]) {
  int n = 0;
  out[n++] = {first, first + 1, sel.CoverageOfInterval(b[first], b[first + 1])};
  if (first == last) return n;
  if (last > first + 1) out[n++] = {first + 1, last, 1.0};
  out[n++] = {last, last + 1, sel.CoverageOfInterval(b[last], b[last + 1])};
  return n;
}

void ValidateInputs(const Grid2D& g2, const Grid1D* gx, const Grid1D* gy) {
  if (gx != nullptr) {
    FELIP_CHECK_MSG(gx->attr() == g2.attr_x(), "gx is not the x attribute");
    FELIP_CHECK(gx->partition().domain() == g2.px().domain());
  }
  if (gy != nullptr) {
    FELIP_CHECK_MSG(gy->attr() == g2.attr_y(), "gy is not the y attribute");
    FELIP_CHECK(gy->partition().domain() == g2.py().domain());
  }
}

}  // namespace

ResponseMatrix ResponseMatrix::Build(const Grid2D& g2, const Grid1D* gx,
                                     const Grid1D* gy,
                                     const ResponseMatrixOptions& options) {
  ValidateInputs(g2, gx, gy);
  ResponseMatrix m;
  m.domain_x_ = g2.px().domain();
  m.domain_y_ = g2.py().domain();

  std::vector<const Partition1D*> parts_x = {&g2.px()};
  if (gx != nullptr) parts_x.push_back(&gx->partition());
  std::vector<const Partition1D*> parts_y = {&g2.py()};
  if (gy != nullptr) parts_y.push_back(&gy->partition());
  m.bx_ = grid::CommonRefinementBoundaries(parts_x);
  m.by_ = grid::CommonRefinementBoundaries(parts_y);

  const auto nbx = static_cast<uint32_t>(m.bx_.size() - 1);
  const auto nby = static_cast<uint32_t>(m.by_.size() - 1);
  m.mass_.resize(static_cast<size_t>(nbx) * nby);

  // Uniform joint start: block mass proportional to block area.
  const double inv_total =
      1.0 / (static_cast<double>(m.domain_x_) * m.domain_y_);
  for (uint32_t i = 0; i < nbx; ++i) {
    const double w = m.bx_[i + 1] - m.bx_[i];
    for (uint32_t j = 0; j < nby; ++j) {
      const double h = m.by_[j + 1] - m.by_[j];
      m.mass_[static_cast<size_t>(i) * nby + j] = w * h * inv_total;
    }
  }

  const std::vector<Constraint> constraints =
      BuildConstraints(g2, gx, gy, m.bx_, m.by_);

  const simd::Level level = simd::ActiveLevel();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double total_change = 0.0;
    for (const Constraint& c : constraints) {
      double sum = 0.0;
      for (uint32_t i = c.x0; i < c.x1; ++i) {
        const double* row = &m.mass_[static_cast<size_t>(i) * nby];
        sum += simd::Sum(level, row + c.y0, c.y1 - c.y0);
      }
      if (sum <= 0.0) continue;  // Algorithm 3 line 8: skip S == 0
      const double scale = c.target / sum;
      if (scale == 1.0) continue;
      for (uint32_t i = c.x0; i < c.x1; ++i) {
        double* row = &m.mass_[static_cast<size_t>(i) * nby];
        total_change +=
            simd::ScaleAbsDelta(level, row + c.y0, c.y1 - c.y0, scale);
      }
    }
    if (total_change < options.threshold) break;
  }
  m.BuildPrefixSums();
  return m;
}

double ResponseMatrix::ScanRect(const grid::AxisSelection& sel_x,
                                const grid::AxisSelection& sel_y,
                                uint32_t x0, uint32_t x1, uint32_t y0,
                                uint32_t y1, QueryScratch* scratch) const {
  const auto nby = static_cast<uint32_t>(by_.size() - 1);
  const uint32_t ny = y1 - y0 + 1;
  if (scratch->cover_y.size() < ny) scratch->cover_y.resize(ny);
  if (scratch->cols_y.size() < ny) scratch->cols_y.resize(ny);
  double* cover_y = scratch->cover_y.data();
  uint32_t* cols_y = scratch->cols_y.data();
  // Compact the nonzero-coverage columns. Both callers end up with the
  // same (column, weight) sequence: blocks outside the touched interval
  // have exactly-zero coverage and are dropped here either way.
  size_t m = 0;
  for (uint32_t j = 0; j < ny; ++j) {
    const double w = sel_y.CoverageOfInterval(by_[y0 + j], by_[y0 + j + 1]);
    if (w != 0.0) {
      cover_y[m] = w;
      cols_y[m] = y0 + j;
      ++m;
    }
  }
  if (m == 0) return 0.0;
  // Range selections compact to one contiguous column run, which the dot
  // kernel can read straight out of the row; set selections gather first.
  const bool contiguous = cols_y[m - 1] - cols_y[0] + 1 == m;
  if (!contiguous && scratch->gathered.size() < m) {
    scratch->gathered.resize(m);
  }
  const simd::Level level = simd::ActiveLevel();
  double total = 0.0;
  for (uint32_t i = x0; i <= x1; ++i) {
    const double cx = sel_x.CoverageOfInterval(bx_[i], bx_[i + 1]);
    if (cx == 0.0) continue;
    const double* row = &mass_[static_cast<size_t>(i) * nby];
    double row_sum;
    if (contiguous) {
      row_sum = simd::Dot(level, row + cols_y[0], cover_y, m);
    } else {
      double* gathered = scratch->gathered.data();
      for (size_t k = 0; k < m; ++k) gathered[k] = row[cols_y[k]];
      row_sum = simd::Dot(level, gathered, cover_y, m);
    }
    total += row_sum * cx;
  }
  return total;
}

double ResponseMatrix::Answer(const grid::AxisSelection& sel_x,
                              const grid::AxisSelection& sel_y) const {
  const auto nbx = static_cast<uint32_t>(bx_.size() - 1);
  const auto nby = static_cast<uint32_t>(by_.size() - 1);
  QueryScratch scratch;
  return ScanRect(sel_x, sel_y, 0, nbx - 1, 0, nby - 1, &scratch);
}

double ResponseMatrix::AnswerExact(const grid::AxisSelection& sel_x,
                                   const grid::AxisSelection& sel_y,
                                   QueryScratch* scratch) const {
  FELIP_CHECK(scratch != nullptr);
  uint32_t x0 = 0, x1 = 0, y0 = 0, y1 = 0;
  if (!TouchedBlocks(bx_, domain_x_, sel_x, &x0, &x1) ||
      !TouchedBlocks(by_, domain_y_, sel_y, &y0, &y1)) {
    return 0.0;
  }
  return ScanRect(sel_x, sel_y, x0, x1, y0, y1, scratch);
}

double ResponseMatrix::AnswerPrefix(const grid::AxisSelection& sel_x,
                                    const grid::AxisSelection& sel_y,
                                    QueryScratch* scratch) const {
  if (!sel_x.is_range() || !sel_y.is_range()) {
    return AnswerExact(sel_x, sel_y, scratch);
  }
  uint32_t x0 = 0, x1 = 0, y0 = 0, y1 = 0;
  if (!TouchedBlocks(bx_, domain_x_, sel_x, &x0, &x1) ||
      !TouchedBlocks(by_, domain_y_, sel_y, &y0, &y1)) {
    return 0.0;
  }
  Segment segs_x[3];
  Segment segs_y[3];
  const int nx = RangeSegments(bx_, sel_x, x0, x1, segs_x);
  const int ny = RangeSegments(by_, sel_y, y0, y1, segs_y);
  double total = 0.0;
  for (int a = 0; a < nx; ++a) {
    for (int b = 0; b < ny; ++b) {
      total += segs_x[a].w * segs_y[b].w *
               PrefixRect(segs_x[a].b0, segs_x[a].b1, segs_y[b].b0,
                          segs_y[b].b1);
    }
  }
  return total;
}

void ResponseMatrix::BuildPrefixSums() {
  const auto nbx = static_cast<uint32_t>(bx_.size() - 1);
  const auto nby = static_cast<uint32_t>(by_.size() - 1);
  const size_t stride = nby + 1;
  prefix_.assign((static_cast<size_t>(nbx) + 1) * stride, 0.0);
  // Two passes per row: the serial running row sum (a true dependency
  // chain), then the element-wise vectorizable propagation from the
  // previous prefix row. Same additions on the same values as the old
  // interleaved loop, so the table is bit-identical — and row i + 1 is
  // written in one streaming pass instead of strided row hops.
  std::vector<double> running(stride);
  const simd::Level level = simd::ActiveLevel();
  for (uint32_t i = 0; i < nbx; ++i) {
    const double* row = &mass_[static_cast<size_t>(i) * nby];
    running[0] = 0.0;
    for (uint32_t j = 0; j < nby; ++j) running[j + 1] = running[j] + row[j];
    simd::AddF64(level, &prefix_[static_cast<size_t>(i) * stride],
                 running.data(),
                 &prefix_[(static_cast<size_t>(i) + 1) * stride], stride);
  }
}

double ResponseMatrix::PrefixRect(uint32_t x0, uint32_t x1, uint32_t y0,
                                  uint32_t y1) const {
  const size_t stride = by_.size();
  const double* s = prefix_.data();
  return s[x1 * stride + y1] - s[x0 * stride + y1] - s[x1 * stride + y0] +
         s[x0 * stride + y0];
}

ResponseMatrix::Blocks ResponseMatrix::ExportBlocks() const {
  Blocks blocks;
  blocks.domain_x = domain_x_;
  blocks.domain_y = domain_y_;
  blocks.bx = bx_;
  blocks.by = by_;
  blocks.mass = mass_;
  return blocks;
}

bool ResponseMatrix::FromBlocks(Blocks blocks, ResponseMatrix* out) {
  if (out == nullptr) return false;
  if (blocks.domain_x == 0 || blocks.domain_y == 0) return false;
  const auto valid_boundaries = [](const std::vector<uint32_t>& b,
                                   uint32_t domain) {
    if (b.size() < 2 || b.front() != 0 || b.back() != domain) return false;
    for (size_t i = 0; i + 1 < b.size(); ++i) {
      if (b[i] >= b[i + 1]) return false;
    }
    return true;
  };
  if (!valid_boundaries(blocks.bx, blocks.domain_x)) return false;
  if (!valid_boundaries(blocks.by, blocks.domain_y)) return false;
  const size_t nbx = blocks.bx.size() - 1;
  const size_t nby = blocks.by.size() - 1;
  if (blocks.mass.size() != nbx * nby) return false;
  for (const double m : blocks.mass) {
    if (!std::isfinite(m) || m < 0.0) return false;
  }
  ResponseMatrix matrix;
  matrix.domain_x_ = blocks.domain_x;
  matrix.domain_y_ = blocks.domain_y;
  matrix.bx_ = std::move(blocks.bx);
  matrix.by_ = std::move(blocks.by);
  matrix.mass_ = std::move(blocks.mass);
  matrix.BuildPrefixSums();
  *out = std::move(matrix);
  return true;
}

std::vector<double> ResponseMatrix::ToDense() const {
  const auto nby = static_cast<uint32_t>(by_.size() - 1);
  std::vector<double> dense(static_cast<size_t>(domain_x_) * domain_y_);
  for (uint32_t i = 0; i + 1 < bx_.size(); ++i) {
    const double w = bx_[i + 1] - bx_[i];
    for (uint32_t j = 0; j + 1 < by_.size(); ++j) {
      const double h = by_[j + 1] - by_[j];
      const double density = mass_[static_cast<size_t>(i) * nby + j] / (w * h);
      for (uint32_t x = bx_[i]; x < bx_[i + 1]; ++x) {
        for (uint32_t y = by_[j]; y < by_[j + 1]; ++y) {
          dense[static_cast<size_t>(x) * domain_y_ + y] = density;
        }
      }
    }
  }
  return dense;
}

std::vector<double> BuildResponseMatrixDense(
    const Grid2D& g2, const Grid1D* gx, const Grid1D* gy,
    const ResponseMatrixOptions& options) {
  ValidateInputs(g2, gx, gy);
  const uint32_t dx = g2.px().domain();
  const uint32_t dy = g2.py().domain();
  std::vector<double> m(static_cast<size_t>(dx) * dy,
                        1.0 / (static_cast<double>(dx) * dy));

  // Value-space constraints in the same Γ order as the block version.
  struct Region {
    uint32_t x0, x1, y0, y1;  // half-open value ranges
    double target;
  };
  std::vector<Region> regions;
  if (gx != nullptr) {
    for (uint32_t c = 0; c < gx->num_cells(); ++c) {
      regions.push_back({gx->partition().CellBegin(c),
                         gx->partition().CellEnd(c), 0, dy,
                         gx->frequencies()[c]});
    }
  }
  if (gy != nullptr) {
    for (uint32_t c = 0; c < gy->num_cells(); ++c) {
      regions.push_back({0, dx, gy->partition().CellBegin(c),
                         gy->partition().CellEnd(c), gy->frequencies()[c]});
    }
  }
  for (uint32_t cx = 0; cx < g2.px().num_cells(); ++cx) {
    for (uint32_t cy = 0; cy < g2.py().num_cells(); ++cy) {
      regions.push_back({g2.px().CellBegin(cx), g2.px().CellEnd(cx),
                         g2.py().CellBegin(cy), g2.py().CellEnd(cy),
                         g2.frequencies()[g2.CellIndex(cx, cy)]});
    }
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double total_change = 0.0;
    for (const Region& r : regions) {
      double sum = 0.0;
      for (uint32_t x = r.x0; x < r.x1; ++x) {
        const double* row = &m[static_cast<size_t>(x) * dy];
        for (uint32_t y = r.y0; y < r.y1; ++y) sum += row[y];
      }
      if (sum <= 0.0) continue;
      const double scale = r.target / sum;
      if (scale == 1.0) continue;
      for (uint32_t x = r.x0; x < r.x1; ++x) {
        double* row = &m[static_cast<size_t>(x) * dy];
        for (uint32_t y = r.y0; y < r.y1; ++y) {
          const double updated = row[y] * scale;
          total_change += std::fabs(updated - row[y]);
          row[y] = updated;
        }
      }
    }
    if (total_change < options.threshold) break;
  }
  return m;
}

}  // namespace felip::post
