// Cross-grid consistency (Algorithm 2).
//
// Every attribute appears in several grids (its 1-D grid plus one 2-D grid
// per partner attribute). Their marginal estimates disagree; replacing each
// grid's per-subdomain sum with the variance-weighted average of all grids'
// sums reduces error (CALM-style consistency, Zhang et al. CCS'18).
//
// FELIP grids are sized independently, so cell boundaries along a shared
// attribute need not align. Subdomains are taken from the attribute's 1-D
// grid when present, else from the coarsest related axis; per-grid sums use
// fractional (within-cell uniform) overlap, and the correction is spread
// over contributing cells proportionally to their overlap (the
// least-squares-minimal update, which reduces to CALM's equal split when
// boundaries align).

#ifndef FELIP_POST_CONSISTENCY_H_
#define FELIP_POST_CONSISTENCY_H_

#include <cstdint>
#include <vector>

#include "felip/grid/grid.h"
#include "felip/post/norm_sub.h"

namespace felip::post {

struct ConsistencyOptions {
  // Rounds of (consistency, negativity-removal); the sequence always ends
  // with a negativity-removal pass so downstream response-matrix building
  // sees non-negative cell frequencies.
  int rounds = 3;
  // Which negativity-removal variant to interleave.
  Normalization normalization = Normalization::kNormSub;
};

// Makes the grids' marginals consistent for every attribute in
// [0, num_attributes). Grids may be any mix of 1-D and 2-D; an attribute
// with fewer than two related grids is left untouched.
void MakeConsistent(uint32_t num_attributes,
                    std::vector<grid::Grid1D>* grids_1d,
                    std::vector<grid::Grid2D>* grids_2d,
                    const ConsistencyOptions& options = {});

// One consistency pass for a single attribute (exposed for tests).
void MakeAttributeConsistent(uint32_t attr,
                             std::vector<grid::Grid1D>* grids_1d,
                             std::vector<grid::Grid2D>* grids_2d);

}  // namespace felip::post

#endif  // FELIP_POST_CONSISTENCY_H_
