// λ-D query estimation from associated 2-D answers (Algorithm 4).
//
// A λ-dimensional query q is split into its C(λ,2) associated 2-D queries.
// The estimator maintains a vector z of 2^λ entries, one per
// sign-combination of the λ predicates (bit t set = predicate t holds,
// clear = its complement holds). Each 2-D answer f^(i,j) constrains the
// 2^(λ-2) entries with bits i and j set; iterating the proportional rescale
// from the uniform start converges, and z[all bits set] is the estimate.

#ifndef FELIP_POST_LAMBDA_ESTIMATOR_H_
#define FELIP_POST_LAMBDA_ESTIMATOR_H_

#include <cstdint>
#include <vector>

namespace felip::post {

struct LambdaEstimatorOptions {
  // Convergence: total absolute change of z per sweep below this; the
  // paper recommends < 1/n.
  double threshold = 1e-7;
  int max_iterations = 500;
};

// Index of pair (i, j), i < j < lambda, in the lexicographic pair order
// used by EstimateLambdaQuery's `pair_answers`.
uint32_t PairIndex(uint32_t i, uint32_t j, uint32_t lambda);

// Estimates the λ-D answer from the C(λ,2) associated 2-D answers (indexed
// by PairIndex). Answers are clamped to [0, 1] before fitting. Requires
// lambda >= 2 (λ == 2 returns the single pair answer directly) and
// lambda <= 20.
double EstimateLambdaQuery(uint32_t lambda,
                           const std::vector<double>& pair_answers,
                           const LambdaEstimatorOptions& options = {});

// Full fitted vector z (exposed for tests; size 2^λ, sums to ~1 when the
// inputs are consistent).
std::vector<double> FitSignCombinations(
    uint32_t lambda, const std::vector<double>& pair_answers,
    const LambdaEstimatorOptions& options = {});

// Quadrant-fit extension (beyond the paper): Algorithm 4 constrains only
// the 2^(λ-2) entries where both pair predicates hold, which leaves the
// fit underdetermined — e.g. a query whose associated 2-D answers are all
// 1 converges to ~0.77 instead of 1. Given the per-attribute marginal
// answers m_t, the other three quadrants of every pair follow by
// inclusion–exclusion (f(+,-) = m_i - f(+,+), ...), turning the update
// into proper iterative proportional fitting on complete pairwise
// marginals. Enabled in FELIP via FelipConfig::lambda_quadrant_fit.
double EstimateLambdaQueryQuadrants(
    uint32_t lambda, const std::vector<double>& pair_answers,
    const std::vector<double>& marginal_answers,
    const LambdaEstimatorOptions& options = {});

}  // namespace felip::post

#endif  // FELIP_POST_LAMBDA_ESTIMATOR_H_
