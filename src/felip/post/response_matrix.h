// Response matrix construction (Algorithm 3, Weighted Update).
//
// For an attribute pair (a_i, a_j), the response matrix M estimates the
// joint frequency of every 2-D value from the pair's related grids
// Γ = {G(i), G(j), G(i,j)} (the 1-D grids are absent under OUG and for
// categorical attributes). Starting from the uniform joint, each grid cell
// imposes "mass of my region == my frequency"; iterating the proportional
// rescale converges to a joint consistent with all grids.
//
// Every rescale preserves piecewise-constancy of M on the common refinement
// of the related grids' partitions, so the production implementation
// (ResponseMatrix) stores one mass per refined *block* — O(blocks) per
// sweep instead of O(d_i * d_j). BuildResponseMatrixDense is the literal
// Algorithm 3 over the dense matrix, kept as the reference implementation;
// property tests assert the two agree.

#ifndef FELIP_POST_RESPONSE_MATRIX_H_
#define FELIP_POST_RESPONSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "felip/grid/grid.h"

namespace felip::post {

struct ResponseMatrixOptions {
  // Convergence: total absolute mass change per sweep below this. The
  // paper recommends < 1/n; callers pass their population size.
  double threshold = 1e-7;
  int max_iterations = 200;
};

class ResponseMatrix {
 public:
  // An empty placeholder; assign a Build() result before use.
  ResponseMatrix() = default;

  // Builds the matrix for `g2`'s attribute pair from the related grids.
  // `gx` / `gy` are the 1-D grids of the x / y attributes, or nullptr when
  // absent. All grids must carry non-negative post-processed frequencies.
  static ResponseMatrix Build(const grid::Grid2D& g2, const grid::Grid1D* gx,
                              const grid::Grid1D* gy,
                              const ResponseMatrixOptions& options = {});

  uint32_t domain_x() const { return domain_x_; }
  uint32_t domain_y() const { return domain_y_; }

  // Estimated frequency of the conjunction of two per-axis selections.
  double Answer(const grid::AxisSelection& sel_x,
                const grid::AxisSelection& sel_y) const;

  // Dense d_i x d_j export (row-major, x-major); for tests and small
  // domains.
  std::vector<double> ToDense() const;

  // Block structure introspection (tests, benchmarks).
  size_t num_blocks() const { return mass_.size(); }

 private:
  uint32_t domain_x_ = 0;
  uint32_t domain_y_ = 0;
  std::vector<uint32_t> bx_;   // x block boundaries, size nbx + 1
  std::vector<uint32_t> by_;   // y block boundaries, size nby + 1
  std::vector<double> mass_;   // nbx * nby, row-major, total mass per block
};

// Literal Algorithm 3 over the dense d_i x d_j matrix (reference
// implementation; O(d_i * d_j) per sweep).
std::vector<double> BuildResponseMatrixDense(
    const grid::Grid2D& g2, const grid::Grid1D* gx, const grid::Grid1D* gy,
    const ResponseMatrixOptions& options = {});

}  // namespace felip::post

#endif  // FELIP_POST_RESPONSE_MATRIX_H_
