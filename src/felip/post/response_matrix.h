// Response matrix construction (Algorithm 3, Weighted Update).
//
// For an attribute pair (a_i, a_j), the response matrix M estimates the
// joint frequency of every 2-D value from the pair's related grids
// Γ = {G(i), G(j), G(i,j)} (the 1-D grids are absent under OUG and for
// categorical attributes). Starting from the uniform joint, each grid cell
// imposes "mass of my region == my frequency"; iterating the proportional
// rescale converges to a joint consistent with all grids.
//
// Every rescale preserves piecewise-constancy of M on the common refinement
// of the related grids' partitions, so the production implementation
// (ResponseMatrix) stores one mass per refined *block* — O(blocks) per
// sweep instead of O(d_i * d_j). BuildResponseMatrixDense is the literal
// Algorithm 3 over the dense matrix, kept as the reference implementation;
// property tests assert the two agree.

#ifndef FELIP_POST_RESPONSE_MATRIX_H_
#define FELIP_POST_RESPONSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "felip/grid/grid.h"

namespace felip::post {

// Reusable per-thread workspace for the allocation-free answer paths.
// ResponseMatrix never writes beyond the block counts of the matrix being
// queried, so one scratch serves matrices of any size; the batch query
// engine keeps one per worker thread.
struct QueryScratch {
  // Compacted nonzero y-coverage weights, their block columns, and the
  // gathered row values for non-contiguous (set-selection) columns.
  std::vector<double> cover_y;
  std::vector<uint32_t> cols_y;
  std::vector<double> gathered;
};

struct ResponseMatrixOptions {
  // Convergence: total absolute mass change per sweep below this. The
  // paper recommends < 1/n; callers pass their population size.
  double threshold = 1e-7;
  int max_iterations = 200;
};

class ResponseMatrix {
 public:
  // An empty placeholder; assign a Build() result before use.
  ResponseMatrix() = default;

  // Builds the matrix for `g2`'s attribute pair from the related grids.
  // `gx` / `gy` are the 1-D grids of the x / y attributes, or nullptr when
  // absent. All grids must carry non-negative post-processed frequencies.
  static ResponseMatrix Build(const grid::Grid2D& g2, const grid::Grid1D* gx,
                              const grid::Grid1D* gy,
                              const ResponseMatrixOptions& options = {});

  uint32_t domain_x() const { return domain_x_; }
  uint32_t domain_y() const { return domain_y_; }

  // Estimated frequency of the conjunction of two per-axis selections.
  // Reference scan: walks every block, allocating coverage storage per
  // call. AnswerExact/AnswerPrefix below are the production paths.
  double Answer(const grid::AxisSelection& sel_x,
                const grid::AxisSelection& sel_y) const;

  // Allocation-free covered-rectangle scan: binary-searches the block
  // interval each selection touches and accumulates only those blocks, in
  // the same floating-point operation order as Answer() — blocks outside
  // the interval have exactly-zero coverage and contribute nothing to the
  // scan either — so the result is bit-identical to Answer() for every
  // selection type.
  double AnswerExact(const grid::AxisSelection& sel_x,
                     const grid::AxisSelection& sel_y,
                     QueryScratch* scratch) const;

  // O(1)-per-pair summed-area-table path for range x range selections:
  // interior mass comes from at most nine prefix-table rectangle
  // differences, with the fractional first/last block strips weighted by
  // their coverage. Associativity differs from the scan, so agreement
  // with Answer() is ~1e-12 relative, not bit-exact. Non-range selections
  // fall back to AnswerExact.
  double AnswerPrefix(const grid::AxisSelection& sel_x,
                      const grid::AxisSelection& sel_y,
                      QueryScratch* scratch) const;

  // Dense d_i x d_j export (row-major, x-major); for tests and small
  // domains.
  std::vector<double> ToDense() const;

  // Block structure introspection (tests, benchmarks).
  size_t num_blocks() const { return mass_.size(); }

  // --- Persistence (felip/snapshot) ---
  // The converged block structure is the matrix's entire state; the
  // prefix table is derived and rebuilt on import.
  struct Blocks {
    uint32_t domain_x = 0;
    uint32_t domain_y = 0;
    std::vector<uint32_t> bx;  // x block boundaries, size nbx + 1
    std::vector<uint32_t> by;  // y block boundaries, size nby + 1
    std::vector<double> mass;  // nbx * nby, row-major
  };
  Blocks ExportBlocks() const;
  // Rebuilds a matrix from exported blocks. Returns false (leaving `out`
  // untouched) when the structure is invalid — snapshot bytes are
  // untrusted input even after their checksums pass.
  static bool FromBlocks(Blocks blocks, ResponseMatrix* out);

 private:
  // Shared scan over the inclusive block rectangle [x0, x1] x [y0, y1]:
  // compacts the nonzero-coverage columns, then runs the dispatched dot
  // kernel per surviving row. Answer() passes the full block rectangle and
  // AnswerExact() the touched one; zero-coverage blocks contribute nothing
  // either way, so both produce identical compacted inputs — and therefore
  // bit-identical results — for every selection and dispatch level.
  double ScanRect(const grid::AxisSelection& sel_x,
                  const grid::AxisSelection& sel_y, uint32_t x0, uint32_t x1,
                  uint32_t y0, uint32_t y1, QueryScratch* scratch) const;

  // Summed-area table over the block masses; built once per Build().
  void BuildPrefixSums();
  // Mass of the block rectangle [x0, x1) x [y0, y1).
  double PrefixRect(uint32_t x0, uint32_t x1, uint32_t y0,
                    uint32_t y1) const;

  uint32_t domain_x_ = 0;
  uint32_t domain_y_ = 0;
  std::vector<uint32_t> bx_;   // x block boundaries, size nbx + 1
  std::vector<uint32_t> by_;   // y block boundaries, size nby + 1
  std::vector<double> mass_;   // nbx * nby, row-major, total mass per block
  // (nbx + 1) * (nby + 1) summed-area table: prefix_[i * (nby + 1) + j] is
  // the total mass of blocks [0, i) x [0, j).
  std::vector<double> prefix_;
};

// Literal Algorithm 3 over the dense d_i x d_j matrix (reference
// implementation; O(d_i * d_j) per sweep).
std::vector<double> BuildResponseMatrixDense(
    const grid::Grid2D& g2, const grid::Grid1D* gx, const grid::Grid1D* gy,
    const ResponseMatrixOptions& options = {});

}  // namespace felip::post

#endif  // FELIP_POST_RESPONSE_MATRIX_H_
