#include "felip/post/consistency.h"

#include <algorithm>

#include "felip/common/check.h"
#include "felip/post/norm_sub.h"

namespace felip::post {

namespace {

using grid::Grid1D;
using grid::Grid2D;
using grid::Partition1D;

// A grid seen "along" one attribute: a sequence of slices (one per cell of
// the attribute's axis), each slice holding `slice_cells` cells of the
// other axis (1 for 1-D grids).
struct AttributeView {
  const Partition1D* partition = nullptr;
  uint32_t slice_cells = 1;
  std::vector<double>* freqs = nullptr;
  // Indexing into *freqs for slice `s`, element `e` in [0, slice_cells).
  size_t stride_slice = 1;
  size_t stride_elem = 0;

  double SliceSum(uint32_t s) const {
    double sum = 0.0;
    for (uint32_t e = 0; e < slice_cells; ++e) {
      sum += (*freqs)[s * stride_slice + e * stride_elem];
    }
    return sum;
  }
  void SliceAdd(uint32_t s, double delta) const {
    for (uint32_t e = 0; e < slice_cells; ++e) {
      (*freqs)[s * stride_slice + e * stride_elem] += delta;
    }
  }
};

std::vector<AttributeView> CollectViews(uint32_t attr,
                                        std::vector<Grid1D>* grids_1d,
                                        std::vector<Grid2D>* grids_2d) {
  std::vector<AttributeView> views;
  for (Grid1D& g : *grids_1d) {
    if (g.attr() != attr) continue;
    AttributeView v;
    v.partition = &g.partition();
    v.slice_cells = 1;
    v.freqs = g.mutable_frequencies();
    v.stride_slice = 1;
    v.stride_elem = 0;
    views.push_back(v);
  }
  for (Grid2D& g : *grids_2d) {
    if (g.attr_x() == attr) {
      AttributeView v;
      v.partition = &g.px();
      v.slice_cells = g.py().num_cells();
      v.freqs = g.mutable_frequencies();
      v.stride_slice = g.py().num_cells();  // row-major, x-major
      v.stride_elem = 1;
      views.push_back(v);
    } else if (g.attr_y() == attr) {
      AttributeView v;
      v.partition = &g.py();
      v.slice_cells = g.px().num_cells();
      v.freqs = g.mutable_frequencies();
      v.stride_slice = 1;
      v.stride_elem = g.py().num_cells();
      views.push_back(v);
    }
  }
  return views;
}

}  // namespace

void MakeAttributeConsistent(uint32_t attr, std::vector<Grid1D>* grids_1d,
                             std::vector<Grid2D>* grids_2d) {
  FELIP_CHECK(grids_1d != nullptr && grids_2d != nullptr);
  std::vector<AttributeView> views = CollectViews(attr, grids_1d, grids_2d);
  if (views.size() < 2) return;

  // Subdomains: the coarsest related partition; a 1-D grid (slice_cells==1)
  // wins ties so OHG uses its finer-grained marginal grid's cells.
  const AttributeView* anchor = &views[0];
  for (const AttributeView& v : views) {
    const bool coarser =
        v.partition->num_cells() < anchor->partition->num_cells();
    const bool tie_breaker =
        v.partition->num_cells() == anchor->partition->num_cells() &&
        v.slice_cells < anchor->slice_cells;
    if (coarser || tie_breaker) anchor = &v;
  }
  const Partition1D& subdomains = *anchor->partition;

  // Scratch per view: overlap weights of every slice with one subdomain.
  std::vector<std::vector<double>> weights(views.size());

  for (uint32_t i = 0; i < subdomains.num_cells(); ++i) {
    const uint32_t lo = subdomains.CellBegin(i);
    const uint32_t hi = subdomains.CellEnd(i) - 1;  // inclusive

    // Per-view sum S_j and effective summed-cell count L_j.
    std::vector<double> sums(views.size(), 0.0);
    std::vector<double> counts(views.size(), 0.0);
    for (size_t j = 0; j < views.size(); ++j) {
      const AttributeView& v = views[j];
      weights[j].assign(v.partition->num_cells(), 0.0);
      double sum = 0.0;
      double weight_sq = 0.0;
      for (uint32_t s = 0; s < v.partition->num_cells(); ++s) {
        const double w = v.partition->OverlapFraction(s, lo, hi);
        weights[j][s] = w;
        if (w == 0.0) continue;
        sum += w * v.SliceSum(s);
        weight_sq += w * w;
      }
      sums[j] = sum;
      counts[j] = weight_sq * static_cast<double>(v.slice_cells);
    }

    // Variance-minimizing weighted average: theta_j ∝ 1 / L_j.
    double inv_count_total = 0.0;
    for (const double c : counts) {
      FELIP_CHECK_MSG(c > 0.0, "subdomain with no overlapping cells");
      inv_count_total += 1.0 / c;
    }
    double target = 0.0;
    for (size_t j = 0; j < views.size(); ++j) {
      target += (1.0 / counts[j]) / inv_count_total * sums[j];
    }

    // Redistribute the correction over contributing cells, proportional to
    // overlap (equal split when boundaries align).
    for (size_t j = 0; j < views.size(); ++j) {
      const AttributeView& v = views[j];
      const double diff = target - sums[j];
      if (diff == 0.0) continue;
      double weight_sq = 0.0;
      for (const double w : weights[j]) weight_sq += w * w;
      const double scale =
          diff / (weight_sq * static_cast<double>(v.slice_cells));
      for (uint32_t s = 0; s < v.partition->num_cells(); ++s) {
        if (weights[j][s] > 0.0) v.SliceAdd(s, scale * weights[j][s]);
      }
    }
  }
}

void MakeConsistent(uint32_t num_attributes, std::vector<Grid1D>* grids_1d,
                    std::vector<Grid2D>* grids_2d,
                    const ConsistencyOptions& options) {
  FELIP_CHECK(grids_1d != nullptr && grids_2d != nullptr);
  FELIP_CHECK(options.rounds >= 1);
  const auto clamp_all = [&]() {
    for (Grid1D& g : *grids_1d) {
      NormalizeFrequencies(g.mutable_frequencies(), options.normalization);
    }
    for (Grid2D& g : *grids_2d) {
      NormalizeFrequencies(g.mutable_frequencies(), options.normalization);
    }
  };
  for (int round = 0; round < options.rounds; ++round) {
    for (uint32_t a = 0; a < num_attributes; ++a) {
      MakeAttributeConsistent(a, grids_1d, grids_2d);
    }
    clamp_all();
  }
}

}  // namespace felip::post
