// Norm-Sub negativity removal (Algorithm 1).
//
// LDP estimates are unbiased but individually noisy, so many are negative
// and they rarely sum to exactly 1. Norm-Sub repeatedly clamps negatives to
// zero and shifts the remaining positives uniformly until the vector is a
// proper distribution.

#ifndef FELIP_POST_NORM_SUB_H_
#define FELIP_POST_NORM_SUB_H_

#include <optional>
#include <string_view>
#include <vector>

namespace felip::post {

struct NormSubOptions {
  double target_sum = 1.0;
  double tolerance = 1e-12;
  int max_iterations = 10000;
};

// In-place Norm-Sub. Postconditions: every entry >= 0 and the entries sum
// to target_sum (within tolerance). If every entry is clamped away the mass
// is distributed uniformly.
void RemoveNegativity(std::vector<double>* frequencies,
                      const NormSubOptions& options = {});

// Alternative normalizations studied by CALM (Zhang et al., CCS'18). All
// share Norm-Sub's postconditions except Norm-Cut, which does not add mass
// when the clamped sum falls below the target.
enum class Normalization {
  kNormSub,  // clamp negatives, shift positives uniformly (Algorithm 1)
  kNormMul,  // clamp negatives, scale positives multiplicatively
  kNormCut,  // clamp negatives, zero the smallest positives until <= target
};

// Dispatches to the selected normalization, in place.
void NormalizeFrequencies(std::vector<double>* frequencies,
                          Normalization method,
                          const NormSubOptions& options = {});

// Stable short name of `method` ("sub", "mul", "cut") — the spelling the
// --normalization CLI flags use on felip_server and felip_replay.
std::string_view NormalizationName(Normalization method);

// Inverse of NormalizationName; nullopt for anything else.
std::optional<Normalization> ParseNormalization(std::string_view name);

}  // namespace felip::post

#endif  // FELIP_POST_NORM_SUB_H_
