#include "felip/post/norm_sub.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "felip/common/check.h"

namespace felip::post {

void RemoveNegativity(std::vector<double>* frequencies,
                      const NormSubOptions& options) {
  FELIP_CHECK(frequencies != nullptr);
  FELIP_CHECK(!frequencies->empty());
  FELIP_CHECK(options.target_sum >= 0.0);
  std::vector<double>& f = *frequencies;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool any_negative = false;
    double positive_sum = 0.0;
    uint64_t positive_count = 0;
    for (double& v : f) {
      if (v < 0.0) {
        v = 0.0;
        any_negative = true;
      } else if (v > 0.0) {
        positive_sum += v;
        ++positive_count;
      }
    }
    const double diff = options.target_sum - positive_sum;
    if (!any_negative && std::fabs(diff) <= options.tolerance) return;
    if (positive_count == 0) {
      // Everything was clamped: fall back to the uniform distribution.
      const double uniform =
          options.target_sum / static_cast<double>(f.size());
      for (double& v : f) v = uniform;
      return;
    }
    const double shift = diff / static_cast<double>(positive_count);
    for (double& v : f) {
      if (v > 0.0) v += shift;
    }
  }
  // Max iterations reached (possible when a tiny positive entry flips sign
  // each round): finish with a plain clamp-and-rescale, which preserves the
  // postconditions at the cost of exactness of the shift rule.
  double sum = 0.0;
  for (double& v : f) {
    if (v < 0.0) v = 0.0;
    sum += v;
  }
  if (sum <= 0.0) {
    const double uniform = options.target_sum / static_cast<double>(f.size());
    for (double& v : f) v = uniform;
    return;
  }
  for (double& v : f) v *= options.target_sum / sum;
}

namespace {

void NormMul(std::vector<double>* frequencies,
             const NormSubOptions& options) {
  std::vector<double>& f = *frequencies;
  double sum = 0.0;
  for (double& v : f) {
    if (v < 0.0) v = 0.0;
    sum += v;
  }
  if (sum <= 0.0) {
    const double uniform = options.target_sum / static_cast<double>(f.size());
    for (double& v : f) v = uniform;
    return;
  }
  const double scale = options.target_sum / sum;
  for (double& v : f) v *= scale;
}

void NormCut(std::vector<double>* frequencies,
             const NormSubOptions& options) {
  std::vector<double>& f = *frequencies;
  double sum = 0.0;
  for (double& v : f) {
    if (v < 0.0) v = 0.0;
    sum += v;
  }
  if (sum <= options.target_sum) return;  // Norm-Cut never adds mass
  // Zero the smallest positive entries until the sum drops to the target;
  // the entry that crosses the boundary is partially kept.
  std::vector<size_t> order(f.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return f[a] < f[b]; });
  for (const size_t idx : order) {
    if (f[idx] <= 0.0) continue;
    const double excess = sum - options.target_sum;
    if (excess <= 0.0) break;
    const double removed = std::min(f[idx], excess);
    f[idx] -= removed;
    sum -= removed;
  }
}

}  // namespace

void NormalizeFrequencies(std::vector<double>* frequencies,
                          Normalization method,
                          const NormSubOptions& options) {
  FELIP_CHECK(frequencies != nullptr);
  FELIP_CHECK(!frequencies->empty());
  switch (method) {
    case Normalization::kNormSub:
      RemoveNegativity(frequencies, options);
      return;
    case Normalization::kNormMul:
      NormMul(frequencies, options);
      return;
    case Normalization::kNormCut:
      NormCut(frequencies, options);
      return;
  }
  FELIP_CHECK_MSG(false, "unknown normalization");
}

std::string_view NormalizationName(Normalization method) {
  switch (method) {
    case Normalization::kNormSub:
      return "sub";
    case Normalization::kNormMul:
      return "mul";
    case Normalization::kNormCut:
      return "cut";
  }
  FELIP_CHECK_MSG(false, "unknown normalization");
  return "";
}

std::optional<Normalization> ParseNormalization(std::string_view name) {
  if (name == "sub") return Normalization::kNormSub;
  if (name == "mul") return Normalization::kNormMul;
  if (name == "cut") return Normalization::kNormCut;
  return std::nullopt;
}

}  // namespace felip::post
