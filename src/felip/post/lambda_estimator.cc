#include "felip/post/lambda_estimator.h"

#include <algorithm>
#include <cmath>

#include "felip/common/check.h"
#include "felip/common/numeric.h"

namespace felip::post {

uint32_t PairIndex(uint32_t i, uint32_t j, uint32_t lambda) {
  FELIP_CHECK(i < j && j < lambda);
  return static_cast<uint32_t>(PairRank(i, j, lambda));
}

std::vector<double> FitSignCombinations(
    uint32_t lambda, const std::vector<double>& pair_answers,
    const LambdaEstimatorOptions& options) {
  FELIP_CHECK(lambda >= 2);
  FELIP_CHECK_MSG(lambda <= 20, "2^lambda table would be too large");
  FELIP_CHECK(pair_answers.size() == Choose2(lambda));

  const uint32_t size = 1u << lambda;
  std::vector<double> z(size, 1.0 / static_cast<double>(size));

  // Clamp the noisy 2-D answers into [0, 1].
  std::vector<double> targets(pair_answers.size());
  for (size_t i = 0; i < pair_answers.size(); ++i) {
    targets[i] = std::clamp(pair_answers[i], 0.0, 1.0);
  }

  // Enumerate constrained index sets once: for pair (i, j), the entries
  // with bits i and j set.
  std::vector<std::vector<uint32_t>> constrained(pair_answers.size());
  for (uint32_t i = 0; i < lambda; ++i) {
    for (uint32_t j = i + 1; j < lambda; ++j) {
      std::vector<uint32_t>& set = constrained[PairIndex(i, j, lambda)];
      const uint32_t need = (1u << i) | (1u << j);
      for (uint32_t mask = 0; mask < size; ++mask) {
        if ((mask & need) == need) set.push_back(mask);
      }
    }
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double total_change = 0.0;
    for (size_t c = 0; c < constrained.size(); ++c) {
      double sum = 0.0;
      for (const uint32_t mask : constrained[c]) sum += z[mask];
      if (sum <= 0.0) continue;  // Algorithm 4 line 6: skip Y == 0
      const double scale = targets[c] / sum;
      if (scale == 1.0) continue;
      for (const uint32_t mask : constrained[c]) {
        const double updated = z[mask] * scale;
        total_change += std::fabs(updated - z[mask]);
        z[mask] = updated;
      }
    }
    if (total_change < options.threshold) break;
  }
  return z;
}

double EstimateLambdaQuery(uint32_t lambda,
                           const std::vector<double>& pair_answers,
                           const LambdaEstimatorOptions& options) {
  if (lambda == 2) {
    FELIP_CHECK(pair_answers.size() == 1);
    return std::clamp(pair_answers[0], 0.0, 1.0);
  }
  const std::vector<double> z = FitSignCombinations(lambda, pair_answers,
                                                    options);
  return z[(1u << lambda) - 1];
}

double EstimateLambdaQueryQuadrants(
    uint32_t lambda, const std::vector<double>& pair_answers,
    const std::vector<double>& marginal_answers,
    const LambdaEstimatorOptions& options) {
  FELIP_CHECK(lambda >= 2);
  FELIP_CHECK_MSG(lambda <= 20, "2^lambda table would be too large");
  FELIP_CHECK(pair_answers.size() == Choose2(lambda));
  FELIP_CHECK(marginal_answers.size() == lambda);
  if (lambda == 2) return std::clamp(pair_answers[0], 0.0, 1.0);

  const uint32_t size = 1u << lambda;
  std::vector<double> z(size, 1.0 / static_cast<double>(size));

  // Four constraints per pair, one per sign quadrant; targets follow from
  // inclusion–exclusion and are clamped into a consistent simplex.
  struct Constraint {
    std::vector<uint32_t> masks;
    double target;
  };
  std::vector<Constraint> constraints;
  constraints.reserve(4 * pair_answers.size());
  for (uint32_t i = 0; i < lambda; ++i) {
    for (uint32_t j = i + 1; j < lambda; ++j) {
      const double f = std::clamp(pair_answers[PairIndex(i, j, lambda)],
                                  0.0, 1.0);
      const double mi = std::clamp(marginal_answers[i], f, 1.0);
      const double mj = std::clamp(marginal_answers[j], f, 1.0);
      double t11 = f;
      double t10 = mi - f;
      double t01 = mj - f;
      double t00 = std::max(0.0, 1.0 - mi - mj + f);
      // Renormalize the quadrant targets so each pair's constraints are
      // mutually consistent (sum to 1).
      const double total = t11 + t10 + t01 + t00;
      if (total > 0.0) {
        t11 /= total;
        t10 /= total;
        t01 /= total;
        t00 /= total;
      }
      const uint32_t bit_i = 1u << i;
      const uint32_t bit_j = 1u << j;
      Constraint c11{{}, t11};
      Constraint c10{{}, t10};
      Constraint c01{{}, t01};
      Constraint c00{{}, t00};
      for (uint32_t mask = 0; mask < size; ++mask) {
        const bool has_i = (mask & bit_i) != 0;
        const bool has_j = (mask & bit_j) != 0;
        if (has_i && has_j) {
          c11.masks.push_back(mask);
        } else if (has_i) {
          c10.masks.push_back(mask);
        } else if (has_j) {
          c01.masks.push_back(mask);
        } else {
          c00.masks.push_back(mask);
        }
      }
      constraints.push_back(std::move(c11));
      constraints.push_back(std::move(c10));
      constraints.push_back(std::move(c01));
      constraints.push_back(std::move(c00));
    }
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double total_change = 0.0;
    for (const Constraint& c : constraints) {
      double sum = 0.0;
      for (const uint32_t mask : c.masks) sum += z[mask];
      if (sum <= 0.0) continue;
      const double scale = c.target / sum;
      if (scale == 1.0) continue;
      for (const uint32_t mask : c.masks) {
        const double updated = z[mask] * scale;
        total_change += std::fabs(updated - z[mask]);
        z[mask] = updated;
      }
    }
    if (total_change < options.threshold) break;
  }
  return z[size - 1];
}

}  // namespace felip::post
