// Per-grid size optimization and adaptive protocol selection
// (Sections 5.2 and 5.3).
//
// For every grid, FELIP minimizes the modeled squared error
//   E = non_uniformity^2 + noise_and_sampling
// over the grid dimensions, separately under every enabled protocol, then
// picks the protocol whose optimum has the smaller predicted error — the
// Adaptive Frequency Oracle. The error models are Eqs. 3-12 of the paper,
// generalized through the protocol registry (fo/registry.h): each
// protocol's traits supply the per-cell noise unit U(total_cells) and the
// derivative bracket the solvers evaluate, so adding a protocol never
// touches this layer. Closed forms are used where the stationarity
// condition is solvable (domain-independent noise, 1-D and categorical x
// numerical), bisection on the analytic partial derivative otherwise, and
// alternating bisection for the numerical x numerical two-variable system.
//
// When `report_budget_bytes` is set, AFO scores communication alongside
// error: each candidate plan carries the wire bytes of one report, the
// best within-budget plan wins, and if no protocol fits the budget the
// cheapest report wins (predicted error breaking ties).
//
// Note: the paper's printed Eq. 6 (the GRR 1-D derivative) contains two
// typos (a stray `ms` factor and an unsquared alpha_1); we use the correct
// derivative of Eq. 4: dE/dl = -2*a1^2/l^3 + r*m*(e^eps + 2l - 2)/(n*(e^eps-1)^2).

#ifndef FELIP_GRID_OPTIMIZER_H_
#define FELIP_GRID_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "felip/fo/protocol.h"
#include "felip/fo/registry.h"

namespace felip::grid {

// One grid axis: attribute domain size and kind. Categorical axes always
// get one cell per value; numerical (ordinal) axes are optimized.
struct AxisSpec {
  uint32_t domain = 1;
  bool categorical = false;
};

struct OptimizeParams {
  double epsilon = 1.0;
  uint64_t n = 0;  // total user population
  uint64_t m = 1;  // number of user groups (grids)
  double alpha1 = 0.7;
  double alpha2 = 0.03;
  // Expected per-axis query selectivity (fraction of the domain selected);
  // the aggregator may plug in prior workload knowledge here.
  double rx = 0.5;
  double ry = 0.5;
  // Protocols AFO may choose between. At least one must be enabled.
  bool allow_grr = true;
  bool allow_olh = true;
  bool allow_oue = false;
  bool allow_pgr = false;
  bool allow_fldp = false;
  // Per-report communication budget in wire-body bytes; 0 = unconstrained
  // (pure error minimization, the paper's AFO).
  uint64_t report_budget_bytes = 0;
  // Per-protocol options the error and report-size models evaluate under
  // (FLDP's subset size changes both).
  fo::ProtocolOptions protocol_options;
};

// The optimizer's decision for one grid.
struct GridPlan {
  uint32_t lx = 1;
  uint32_t ly = 1;  // stays 1 for 1-D grids
  fo::Protocol protocol = fo::Protocol::kOlh;
  double predicted_error = 0.0;  // modeled squared error at (lx, ly)
  uint64_t report_bytes = 0;     // wire-body bytes of one report at (lx, ly)
};

// --- Error models (exposed for tests and the ablation benches) ---

// Squared noise+sampling error of answering a query that touches
// `cells_in_query` cells of a grid with `total_cells` cells, collected from
// n/m users under `protocol` (Eqs. 7-8 specialized by the caller).
double NoiseError(fo::Protocol protocol, double epsilon, uint64_t n,
                  uint64_t m, double total_cells, double cells_in_query,
                  const fo::ProtocolOptions& options = {});

// Full modeled squared error of a 1-D numerical grid with l cells (Eqs. 3-4).
double Error1DNumerical(fo::Protocol protocol, const OptimizeParams& params,
                        double l);

// Full modeled squared error of a numerical x numerical 2-D grid (Eqs. 9-10).
double Error2DNumNum(fo::Protocol protocol, const OptimizeParams& params,
                     double lx, double ly);

// Full modeled squared error of a numerical(x) x categorical(y) 2-D grid
// with the categorical axis fixed at ly cells (Eqs. 11-12).
double Error2DNumCat(fo::Protocol protocol, const OptimizeParams& params,
                     double lx, double ly);

// Full modeled squared error of a categorical grid (1-D with l = d, or 2-D
// with lx = dx, ly = dy): pure noise, no non-uniformity term.
double ErrorCategorical(fo::Protocol protocol, const OptimizeParams& params,
                        double total_cells, double cells_in_query);

// --- Optimizers ---

// Plans a 1-D grid for `axis`. Categorical axes get lx = domain.
GridPlan Optimize1D(const AxisSpec& axis, const OptimizeParams& params);

// Plans a 2-D grid for the (x, y) axes, handling all four kind
// combinations. `params.rx`/`ry` are the selectivities along x and y.
GridPlan Optimize2D(const AxisSpec& x, const AxisSpec& y,
                    const OptimizeParams& params);

}  // namespace felip::grid

#endif  // FELIP_GRID_OPTIMIZER_H_
