#include "felip/grid/grid.h"

#include <algorithm>

#include "felip/common/check.h"

namespace felip::grid {

AxisSelection AxisSelection::MakeRange(uint32_t lo, uint32_t hi) {
  FELIP_CHECK(lo <= hi);
  AxisSelection s;
  s.is_range_ = true;
  s.lo_ = lo;
  s.hi_ = hi;
  return s;
}

AxisSelection AxisSelection::MakeSet(std::vector<uint32_t> values) {
  FELIP_CHECK_MSG(!values.empty(), "IN selection must list at least 1 value");
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  AxisSelection s;
  s.is_range_ = false;
  s.values_ = std::move(values);
  return s;
}

AxisSelection AxisSelection::MakeAll(uint32_t domain) {
  FELIP_CHECK(domain >= 1);
  return MakeRange(0, domain - 1);
}

bool AxisSelection::Contains(uint32_t value) const {
  if (is_range_) return value >= lo_ && value <= hi_;
  return std::binary_search(values_.begin(), values_.end(), value);
}

uint64_t AxisSelection::SelectedCount(uint32_t domain) const {
  if (is_range_) {
    const uint32_t hi = std::min(hi_, domain - 1);
    if (lo_ > hi) return 0;
    return static_cast<uint64_t>(hi) - lo_ + 1;
  }
  return values_.size();
}

double AxisSelection::CoverageOfCell(const Partition1D& partition,
                                     uint32_t cell) const {
  return CoverageOfInterval(partition.CellBegin(cell),
                            partition.CellEnd(cell));
}

double AxisSelection::CoverageOfInterval(uint32_t begin, uint32_t end) const {
  FELIP_CHECK(begin < end);
  if (is_range_) {
    const uint32_t ov_lo = std::max(begin, lo_);
    const uint32_t ov_hi = std::min(end - 1, hi_);
    if (ov_lo > ov_hi) return 0.0;
    return static_cast<double>(ov_hi - ov_lo + 1) /
           static_cast<double>(end - begin);
  }
  const auto first = std::lower_bound(values_.begin(), values_.end(), begin);
  const auto last = std::lower_bound(values_.begin(), values_.end(), end);
  const auto inside = static_cast<double>(last - first);
  return inside / static_cast<double>(end - begin);
}

Grid1D::Grid1D(uint32_t attr, Partition1D partition)
    : attr_(attr),
      partition_(partition),
      frequencies_(partition.num_cells(), 0.0) {}

void Grid1D::SetFrequencies(std::vector<double> frequencies) {
  FELIP_CHECK(frequencies.size() == partition_.num_cells());
  frequencies_ = std::move(frequencies);
}

double Grid1D::Answer(const AxisSelection& selection) const {
  double total = 0.0;
  for (uint32_t c = 0; c < partition_.num_cells(); ++c) {
    const double cover = selection.CoverageOfCell(partition_, c);
    if (cover > 0.0) total += frequencies_[c] * cover;
  }
  return total;
}

Grid2D::Grid2D(uint32_t attr_x, uint32_t attr_y, Partition1D px,
               Partition1D py)
    : attr_x_(attr_x),
      attr_y_(attr_y),
      px_(px),
      py_(py),
      frequencies_(static_cast<size_t>(px.num_cells()) * py.num_cells(),
                   0.0) {
  FELIP_CHECK_MSG(attr_x != attr_y, "2-D grid needs two distinct attributes");
}

uint32_t Grid2D::CellIndex(uint32_t cx, uint32_t cy) const {
  FELIP_CHECK(cx < px_.num_cells());
  FELIP_CHECK(cy < py_.num_cells());
  return cx * py_.num_cells() + cy;
}

uint32_t Grid2D::CellOf(uint32_t value_x, uint32_t value_y) const {
  return CellIndex(px_.CellOf(value_x), py_.CellOf(value_y));
}

void Grid2D::SetFrequencies(std::vector<double> frequencies) {
  FELIP_CHECK(frequencies.size() ==
              static_cast<size_t>(px_.num_cells()) * py_.num_cells());
  frequencies_ = std::move(frequencies);
}

double Grid2D::Answer(const AxisSelection& sel_x,
                      const AxisSelection& sel_y) const {
  // Precompute per-axis coverage; the answer is a weighted double sum.
  std::vector<double> cover_x(px_.num_cells());
  std::vector<double> cover_y(py_.num_cells());
  for (uint32_t cx = 0; cx < px_.num_cells(); ++cx) {
    cover_x[cx] = sel_x.CoverageOfCell(px_, cx);
  }
  for (uint32_t cy = 0; cy < py_.num_cells(); ++cy) {
    cover_y[cy] = sel_y.CoverageOfCell(py_, cy);
  }
  double total = 0.0;
  for (uint32_t cx = 0; cx < px_.num_cells(); ++cx) {
    if (cover_x[cx] == 0.0) continue;
    const double* row = &frequencies_[static_cast<size_t>(cx) * py_.num_cells()];
    double row_sum = 0.0;
    for (uint32_t cy = 0; cy < py_.num_cells(); ++cy) {
      if (cover_y[cy] == 0.0) continue;
      row_sum += row[cy] * cover_y[cy];
    }
    total += row_sum * cover_x[cx];
  }
  return total;
}

}  // namespace felip::grid
