// 1-D domain partition with unequal cell sizes.
//
// FELIP deliberately allows cells within a grid to differ in size so the
// optimizer's cell count never has to be rounded to a divisor (or power of
// two) of the domain — the limitation of TDG/HDG discussed in Section 3.2.
// Partition1D splits a domain of `d` ordinal values into `l` cells whose
// sizes are floor(d/l) or ceil(d/l), spread evenly: cell i covers
// [floor(i*d/l), floor((i+1)*d/l)).

#ifndef FELIP_GRID_PARTITION_H_
#define FELIP_GRID_PARTITION_H_

#include <cstdint>
#include <vector>

namespace felip::grid {

class Partition1D {
 public:
  // Requires 1 <= num_cells <= domain.
  Partition1D(uint32_t domain, uint32_t num_cells);

  uint32_t domain() const { return domain_; }
  uint32_t num_cells() const { return num_cells_; }

  // First value covered by `cell` (inclusive).
  uint32_t CellBegin(uint32_t cell) const;
  // One past the last value covered by `cell` (exclusive).
  uint32_t CellEnd(uint32_t cell) const;
  uint32_t CellSize(uint32_t cell) const;

  // Index of the cell containing `value`.
  uint32_t CellOf(uint32_t value) const;

  // Fraction of `cell`'s values that lie inside the inclusive range
  // [lo, hi]; in [0, 1]. Used when answering range queries under the
  // within-cell uniformity assumption.
  double OverlapFraction(uint32_t cell, uint32_t lo, uint32_t hi) const;

  // The num_cells + 1 boundary values: boundaries()[i] == CellBegin(i) and
  // boundaries().back() == domain.
  std::vector<uint32_t> Boundaries() const;

  friend bool operator==(const Partition1D&, const Partition1D&) = default;

 private:
  uint32_t domain_;
  uint32_t num_cells_;
};

// Merges the boundary sets of several partitions over the same domain and
// returns the sorted unique boundary list of the common refinement (always
// includes 0 and the domain size).
std::vector<uint32_t> CommonRefinementBoundaries(
    const std::vector<const Partition1D*>& partitions);

}  // namespace felip::grid

#endif  // FELIP_GRID_PARTITION_H_
