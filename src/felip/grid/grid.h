// 1-D and 2-D grid containers.
//
// A grid binds one or two attributes to Partition1D axes and, after
// collection and estimation, holds one frequency per cell. Answering a
// selection from a grid uses the within-cell uniformity assumption: a cell
// contributes its frequency scaled by the fraction of its values that the
// selection covers (Section 5.2, "non-uniformity error").

#ifndef FELIP_GRID_GRID_H_
#define FELIP_GRID_GRID_H_

#include <cstdint>
#include <vector>

#include "felip/grid/partition.h"

namespace felip::grid {

// A per-axis selection: either an inclusive ordinal range (BETWEEN) or an
// explicit value set (IN / =). Point queries are one-element ranges.
class AxisSelection {
 public:
  static AxisSelection MakeRange(uint32_t lo, uint32_t hi);
  static AxisSelection MakeSet(std::vector<uint32_t> values);
  // Selects the whole domain (used when an attribute is not constrained).
  static AxisSelection MakeAll(uint32_t domain);

  bool is_range() const { return is_range_; }
  uint32_t lo() const { return lo_; }
  uint32_t hi() const { return hi_; }
  const std::vector<uint32_t>& values() const { return values_; }

  bool Contains(uint32_t value) const;

  // Number of domain values selected (assumes set values are within the
  // domain, which the query layer guarantees).
  uint64_t SelectedCount(uint32_t domain) const;

  // Fraction of `cell`'s values covered by this selection, in [0, 1].
  double CoverageOfCell(const Partition1D& partition, uint32_t cell) const;

  // Fraction of the half-open value interval [begin, end) covered by this
  // selection, in [0, 1]. Requires begin < end.
  double CoverageOfInterval(uint32_t begin, uint32_t end) const;

 private:
  AxisSelection() = default;

  bool is_range_ = true;
  uint32_t lo_ = 0;
  uint32_t hi_ = 0;
  std::vector<uint32_t> values_;  // sorted, deduplicated (set form only)
};

// A one-attribute grid.
class Grid1D {
 public:
  Grid1D(uint32_t attr, Partition1D partition);

  uint32_t attr() const { return attr_; }
  const Partition1D& partition() const { return partition_; }
  uint32_t num_cells() const { return partition_.num_cells(); }

  uint32_t CellOf(uint32_t value) const { return partition_.CellOf(value); }

  // Frequencies are set by the aggregator after estimation.
  void SetFrequencies(std::vector<double> frequencies);
  const std::vector<double>& frequencies() const { return frequencies_; }
  std::vector<double>* mutable_frequencies() { return &frequencies_; }

  // Estimated frequency of `selection` under within-cell uniformity.
  double Answer(const AxisSelection& selection) const;

 private:
  uint32_t attr_;
  Partition1D partition_;
  std::vector<double> frequencies_;  // size num_cells()
};

// A two-attribute grid; cells are stored row-major (x-major).
class Grid2D {
 public:
  Grid2D(uint32_t attr_x, uint32_t attr_y, Partition1D px, Partition1D py);

  uint32_t attr_x() const { return attr_x_; }
  uint32_t attr_y() const { return attr_y_; }
  const Partition1D& px() const { return px_; }
  const Partition1D& py() const { return py_; }
  uint32_t num_cells() const { return px_.num_cells() * py_.num_cells(); }

  uint32_t CellIndex(uint32_t cx, uint32_t cy) const;
  uint32_t CellOf(uint32_t value_x, uint32_t value_y) const;

  void SetFrequencies(std::vector<double> frequencies);
  const std::vector<double>& frequencies() const { return frequencies_; }
  std::vector<double>* mutable_frequencies() { return &frequencies_; }

  // Estimated frequency of the conjunction of two per-axis selections
  // under within-cell uniformity.
  double Answer(const AxisSelection& sel_x, const AxisSelection& sel_y) const;

 private:
  uint32_t attr_x_;
  uint32_t attr_y_;
  Partition1D px_;
  Partition1D py_;
  std::vector<double> frequencies_;  // size num_cells()
};

}  // namespace felip::grid

#endif  // FELIP_GRID_GRID_H_
