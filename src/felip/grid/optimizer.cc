#include "felip/grid/optimizer.h"

#include <algorithm>
#include <cmath>

#include "felip/common/check.h"
#include "felip/common/numeric.h"

namespace felip::grid {

namespace {

using fo::GetTraits;
using fo::Protocol;
using fo::ProtocolOptions;

constexpr double kMinSelectivity = 1e-3;

double ClampSelectivity(double r) {
  return std::clamp(r, kMinSelectivity, 1.0);
}

// m / (n (e^eps - 1)^2) — the factor shared by all noise terms.
double BaseNoiseFactor(double epsilon, uint64_t n, uint64_t m) {
  const double e = std::exp(epsilon);
  return static_cast<double>(m) /
         (static_cast<double>(n) * (e - 1.0) * (e - 1.0));
}

void ValidateParams(const OptimizeParams& params) {
  FELIP_CHECK(params.epsilon > 0.0);
  FELIP_CHECK(params.n > 0);
  FELIP_CHECK(params.m > 0);
  FELIP_CHECK_MSG(params.allow_grr || params.allow_olh || params.allow_oue ||
                      params.allow_pgr || params.allow_fldp,
                  "AFO needs at least one enabled protocol");
}

std::vector<Protocol> EnabledProtocols(const OptimizeParams& params) {
  std::vector<Protocol> protocols;
  if (params.allow_grr) protocols.push_back(Protocol::kGrr);
  if (params.allow_olh) protocols.push_back(Protocol::kOlh);
  if (params.allow_oue) protocols.push_back(Protocol::kOue);
  if (params.allow_pgr) protocols.push_back(Protocol::kPgr);
  if (params.allow_fldp) protocols.push_back(Protocol::kFldp);
  return protocols;
}

// Derivative of the noise term with respect to lx for the 2-D models, with
// `ly` (and its selectivity) folded into `row_factor` = rx*ly*ry. The
// registry's derivative bracket is d/dT [T * U(T)] at T = lx*ly.
double NoiseDerivative2D(Protocol protocol, double epsilon, uint64_t n,
                         uint64_t m, double lx, double ly, double row_factor,
                         const ProtocolOptions& options) {
  const double base = BaseNoiseFactor(epsilon, n, m);
  const double bracket =
      GetTraits(protocol).noise_unit_derivative(epsilon, lx * ly, options);
  return row_factor * base * bracket;
}

// True when the protocol's noise unit is constant in the cell count, which
// unlocks the cube-root closed forms; `e_u` is then U/4, the value that
// slots into the closed forms where the paper's derivation has e^eps
// (OLH/OUE have U = 4 e^eps, so this is exactly e^eps for them).
bool DomainFreeNoise(Protocol protocol) {
  return GetTraits(protocol).domain_free_noise;
}

double ClosedFormE(Protocol protocol, double epsilon,
                   const ProtocolOptions& options) {
  return 0.25 * GetTraits(protocol).noise_unit(epsilon, 1.0, options);
}

}  // namespace

double NoiseError(Protocol protocol, double epsilon, uint64_t n, uint64_t m,
                  double total_cells, double cells_in_query,
                  const ProtocolOptions& options) {
  const double base = BaseNoiseFactor(epsilon, n, m);
  const double unit =
      GetTraits(protocol).noise_unit(epsilon, total_cells, options);
  return cells_in_query * base * unit;
}

double Error1DNumerical(Protocol protocol, const OptimizeParams& params,
                        double l) {
  const double r = ClampSelectivity(params.rx);
  const double non_uniformity = params.alpha1 / l;
  return non_uniformity * non_uniformity +
         NoiseError(protocol, params.epsilon, params.n, params.m, l, l * r,
                    params.protocol_options);
}

double Error2DNumNum(Protocol protocol, const OptimizeParams& params,
                     double lx, double ly) {
  const double rx = ClampSelectivity(params.rx);
  const double ry = ClampSelectivity(params.ry);
  const double non_uniformity =
      2.0 * params.alpha2 * (lx * rx + ly * ry) / (lx * ly);
  return non_uniformity * non_uniformity +
         NoiseError(protocol, params.epsilon, params.n, params.m, lx * ly,
                    lx * rx * ly * ry, params.protocol_options);
}

double Error2DNumCat(Protocol protocol, const OptimizeParams& params,
                     double lx, double ly) {
  const double rx = ClampSelectivity(params.rx);
  const double ry = ClampSelectivity(params.ry);
  const double non_uniformity = 2.0 * params.alpha2 * ry / lx;
  return non_uniformity * non_uniformity +
         NoiseError(protocol, params.epsilon, params.n, params.m, lx * ly,
                    lx * rx * ly * ry, params.protocol_options);
}

double ErrorCategorical(Protocol protocol, const OptimizeParams& params,
                        double total_cells, double cells_in_query) {
  return NoiseError(protocol, params.epsilon, params.n, params.m, total_cells,
                    cells_in_query, params.protocol_options);
}

namespace {

// Optimal real-valued l for a 1-D numerical grid under `protocol`.
double Solve1D(Protocol protocol, const OptimizeParams& params,
               uint32_t domain) {
  const double r = ClampSelectivity(params.rx);
  const double e = std::exp(params.epsilon);
  const double a1 = params.alpha1;
  const double lo = 1.0;
  const double hi = static_cast<double>(domain);
  if (DomainFreeNoise(protocol)) {
    // Eq. 5: closed form from -2 a1^2/l^3 + U m r / (n(e-1)^2) = 0, with
    // the unit folded in as e_u = U/4.
    const double e_u =
        ClosedFormE(protocol, params.epsilon, params.protocol_options);
    const double l =
        std::cbrt(static_cast<double>(params.n) * a1 * a1 * (e - 1.0) *
                  (e - 1.0) /
                  (2.0 * static_cast<double>(params.m) * r * e_u));
    return std::clamp(l, lo, hi);
  }
  // Domain-dependent noise: bisect the analytic derivative of Eq. 4 using
  // the registry's derivative bracket (for GRR: e + 2l - 2).
  const double base = BaseNoiseFactor(params.epsilon, params.n, params.m);
  const auto derivative = [&](double l) {
    const double bracket = GetTraits(protocol).noise_unit_derivative(
        params.epsilon, l, params.protocol_options);
    return -2.0 * a1 * a1 / (l * l * l) + r * base * bracket;
  };
  return Bisect(derivative, lo, hi);
}

// Optimal real-valued lx for a numerical(x) x categorical(y) grid.
double SolveNumCat(Protocol protocol, const OptimizeParams& params,
                   uint32_t domain_x, double ly) {
  const double rx = ClampSelectivity(params.rx);
  const double ry = ClampSelectivity(params.ry);
  const double e = std::exp(params.epsilon);
  const double a2 = params.alpha2;
  const double lo = 1.0;
  const double hi = static_cast<double>(domain_x);
  if (DomainFreeNoise(protocol)) {
    // Closed form from -2 (2 a2 ry)^2 / lx^3 + U m rx ly ry/(n(e-1)^2) = 0.
    const double e_u =
        ClosedFormE(protocol, params.epsilon, params.protocol_options);
    const double l =
        std::cbrt(2.0 * a2 * a2 * ry * static_cast<double>(params.n) *
                  (e - 1.0) * (e - 1.0) /
                  (static_cast<double>(params.m) * e_u * rx * ly));
    return std::clamp(l, lo, hi);
  }
  const auto derivative = [&](double lx) {
    const double t = 2.0 * a2 * ry;
    return -2.0 * t * t / (lx * lx * lx) +
           NoiseDerivative2D(protocol, params.epsilon, params.n, params.m, lx,
                             ly, rx * ly * ry, params.protocol_options);
  };
  return Bisect(derivative, lo, hi);
}

// Partial derivative of the num x num objective with respect to lx at
// (lx, ly); the ly case follows by symmetry (swap axes and selectivities).
double NumNumPartialX(Protocol protocol, const OptimizeParams& params,
                      double lx, double ly) {
  const double rx = ClampSelectivity(params.rx);
  const double ry = ClampSelectivity(params.ry);
  const double a = 2.0 * params.alpha2;
  const double big_n = lx * rx + ly * ry;
  const double d_nonuniform = -2.0 * a * a * big_n * ry / (lx * lx * lx * ly);
  return d_nonuniform +
         NoiseDerivative2D(protocol, params.epsilon, params.n, params.m, lx,
                           ly, rx * ly * ry, params.protocol_options);
}

// Alternating bisection on the two partials of the num x num system.
void SolveNumNum(Protocol protocol, const OptimizeParams& params,
                 uint32_t domain_x, uint32_t domain_y, double* lx,
                 double* ly) {
  const double hix = static_cast<double>(domain_x);
  const double hiy = static_cast<double>(domain_y);
  *lx = std::clamp(*lx, 1.0, hix);
  *ly = std::clamp(*ly, 1.0, hiy);
  OptimizeParams swapped = params;
  std::swap(swapped.rx, swapped.ry);
  for (int iter = 0; iter < 100; ++iter) {
    const double prev_x = *lx;
    const double prev_y = *ly;
    *lx = Bisect(
        [&](double l) { return NumNumPartialX(protocol, params, l, *ly); },
        1.0, hix);
    *ly = Bisect(
        [&](double l) { return NumNumPartialX(protocol, swapped, l, *lx); },
        1.0, hiy);
    if (std::fabs(*lx - prev_x) + std::fabs(*ly - prev_y) < 1e-8) break;
  }
}

// Picks the best integer neighbour of a real-valued 1-D solution.
uint32_t RoundL(double raw, uint32_t domain,
                const std::function<double(double)>& objective) {
  return RoundGridLength(raw, domain, objective);
}

// Wire-body bytes of one report for a plan with lx * ly cells.
uint64_t PlanReportBytes(const GridPlan& plan, const OptimizeParams& params) {
  const uint64_t cells =
      static_cast<uint64_t>(plan.lx) * static_cast<uint64_t>(plan.ly);
  return GetTraits(plan.protocol)
      .report_bytes(params.epsilon, cells, params.protocol_options);
}

// AFO's plan ordering. Unconstrained (budget 0): smallest predicted error,
// earlier protocol winning ties. With a budget: within-budget plans beat
// over-budget ones; among within-budget plans smallest error wins; if
// nothing fits, the cheapest report wins, error breaking ties.
bool BetterPlan(const GridPlan& candidate, const GridPlan& incumbent,
                uint64_t budget) {
  // An infinite predicted error marks a protocol whose construction cannot
  // represent this grid at all (e.g. PGR past its field-order or point-
  // index caps); it must never displace a usable plan — not even as the
  // cheapest-report fallback when nothing fits the budget.
  const bool candidate_usable = std::isfinite(candidate.predicted_error);
  const bool incumbent_usable = std::isfinite(incumbent.predicted_error);
  if (candidate_usable != incumbent_usable) return candidate_usable;
  if (budget == 0) {
    return candidate.predicted_error < incumbent.predicted_error;
  }
  const bool candidate_fits = candidate.report_bytes <= budget;
  const bool incumbent_fits = incumbent.report_bytes <= budget;
  if (candidate_fits != incumbent_fits) return candidate_fits;
  if (candidate_fits) {
    return candidate.predicted_error < incumbent.predicted_error;
  }
  if (candidate.report_bytes != incumbent.report_bytes) {
    return candidate.report_bytes < incumbent.report_bytes;
  }
  return candidate.predicted_error < incumbent.predicted_error;
}

}  // namespace

GridPlan Optimize1D(const AxisSpec& axis, const OptimizeParams& params) {
  ValidateParams(params);
  FELIP_CHECK(axis.domain >= 1);
  GridPlan best;
  bool have_best = false;
  for (const Protocol protocol : EnabledProtocols(params)) {
    GridPlan plan;
    plan.protocol = protocol;
    plan.ly = 1;
    if (axis.categorical || axis.domain == 1) {
      plan.lx = axis.domain;
      const double r = ClampSelectivity(params.rx);
      plan.predicted_error = ErrorCategorical(
          protocol, params, axis.domain, r * static_cast<double>(axis.domain));
    } else {
      const double raw = Solve1D(protocol, params, axis.domain);
      const auto objective = [&](double l) {
        return Error1DNumerical(protocol, params, l);
      };
      plan.lx = RoundL(raw, axis.domain, objective);
      plan.predicted_error = objective(plan.lx);
    }
    plan.report_bytes = PlanReportBytes(plan, params);
    if (!have_best || BetterPlan(plan, best, params.report_budget_bytes)) {
      best = plan;
      have_best = true;
    }
  }
  return best;
}

GridPlan Optimize2D(const AxisSpec& x, const AxisSpec& y,
                    const OptimizeParams& params) {
  ValidateParams(params);
  FELIP_CHECK(x.domain >= 1);
  FELIP_CHECK(y.domain >= 1);
  const bool cat_x = x.categorical || x.domain == 1;
  const bool cat_y = y.categorical || y.domain == 1;
  GridPlan best;
  bool have_best = false;
  for (const Protocol protocol : EnabledProtocols(params)) {
    GridPlan plan;
    plan.protocol = protocol;
    if (cat_x && cat_y) {
      plan.lx = x.domain;
      plan.ly = y.domain;
      const double rx = ClampSelectivity(params.rx);
      const double ry = ClampSelectivity(params.ry);
      plan.predicted_error = ErrorCategorical(
          protocol, params,
          static_cast<double>(x.domain) * static_cast<double>(y.domain),
          rx * x.domain * ry * y.domain);
    } else if (cat_x != cat_y) {
      // One categorical axis: it keeps its full domain; optimize the other.
      // Error2DNumCat treats x as numerical and y as categorical, so swap
      // the view when x is the categorical one.
      OptimizeParams view = params;
      uint32_t num_domain = x.domain;
      uint32_t cat_domain = y.domain;
      if (cat_x) {
        std::swap(view.rx, view.ry);
        num_domain = y.domain;
        cat_domain = x.domain;
      }
      const double ly_fixed = static_cast<double>(cat_domain);
      const double raw = SolveNumCat(protocol, view, num_domain, ly_fixed);
      const auto objective = [&](double l) {
        return Error2DNumCat(protocol, view, l, ly_fixed);
      };
      const uint32_t l_num = RoundL(raw, num_domain, objective);
      plan.predicted_error = objective(l_num);
      plan.lx = cat_x ? cat_domain : l_num;
      plan.ly = cat_x ? l_num : cat_domain;
    } else {
      // Numerical x numerical: alternating bisection, then evaluate the
      // four integer-neighbour combinations.
      double lx = std::cbrt(static_cast<double>(params.n));
      double ly = lx;
      SolveNumNum(protocol, params, x.domain, y.domain, &lx, &ly);
      const auto objective = [&](double a, double b) {
        return Error2DNumNum(protocol, params, a, b);
      };
      uint32_t best_lx = 1;
      uint32_t best_ly = 1;
      double best_err = 0.0;
      bool have = false;
      for (const double cand_x : {std::floor(lx), std::ceil(lx)}) {
        for (const double cand_y : {std::floor(ly), std::ceil(ly)}) {
          const auto ix = static_cast<uint32_t>(
              std::clamp(cand_x, 1.0, static_cast<double>(x.domain)));
          const auto iy = static_cast<uint32_t>(
              std::clamp(cand_y, 1.0, static_cast<double>(y.domain)));
          const double err = objective(ix, iy);
          if (!have || err < best_err) {
            best_lx = ix;
            best_ly = iy;
            best_err = err;
            have = true;
          }
        }
      }
      plan.lx = best_lx;
      plan.ly = best_ly;
      plan.predicted_error = best_err;
    }
    plan.report_bytes = PlanReportBytes(plan, params);
    if (!have_best || BetterPlan(plan, best, params.report_budget_bytes)) {
      best = plan;
      have_best = true;
    }
  }
  return best;
}

}  // namespace felip::grid
