#include "felip/grid/partition.h"

#include <algorithm>

#include "felip/common/check.h"

namespace felip::grid {

Partition1D::Partition1D(uint32_t domain, uint32_t num_cells)
    : domain_(domain), num_cells_(num_cells) {
  FELIP_CHECK(domain >= 1);
  FELIP_CHECK(num_cells >= 1);
  FELIP_CHECK_MSG(num_cells <= domain,
                  "a partition cannot have more cells than domain values");
}

uint32_t Partition1D::CellBegin(uint32_t cell) const {
  FELIP_CHECK(cell < num_cells_);
  return static_cast<uint32_t>(
      (static_cast<uint64_t>(cell) * domain_) / num_cells_);
}

uint32_t Partition1D::CellEnd(uint32_t cell) const {
  FELIP_CHECK(cell < num_cells_);
  return static_cast<uint32_t>(
      (static_cast<uint64_t>(cell + 1) * domain_) / num_cells_);
}

uint32_t Partition1D::CellSize(uint32_t cell) const {
  return CellEnd(cell) - CellBegin(cell);
}

uint32_t Partition1D::CellOf(uint32_t value) const {
  FELIP_CHECK(value < domain_);
  // Inverse of CellBegin's floor(i*d/l): the containing cell is
  // floor(((value+1)*l - 1) / d). Verified exhaustively in tests.
  return static_cast<uint32_t>(
      ((static_cast<uint64_t>(value) + 1) * num_cells_ - 1) / domain_);
}

double Partition1D::OverlapFraction(uint32_t cell, uint32_t lo,
                                    uint32_t hi) const {
  if (lo > hi) return 0.0;
  const uint32_t begin = CellBegin(cell);
  const uint32_t end = CellEnd(cell);  // exclusive
  const uint32_t ov_lo = std::max(begin, lo);
  const uint32_t ov_hi = std::min(end - 1, hi);
  if (ov_lo > ov_hi) return 0.0;
  return static_cast<double>(ov_hi - ov_lo + 1) /
         static_cast<double>(end - begin);
}

std::vector<uint32_t> Partition1D::Boundaries() const {
  std::vector<uint32_t> b(num_cells_ + 1);
  for (uint32_t i = 0; i < num_cells_; ++i) b[i] = CellBegin(i);
  b[num_cells_] = domain_;
  return b;
}

std::vector<uint32_t> CommonRefinementBoundaries(
    const std::vector<const Partition1D*>& partitions) {
  FELIP_CHECK(!partitions.empty());
  const uint32_t domain = partitions[0]->domain();
  std::vector<uint32_t> merged;
  for (const Partition1D* p : partitions) {
    FELIP_CHECK_MSG(p->domain() == domain,
                    "refinement requires equal domains");
    const std::vector<uint32_t> b = p->Boundaries();
    merged.insert(merged.end(), b.begin(), b.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

}  // namespace felip::grid
