// Experiment harness shared by the benchmark binaries and examples.
//
// Provides the method registry (every strategy the paper evaluates, by
// name), MAE scoring, environment-variable scale knobs, and a fixed-width
// series printer that emits one table per figure panel.

#ifndef FELIP_EVAL_HARNESS_H_
#define FELIP_EVAL_HARNESS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "felip/data/dataset.h"
#include "felip/post/norm_sub.h"
#include "felip/query/query.h"

namespace felip::eval {

// Mean absolute error between estimates and exact answers.
double MeanAbsoluteError(const std::vector<double>& estimates,
                         const std::vector<double>& truths);

// Root mean squared error.
double RootMeanSquaredError(const std::vector<double>& estimates,
                            const std::vector<double>& truths);

// Mean relative error with a truth floor: mean(|e - t| / max(t, floor)).
// The floor keeps near-zero true answers from dominating, following common
// LDP evaluation practice.
double MeanRelativeError(const std::vector<double>& estimates,
                         const std::vector<double>& truths,
                         double floor = 0.01);

// Parameters shared by all methods in one experiment run.
struct ExperimentParams {
  double epsilon = 1.0;
  // The aggregator's selectivity prior handed to FELIP's optimizer (the
  // paper's default matches the workload's true selectivity).
  double selectivity_prior = 0.5;
  double alpha1 = 0.7;
  double alpha2 = 0.03;
  uint32_t hio_branching = 4;
  uint32_t olh_seed_pool = 4096;  // 0 => per-user seeds
  // Negativity-removal variant for the FELIP strategies (abl7).
  post::Normalization normalization = post::Normalization::kNormSub;
  uint64_t seed = 1;
};

// Method names understood by RunMethod:
//   "OUG", "OHG"            — FELIP strategies with the adaptive FO
//   "OUG-OLH", "OHG-OLH"    — FELIP strategies restricted to OLH
//   "OHG-GRR"               — FELIP OHG restricted to GRR (ablation)
//   "OHG-OUE"               — FELIP OHG restricted to OUE (ablation)
//   "OHG-BUDGET"            — OHG splitting epsilon instead of users (A1)
//   "OHG-QFIT"              — OHG with the quadrant λ-D fit extension (A8)
//   "HIO", "TDG", "HDG"     — baselines
std::vector<std::string> KnownMethods();

// Runs `method` end-to-end on `dataset` (plan, collect, finalize) and
// answers every query. Aborts on an unknown method name.
std::vector<double> RunMethod(std::string_view method,
                              const data::Dataset& dataset,
                              const std::vector<query::Query>& queries,
                              const ExperimentParams& params);

// Convenience: RunMethod + MAE against the exact answers.
double RunMethodMae(std::string_view method, const data::Dataset& dataset,
                    const std::vector<query::Query>& queries,
                    const std::vector<double>& truths,
                    const ExperimentParams& params);

// --- Environment scale knobs (benches) ---

// FELIP_BENCH_USERS overrides the population size, else `fallback` scaled
// by FELIP_BENCH_SCALE (a double multiplier, default 1.0).
uint64_t BenchUsers(uint64_t fallback);
// FELIP_BENCH_SCALE alone (used by sweeps over n, where an absolute
// override would flatten the sweep).
double BenchScaleFactor();
// FELIP_BENCH_QUERIES overrides the per-point query count.
uint32_t BenchQueries(uint32_t fallback);
// FELIP_BENCH_TRIALS overrides the number of trials averaged per point.
uint32_t BenchTrials(uint32_t fallback);

// --- Output ---

// Prints aligned series tables:
//   === title ===
//   x        OUG      OHG      HIO
//   0.25     0.0123   0.0098   0.1021
class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_label,
              std::vector<std::string> methods);

  void AddRow(const std::string& x, const std::vector<double>& values);

  // Writes the table to stdout.
  void Print() const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> methods_;
  std::vector<std::pair<std::string, std::vector<double>>> rows_;
};

}  // namespace felip::eval

#endif  // FELIP_EVAL_HARNESS_H_
