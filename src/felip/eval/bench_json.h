// Machine-readable perf trajectory artifacts.
//
// Each perf_* bench binary emits one BENCH_<name>.json file describing
// every benchmark it ran: the operation, the workload shape, ns/op and
// bytes/op, the SIMD dispatch level that executed, and the git sha the
// binary was built from. Committed under results/, these files form a
// perf trajectory that tools/bench_diff can compare across revisions
// (see docs/simd.md).
//
// The renderer guarantees STABLE output: fixed key order, fixed number
// formatting, records in insertion order — so artifacts from identical
// runs diff cleanly and the schema round-trips through ParseBenchJson.

#ifndef FELIP_EVAL_BENCH_JSON_H_
#define FELIP_EVAL_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace felip::eval {

// Version stamped into every artifact; bump when the schema changes.
inline constexpr int kBenchJsonSchemaVersion = 1;

// One benchmark result row.
struct BenchRecord {
  std::string op;        // benchmark name, e.g. "BM_BatchScan"
  std::string workload;  // shape, e.g. "users=1000000;queries=10000"
  double ns_per_op = 0.0;
  double bytes_per_op = 0.0;      // 0 when the bench does not measure it
  double items_per_second = 0.0;  // 0 when the bench does not measure it
  uint64_t iterations = 0;
};

// One bench binary's full emission.
struct BenchReport {
  std::string name;      // bench binary name, e.g. "perf_query_engine"
  std::string git_sha;   // from $FELIP_GIT_SHA, else "unknown"
  std::string dispatch;  // SIMD dispatch level name: scalar|avx2|neon
  unsigned threads = 0;  // hardware concurrency of the host
  std::vector<BenchRecord> records;
};

// Fills git_sha (from $FELIP_GIT_SHA), dispatch (active SIMD level), and
// threads for this process. `name` becomes the report name.
BenchReport MakeBenchReport(std::string_view name);

// Renders the stable-ordering JSON document (trailing newline included).
std::string RenderBenchJson(const BenchReport& report);

// Parses a rendered document. Returns false (leaving *out untouched) on
// malformed input or a schema version this binary does not understand.
bool ParseBenchJson(std::string_view json, BenchReport* out);

// How ParseBenchJsonDetailed classified its input.
enum class BenchParseResult {
  kOk,
  kMalformed,             // not a document this renderer produced
  kUnknownSchemaVersion,  // well-formed, but a version we don't speak
};

// Like ParseBenchJson but tells a structurally broken document apart
// from a well-formed one stamped with a schema version this binary does
// not understand — bench_diff needs the distinction to tell the operator
// "rebuild the baseline" instead of "this is not an artifact". On
// kUnknownSchemaVersion, *schema_version_seen (when non-null) receives
// the version the document claimed; it is -1 for the other results.
// *out is filled only on kOk.
BenchParseResult ParseBenchJsonDetailed(std::string_view json,
                                        BenchReport* out,
                                        int* schema_version_seen = nullptr);

// "<dir>/BENCH_<name>.json" (no trailing separator handling beyond the
// obvious; pass a directory without one).
std::string BenchJsonPath(std::string_view dir, std::string_view name);

// Renders and writes atomically-enough for bench use (tmp + rename is
// overkill here; a failed write returns false). Returns true on success.
bool WriteBenchJsonFile(const std::string& path, const BenchReport& report);

// --- Trajectory comparison (tools/bench_diff) ---

// One op present in both reports.
struct BenchDelta {
  std::string op;
  double baseline_ns = 0.0;
  double current_ns = 0.0;
  double ratio = 0.0;       // current / baseline
  bool regression = false;  // ratio > 1 + threshold
};

struct BenchComparison {
  std::vector<BenchDelta> deltas;            // baseline record order
  std::vector<std::string> only_in_baseline;  // ops that disappeared
  std::vector<std::string> only_in_current;   // ops that are new
  int num_regressions = 0;
};

// Matches records by op name and flags ns/op regressions beyond
// `threshold` (0.10 == +10%). Baseline rows with ns_per_op <= 0 never
// flag (nothing meaningful to compare against).
BenchComparison CompareBenchReports(const BenchReport& baseline,
                                    const BenchReport& current,
                                    double threshold);

}  // namespace felip::eval

#endif  // FELIP_EVAL_BENCH_JSON_H_
