#include "felip/eval/bench_json.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "felip/simd/dispatch.h"

namespace felip::eval {

namespace {

// Minimal JSON string escaping for the fields we emit (names and
// workload shapes; no exotic content expected, but stay well-formed).
void AppendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Fixed number format: %.17g round-trips every double bit-exactly, so a
// render -> parse -> render cycle is byte-stable.
void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

// --- Tiny recursive-descent parser for the documents we render. ---
// Tolerates arbitrary whitespace and any key order; unknown keys are
// skipped, so older binaries can read artifacts from newer ones as long
// as the schema version matches.

struct Parser {
  std::string_view s;
  size_t pos = 0;

  void SkipWs() {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos < s.size() && s[pos] == c;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos >= s.size() || s[pos] != '"') return false;
    ++pos;
    out->clear();
    while (pos < s.size() && s[pos] != '"') {
      char c = s[pos];
      if (c == '\\') {
        if (pos + 1 >= s.size()) return false;
        const char esc = s[pos + 1];
        pos += 2;
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos + 4 > s.size()) return false;
            char hex[5] = {s[pos], s[pos + 1], s[pos + 2], s[pos + 3], 0};
            out->push_back(
                static_cast<char>(std::strtoul(hex, nullptr, 16)));
            pos += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
        ++pos;
      }
    }
    if (pos >= s.size()) return false;
    ++pos;  // closing quote
    return true;
  }

  bool ParseNumber(double* out) {
    SkipWs();
    const char* begin = s.data() + pos;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return false;
    pos += static_cast<size_t>(end - begin);
    *out = v;
    return true;
  }

  // Skips any JSON value (for unknown keys).
  bool SkipValue() {
    SkipWs();
    if (pos >= s.size()) return false;
    const char c = s[pos];
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos;
      int depth = 1;
      bool in_string = false;
      while (pos < s.size() && depth > 0) {
        const char d = s[pos];
        if (in_string) {
          if (d == '\\') ++pos;
          else if (d == '"') in_string = false;
        } else if (d == '"') {
          in_string = true;
        } else if (d == c) {
          ++depth;
        } else if (d == close) {
          --depth;
        }
        ++pos;
      }
      return depth == 0;
    }
    double ignored;
    if (ParseNumber(&ignored)) return true;
    // true/false/null
    for (const char* lit : {"true", "false", "null"}) {
      const size_t len = std::strlen(lit);
      if (s.substr(pos, len) == lit) {
        pos += len;
        return true;
      }
    }
    return false;
  }
};

bool ParseRecord(Parser* p, BenchRecord* r) {
  if (!p->Consume('{')) return false;
  bool first = true;
  while (!p->Peek('}')) {
    if (!first && !p->Consume(',')) return false;
    first = false;
    std::string key;
    if (!p->ParseString(&key) || !p->Consume(':')) return false;
    if (key == "op") {
      if (!p->ParseString(&r->op)) return false;
    } else if (key == "workload") {
      if (!p->ParseString(&r->workload)) return false;
    } else if (key == "ns_per_op") {
      if (!p->ParseNumber(&r->ns_per_op)) return false;
    } else if (key == "bytes_per_op") {
      if (!p->ParseNumber(&r->bytes_per_op)) return false;
    } else if (key == "items_per_second") {
      if (!p->ParseNumber(&r->items_per_second)) return false;
    } else if (key == "iterations") {
      double v;
      if (!p->ParseNumber(&v)) return false;
      r->iterations = static_cast<uint64_t>(v);
    } else {
      if (!p->SkipValue()) return false;
    }
  }
  return p->Consume('}');
}

}  // namespace

BenchReport MakeBenchReport(std::string_view name) {
  BenchReport report;
  report.name = std::string(name);
  const char* sha = std::getenv("FELIP_GIT_SHA");
  report.git_sha = (sha != nullptr && sha[0] != '\0') ? sha : "unknown";
  report.dispatch = simd::LevelName(simd::ActiveLevel());
  report.threads = std::thread::hardware_concurrency();
  return report;
}

std::string RenderBenchJson(const BenchReport& report) {
  std::string out;
  out.reserve(256 + report.records.size() * 160);
  out.append("{\n");
  out.append("  \"schema_version\": ");
  out.append(std::to_string(kBenchJsonSchemaVersion));
  out.append(",\n  \"name\": ");
  AppendEscaped(&out, report.name);
  out.append(",\n  \"git_sha\": ");
  AppendEscaped(&out, report.git_sha);
  out.append(",\n  \"dispatch\": ");
  AppendEscaped(&out, report.dispatch);
  out.append(",\n  \"threads\": ");
  out.append(std::to_string(report.threads));
  out.append(",\n  \"records\": [");
  for (size_t i = 0; i < report.records.size(); ++i) {
    const BenchRecord& r = report.records[i];
    out.append(i == 0 ? "\n" : ",\n");
    out.append("    {\"op\": ");
    AppendEscaped(&out, r.op);
    out.append(", \"workload\": ");
    AppendEscaped(&out, r.workload);
    out.append(", \"ns_per_op\": ");
    AppendDouble(&out, r.ns_per_op);
    out.append(", \"bytes_per_op\": ");
    AppendDouble(&out, r.bytes_per_op);
    out.append(", \"items_per_second\": ");
    AppendDouble(&out, r.items_per_second);
    out.append(", \"iterations\": ");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, r.iterations);
    out.append(buf);
    out.append("}");
  }
  out.append(report.records.empty() ? "]\n" : "\n  ]\n");
  out.append("}\n");
  return out;
}

bool ParseBenchJson(std::string_view json, BenchReport* out) {
  return ParseBenchJsonDetailed(json, out) == BenchParseResult::kOk;
}

BenchParseResult ParseBenchJsonDetailed(std::string_view json,
                                        BenchReport* out,
                                        int* schema_version_seen) {
  if (schema_version_seen != nullptr) *schema_version_seen = -1;
  if (out == nullptr) return BenchParseResult::kMalformed;
  Parser p{json};
  BenchReport report;
  int schema_version = -1;
  if (!p.Consume('{')) return BenchParseResult::kMalformed;
  bool first = true;
  while (!p.Peek('}')) {
    if (!first && !p.Consume(',')) return BenchParseResult::kMalformed;
    first = false;
    std::string key;
    if (!p.ParseString(&key) || !p.Consume(':')) {
      return BenchParseResult::kMalformed;
    }
    if (key == "schema_version") {
      double v;
      if (!p.ParseNumber(&v)) return BenchParseResult::kMalformed;
      schema_version = static_cast<int>(v);
    } else if (key == "name") {
      if (!p.ParseString(&report.name)) return BenchParseResult::kMalformed;
    } else if (key == "git_sha") {
      if (!p.ParseString(&report.git_sha)) {
        return BenchParseResult::kMalformed;
      }
    } else if (key == "dispatch") {
      if (!p.ParseString(&report.dispatch)) {
        return BenchParseResult::kMalformed;
      }
    } else if (key == "threads") {
      double v;
      if (!p.ParseNumber(&v)) return BenchParseResult::kMalformed;
      report.threads = static_cast<unsigned>(v);
    } else if (key == "records") {
      if (!p.Consume('[')) return BenchParseResult::kMalformed;
      while (!p.Peek(']')) {
        if (!report.records.empty() && !p.Consume(',')) {
          return BenchParseResult::kMalformed;
        }
        BenchRecord r;
        if (!ParseRecord(&p, &r)) return BenchParseResult::kMalformed;
        report.records.push_back(std::move(r));
      }
      if (!p.Consume(']')) return BenchParseResult::kMalformed;
    } else {
      if (!p.SkipValue()) return BenchParseResult::kMalformed;
    }
  }
  if (!p.Consume('}')) return BenchParseResult::kMalformed;
  // A missing schema_version is malformed (the renderer always writes
  // one); a present-but-different version is the upgrade case callers
  // want to surface precisely.
  if (schema_version == -1) return BenchParseResult::kMalformed;
  if (schema_version != kBenchJsonSchemaVersion) {
    if (schema_version_seen != nullptr) {
      *schema_version_seen = schema_version;
    }
    return BenchParseResult::kUnknownSchemaVersion;
  }
  *out = std::move(report);
  return BenchParseResult::kOk;
}

std::string BenchJsonPath(std::string_view dir, std::string_view name) {
  std::string path(dir);
  if (!path.empty() && path.back() != '/') path.push_back('/');
  path.append("BENCH_");
  path.append(name);
  path.append(".json");
  return path;
}

BenchComparison CompareBenchReports(const BenchReport& baseline,
                                    const BenchReport& current,
                                    double threshold) {
  BenchComparison cmp;
  const auto find_current = [&current](const std::string& op) {
    for (const BenchRecord& r : current.records) {
      if (r.op == op) return &r;
    }
    return static_cast<const BenchRecord*>(nullptr);
  };
  for (const BenchRecord& base : baseline.records) {
    const BenchRecord* cur = find_current(base.op);
    if (cur == nullptr) {
      cmp.only_in_baseline.push_back(base.op);
      continue;
    }
    BenchDelta delta;
    delta.op = base.op;
    delta.baseline_ns = base.ns_per_op;
    delta.current_ns = cur->ns_per_op;
    delta.ratio = base.ns_per_op > 0.0 ? cur->ns_per_op / base.ns_per_op
                                       : 0.0;
    delta.regression =
        base.ns_per_op > 0.0 && delta.ratio > 1.0 + threshold;
    if (delta.regression) ++cmp.num_regressions;
    cmp.deltas.push_back(std::move(delta));
  }
  for (const BenchRecord& cur : current.records) {
    bool in_baseline = false;
    for (const BenchRecord& base : baseline.records) {
      if (base.op == cur.op) {
        in_baseline = true;
        break;
      }
    }
    if (!in_baseline) cmp.only_in_current.push_back(cur.op);
  }
  return cmp;
}

bool WriteBenchJsonFile(const std::string& path, const BenchReport& report) {
  const std::string json = RenderBenchJson(report);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace felip::eval
