#include "felip/eval/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "felip/baselines/hio.h"
#include "felip/baselines/tdg_hdg.h"
#include "felip/common/check.h"
#include "felip/core/felip.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"

namespace felip::eval {

double MeanAbsoluteError(const std::vector<double>& estimates,
                         const std::vector<double>& truths) {
  FELIP_CHECK(estimates.size() == truths.size());
  FELIP_CHECK(!estimates.empty());
  double total = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    total += std::fabs(estimates[i] - truths[i]);
  }
  return total / static_cast<double>(estimates.size());
}

double RootMeanSquaredError(const std::vector<double>& estimates,
                            const std::vector<double>& truths) {
  FELIP_CHECK(estimates.size() == truths.size());
  FELIP_CHECK(!estimates.empty());
  double total = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    const double diff = estimates[i] - truths[i];
    total += diff * diff;
  }
  return std::sqrt(total / static_cast<double>(estimates.size()));
}

double MeanRelativeError(const std::vector<double>& estimates,
                         const std::vector<double>& truths, double floor) {
  FELIP_CHECK(estimates.size() == truths.size());
  FELIP_CHECK(!estimates.empty());
  FELIP_CHECK(floor > 0.0);
  double total = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    total += std::fabs(estimates[i] - truths[i]) /
             std::max(truths[i], floor);
  }
  return total / static_cast<double>(estimates.size());
}

std::vector<std::string> KnownMethods() {
  return {"OUG",      "OHG",      "OUG-OLH",    "OHG-OLH",
          "OHG-GRR",  "OHG-OUE",  "OHG-PGR",    "OHG-FLDP",
          "OHG-BUDGET", "OHG-QFIT", "HIO",      "TDG",
          "HDG"};
}

namespace {

core::FelipConfig MakeFelipConfig(std::string_view method,
                                  const ExperimentParams& params) {
  core::FelipConfig config;
  config.epsilon = params.epsilon;
  config.alpha1 = params.alpha1;
  config.alpha2 = params.alpha2;
  config.default_selectivity = params.selectivity_prior;
  config.olh_options.seed_pool_size = params.olh_seed_pool;
  config.normalization = params.normalization;
  config.seed = params.seed;
  config.strategy = method.starts_with("OUG") ? core::Strategy::kOug
                                              : core::Strategy::kOhg;
  if (method.ends_with("-OLH")) {
    config.allow_grr = false;
  } else if (method.ends_with("-GRR")) {
    config.allow_olh = false;
  } else if (method.ends_with("-OUE")) {
    config.allow_grr = false;
    config.allow_olh = false;
    config.allow_oue = true;
  } else if (method.ends_with("-PGR")) {
    config.allow_grr = false;
    config.allow_olh = false;
    config.allow_pgr = true;
  } else if (method.ends_with("-FLDP")) {
    config.allow_grr = false;
    config.allow_olh = false;
    config.allow_fldp = true;
  } else if (method.ends_with("-BUDGET")) {
    config.partitioning = core::PartitioningMode::kDivideBudget;
  } else if (method.ends_with("-QFIT")) {
    config.lambda_quadrant_fit = true;
  }
  return config;
}

// Answers every query, recording per-query latency. Works for any pipeline
// with an AnswerQuery(const query::Query&) method.
template <typename Pipeline>
void AnswerAll(const Pipeline& pipeline,
               const std::vector<query::Query>& queries,
               std::vector<double>* estimates) {
  static obs::Histogram& query_seconds =
      obs::Registry::Default().GetHistogram("felip_eval_query_seconds");
  for (const query::Query& q : queries) {
    const auto start = std::chrono::steady_clock::now();
    estimates->push_back(pipeline.AnswerQuery(q));
    query_seconds.Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
  }
}

}  // namespace

std::vector<double> RunMethod(std::string_view method,
                              const data::Dataset& dataset,
                              const std::vector<query::Query>& queries,
                              const ExperimentParams& params) {
  FELIP_CHECK(!queries.empty());
  obs::ScopedTimer span("felip_eval_run");
  obs::Registry::Default()
      .GetCounter("felip_eval_queries_total")
      .Increment(queries.size());
  std::vector<double> estimates;
  estimates.reserve(queries.size());

  if (method == "HIO") {
    baselines::HioConfig config;
    config.epsilon = params.epsilon;
    config.branching = params.hio_branching;
    config.seed = params.seed;
    baselines::HioPipeline pipeline(dataset.attributes(), config);
    pipeline.Collect(dataset);
    AnswerAll(pipeline, queries, &estimates);
    return estimates;
  }
  if (method == "TDG" || method == "HDG") {
    baselines::TdgHdgConfig config;
    config.strategy = method == "TDG" ? baselines::YangStrategy::kTdg
                                      : baselines::YangStrategy::kHdg;
    config.epsilon = params.epsilon;
    config.alpha1 = params.alpha1;
    config.alpha2 = params.alpha2;
    config.olh_options.seed_pool_size = params.olh_seed_pool;
    config.seed = params.seed;
    baselines::TdgHdgPipeline pipeline(dataset.attributes(),
                                       dataset.num_rows(), config);
    pipeline.Collect(dataset);
    pipeline.Finalize();
    AnswerAll(pipeline, queries, &estimates);
    return estimates;
  }

  bool known = false;
  for (const std::string& name : KnownMethods()) {
    if (method == name) known = true;
  }
  FELIP_CHECK_MSG(known, "unknown method name");
  const core::FelipPipeline pipeline =
      core::RunFelip(dataset, MakeFelipConfig(method, params));
  AnswerAll(pipeline, queries, &estimates);
  return estimates;
}

double RunMethodMae(std::string_view method, const data::Dataset& dataset,
                    const std::vector<query::Query>& queries,
                    const std::vector<double>& truths,
                    const ExperimentParams& params) {
  const std::vector<double> estimates =
      RunMethod(method, dataset, queries, params);
  const double mae = MeanAbsoluteError(estimates, truths);
  const double rmse = RootMeanSquaredError(estimates, truths);
  obs::Registry& registry = obs::Registry::Default();
  registry.GetCounter("felip_eval_runs_total").Increment();
  registry.GetGauge("felip_eval_last_mae").Set(mae);
  registry.GetGauge("felip_eval_last_mse").Set(rmse * rmse);
  return mae;
}

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::strtod(value, nullptr);
}

}  // namespace

uint64_t BenchUsers(uint64_t fallback) {
  const char* users = std::getenv("FELIP_BENCH_USERS");
  if (users != nullptr && users[0] != '\0') {
    return static_cast<uint64_t>(std::strtoull(users, nullptr, 10));
  }
  const double scale = EnvDouble("FELIP_BENCH_SCALE", 1.0);
  const double scaled = static_cast<double>(fallback) * scale;
  return scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
}

double BenchScaleFactor() { return EnvDouble("FELIP_BENCH_SCALE", 1.0); }

uint32_t BenchQueries(uint32_t fallback) {
  return static_cast<uint32_t>(
      EnvDouble("FELIP_BENCH_QUERIES", static_cast<double>(fallback)));
}

uint32_t BenchTrials(uint32_t fallback) {
  return static_cast<uint32_t>(
      EnvDouble("FELIP_BENCH_TRIALS", static_cast<double>(fallback)));
}

SeriesTable::SeriesTable(std::string title, std::string x_label,
                         std::vector<std::string> methods)
    : title_(std::move(title)), x_label_(std::move(x_label)),
      methods_(std::move(methods)) {}

void SeriesTable::AddRow(const std::string& x,
                         const std::vector<double>& values) {
  FELIP_CHECK(values.size() == methods_.size());
  rows_.emplace_back(x, values);
}

void SeriesTable::Print() const {
  std::printf("=== %s ===\n", title_.c_str());
  std::printf("%-12s", x_label_.c_str());
  for (const std::string& m : methods_) std::printf("%12s", m.c_str());
  std::printf("\n");
  for (const auto& [x, values] : rows_) {
    std::printf("%-12s", x.c_str());
    for (const double v : values) std::printf("%12.5f", v);
    std::printf("\n");
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace felip::eval
