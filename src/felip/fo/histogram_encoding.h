// Histogram-encoding frequency oracles (extension protocols).
//
// From Wang et al. (USENIX Security'17), the same paper that introduces
// OLH. Both encode the value as a one-hot histogram and add Laplace(2/eps)
// noise to every bucket (L1 sensitivity of one-hot is 2, so this satisfies
// eps-LDP):
//   * SHE (Summation with Histogram Encoding) reports the whole noisy
//     vector; the server just averages — no debiasing needed.
//   * THE (Thresholded Histogram Encoding) reports only the buckets whose
//     noisy value exceeds a threshold theta; thresholding is
//     post-processing, so the guarantee is unchanged, and the server
//     debias uses p = Pr[noisy 1 > theta], q = Pr[noisy 0 > theta].
//     The threshold is chosen to minimize the estimation variance.
//
// Provided for completeness of the FO suite (ablation abl4 exercises the
// AFO family; these two are standalone like Square Wave).

#ifndef FELIP_FO_HISTOGRAM_ENCODING_H_
#define FELIP_FO_HISTOGRAM_ENCODING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "felip/common/rng.h"

namespace felip::fo {

// Pr[Laplace(scale) + indicator > theta] for indicator ∈ {0, 1}.
double HeExceedProbability(double theta, double scale, bool is_one);

// Variance-minimizing THE threshold in (1/2, 1) for a given epsilon.
double OptimalTheThreshold(double epsilon);

class SheClient {
 public:
  SheClient(double epsilon, uint64_t domain);

  // One-hot encoding of `value` plus iid Laplace(2/eps) noise per bucket.
  std::vector<double> Perturb(uint64_t value, Rng& rng) const;

  double scale() const { return scale_; }
  uint64_t domain() const { return domain_; }

 private:
  uint64_t domain_;
  double scale_;  // Laplace scale 2 / eps
};

class SheServer {
 public:
  explicit SheServer(uint64_t domain);

  void Add(const std::vector<double>& report);

  // Batch ingestion: per-shard partial sums over fixed shard boundaries,
  // folded in shard order. The result is bit-identical for every
  // `thread_count` (0 = hardware concurrency) — though not to a
  // report-by-report Add() loop, since floating-point addition is not
  // associative; don't mix the two paths on one server when exact
  // reproducibility matters.
  void AggregateReports(std::span<const std::vector<double>> reports,
                        unsigned thread_count = 0);

  // Frequency estimates: per-bucket mean of the noisy reports (unbiased;
  // the Laplace noise is zero-mean).
  std::vector<double> EstimateFrequencies() const;

  uint64_t num_reports() const { return num_reports_; }

 private:
  std::vector<double> sums_;
  uint64_t num_reports_ = 0;
};

class TheClient {
 public:
  // `theta` <= 0 selects the variance-optimal threshold.
  TheClient(double epsilon, uint64_t domain, double theta = 0.0);

  // Bit b is 1 iff the noisy histogram exceeds theta at bucket b.
  std::vector<uint8_t> Perturb(uint64_t value, Rng& rng) const;

  double theta() const { return theta_; }
  double p() const { return p_; }
  double q() const { return q_; }
  uint64_t domain() const { return domain_; }

 private:
  uint64_t domain_;
  double scale_;
  double theta_;
  double p_;  // Pr[report bit set | true bucket]
  double q_;  // Pr[report bit set | other bucket]
};

class TheServer {
 public:
  TheServer(double epsilon, uint64_t domain, double theta = 0.0);

  void Add(const std::vector<uint8_t>& report);

  // Batch ingestion, equivalent to Add() on every report; sharded bit
  // summation as in OueServer::AggregateReports, bit-identical to the
  // serial path for every thread count.
  void AggregateReports(std::span<const std::vector<uint8_t>> reports,
                        unsigned thread_count = 0);

  std::vector<double> EstimateFrequencies() const;

  uint64_t num_reports() const { return num_reports_; }

 private:
  std::vector<uint64_t> counts_;
  uint64_t num_reports_ = 0;
  double p_;
  double q_;
};

}  // namespace felip::fo

#endif  // FELIP_FO_HISTOGRAM_ENCODING_H_
