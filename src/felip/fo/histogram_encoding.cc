#include "felip/fo/histogram_encoding.h"

#include <cmath>

#include "felip/common/check.h"
#include "felip/common/numeric.h"
#include "felip/common/parallel.h"

namespace felip::fo {

namespace {

// Laplace(0, scale) upper tail: Pr[X > x].
double LaplaceTail(double x, double scale) {
  if (x >= 0.0) return 0.5 * std::exp(-x / scale);
  return 1.0 - 0.5 * std::exp(x / scale);
}

}  // namespace

double HeExceedProbability(double theta, double scale, bool is_one) {
  return LaplaceTail(theta - (is_one ? 1.0 : 0.0), scale);
}

double OptimalTheThreshold(double epsilon) {
  FELIP_CHECK(epsilon > 0.0);
  const double scale = 2.0 / epsilon;
  // Minimize the (f -> 0) estimator variance q(1-q) / (p-q)^2 over
  // theta in (1/2, 1); the objective is smooth and unimodal there.
  const auto variance = [&](double theta) {
    const double p = HeExceedProbability(theta, scale, true);
    const double q = HeExceedProbability(theta, scale, false);
    const double gap = p - q;
    return q * (1.0 - q) / (gap * gap);
  };
  return GoldenSectionMinimize(variance, 0.5 + 1e-6, 1.0 - 1e-6);
}

SheClient::SheClient(double epsilon, uint64_t domain)
    : domain_(domain), scale_(2.0 / epsilon) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
}

std::vector<double> SheClient::Perturb(uint64_t value, Rng& rng) const {
  FELIP_CHECK(value < domain_);
  std::vector<double> noisy(domain_);
  for (uint64_t b = 0; b < domain_; ++b) {
    noisy[b] = (b == value ? 1.0 : 0.0) + rng.Laplace(scale_);
  }
  return noisy;
}

SheServer::SheServer(uint64_t domain) : sums_(domain, 0.0) {
  FELIP_CHECK(domain >= 1);
}

void SheServer::Add(const std::vector<double>& report) {
  FELIP_CHECK(report.size() == sums_.size());
  for (size_t b = 0; b < report.size(); ++b) sums_[b] += report[b];
  ++num_reports_;
}

void SheServer::AggregateReports(std::span<const std::vector<double>> reports,
                                 unsigned thread_count) {
  if (reports.empty()) return;
  const size_t domain = sums_.size();
  const std::vector<double> merged = ParallelReduce(
      reports.size(),
      [domain] { return std::vector<double>(domain, 0.0); },
      [&](std::vector<double>& acc, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const std::vector<double>& noisy = reports[i];
          FELIP_CHECK(noisy.size() == acc.size());
          for (size_t b = 0; b < noisy.size(); ++b) acc[b] += noisy[b];
        }
      },
      [](std::vector<double>& into, std::vector<double>&& from) {
        for (size_t b = 0; b < into.size(); ++b) into[b] += from[b];
      },
      thread_count);
  for (size_t b = 0; b < domain; ++b) sums_[b] += merged[b];
  num_reports_ += reports.size();
}

std::vector<double> SheServer::EstimateFrequencies() const {
  FELIP_CHECK_MSG(num_reports_ > 0, "no SHE reports collected");
  std::vector<double> freq(sums_.size());
  for (size_t b = 0; b < sums_.size(); ++b) {
    freq[b] = sums_[b] / static_cast<double>(num_reports_);
  }
  return freq;
}

TheClient::TheClient(double epsilon, uint64_t domain, double theta)
    : domain_(domain), scale_(2.0 / epsilon) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
  theta_ = theta > 0.0 ? theta : OptimalTheThreshold(epsilon);
  FELIP_CHECK(theta_ > 0.5 && theta_ < 1.0);
  p_ = HeExceedProbability(theta_, scale_, true);
  q_ = HeExceedProbability(theta_, scale_, false);
}

std::vector<uint8_t> TheClient::Perturb(uint64_t value, Rng& rng) const {
  FELIP_CHECK(value < domain_);
  std::vector<uint8_t> bits(domain_);
  for (uint64_t b = 0; b < domain_; ++b) {
    const double noisy = (b == value ? 1.0 : 0.0) + rng.Laplace(scale_);
    bits[b] = noisy > theta_ ? 1 : 0;
  }
  return bits;
}

TheServer::TheServer(double epsilon, uint64_t domain, double theta)
    : counts_(domain, 0) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
  const double scale = 2.0 / epsilon;
  const double resolved = theta > 0.0 ? theta : OptimalTheThreshold(epsilon);
  p_ = HeExceedProbability(resolved, scale, true);
  q_ = HeExceedProbability(resolved, scale, false);
}

void TheServer::Add(const std::vector<uint8_t>& report) {
  FELIP_CHECK(report.size() == counts_.size());
  for (size_t b = 0; b < report.size(); ++b) {
    counts_[b] += report[b] != 0 ? 1 : 0;
  }
  ++num_reports_;
}

void TheServer::AggregateReports(
    std::span<const std::vector<uint8_t>> reports, unsigned thread_count) {
  if (reports.empty()) return;
  const size_t domain = counts_.size();
  const std::vector<uint64_t> merged = ParallelReduce(
      reports.size(),
      [domain] { return std::vector<uint64_t>(domain, 0); },
      [&](std::vector<uint64_t>& acc, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const std::vector<uint8_t>& bits = reports[i];
          FELIP_CHECK(bits.size() == acc.size());
          for (size_t b = 0; b < bits.size(); ++b) {
            acc[b] += bits[b] != 0 ? 1 : 0;
          }
        }
      },
      [](std::vector<uint64_t>& into, std::vector<uint64_t>&& from) {
        for (size_t b = 0; b < into.size(); ++b) into[b] += from[b];
      },
      thread_count);
  for (size_t b = 0; b < domain; ++b) counts_[b] += merged[b];
  num_reports_ += reports.size();
}

std::vector<double> TheServer::EstimateFrequencies() const {
  FELIP_CHECK_MSG(num_reports_ > 0, "no THE reports collected");
  const double n = static_cast<double>(num_reports_);
  std::vector<double> freq(counts_.size());
  for (size_t b = 0; b < counts_.size(); ++b) {
    freq[b] = (static_cast<double>(counts_[b]) / n - q_) / (p_ - q_);
  }
  return freq;
}

}  // namespace felip::fo
