#include "felip/fo/grr.h"

#include <cmath>

#include "felip/common/check.h"
#include "felip/common/parallel.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"
#include "felip/simd/dispatch.h"
#include "felip/simd/kernels.h"

namespace felip::fo {

namespace {

// Shared p/q computation. For domain == 1 the protocol is trivial (p = 1).
void ComputeGrrProbabilities(double epsilon, uint64_t domain, double* p,
                             double* q) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
  if (domain == 1) {
    *p = 1.0;
    *q = 0.0;
    return;
  }
  const double e = std::exp(epsilon);
  *p = e / (e + static_cast<double>(domain) - 1.0);
  *q = 1.0 / (e + static_cast<double>(domain) - 1.0);
}

}  // namespace

GrrClient::GrrClient(double epsilon, uint64_t domain) : domain_(domain) {
  ComputeGrrProbabilities(epsilon, domain, &p_, &q_);
}

uint64_t GrrClient::Perturb(uint64_t value, Rng& rng) const {
  FELIP_CHECK(value < domain_);
  if (domain_ == 1) return value;
  if (rng.Bernoulli(p_)) return value;
  // Uniform over the other domain_ - 1 values.
  const uint64_t other = rng.UniformU64(domain_ - 1);
  return other >= value ? other + 1 : other;
}

GrrServer::GrrServer(double epsilon, uint64_t domain)
    : counts_(domain, 0) {
  ComputeGrrProbabilities(epsilon, domain, &p_, &q_);
}

void GrrServer::Add(uint64_t report) {
  FELIP_CHECK(report < counts_.size());
  ++counts_[report];
  ++num_reports_;
}

void GrrServer::AggregateReports(std::span<const uint64_t> reports,
                                 unsigned thread_count) {
  if (reports.empty()) return;
  obs::ScopedTimer span("felip_fo_grr_aggregate");
  // Hot-path instruments are cached; GetCounter takes a registry lock.
  static obs::Counter& reports_total =
      obs::Registry::Default().GetCounter("felip_fo_grr_reports_total");
  static obs::Gauge& shard_gauge =
      obs::Registry::Default().GetGauge("felip_fo_grr_aggregate_shards");
  reports_total.Increment(reports.size());
  shard_gauge.Set(static_cast<double>(ReduceShardCount(reports.size())));
  const size_t domain = counts_.size();
  const simd::Level level = simd::ActiveLevel();
  const std::vector<uint64_t> merged = ParallelReduce(
      reports.size(),
      [domain] { return std::vector<uint64_t>(domain, 0); },
      [&](std::vector<uint64_t>& acc, size_t begin, size_t end) {
        // Validate first; the histogram kernel does not bounds-check.
        for (size_t i = begin; i < end; ++i) {
          FELIP_CHECK(reports[i] < acc.size());
        }
        simd::HistogramU64(level, reports.data() + begin, end - begin,
                           acc.data(), acc.size());
      },
      [level](std::vector<uint64_t>& into, std::vector<uint64_t>&& from) {
        simd::AddU64(level, into.data(), from.data(), into.size());
      },
      thread_count);
  simd::AddU64(level, counts_.data(), merged.data(), domain);
  num_reports_ += reports.size();
}

void GrrServer::RestoreState(std::vector<uint64_t> counts,
                             uint64_t num_reports) {
  FELIP_CHECK_MSG(counts.size() == counts_.size(),
                  "restored GRR counts do not match the domain");
  counts_ = std::move(counts);
  num_reports_ = num_reports;
}

std::vector<double> GrrServer::EstimateFrequencies() const {
  FELIP_CHECK_MSG(num_reports_ > 0, "no GRR reports collected");
  std::vector<double> freq(counts_.size());
  const double n = static_cast<double>(num_reports_);
  const double denom = p_ - q_;
  for (size_t v = 0; v < counts_.size(); ++v) {
    if (counts_.size() == 1) {
      freq[v] = 1.0;
    } else {
      freq[v] = (static_cast<double>(counts_[v]) / n - q_) / denom;
    }
  }
  return freq;
}

double GrrServer::EstimateValue(uint64_t value) const {
  FELIP_CHECK(value < counts_.size());
  FELIP_CHECK_MSG(num_reports_ > 0, "no GRR reports collected");
  if (counts_.size() == 1) return 1.0;
  const double n = static_cast<double>(num_reports_);
  return (static_cast<double>(counts_[value]) / n - q_) / (p_ - q_);
}

}  // namespace felip::fo
