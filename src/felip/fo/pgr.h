// Projective Geometry Response (PGR) — extension protocol.
//
// Feldman, Nelson, Nguyen, Talwar, "Private frequency estimation via
// projective geometry" (ICML'22). The value space is embedded into the
// points of the projective space PG(t-1, q) over the prime field F_q with
// q ~ e^eps + 1 and t the smallest dimension whose point count
// N = (q^t - 1)/(q - 1) covers the domain. A user holding value v (point
// x_v) reports a single point index z, drawn with probability proportional
// to e^eps when <x_v, z> != 0 and 1 when <x_v, z> = 0. The report is one
// uint32 — near-optimal utility at log-size communication, which is the
// regime where GRR's variance explodes and OUE's |D|-bit reports are
// unaffordable.
//
// Support probabilities (derived by counting points on and off the
// hyperplane x_v^perp, see docs/frequency_oracles.md):
//   Z  = e^eps q^(t-1) + (q^(t-1) - 1)/(q - 1)
//   p* = e^eps q^(t-1) / Z                          (true value supported)
//   q* = q^(t-2) (e^eps (q - 1) + 1) / Z            (other value supported)
// and the estimator is the standard debiased support count
//   f_hat(v) = (C(v)/n - q*) / (p* - q*),  C(v) = n - #{reports on x_v^perp}.
//
// The server accumulates an integer histogram over the N point indices —
// order-independent state that snapshots, shard merges, and the replay log
// carry through the generic OracleState counts field. Decoding offers two
// exact paths that produce bit-identical estimates (both compute the same
// integer orthogonal-support counts before one float debias):
//   * kDirect — O(|D| * N * t) field dot products; best for small N.
//   * kFast   — the paper's fast-aggregation dynamic program over F_q^t,
//     O(t * q^(t+2)) integer adds; best when |D| approaches N.
// kAuto picks the cheaper one from those operation counts, but never a
// fast table larger than the allocation gate — large-domain regimes where
// the DP is op-cheap but memory-infeasible fall back to direct decode.

#ifndef FELIP_FO_PGR_H_
#define FELIP_FO_PGR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "felip/common/rng.h"

namespace felip::fo {

enum class PgrDecode : uint8_t {
  kAuto = 0,
  kDirect = 1,
  kFast = 2,
};

struct PgrOptions {
  PgrDecode decode = PgrDecode::kAuto;
};

// True when the PGR construction is representable for (epsilon, domain):
// the prime field order ceil(e^eps + 1) stays under the field-order cap
// (the float->uint32 conversion in PgrParams::Make is undefined past it,
// and q bounds the O(q^2) inverse table), the projective dimension stays
// under its cap, and every point index fits uint32. PgrParams::Make aborts
// on infeasible inputs; untrusted (epsilon, domain) pairs — wire configs,
// CLI flags — must be screened with this first.
bool PgrFeasible(double epsilon, uint64_t domain);

// Mechanism parameters shared by client and server, derived
// deterministically from (epsilon, domain).
struct PgrParams {
  uint32_t q = 0;       // prime field order, smallest prime >= ceil(e^eps+1)
  uint32_t t = 0;       // projective dimension, >= 2
  uint64_t num_points = 0;  // N = (q^t - 1)/(q - 1) >= domain
  double p_star = 0.0;  // Pr[report supports the true value]
  double q_star = 0.0;  // Pr[report supports a specific other value]

  static PgrParams Make(double epsilon, uint64_t domain);
};

// The decode path EstimateFrequencies() will take for `requested`:
// explicit kDirect/kFast pass through; kAuto resolves to the cheaper path
// by operation count, except that a fast table the allocation gate in the
// fast decoder would reject always resolves to kDirect.
PgrDecode ResolvePgrDecode(const PgrParams& params, uint64_t domain,
                           PgrDecode requested);

// Local perturbation for PGR. Immutable after construction; safe to share
// across users/threads (each user supplies their own Rng).
class PgrClient {
 public:
  PgrClient(double epsilon, uint64_t domain);

  // Perturbs `value` in [0, domain); returns a point index in
  // [0, num_points). Exact sampling: a Bernoulli split between the
  // off-hyperplane and on-hyperplane point sets, then a uniform point of
  // the chosen set via uniform field-vector draws (no rejection against
  // the full space).
  uint32_t Perturb(uint64_t value, Rng& rng) const;

  const PgrParams& params() const { return params_; }
  uint64_t domain() const { return domain_; }

 private:
  uint64_t domain_;
  PgrParams params_;
  double off_hyperplane_;  // Pr[report not orthogonal to the true point]
  std::vector<uint32_t> inverse_;  // multiplicative inverses mod q
};

// Aggregation and unbiased estimation for PGR.
class PgrServer {
 public:
  PgrServer(double epsilon, uint64_t domain, PgrOptions options = {});

  // Accumulates one report in [0, num_points).
  void Add(uint32_t report);

  // Batch ingestion, equivalent to Add() on every report: the reports are
  // histogrammed in fixed shards over up to `thread_count` threads (0 =
  // hardware concurrency) and reduced in shard order, so the counts are
  // bit-identical to the serial path for every thread count.
  void AggregateReports(std::span<const uint32_t> reports,
                        unsigned thread_count = 0);

  // Unbiased frequency estimates for all domain values. Direct and fast
  // decode produce bit-identical results; kAuto picks by operation count.
  std::vector<double> EstimateFrequencies() const;
  double EstimateValue(uint64_t value) const;

  uint64_t num_reports() const { return num_reports_; }
  uint64_t domain() const { return domain_; }
  const PgrParams& params() const { return params_; }

  // --- Accumulator persistence (snapshot path) ---
  // The per-point counts are the server's entire accumulator: restoring
  // them and continuing to Add() is bit-identical to never having stopped.
  const std::vector<uint64_t>& counts() const { return counts_; }

  // Replaces the accumulator with previously exported state. Callers must
  // validate untrusted input first; size mismatches abort.
  void RestoreState(std::vector<uint64_t> counts, uint64_t num_reports);

 private:
  // #reports orthogonal to each value's point, one entry per domain value.
  std::vector<uint64_t> OrthogonalCountsDirect() const;
  std::vector<uint64_t> OrthogonalCountsFast() const;
  double Debias(uint64_t orthogonal) const;

  uint64_t domain_;
  PgrOptions options_;
  PgrParams params_;
  std::vector<uint64_t> counts_;  // histogram over point indices
  uint64_t num_reports_ = 0;
};

}  // namespace felip::fo

#endif  // FELIP_FO_PGR_H_
