// Protocol registry — the one table every layer outside fo/ resolves
// frequency-oracle protocols through.
//
// Each Protocol enumerator has exactly one ProtocolTraits entry (a
// static_assert in registry.cc pins the count), bundling everything a
// caller needs without switching on the enum:
//   * factories for the oracle facade and the device-side report client,
//   * the wire shape of one report (how the codec frames its payload),
//   * the closed-form error model the AFO optimizer scores with,
//   * the per-report communication cost for budget-aware selection.
// Adding a protocol = one enum entry + one table row (+ a client/server
// pair); snapshots, shard merges, the wire codec, tools, and AFO pick it
// up through the registry with no out-of-layer edits. Protocol `switch`
// statements outside src/felip/fo are a build error by policy (a CI grep
// test enforces it).

#ifndef FELIP_FO_REGISTRY_H_
#define FELIP_FO_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "felip/common/status.h"
#include "felip/fo/fldp.h"
#include "felip/fo/olh.h"
#include "felip/fo/pgr.h"
#include "felip/fo/protocol.h"
#include "felip/fo/report.h"

namespace felip::fo {

class FrequencyOracle;

// Per-protocol options, carried as one value so call chains (planning ->
// wire config -> device -> oracle) stay protocol-agnostic. Each protocol
// reads only its own member.
struct ProtocolOptions {
  OlhOptions olh;
  PgrOptions pgr;
  FldpOptions fldp;

  friend bool operator==(const ProtocolOptions&,
                         const ProtocolOptions&) = default;
};

// How one report's payload is framed on the wire. The codec switches on
// this shape — never on the protocol — so protocols sharing a shape share
// the codec path.
enum class ReportWire : uint8_t {
  kValue64 = 0,      // one uint64 (GRR)
  kOlhTriple = 1,    // OLH seed / seed_index / hashed report
  kBitVector = 2,    // length-prefixed byte-per-bit vector (OUE)
  kValue32 = 3,      // one uint32 point index (PGR)
  kIndexedBits = 4,  // uint32 subset index + length-prefixed bits (FLDP)
};

struct ProtocolTraits {
  Protocol protocol = Protocol::kGrr;
  // Canonical lower-case name, accepted (case-insensitively) by
  // ProtocolFromName and used for per-protocol metric suffixes.
  std::string_view name;
  ReportWire wire = ReportWire::kValue64;

  // --- Factories ---
  std::unique_ptr<FrequencyOracle> (*make_oracle)(double epsilon,
                                                  uint64_t domain,
                                                  const ProtocolOptions&);
  std::unique_ptr<ReportClient> (*make_client)(double epsilon, uint64_t domain,
                                               const ProtocolOptions&);

  // --- Error model (grid/optimizer.cc) ---
  //
  // The optimizer's noise terms all take the form
  //   cells_in_query * base * U(total_cells),
  // base = m / (n (e^eps - 1)^2). `noise_unit` is U; `noise_unit_derivative`
  // is the bracket of d/dT [T * U(T)] the bisection solvers evaluate.
  // `domain_free_noise` marks U constant in T, which unlocks the cube-root
  // closed forms.
  bool domain_free_noise = false;
  double (*noise_unit)(double epsilon, double total_cells,
                       const ProtocolOptions&);
  double (*noise_unit_derivative)(double epsilon, double total_cells,
                                  const ProtocolOptions&);

  // Per-value estimation variance with `n` reports (the fo/protocol.h
  // closed forms, options-aware).
  double (*variance)(double epsilon, uint64_t domain, uint64_t n,
                     const ProtocolOptions&);

  // Wire-body bytes of one report for a grid with `domain` cells — the
  // communication cost AFO scores against OptimizeParams::
  // report_budget_bytes. Matches the report codec in felip/wire.
  uint64_t (*report_bytes)(double epsilon, uint64_t domain,
                           const ProtocolOptions&);
};

// The traits row for `protocol`; aborts on an out-of-range enumerator.
const ProtocolTraits& GetTraits(Protocol protocol);

// All registered protocols, in Protocol enumerator order.
std::span<const ProtocolTraits> AllProtocolTraits();

// True when `raw` is a registered Protocol byte — the validity check for
// protocol bytes read off the wire or out of snapshots.
bool KnownProtocolByte(uint8_t raw);

// Parses a protocol name ("grr", "OLH", ...) case-insensitively;
// kInvalidArgument for unknown names.
StatusOr<Protocol> ProtocolFromName(std::string_view name);

// Creates the device-side perturbation client for `protocol`.
std::unique_ptr<ReportClient> MakeReportClient(Protocol protocol,
                                               double epsilon, uint64_t domain,
                                               const ProtocolOptions& options);

// Creates an oracle for `protocol` with per-protocol options. The
// OlhOptions overload in frequency_oracle.h forwards here.
std::unique_ptr<FrequencyOracle> MakeFrequencyOracle(
    Protocol protocol, double epsilon, uint64_t domain,
    const ProtocolOptions& options);

}  // namespace felip::fo

#endif  // FELIP_FO_REGISTRY_H_
