// Frequency-oracle protocol identifiers and closed-form variance models
// (Section 2.2 and Eq. 13 of the paper).

#ifndef FELIP_FO_PROTOCOL_H_
#define FELIP_FO_PROTOCOL_H_

#include <cstdint>
#include <string_view>

namespace felip::fo {

// LDP frequency-oracle protocols implemented by this library. GRR and OLH
// are the two protocols FELIP's adaptive oracle (AFO) selects between; OUE
// is provided as an extension (same asymptotic variance as OLH, no
// hashing). PGR (Feldman, Nelson, Nguyen, Talwar 2022) and FLDP (Zhao et
// al. 2022) widen the selection space toward large domains and
// communication-constrained clients.
//
// Adding a protocol: extend this enum, then register its ProtocolTraits in
// registry.cc (the static_assert there fails until every enumerator has an
// entry). Every layer outside fo/ resolves protocols through the registry,
// so no out-of-layer edits are needed.
enum class Protocol : uint8_t {
  kGrr = 0,
  kOlh = 1,
  kOue = 2,
  kPgr = 3,
  kFldp = 4,
};

// Number of Protocol enumerators; the registry table must have exactly
// this many entries.
inline constexpr size_t kNumProtocols = 5;

std::string_view ProtocolName(Protocol protocol);

// Per-value estimation variance of GRR with `n` reports over a domain of
// size `domain` (Eq. 2): (e^eps + |D| - 2) / (n (e^eps - 1)^2).
double GrrVariance(double epsilon, uint64_t domain, uint64_t n);

// Per-value estimation variance of OLH with `n` reports (Section 2.2.2):
// 4 e^eps / (n (e^eps - 1)^2). Independent of the domain size.
double OlhVariance(double epsilon, uint64_t n);

// Per-value estimation variance of OUE; identical to OLH's closed form.
double OueVariance(double epsilon, uint64_t n);

// Per-value estimation variance of PGR: q*(1-q*) / (n (p*-q*)^2) with the
// support probabilities p*, q* of the projective-geometry mechanism
// parametrized for (epsilon, domain); see pgr.h. Piecewise constant in
// `domain` (it changes only when the projective dimension t steps).
double PgrVariance(double epsilon, uint64_t domain, uint64_t n);

// Per-value estimation variance of FLDP with subset size s =
// min(report_bits, domain): (domain / s) * 4 e^eps / (n (e^eps - 1)^2) —
// the OUE variance inflated by the subsampling factor d/s.
double FldpVariance(double epsilon, uint64_t domain, uint32_t report_bits,
                    uint64_t n);

// Variance of `protocol` for a domain of size `domain` with `n` reports.
// FLDP is evaluated at its default report_bits; pass explicit options via
// the registry's variance hook for other subset sizes.
double ProtocolVariance(Protocol protocol, double epsilon, uint64_t domain,
                        uint64_t n);

// The optimal OLH hash range g = ceil(e^eps + 1), never below 2.
uint32_t OlhHashRange(double epsilon);

}  // namespace felip::fo

#endif  // FELIP_FO_PROTOCOL_H_
