// Frequency-oracle protocol identifiers and closed-form variance models
// (Section 2.2 and Eq. 13 of the paper).

#ifndef FELIP_FO_PROTOCOL_H_
#define FELIP_FO_PROTOCOL_H_

#include <cstdint>
#include <string_view>

namespace felip::fo {

// LDP frequency-oracle protocols implemented by this library. GRR and OLH
// are the two protocols FELIP's adaptive oracle (AFO) selects between; OUE
// is provided as an extension (same asymptotic variance as OLH, no hashing).
enum class Protocol {
  kGrr,
  kOlh,
  kOue,
};

std::string_view ProtocolName(Protocol protocol);

// Per-value estimation variance of GRR with `n` reports over a domain of
// size `domain` (Eq. 2): (e^eps + |D| - 2) / (n (e^eps - 1)^2).
double GrrVariance(double epsilon, uint64_t domain, uint64_t n);

// Per-value estimation variance of OLH with `n` reports (Section 2.2.2):
// 4 e^eps / (n (e^eps - 1)^2). Independent of the domain size.
double OlhVariance(double epsilon, uint64_t n);

// Per-value estimation variance of OUE; identical to OLH's closed form.
double OueVariance(double epsilon, uint64_t n);

// Variance of `protocol` for a domain of size `domain` with `n` reports.
double ProtocolVariance(Protocol protocol, double epsilon, uint64_t domain,
                        uint64_t n);

// The optimal OLH hash range g = ceil(e^eps + 1), never below 2.
uint32_t OlhHashRange(double epsilon);

}  // namespace felip::fo

#endif  // FELIP_FO_PROTOCOL_H_
