// Square Wave (SW) mechanism for ordinal attributes — extension protocol.
//
// Li et al., "Estimating Numerical Distributions under Local Differential
// Privacy" (SIGMOD'20), cited by the FELIP paper as the state of the art for
// reconstructing a single ordinal attribute's distribution. Included as an
// extension so 1-D marginal quality can be compared against FELIP's 1-D
// grids (bench abl6).
//
// The client maps its value to v ∈ [0, 1] and reports a draw from a
// "square wave" density on [-b, 1+b]: height p on [v-b, v+b] and q
// elsewhere, with p/q = e^eps (so the mechanism is eps-LDP) and
// b = (eps*e^eps - e^eps + 1) / (2*e^eps*(e^eps - 1 - eps)).
// The server buckets the reports and runs Expectation–Maximization —
// optionally with kernel smoothing (EMS) — to recover the histogram.

#ifndef FELIP_FO_SQUARE_WAVE_H_
#define FELIP_FO_SQUARE_WAVE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "felip/common/rng.h"

namespace felip::fo {

// The optimal half-width b for a given epsilon.
double SquareWaveHalfWidth(double epsilon);

class SwClient {
 public:
  SwClient(double epsilon, uint32_t domain);

  // Perturbs `value` in [0, domain); the report lies in [-b, 1+b].
  double Perturb(uint32_t value, Rng& rng) const;

  double b() const { return b_; }
  double p() const { return p_; }
  double q() const { return q_; }
  uint32_t domain() const { return domain_; }

 private:
  uint32_t domain_;
  double b_;
  double p_;  // in-window density
  double q_;  // out-of-window density
};

struct SwServerOptions {
  int em_iterations = 400;
  double em_threshold = 1e-7;  // stop when the estimate stops moving
  // EMS: convolve the estimate with a [1,2,1]/4 kernel each M-step, which
  // regularizes small-sample reconstructions.
  bool smoothing = true;
};

class SwServer {
 public:
  SwServer(double epsilon, uint32_t domain, SwServerOptions options = {});

  // Accumulates one perturbed report (must lie in [-b, 1+b]; reports from
  // hostile clients outside the support are clamped to the boundary).
  void Add(double report);

  // Batch ingestion, equivalent to Add() on every report: bucketing is
  // per-report and the bucket histogram is integer, so the sharded path
  // (fixed shards over up to `thread_count` threads, reduced in shard
  // order) is bit-identical to the serial path for every thread count.
  void AggregateReports(std::span<const double> reports,
                        unsigned thread_count = 0);

  // EM-reconstructed histogram over the `domain` input bins; non-negative,
  // sums to 1.
  std::vector<double> EstimateFrequencies() const;

  uint64_t num_reports() const { return num_reports_; }
  uint32_t num_buckets() const {
    return static_cast<uint32_t>(bucket_counts_.size());
  }

 private:
  // Output bucket of one (clamped) report.
  uint32_t BucketOf(double report) const;

  uint32_t domain_;
  SwServerOptions options_;
  double b_;
  double p_;
  double q_;
  uint64_t num_reports_ = 0;
  // Output buckets over [-b, 1+b].
  std::vector<uint64_t> bucket_counts_;
  // transition_[j * domain + i] = Pr[report in bucket j | true bin i].
  std::vector<double> transition_;
};

}  // namespace felip::fo

#endif  // FELIP_FO_SQUARE_WAVE_H_
