#include "felip/fo/fldp.h"

#include <cmath>
#include <limits>

#include "felip/common/check.h"
#include "felip/common/hash.h"
#include "felip/common/parallel.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"
#include "felip/simd/dispatch.h"
#include "felip/simd/kernels.h"

namespace felip::fo {

namespace {

// Derives the seed of pool subset `index` from the salt; the same
// construction as OLH's pool seeds, under a distinct hash stream.
inline uint64_t SubsetSeed(uint64_t salt, uint32_t index) {
  return XxHash64(index, salt);
}

}  // namespace

uint32_t FldpSubsetSize(const FldpOptions& options, uint64_t domain) {
  FELIP_CHECK(options.report_bits >= 1);
  const uint64_t s = std::min<uint64_t>(options.report_bits, domain);
  return static_cast<uint32_t>(s);
}

std::vector<uint32_t> FldpSubset(uint64_t pool_salt, uint32_t index,
                                 uint64_t domain, uint32_t subset_size) {
  FELIP_CHECK(subset_size >= 1 && subset_size <= domain);
  // Bucket indices are uint32; a wider domain would silently truncate the
  // candidate draws below (biased, colliding subsets that never cover the
  // upper buckets) — the same explicit guard PGR puts on its point space.
  FELIP_CHECK_MSG(domain <= std::numeric_limits<uint32_t>::max(),
                  "FLDP bucket index does not fit uint32");
  std::vector<uint32_t> subset;
  subset.reserve(subset_size);
  if (subset_size == domain) {
    // Whole-domain subsets (s == d, the OUE limit) use identity order so
    // slot j always means bucket j.
    for (uint32_t b = 0; b < subset_size; ++b) subset.push_back(b);
    return subset;
  }
  // Rejection-sampled distinct draws from a subset-seeded generator. The
  // expected draw count is s * d / (d - s + 1), tiny for s << d; the
  // subset (including slot order) is a pure function of (salt, index).
  Rng rng(SubsetSeed(pool_salt, index));
  while (subset.size() < subset_size) {
    const uint32_t candidate = static_cast<uint32_t>(rng.UniformU64(domain));
    bool seen = false;
    for (const uint32_t b : subset) seen |= b == candidate;
    if (!seen) subset.push_back(candidate);
  }
  return subset;
}

FldpClient::FldpClient(double epsilon, uint64_t domain, FldpOptions options)
    : domain_(domain),
      options_(options),
      subset_size_(FldpSubsetSize(options, domain)) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
  FELIP_CHECK_MSG(domain <= std::numeric_limits<uint32_t>::max(),
                  "FLDP bucket index does not fit uint32");
  FELIP_CHECK_MSG(options_.subset_pool_size >= 1,
                  "FLDP needs a non-empty subset pool");
  q_ = 1.0 / (std::exp(epsilon) + 1.0);
}

FldpReport FldpClient::Perturb(uint64_t value, Rng& rng) const {
  FELIP_CHECK(value < domain_);
  FldpReport report;
  report.subset_index =
      static_cast<uint32_t>(rng.UniformU64(options_.subset_pool_size));
  const std::vector<uint32_t> subset = FldpSubset(
      options_.pool_salt, report.subset_index, domain_, subset_size_);
  report.bits.resize(subset_size_);
  for (uint32_t j = 0; j < subset_size_; ++j) {
    const bool is_true_bucket = subset[j] == value;
    report.bits[j] = rng.Bernoulli(is_true_bucket ? 0.5 : q_) ? 1 : 0;
  }
  return report;
}

FldpServer::FldpServer(double epsilon, uint64_t domain, FldpOptions options)
    : domain_(domain),
      options_(options),
      subset_size_(FldpSubsetSize(options, domain)) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
  FELIP_CHECK_MSG(domain <= std::numeric_limits<uint32_t>::max(),
                  "FLDP bucket index does not fit uint32");
  FELIP_CHECK_MSG(options_.subset_pool_size >= 1,
                  "FLDP needs a non-empty subset pool");
  q_ = 1.0 / (std::exp(epsilon) + 1.0);
  counts_.assign(
      static_cast<size_t>(options_.subset_pool_size) * subset_size_, 0);
  coverage_counts_.assign(options_.subset_pool_size, 0);
  subsets_.reserve(counts_.size());
  for (uint32_t k = 0; k < options_.subset_pool_size; ++k) {
    const std::vector<uint32_t> subset =
        FldpSubset(options_.pool_salt, k, domain_, subset_size_);
    subsets_.insert(subsets_.end(), subset.begin(), subset.end());
  }
}

void FldpServer::Add(const FldpReport& report) {
  FELIP_CHECK_MSG(report.subset_index < options_.subset_pool_size,
                  "FLDP subset index outside the pool");
  FELIP_CHECK_MSG(report.bits.size() == subset_size_,
                  "FLDP bit vector length != subset size");
  const size_t base = static_cast<size_t>(report.subset_index) * subset_size_;
  for (uint32_t j = 0; j < subset_size_; ++j) {
    FELIP_CHECK(report.bits[j] <= 1);
    counts_[base + j] += report.bits[j];
  }
  FELIP_CHECK_MSG(coverage_counts_[report.subset_index] <
                      std::numeric_limits<uint32_t>::max(),
                  "FLDP pool coverage overflows uint32");
  ++coverage_counts_[report.subset_index];
  ++num_reports_;
}

void FldpServer::AggregateReports(std::span<const FldpReport> reports,
                                  unsigned thread_count) {
  if (reports.empty()) return;
  obs::ScopedTimer span("felip_fo_fldp_aggregate");
  static obs::Counter& reports_total =
      obs::Registry::Default().GetCounter("felip_fo_fldp_reports_total");
  reports_total.Increment(reports.size());
  struct Acc {
    std::vector<uint64_t> bits;
    std::vector<uint64_t> covered;
  };
  const size_t bins = counts_.size();
  const size_t pools = coverage_counts_.size();
  const simd::Level level = simd::ActiveLevel();
  Acc merged = ParallelReduce(
      reports.size(),
      [bins, pools] {
        return Acc{std::vector<uint64_t>(bins, 0),
                   std::vector<uint64_t>(pools, 0)};
      },
      [&](Acc& acc, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const FldpReport& r = reports[i];
          FELIP_CHECK_MSG(r.subset_index < options_.subset_pool_size,
                          "FLDP subset index outside the pool");
          FELIP_CHECK_MSG(r.bits.size() == subset_size_,
                          "FLDP bit vector length != subset size");
          const size_t base =
              static_cast<size_t>(r.subset_index) * subset_size_;
          for (uint32_t j = 0; j < subset_size_; ++j) {
            FELIP_CHECK(r.bits[j] <= 1);
            acc.bits[base + j] += r.bits[j];
          }
          ++acc.covered[r.subset_index];
        }
      },
      [level](Acc& into, Acc&& from) {
        simd::AddU64(level, into.bits.data(), from.bits.data(),
                     into.bits.size());
        simd::AddU64(level, into.covered.data(), from.covered.data(),
                     into.covered.size());
      },
      thread_count);
  // Screen the uint32 coverage fold for overflow before mutating any
  // state, consistent with MergeOracleState's pool-count check.
  for (size_t k = 0; k < pools; ++k) {
    FELIP_CHECK_MSG(
        static_cast<uint64_t>(coverage_counts_[k]) + merged.covered[k] <=
            std::numeric_limits<uint32_t>::max(),
        "FLDP pool coverage overflows uint32");
  }
  for (size_t b = 0; b < bins; ++b) counts_[b] += merged.bits[b];
  for (size_t k = 0; k < pools; ++k) {
    coverage_counts_[k] += static_cast<uint32_t>(merged.covered[k]);
  }
  num_reports_ += reports.size();
}

void FldpServer::RestoreState(std::vector<uint64_t> counts,
                              std::vector<uint32_t> coverage_counts,
                              uint64_t num_reports) {
  FELIP_CHECK_MSG(counts.size() == counts_.size(),
                  "restored FLDP histogram does not match K * s");
  FELIP_CHECK_MSG(coverage_counts.size() == coverage_counts_.size(),
                  "restored FLDP coverage does not match the pool size");
  counts_ = std::move(counts);
  coverage_counts_ = std::move(coverage_counts);
  num_reports_ = num_reports;
}

double FldpServer::Debias(uint64_t set_bits, uint64_t covered) const {
  if (covered == 0) return 0.0;
  const double nb = static_cast<double>(covered);
  const double rate = static_cast<double>(set_bits) / nb;
  return (rate - q_) / (0.5 - q_);
}

std::vector<double> FldpServer::EstimateFrequencies() const {
  FELIP_CHECK_MSG(num_reports_ > 0, "no FLDP reports collected");
  std::vector<uint64_t> set_bits(domain_, 0);
  std::vector<uint64_t> covered(domain_, 0);
  for (uint32_t k = 0; k < options_.subset_pool_size; ++k) {
    const uint32_t users = coverage_counts_[k];
    const size_t base = static_cast<size_t>(k) * subset_size_;
    for (uint32_t j = 0; j < subset_size_; ++j) {
      const uint32_t bucket = subsets_[base + j];
      set_bits[bucket] += counts_[base + j];
      covered[bucket] += users;
    }
  }
  std::vector<double> freq(domain_);
  for (uint64_t v = 0; v < domain_; ++v) {
    freq[v] = Debias(set_bits[v], covered[v]);
  }
  return freq;
}

double FldpServer::EstimateValue(uint64_t value) const {
  FELIP_CHECK(value < domain_);
  FELIP_CHECK_MSG(num_reports_ > 0, "no FLDP reports collected");
  uint64_t set_bits = 0;
  uint64_t covered = 0;
  for (uint32_t k = 0; k < options_.subset_pool_size; ++k) {
    const size_t base = static_cast<size_t>(k) * subset_size_;
    for (uint32_t j = 0; j < subset_size_; ++j) {
      if (subsets_[base + j] == value) {
        set_bits += counts_[base + j];
        covered += coverage_counts_[k];
      }
    }
  }
  return Debias(set_bits, covered);
}

}  // namespace felip::fo
