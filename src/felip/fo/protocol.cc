#include "felip/fo/protocol.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "felip/common/check.h"
#include "felip/fo/fldp.h"
#include "felip/fo/pgr.h"

namespace felip::fo {

std::string_view ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kGrr:
      return "GRR";
    case Protocol::kOlh:
      return "OLH";
    case Protocol::kOue:
      return "OUE";
    case Protocol::kPgr:
      return "PGR";
    case Protocol::kFldp:
      return "FLDP";
  }
  return "unknown";
}

double GrrVariance(double epsilon, uint64_t domain, uint64_t n) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 2);
  FELIP_CHECK(n > 0);
  const double e = std::exp(epsilon);
  return (e + static_cast<double>(domain) - 2.0) /
         (static_cast<double>(n) * (e - 1.0) * (e - 1.0));
}

double OlhVariance(double epsilon, uint64_t n) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(n > 0);
  const double e = std::exp(epsilon);
  return 4.0 * e / (static_cast<double>(n) * (e - 1.0) * (e - 1.0));
}

double OueVariance(double epsilon, uint64_t n) { return OlhVariance(epsilon, n); }

double PgrVariance(double epsilon, uint64_t domain, uint64_t n) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 2);
  FELIP_CHECK(n > 0);
  // Infeasible (epsilon, domain) pairs report unusable variance instead
  // of aborting, so selection paths can score PGR unconditionally.
  if (!PgrFeasible(epsilon, domain)) {
    return std::numeric_limits<double>::infinity();
  }
  const PgrParams params = PgrParams::Make(epsilon, domain);
  const double diff = params.p_star - params.q_star;
  return params.q_star * (1.0 - params.q_star) /
         (static_cast<double>(n) * diff * diff);
}

double FldpVariance(double epsilon, uint64_t domain, uint32_t report_bits,
                    uint64_t n) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 2);
  FELIP_CHECK(n > 0);
  FldpOptions options;
  options.report_bits = report_bits;
  const double s = static_cast<double>(FldpSubsetSize(options, domain));
  return (static_cast<double>(domain) / s) * OlhVariance(epsilon, n);
}

double ProtocolVariance(Protocol protocol, double epsilon, uint64_t domain,
                        uint64_t n) {
  switch (protocol) {
    case Protocol::kGrr:
      return GrrVariance(epsilon, domain, n);
    case Protocol::kOlh:
      return OlhVariance(epsilon, n);
    case Protocol::kOue:
      return OueVariance(epsilon, n);
    case Protocol::kPgr:
      return PgrVariance(epsilon, domain, n);
    case Protocol::kFldp:
      return FldpVariance(epsilon, domain, FldpOptions{}.report_bits, n);
  }
  FELIP_CHECK_MSG(false, "unreachable");
  return 0.0;
}

uint32_t OlhHashRange(double epsilon) {
  FELIP_CHECK(epsilon > 0.0);
  const double g = std::ceil(std::exp(epsilon) + 1.0);
  // Saturate instead of casting out-of-range doubles (UB for eps > ~22);
  // a hash range this wide is already indistinguishable from no hashing.
  if (!(g < 4294967296.0)) return std::numeric_limits<uint32_t>::max();
  return std::max<uint32_t>(2, static_cast<uint32_t>(g));
}

}  // namespace felip::fo
