#include "felip/fo/protocol.h"

#include <algorithm>
#include <cmath>

#include "felip/common/check.h"

namespace felip::fo {

std::string_view ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kGrr:
      return "GRR";
    case Protocol::kOlh:
      return "OLH";
    case Protocol::kOue:
      return "OUE";
  }
  return "unknown";
}

double GrrVariance(double epsilon, uint64_t domain, uint64_t n) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 2);
  FELIP_CHECK(n > 0);
  const double e = std::exp(epsilon);
  return (e + static_cast<double>(domain) - 2.0) /
         (static_cast<double>(n) * (e - 1.0) * (e - 1.0));
}

double OlhVariance(double epsilon, uint64_t n) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(n > 0);
  const double e = std::exp(epsilon);
  return 4.0 * e / (static_cast<double>(n) * (e - 1.0) * (e - 1.0));
}

double OueVariance(double epsilon, uint64_t n) { return OlhVariance(epsilon, n); }

double ProtocolVariance(Protocol protocol, double epsilon, uint64_t domain,
                        uint64_t n) {
  switch (protocol) {
    case Protocol::kGrr:
      return GrrVariance(epsilon, domain, n);
    case Protocol::kOlh:
      return OlhVariance(epsilon, n);
    case Protocol::kOue:
      return OueVariance(epsilon, n);
  }
  FELIP_CHECK_MSG(false, "unreachable");
  return 0.0;
}

uint32_t OlhHashRange(double epsilon) {
  FELIP_CHECK(epsilon > 0.0);
  const double g = std::ceil(std::exp(epsilon) + 1.0);
  return std::max<uint32_t>(2, static_cast<uint32_t>(g));
}

}  // namespace felip::fo
