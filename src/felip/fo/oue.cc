#include "felip/fo/oue.h"

#include <cmath>

#include "felip/common/check.h"
#include "felip/common/parallel.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"
#include "felip/simd/dispatch.h"
#include "felip/simd/kernels.h"

namespace felip::fo {

OueClient::OueClient(double epsilon, uint64_t domain) : domain_(domain) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
  q_ = 1.0 / (std::exp(epsilon) + 1.0);
}

std::vector<uint8_t> OueClient::Perturb(uint64_t value, Rng& rng) const {
  FELIP_CHECK(value < domain_);
  std::vector<uint8_t> bits(domain_, 0);
  for (uint64_t i = 0; i < domain_; ++i) {
    const double keep_one = (i == value) ? 0.5 : q_;
    bits[i] = rng.Bernoulli(keep_one) ? 1 : 0;
  }
  return bits;
}

OueServer::OueServer(double epsilon, uint64_t domain) : counts_(domain, 0) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
  q_ = 1.0 / (std::exp(epsilon) + 1.0);
}

void OueServer::Add(const std::vector<uint8_t>& report) {
  FELIP_CHECK(report.size() == counts_.size());
  simd::AccumulateNonzeroBytes(simd::ActiveLevel(), report.data(),
                               report.size(), counts_.data());
  ++num_reports_;
}

void OueServer::AggregateReports(
    std::span<const std::vector<uint8_t>> reports, unsigned thread_count) {
  if (reports.empty()) return;
  obs::ScopedTimer span("felip_fo_oue_aggregate");
  static obs::Counter& reports_total =
      obs::Registry::Default().GetCounter("felip_fo_oue_reports_total");
  static obs::Gauge& shard_gauge =
      obs::Registry::Default().GetGauge("felip_fo_oue_aggregate_shards");
  reports_total.Increment(reports.size());
  shard_gauge.Set(static_cast<double>(ReduceShardCount(reports.size())));
  const size_t domain = counts_.size();
  const simd::Level level = simd::ActiveLevel();
  const std::vector<uint64_t> merged = ParallelReduce(
      reports.size(),
      [domain] { return std::vector<uint64_t>(domain, 0); },
      [&](std::vector<uint64_t>& acc, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const std::vector<uint8_t>& bits = reports[i];
          FELIP_CHECK(bits.size() == acc.size());
          simd::AccumulateNonzeroBytes(level, bits.data(), bits.size(),
                                       acc.data());
        }
      },
      [level](std::vector<uint64_t>& into, std::vector<uint64_t>&& from) {
        simd::AddU64(level, into.data(), from.data(), into.size());
      },
      thread_count);
  simd::AddU64(level, counts_.data(), merged.data(), domain);
  num_reports_ += reports.size();
}

void OueServer::RestoreState(std::vector<uint64_t> counts,
                             uint64_t num_reports) {
  FELIP_CHECK_MSG(counts.size() == counts_.size(),
                  "restored OUE counts do not match the domain");
  counts_ = std::move(counts);
  num_reports_ = num_reports;
}

std::vector<double> OueServer::EstimateFrequencies() const {
  FELIP_CHECK_MSG(num_reports_ > 0, "no OUE reports collected");
  std::vector<double> freq(counts_.size());
  const double n = static_cast<double>(num_reports_);
  for (size_t v = 0; v < counts_.size(); ++v) {
    freq[v] = (static_cast<double>(counts_[v]) / n - q_) / (0.5 - q_);
  }
  return freq;
}

double OueServer::EstimateValue(uint64_t value) const {
  FELIP_CHECK(value < counts_.size());
  FELIP_CHECK_MSG(num_reports_ > 0, "no OUE reports collected");
  const double n = static_cast<double>(num_reports_);
  return (static_cast<double>(counts_[value]) / n - q_) / (0.5 - q_);
}

}  // namespace felip::fo
