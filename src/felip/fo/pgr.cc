#include "felip/fo/pgr.h"

#include <cmath>
#include <cstring>

#include "felip/common/check.h"
#include "felip/common/parallel.h"
#include "felip/fo/protocol.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"
#include "felip/simd/dispatch.h"
#include "felip/simd/kernels.h"

namespace felip::fo {

namespace {

constexpr uint32_t kMaxDimension = 32;  // t never gets near this (q >= 3)

// Cap on the prime field order: bounds e^eps before the float->uint32
// conversion in Make (undefined once the double exceeds uint32 range) and
// keeps the O(q^2) inverse-table construction affordable. epsilon beyond
// ln(kMaxFieldOrder) ~ 11.1 buys no meaningful local privacy anyway.
constexpr uint32_t kMaxFieldOrder = 1u << 16;

// Counter budget of the fast-decode DP: table and next are q^(t+1)
// uint64 entries each.
constexpr uint64_t kFastTableGate = 1ull << 28;

bool IsPrime(uint32_t n) {
  if (n < 2) return false;
  for (uint32_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

uint64_t PowQ(uint64_t q, uint32_t exp) {
  uint64_t r = 1;
  for (uint32_t i = 0; i < exp; ++i) r *= q;
  return r;
}

// Multiplicative inverses mod the prime q, by exhaustion (q is tiny).
std::vector<uint32_t> InverseTable(uint32_t q) {
  std::vector<uint32_t> inv(q, 0);
  for (uint32_t a = 1; a < q; ++a) {
    for (uint32_t b = 1; b < q; ++b) {
      if (a * b % q == 1) {
        inv[a] = b;
        break;
      }
    }
  }
  return inv;
}

// Writes the canonical representative of point `index` into x[0..t-1]:
// leading zeros, a 1 at the leading position, then the base-q digits of
// the within-block remainder. Point index blocks are ordered by leading
// position j, block j holding q^(t-1-j) points.
void PointVectorOf(uint64_t index, uint32_t q, uint32_t t, uint32_t* x) {
  uint32_t j = 0;
  uint64_t block = PowQ(q, t - 1);
  while (index >= block) {
    index -= block;
    block /= q;
    ++j;
  }
  for (uint32_t i = 0; i < t; ++i) x[i] = 0;
  x[j] = 1;
  for (uint32_t i = t; i-- > j + 1;) {
    x[i] = static_cast<uint32_t>(index % q);
    index /= q;
  }
}

// Inverse of PointVectorOf for an arbitrary nonzero vector: scale so the
// first nonzero coordinate becomes 1, then pack. `inv` is the inverse
// table mod q.
uint64_t CanonicalIndexOf(const uint32_t* w, uint32_t q, uint32_t t,
                          const std::vector<uint32_t>& inv) {
  uint32_t j = 0;
  while (j < t && w[j] == 0) ++j;
  FELIP_CHECK_MSG(j < t, "zero vector has no projective point");
  const uint32_t scale = inv[w[j]];
  uint64_t offset = 0;
  uint64_t block = PowQ(q, t - 1);
  for (uint32_t i = 0; i < j; ++i) {
    offset += block;
    block /= q;
  }
  uint64_t rem = 0;
  for (uint32_t i = j + 1; i < t; ++i) {
    rem = rem * q + (w[i] * scale) % q;
  }
  return offset + rem;
}

// Packs a full coordinate vector into its base-q integer (x_0 most
// significant); indexes the fast-decode DP tables.
uint64_t VectorIndexOf(const uint32_t* x, uint32_t q, uint32_t t) {
  uint64_t idx = 0;
  for (uint32_t i = 0; i < t; ++i) idx = idx * q + x[i];
  return idx;
}

// Derives the (q, t, num_points) shape for (epsilon, domain), or false
// when the construction is out of range: field order past kMaxFieldOrder,
// dimension past kMaxDimension, or a point index past uint32. Shared by
// Make (which aborts on failure) and PgrFeasible (which rejects).
bool DeriveShape(double epsilon, uint64_t domain, uint32_t* q_out,
                 uint32_t* t_out, uint64_t* num_points_out) {
  if (!(epsilon > 0.0) || domain < 1) return false;
  const double e = std::exp(epsilon);
  // Screen before the float->uint32 conversion: past uint32 range the
  // conversion itself is undefined behavior.
  if (!(e + 1.0 <= static_cast<double>(kMaxFieldOrder))) return false;
  uint32_t q = static_cast<uint32_t>(std::ceil(e + 1.0));
  if (q < 3) q = 3;
  while (!IsPrime(q)) ++q;
  // Smallest t >= 2 with (q^t - 1)/(q - 1) >= domain.
  uint32_t t = 2;
  uint64_t num_points = 1 + static_cast<uint64_t>(q);  // (q^2 - 1)/(q - 1)
  while (num_points < domain) {
    ++t;
    if (t >= kMaxDimension) return false;
    num_points = num_points * q + 1;
    if (num_points > 0xffffffffull) return false;
  }
  *q_out = q;
  *t_out = t;
  *num_points_out = num_points;
  return true;
}

// True when the fast-decode DP tables (q^(t+1) uint64 counters each) fit
// the allocation gate; multiplies with an overflow guard so q^(t+1) is
// never computed past uint64.
bool FastTableFits(uint32_t q, uint32_t t) {
  uint64_t size = 1;
  for (uint32_t i = 0; i <= t; ++i) {
    if (size > kFastTableGate / q) return false;
    size *= q;
  }
  return true;
}

}  // namespace

bool PgrFeasible(double epsilon, uint64_t domain) {
  uint32_t q = 0;
  uint32_t t = 0;
  uint64_t num_points = 0;
  return DeriveShape(epsilon, domain, &q, &t, &num_points);
}

PgrDecode ResolvePgrDecode(const PgrParams& params, uint64_t domain,
                           PgrDecode requested) {
  if (requested != PgrDecode::kAuto) return requested;
  // A table the fast decoder's gate would reject must never be chosen
  // automatically, however cheap its operation count looks — the regimes
  // disagree exactly on large domains, where q^(t+1) outgrows the gate
  // while t * q^(t+2) still undercuts |D| * N * t.
  if (!FastTableFits(params.q, params.t)) return PgrDecode::kDirect;
  // Direct costs ~|D| * N * t dot products; fast costs ~t * q^(t+2)
  // integer adds. Compare in doubles to dodge overflow.
  const double qd = static_cast<double>(params.q);
  const double fast_cost =
      static_cast<double>(params.t) *
      std::pow(qd, static_cast<double>(params.t + 2));
  const double direct_cost = static_cast<double>(domain) *
                             static_cast<double>(params.num_points) *
                             static_cast<double>(params.t);
  return fast_cost < direct_cost ? PgrDecode::kFast : PgrDecode::kDirect;
}

PgrParams PgrParams::Make(double epsilon, uint64_t domain) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
  PgrParams params;
  FELIP_CHECK_MSG(
      DeriveShape(epsilon, domain, &params.q, &params.t, &params.num_points),
      "PGR parameters out of range; screen with PgrFeasible first");
  const uint32_t q = params.q;
  const uint32_t t = params.t;
  const double e = std::exp(epsilon);
  const double qd = static_cast<double>(q);
  const double off = std::pow(qd, static_cast<double>(t - 1));
  const double on = (off - 1.0) / (qd - 1.0);  // points on the hyperplane
  const double z = e * off + on;
  params.p_star = e * off / z;
  params.q_star =
      std::pow(qd, static_cast<double>(t - 2)) * (e * (qd - 1.0) + 1.0) / z;
  return params;
}

PgrClient::PgrClient(double epsilon, uint64_t domain)
    : domain_(domain), params_(PgrParams::Make(epsilon, domain)) {
  off_hyperplane_ = params_.p_star;  // = Pr[<x_v, z> != 0]
  inverse_ = InverseTable(params_.q);
}

uint32_t PgrClient::Perturb(uint64_t value, Rng& rng) const {
  FELIP_CHECK(value < domain_);
  const uint32_t q = params_.q;
  const uint32_t t = params_.t;
  uint32_t x[kMaxDimension];
  uint32_t w[kMaxDimension];
  PointVectorOf(value, q, t, x);
  uint32_t lead = 0;
  while (x[lead] == 0) ++lead;  // x[lead] == 1 by canonical form

  if (rng.Bernoulli(off_hyperplane_)) {
    // Uniform point off the hyperplane x^perp: uniform target dot value
    // c != 0, free coordinates uniform, the leading coordinate solves
    // <x, w> = c (x[lead] = 1, so no inverse needed).
    const uint32_t c = 1 + static_cast<uint32_t>(rng.UniformU64(q - 1));
    uint32_t rest = 0;
    for (uint32_t i = 0; i < t; ++i) {
      if (i == lead) continue;
      w[i] = static_cast<uint32_t>(rng.UniformU64(q));
      rest = (rest + x[i] * w[i]) % q;
    }
    w[lead] = (c + q - rest) % q;
    return static_cast<uint32_t>(CanonicalIndexOf(w, q, t, inverse_));
  }
  // Uniform nonzero point on the hyperplane: free coordinates uniform,
  // leading coordinate solves <x, w> = 0; resample the all-zero draw.
  for (;;) {
    uint32_t rest = 0;
    bool any = false;
    for (uint32_t i = 0; i < t; ++i) {
      if (i == lead) continue;
      w[i] = static_cast<uint32_t>(rng.UniformU64(q));
      any |= w[i] != 0;
      rest = (rest + x[i] * w[i]) % q;
    }
    if (!any) continue;
    w[lead] = (q - rest) % q;
    return static_cast<uint32_t>(CanonicalIndexOf(w, q, t, inverse_));
  }
}

PgrServer::PgrServer(double epsilon, uint64_t domain, PgrOptions options)
    : domain_(domain),
      options_(options),
      params_(PgrParams::Make(epsilon, domain)) {
  counts_.assign(params_.num_points, 0);
}

void PgrServer::Add(uint32_t report) {
  FELIP_CHECK(report < params_.num_points);
  ++counts_[report];
  ++num_reports_;
}

void PgrServer::AggregateReports(std::span<const uint32_t> reports,
                                 unsigned thread_count) {
  if (reports.empty()) return;
  obs::ScopedTimer span("felip_fo_pgr_aggregate");
  static obs::Counter& reports_total =
      obs::Registry::Default().GetCounter("felip_fo_pgr_reports_total");
  reports_total.Increment(reports.size());
  const size_t bins = counts_.size();
  const simd::Level level = simd::ActiveLevel();
  const std::vector<uint64_t> merged = ParallelReduce(
      reports.size(),
      [bins] { return std::vector<uint64_t>(bins, 0); },
      [&](std::vector<uint64_t>& acc, size_t begin, size_t end) {
        std::vector<uint64_t> keys(end - begin);
        for (size_t i = begin; i < end; ++i) {
          FELIP_CHECK(reports[i] < params_.num_points);
          keys[i - begin] = reports[i];
        }
        simd::HistogramU64(level, keys.data(), keys.size(), acc.data(),
                           acc.size());
      },
      [level](std::vector<uint64_t>& into, std::vector<uint64_t>&& from) {
        simd::AddU64(level, into.data(), from.data(), into.size());
      },
      thread_count);
  for (size_t b = 0; b < bins; ++b) counts_[b] += merged[b];
  num_reports_ += reports.size();
}

void PgrServer::RestoreState(std::vector<uint64_t> counts,
                             uint64_t num_reports) {
  FELIP_CHECK_MSG(counts.size() == counts_.size(),
                  "restored PGR histogram does not match the point count");
  counts_ = std::move(counts);
  num_reports_ = num_reports;
}

std::vector<uint64_t> PgrServer::OrthogonalCountsDirect() const {
  const uint32_t q = params_.q;
  const uint32_t t = params_.t;
  const uint64_t n_points = params_.num_points;
  // Materialize every point's coordinates once: N * t small ints.
  std::vector<uint32_t> point_coords(n_points * t);
  for (uint64_t z = 0; z < n_points; ++z) {
    PointVectorOf(z, q, t, &point_coords[z * t]);
  }
  std::vector<uint64_t> orthogonal(domain_, 0);
  ParallelFor(domain_, [&](size_t v) {
    uint32_t x[kMaxDimension];
    PointVectorOf(v, q, t, x);
    uint64_t on = 0;
    for (uint64_t z = 0; z < n_points; ++z) {
      const uint64_t c = counts_[z];
      if (c == 0) continue;
      const uint32_t* zc = &point_coords[z * t];
      uint32_t dot = 0;
      for (uint32_t i = 0; i < t; ++i) dot += x[i] * zc[i];
      if (dot % q == 0) on += c;
    }
    orthogonal[v] = on;
  });
  return orthogonal;
}

std::vector<uint64_t> PgrServer::OrthogonalCountsFast() const {
  // The paper's fast-aggregation dynamic program: compute, for every
  // x in F_q^t, the report mass at each partial dot value c, replacing one
  // z coordinate by one x coordinate per step. After t steps
  // table[x][c] = sum_z H[z] * 1[<x, z> = c]; the orthogonal count of a
  // value is its point vector's c = 0 entry. All arithmetic is integer,
  // so the result is bit-identical to the direct path.
  const uint32_t q = params_.q;
  const uint32_t t = params_.t;
  FELIP_CHECK_MSG(FastTableFits(q, t),
                  "PGR fast decode table too large; use direct decode");
  const uint64_t space = PowQ(q, t);
  std::vector<uint64_t> table(space * q, 0);
  std::vector<uint64_t> next(space * q, 0);
  // Seed with the histogram lifted to canonical vector indices, all mass
  // at partial dot 0.
  {
    uint32_t x[kMaxDimension];
    for (uint64_t z = 0; z < params_.num_points; ++z) {
      if (counts_[z] == 0) continue;
      PointVectorOf(z, q, t, x);
      table[VectorIndexOf(x, q, t) * q + 0] = counts_[z];
    }
  }
  std::vector<uint32_t> mul(q * q);
  for (uint32_t a = 0; a < q; ++a) {
    for (uint32_t b = 0; b < q; ++b) mul[a * q + b] = a * b % q;
  }
  // Step i rewrites digit i (place value q^(t-1-i)) from z_i to x_i.
  for (uint32_t i = 0; i < t; ++i) {
    const uint64_t place = PowQ(q, t - 1 - i);
    const uint64_t outer_count = PowQ(q, i);
    std::memset(next.data(), 0, next.size() * sizeof(uint64_t));
    for (uint64_t outer = 0; outer < outer_count; ++outer) {
      const uint64_t outer_base = outer * place * q;
      for (uint64_t inner = 0; inner < place; ++inner) {
        for (uint32_t xi = 0; xi < q; ++xi) {
          uint64_t* dst = &next[(outer_base + xi * place + inner) * q];
          for (uint32_t zi = 0; zi < q; ++zi) {
            const uint64_t* src =
                &table[(outer_base + zi * place + inner) * q];
            const uint32_t shift = mul[xi * q + zi];
            for (uint32_t c = 0; c < q; ++c) {
              const uint32_t cc = c + shift < q ? c + shift : c + shift - q;
              dst[cc] += src[c];
            }
          }
        }
      }
    }
    table.swap(next);
  }
  std::vector<uint64_t> orthogonal(domain_, 0);
  uint32_t x[kMaxDimension];
  for (uint64_t v = 0; v < domain_; ++v) {
    PointVectorOf(v, q, t, x);
    orthogonal[v] = table[VectorIndexOf(x, q, t) * q + 0];
  }
  return orthogonal;
}

double PgrServer::Debias(uint64_t orthogonal) const {
  const double n = static_cast<double>(num_reports_);
  const double support = n - static_cast<double>(orthogonal);
  return (support / n - params_.q_star) / (params_.p_star - params_.q_star);
}

std::vector<double> PgrServer::EstimateFrequencies() const {
  FELIP_CHECK_MSG(num_reports_ > 0, "no PGR reports collected");
  const PgrDecode decode =
      ResolvePgrDecode(params_, domain_, options_.decode);
  const std::vector<uint64_t> orthogonal = decode == PgrDecode::kFast
                                               ? OrthogonalCountsFast()
                                               : OrthogonalCountsDirect();
  std::vector<double> freq(domain_);
  for (uint64_t v = 0; v < domain_; ++v) freq[v] = Debias(orthogonal[v]);
  return freq;
}

double PgrServer::EstimateValue(uint64_t value) const {
  FELIP_CHECK(value < domain_);
  FELIP_CHECK_MSG(num_reports_ > 0, "no PGR reports collected");
  const uint32_t q = params_.q;
  const uint32_t t = params_.t;
  uint32_t x[kMaxDimension];
  uint32_t z[kMaxDimension];
  PointVectorOf(value, q, t, x);
  uint64_t on = 0;
  for (uint64_t p = 0; p < params_.num_points; ++p) {
    if (counts_[p] == 0) continue;
    PointVectorOf(p, q, t, z);
    uint32_t dot = 0;
    for (uint32_t i = 0; i < t; ++i) dot += x[i] * z[i];
    if (dot % q == 0) on += counts_[p];
  }
  return Debias(on);
}

}  // namespace felip::fo
