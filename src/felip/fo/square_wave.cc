#include "felip/fo/square_wave.h"

#include <algorithm>
#include <cmath>

#include "felip/common/check.h"
#include "felip/common/parallel.h"

namespace felip::fo {

namespace {

// Density parameters: p (inside the window of width 2b) and q (outside),
// normalized so the total mass over [-b, 1+b] is 1, with p/q = e^eps.
void SwDensities(double epsilon, double b, double* p, double* q) {
  const double e = std::exp(epsilon);
  *q = 1.0 / (2.0 * b * e + 1.0);
  *p = e * *q;
}

// Number of output buckets: cover [-b, 1+b] at roughly the input-bin width.
uint32_t NumBuckets(uint32_t domain, double b) {
  const auto wings = static_cast<uint32_t>(
      std::ceil(b * static_cast<double>(domain)));
  return domain + 2 * wings;
}

}  // namespace

double SquareWaveHalfWidth(double epsilon) {
  FELIP_CHECK(epsilon > 0.0);
  const double e = std::exp(epsilon);
  const double denominator = 2.0 * e * (e - 1.0 - epsilon);
  // For epsilon -> 0 the closed form approaches 1/2 smoothly but the
  // denominator underflows; guard with the limit.
  if (denominator < 1e-12) return 0.5;
  const double b = (epsilon * e - e + 1.0) / denominator;
  return std::clamp(b, 1e-6, 10.0);
}

SwClient::SwClient(double epsilon, uint32_t domain)
    : domain_(domain), b_(SquareWaveHalfWidth(epsilon)) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
  SwDensities(epsilon, b_, &p_, &q_);
}

double SwClient::Perturb(uint32_t value, Rng& rng) const {
  FELIP_CHECK(value < domain_);
  // Bin center in [0, 1].
  const double v = (static_cast<double>(value) + 0.5) /
                   static_cast<double>(domain_);
  const double in_window_mass = p_ * 2.0 * b_;
  if (rng.Bernoulli(in_window_mass)) {
    return v - b_ + rng.UniformDouble() * 2.0 * b_;
  }
  // Outside: the two flanks [-b, v-b) and (v+b, 1+b] have total length 1;
  // the left flank has length exactly v.
  const double x = rng.UniformDouble();
  return x < v ? -b_ + x : v + b_ + (x - v);
}

SwServer::SwServer(double epsilon, uint32_t domain, SwServerOptions options)
    : domain_(domain), options_(std::move(options)),
      b_(SquareWaveHalfWidth(epsilon)) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
  FELIP_CHECK(options_.em_iterations >= 1);
  SwDensities(epsilon, b_, &p_, &q_);
  const uint32_t buckets = NumBuckets(domain_, b_);
  bucket_counts_.assign(buckets, 0);

  // Transition matrix: overlap of each output bucket with the p-window of
  // each input bin, remainder at density q.
  transition_.assign(static_cast<size_t>(buckets) * domain_, 0.0);
  const double lo = -b_;
  const double span = 1.0 + 2.0 * b_;
  const double bucket_width = span / static_cast<double>(buckets);
  for (uint32_t i = 0; i < domain_; ++i) {
    const double v = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(domain_);
    const double win_lo = v - b_;
    const double win_hi = v + b_;
    for (uint32_t j = 0; j < buckets; ++j) {
      const double a = lo + bucket_width * j;
      const double c = a + bucket_width;
      const double overlap =
          std::max(0.0, std::min(c, win_hi) - std::max(a, win_lo));
      transition_[static_cast<size_t>(j) * domain_ + i] =
          overlap * p_ + (bucket_width - overlap) * q_;
    }
  }
}

uint32_t SwServer::BucketOf(double report) const {
  const double lo = -b_;
  const double span = 1.0 + 2.0 * b_;
  const double clamped =
      std::clamp(report, lo, lo + span - 1e-12);
  const auto bucket = static_cast<uint32_t>(
      (clamped - lo) / span * static_cast<double>(bucket_counts_.size()));
  return std::min<uint32_t>(
      bucket, static_cast<uint32_t>(bucket_counts_.size() - 1));
}

void SwServer::Add(double report) {
  ++bucket_counts_[BucketOf(report)];
  ++num_reports_;
}

void SwServer::AggregateReports(std::span<const double> reports,
                                unsigned thread_count) {
  if (reports.empty()) return;
  const size_t buckets = bucket_counts_.size();
  const std::vector<uint64_t> merged = ParallelReduce(
      reports.size(),
      [buckets] { return std::vector<uint64_t>(buckets, 0); },
      [&](std::vector<uint64_t>& acc, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ++acc[BucketOf(reports[i])];
      },
      [](std::vector<uint64_t>& into, std::vector<uint64_t>&& from) {
        for (size_t b = 0; b < into.size(); ++b) into[b] += from[b];
      },
      thread_count);
  for (size_t b = 0; b < buckets; ++b) bucket_counts_[b] += merged[b];
  num_reports_ += reports.size();
}

std::vector<double> SwServer::EstimateFrequencies() const {
  FELIP_CHECK_MSG(num_reports_ > 0, "no SW reports collected");
  const auto buckets = static_cast<uint32_t>(bucket_counts_.size());
  const double n = static_cast<double>(num_reports_);
  std::vector<double> f(domain_, 1.0 / static_cast<double>(domain_));
  std::vector<double> predicted(buckets);
  std::vector<double> updated(domain_);

  for (int iter = 0; iter < options_.em_iterations; ++iter) {
    // E-step: predicted bucket mass under the current estimate.
    for (uint32_t j = 0; j < buckets; ++j) {
      double acc = 0.0;
      const double* row = &transition_[static_cast<size_t>(j) * domain_];
      for (uint32_t i = 0; i < domain_; ++i) acc += row[i] * f[i];
      predicted[j] = acc;
    }
    // M-step: reweight each bin by how well it explains the counts.
    double change = 0.0;
    for (uint32_t i = 0; i < domain_; ++i) {
      double weight = 0.0;
      for (uint32_t j = 0; j < buckets; ++j) {
        if (bucket_counts_[j] == 0 || predicted[j] <= 0.0) continue;
        weight += static_cast<double>(bucket_counts_[j]) / n *
                  transition_[static_cast<size_t>(j) * domain_ + i] /
                  predicted[j];
      }
      updated[i] = f[i] * weight;
    }
    // Optional EMS smoothing: [1, 2, 1] / 4 kernel.
    if (options_.smoothing && domain_ >= 3) {
      std::vector<double> smoothed(domain_);
      smoothed[0] = (2.0 * updated[0] + updated[1]) / 3.0;
      for (uint32_t i = 1; i + 1 < domain_; ++i) {
        smoothed[i] =
            (updated[i - 1] + 2.0 * updated[i] + updated[i + 1]) / 4.0;
      }
      smoothed[domain_ - 1] =
          (updated[domain_ - 2] + 2.0 * updated[domain_ - 1]) / 3.0;
      updated = std::move(smoothed);
    }
    double total = 0.0;
    for (const double v : updated) total += v;
    if (total <= 0.0) break;
    for (uint32_t i = 0; i < domain_; ++i) {
      const double next = updated[i] / total;
      change += std::fabs(next - f[i]);
      f[i] = next;
    }
    if (change < options_.em_threshold) break;
  }
  return f;
}

}  // namespace felip::fo
