#include "felip/fo/registry.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <utility>

#include "felip/common/check.h"
#include "felip/fo/frequency_oracle.h"
#include "felip/fo/grr.h"
#include "felip/fo/oue.h"

namespace felip::fo {

namespace {

// --- Report clients ---

class GrrReportClient final : public ReportClient {
 public:
  GrrReportClient(double epsilon, uint64_t domain) : client_(epsilon, domain) {}
  ReportData Perturb(uint64_t value, Rng& rng) const override {
    ReportData report;
    report.protocol = Protocol::kGrr;
    report.grr_report = client_.Perturb(value, rng);
    return report;
  }
  Protocol protocol() const override { return Protocol::kGrr; }
  uint64_t domain() const override { return client_.domain(); }

 private:
  GrrClient client_;
};

class OlhReportClient final : public ReportClient {
 public:
  OlhReportClient(double epsilon, uint64_t domain, OlhOptions options)
      : client_(epsilon, domain, options) {}
  ReportData Perturb(uint64_t value, Rng& rng) const override {
    ReportData report;
    report.protocol = Protocol::kOlh;
    report.olh = client_.Perturb(value, rng);
    return report;
  }
  Protocol protocol() const override { return Protocol::kOlh; }
  uint64_t domain() const override { return client_.domain(); }

 private:
  OlhClient client_;
};

class OueReportClient final : public ReportClient {
 public:
  OueReportClient(double epsilon, uint64_t domain) : client_(epsilon, domain) {}
  ReportData Perturb(uint64_t value, Rng& rng) const override {
    ReportData report;
    report.protocol = Protocol::kOue;
    report.oue_bits = client_.Perturb(value, rng);
    return report;
  }
  Protocol protocol() const override { return Protocol::kOue; }
  uint64_t domain() const override { return client_.domain(); }

 private:
  OueClient client_;
};

class PgrReportClient final : public ReportClient {
 public:
  PgrReportClient(double epsilon, uint64_t domain) : client_(epsilon, domain) {}
  ReportData Perturb(uint64_t value, Rng& rng) const override {
    ReportData report;
    report.protocol = Protocol::kPgr;
    report.pgr_point = client_.Perturb(value, rng);
    return report;
  }
  Protocol protocol() const override { return Protocol::kPgr; }
  uint64_t domain() const override { return client_.domain(); }

 private:
  PgrClient client_;
};

class FldpReportClient final : public ReportClient {
 public:
  FldpReportClient(double epsilon, uint64_t domain, FldpOptions options)
      : client_(epsilon, domain, options) {}
  ReportData Perturb(uint64_t value, Rng& rng) const override {
    FldpReport perturbed = client_.Perturb(value, rng);
    ReportData report;
    report.protocol = Protocol::kFldp;
    report.fldp_subset_index = perturbed.subset_index;
    report.oue_bits = std::move(perturbed.bits);
    return report;
  }
  Protocol protocol() const override { return Protocol::kFldp; }
  uint64_t domain() const override { return client_.domain(); }

 private:
  FldpClient client_;
};

// --- Factory hooks ---

template <Protocol P>
std::unique_ptr<FrequencyOracle> OracleHook(double epsilon, uint64_t domain,
                                            const ProtocolOptions& opts) {
  return MakeFrequencyOracle(P, epsilon, domain, opts);
}

std::unique_ptr<ReportClient> GrrClientHook(double epsilon, uint64_t domain,
                                            const ProtocolOptions&) {
  return std::make_unique<GrrReportClient>(epsilon, domain);
}
std::unique_ptr<ReportClient> OlhClientHook(double epsilon, uint64_t domain,
                                            const ProtocolOptions& opts) {
  return std::make_unique<OlhReportClient>(epsilon, domain, opts.olh);
}
std::unique_ptr<ReportClient> OueClientHook(double epsilon, uint64_t domain,
                                            const ProtocolOptions&) {
  return std::make_unique<OueReportClient>(epsilon, domain);
}
std::unique_ptr<ReportClient> PgrClientHook(double epsilon, uint64_t domain,
                                            const ProtocolOptions&) {
  return std::make_unique<PgrReportClient>(epsilon, domain);
}
std::unique_ptr<ReportClient> FldpClientHook(double epsilon, uint64_t domain,
                                             const ProtocolOptions& opts) {
  return std::make_unique<FldpReportClient>(epsilon, domain, opts.fldp);
}

// --- Error-model hooks ---
//
// The optimizer multiplies these by cells_in_query * base with
// base = m / (n (e^eps - 1)^2); the bracketed expressions below are kept
// verbatim from the pre-registry optimizer so AFO's planning stays
// bit-identical for GRR/OLH/OUE.

double GrrNoiseUnit(double epsilon, double total_cells,
                    const ProtocolOptions&) {
  const double e = std::exp(epsilon);
  return e + total_cells - 2.0;
}
double GrrNoiseUnitDerivative(double epsilon, double total_cells,
                              const ProtocolOptions&) {
  const double e = std::exp(epsilon);
  return e + 2.0 * total_cells - 2.0;
}

double OlhNoiseUnit(double epsilon, double, const ProtocolOptions&) {
  const double e = std::exp(epsilon);
  return 4.0 * e;
}
double OlhNoiseUnitDerivative(double epsilon, double,
                              const ProtocolOptions&) {
  const double e = std::exp(epsilon);
  return 4.0 * e;
}

double PgrNoiseUnit(double epsilon, double total_cells,
                    const ProtocolOptions&) {
  // (epsilon, cell-count) points the PGR construction cannot represent
  // score as unusable so AFO selects another protocol instead of the
  // optimizer aborting inside PgrParams::Make. The uint32 screen also
  // keeps the float->uint64 conversion below in defined range.
  if (!(total_cells <= 4294967295.0)) {
    return std::numeric_limits<double>::infinity();
  }
  const uint64_t domain =
      std::max<uint64_t>(2, static_cast<uint64_t>(std::ceil(total_cells)));
  if (!PgrFeasible(epsilon, domain)) {
    return std::numeric_limits<double>::infinity();
  }
  const PgrParams params = PgrParams::Make(epsilon, domain);
  const double e = std::exp(epsilon);
  const double diff = params.p_star - params.q_star;
  return params.q_star * (1.0 - params.q_star) * (e - 1.0) * (e - 1.0) /
         (diff * diff);
}
double PgrNoiseUnitDerivative(double epsilon, double total_cells,
                              const ProtocolOptions& opts) {
  // Piecewise constant in the cell count (steps only when the projective
  // dimension t does), so the derivative bracket is the unit itself.
  return PgrNoiseUnit(epsilon, total_cells, opts);
}

double FldpNoiseUnit(double epsilon, double total_cells,
                     const ProtocolOptions& opts) {
  // FLDP bucket indices are uint32; cell domains past that are unusable
  // (the client/server constructors reject them), so score them out.
  if (!(total_cells <= 4294967295.0)) {
    return std::numeric_limits<double>::infinity();
  }
  const double e = std::exp(epsilon);
  const double bits = static_cast<double>(opts.fldp.report_bits);
  if (total_cells <= bits) return 4.0 * e;
  return (total_cells / bits) * (4.0 * e);
}
double FldpNoiseUnitDerivative(double epsilon, double total_cells,
                               const ProtocolOptions& opts) {
  // d/dT [T * U(T)] with U = max(1, T/s) * 4e: 2 U past the subset size,
  // the OUE bracket below it.
  const double e = std::exp(epsilon);
  const double bits = static_cast<double>(opts.fldp.report_bits);
  if (total_cells <= bits) return 4.0 * e;
  return 2.0 * (total_cells / bits) * (4.0 * e);
}

// --- Variance hooks ---

double GrrVarianceHook(double epsilon, uint64_t domain, uint64_t n,
                       const ProtocolOptions&) {
  return GrrVariance(epsilon, domain, n);
}
double OlhVarianceHook(double epsilon, uint64_t, uint64_t n,
                       const ProtocolOptions&) {
  return OlhVariance(epsilon, n);
}
double OueVarianceHook(double epsilon, uint64_t, uint64_t n,
                       const ProtocolOptions&) {
  return OueVariance(epsilon, n);
}
double PgrVarianceHook(double epsilon, uint64_t domain, uint64_t n,
                       const ProtocolOptions&) {
  return PgrVariance(epsilon, domain, n);
}
double FldpVarianceHook(double epsilon, uint64_t domain, uint64_t n,
                        const ProtocolOptions& opts) {
  return FldpVariance(epsilon, domain, opts.fldp.report_bits, n);
}

// --- Report-size hooks (wire body bytes; must match felip/wire's codec) ---

uint64_t GrrReportBytes(double, uint64_t, const ProtocolOptions&) {
  return 8;  // one uint64 value
}
uint64_t OlhReportBytes(double, uint64_t, const ProtocolOptions&) {
  return 16;  // uint64 seed (or pool sentinel) + uint32 index + uint32 y
}
uint64_t OueReportBytes(double, uint64_t domain, const ProtocolOptions&) {
  return 4 + domain;  // uint32 length + one byte per domain value
}
uint64_t PgrReportBytes(double, uint64_t, const ProtocolOptions&) {
  return 4;  // one uint32 point index
}
uint64_t FldpReportBytes(double, uint64_t domain, const ProtocolOptions& opts) {
  // uint32 subset index + uint32 length + one byte per covered bucket.
  return 8 + FldpSubsetSize(opts.fldp, std::max<uint64_t>(domain, 1));
}

constexpr std::array<ProtocolTraits, kNumProtocols> kTraits = {{
    {Protocol::kGrr, "grr", ReportWire::kValue64, &OracleHook<Protocol::kGrr>,
     &GrrClientHook, /*domain_free_noise=*/false, &GrrNoiseUnit,
     &GrrNoiseUnitDerivative, &GrrVarianceHook, &GrrReportBytes},
    {Protocol::kOlh, "olh", ReportWire::kOlhTriple,
     &OracleHook<Protocol::kOlh>, &OlhClientHook, /*domain_free_noise=*/true,
     &OlhNoiseUnit, &OlhNoiseUnitDerivative, &OlhVarianceHook,
     &OlhReportBytes},
    {Protocol::kOue, "oue", ReportWire::kBitVector,
     &OracleHook<Protocol::kOue>, &OueClientHook, /*domain_free_noise=*/true,
     &OlhNoiseUnit, &OlhNoiseUnitDerivative, &OueVarianceHook,
     &OueReportBytes},
    {Protocol::kPgr, "pgr", ReportWire::kValue32,
     &OracleHook<Protocol::kPgr>, &PgrClientHook, /*domain_free_noise=*/false,
     &PgrNoiseUnit, &PgrNoiseUnitDerivative, &PgrVarianceHook,
     &PgrReportBytes},
    {Protocol::kFldp, "fldp", ReportWire::kIndexedBits,
     &OracleHook<Protocol::kFldp>, &FldpClientHook,
     /*domain_free_noise=*/false, &FldpNoiseUnit, &FldpNoiseUnitDerivative,
     &FldpVarianceHook, &FldpReportBytes},
}};

// Every Protocol enumerator has exactly one row, at its own index. Adding
// an enumerator without a registry row fails to compile here.
static_assert(kTraits.size() == kNumProtocols,
              "every Protocol needs a registry entry");
static_assert(kTraits[0].protocol == Protocol::kGrr);
static_assert(kTraits[1].protocol == Protocol::kOlh);
static_assert(kTraits[2].protocol == Protocol::kOue);
static_assert(kTraits[3].protocol == Protocol::kPgr);
static_assert(kTraits[4].protocol == Protocol::kFldp);

bool NameMatches(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] - 'A' + 'a' : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] - 'A' + 'a' : b[i];
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace

const ProtocolTraits& GetTraits(Protocol protocol) {
  const auto index = static_cast<size_t>(protocol);
  FELIP_CHECK_MSG(index < kTraits.size(), "unknown protocol");
  return kTraits[index];
}

std::span<const ProtocolTraits> AllProtocolTraits() { return kTraits; }

bool KnownProtocolByte(uint8_t raw) { return raw < kNumProtocols; }

StatusOr<Protocol> ProtocolFromName(std::string_view name) {
  for (const ProtocolTraits& traits : kTraits) {
    if (NameMatches(name, traits.name)) return traits.protocol;
  }
  return Status::InvalidArgument("unknown protocol name");
}

std::unique_ptr<ReportClient> MakeReportClient(Protocol protocol,
                                               double epsilon, uint64_t domain,
                                               const ProtocolOptions& options) {
  return GetTraits(protocol).make_client(epsilon, domain, options);
}

}  // namespace felip::fo
