// Optimized Local Hashing (Section 2.2.2).
//
// Client side: pick a hash function H from a universal family (a seeded
// xxHash64), hash the value into [0, g) with g = ceil(e^eps + 1), and apply
// GRR over the hashed domain. Server side: C(v) = #{reports supporting v},
// debiased by Phi_OLH(v) = (C(v) - n/g) / (p - 1/g).
//
// Aggregation cost: with one fresh seed per user, estimating all |D|
// frequencies costs O(n * |D|) hash evaluations. OlhOptions::seed_pool_size
// enables the *shared seed pool* mode: each user draws their seed uniformly
// from a public pool of K seeds. Seed choice is public randomness (it does
// not depend on the private value), so epsilon-LDP is unchanged, but the
// server can histogram reports by (seed, y) and aggregate in O(K * |D| + n).

#ifndef FELIP_FO_OLH_H_
#define FELIP_FO_OLH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "felip/common/rng.h"

namespace felip::fo {

struct OlhOptions {
  // 0 => a fresh random seed per user (the textbook protocol).
  // K > 0 => seeds drawn from a public pool of K seeds derived from
  // `pool_salt`; enables O(K * |D| + n) aggregation.
  uint32_t seed_pool_size = 0;
  // Salt from which pool seeds are derived; must match between client and
  // server. Ignored when seed_pool_size == 0.
  uint64_t pool_salt = 0x5eedf00d5eedf00dULL;
};

// One perturbed OLH report.
struct OlhReport {
  static constexpr uint32_t kNoPool = 0xffffffffu;

  uint64_t seed = 0;             // the hash seed used by this user
  uint32_t hashed_report = 0;    // GRR output over [0, g)
  uint32_t seed_index = kNoPool; // pool index, or kNoPool in per-user mode

  friend bool operator==(const OlhReport&, const OlhReport&) = default;
};

// Local perturbation for OLH. Immutable after construction.
class OlhClient {
 public:
  OlhClient(double epsilon, uint64_t domain, OlhOptions options = {});

  OlhReport Perturb(uint64_t value, Rng& rng) const;

  uint32_t g() const { return g_; }
  double p() const { return p_; }
  uint64_t domain() const { return domain_; }
  const OlhOptions& options() const { return options_; }

 private:
  uint64_t domain_;
  OlhOptions options_;
  uint32_t g_;
  double p_;  // Pr[hashed report = true hashed value]
};

// Aggregation and unbiased estimation for OLH.
class OlhServer {
 public:
  OlhServer(double epsilon, uint64_t domain, OlhOptions options = {});

  void Add(const OlhReport& report);

  // Batch ingestion, equivalent to Add() on every report. In pool mode the
  // (seed, y) histogram is accumulated in fixed shards over up to
  // `thread_count` threads (0 = hardware concurrency) and reduced in shard
  // order, so the counts are bit-identical to the serial path for every
  // thread count. In per-user mode reports are validated and appended; the
  // parallel work happens in EstimateFrequencies, which shards the
  // O(n * |D|) support count.
  void AggregateReports(std::span<const OlhReport> reports,
                        unsigned thread_count = 0);

  // Unbiased frequency estimates for all domain values. Support counting
  // is sharded over up to `thread_count` threads (0 = hardware
  // concurrency); supports are integers, so the estimates are identical
  // for every thread count.
  std::vector<double> EstimateFrequencies(unsigned thread_count = 0) const;

  // Unbiased frequency estimate of one value. In per-user mode this is
  // O(n); in pool mode O(K).
  double EstimateValue(uint64_t value) const;

  uint64_t num_reports() const { return num_reports_; }
  uint64_t domain() const { return domain_; }
  uint32_t g() const { return g_; }

  // --- Accumulator persistence (snapshot path) ---
  // Pool mode accumulates only the (seed_index, y) histogram; per-user
  // mode keeps the raw reports. Either is the server's entire accumulator,
  // so restoring it and continuing to Add() is bit-identical to an
  // uninterrupted run.
  const std::vector<uint32_t>& pool_counts() const { return pool_counts_; }
  const std::vector<OlhReport>& reports() const { return reports_; }

  // Replace the accumulator with previously exported state. Callers must
  // validate untrusted input first; mode/size mismatches abort.
  void RestorePoolState(std::vector<uint32_t> pool_counts,
                        uint64_t num_reports);
  void RestoreReports(std::vector<OlhReport> reports);

 private:
  double SupportCount(uint64_t value) const;
  double Debias(double support) const;

  uint64_t domain_;
  OlhOptions options_;
  uint32_t g_;
  double p_;
  uint64_t num_reports_ = 0;
  // Pool mode: histogram over (seed_index, y), size K * g.
  std::vector<uint32_t> pool_counts_;
  // Pool mode: materialized pool seeds.
  std::vector<uint64_t> pool_seeds_;
  // Per-user mode: raw reports.
  std::vector<OlhReport> reports_;
};

}  // namespace felip::fo

#endif  // FELIP_FO_OLH_H_
