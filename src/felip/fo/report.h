// Protocol-tagged perturbed reports.
//
// ReportData is the one value type every layer above fo/ moves perturbed
// reports around in: the wire codec frames it, the simulator produces it,
// sinks and the replay engine feed it back into pipelines. Exactly one
// payload is meaningful, selected by `protocol`:
//   GRR  -> grr_report
//   OLH  -> olh
//   OUE  -> oue_bits (one byte per domain value)
//   PGR  -> pgr_point (projective point index)
//   FLDP -> fldp_subset_index + oue_bits (one byte per covered bucket)
// FLDP reuses `oue_bits` for its perturbed bit vector — it is OUE
// restricted to a public subset, and sharing the field keeps ReportData a
// fixed shape across protocols.
//
// ReportClient is the device-side counterpart: one Perturb() call turns a
// raw value into a ReportData using the caller's Rng, with exactly the
// same rng trajectory as the underlying protocol client. Instances are
// immutable after construction and safe to share across users/threads.

#ifndef FELIP_FO_REPORT_H_
#define FELIP_FO_REPORT_H_

#include <cstdint>
#include <vector>

#include "felip/common/rng.h"
#include "felip/fo/olh.h"
#include "felip/fo/protocol.h"

namespace felip::fo {

struct ReportData {
  Protocol protocol = Protocol::kGrr;
  uint64_t grr_report = 0;
  OlhReport olh;
  std::vector<uint8_t> oue_bits;  // OUE bits, or FLDP subset bits
  uint32_t pgr_point = 0;
  uint32_t fldp_subset_index = 0;

  friend bool operator==(const ReportData&, const ReportData&) = default;
};

// Device-side perturbation behind one interface, so collectors need no
// per-protocol branches. Create via MakeReportClient (fo/registry.h).
class ReportClient {
 public:
  virtual ~ReportClient() = default;

  // Perturbs `value` in [0, domain) into a protocol-tagged report.
  virtual ReportData Perturb(uint64_t value, Rng& rng) const = 0;

  virtual Protocol protocol() const = 0;
  virtual uint64_t domain() const = 0;
};

}  // namespace felip::fo

#endif  // FELIP_FO_REPORT_H_
