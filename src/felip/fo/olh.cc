#include "felip/fo/olh.h"

#include <cmath>

#include "felip/common/check.h"
#include "felip/common/hash.h"
#include "felip/common/parallel.h"
#include "felip/fo/protocol.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"
#include "felip/simd/dispatch.h"
#include "felip/simd/kernels.h"

namespace felip::fo {

namespace {

// Derives the i-th pool seed from the salt. Must agree between client and
// server, so it lives here rather than in either class.
inline uint64_t PoolSeed(uint64_t salt, uint32_t index) {
  return XxHash64(index, salt);
}

}  // namespace

OlhClient::OlhClient(double epsilon, uint64_t domain, OlhOptions options)
    : domain_(domain), options_(options), g_(OlhHashRange(epsilon)) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
  const double e = std::exp(epsilon);
  p_ = e / (e + static_cast<double>(g_) - 1.0);
}

OlhReport OlhClient::Perturb(uint64_t value, Rng& rng) const {
  FELIP_CHECK(value < domain_);
  OlhReport report;
  if (options_.seed_pool_size > 0) {
    report.seed_index =
        static_cast<uint32_t>(rng.UniformU64(options_.seed_pool_size));
    report.seed = PoolSeed(options_.pool_salt, report.seed_index);
  } else {
    report.seed = rng.Next();
  }
  const uint32_t hashed = OlhHash(value, report.seed, g_);
  // GRR over the hashed domain [0, g).
  if (rng.Bernoulli(p_)) {
    report.hashed_report = hashed;
  } else {
    const uint64_t other = rng.UniformU64(g_ - 1);
    report.hashed_report =
        static_cast<uint32_t>(other >= hashed ? other + 1 : other);
  }
  return report;
}

OlhServer::OlhServer(double epsilon, uint64_t domain, OlhOptions options)
    : domain_(domain), options_(options), g_(OlhHashRange(epsilon)) {
  FELIP_CHECK(epsilon > 0.0);
  FELIP_CHECK(domain >= 1);
  const double e = std::exp(epsilon);
  p_ = e / (e + static_cast<double>(g_) - 1.0);
  if (options_.seed_pool_size > 0) {
    pool_counts_.assign(
        static_cast<size_t>(options_.seed_pool_size) * g_, 0);
    pool_seeds_.resize(options_.seed_pool_size);
    for (uint32_t i = 0; i < options_.seed_pool_size; ++i) {
      pool_seeds_[i] = PoolSeed(options_.pool_salt, i);
    }
  }
}

void OlhServer::Add(const OlhReport& report) {
  FELIP_CHECK(report.hashed_report < g_);
  if (options_.seed_pool_size > 0) {
    FELIP_CHECK_MSG(report.seed_index < options_.seed_pool_size,
                    "report missing pool index in pooled OLH mode");
    ++pool_counts_[static_cast<size_t>(report.seed_index) * g_ +
                   report.hashed_report];
  } else {
    reports_.push_back(report);
  }
  ++num_reports_;
}

void OlhServer::AggregateReports(std::span<const OlhReport> reports,
                                 unsigned thread_count) {
  if (reports.empty()) return;
  obs::ScopedTimer span("felip_fo_olh_aggregate");
  static obs::Counter& reports_total =
      obs::Registry::Default().GetCounter("felip_fo_olh_reports_total");
  static obs::Gauge& shard_gauge =
      obs::Registry::Default().GetGauge("felip_fo_olh_aggregate_shards");
  reports_total.Increment(reports.size());
  shard_gauge.Set(static_cast<double>(ReduceShardCount(reports.size())));
  if (options_.seed_pool_size > 0) {
    const size_t bins = pool_counts_.size();
    const simd::Level level = simd::ActiveLevel();
    const std::vector<uint64_t> merged = ParallelReduce(
        reports.size(),
        [bins] { return std::vector<uint64_t>(bins, 0); },
        [&](std::vector<uint64_t>& acc, size_t begin, size_t end) {
          // Validate and flatten to histogram keys, then count via the
          // dispatched kernel (lane-split for small K * g histograms).
          std::vector<uint64_t> keys(end - begin);
          for (size_t i = begin; i < end; ++i) {
            const OlhReport& r = reports[i];
            FELIP_CHECK(r.hashed_report < g_);
            FELIP_CHECK_MSG(r.seed_index < options_.seed_pool_size,
                            "report missing pool index in pooled OLH mode");
            keys[i - begin] =
                static_cast<uint64_t>(r.seed_index) * g_ + r.hashed_report;
          }
          simd::HistogramU64(level, keys.data(), keys.size(), acc.data(),
                             acc.size());
        },
        [level](std::vector<uint64_t>& into, std::vector<uint64_t>&& from) {
          simd::AddU64(level, into.data(), from.data(), into.size());
        },
        thread_count);
    for (size_t b = 0; b < bins; ++b) {
      pool_counts_[b] += static_cast<uint32_t>(merged[b]);
    }
  } else {
    for (const OlhReport& r : reports) {
      FELIP_CHECK(r.hashed_report < g_);
    }
    reports_.insert(reports_.end(), reports.begin(), reports.end());
  }
  num_reports_ += reports.size();
}

void OlhServer::RestorePoolState(std::vector<uint32_t> pool_counts,
                                 uint64_t num_reports) {
  FELIP_CHECK_MSG(options_.seed_pool_size > 0,
                  "pool state restore on a per-user-mode OLH server");
  FELIP_CHECK_MSG(pool_counts.size() == pool_counts_.size(),
                  "restored OLH pool histogram does not match K * g");
  pool_counts_ = std::move(pool_counts);
  num_reports_ = num_reports;
}

void OlhServer::RestoreReports(std::vector<OlhReport> reports) {
  FELIP_CHECK_MSG(options_.seed_pool_size == 0,
                  "raw-report restore on a pool-mode OLH server");
  for (const OlhReport& r : reports) FELIP_CHECK(r.hashed_report < g_);
  num_reports_ = reports.size();
  reports_ = std::move(reports);
}

double OlhServer::SupportCount(uint64_t value) const {
  if (options_.seed_pool_size > 0) {
    const uint64_t support = simd::OlhPoolSupport(
        simd::ActiveLevel(), value, pool_seeds_.data(), pool_seeds_.size(),
        g_, pool_counts_.data());
    return static_cast<double>(support);
  }
  uint64_t support = 0;
  for (const OlhReport& r : reports_) {
    if (OlhHash(value, r.seed, g_) == r.hashed_report) ++support;
  }
  return static_cast<double>(support);
}

double OlhServer::Debias(double support) const {
  const double n = static_cast<double>(num_reports_);
  const double inv_g = 1.0 / static_cast<double>(g_);
  return (support - n * inv_g) / (n * (p_ - inv_g));
}

std::vector<double> OlhServer::EstimateFrequencies(
    unsigned thread_count) const {
  FELIP_CHECK_MSG(num_reports_ > 0, "no OLH reports collected");
  std::vector<double> freq(domain_);
  if (options_.seed_pool_size == 0) {
    // Per-user mode: shard the O(n * |D|) support count over the reports.
    // Integer shard supports reduce to thread-count-independent totals.
    const uint64_t domain = domain_;
    const simd::Level level = simd::ActiveLevel();
    const std::vector<uint64_t> support = ParallelReduce(
        reports_.size(),
        [domain] { return std::vector<uint64_t>(domain, 0); },
        [&](std::vector<uint64_t>& acc, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            const OlhReport& r = reports_[i];
            simd::OlhSupportRange(level, r.seed, g_, r.hashed_report,
                                  /*first_value=*/0, domain, acc.data());
          }
        },
        [level](std::vector<uint64_t>& into, std::vector<uint64_t>&& from) {
          simd::AddU64(level, into.data(), from.data(), into.size());
        },
        thread_count);
    for (uint64_t v = 0; v < domain_; ++v) {
      freq[v] = Debias(static_cast<double>(support[v]));
    }
    return freq;
  }
  // Pool mode: each value's O(K) support is independent of the others.
  ParallelFor(
      domain_, [&](size_t v) { freq[v] = Debias(SupportCount(v)); },
      thread_count);
  return freq;
}

double OlhServer::EstimateValue(uint64_t value) const {
  FELIP_CHECK(value < domain_);
  FELIP_CHECK_MSG(num_reports_ > 0, "no OLH reports collected");
  return Debias(SupportCount(value));
}

}  // namespace felip::fo
