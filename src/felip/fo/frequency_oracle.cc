#include "felip/fo/frequency_oracle.h"

#include "felip/common/check.h"
#include "felip/fo/grr.h"
#include "felip/fo/oue.h"

namespace felip::fo {

namespace {

class GrrOracle final : public FrequencyOracle {
 public:
  GrrOracle(double epsilon, uint64_t domain)
      : client_(epsilon, domain), server_(epsilon, domain) {}

  void SubmitUserValue(uint64_t value, Rng& rng) override {
    server_.Add(client_.Perturb(value, rng));
  }
  std::vector<double> EstimateFrequencies() const override {
    return server_.EstimateFrequencies();
  }
  uint64_t domain() const override { return client_.domain(); }
  uint64_t num_reports() const override { return server_.num_reports(); }
  Protocol protocol() const override { return Protocol::kGrr; }

 private:
  GrrClient client_;
  GrrServer server_;
};

class OlhOracle final : public FrequencyOracle {
 public:
  OlhOracle(double epsilon, uint64_t domain, OlhOptions options)
      : client_(epsilon, domain, options),
        server_(epsilon, domain, options) {}

  void SubmitUserValue(uint64_t value, Rng& rng) override {
    server_.Add(client_.Perturb(value, rng));
  }
  std::vector<double> EstimateFrequencies() const override {
    return server_.EstimateFrequencies();
  }
  uint64_t domain() const override { return client_.domain(); }
  uint64_t num_reports() const override { return server_.num_reports(); }
  Protocol protocol() const override { return Protocol::kOlh; }

 private:
  OlhClient client_;
  OlhServer server_;
};

class OueOracle final : public FrequencyOracle {
 public:
  OueOracle(double epsilon, uint64_t domain)
      : client_(epsilon, domain), server_(epsilon, domain) {}

  void SubmitUserValue(uint64_t value, Rng& rng) override {
    server_.Add(client_.Perturb(value, rng));
  }
  std::vector<double> EstimateFrequencies() const override {
    return server_.EstimateFrequencies();
  }
  uint64_t domain() const override { return client_.domain(); }
  uint64_t num_reports() const override { return server_.num_reports(); }
  Protocol protocol() const override { return Protocol::kOue; }

 private:
  OueClient client_;
  OueServer server_;
};

}  // namespace

std::unique_ptr<FrequencyOracle> MakeFrequencyOracle(Protocol protocol,
                                                     double epsilon,
                                                     uint64_t domain,
                                                     OlhOptions olh_options) {
  switch (protocol) {
    case Protocol::kGrr:
      return std::make_unique<GrrOracle>(epsilon, domain);
    case Protocol::kOlh:
      return std::make_unique<OlhOracle>(epsilon, domain, olh_options);
    case Protocol::kOue:
      return std::make_unique<OueOracle>(epsilon, domain);
  }
  FELIP_CHECK_MSG(false, "unknown protocol");
  return nullptr;
}

}  // namespace felip::fo
