#include "felip/fo/frequency_oracle.h"

#include <limits>
#include <utility>

#include "felip/common/check.h"
#include "felip/fo/fldp.h"
#include "felip/fo/grr.h"
#include "felip/fo/oue.h"
#include "felip/fo/pgr.h"
#include "felip/fo/registry.h"

namespace felip::fo {

namespace {

class GrrOracle final : public FrequencyOracle {
 public:
  GrrOracle(double epsilon, uint64_t domain)
      : client_(epsilon, domain), server_(epsilon, domain) {}

  void SubmitUserValue(uint64_t value, Rng& rng) override {
    server_.Add(client_.Perturb(value, rng));
  }
  void BufferUserValue(uint64_t value, Rng& rng) override {
    buffer_.push_back(client_.Perturb(value, rng));
  }
  void FlushReports(unsigned thread_count) override {
    server_.AggregateReports(buffer_, thread_count);
    buffer_.clear();
  }
  size_t buffered_reports() const override { return buffer_.size(); }
  Status IngestGrrReport(uint64_t report) override {
    if (report >= client_.domain()) {
      return Status::InvalidArgument("GRR report outside the domain");
    }
    server_.Add(report);
    return Status::Ok();
  }
  OracleState ExportState() const override {
    OracleState state;
    state.protocol = Protocol::kGrr;
    state.num_reports = server_.num_reports();
    state.counts = server_.counts();
    return state;
  }
  Status RestoreState(OracleState state) override {
    if (!buffer_.empty()) {
      return Status::FailedPrecondition(
          "unflushed reports; call FlushReports");
    }
    if (state.protocol != Protocol::kGrr) {
      return Status::InvalidArgument("oracle state protocol is not GRR");
    }
    if (state.counts.size() != client_.domain()) {
      return Status::InvalidArgument("GRR state size does not match domain");
    }
    uint64_t total = 0;
    for (const uint64_t c : state.counts) total += c;
    if (total != state.num_reports) {
      return Status::InvalidArgument("GRR counts do not sum to num_reports");
    }
    server_.RestoreState(std::move(state.counts), state.num_reports);
    return Status::Ok();
  }
  StatusOr<std::vector<double>> EstimateFrequencies(unsigned) const override {
    if (!buffer_.empty()) {
      return Status::FailedPrecondition(
          "unflushed reports; call FlushReports");
    }
    return server_.EstimateFrequencies();
  }
  uint64_t domain() const override { return client_.domain(); }
  uint64_t num_reports() const override { return server_.num_reports(); }
  Protocol protocol() const override { return Protocol::kGrr; }

 private:
  GrrClient client_;
  GrrServer server_;
  std::vector<uint64_t> buffer_;
};

class OlhOracle final : public FrequencyOracle {
 public:
  OlhOracle(double epsilon, uint64_t domain, OlhOptions options)
      : client_(epsilon, domain, options),
        server_(epsilon, domain, options) {}

  void SubmitUserValue(uint64_t value, Rng& rng) override {
    server_.Add(client_.Perturb(value, rng));
  }
  void BufferUserValue(uint64_t value, Rng& rng) override {
    buffer_.push_back(client_.Perturb(value, rng));
  }
  void FlushReports(unsigned thread_count) override {
    server_.AggregateReports(buffer_, thread_count);
    buffer_.clear();
  }
  size_t buffered_reports() const override { return buffer_.size(); }
  Status IngestOlhReport(const OlhReport& report) override {
    if (report.hashed_report >= client_.g()) {
      return Status::InvalidArgument("OLH hashed report outside [0, g)");
    }
    const uint32_t pool = client_.options().seed_pool_size;
    if (pool > 0) {
      if (report.seed_index >= pool) {
        return Status::InvalidArgument("OLH seed index outside the pool");
      }
    } else if (report.seed_index != OlhReport::kNoPool) {
      return Status::InvalidArgument("OLH pool index on a per-user oracle");
    }
    server_.Add(report);
    return Status::Ok();
  }
  OracleState ExportState() const override {
    OracleState state;
    state.protocol = Protocol::kOlh;
    state.num_reports = server_.num_reports();
    state.pool_counts = server_.pool_counts();
    state.reports = server_.reports();
    return state;
  }
  Status RestoreState(OracleState state) override {
    if (!buffer_.empty()) {
      return Status::FailedPrecondition(
          "unflushed reports; call FlushReports");
    }
    if (state.protocol != Protocol::kOlh) {
      return Status::InvalidArgument("oracle state protocol is not OLH");
    }
    const uint32_t pool = client_.options().seed_pool_size;
    if (pool > 0) {
      if (!state.reports.empty()) {
        return Status::InvalidArgument("raw reports in pooled OLH state");
      }
      const size_t bins = static_cast<size_t>(pool) * client_.g();
      if (state.pool_counts.size() != bins) {
        return Status::InvalidArgument("OLH pool histogram is not K * g");
      }
      uint64_t total = 0;
      for (const uint32_t c : state.pool_counts) total += c;
      if (total != state.num_reports) {
        return Status::InvalidArgument(
            "OLH pool histogram does not sum to num_reports");
      }
      server_.RestorePoolState(std::move(state.pool_counts),
                               state.num_reports);
      return Status::Ok();
    }
    if (!state.pool_counts.empty()) {
      return Status::InvalidArgument("pool histogram in per-user OLH state");
    }
    if (state.reports.size() != state.num_reports) {
      return Status::InvalidArgument(
          "OLH report list does not match num_reports");
    }
    for (const OlhReport& r : state.reports) {
      if (r.hashed_report >= client_.g() ||
          r.seed_index != OlhReport::kNoPool) {
        return Status::InvalidArgument("invalid report in OLH state");
      }
    }
    server_.RestoreReports(std::move(state.reports));
    return Status::Ok();
  }
  StatusOr<std::vector<double>> EstimateFrequencies(
      unsigned thread_count) const override {
    if (!buffer_.empty()) {
      return Status::FailedPrecondition(
          "unflushed reports; call FlushReports");
    }
    return server_.EstimateFrequencies(thread_count);
  }
  uint64_t domain() const override { return client_.domain(); }
  uint64_t num_reports() const override { return server_.num_reports(); }
  Protocol protocol() const override { return Protocol::kOlh; }

 private:
  OlhClient client_;
  OlhServer server_;
  std::vector<OlhReport> buffer_;
};

class OueOracle final : public FrequencyOracle {
 public:
  OueOracle(double epsilon, uint64_t domain)
      : client_(epsilon, domain), server_(epsilon, domain) {}

  void SubmitUserValue(uint64_t value, Rng& rng) override {
    server_.Add(client_.Perturb(value, rng));
  }
  void BufferUserValue(uint64_t value, Rng& rng) override {
    buffer_.push_back(client_.Perturb(value, rng));
  }
  void FlushReports(unsigned thread_count) override {
    server_.AggregateReports(buffer_, thread_count);
    buffer_.clear();
  }
  size_t buffered_reports() const override { return buffer_.size(); }
  Status IngestOueReport(const std::vector<uint8_t>& bits) override {
    if (bits.size() != client_.domain()) {
      return Status::InvalidArgument("OUE bit vector length != domain");
    }
    for (const uint8_t bit : bits) {
      if (bit > 1) {
        return Status::InvalidArgument("OUE bit vector has a non-bit entry");
      }
    }
    server_.Add(bits);
    return Status::Ok();
  }
  OracleState ExportState() const override {
    OracleState state;
    state.protocol = Protocol::kOue;
    state.num_reports = server_.num_reports();
    state.counts = server_.counts();
    return state;
  }
  Status RestoreState(OracleState state) override {
    if (!buffer_.empty()) {
      return Status::FailedPrecondition(
          "unflushed reports; call FlushReports");
    }
    if (state.protocol != Protocol::kOue) {
      return Status::InvalidArgument("oracle state protocol is not OUE");
    }
    if (state.counts.size() != client_.domain()) {
      return Status::InvalidArgument("OUE state size does not match domain");
    }
    // Each report contributes at most one to every bit's count, so no bit
    // count can exceed the report total.
    for (const uint64_t c : state.counts) {
      if (c > state.num_reports) {
        return Status::InvalidArgument("OUE bit count exceeds num_reports");
      }
    }
    server_.RestoreState(std::move(state.counts), state.num_reports);
    return Status::Ok();
  }
  StatusOr<std::vector<double>> EstimateFrequencies(unsigned) const override {
    if (!buffer_.empty()) {
      return Status::FailedPrecondition(
          "unflushed reports; call FlushReports");
    }
    return server_.EstimateFrequencies();
  }
  uint64_t domain() const override { return client_.domain(); }
  uint64_t num_reports() const override { return server_.num_reports(); }
  Protocol protocol() const override { return Protocol::kOue; }

 private:
  OueClient client_;
  OueServer server_;
  std::vector<std::vector<uint8_t>> buffer_;
};

class PgrOracle final : public FrequencyOracle {
 public:
  PgrOracle(double epsilon, uint64_t domain, PgrOptions options)
      : client_(epsilon, domain), server_(epsilon, domain, options) {}

  void SubmitUserValue(uint64_t value, Rng& rng) override {
    server_.Add(client_.Perturb(value, rng));
  }
  void BufferUserValue(uint64_t value, Rng& rng) override {
    buffer_.push_back(client_.Perturb(value, rng));
  }
  void FlushReports(unsigned thread_count) override {
    server_.AggregateReports(buffer_, thread_count);
    buffer_.clear();
  }
  size_t buffered_reports() const override { return buffer_.size(); }
  Status IngestPgrReport(uint32_t point) override {
    if (point >= server_.params().num_points) {
      return Status::InvalidArgument("PGR point outside the point space");
    }
    server_.Add(point);
    return Status::Ok();
  }
  OracleState ExportState() const override {
    OracleState state;
    state.protocol = Protocol::kPgr;
    state.num_reports = server_.num_reports();
    state.counts = server_.counts();
    return state;
  }
  Status RestoreState(OracleState state) override {
    if (!buffer_.empty()) {
      return Status::FailedPrecondition(
          "unflushed reports; call FlushReports");
    }
    if (state.protocol != Protocol::kPgr) {
      return Status::InvalidArgument("oracle state protocol is not PGR");
    }
    if (state.counts.size() != server_.params().num_points) {
      return Status::InvalidArgument(
          "PGR histogram does not match the point space");
    }
    uint64_t total = 0;
    for (const uint64_t c : state.counts) total += c;
    if (total != state.num_reports) {
      return Status::InvalidArgument("PGR counts do not sum to num_reports");
    }
    server_.RestoreState(std::move(state.counts), state.num_reports);
    return Status::Ok();
  }
  StatusOr<std::vector<double>> EstimateFrequencies(unsigned) const override {
    if (!buffer_.empty()) {
      return Status::FailedPrecondition(
          "unflushed reports; call FlushReports");
    }
    return server_.EstimateFrequencies();
  }
  uint64_t domain() const override { return server_.domain(); }
  uint64_t num_reports() const override { return server_.num_reports(); }
  Protocol protocol() const override { return Protocol::kPgr; }

 private:
  PgrClient client_;
  PgrServer server_;
  std::vector<uint32_t> buffer_;
};

class FldpOracle final : public FrequencyOracle {
 public:
  FldpOracle(double epsilon, uint64_t domain, FldpOptions options)
      : client_(epsilon, domain, options), server_(epsilon, domain, options) {}

  void SubmitUserValue(uint64_t value, Rng& rng) override {
    server_.Add(client_.Perturb(value, rng));
  }
  void BufferUserValue(uint64_t value, Rng& rng) override {
    buffer_.push_back(client_.Perturb(value, rng));
  }
  void FlushReports(unsigned thread_count) override {
    server_.AggregateReports(buffer_, thread_count);
    buffer_.clear();
  }
  size_t buffered_reports() const override { return buffer_.size(); }
  Status IngestFldpReport(uint32_t subset_index,
                          const std::vector<uint8_t>& bits) override {
    if (subset_index >= client_.options().subset_pool_size) {
      return Status::InvalidArgument("FLDP subset index outside the pool");
    }
    if (bits.size() != client_.subset_size()) {
      return Status::InvalidArgument("FLDP bit vector length != subset size");
    }
    for (const uint8_t bit : bits) {
      if (bit > 1) {
        return Status::InvalidArgument("FLDP bit vector has a non-bit entry");
      }
    }
    FldpReport report;
    report.subset_index = subset_index;
    report.bits = bits;
    server_.Add(report);
    return Status::Ok();
  }
  OracleState ExportState() const override {
    OracleState state;
    state.protocol = Protocol::kFldp;
    state.num_reports = server_.num_reports();
    state.counts = server_.counts();
    state.pool_counts = server_.coverage_counts();
    return state;
  }
  Status RestoreState(OracleState state) override {
    if (!buffer_.empty()) {
      return Status::FailedPrecondition(
          "unflushed reports; call FlushReports");
    }
    if (state.protocol != Protocol::kFldp) {
      return Status::InvalidArgument("oracle state protocol is not FLDP");
    }
    const uint32_t s = client_.subset_size();
    const uint32_t pools = client_.options().subset_pool_size;
    if (state.pool_counts.size() != pools) {
      return Status::InvalidArgument(
          "FLDP coverage does not match the pool size");
    }
    if (state.counts.size() != static_cast<size_t>(pools) * s) {
      return Status::InvalidArgument("FLDP histogram is not K * s");
    }
    uint64_t total = 0;
    for (const uint32_t c : state.pool_counts) total += c;
    if (total != state.num_reports) {
      return Status::InvalidArgument(
          "FLDP coverage does not sum to num_reports");
    }
    // A slot's set-bit count can exceed neither the users who drew that
    // pool index (each contributes at most one bit per slot).
    for (uint32_t k = 0; k < pools; ++k) {
      const size_t base = static_cast<size_t>(k) * s;
      for (uint32_t j = 0; j < s; ++j) {
        if (state.counts[base + j] > state.pool_counts[k]) {
          return Status::InvalidArgument(
              "FLDP set-bit count exceeds pool coverage");
        }
      }
    }
    server_.RestoreState(std::move(state.counts), std::move(state.pool_counts),
                         state.num_reports);
    return Status::Ok();
  }
  StatusOr<std::vector<double>> EstimateFrequencies(unsigned) const override {
    if (!buffer_.empty()) {
      return Status::FailedPrecondition(
          "unflushed reports; call FlushReports");
    }
    return server_.EstimateFrequencies();
  }
  uint64_t domain() const override { return client_.domain(); }
  uint64_t num_reports() const override { return server_.num_reports(); }
  Protocol protocol() const override { return Protocol::kFldp; }

 private:
  FldpClient client_;
  FldpServer server_;
  std::vector<FldpReport> buffer_;
};

}  // namespace

Status MergeOracleState(OracleState* into, const OracleState& from) {
  if (into->protocol != from.protocol) {
    return Status::InvalidArgument(
        "cannot merge oracle states of different protocols");
  }
  if (into->counts.size() != from.counts.size()) {
    return Status::InvalidArgument(
        "cannot merge oracle states with mismatched count shapes");
  }
  if (into->pool_counts.size() != from.pool_counts.size()) {
    return Status::InvalidArgument(
        "cannot merge oracle states with mismatched pool shapes");
  }
  // Pool counts are uint32_t on the wire; screen for overflow before
  // mutating anything so a failed merge leaves `into` untouched.
  for (size_t i = 0; i < from.pool_counts.size(); ++i) {
    const uint64_t sum = static_cast<uint64_t>(into->pool_counts[i]) +
                         static_cast<uint64_t>(from.pool_counts[i]);
    if (sum > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("merged pool count overflows uint32");
    }
  }
  for (size_t i = 0; i < from.counts.size(); ++i) {
    into->counts[i] += from.counts[i];
  }
  for (size_t i = 0; i < from.pool_counts.size(); ++i) {
    into->pool_counts[i] += from.pool_counts[i];
  }
  into->reports.insert(into->reports.end(), from.reports.begin(),
                       from.reports.end());
  into->num_reports += from.num_reports;
  return Status::Ok();
}

Status FrequencyOracle::IngestReport(const ReportData& report) {
  switch (report.protocol) {
    case Protocol::kGrr:
      return IngestGrrReport(report.grr_report);
    case Protocol::kOlh:
      return IngestOlhReport(report.olh);
    case Protocol::kOue:
      return IngestOueReport(report.oue_bits);
    case Protocol::kPgr:
      return IngestPgrReport(report.pgr_point);
    case Protocol::kFldp:
      return IngestFldpReport(report.fldp_subset_index, report.oue_bits);
  }
  return Status::InvalidArgument("report has an unknown protocol tag");
}

Status FrequencyOracle::IngestGrrReport(uint64_t) {
  return Status::InvalidArgument("GRR report sent to a non-GRR oracle");
}
Status FrequencyOracle::IngestOlhReport(const OlhReport&) {
  return Status::InvalidArgument("OLH report sent to a non-OLH oracle");
}
Status FrequencyOracle::IngestOueReport(const std::vector<uint8_t>&) {
  return Status::InvalidArgument("OUE report sent to a non-OUE oracle");
}
Status FrequencyOracle::IngestPgrReport(uint32_t) {
  return Status::InvalidArgument("PGR report sent to a non-PGR oracle");
}
Status FrequencyOracle::IngestFldpReport(uint32_t,
                                         const std::vector<uint8_t>&) {
  return Status::InvalidArgument("FLDP report sent to a non-FLDP oracle");
}

void FrequencyOracle::SubmitUserValues(std::span<const uint64_t> values,
                                       Rng& rng, unsigned thread_count) {
  for (const uint64_t value : values) BufferUserValue(value, rng);
  FlushReports(thread_count);
}

std::unique_ptr<FrequencyOracle> MakeFrequencyOracle(
    Protocol protocol, double epsilon, uint64_t domain,
    const ProtocolOptions& options) {
  switch (protocol) {
    case Protocol::kGrr:
      return std::make_unique<GrrOracle>(epsilon, domain);
    case Protocol::kOlh:
      return std::make_unique<OlhOracle>(epsilon, domain, options.olh);
    case Protocol::kOue:
      return std::make_unique<OueOracle>(epsilon, domain);
    case Protocol::kPgr:
      return std::make_unique<PgrOracle>(epsilon, domain, options.pgr);
    case Protocol::kFldp:
      return std::make_unique<FldpOracle>(epsilon, domain, options.fldp);
  }
  FELIP_CHECK_MSG(false, "unknown protocol");
  return nullptr;
}

std::unique_ptr<FrequencyOracle> MakeFrequencyOracle(Protocol protocol,
                                                     double epsilon,
                                                     uint64_t domain,
                                                     OlhOptions olh_options) {
  ProtocolOptions options;
  options.olh = olh_options;
  return MakeFrequencyOracle(protocol, epsilon, domain, options);
}

}  // namespace felip::fo
