#include "felip/fo/frequency_oracle.h"

#include "felip/common/check.h"
#include "felip/fo/grr.h"
#include "felip/fo/oue.h"

namespace felip::fo {

namespace {

class GrrOracle final : public FrequencyOracle {
 public:
  GrrOracle(double epsilon, uint64_t domain)
      : client_(epsilon, domain), server_(epsilon, domain) {}

  void SubmitUserValue(uint64_t value, Rng& rng) override {
    server_.Add(client_.Perturb(value, rng));
  }
  void BufferUserValue(uint64_t value, Rng& rng) override {
    buffer_.push_back(client_.Perturb(value, rng));
  }
  void FlushReports(unsigned thread_count) override {
    server_.AggregateReports(buffer_, thread_count);
    buffer_.clear();
  }
  size_t buffered_reports() const override { return buffer_.size(); }
  bool IngestGrrReport(uint64_t report) override {
    if (report >= client_.domain()) return false;
    server_.Add(report);
    return true;
  }
  std::vector<double> EstimateFrequencies(unsigned) const override {
    FELIP_CHECK_MSG(buffer_.empty(), "unflushed reports; call FlushReports");
    return server_.EstimateFrequencies();
  }
  uint64_t domain() const override { return client_.domain(); }
  uint64_t num_reports() const override { return server_.num_reports(); }
  Protocol protocol() const override { return Protocol::kGrr; }

 private:
  GrrClient client_;
  GrrServer server_;
  std::vector<uint64_t> buffer_;
};

class OlhOracle final : public FrequencyOracle {
 public:
  OlhOracle(double epsilon, uint64_t domain, OlhOptions options)
      : client_(epsilon, domain, options),
        server_(epsilon, domain, options) {}

  void SubmitUserValue(uint64_t value, Rng& rng) override {
    server_.Add(client_.Perturb(value, rng));
  }
  void BufferUserValue(uint64_t value, Rng& rng) override {
    buffer_.push_back(client_.Perturb(value, rng));
  }
  void FlushReports(unsigned thread_count) override {
    server_.AggregateReports(buffer_, thread_count);
    buffer_.clear();
  }
  size_t buffered_reports() const override { return buffer_.size(); }
  bool IngestOlhReport(const OlhReport& report) override {
    if (report.hashed_report >= client_.g()) return false;
    const uint32_t pool = client_.options().seed_pool_size;
    if (pool > 0) {
      if (report.seed_index >= pool) return false;
    } else if (report.seed_index != OlhReport::kNoPool) {
      return false;
    }
    server_.Add(report);
    return true;
  }
  std::vector<double> EstimateFrequencies(
      unsigned thread_count) const override {
    FELIP_CHECK_MSG(buffer_.empty(), "unflushed reports; call FlushReports");
    return server_.EstimateFrequencies(thread_count);
  }
  uint64_t domain() const override { return client_.domain(); }
  uint64_t num_reports() const override { return server_.num_reports(); }
  Protocol protocol() const override { return Protocol::kOlh; }

 private:
  OlhClient client_;
  OlhServer server_;
  std::vector<OlhReport> buffer_;
};

class OueOracle final : public FrequencyOracle {
 public:
  OueOracle(double epsilon, uint64_t domain)
      : client_(epsilon, domain), server_(epsilon, domain) {}

  void SubmitUserValue(uint64_t value, Rng& rng) override {
    server_.Add(client_.Perturb(value, rng));
  }
  void BufferUserValue(uint64_t value, Rng& rng) override {
    buffer_.push_back(client_.Perturb(value, rng));
  }
  void FlushReports(unsigned thread_count) override {
    server_.AggregateReports(buffer_, thread_count);
    buffer_.clear();
  }
  size_t buffered_reports() const override { return buffer_.size(); }
  bool IngestOueReport(const std::vector<uint8_t>& bits) override {
    if (bits.size() != client_.domain()) return false;
    for (const uint8_t bit : bits) {
      if (bit > 1) return false;
    }
    server_.Add(bits);
    return true;
  }
  std::vector<double> EstimateFrequencies(unsigned) const override {
    FELIP_CHECK_MSG(buffer_.empty(), "unflushed reports; call FlushReports");
    return server_.EstimateFrequencies();
  }
  uint64_t domain() const override { return client_.domain(); }
  uint64_t num_reports() const override { return server_.num_reports(); }
  Protocol protocol() const override { return Protocol::kOue; }

 private:
  OueClient client_;
  OueServer server_;
  std::vector<std::vector<uint8_t>> buffer_;
};

}  // namespace

bool FrequencyOracle::IngestGrrReport(uint64_t) { return false; }
bool FrequencyOracle::IngestOlhReport(const OlhReport&) { return false; }
bool FrequencyOracle::IngestOueReport(const std::vector<uint8_t>&) {
  return false;
}

void FrequencyOracle::SubmitUserValues(std::span<const uint64_t> values,
                                       Rng& rng, unsigned thread_count) {
  for (const uint64_t value : values) BufferUserValue(value, rng);
  FlushReports(thread_count);
}

std::unique_ptr<FrequencyOracle> MakeFrequencyOracle(Protocol protocol,
                                                     double epsilon,
                                                     uint64_t domain,
                                                     OlhOptions olh_options) {
  switch (protocol) {
    case Protocol::kGrr:
      return std::make_unique<GrrOracle>(epsilon, domain);
    case Protocol::kOlh:
      return std::make_unique<OlhOracle>(epsilon, domain, olh_options);
    case Protocol::kOue:
      return std::make_unique<OueOracle>(epsilon, domain);
  }
  FELIP_CHECK_MSG(false, "unknown protocol");
  return nullptr;
}

}  // namespace felip::fo
