// FLDP — sampled unary encoding with a public subset pool (extension
// protocol).
//
// Zhao et al., "Frequency estimation in the shuffle model with almost a
// single message" style cost/accuracy trading, adapted to the local model
// the way FELIP consumes oracles: each user reports OUE bits for only a
// small public subset of the domain, so the report is `report_bits` bytes
// instead of |D|, and the estimator pays a d/s variance inflation in
// exchange. s = min(report_bits, d); s = d recovers OUE exactly.
//
// The subset is public randomness: a pool of K subsets is derived from
// `pool_salt` (the same construction as OLH's shared seed pool), the user
// draws a pool index uniformly, and perturbs one bit per covered bucket
// with the OUE probabilities p = 1/2 (true bucket), q = 1/(e^eps + 1).
// Because the subset choice is independent of the private value, the
// per-report privacy analysis is OUE's restricted to the subset: the
// worst-case likelihood ratio is p(1-q) / (q(1-p)) = e^eps, so the
// mechanism is eps-LDP for every pool size.
//
// Server state is a (pool index, slot) set-bit histogram plus a per-pool
// coverage count — both integer and order-independent, carried through the
// generic OracleState counts/pool_counts fields. Estimation debiases each
// bucket against the users whose subset covered it:
//   f_hat(b) = (C_b / n_b - q) / (p - q)
// with C_b the set-bit count and n_b the coverage count of bucket b.

#ifndef FELIP_FO_FLDP_H_
#define FELIP_FO_FLDP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "felip/common/rng.h"

namespace felip::fo {

struct FldpOptions {
  // Target report size in perturbed bits (= bytes on the wire); the
  // effective subset size is s = min(report_bits, domain).
  uint32_t report_bits = 8;
  // Number of public subsets in the pool. Larger pools decorrelate users
  // at the cost of a K * s server histogram.
  uint32_t subset_pool_size = 2048;
  // Salt from which pool subsets are derived; must match between client
  // and server.
  uint64_t pool_salt = 0xf1d9b1750a4c8e21ULL;
};

// One perturbed FLDP report: which public subset the user drew, and one
// perturbed bit per covered bucket (subset order).
struct FldpReport {
  uint32_t subset_index = 0;
  std::vector<uint8_t> bits;

  friend bool operator==(const FldpReport&, const FldpReport&) = default;
};

// The buckets of pool subset `index`: s distinct values in [0, domain),
// derived deterministically from the salt (rejection-sampled draws from a
// subset-seeded Rng; the identity subset when s == domain). Shared by
// client and server, and by state validation in the oracle facade.
std::vector<uint32_t> FldpSubset(uint64_t pool_salt, uint32_t index,
                                 uint64_t domain, uint32_t subset_size);

// Effective subset size for a domain.
uint32_t FldpSubsetSize(const FldpOptions& options, uint64_t domain);

// Local perturbation for FLDP. Immutable after construction.
class FldpClient {
 public:
  FldpClient(double epsilon, uint64_t domain, FldpOptions options = {});

  FldpReport Perturb(uint64_t value, Rng& rng) const;

  double p() const { return 0.5; }
  double q() const { return q_; }
  uint32_t subset_size() const { return subset_size_; }
  uint64_t domain() const { return domain_; }
  const FldpOptions& options() const { return options_; }

 private:
  uint64_t domain_;
  FldpOptions options_;
  uint32_t subset_size_;
  double q_;
};

// Aggregation and unbiased estimation for FLDP.
class FldpServer {
 public:
  FldpServer(double epsilon, uint64_t domain, FldpOptions options = {});

  // Accumulates one report (subset_index < K, bits.size() == s, 0/1).
  void Add(const FldpReport& report);

  // Batch ingestion, equivalent to Add() on every report: the (pool, slot)
  // set-bit histogram and per-pool coverage counts accumulate in fixed
  // shards over up to `thread_count` threads (0 = hardware concurrency),
  // reduced in shard order, so the counts are bit-identical to the serial
  // path for every thread count.
  void AggregateReports(std::span<const FldpReport> reports,
                        unsigned thread_count = 0);

  // Unbiased frequency estimates for all domain values. A bucket no
  // user's subset covered estimates 0.
  std::vector<double> EstimateFrequencies() const;
  double EstimateValue(uint64_t value) const;

  uint64_t num_reports() const { return num_reports_; }
  uint64_t domain() const { return domain_; }
  uint32_t subset_size() const { return subset_size_; }

  // --- Accumulator persistence (snapshot path) ---
  // Set-bit counts (K * s) plus per-pool coverage (K) are the server's
  // entire accumulator: restoring them and continuing to Add() is
  // bit-identical to never having stopped.
  const std::vector<uint64_t>& counts() const { return counts_; }
  const std::vector<uint32_t>& coverage_counts() const {
    return coverage_counts_;
  }

  // Replaces the accumulator with previously exported state. Callers must
  // validate untrusted input first; size mismatches abort.
  void RestoreState(std::vector<uint64_t> counts,
                    std::vector<uint32_t> coverage_counts,
                    uint64_t num_reports);

 private:
  double Debias(uint64_t set_bits, uint64_t covered) const;

  uint64_t domain_;
  FldpOptions options_;
  uint32_t subset_size_;
  double q_;
  uint64_t num_reports_ = 0;
  std::vector<uint64_t> counts_;           // (pool, slot) set-bit counts
  std::vector<uint32_t> coverage_counts_;  // users per pool index
  std::vector<uint32_t> subsets_;          // materialized pool, K * s
};

}  // namespace felip::fo

#endif  // FELIP_FO_FLDP_H_
