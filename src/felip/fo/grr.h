// Generalized Randomized Response (Section 2.2.1).
//
// Client side: report the true value with probability p = e^eps/(e^eps+|D|-1),
// otherwise a uniformly random *other* value. Server side: count reports per
// value and debias with Eq. 1. Split into client/server classes so the
// library is usable in a real deployment where perturbation happens on the
// user's device.

#ifndef FELIP_FO_GRR_H_
#define FELIP_FO_GRR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "felip/common/rng.h"

namespace felip::fo {

// Local perturbation for GRR. Immutable after construction; safe to share
// across users/threads (each user supplies their own Rng).
class GrrClient {
 public:
  // `domain` is |D| >= 1 (a 1-value domain degenerates to always reporting
  // that value, which is handled without division by zero).
  GrrClient(double epsilon, uint64_t domain);

  // Perturbs `value` in [0, domain).
  uint64_t Perturb(uint64_t value, Rng& rng) const;

  double p() const { return p_; }
  double q() const { return q_; }
  uint64_t domain() const { return domain_; }

 private:
  uint64_t domain_;
  double p_;  // Pr[report = true value]
  double q_;  // Pr[report = any specific other value]
};

// Aggregation and unbiased estimation for GRR.
class GrrServer {
 public:
  GrrServer(double epsilon, uint64_t domain);

  // Accumulates one perturbed report in [0, domain).
  void Add(uint64_t report);

  // Batch ingestion, equivalent to Add() on every report: the reports are
  // histogrammed in fixed shards over up to `thread_count` threads (0 =
  // hardware concurrency) and the shard histograms are reduced in shard
  // order, so the resulting counts are bit-identical to the serial path
  // for every thread count.
  void AggregateReports(std::span<const uint64_t> reports,
                        unsigned thread_count = 0);

  // Unbiased frequency estimates for all values (Eq. 1). Entries may be
  // negative; they sum to ~1 in expectation. Requires at least one report.
  std::vector<double> EstimateFrequencies() const;

  // Unbiased frequency estimate for a single value.
  double EstimateValue(uint64_t value) const;

  uint64_t num_reports() const { return num_reports_; }
  uint64_t domain() const { return static_cast<uint64_t>(counts_.size()); }

  // --- Accumulator persistence (snapshot path) ---
  // The per-value counts are the server's entire accumulator: restoring
  // them and continuing to Add() is bit-identical to never having stopped.
  const std::vector<uint64_t>& counts() const { return counts_; }

  // Replaces the accumulator with previously exported state. Callers must
  // validate untrusted input first; size mismatches abort.
  void RestoreState(std::vector<uint64_t> counts, uint64_t num_reports);

 private:
  std::vector<uint64_t> counts_;
  uint64_t num_reports_ = 0;
  double p_;
  double q_;
};

}  // namespace felip::fo

#endif  // FELIP_FO_GRR_H_
