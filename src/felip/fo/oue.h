// Optimized Unary Encoding (extension protocol).
//
// Not part of the paper's AFO (which selects between GRR and OLH), but OUE
// has the same variance as OLH with no hashing at aggregation time, so it is
// a useful third option and is exercised by the abl4 ablation bench. The
// client encodes the value as a one-hot bit vector of length |D| and flips
// each bit independently: a 1-bit stays 1 with p = 1/2, a 0-bit becomes 1
// with q = 1/(e^eps + 1).

#ifndef FELIP_FO_OUE_H_
#define FELIP_FO_OUE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "felip/common/rng.h"

namespace felip::fo {

class OueClient {
 public:
  OueClient(double epsilon, uint64_t domain);

  // Perturbed one-hot encoding of `value`; vector of 0/1 of length |D|.
  std::vector<uint8_t> Perturb(uint64_t value, Rng& rng) const;

  double p() const { return 0.5; }
  double q() const { return q_; }
  uint64_t domain() const { return domain_; }

 private:
  uint64_t domain_;
  double q_;
};

class OueServer {
 public:
  OueServer(double epsilon, uint64_t domain);

  // Accumulates one perturbed bit vector (length must equal |D|).
  void Add(const std::vector<uint8_t>& report);

  // Batch ingestion, equivalent to Add() on every report: the O(n * |D|)
  // bit summation runs in fixed shards over up to `thread_count` threads
  // (0 = hardware concurrency), reduced in shard order, so the counts are
  // bit-identical to the serial path for every thread count.
  void AggregateReports(std::span<const std::vector<uint8_t>> reports,
                        unsigned thread_count = 0);

  std::vector<double> EstimateFrequencies() const;
  double EstimateValue(uint64_t value) const;

  uint64_t num_reports() const { return num_reports_; }
  uint64_t domain() const { return static_cast<uint64_t>(counts_.size()); }

  // --- Accumulator persistence (snapshot path) ---
  // Per-bit counts plus the report total are the entire accumulator.
  const std::vector<uint64_t>& counts() const { return counts_; }

  // Replaces the accumulator with previously exported state. Callers must
  // validate untrusted input first; size mismatches abort.
  void RestoreState(std::vector<uint64_t> counts, uint64_t num_reports);

 private:
  std::vector<uint64_t> counts_;
  uint64_t num_reports_ = 0;
  double q_;
};

}  // namespace felip::fo

#endif  // FELIP_FO_OUE_H_
