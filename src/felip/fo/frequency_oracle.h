// Protocol-agnostic frequency-oracle facade.
//
// The grid-collection code (FELIP core, baselines) only needs "submit one
// user's value; later, estimate all frequencies". FrequencyOracle wraps a
// matching client/server pair behind that interface so collectors are
// independent of the protocol AFO selects. The underlying client/server
// classes remain public API for deployments that separate the two sides.

#ifndef FELIP_FO_FREQUENCY_ORACLE_H_
#define FELIP_FO_FREQUENCY_ORACLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "felip/common/rng.h"
#include "felip/fo/olh.h"
#include "felip/fo/protocol.h"

namespace felip::fo {

class FrequencyOracle {
 public:
  virtual ~FrequencyOracle() = default;

  // Perturbs `value` with the user's `rng` and accumulates the report.
  virtual void SubmitUserValue(uint64_t value, Rng& rng) = 0;

  // Unbiased frequency estimates for all domain values (may be negative).
  virtual std::vector<double> EstimateFrequencies() const = 0;

  virtual uint64_t domain() const = 0;
  virtual uint64_t num_reports() const = 0;
  virtual Protocol protocol() const = 0;
};

// Creates an oracle for `protocol`. `olh_options` applies only to OLH.
std::unique_ptr<FrequencyOracle> MakeFrequencyOracle(
    Protocol protocol, double epsilon, uint64_t domain,
    OlhOptions olh_options = {});

}  // namespace felip::fo

#endif  // FELIP_FO_FREQUENCY_ORACLE_H_
