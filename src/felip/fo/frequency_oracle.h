// Protocol-agnostic frequency-oracle facade.
//
// The grid-collection code (FELIP core, baselines) only needs "submit one
// user's value; later, estimate all frequencies". FrequencyOracle wraps a
// matching client/server pair behind that interface so collectors are
// independent of the protocol AFO selects. The underlying client/server
// classes remain public API for deployments that separate the two sides.
//
// Two ingestion paths exist:
//   * SubmitUserValue — perturb and aggregate immediately (one report).
//   * BufferUserValue + FlushReports — perturb with the exact same rng
//     trajectory, but park the report in a buffer; FlushReports hands the
//     whole buffer to the server's sharded AggregateReports, which spreads
//     the accumulation over threads with fixed shard boundaries and an
//     ordered reduction, so estimates are bit-identical to the serial path
//     for every thread count. See docs/aggregation.md.

#ifndef FELIP_FO_FREQUENCY_ORACLE_H_
#define FELIP_FO_FREQUENCY_ORACLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "felip/common/rng.h"
#include "felip/common/status.h"
#include "felip/fo/olh.h"
#include "felip/fo/protocol.h"
#include "felip/fo/report.h"

namespace felip::fo {

// Serializable accumulator state of one oracle, as exported by
// FrequencyOracle::ExportState. Only the fields matching the oracle's
// protocol (and, for OLH, its seed mode) are populated. Everything here is
// integer counts or raw reports — state whose value is independent of the
// order reports arrived in — which is what makes restore-and-continue
// bit-identical to an uninterrupted run.
//
// The fields are generic shapes, not per-protocol slots: GRR and OUE use
// `counts` as per-value (per-bit) counts, PGR uses `counts` as its
// point-index histogram, FLDP uses `counts` for (pool, slot) set-bit
// counts plus `pool_counts` for per-pool coverage, and OLH uses
// `pool_counts` (pool mode) or `reports` (per-user mode). New protocols
// whose accumulator is integer count vectors need no codec changes.
struct OracleState {
  Protocol protocol = Protocol::kGrr;
  uint64_t num_reports = 0;
  std::vector<uint64_t> counts;       // per-value / per-point / per-slot
  std::vector<uint32_t> pool_counts;  // OLH pool (seed, y); FLDP coverage
  std::vector<OlhReport> reports;     // OLH per-user mode: raw reports
};

// Folds `from` into `into` so the result equals the state of a single
// oracle that aggregated both report multisets. This is the algebra the
// distributed tier (felip/dist) is built on: every field of OracleState is
// either an integer count vector (added elementwise) or a raw report list
// (concatenated), so merging is associative and commutative up to the
// report-list order — which estimation never observes. Both operands must
// come from oracles planned identically (same protocol, domain, OLH seed
// mode); a shape mismatch returns kInvalidArgument and leaves `into`
// unchanged, as does a pool-count overflow past uint32_t.
Status MergeOracleState(OracleState* into, const OracleState& from);

class FrequencyOracle {
 public:
  virtual ~FrequencyOracle() = default;

  // Perturbs `value` with the user's `rng` and accumulates the report.
  virtual void SubmitUserValue(uint64_t value, Rng& rng) = 0;

  // Perturbs `value` exactly like SubmitUserValue (identical rng
  // trajectory) but parks the perturbed report in a buffer instead of
  // aggregating it.
  virtual void BufferUserValue(uint64_t value, Rng& rng) = 0;

  // Aggregates all buffered reports with the server's sharded parallel
  // path over up to `thread_count` threads (0 = hardware concurrency, 1 =
  // serial) and clears the buffer. Estimates are identical for every
  // thread count.
  virtual void FlushReports(unsigned thread_count = 0) = 0;

  // Reports buffered but not yet flushed.
  virtual size_t buffered_reports() const = 0;

  // --- Untrusted-report ingestion (network path) ---
  //
  // Aggregates one already-perturbed report after validating it against
  // this oracle's protocol and domain. Unlike the server Add() methods
  // (which FELIP_CHECK their input), these return kInvalidArgument on
  // invalid input so a service can count and drop bad reports from the
  // network instead of aborting. Each oracle accepts only its own
  // protocol's overload; the others reject. IngestReport dispatches a
  // protocol-tagged ReportData to the matching overload (rejecting a
  // report whose tag differs from this oracle's protocol), so callers
  // outside fo/ never branch on the protocol.
  Status IngestReport(const ReportData& report);
  virtual Status IngestGrrReport(uint64_t report);
  virtual Status IngestOlhReport(const OlhReport& report);
  virtual Status IngestOueReport(const std::vector<uint8_t>& bits);
  virtual Status IngestPgrReport(uint32_t point);
  virtual Status IngestFldpReport(uint32_t subset_index,
                                  const std::vector<uint8_t>& bits);

  // --- Accumulator persistence (snapshot path) ---
  //
  // ExportState copies the server accumulator into a protocol-tagged
  // value; RestoreState replaces the accumulator with a previously
  // exported one. State read back from disk is untrusted even after
  // checksums pass (a snapshot from a different config can be internally
  // consistent but wrong for *this* oracle), so RestoreState validates
  // protocol, shapes, and report ranges and returns kInvalidArgument
  // rather than aborting. Restoring over unflushed buffered reports
  // returns kFailedPrecondition.
  virtual OracleState ExportState() const = 0;
  virtual Status RestoreState(OracleState state) = 0;

  // Unbiased frequency estimates for all domain values (may be negative).
  // Returns kFailedPrecondition while reports are buffered but unflushed
  // (call FlushReports first); `thread_count` bounds the threads used by
  // protocols that parallelize estimation.
  virtual StatusOr<std::vector<double>> EstimateFrequencies(
      unsigned thread_count = 0) const = 0;

  virtual uint64_t domain() const = 0;
  virtual uint64_t num_reports() const = 0;
  virtual Protocol protocol() const = 0;

  // Convenience: buffer every value in order (same rng trajectory as
  // submitting them one by one), then flush once with `thread_count`.
  void SubmitUserValues(std::span<const uint64_t> values, Rng& rng,
                        unsigned thread_count = 0);
};

// Creates an oracle for `protocol`. `olh_options` applies only to OLH;
// other protocols get default options. The registry overload
// (fo/registry.h) accepts a full ProtocolOptions.
std::unique_ptr<FrequencyOracle> MakeFrequencyOracle(
    Protocol protocol, double epsilon, uint64_t domain,
    OlhOptions olh_options = {});

}  // namespace felip::fo

#endif  // FELIP_FO_FREQUENCY_ORACLE_H_
