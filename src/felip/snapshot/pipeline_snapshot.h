// Pipeline <-> snapshot codec.
//
// PipelineCodec serializes a FelipPipeline's *complete* state into the
// section container (felip/snapshot/format.h) and reconstructs an
// equivalent pipeline from those bytes:
//
//   * kConfig / kSchema — the full FelipConfig and attribute schema, so a
//     loaded snapshot replans the exact same grid layout with no
//     out-of-band context. (The legacy wire::EncodeSnapshot persisted only
//     a config subset; this format has no such fidelity gap.)
//   * kState — lifecycle state + reports ingested so far.
//   * kOracles (kCollecting / kSealed) — every grid's oracle accumulator
//     (fo::OracleState: integer counts or raw OLH reports). Restoring and
//     continuing ingestion is bit-identical to never having stopped,
//     because estimates depend only on the multiset of accepted reports.
//   * kGridFrequencies (kQueryable) — the post-processed per-grid
//     estimates; response matrices are rebuilt deterministically on load
//     unless kResponseMatrices was persisted
//     (SnapshotOptions::include_response_matrices), which trades bytes for
//     skipping the IPF fit on warm restart.
//   * kDedup — the ingest service's drained trailer keys, oldest first, so
//     a restarted server recognizes resent batches it already counted.
//
// Decode validates everything semantically (shape against the replanned
// layout, oracle state via FrequencyOracle::RestoreState) and returns
// Status on any mismatch: a checksum-valid snapshot from a different
// config must fail cleanly, never abort or silently mis-restore.

#ifndef FELIP_SNAPSHOT_PIPELINE_SNAPSHOT_H_
#define FELIP_SNAPSHOT_PIPELINE_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "felip/common/status.h"
#include "felip/core/felip.h"

namespace felip::snapshot {

// A decoded snapshot: the reconstructed pipeline plus the service-layer
// dedup keys that were captured with it.
struct RecoveredPipeline {
  core::FelipPipeline pipeline;
  std::vector<uint64_t> dedup_keys;
};

// --- Shared section codecs ---
//
// The kConfig / kSchema section payloads double as the "plan descriptor"
// other durable formats embed (the report log in felip/replaylog writes
// one into every segment header), so their codecs are exposed here.
// Grid planning is deterministic in (schema, num_users, config): any two
// artifacts carrying equal section bytes replan the identical layout.
// Decoding validates semantically (enum ranges, positive epsilon,
// non-empty schema) and returns Status — these bytes come from disk.

std::vector<uint8_t> EncodeConfigSection(const core::FelipConfig& config,
                                         uint64_t num_users);
Status DecodeConfigSection(const std::vector<uint8_t>& payload,
                           core::FelipConfig* config, uint64_t* num_users);

std::vector<uint8_t> EncodeSchemaSection(
    const std::vector<data::AttributeInfo>& schema);
Status DecodeSchemaSection(const std::vector<uint8_t>& payload,
                           std::vector<data::AttributeInfo>* schema);

class PipelineCodec {
 public:
  // Serializes `pipeline` (any state) and `dedup_keys` to snapshot bytes.
  // Never fails: encoding reads only in-memory state the pipeline already
  // validated.
  static std::vector<uint8_t> Encode(const core::FelipPipeline& pipeline,
                                     const core::SnapshotOptions& options,
                                     std::span<const uint64_t> dedup_keys);

  // Verifies and decodes `bytes` into a pipeline in the captured state.
  static StatusOr<RecoveredPipeline> Decode(
      const std::vector<uint8_t>& bytes);

  // --- Accumulator section codec (shared with felip/dist) ---
  //
  // The kOracles section payload doubles as the body of a distributed
  // accumulator frame: EncodeOracleSection serializes every grid oracle's
  // exported state (count 0 before BeginIngest), and DecodeOracleSection
  // parses the states back for FelipPipeline::MergeAccumulators. Reusing
  // the snapshot bytes means the on-disk and on-wire accumulator formats
  // can never drift apart.
  static std::vector<uint8_t> EncodeOracleSection(
      const core::FelipPipeline& pipeline);
  static Status DecodeOracleSection(const std::vector<uint8_t>& payload,
                                    std::vector<fo::OracleState>* states);
};

}  // namespace felip::snapshot

#endif  // FELIP_SNAPSHOT_PIPELINE_SNAPSHOT_H_
