#include "felip/snapshot/format.h"

#include <cstring>

#include "felip/common/hash.h"
#include "felip/wire/framing.h"

namespace felip::snapshot {

SnapshotWriter::SnapshotWriter(uint8_t state_byte) {
  wire::Writer w(&buffer_);
  w.Put<uint32_t>(kMagic);
  w.Put<uint8_t>(kFormatVersion);
  w.Put<uint8_t>(state_byte);
}

void SnapshotWriter::AppendSection(SectionId id,
                                   const std::vector<uint8_t>& payload) {
  wire::Writer w(&buffer_);
  w.Put<uint8_t>(static_cast<uint8_t>(id));
  w.Put<uint64_t>(payload.size());
  w.PutBytes(payload.data(), payload.size());
  w.Put<uint64_t>(XxHash64Bytes(payload.data(), payload.size(),
                                kChecksumSalt));
}

std::vector<uint8_t> SnapshotWriter::Finish() && {
  wire::SealChecksum(&buffer_, kChecksumSalt);
  return std::move(buffer_);
}

StatusOr<SnapshotReader> SnapshotReader::Open(
    const std::vector<uint8_t>& bytes) {
  // The file seal covers everything, so verify it first: any truncation
  // or bit flip anywhere fails here with one uniform error.
  if (!wire::CheckSealedChecksum(bytes, kChecksumSalt)) {
    return Status::DataLoss("snapshot file checksum mismatch");
  }
  const std::vector<uint8_t> body(bytes.begin(),
                                  bytes.end() - sizeof(uint64_t));
  wire::Reader r(body);

  uint32_t magic = 0;
  uint8_t version = 0;
  SnapshotReader reader;
  if (!r.Get(&magic) || !r.Get(&version) || !r.Get(&reader.state_byte_)) {
    return Status::DataLoss("snapshot header is truncated");
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("not a snapshot file (bad magic)");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "snapshot format version is not supported");
  }

  while (r.remaining() > 0) {
    uint8_t id = 0;
    uint64_t len = 0;
    if (!r.Get(&id) || !r.Get(&len)) {
      return Status::DataLoss("snapshot section header is truncated");
    }
    if (len > r.remaining() || r.remaining() - len < sizeof(uint64_t)) {
      return Status::DataLoss("snapshot section length exceeds the file");
    }
    Section section;
    section.id = static_cast<SectionId>(id);
    section.payload.assign(r.cursor(), r.cursor() + len);
    r.Skip(static_cast<size_t>(len));
    uint64_t stored = 0;
    r.Get(&stored);
    if (XxHash64Bytes(section.payload.data(), section.payload.size(),
                      kChecksumSalt) != stored) {
      return Status::DataLoss("snapshot section checksum mismatch");
    }
    reader.sections_.push_back(std::move(section));
  }
  return reader;
}

const std::vector<uint8_t>* SnapshotReader::FindSection(SectionId id) const {
  for (const Section& section : sections_) {
    if (section.id == id) return &section.payload;
  }
  return nullptr;
}

}  // namespace felip::snapshot
