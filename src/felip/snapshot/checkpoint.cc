#include "felip/snapshot/checkpoint.h"

#include <chrono>
#include <utility>

#include "felip/common/check.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"

namespace felip::snapshot {

Checkpointer::Checkpointer(SnapshotStore* store,
                           const core::FelipPipeline* pipeline,
                           core::SnapshotOptions options)
    : store_(store), pipeline_(pipeline), options_(options) {
  FELIP_CHECK(store != nullptr);
  FELIP_CHECK(pipeline != nullptr);
}

void Checkpointer::set_pipeline(const core::FelipPipeline* pipeline) {
  FELIP_CHECK(pipeline != nullptr);
  pipeline_ = pipeline;
}

Status Checkpointer::Checkpoint(std::span<const uint64_t> drained_keys) {
  obs::ScopedTimer span("felip_snapshot_write");
  const auto start = std::chrono::steady_clock::now();
  const std::vector<uint8_t> bytes =
      PipelineCodec::Encode(*pipeline_, options_, drained_keys);
  FELIP_ASSIGN_OR_RETURN(const std::string path, store_->Write(bytes));
  (void)path;
  ++snapshots_written_;
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  obs::Registry::Default()
      .GetGauge("felip_snapshot_bytes")
      .Set(static_cast<double>(bytes.size()));
  obs::Registry::Default()
      .GetHistogram("felip_snapshot_write_seconds")
      .Observe(elapsed.count());
  return Status::Ok();
}

StatusOr<Recovered> RecoverFromStore(const SnapshotStore& store) {
  size_t skipped = 0;
  for (const std::string& path : store.ListNewestFirst()) {
    const StatusOr<std::vector<uint8_t>> bytes = ReadFileBytes(path);
    if (!bytes.ok()) {
      ++skipped;
      continue;
    }
    StatusOr<RecoveredPipeline> decoded = PipelineCodec::Decode(*bytes);
    if (!decoded.ok()) {
      // Truncated or bit-flipped snapshot: fall back to the previous
      // rotation rather than failing recovery outright.
      ++skipped;
      continue;
    }
    obs::Registry::Default()
        .GetCounter("felip_snapshot_recoveries_total")
        .Increment();
    return Recovered{std::move(decoded).value(), path, skipped};
  }
  return Status::NotFound("no verifiable snapshot in the store");
}

}  // namespace felip::snapshot
