// On-disk snapshot store: atomic commits and keep-last-N rotation.
//
// A SnapshotStore owns one directory of snapshot files named
// snapshot-<seq>.felip with a monotonically increasing sequence number.
// Write() lands bytes via tmp-file + fsync + atomic rename, so a crash at
// any instant leaves either the previous set of snapshots or the previous
// set plus one complete new file — never a torn file under a final name.
// After each successful commit the oldest files beyond keep_last_n are
// deleted, newest first wins.
//
// Reading is recovery-oriented: ListNewestFirst() enumerates candidates,
// and callers walk them newest to oldest until one verifies (see
// felip/snapshot/checkpoint.h), so a corrupted newest snapshot degrades to
// the previous rotation instead of failing recovery outright.

#ifndef FELIP_SNAPSHOT_STORE_H_
#define FELIP_SNAPSHOT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "felip/common/status.h"

namespace felip::snapshot {

// Reads an entire file. kNotFound when it cannot be opened, kUnavailable
// on a read error.
StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

// Writes `bytes` to `path` atomically: a sibling tmp file is written,
// flushed to disk, and renamed over `path`. kUnavailable on any I/O
// failure (the tmp file is cleaned up).
Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes);

class SnapshotStore {
 public:
  // `dir` is created if absent. `keep_last_n` >= 1 bounds how many
  // committed snapshots survive rotation.
  SnapshotStore(std::string dir, size_t keep_last_n = 3);

  // Commits `bytes` as the next snapshot in sequence and rotates old
  // files. Returns the committed file's path.
  StatusOr<std::string> Write(const std::vector<uint8_t>& bytes);

  // Absolute-ordered snapshot paths, newest (highest sequence) first.
  std::vector<std::string> ListNewestFirst() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  size_t keep_last_n_;
  uint64_t next_seq_ = 1;  // advanced past existing files at construction
};

}  // namespace felip::snapshot

#endif  // FELIP_SNAPSHOT_STORE_H_
