// Snapshot container format.
//
// A snapshot file is a sequence of independently checksummed sections
// inside a sealed envelope, built from the shared framing toolkit
// (felip/wire/framing.h):
//
//   [magic u32 'FSNP'] [format-version u8] [state u8]
//   section*  where section = [id u8] [len u64] [payload] [xxh64(payload)]
//   [file xxHash64 over everything above]
//
// Sections carry their own checksum so a reader can name *which* part of
// a damaged file failed, and the whole file carries a second seal so
// truncation after the last section is still detected. Unknown section
// ids are skipped (their checksum is still verified), which is what lets
// older readers open newer files within one format version.
//
// Everything here returns Status on malformed input — snapshot bytes come
// from disk and may be truncated, bit-flipped, or written by a future
// version, none of which is programmer error.

#ifndef FELIP_SNAPSHOT_FORMAT_H_
#define FELIP_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <vector>

#include "felip/common/status.h"

namespace felip::snapshot {

// "FSNP" — distinct from the wire envelope magic "FELP" so a snapshot file
// fed to a wire decoder (or vice versa) fails fast on the first 4 bytes.
inline constexpr uint32_t kMagic = 0x46534e50;
inline constexpr uint8_t kFormatVersion = 1;
// "snapcsum" — distinct from the wire checksum salt so bytes sealed for
// one format never verify under the other.
inline constexpr uint64_t kChecksumSalt = 0x736e6170'6373756dULL;

enum class SectionId : uint8_t {
  kConfig = 1,            // FelipConfig + num_users
  kSchema = 2,            // attribute names / domains / kinds
  kState = 3,             // lifecycle state + reports_ingested
  kOracles = 4,           // per-grid oracle accumulators (mid-round)
  kGridFrequencies = 5,   // post-processed estimates (finalized)
  kResponseMatrices = 6,  // optional: converged response-matrix blocks
  kDedup = 7,             // ingest dedup trailer keys, oldest first
};

// Builds a snapshot byte stream section by section. Sections are written
// in call order; Finish() seals the file and invalidates the writer.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(uint8_t state_byte);

  void AppendSection(SectionId id, const std::vector<uint8_t>& payload);

  // Appends the file-level checksum and returns the complete file bytes.
  std::vector<uint8_t> Finish() &&;

 private:
  std::vector<uint8_t> buffer_;
};

// Parses and fully verifies a snapshot byte stream up front: envelope,
// every section checksum, and the file seal. After Open() succeeds the
// sections are structurally sound; their *contents* are still untrusted
// (a checksum-valid file from a different config decodes cleanly but must
// not restore into this pipeline — semantic validation is the codec's
// job).
class SnapshotReader {
 public:
  struct Section {
    SectionId id;
    std::vector<uint8_t> payload;
  };

  static StatusOr<SnapshotReader> Open(const std::vector<uint8_t>& bytes);

  uint8_t state_byte() const { return state_byte_; }

  // First section with `id`, or nullptr when absent.
  const std::vector<uint8_t>* FindSection(SectionId id) const;

  const std::vector<Section>& sections() const { return sections_; }

 private:
  SnapshotReader() = default;

  uint8_t state_byte_ = 0;
  std::vector<Section> sections_;
};

}  // namespace felip::snapshot

#endif  // FELIP_SNAPSHOT_FORMAT_H_
