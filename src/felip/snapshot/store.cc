#include "felip/snapshot/store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "felip/common/check.h"

namespace felip::snapshot {

namespace fs = std::filesystem;

namespace {

constexpr char kPrefix[] = "snapshot-";
constexpr char kSuffix[] = ".felip";

// Sequence number of a snapshot file name, or 0 when the name does not
// match snapshot-<seq>.felip.
uint64_t SequenceOf(const std::string& name) {
  const std::string_view prefix(kPrefix);
  const std::string_view suffix(kSuffix);
  if (name.size() <= prefix.size() + suffix.size()) return 0;
  if (name.compare(0, prefix.size(), prefix) != 0) return 0;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return 0;
  }
  uint64_t seq = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

}  // namespace

StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open file for reading: " + path);
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[1 << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::Unavailable("read error on file: " + path);
  }
  return bytes;
}

Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Unavailable("cannot open tmp file for writing: " + tmp);
  }
  const size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), file);
  // fflush pushes the bytes to the OS before the rename makes the file
  // visible under its final name; a torn final file would defeat the
  // whole checksummed-recovery design.
  const bool flushed = std::fflush(file) == 0;
  std::fclose(file);
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Unavailable("short write to tmp file: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot rename tmp file into place: " + path);
  }
  return Status::Ok();
}

SnapshotStore::SnapshotStore(std::string dir, size_t keep_last_n)
    : dir_(std::move(dir)), keep_last_n_(keep_last_n) {
  FELIP_CHECK_MSG(keep_last_n_ >= 1, "keep_last_n must be at least 1");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  // Resume the sequence past any existing snapshots so a restarted server
  // never reuses (and silently clobbers) a committed name.
  for (const std::string& path : ListNewestFirst()) {
    const uint64_t seq = SequenceOf(fs::path(path).filename().string());
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

StatusOr<std::string> SnapshotStore::Write(const std::vector<uint8_t>& bytes) {
  const uint64_t seq = next_seq_;
  const std::string path =
      (fs::path(dir_) / (kPrefix + std::to_string(seq) + kSuffix)).string();
  FELIP_RETURN_IF_ERROR(WriteFileAtomic(path, bytes));
  next_seq_ = seq + 1;

  // Rotation failures are ignored on purpose: the new snapshot is already
  // durable, and leaking an old file is strictly better than failing the
  // checkpoint that produced a good one.
  const std::vector<std::string> all = ListNewestFirst();
  for (size_t i = keep_last_n_; i < all.size(); ++i) {
    std::error_code ec;
    fs::remove(all[i], ec);
  }
  return path;
}

std::vector<std::string> SnapshotStore::ListNewestFirst() const {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const uint64_t seq = SequenceOf(it->path().filename().string());
    if (seq > 0) found.emplace_back(seq, it->path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [seq, path] : found) paths.push_back(std::move(path));
  return paths;
}

}  // namespace felip::snapshot
