#include "felip/snapshot/pipeline_snapshot.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "felip/common/check.h"
#include "felip/fo/registry.h"
#include "felip/obs/metrics.h"
#include "felip/obs/trace.h"
#include "felip/snapshot/format.h"
#include "felip/snapshot/store.h"
#include "felip/wire/framing.h"

namespace felip::snapshot {

namespace {

using core::FelipConfig;
using core::FelipPipeline;
using core::PipelineState;
using data::AttributeInfo;
using wire::Reader;
using wire::Writer;

Status Malformed(const char* what) { return Status::InvalidArgument(what); }

}  // namespace

// --- kConfig ---

std::vector<uint8_t> EncodeConfigSection(const FelipConfig& config,
                                         uint64_t num_users) {
  std::vector<uint8_t> payload;
  Writer w(&payload);
  w.Put<uint64_t>(num_users);
  w.Put<uint8_t>(static_cast<uint8_t>(config.strategy));
  w.Put<uint8_t>(static_cast<uint8_t>(config.partitioning));
  w.Put<double>(config.epsilon);
  w.Put<double>(config.alpha1);
  w.Put<double>(config.alpha2);
  w.Put<double>(config.default_selectivity);
  w.Put<uint32_t>(static_cast<uint32_t>(config.attribute_selectivity.size()));
  for (const double s : config.attribute_selectivity) w.Put<double>(s);
  w.Put<uint8_t>(config.allow_grr ? 1 : 0);
  w.Put<uint8_t>(config.allow_olh ? 1 : 0);
  w.Put<uint8_t>(config.allow_oue ? 1 : 0);
  w.Put<uint8_t>(config.allow_pgr ? 1 : 0);
  w.Put<uint8_t>(config.allow_fldp ? 1 : 0);
  w.Put<uint64_t>(config.report_budget_bytes);
  w.Put<uint32_t>(config.olh_options.seed_pool_size);
  w.Put<uint64_t>(config.olh_options.pool_salt);
  w.Put<uint32_t>(config.fldp_options.report_bits);
  w.Put<uint32_t>(config.fldp_options.subset_pool_size);
  w.Put<uint64_t>(config.fldp_options.pool_salt);
  w.Put<int32_t>(config.consistency_rounds);
  w.Put<uint8_t>(static_cast<uint8_t>(config.normalization));
  w.Put<double>(config.response_matrix_options.threshold);
  w.Put<int32_t>(config.response_matrix_options.max_iterations);
  w.Put<double>(config.lambda_threshold);
  w.Put<uint8_t>(config.lambda_quadrant_fit ? 1 : 0);
  w.Put<uint32_t>(config.aggregation_threads);
  w.Put<uint64_t>(config.seed);
  return payload;
}

Status DecodeConfigSection(const std::vector<uint8_t>& payload,
                           FelipConfig* config, uint64_t* num_users) {
  Reader r(payload);
  uint8_t strategy = 0;
  uint8_t partitioning = 0;
  uint32_t selectivities = 0;
  if (!r.Get(num_users) || !r.Get(&strategy) || !r.Get(&partitioning) ||
      !r.Get(&config->epsilon) || !r.Get(&config->alpha1) ||
      !r.Get(&config->alpha2) || !r.Get(&config->default_selectivity) ||
      !r.Get(&selectivities)) {
    return Malformed("snapshot config section is truncated");
  }
  if (strategy > 1 || partitioning > 1) {
    return Malformed("snapshot config carries an unknown enum value");
  }
  config->strategy = static_cast<core::Strategy>(strategy);
  config->partitioning = static_cast<core::PartitioningMode>(partitioning);
  if (selectivities > r.remaining() / sizeof(double)) {
    return Malformed("snapshot config selectivity list overruns the section");
  }
  config->attribute_selectivity.resize(selectivities);
  for (double& s : config->attribute_selectivity) {
    if (!r.Get(&s)) return Malformed("snapshot config section is truncated");
  }
  uint8_t allow_grr = 0;
  uint8_t allow_olh = 0;
  uint8_t allow_oue = 0;
  uint8_t allow_pgr = 0;
  uint8_t allow_fldp = 0;
  uint8_t normalization = 0;
  uint8_t quadrant_fit = 0;
  if (!r.Get(&allow_grr) || !r.Get(&allow_olh) || !r.Get(&allow_oue) ||
      !r.Get(&allow_pgr) || !r.Get(&allow_fldp) ||
      !r.Get(&config->report_budget_bytes) ||
      !r.Get(&config->olh_options.seed_pool_size) ||
      !r.Get(&config->olh_options.pool_salt) ||
      !r.Get(&config->fldp_options.report_bits) ||
      !r.Get(&config->fldp_options.subset_pool_size) ||
      !r.Get(&config->fldp_options.pool_salt) ||
      !r.Get(&config->consistency_rounds) || !r.Get(&normalization) ||
      !r.Get(&config->response_matrix_options.threshold) ||
      !r.Get(&config->response_matrix_options.max_iterations) ||
      !r.Get(&config->lambda_threshold) || !r.Get(&quadrant_fit) ||
      !r.Get(&config->aggregation_threads) || !r.Get(&config->seed)) {
    return Malformed("snapshot config section is truncated");
  }
  if (r.remaining() != 0) {
    return Malformed("snapshot config section has trailing bytes");
  }
  if (normalization > 2) {
    return Malformed("snapshot config carries an unknown enum value");
  }
  config->allow_grr = allow_grr != 0;
  config->allow_olh = allow_olh != 0;
  config->allow_oue = allow_oue != 0;
  config->allow_pgr = allow_pgr != 0;
  config->allow_fldp = allow_fldp != 0;
  if (config->allow_fldp &&
      (config->fldp_options.report_bits == 0 ||
       config->fldp_options.subset_pool_size == 0)) {
    return Malformed("snapshot config has infeasible FLDP options");
  }
  config->normalization = static_cast<post::Normalization>(normalization);
  config->lambda_quadrant_fit = quadrant_fit != 0;
  // The pipeline constructor FELIP_CHECKs these; a snapshot is untrusted
  // input, so screen them here and fail with a Status instead.
  if (*num_users == 0) return Malformed("snapshot config has zero users");
  if (!std::isfinite(config->epsilon) || config->epsilon <= 0.0) {
    return Malformed("snapshot config has a non-positive epsilon");
  }
  return Status::Ok();
}

// --- kSchema ---

std::vector<uint8_t> EncodeSchemaSection(
    const std::vector<AttributeInfo>& schema) {
  std::vector<uint8_t> payload;
  Writer w(&payload);
  w.Put<uint32_t>(static_cast<uint32_t>(schema.size()));
  for (const AttributeInfo& attr : schema) {
    w.Put<uint32_t>(static_cast<uint32_t>(attr.name.size()));
    w.PutBytes(reinterpret_cast<const uint8_t*>(attr.name.data()),
               attr.name.size());
    w.Put<uint32_t>(attr.domain);
    w.Put<uint8_t>(attr.categorical ? 1 : 0);
  }
  return payload;
}

Status DecodeSchemaSection(const std::vector<uint8_t>& payload,
                           std::vector<AttributeInfo>* schema) {
  Reader r(payload);
  uint32_t count = 0;
  if (!r.Get(&count)) return Malformed("snapshot schema section is truncated");
  if (count == 0) return Malformed("snapshot schema has no attributes");
  schema->clear();
  schema->reserve(count);
  for (uint32_t a = 0; a < count; ++a) {
    uint32_t name_len = 0;
    if (!r.Get(&name_len) || name_len > r.remaining()) {
      return Malformed("snapshot schema section is truncated");
    }
    AttributeInfo attr;
    attr.name.assign(reinterpret_cast<const char*>(r.cursor()), name_len);
    r.Skip(name_len);
    uint8_t categorical = 0;
    if (!r.Get(&attr.domain) || !r.Get(&categorical)) {
      return Malformed("snapshot schema section is truncated");
    }
    if (attr.domain == 0) {
      return Malformed("snapshot schema has a zero-domain attribute");
    }
    attr.categorical = categorical != 0;
    schema->push_back(std::move(attr));
  }
  if (r.remaining() != 0) {
    return Malformed("snapshot schema section has trailing bytes");
  }
  return Status::Ok();
}

namespace {

// --- kState ---

std::vector<uint8_t> EncodeState(PipelineState state,
                                 uint64_t reports_ingested) {
  std::vector<uint8_t> payload;
  Writer w(&payload);
  w.Put<uint8_t>(static_cast<uint8_t>(state));
  w.Put<uint64_t>(reports_ingested);
  return payload;
}

Status DecodeState(const std::vector<uint8_t>& payload, uint8_t header_state,
                   PipelineState* state, uint64_t* reports_ingested) {
  Reader r(payload);
  uint8_t state_byte = 0;
  if (!r.Get(&state_byte) || !r.Get(reports_ingested) ||
      r.remaining() != 0) {
    return Malformed("snapshot state section is truncated");
  }
  if (state_byte > static_cast<uint8_t>(PipelineState::kQueryable)) {
    return Malformed("snapshot carries an unknown pipeline state");
  }
  if (state_byte != header_state) {
    return Malformed("snapshot state section disagrees with the header");
  }
  *state = static_cast<PipelineState>(state_byte);
  return Status::Ok();
}

// --- kOracles ---

std::vector<uint8_t> EncodeOracles(
    const std::vector<std::unique_ptr<fo::FrequencyOracle>>& oracles) {
  std::vector<uint8_t> payload;
  Writer w(&payload);
  w.Put<uint32_t>(static_cast<uint32_t>(oracles.size()));
  for (const auto& oracle : oracles) {
    const fo::OracleState state = oracle->ExportState();
    w.Put<uint8_t>(static_cast<uint8_t>(state.protocol));
    w.Put<uint64_t>(state.num_reports);
    w.Put<uint64_t>(state.counts.size());
    for (const uint64_t c : state.counts) w.Put<uint64_t>(c);
    w.Put<uint64_t>(state.pool_counts.size());
    for (const uint32_t c : state.pool_counts) w.Put<uint32_t>(c);
    w.Put<uint64_t>(state.reports.size());
    for (const fo::OlhReport& report : state.reports) {
      w.Put<uint64_t>(report.seed);
      w.Put<uint32_t>(report.hashed_report);
      w.Put<uint32_t>(report.seed_index);
    }
  }
  return payload;
}

Status DecodeOracles(const std::vector<uint8_t>& payload,
                     std::vector<fo::OracleState>* states) {
  Reader r(payload);
  uint32_t count = 0;
  if (!r.Get(&count)) {
    return Malformed("snapshot oracle section is truncated");
  }
  states->clear();
  states->reserve(count);
  for (uint32_t g = 0; g < count; ++g) {
    fo::OracleState state;
    uint8_t protocol = 0;
    uint64_t counts_len = 0;
    if (!r.Get(&protocol) || !r.Get(&state.num_reports) ||
        !r.Get(&counts_len)) {
      return Malformed("snapshot oracle section is truncated");
    }
    if (!fo::KnownProtocolByte(protocol)) {
      return Malformed("snapshot oracle carries an unknown protocol");
    }
    state.protocol = static_cast<fo::Protocol>(protocol);
    if (counts_len > r.remaining() / sizeof(uint64_t)) {
      return Malformed("snapshot oracle counts overrun the section");
    }
    state.counts.resize(counts_len);
    for (uint64_t& c : state.counts) {
      if (!r.Get(&c)) return Malformed("snapshot oracle section is truncated");
    }
    uint64_t pool_len = 0;
    if (!r.Get(&pool_len) || pool_len > r.remaining() / sizeof(uint32_t)) {
      return Malformed("snapshot oracle pool overruns the section");
    }
    state.pool_counts.resize(pool_len);
    for (uint32_t& c : state.pool_counts) {
      if (!r.Get(&c)) return Malformed("snapshot oracle section is truncated");
    }
    uint64_t reports_len = 0;
    constexpr size_t kOlhReportBytes = 8 + 4 + 4;
    if (!r.Get(&reports_len) ||
        reports_len > r.remaining() / kOlhReportBytes) {
      return Malformed("snapshot oracle reports overrun the section");
    }
    state.reports.resize(reports_len);
    for (fo::OlhReport& report : state.reports) {
      if (!r.Get(&report.seed) || !r.Get(&report.hashed_report) ||
          !r.Get(&report.seed_index)) {
        return Malformed("snapshot oracle section is truncated");
      }
    }
    states->push_back(std::move(state));
  }
  if (r.remaining() != 0) {
    return Malformed("snapshot oracle section has trailing bytes");
  }
  return Status::Ok();
}

// --- kGridFrequencies ---

std::vector<uint8_t> EncodeGridFrequencies(
    const std::vector<std::vector<double>>& frequencies) {
  std::vector<uint8_t> payload;
  Writer w(&payload);
  w.Put<uint32_t>(static_cast<uint32_t>(frequencies.size()));
  for (const std::vector<double>& grid : frequencies) {
    w.Put<uint64_t>(grid.size());
    for (const double f : grid) w.Put<double>(f);
  }
  return payload;
}

Status DecodeGridFrequencies(const std::vector<uint8_t>& payload,
                             std::vector<std::vector<double>>* frequencies) {
  Reader r(payload);
  uint32_t count = 0;
  if (!r.Get(&count)) {
    return Malformed("snapshot frequency section is truncated");
  }
  frequencies->clear();
  frequencies->reserve(count);
  for (uint32_t g = 0; g < count; ++g) {
    uint64_t len = 0;
    if (!r.Get(&len) || len > r.remaining() / sizeof(double)) {
      return Malformed("snapshot frequency grid overruns the section");
    }
    std::vector<double> grid(len);
    for (double& f : grid) {
      if (!r.Get(&f)) {
        return Malformed("snapshot frequency section is truncated");
      }
      if (!std::isfinite(f)) {
        return Malformed("snapshot frequency is not finite");
      }
    }
    frequencies->push_back(std::move(grid));
  }
  if (r.remaining() != 0) {
    return Malformed("snapshot frequency section has trailing bytes");
  }
  return Status::Ok();
}

// --- kResponseMatrices ---

std::vector<uint8_t> EncodeResponseMatrices(
    const std::vector<post::ResponseMatrix>& matrices) {
  std::vector<uint8_t> payload;
  Writer w(&payload);
  w.Put<uint32_t>(static_cast<uint32_t>(matrices.size()));
  for (const post::ResponseMatrix& matrix : matrices) {
    const post::ResponseMatrix::Blocks blocks = matrix.ExportBlocks();
    w.Put<uint32_t>(blocks.domain_x);
    w.Put<uint32_t>(blocks.domain_y);
    w.Put<uint64_t>(blocks.bx.size());
    for (const uint32_t b : blocks.bx) w.Put<uint32_t>(b);
    w.Put<uint64_t>(blocks.by.size());
    for (const uint32_t b : blocks.by) w.Put<uint32_t>(b);
    w.Put<uint64_t>(blocks.mass.size());
    for (const double m : blocks.mass) w.Put<double>(m);
  }
  return payload;
}

Status DecodeResponseMatrices(const std::vector<uint8_t>& payload,
                              std::vector<post::ResponseMatrix>* matrices) {
  Reader r(payload);
  uint32_t count = 0;
  if (!r.Get(&count)) {
    return Malformed("snapshot response-matrix section is truncated");
  }
  matrices->clear();
  matrices->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    post::ResponseMatrix::Blocks blocks;
    uint64_t len = 0;
    if (!r.Get(&blocks.domain_x) || !r.Get(&blocks.domain_y) ||
        !r.Get(&len) || len > r.remaining() / sizeof(uint32_t)) {
      return Malformed("snapshot response-matrix section is truncated");
    }
    blocks.bx.resize(len);
    for (uint32_t& b : blocks.bx) {
      if (!r.Get(&b)) {
        return Malformed("snapshot response-matrix section is truncated");
      }
    }
    if (!r.Get(&len) || len > r.remaining() / sizeof(uint32_t)) {
      return Malformed("snapshot response-matrix section is truncated");
    }
    blocks.by.resize(len);
    for (uint32_t& b : blocks.by) {
      if (!r.Get(&b)) {
        return Malformed("snapshot response-matrix section is truncated");
      }
    }
    if (!r.Get(&len) || len > r.remaining() / sizeof(double)) {
      return Malformed("snapshot response-matrix section is truncated");
    }
    blocks.mass.resize(len);
    for (double& m : blocks.mass) {
      if (!r.Get(&m)) {
        return Malformed("snapshot response-matrix section is truncated");
      }
    }
    post::ResponseMatrix matrix;
    if (!post::ResponseMatrix::FromBlocks(std::move(blocks), &matrix)) {
      return Malformed("snapshot response-matrix blocks are invalid");
    }
    matrices->push_back(std::move(matrix));
  }
  if (r.remaining() != 0) {
    return Malformed("snapshot response-matrix section has trailing bytes");
  }
  return Status::Ok();
}

// --- kDedup ---

std::vector<uint8_t> EncodeDedup(std::span<const uint64_t> keys) {
  std::vector<uint8_t> payload;
  Writer w(&payload);
  w.Put<uint64_t>(keys.size());
  for (const uint64_t key : keys) w.Put<uint64_t>(key);
  return payload;
}

Status DecodeDedup(const std::vector<uint8_t>& payload,
                   std::vector<uint64_t>* keys) {
  Reader r(payload);
  uint64_t count = 0;
  if (!r.Get(&count) || count > r.remaining() / sizeof(uint64_t)) {
    return Malformed("snapshot dedup section is truncated");
  }
  keys->resize(count);
  for (uint64_t& key : *keys) {
    if (!r.Get(&key)) return Malformed("snapshot dedup section is truncated");
  }
  if (r.remaining() != 0) {
    return Malformed("snapshot dedup section has trailing bytes");
  }
  return Status::Ok();
}

// Expected cell count of grid `g` under `pipeline`'s planned layout.
uint64_t GridCells(const FelipPipeline& pipeline, size_t g) {
  const core::GridAssignment& assignment = pipeline.assignments()[g];
  return static_cast<uint64_t>(assignment.plan.lx) *
         (assignment.is_2d ? assignment.plan.ly : 1);
}

}  // namespace

std::vector<uint8_t> PipelineCodec::EncodeOracleSection(
    const core::FelipPipeline& pipeline) {
  return EncodeOracles(pipeline.oracles_);
}

Status PipelineCodec::DecodeOracleSection(
    const std::vector<uint8_t>& payload,
    std::vector<fo::OracleState>* states) {
  return DecodeOracles(payload, states);
}

std::vector<uint8_t> PipelineCodec::Encode(
    const FelipPipeline& pipeline, const core::SnapshotOptions& options,
    std::span<const uint64_t> dedup_keys) {
  SnapshotWriter writer(static_cast<uint8_t>(pipeline.state_));
  writer.AppendSection(
      SectionId::kConfig,
      EncodeConfigSection(pipeline.config_, pipeline.num_users_));
  writer.AppendSection(SectionId::kSchema,
                       EncodeSchemaSection(pipeline.schema_));
  writer.AppendSection(
      SectionId::kState,
      EncodeState(pipeline.state_, pipeline.reports_ingested_));
  switch (pipeline.state_) {
    case PipelineState::kConfigured:
      break;
    case PipelineState::kCollecting:
    case PipelineState::kSealed:
      writer.AppendSection(SectionId::kOracles,
                           EncodeOracles(pipeline.oracles_));
      break;
    case PipelineState::kQueryable:
      writer.AppendSection(
          SectionId::kGridFrequencies,
          EncodeGridFrequencies(pipeline.ExportGridFrequencies()));
      if (options.include_response_matrices) {
        writer.AppendSection(
            SectionId::kResponseMatrices,
            EncodeResponseMatrices(pipeline.response_matrices_));
      }
      break;
  }
  writer.AppendSection(SectionId::kDedup, EncodeDedup(dedup_keys));
  return std::move(writer).Finish();
}

StatusOr<RecoveredPipeline> PipelineCodec::Decode(
    const std::vector<uint8_t>& bytes) {
  FELIP_ASSIGN_OR_RETURN(const SnapshotReader reader,
                         SnapshotReader::Open(bytes));

  const std::vector<uint8_t>* config_section =
      reader.FindSection(SectionId::kConfig);
  const std::vector<uint8_t>* schema_section =
      reader.FindSection(SectionId::kSchema);
  const std::vector<uint8_t>* state_section =
      reader.FindSection(SectionId::kState);
  if (config_section == nullptr || schema_section == nullptr ||
      state_section == nullptr) {
    return Malformed("snapshot is missing a required section");
  }

  FelipConfig config;
  uint64_t num_users = 0;
  FELIP_RETURN_IF_ERROR(
      DecodeConfigSection(*config_section, &config, &num_users));
  std::vector<AttributeInfo> schema;
  FELIP_RETURN_IF_ERROR(DecodeSchemaSection(*schema_section, &schema));
  PipelineState state = PipelineState::kConfigured;
  uint64_t reports_ingested = 0;
  FELIP_RETURN_IF_ERROR(DecodeState(*state_section, reader.state_byte(),
                                    &state, &reports_ingested));

  std::vector<uint64_t> dedup_keys;
  if (const std::vector<uint8_t>* dedup =
          reader.FindSection(SectionId::kDedup)) {
    FELIP_RETURN_IF_ERROR(DecodeDedup(*dedup, &dedup_keys));
  }

  // Grid planning is deterministic in (schema, num_users, config), so the
  // reconstructed pipeline's layout is the layout the snapshot was taken
  // under — every per-grid payload is validated against it below.
  FelipPipeline pipeline(std::move(schema), num_users, std::move(config));

  switch (state) {
    case PipelineState::kConfigured:
      break;

    case PipelineState::kCollecting:
    case PipelineState::kSealed: {
      const std::vector<uint8_t>* section =
          reader.FindSection(SectionId::kOracles);
      if (section == nullptr) {
        return Malformed("mid-round snapshot has no oracle section");
      }
      std::vector<fo::OracleState> states;
      FELIP_RETURN_IF_ERROR(DecodeOracles(*section, &states));
      if (states.size() != pipeline.assignments_.size()) {
        return Malformed(
            "snapshot oracle count does not match the planned layout");
      }
      pipeline.BeginIngest();
      uint64_t total_reports = 0;
      for (size_t g = 0; g < states.size(); ++g) {
        total_reports += states[g].num_reports;
        FELIP_RETURN_IF_ERROR(
            pipeline.oracles_[g]->RestoreState(std::move(states[g])));
      }
      // Collect() seals without touching reports_ingested_ (it counts
      // only networked ingestion), so the cross-check is meaningful for
      // kCollecting alone.
      if (state == PipelineState::kCollecting &&
          total_reports != reports_ingested) {
        return Malformed("snapshot report counts are inconsistent");
      }
      pipeline.reports_ingested_ = reports_ingested;
      pipeline.state_ = state;
      break;
    }

    case PipelineState::kQueryable: {
      const std::vector<uint8_t>* section =
          reader.FindSection(SectionId::kGridFrequencies);
      if (section == nullptr) {
        return Malformed("finalized snapshot has no frequency section");
      }
      std::vector<std::vector<double>> frequencies;
      FELIP_RETURN_IF_ERROR(DecodeGridFrequencies(*section, &frequencies));
      if (frequencies.size() != pipeline.assignments_.size()) {
        return Malformed(
            "snapshot grid count does not match the planned layout");
      }
      for (size_t g = 0; g < frequencies.size(); ++g) {
        if (frequencies[g].size() != GridCells(pipeline, g)) {
          return Malformed(
              "snapshot grid size does not match the planned layout");
        }
      }

      const size_t n1 = pipeline.grids_1d_.size();
      for (size_t g = 0; g < frequencies.size(); ++g) {
        if (g < n1) {
          pipeline.grids_1d_[g].SetFrequencies(std::move(frequencies[g]));
        } else {
          pipeline.grids_2d_[g - n1].SetFrequencies(
              std::move(frequencies[g]));
        }
      }

      const std::vector<uint8_t>* rm_section =
          reader.FindSection(SectionId::kResponseMatrices);
      if (rm_section != nullptr) {
        std::vector<post::ResponseMatrix> matrices;
        FELIP_RETURN_IF_ERROR(DecodeResponseMatrices(*rm_section, &matrices));
        if (matrices.size() != pipeline.grids_2d_.size()) {
          return Malformed(
              "snapshot response-matrix count does not match the layout");
        }
        for (size_t i = 0; i < matrices.size(); ++i) {
          const grid::Grid2D& g2 = pipeline.grids_2d_[i];
          if (matrices[i].domain_x() != g2.px().domain() ||
              matrices[i].domain_y() != g2.py().domain()) {
            return Malformed(
                "snapshot response-matrix domains do not match the layout");
          }
        }
        pipeline.response_matrices_ = std::move(matrices);
      } else {
        // Response matrices are derived state; rebuild them exactly like
        // Finalize() does.
        pipeline.response_matrices_.assign(pipeline.grids_2d_.size(),
                                           post::ResponseMatrix());
        for (size_t i = 0; i < pipeline.grids_2d_.size(); ++i) {
          const grid::Grid2D& g2 = pipeline.grids_2d_[i];
          pipeline.response_matrices_[i] = post::ResponseMatrix::Build(
              g2, pipeline.OneDimGrid(g2.attr_x()),
              pipeline.OneDimGrid(g2.attr_y()),
              pipeline.config_.response_matrix_options);
        }
      }
      pipeline.state_ = PipelineState::kQueryable;
      pipeline.reports_ingested_ = reports_ingested;
      break;
    }
  }

  return RecoveredPipeline{std::move(pipeline), std::move(dedup_keys)};
}

}  // namespace felip::snapshot

namespace felip::core {

// Defined here (the felip_snapshot library) so felip_core never depends on
// the snapshot format; see the declarations in felip/core/felip.h.

Status FelipPipeline::SaveSnapshot(const std::string& path,
                                   const SnapshotOptions& options) const {
  obs::ScopedTimer span("felip_snapshot_write");
  const auto start = std::chrono::steady_clock::now();
  const std::vector<uint8_t> bytes =
      snapshot::PipelineCodec::Encode(*this, options, {});
  FELIP_RETURN_IF_ERROR(snapshot::WriteFileAtomic(path, bytes));
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  obs::Registry::Default()
      .GetGauge("felip_snapshot_bytes")
      .Set(static_cast<double>(bytes.size()));
  obs::Registry::Default()
      .GetHistogram("felip_snapshot_write_seconds")
      .Observe(elapsed.count());
  return Status::Ok();
}

StatusOr<FelipPipeline> FelipPipeline::LoadSnapshot(const std::string& path) {
  FELIP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                         snapshot::ReadFileBytes(path));
  FELIP_ASSIGN_OR_RETURN(snapshot::RecoveredPipeline recovered,
                         snapshot::PipelineCodec::Decode(bytes));
  return std::move(recovered.pipeline);
}

}  // namespace felip::core
