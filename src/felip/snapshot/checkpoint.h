// Periodic checkpointing and crash recovery for a serving pipeline.
//
// Checkpointer glues the ingest service to the snapshot store: its
// Checkpoint() method matches svc::CheckpointFn, so an IngestServer
// configured with checkpoint_every_batches / checkpoint_every_ms calls it
// under the server's drain lock with the drained dedup keys of a
// consistent cut. Each call encodes the pipeline + keys and commits them
// through the store's atomic write + rotation.
//
// RecoverFromStore walks the store newest-first and returns the first
// snapshot that fully verifies and decodes, so one corrupted (truncated,
// bit-flipped, half-written-by-a-dying-kernel) newest file degrades to
// the previous rotation instead of failing recovery. kNotFound only when
// no verifiable snapshot exists at all.
//
// Recovery protocol (see docs/snapshots.md): restore the pipeline, seed
// the restarted IngestServer's dedup windows with the recovered keys
// (IngestServer::PreseedDedup), and let clients resend. Batches that were
// drained before the checkpoint are recognized as duplicates; batches
// acked but not yet captured are admitted fresh. Aggregation is
// integer-count based, so the final estimates are bit-identical to a run
// that never crashed.

#ifndef FELIP_SNAPSHOT_CHECKPOINT_H_
#define FELIP_SNAPSHOT_CHECKPOINT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "felip/common/status.h"
#include "felip/core/felip.h"
#include "felip/snapshot/pipeline_snapshot.h"
#include "felip/snapshot/store.h"

namespace felip::snapshot {

class Checkpointer {
 public:
  // `store` and `pipeline` must outlive this object. The caller is
  // responsible for serializing Checkpoint() calls against pipeline
  // mutation (IngestServer invokes it under its drain lock).
  Checkpointer(SnapshotStore* store, const core::FelipPipeline* pipeline,
               core::SnapshotOptions options = {});

  // Encodes the pipeline plus `drained_keys` and commits one snapshot.
  // Matches svc::CheckpointFn.
  Status Checkpoint(std::span<const uint64_t> drained_keys);

  // Redirects subsequent checkpoints to `pipeline` (which must outlive
  // this object). The epoch-rotation path calls this after swapping the
  // ingest sink to a fresh open-epoch pipeline, under the same drain lock
  // that serializes Checkpoint() — the sealed epoch has its own segment;
  // checkpoints only ever cover the open epoch.
  void set_pipeline(const core::FelipPipeline* pipeline);

  uint64_t snapshots_written() const { return snapshots_written_; }

 private:
  SnapshotStore* store_;
  const core::FelipPipeline* pipeline_;
  core::SnapshotOptions options_;
  uint64_t snapshots_written_ = 0;
};

// Result of a successful recovery: which file won, what it held.
struct Recovered {
  RecoveredPipeline state;
  std::string path;        // the snapshot file that verified
  size_t files_skipped = 0;  // newer files rejected as corrupt
};

// Restores the newest verifiable snapshot in `store`. Increments
// felip_snapshot_recoveries_total on success; kNotFound when the store
// holds no snapshot that verifies.
StatusOr<Recovered> RecoverFromStore(const SnapshotStore& store);

}  // namespace felip::snapshot

#endif  // FELIP_SNAPSHOT_CHECKPOINT_H_
