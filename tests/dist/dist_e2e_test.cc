// Distributed-tier acceptance: a fixed-seed population routed across N
// shard servers, pulled as accumulator frames and folded by the root,
// must produce estimates BIT-IDENTICAL to single-node collection — for 2
// and 4 shards, over loopback and real TCP, under fault-injecting
// transports on both the ingest and the pull path, and across a shard
// that dies mid-ingest and warm-restarts from its snapshot.
//
// Why exact equality holds: routing gives every batch exactly one owner,
// per-shard dedup makes counting exactly-once, accumulator frames are
// cumulative consistent cuts, and the merge is integer-count addition
// folded in shard-id order — so the final state depends only on the
// report multiset, never on shard count, pull schedule, or restarts.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "felip/core/felip.h"
#include "felip/data/synthetic.h"
#include "felip/dist/accumulator.h"
#include "felip/dist/client.h"
#include "felip/dist/partition.h"
#include "felip/dist/root.h"
#include "felip/snapshot/checkpoint.h"
#include "felip/snapshot/store.h"
#include "felip/svc/fault_injection.h"
#include "felip/svc/loopback.h"
#include "felip/svc/server.h"
#include "felip/svc/simulator.h"
#include "felip/svc/sink.h"
#include "felip/svc/tcp.h"
#include "felip/wire/wire.h"

namespace felip::dist {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kUsers = 2000;
constexpr uint64_t kSeed = 17;

using Batch = std::vector<wire::ReportMessage>;

core::FelipConfig MakeConfig() {
  core::FelipConfig config;
  config.epsilon = 1.0;
  config.seed = kSeed;
  config.olh_options.seed_pool_size = 256;
  return config;
}

data::Dataset MakeData() {
  return data::MakeIpumsLike(kUsers, 3, 20, 4, kSeed);
}

std::vector<Batch> MakeBatches(const data::Dataset& dataset,
                               const core::FelipConfig& config) {
  core::FelipPipeline pipeline(dataset.attributes(), kUsers, config);
  std::vector<wire::GridConfigMessage> grid_configs;
  for (uint32_t g = 0; g < pipeline.num_groups(); ++g) {
    grid_configs.push_back(wire::MakeGridConfig(
        pipeline, pipeline.schema(), g, pipeline.per_grid_epsilon(),
        config.protocol_options()));
  }
  svc::SimulatorOptions options;
  options.seed = config.seed;
  options.partitioning = config.partitioning;
  options.batch_size = 64;
  const svc::PopulationSimulator simulator(grid_configs, options);
  std::vector<Batch> batches;
  const auto sent = simulator.Run(dataset, [&](const Batch& batch) {
    batches.push_back(batch);
    return true;
  });
  EXPECT_TRUE(sent.has_value());
  return batches;
}

// The single-node reference: the whole round collected in process.
core::FelipPipeline RunSingleNode(const data::Dataset& dataset,
                                  const core::FelipConfig& config) {
  core::FelipPipeline pipeline(dataset.attributes(), kUsers, config);
  pipeline.Collect(dataset);
  pipeline.Finalize();
  return pipeline;
}

void ExpectIdenticalEstimates(const core::FelipPipeline& expected,
                              const core::FelipPipeline& actual) {
  const auto a = expected.ExportGridFrequencies();
  const auto b = actual.ExportGridFrequencies();
  ASSERT_EQ(a.size(), b.size());
  for (size_t g = 0; g < a.size(); ++g) {
    ASSERT_EQ(a[g].size(), b[g].size());
    for (size_t c = 0; c < a[g].size(); ++c) {
      EXPECT_EQ(a[g][c], b[g][c]) << "grid " << g << " cell " << c;
    }
  }
  EXPECT_EQ(core::GridFrequencyDigest(expected),
            core::GridFrequencyDigest(actual));
  for (uint32_t attr = 0; attr < 3; ++attr) {
    const std::vector<double> ma = expected.EstimateMarginal(attr);
    const std::vector<double> mb = actual.EstimateMarginal(attr);
    ASSERT_EQ(ma.size(), mb.size());
    for (size_t v = 0; v < ma.size(); ++v) {
      EXPECT_EQ(ma[v], mb[v]) << "attr " << attr << " value " << v;
    }
  }
}

// One shard's full server stack: ingest gate chain plus the accumulator
// endpoint, the way felip_server wires it in --shard-id mode.
struct Shard {
  Shard(const data::Dataset& dataset, const core::FelipConfig& config,
        svc::Transport* transport, const std::string& ingest_endpoint,
        const std::string& accum_endpoint, uint32_t shard_id,
        uint32_t num_shards, uint64_t epoch, uint64_t plan_digest)
      : pipeline(dataset.attributes(), kUsers, config),
        sink(&pipeline),
        router(num_shards) {
    svc::IngestServerOptions options;
    options.owns_key = [this, shard_id](uint64_t key) {
      return router.OwnerShard(key) == shard_id;
    };
    ingest = std::make_unique<svc::IngestServer>(transport, ingest_endpoint,
                                                 &sink, options);
    ShardAccumulatorOptions accum_options;
    accum_options.shard_id = shard_id;
    accum_options.num_shards = num_shards;
    accum_options.epoch = epoch;
    accum_options.plan_digest = plan_digest;
    accum = std::make_unique<ShardAccumulatorServer>(
        transport, accum_endpoint, &sink, accum_options);
  }

  bool Start() { return ingest->Start() && accum->Start(); }
  void Stop() {
    ingest->Stop();
    accum->Stop();
  }

  core::FelipPipeline pipeline;
  svc::PipelineSink sink;
  ShardRouter router;
  std::unique_ptr<svc::IngestServer> ingest;
  std::unique_ptr<ShardAccumulatorServer> accum;
};

// Runs a full sharded round and returns the root's merged, finalized
// pipeline. `faults` (optional) corrupts both the client's ingest path
// and the root's pull path.
core::FelipPipeline RunSharded(const data::Dataset& dataset,
                               const core::FelipConfig& config,
                               const std::vector<Batch>& batches,
                               svc::Transport* transport,
                               uint32_t num_shards, bool tcp,
                               const svc::FaultOptions* faults = nullptr) {
  core::FelipPipeline root_pipeline(dataset.attributes(), kUsers, config);
  const uint64_t plan_digest = PlanDigest(root_pipeline);

  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::string> ingest_endpoints;
  std::vector<std::string> accum_endpoints;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const std::string ingest_ep =
        tcp ? "127.0.0.1:0" : "ingest" + std::to_string(s);
    const std::string accum_ep =
        tcp ? "127.0.0.1:0" : "accum" + std::to_string(s);
    shards.push_back(std::make_unique<Shard>(
        dataset, config, transport, ingest_ep, accum_ep, s, num_shards,
        /*epoch=*/1, plan_digest));
    EXPECT_TRUE(shards.back()->Start());
    ingest_endpoints.push_back(shards.back()->ingest->endpoint());
    accum_endpoints.push_back(shards.back()->accum->endpoint());
  }

  std::unique_ptr<svc::FaultInjectingTransport> faulty;
  svc::Transport* client_transport = transport;
  if (faults != nullptr) {
    faulty = std::make_unique<svc::FaultInjectingTransport>(transport,
                                                            *faults);
    client_transport = faulty.get();
  }

  svc::IngestClientOptions client_options;
  client_options.connect_timeout_ms = 500;
  client_options.response_timeout_ms = 250;
  client_options.max_attempts = 64;
  ShardedIngestClient client(client_transport, ingest_endpoints,
                             client_options);
  for (const Batch& batch : batches) {
    EXPECT_TRUE(client.SendBatch(batch).ok());
  }
  if (num_shards > 1) {
    uint64_t shards_used = 0;
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (client.batches_routed(s) > 0) ++shards_used;
    }
    EXPECT_GT(shards_used, 1u) << "routing sent everything to one shard";
  }

  RootAggregatorOptions root_options;
  root_options.expected_reports = kUsers;
  root_options.plan_digest = plan_digest;
  root_options.response_timeout_ms = 250;
  RootAggregator root(client_transport, accum_endpoints, root_options);
  const Status pulled = root.PullUntilComplete(60000);
  EXPECT_TRUE(pulled.ok()) << pulled.ToString();
  EXPECT_EQ(root.total_reports(), kUsers);
  const Status merged = root.MergeInto(&root_pipeline);
  EXPECT_TRUE(merged.ok()) << merged.ToString();

  for (auto& shard : shards) shard->Stop();
  root_pipeline.Finalize();
  return root_pipeline;
}

TEST(DistE2eTest, TwoShardLoopbackMatchesSingleNode) {
  const data::Dataset dataset = MakeData();
  const core::FelipConfig config = MakeConfig();
  const core::FelipPipeline reference = RunSingleNode(dataset, config);
  const std::vector<Batch> batches = MakeBatches(dataset, config);

  svc::LoopbackTransport transport;
  const core::FelipPipeline merged =
      RunSharded(dataset, config, batches, &transport, 2, /*tcp=*/false);
  EXPECT_EQ(merged.reports_ingested(), kUsers);
  ExpectIdenticalEstimates(reference, merged);
}

TEST(DistE2eTest, FourShardLoopbackMatchesSingleNode) {
  const data::Dataset dataset = MakeData();
  const core::FelipConfig config = MakeConfig();
  const core::FelipPipeline reference = RunSingleNode(dataset, config);
  const std::vector<Batch> batches = MakeBatches(dataset, config);

  svc::LoopbackTransport transport;
  const core::FelipPipeline merged =
      RunSharded(dataset, config, batches, &transport, 4, /*tcp=*/false);
  ExpectIdenticalEstimates(reference, merged);
}

TEST(DistE2eTest, TwoShardTcpMatchesSingleNode) {
  const data::Dataset dataset = MakeData();
  const core::FelipConfig config = MakeConfig();
  const core::FelipPipeline reference = RunSingleNode(dataset, config);
  const std::vector<Batch> batches = MakeBatches(dataset, config);

  svc::TcpTransport transport;
  const core::FelipPipeline merged =
      RunSharded(dataset, config, batches, &transport, 2, /*tcp=*/true);
  ExpectIdenticalEstimates(reference, merged);
}

TEST(DistE2eTest, FourShardTcpMatchesSingleNode) {
  const data::Dataset dataset = MakeData();
  const core::FelipConfig config = MakeConfig();
  const core::FelipPipeline reference = RunSingleNode(dataset, config);
  const std::vector<Batch> batches = MakeBatches(dataset, config);

  svc::TcpTransport transport;
  const core::FelipPipeline merged =
      RunSharded(dataset, config, batches, &transport, 4, /*tcp=*/true);
  ExpectIdenticalEstimates(reference, merged);
}

TEST(DistE2eTest, FaultSoakStaysBitIdentical) {
  const data::Dataset dataset = MakeData();
  const core::FelipConfig config = MakeConfig();
  const core::FelipPipeline reference = RunSingleNode(dataset, config);
  const std::vector<Batch> batches = MakeBatches(dataset, config);

  svc::LoopbackTransport transport;
  svc::FaultOptions faults;
  faults.drop_prob = 0.10;
  faults.truncate_prob = 0.06;
  faults.reset_prob = 0.04;
  faults.drop_response_prob = 0.06;
  faults.seed = kSeed + 99;
  const core::FelipPipeline merged = RunSharded(
      dataset, config, batches, &transport, 2, /*tcp=*/false, &faults);
  ExpectIdenticalEstimates(reference, merged);
}

TEST(DistE2eTest, RootRejectsPlanDigestMismatch) {
  const data::Dataset dataset = MakeData();
  const core::FelipConfig config = MakeConfig();
  const std::vector<Batch> batches = MakeBatches(dataset, config);

  svc::LoopbackTransport transport;
  core::FelipPipeline planned(dataset.attributes(), kUsers, config);
  Shard shard(dataset, config, &transport, "mismatch-ingest",
              "mismatch-accum", 0, 1, /*epoch=*/1, PlanDigest(planned));
  ASSERT_TRUE(shard.Start());

  RootAggregatorOptions root_options;
  root_options.expected_reports = kUsers;
  root_options.plan_digest = PlanDigest(planned) ^ 1;  // a different plan
  root_options.response_timeout_ms = 250;
  RootAggregator root(&transport, {shard.accum->endpoint()}, root_options);
  const Status pulled = root.PullUntilComplete(5000);
  EXPECT_EQ(pulled.code(), StatusCode::kFailedPrecondition)
      << pulled.ToString();
  shard.Stop();
}

TEST(DistE2eTest, ShardKillAndWarmRestartStaysBitIdentical) {
  const data::Dataset dataset = MakeData();
  const core::FelipConfig config = MakeConfig();
  const core::FelipPipeline reference = RunSingleNode(dataset, config);
  const std::vector<Batch> batches = MakeBatches(dataset, config);
  ASSERT_GT(batches.size(), 8u);

  const fs::path dir =
      fs::path(::testing::TempDir()) / "felip_dist_restart";
  fs::remove_all(dir);
  snapshot::SnapshotStore store(dir.string(), 3);

  core::FelipPipeline root_pipeline(dataset.attributes(), kUsers, config);
  const uint64_t plan_digest = PlanDigest(root_pipeline);
  const ShardRouter router(2);

  svc::LoopbackTransport transport;

  // Shard 1 lives through the whole round.
  Shard shard1(dataset, config, &transport, "restart-ingest1",
               "restart-accum1", 1, 2, /*epoch=*/1, plan_digest);
  ASSERT_TRUE(shard1.Start());

  RootAggregatorOptions root_options;
  root_options.expected_reports = kUsers;
  root_options.plan_digest = plan_digest;
  root_options.response_timeout_ms = 100;
  root_options.poll_interval_ms = 5;
  RootAggregator root(&transport,
                      {"restart-accum0", shard1.accum->endpoint()},
                      root_options);

  // --- Shard 0, first incarnation: checkpointing, killed mid-ingest.
  {
    const StatusOr<uint64_t> epoch = BumpShardEpoch(dir.string());
    ASSERT_TRUE(epoch.ok());
    EXPECT_EQ(*epoch, 1u);

    core::FelipPipeline pipeline(dataset.attributes(), kUsers, config);
    svc::PipelineSink sink(&pipeline);
    snapshot::Checkpointer checkpointer(&store, &pipeline);
    svc::IngestServerOptions options;
    options.checkpoint_every_batches = 2;
    options.checkpoint = [&](std::span<const uint64_t> keys) {
      return checkpointer.Checkpoint(keys);
    };
    options.owns_key = [&router](uint64_t key) {
      return router.OwnerShard(key) == 0;
    };
    svc::IngestServer ingest(&transport, "restart-ingest0", &sink, options);
    ASSERT_TRUE(ingest.Start());
    ShardAccumulatorOptions accum_options;
    accum_options.shard_id = 0;
    accum_options.num_shards = 2;
    accum_options.epoch = *epoch;
    accum_options.plan_digest = plan_digest;
    ShardAccumulatorServer accum(&transport, "restart-accum0", &sink,
                                 accum_options);
    ASSERT_TRUE(accum.Start());

    ShardedIngestClient client(
        &transport, {ingest.endpoint(), shard1.ingest->endpoint()});
    for (size_t b = 0; b < batches.size() / 2; ++b) {
      ASSERT_TRUE(client.SendBatch(batches[b]).ok());
    }
    // The root pulls frames from the doomed incarnation: the merged
    // result must not depend on them.
    const Status early = root.PullUntilComplete(100);
    EXPECT_FALSE(early.ok());
    EXPECT_GT(root.frames_pulled(), 0u);
    // ~IngestServer checkpoints a final cut on orderly Stop; the crash is
    // simulated below by discarding it.
  }
  {
    const std::vector<std::string> files = store.ListNewestFirst();
    ASSERT_GE(files.size(), 1u);
    if (files.size() >= 2) fs::remove(files[0]);
  }

  // --- Shard 0, second incarnation: recover, preseed, rebind, resend.
  StatusOr<snapshot::Recovered> recovered = snapshot::RecoverFromStore(store);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  core::FelipPipeline pipeline0 = std::move(recovered->state.pipeline);
  svc::PipelineSink sink0(&pipeline0);
  const StatusOr<uint64_t> epoch = BumpShardEpoch(dir.string());
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 2u);

  svc::IngestServerOptions options;
  options.owns_key = [&router](uint64_t key) {
    return router.OwnerShard(key) == 0;
  };
  svc::IngestServer ingest0(&transport, "restart-ingest0", &sink0, options);
  ingest0.PreseedDedup(recovered->state.dedup_keys);
  ASSERT_TRUE(ingest0.Start());
  ShardAccumulatorOptions accum_options;
  accum_options.shard_id = 0;
  accum_options.num_shards = 2;
  accum_options.epoch = *epoch;
  accum_options.plan_digest = plan_digest;
  ShardAccumulatorServer accum0(&transport, "restart-accum0", &sink0,
                                accum_options);
  ASSERT_TRUE(accum0.Start());

  // The client resends the entire stream: shard dedup absorbs what the
  // snapshot already counts (and everything shard 1 drained), the rest
  // is admitted exactly once.
  ShardedIngestClient client(
      &transport, {ingest0.endpoint(), shard1.ingest->endpoint()});
  for (const Batch& batch : batches) {
    ASSERT_TRUE(client.SendBatch(batch).ok());
  }

  const Status pulled = root.PullUntilComplete(60000);
  ASSERT_TRUE(pulled.ok()) << pulled.ToString();
  EXPECT_EQ(root.total_reports(), kUsers);
  const Status merged = root.MergeInto(&root_pipeline);
  ASSERT_TRUE(merged.ok()) << merged.ToString();

  ingest0.Stop();
  accum0.Stop();
  shard1.Stop();
  root_pipeline.Finalize();
  EXPECT_EQ(root_pipeline.reports_ingested(), kUsers);
  ExpectIdenticalEstimates(reference, root_pipeline);
}

}  // namespace
}  // namespace felip::dist
