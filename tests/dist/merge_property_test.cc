// The merge algebra the distributed tier rests on: folding shard
// accumulators together must equal collecting the concatenated report
// sets on one node — for every frequency-oracle protocol, compared by
// bit pattern, including the empty-shard and single-report edges.
//
// Two comparison strengths are used deliberately:
//   * Contiguous splits (shard A = a prefix of the stream) reproduce the
//     single-node ingest order exactly, so the serialized accumulator
//     sections must be byte-for-byte identical — counts AND the raw
//     report lists of per-user OLH.
//   * Hash-routed splits interleave the report lists, so the sections
//     may permute; there the estimates (which are functions of the
//     multiset only) must still be bitwise identical.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "felip/core/felip.h"
#include "felip/data/synthetic.h"
#include "felip/dist/partition.h"
#include "felip/fo/frequency_oracle.h"
#include "felip/snapshot/pipeline_snapshot.h"
#include "felip/svc/message.h"
#include "felip/svc/simulator.h"
#include "felip/svc/sink.h"
#include "felip/wire/wire.h"

namespace felip::dist {
namespace {

constexpr uint64_t kUsers = 1200;
constexpr uint64_t kSeed = 11;

using Batch = std::vector<wire::ReportMessage>;

struct ProtocolCase {
  std::string name;
  core::FelipConfig config;
};

std::vector<ProtocolCase> ProtocolCases() {
  std::vector<ProtocolCase> cases;
  {
    core::FelipConfig config;
    config.seed = kSeed;
    config.allow_grr = true;
    config.allow_olh = false;
    config.allow_oue = false;
    cases.push_back({"grr", config});
  }
  {
    core::FelipConfig config;
    config.seed = kSeed;
    config.allow_grr = false;
    config.allow_olh = true;
    config.allow_oue = false;
    config.olh_options.seed_pool_size = 256;
    cases.push_back({"olh_pool", config});
  }
  {
    core::FelipConfig config;
    config.seed = kSeed;
    config.allow_grr = false;
    config.allow_olh = true;
    config.allow_oue = false;
    config.olh_options.seed_pool_size = 0;  // per-user seeds: raw reports
    cases.push_back({"olh_per_user", config});
  }
  {
    core::FelipConfig config;
    config.seed = kSeed;
    config.allow_grr = false;
    config.allow_olh = false;
    config.allow_oue = true;
    cases.push_back({"oue", config});
  }
  {
    core::FelipConfig config;
    config.seed = kSeed;
    config.allow_grr = false;
    config.allow_olh = false;
    config.allow_pgr = true;
    cases.push_back({"pgr", config});
  }
  {
    core::FelipConfig config;
    config.seed = kSeed;
    config.allow_grr = false;
    config.allow_olh = false;
    config.allow_fldp = true;
    config.fldp_options.subset_pool_size = 128;
    cases.push_back({"fldp", config});
  }
  return cases;
}

data::Dataset MakeData(uint64_t users) {
  return data::MakeIpumsLike(users, 3, 16, 4, kSeed);
}

std::vector<Batch> MakeBatches(const data::Dataset& dataset,
                               const core::FelipConfig& config,
                               uint64_t users) {
  core::FelipPipeline pipeline(dataset.attributes(), users, config);
  std::vector<wire::GridConfigMessage> grid_configs;
  for (uint32_t g = 0; g < pipeline.num_groups(); ++g) {
    grid_configs.push_back(wire::MakeGridConfig(
        pipeline, pipeline.schema(), g, pipeline.per_grid_epsilon(),
        config.protocol_options()));
  }
  svc::SimulatorOptions options;
  options.seed = config.seed;
  options.partitioning = config.partitioning;
  options.batch_size = 64;
  const svc::PopulationSimulator simulator(grid_configs, options);
  std::vector<Batch> batches;
  const auto sent =
      simulator.Run(dataset, [&](const Batch& batch) {
        batches.push_back(batch);
        return true;
      });
  EXPECT_TRUE(sent.has_value());
  return batches;
}

// Collects `batches` on one node, leaving the pipeline sealed.
core::FelipPipeline CollectOnOneNode(const data::Dataset& dataset,
                                     const core::FelipConfig& config,
                                     uint64_t users,
                                     const std::vector<Batch>& batches) {
  core::FelipPipeline pipeline(dataset.attributes(), users, config);
  svc::PipelineSink sink(&pipeline);
  for (const Batch& batch : batches) sink.IngestBatch(batch);
  sink.Finish();
  EXPECT_EQ(sink.rejected(), 0u);
  return pipeline;
}

// Folds the shards' exported accumulator sections into a fresh pipeline,
// exactly the way RootAggregator::MergeInto does.
core::FelipPipeline MergeShards(
    const data::Dataset& dataset, const core::FelipConfig& config,
    uint64_t users, const std::vector<core::FelipPipeline>& shards) {
  core::FelipPipeline merged(dataset.attributes(), users, config);
  merged.BeginIngest();
  for (const core::FelipPipeline& shard : shards) {
    const std::vector<uint8_t> section =
        snapshot::PipelineCodec::EncodeOracleSection(shard);
    std::vector<fo::OracleState> states;
    const Status decoded =
        snapshot::PipelineCodec::DecodeOracleSection(section, &states);
    EXPECT_TRUE(decoded.ok()) << decoded.ToString();
    const Status status =
        merged.MergeAccumulators(std::move(states), shard.reports_ingested());
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  merged.FinishIngest();
  return merged;
}

// Both pipelines must already be finalized.
void ExpectIdenticalEstimates(const core::FelipPipeline& expected,
                              const core::FelipPipeline& actual) {
  const auto a = expected.ExportGridFrequencies();
  const auto b = actual.ExportGridFrequencies();
  ASSERT_EQ(a.size(), b.size());
  for (size_t g = 0; g < a.size(); ++g) {
    ASSERT_EQ(a[g].size(), b[g].size());
    for (size_t c = 0; c < a[g].size(); ++c) {
      EXPECT_EQ(a[g][c], b[g][c]) << "grid " << g << " cell " << c;
    }
  }
}

TEST(MergePropertyTest, ContiguousSplitsMergeToIdenticalBytes) {
  const data::Dataset dataset = MakeData(kUsers);
  for (const ProtocolCase& pc : ProtocolCases()) {
    SCOPED_TRACE(pc.name);
    const std::vector<Batch> batches =
        MakeBatches(dataset, pc.config, kUsers);
    ASSERT_GT(batches.size(), 2u);
    core::FelipPipeline reference =
        CollectOnOneNode(dataset, pc.config, kUsers, batches);
    const std::vector<uint8_t> reference_bytes =
        snapshot::PipelineCodec::EncodeOracleSection(reference);

    // Splits at the start (shard A empty), middle, and end (shard B
    // empty): A-then-B merge order reproduces the single-node stream.
    for (const size_t cut : {size_t{0}, batches.size() / 2, batches.size()}) {
      SCOPED_TRACE("cut " + std::to_string(cut));
      const std::vector<Batch> first(batches.begin(), batches.begin() + cut);
      const std::vector<Batch> second(batches.begin() + cut, batches.end());
      std::vector<core::FelipPipeline> shards;
      shards.push_back(CollectOnOneNode(dataset, pc.config, kUsers, first));
      shards.push_back(CollectOnOneNode(dataset, pc.config, kUsers, second));
      core::FelipPipeline merged =
          MergeShards(dataset, pc.config, kUsers, shards);
      EXPECT_EQ(merged.reports_ingested(), reference.reports_ingested());
      EXPECT_EQ(snapshot::PipelineCodec::EncodeOracleSection(merged),
                reference_bytes)
          << "merged accumulator bytes differ from single-node collection";
    }
  }
}

TEST(MergePropertyTest, HashRoutedSplitsMergeToIdenticalEstimates) {
  const data::Dataset dataset = MakeData(kUsers);
  for (const ProtocolCase& pc : ProtocolCases()) {
    SCOPED_TRACE(pc.name);
    const std::vector<Batch> batches =
        MakeBatches(dataset, pc.config, kUsers);
    core::FelipPipeline reference =
        CollectOnOneNode(dataset, pc.config, kUsers, batches);
    reference.Finalize();

    for (const uint32_t num_shards : {2u, 4u}) {
      SCOPED_TRACE(std::to_string(num_shards) + " shards");
      const ShardRouter router(num_shards);
      std::vector<std::vector<Batch>> parts(num_shards);
      for (const Batch& batch : batches) {
        const auto key = svc::ChecksumTrailer(wire::EncodeReportBatch(batch));
        ASSERT_TRUE(key.has_value());
        parts[router.OwnerShard(*key)].push_back(batch);
      }
      std::vector<core::FelipPipeline> shards;
      for (const std::vector<Batch>& part : parts) {
        shards.push_back(CollectOnOneNode(dataset, pc.config, kUsers, part));
      }
      core::FelipPipeline merged =
          MergeShards(dataset, pc.config, kUsers, shards);
      EXPECT_EQ(merged.reports_ingested(), reference.reports_ingested());
      merged.Finalize();
      ExpectIdenticalEstimates(reference, merged);
    }
  }
}

TEST(MergePropertyTest, SingleReportRoundMerges) {
  // One user, one report, one shard holding it and one empty: the merge
  // must reproduce the one-node accumulator bit for bit.
  const data::Dataset dataset = MakeData(1);
  for (const ProtocolCase& pc : ProtocolCases()) {
    SCOPED_TRACE(pc.name);
    const std::vector<Batch> batches = MakeBatches(dataset, pc.config, 1);
    ASSERT_EQ(batches.size(), 1u);
    core::FelipPipeline reference =
        CollectOnOneNode(dataset, pc.config, 1, batches);

    std::vector<core::FelipPipeline> shards;
    shards.push_back(CollectOnOneNode(dataset, pc.config, 1, batches));
    shards.push_back(CollectOnOneNode(dataset, pc.config, 1, {}));
    core::FelipPipeline merged = MergeShards(dataset, pc.config, 1, shards);
    EXPECT_EQ(merged.reports_ingested(), 1u);
    EXPECT_EQ(snapshot::PipelineCodec::EncodeOracleSection(merged),
              snapshot::PipelineCodec::EncodeOracleSection(reference));
  }
}

TEST(MergePropertyTest, AllShardsEmptyMergesToEmpty) {
  const data::Dataset dataset = MakeData(kUsers);
  const core::FelipConfig config = ProtocolCases().front().config;
  std::vector<core::FelipPipeline> shards;
  shards.push_back(CollectOnOneNode(dataset, config, kUsers, {}));
  shards.push_back(CollectOnOneNode(dataset, config, kUsers, {}));
  core::FelipPipeline merged = MergeShards(dataset, config, kUsers, shards);
  EXPECT_EQ(merged.reports_ingested(), 0u);

  core::FelipPipeline empty(dataset.attributes(), kUsers, config);
  empty.BeginIngest();
  empty.FinishIngest();
  EXPECT_EQ(snapshot::PipelineCodec::EncodeOracleSection(merged),
            snapshot::PipelineCodec::EncodeOracleSection(empty));
}

TEST(MergePropertyTest, MergeOracleStateRejectsShapeMismatches) {
  fo::OracleState into;
  into.protocol = fo::Protocol::kGrr;
  into.counts = {1, 2, 3};
  into.num_reports = 6;
  const fo::OracleState original = into;

  fo::OracleState from = into;
  from.counts = {4, 5, 6};
  ASSERT_TRUE(fo::MergeOracleState(&into, from).ok());
  EXPECT_EQ(into.counts, (std::vector<uint64_t>{5, 7, 9}));
  EXPECT_EQ(into.num_reports, 12u);

  // Protocol mismatch: untouched.
  into = original;
  from.protocol = fo::Protocol::kOue;
  EXPECT_EQ(fo::MergeOracleState(&into, from).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(into.counts, original.counts);

  // Domain (shape) mismatch: untouched.
  from = original;
  from.counts = {1, 2};
  EXPECT_EQ(fo::MergeOracleState(&into, from).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(into.counts, original.counts);
}

TEST(MergePropertyTest, MergeOracleStateRejectsPoolOverflow) {
  fo::OracleState into;
  into.protocol = fo::Protocol::kOlh;
  into.pool_counts = {std::numeric_limits<uint32_t>::max(), 1};
  into.num_reports = 2;
  fo::OracleState from;
  from.protocol = fo::Protocol::kOlh;
  from.pool_counts = {1, 0};
  from.num_reports = 1;
  const fo::OracleState original = into;
  EXPECT_EQ(fo::MergeOracleState(&into, from).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(into.pool_counts, original.pool_counts);
  EXPECT_EQ(into.num_reports, original.num_reports);
}

TEST(MergePropertyTest, MergeAccumulatorsValidatesBeforeMutating) {
  const data::Dataset dataset = MakeData(kUsers);
  const core::FelipConfig config = ProtocolCases().front().config;
  core::FelipPipeline pipeline(dataset.attributes(), kUsers, config);
  pipeline.BeginIngest();

  // Wrong grid count.
  EXPECT_EQ(pipeline.MergeAccumulators({}, 0).code(),
            StatusCode::kInvalidArgument);

  // Report count that disagrees with the states' own totals.
  std::vector<fo::OracleState> states;
  const Status decoded = snapshot::PipelineCodec::DecodeOracleSection(
      snapshot::PipelineCodec::EncodeOracleSection(pipeline), &states);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(pipeline.MergeAccumulators(std::move(states), 5).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pipeline.reports_ingested(), 0u);
}

}  // namespace
}  // namespace felip::dist
