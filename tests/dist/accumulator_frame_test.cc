// Wire contract of the accumulator pull/frame pair: exact round trips,
// and rejection of everything the root must not merge — truncations, bit
// flips, wrong message kinds, and frames whose topology fields are
// internally inconsistent. The frame's oracle section reuses the snapshot
// kOracles codec, so its deep validation is covered by the snapshot
// suites; here we pin the envelope.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "felip/wire/wire.h"

namespace felip::wire {
namespace {

AccumulatorFrameMessage SampleFrame() {
  AccumulatorFrameMessage frame;
  frame.shard_id = 2;
  frame.num_shards = 4;
  frame.epoch = 3;
  frame.sequence = 17;
  frame.plan_digest = 0x0123456789abcdefull;
  frame.reports_ingested = 100000;
  frame.sealed = true;
  frame.oracle_section = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  return frame;
}

TEST(AccumulatorWireTest, PullRoundTrips) {
  AccumulatorPullMessage pull;
  pull.shard_id = 7;
  pull.seal = true;
  const auto decoded = DecodeAccumulatorPull(EncodeAccumulatorPull(pull));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, pull);

  const AccumulatorPullMessage plain;  // shard 0, no seal
  const auto decoded_plain =
      DecodeAccumulatorPull(EncodeAccumulatorPull(plain));
  ASSERT_TRUE(decoded_plain.ok());
  EXPECT_EQ(*decoded_plain, plain);
}

TEST(AccumulatorWireTest, FrameRoundTrips) {
  const AccumulatorFrameMessage frame = SampleFrame();
  const auto decoded = DecodeAccumulatorFrame(EncodeAccumulatorFrame(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, frame);

  // Empty oracle section (a shard that has not ingested anything yet
  // still answers pulls).
  AccumulatorFrameMessage empty = frame;
  empty.oracle_section.clear();
  empty.reports_ingested = 0;
  const auto decoded_empty =
      DecodeAccumulatorFrame(EncodeAccumulatorFrame(empty));
  ASSERT_TRUE(decoded_empty.ok());
  EXPECT_EQ(*decoded_empty, empty);
}

TEST(AccumulatorWireTest, EveryTruncationIsRejected) {
  const std::vector<uint8_t> encoded =
      EncodeAccumulatorFrame(SampleFrame());
  for (size_t len = 0; len < encoded.size(); ++len) {
    const std::vector<uint8_t> cut(encoded.begin(), encoded.begin() + len);
    EXPECT_FALSE(DecodeAccumulatorFrame(cut).ok()) << "length " << len;
  }
  const std::vector<uint8_t> pull =
      EncodeAccumulatorPull(AccumulatorPullMessage{.shard_id = 1});
  for (size_t len = 0; len < pull.size(); ++len) {
    const std::vector<uint8_t> cut(pull.begin(), pull.begin() + len);
    EXPECT_FALSE(DecodeAccumulatorPull(cut).ok()) << "length " << len;
  }
}

TEST(AccumulatorWireTest, EveryBitFlipIsRejected) {
  // The checksum trailer must catch any single-bit corruption anywhere in
  // the frame — header, topology fields, section bytes, or the trailer
  // itself. (A flip that survives decoding would merge garbage counts.)
  const std::vector<uint8_t> encoded =
      EncodeAccumulatorFrame(SampleFrame());
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    std::vector<uint8_t> damaged = encoded;
    damaged[byte] ^= 0x10;
    EXPECT_FALSE(DecodeAccumulatorFrame(damaged).ok()) << "byte " << byte;
  }
}

TEST(AccumulatorWireTest, WrongKindIsRejected) {
  const std::vector<uint8_t> pull =
      EncodeAccumulatorPull(AccumulatorPullMessage{});
  EXPECT_FALSE(DecodeAccumulatorFrame(pull).ok());
  const std::vector<uint8_t> frame =
      EncodeAccumulatorFrame(SampleFrame());
  EXPECT_FALSE(DecodeAccumulatorPull(frame).ok());
}

TEST(AccumulatorWireTest, InconsistentTopologyIsRejected) {
  // shard_id >= num_shards and num_shards == 0 cannot come from a
  // correctly configured shard; the decoder rejects them so the root
  // fails before adopting the frame.
  AccumulatorFrameMessage frame = SampleFrame();
  frame.shard_id = 4;  // == num_shards
  EXPECT_FALSE(DecodeAccumulatorFrame(EncodeAccumulatorFrame(frame)).ok());
  frame = SampleFrame();
  frame.num_shards = 0;
  frame.shard_id = 0;
  EXPECT_FALSE(DecodeAccumulatorFrame(EncodeAccumulatorFrame(frame)).ok());
}

}  // namespace
}  // namespace felip::wire
