// ShardRouter contract: the consistent-hash ring is a pure function of
// (num_shards, virtual_nodes) — every process of a topology (shards,
// clients, root) computes the same owner for every key, with no
// coordination. Estimation correctness upstream depends only on "each key
// has exactly one owner"; the distribution checks here are about load,
// not correctness.

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "felip/common/hash.h"
#include "felip/dist/partition.h"

namespace felip::dist {
namespace {

std::vector<uint64_t> SomeKeys(size_t n) {
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Spread like real batch keys (checksum trailers): hash the index.
    keys.push_back(XxHash64(static_cast<uint64_t>(i), 0x1234));
  }
  return keys;
}

TEST(ShardRouterTest, SingleShardOwnsEverything) {
  const ShardRouter router(1);
  for (const uint64_t key : SomeKeys(256)) {
    EXPECT_EQ(router.OwnerShard(key), 0u);
  }
}

TEST(ShardRouterTest, OwnerIsAlwaysInRange) {
  for (uint32_t shards : {2u, 3u, 5u, 16u}) {
    const ShardRouter router(shards);
    for (const uint64_t key : SomeKeys(512)) {
      EXPECT_LT(router.OwnerShard(key), shards);
    }
  }
}

TEST(ShardRouterTest, IndependentInstancesAgree) {
  // Two routers built separately (as a client and a shard server would)
  // must assign identically — this is the whole routing contract.
  const ShardRouter a(4);
  const ShardRouter b(4);
  for (const uint64_t key : SomeKeys(2048)) {
    EXPECT_EQ(a.OwnerShard(key), b.OwnerShard(key));
  }
}

TEST(ShardRouterTest, EveryShardOwnsSomeKeys) {
  const uint32_t shards = 8;
  const ShardRouter router(shards);
  std::map<uint32_t, uint64_t> load;
  const std::vector<uint64_t> keys = SomeKeys(8192);
  for (const uint64_t key : keys) load[router.OwnerShard(key)] += 1;
  ASSERT_EQ(load.size(), shards) << "a shard owns no keys";
  // With 64 virtual nodes per shard the split is rough but no shard
  // should be starved or own a majority.
  for (const auto& [shard, count] : load) {
    EXPECT_GT(count, keys.size() / (shards * 4))
        << "shard " << shard << " is starved";
    EXPECT_LT(count, keys.size() / 2) << "shard " << shard << " dominates";
  }
}

TEST(ShardRouterTest, GrowingTheRingMovesOnlySomeKeys) {
  // Consistent hashing's point: resharding 4 -> 5 must leave most keys
  // where they were (unlike mod-N, which moves ~4/5 of them).
  const ShardRouter before(4);
  const ShardRouter after(5);
  const std::vector<uint64_t> keys = SomeKeys(8192);
  uint64_t moved = 0;
  for (const uint64_t key : keys) {
    const uint32_t owner = after.OwnerShard(key);
    if (owner != before.OwnerShard(key)) {
      ++moved;
      // A key only ever moves to the new shard, never between old ones.
      EXPECT_EQ(owner, 4u);
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, keys.size() / 2);
}

TEST(ShardRouterTest, AssignmentIsStableAcrossCalls) {
  const ShardRouter router(3);
  const std::vector<uint64_t> keys = SomeKeys(64);
  std::vector<uint32_t> first;
  for (const uint64_t key : keys) first.push_back(router.OwnerShard(key));
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(router.OwnerShard(keys[i]), first[i]);
  }
}

}  // namespace
}  // namespace felip::dist
