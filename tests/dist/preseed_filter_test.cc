// PreseedDedup's ownership filter: a restarted shard seeds its dedup
// window only with keys the current sharding assigns to it.
//
// The regression this pins: a dedup key list recovered from an earlier
// incarnation (or an earlier topology) can contain keys of batches that
// OTHER shards own and counted. If those keys land in this shard's
// window, a batch rerouted here after resharding is silently
// duplicate-acked — the client believes it was delivered, no shard ever
// counts its reports, and the round can never complete. With the filter,
// foreign keys never enter the window, so a first-time batch is always
// accepted no matter whose window its key once sat in.

#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "felip/core/felip.h"
#include "felip/data/synthetic.h"
#include "felip/dist/partition.h"
#include "felip/svc/client.h"
#include "felip/svc/loopback.h"
#include "felip/svc/message.h"
#include "felip/svc/server.h"
#include "felip/svc/simulator.h"
#include "felip/svc/sink.h"
#include "felip/wire/wire.h"

namespace felip::dist {
namespace {

constexpr uint64_t kUsers = 600;
constexpr uint64_t kSeed = 21;

using Batch = std::vector<wire::ReportMessage>;

core::FelipConfig MakeConfig() {
  core::FelipConfig config;
  config.epsilon = 1.0;
  config.seed = kSeed;
  return config;
}

data::Dataset MakeData() {
  return data::MakeIpumsLike(kUsers, 3, 16, 4, kSeed);
}

std::vector<Batch> MakeBatches(const data::Dataset& dataset,
                               const core::FelipConfig& config) {
  core::FelipPipeline pipeline(dataset.attributes(), kUsers, config);
  std::vector<wire::GridConfigMessage> grid_configs;
  for (uint32_t g = 0; g < pipeline.num_groups(); ++g) {
    grid_configs.push_back(wire::MakeGridConfig(
        pipeline, pipeline.schema(), g, pipeline.per_grid_epsilon(),
        config.protocol_options()));
  }
  svc::SimulatorOptions options;
  options.seed = config.seed;
  options.partitioning = config.partitioning;
  options.batch_size = 32;
  const svc::PopulationSimulator simulator(grid_configs, options);
  std::vector<Batch> batches;
  const auto sent = simulator.Run(dataset, [&](const Batch& batch) {
    batches.push_back(batch);
    return true;
  });
  EXPECT_TRUE(sent.has_value());
  return batches;
}

uint64_t BatchKey(const Batch& batch) {
  const std::optional<uint64_t> key =
      svc::ChecksumTrailer(wire::EncodeReportBatch(batch));
  EXPECT_TRUE(key.has_value());
  return key.value_or(0);
}

TEST(PreseedFilterTest, ForeignKeysAreFilteredAndCounted) {
  const data::Dataset dataset = MakeData();
  const core::FelipConfig config = MakeConfig();
  const std::vector<Batch> batches = MakeBatches(dataset, config);
  ASSERT_GT(batches.size(), 4u);

  const uint32_t shard_id = 0;
  const ShardRouter router(2);
  std::vector<uint64_t> all_keys;
  size_t owned = 0;
  for (const Batch& batch : batches) {
    const uint64_t key = BatchKey(batch);
    all_keys.push_back(key);
    if (router.OwnerShard(key) == shard_id) ++owned;
  }
  ASSERT_GT(owned, 0u);
  ASSERT_LT(owned, all_keys.size()) << "both shards must own some batches";

  core::FelipPipeline pipeline(dataset.attributes(), kUsers, config);
  svc::PipelineSink sink(&pipeline);
  svc::LoopbackTransport transport;
  svc::IngestServerOptions options;
  options.owns_key = [&router](uint64_t key) {
    return router.OwnerShard(key) == shard_id;
  };
  svc::IngestServer server(&transport, "preseed-filter", &sink, options);
  server.PreseedDedup(all_keys);
  EXPECT_EQ(server.preseed_filtered(), all_keys.size() - owned);
}

TEST(PreseedFilterTest, UnsetFilterKeepsEveryKey) {
  const data::Dataset dataset = MakeData();
  const core::FelipConfig config = MakeConfig();
  const std::vector<Batch> batches = MakeBatches(dataset, config);
  std::vector<uint64_t> keys;
  for (const Batch& batch : batches) keys.push_back(BatchKey(batch));

  core::FelipPipeline pipeline(dataset.attributes(), kUsers, config);
  svc::PipelineSink sink(&pipeline);
  svc::LoopbackTransport transport;
  svc::IngestServer server(&transport, "preseed-unfiltered", &sink, {});
  server.PreseedDedup(keys);
  EXPECT_EQ(server.preseed_filtered(), 0u);
}

TEST(PreseedFilterTest, ReshardedRestartNeverRejectsAnotherShardsReport) {
  const data::Dataset dataset = MakeData();
  const core::FelipConfig config = MakeConfig();
  const std::vector<Batch> batches = MakeBatches(dataset, config);
  ASSERT_GT(batches.size(), 4u);

  // The stale key list: every batch of the round, as a single-node
  // incarnation's dedup window would have recorded it before the
  // topology changed under it.
  std::vector<uint64_t> stale_keys;
  for (const Batch& batch : batches) stale_keys.push_back(BatchKey(batch));

  // Restart as shard 0 of 2, preseeding that stale list. Batches the new
  // sharding assigns elsewhere may still be delivered here (rerouted
  // resends during the topology change); the window must not know them.
  const uint32_t shard_id = 0;
  const ShardRouter router(2);
  core::FelipPipeline pipeline(dataset.attributes(), kUsers, config);
  svc::PipelineSink sink(&pipeline);
  svc::LoopbackTransport transport;
  svc::IngestServerOptions options;
  options.owns_key = [&router](uint64_t key) {
    return router.OwnerShard(key) == shard_id;
  };
  svc::IngestServer server(&transport, "preseed-reshard", &sink, options);
  server.PreseedDedup(stale_keys);
  ASSERT_TRUE(server.Start());
  EXPECT_GT(server.preseed_filtered(), 0u);

  svc::IngestClient client(&transport, server.endpoint());
  uint64_t foreign_reports = 0;
  uint64_t foreign_batches = 0;
  for (const Batch& batch : batches) {
    const bool owned_here = router.OwnerShard(BatchKey(batch)) == shard_id;
    const svc::SendOutcome outcome = client.SendBatch(batch);
    ASSERT_TRUE(outcome.ok());
    if (owned_here) {
      // This shard's own stale keys stay in the window: resends of
      // batches it already counted keep deduping.
      EXPECT_TRUE(outcome.duplicate);
    } else {
      // Another shard's report: never rejected, counted here.
      EXPECT_FALSE(outcome.duplicate);
      foreign_reports += batch.size();
      ++foreign_batches;
    }
  }
  ASSERT_GT(foreign_batches, 0u);
  EXPECT_TRUE(server.WaitForReports(foreign_reports, 30000));
  server.Stop();
  sink.Finish();
  EXPECT_EQ(pipeline.reports_ingested(), foreign_reports)
      << "a foreign-shard batch was duplicate-acked and its reports lost";
}

}  // namespace
}  // namespace felip::dist
