// Tests for the runtime dispatch layer: level naming/parsing, the
// compiled/supported sets, and the scoped override used by the
// differential and golden suites to pin a level.

#include <gtest/gtest.h>

#include "felip/simd/dispatch.h"

namespace felip::simd {
namespace {

TEST(DispatchTest, LevelNamesRoundTrip) {
  for (const Level level :
       {Level::kScalar, Level::kAvx2, Level::kNeon}) {
    Level parsed = Level::kScalar;
    ASSERT_TRUE(ParseLevel(LevelName(level), &parsed))
        << LevelName(level);
    EXPECT_EQ(parsed, level);
  }
}

TEST(DispatchTest, ParseLevelAcceptsAutoAndRejectsGarbage) {
  // "auto" resolves to the best level this build+CPU can run, which must
  // itself be supported.
  Level parsed = Level::kScalar;
  ASSERT_TRUE(ParseLevel("auto", &parsed));
  EXPECT_TRUE(LevelSupported(parsed));
  for (const char* bad : {"", "AVX2", "sse", "scalar ", "avx512", "2"}) {
    EXPECT_FALSE(ParseLevel(bad, &parsed)) << "token=\"" << bad << "\"";
  }
}

TEST(DispatchTest, ScalarAlwaysCompiledAndSupported) {
  const auto levels = CompiledLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Level::kScalar);
  EXPECT_TRUE(LevelSupported(Level::kScalar));
}

TEST(DispatchTest, SupportedImpliesCompiled) {
  for (const Level level :
       {Level::kScalar, Level::kAvx2, Level::kNeon}) {
    if (!LevelSupported(level)) continue;
    bool compiled = false;
    for (const Level c : CompiledLevels()) compiled |= c == level;
    EXPECT_TRUE(compiled) << LevelName(level);
  }
}

TEST(DispatchTest, ActiveLevelIsSupported) {
  EXPECT_TRUE(LevelSupported(ActiveLevel()));
}

TEST(DispatchTest, ScopedOverridePinsAndRestores) {
  const Level before = ActiveLevel();
  {
    ScopedLevelOverride pin(Level::kScalar);
    EXPECT_EQ(ActiveLevel(), Level::kScalar);
    // Nested override wins, then unwinds in order.
    for (const Level level : CompiledLevels()) {
      if (!LevelSupported(level)) continue;
      ScopedLevelOverride inner(level);
      EXPECT_EQ(ActiveLevel(), level);
    }
    EXPECT_EQ(ActiveLevel(), Level::kScalar);
  }
  EXPECT_EQ(ActiveLevel(), before);
}

TEST(DispatchTest, DescribeDispatchMentionsActiveLevel) {
  const std::string desc = DescribeDispatch();
  EXPECT_NE(desc.find(LevelName(ActiveLevel())), std::string::npos)
      << desc;
}

}  // namespace
}  // namespace felip::simd
