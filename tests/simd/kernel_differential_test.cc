// Differential harness for the SIMD kernel layer: every kernel, at every
// compiled-and-supported dispatch level, must be BIT-IDENTICAL to the
// scalar baseline — for every tail length around the vector width,
// adversarial floating-point values (denormals, huge magnitudes, signed
// zeros), saturated byte patterns, and preloaded accumulators. The same
// suite runs under the sanitizer matrix in CI, so the vector loads/stores
// are also checked for out-of-bounds tails.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "felip/common/hash.h"
#include "felip/simd/dispatch.h"
#include "felip/simd/fastdiv.h"
#include "felip/simd/kernels.h"

namespace felip::simd {
namespace {

// Every level the running machine can actually execute. Scalar is always
// first, so tests can diff each vector level against levels[0].
std::vector<Level> RunnableLevels() {
  std::vector<Level> levels;
  for (const Level level : CompiledLevels()) {
    if (LevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

// Sizes that exercise empty input, every tail 0..kLanes+1 around one
// vector block, the 16-wide byte-kernel block, and a couple of odd large
// lengths that mix many blocks with a tail.
std::vector<size_t> InterestingSizes() {
  std::vector<size_t> sizes;
  for (size_t n = 0; n <= 2 * kLanes + 2; ++n) sizes.push_back(n);
  for (const size_t n : {15, 16, 17, 31, 32, 33, 63, 64, 65, 200, 1021}) {
    sizes.push_back(static_cast<size_t>(n));
  }
  return sizes;
}

TEST(KernelDifferentialTest, AccumulateNonzeroBytesMatchesScalar) {
  std::mt19937_64 rng(42);
  for (const size_t n : InterestingSizes()) {
    std::vector<uint8_t> bits(n);
    for (auto& b : bits) {
      // Mix zeros with saturated 0xFF and small nonzero values — the
      // AVX2 min_epu8 trick must treat them all as exactly 1.
      const uint64_t r = rng();
      b = r % 3 == 0 ? 0 : (r % 5 == 0 ? 0xFF : static_cast<uint8_t>(r));
    }
    // Huge preloaded accumulators: the kernel adds, never overwrites.
    std::vector<uint64_t> expected(n, 0xFFFFFFFFFFFF0000ULL);
    AccumulateNonzeroBytes(Level::kScalar, bits.data(), n, expected.data());
    for (const Level level : RunnableLevels()) {
      std::vector<uint64_t> acc(n, 0xFFFFFFFFFFFF0000ULL);
      AccumulateNonzeroBytes(level, bits.data(), n, acc.data());
      EXPECT_EQ(acc, expected) << "level=" << LevelName(level) << " n=" << n;
    }
  }
}

TEST(KernelDifferentialTest, AddU64MatchesScalar) {
  std::mt19937_64 rng(43);
  for (const size_t n : InterestingSizes()) {
    std::vector<uint64_t> from(n);
    for (auto& v : from) v = rng();
    std::vector<uint64_t> expected(n, 1);
    AddU64(Level::kScalar, expected.data(), from.data(), n);
    for (const Level level : RunnableLevels()) {
      std::vector<uint64_t> into(n, 1);
      AddU64(level, into.data(), from.data(), n);
      EXPECT_EQ(into, expected) << "level=" << LevelName(level) << " n=" << n;
    }
  }
}

TEST(KernelDifferentialTest, HistogramU64MatchesScalar) {
  std::mt19937_64 rng(44);
  // Bin counts straddling the lane-split layout's applicability boundary
  // (kLaneHistogramMaxBins = 2048), plus large scalar-path domains.
  for (const size_t bins : {1, 2, 7, 64, 2047, 2048, 2049, 100000}) {
    for (const size_t n : InterestingSizes()) {
      std::vector<uint64_t> keys(n);
      for (auto& k : keys) k = rng() % bins;
      std::vector<uint64_t> expected(bins, 5);
      HistogramU64(Level::kScalar, keys.data(), n, expected.data(), bins);
      for (const Level level : RunnableLevels()) {
        std::vector<uint64_t> acc(bins, 5);
        HistogramU64(level, keys.data(), n, acc.data(), bins);
        EXPECT_EQ(acc, expected)
            << "level=" << LevelName(level) << " n=" << n
            << " bins=" << bins;
      }
    }
  }
}

TEST(KernelDifferentialTest, HistogramHotBucketMatchesScalar) {
  // All keys identical: the worst case for the lane-split layout's
  // conflict-free claim and the fold arithmetic.
  const size_t bins = 16;
  std::vector<uint64_t> keys(1000, 9);
  std::vector<uint64_t> expected(bins, 0);
  HistogramU64(Level::kScalar, keys.data(), keys.size(), expected.data(),
               bins);
  for (const Level level : RunnableLevels()) {
    std::vector<uint64_t> acc(bins, 0);
    HistogramU64(level, keys.data(), keys.size(), acc.data(), bins);
    EXPECT_EQ(acc, expected) << "level=" << LevelName(level);
  }
}

TEST(KernelDifferentialTest, OlhSupportRangeMatchesScalar) {
  std::mt19937_64 rng(45);
  for (const size_t n : InterestingSizes()) {
    for (const uint32_t g : {2u, 3u, 4u, 16u, 17u, 1023u, 1000003u}) {
      const uint64_t seed = rng();
      const uint32_t target = static_cast<uint32_t>(rng() % g);
      const uint64_t first_value = rng() % 100000;
      std::vector<uint64_t> expected(n, 100);
      OlhSupportRange(Level::kScalar, seed, g, target, first_value, n,
                      expected.data());
      for (const Level level : RunnableLevels()) {
        std::vector<uint64_t> acc(n, 100);
        OlhSupportRange(level, seed, g, target, first_value, n, acc.data());
        EXPECT_EQ(acc, expected)
            << "level=" << LevelName(level) << " n=" << n << " g=" << g;
      }
    }
  }
}

TEST(KernelDifferentialTest, OlhSupportRangeMatchesDirectHash) {
  // Ground truth straight from the public hash, independent of any
  // kernel implementation.
  const uint64_t seed = 0xDEADBEEFCAFEF00DULL;
  const uint32_t g = 7;
  const size_t n = 101;
  for (const Level level : RunnableLevels()) {
    std::vector<uint64_t> acc(n, 0);
    OlhSupportRange(level, seed, g, /*target=*/3, /*first_value=*/50, n,
                    acc.data());
    for (size_t i = 0; i < n; ++i) {
      const uint64_t expect = OlhHash(50 + i, seed, g) == 3 ? 1 : 0;
      EXPECT_EQ(acc[i], expect)
          << "level=" << LevelName(level) << " i=" << i;
    }
  }
}

TEST(KernelDifferentialTest, OlhPoolSupportMatchesScalar) {
  std::mt19937_64 rng(46);
  for (const size_t num_seeds : InterestingSizes()) {
    const uint32_t g = 2 + static_cast<uint32_t>(rng() % 30);
    std::vector<uint64_t> seeds(num_seeds);
    for (auto& s : seeds) s = rng();
    std::vector<uint32_t> counts(num_seeds * g);
    for (auto& c : counts) c = static_cast<uint32_t>(rng());
    const uint64_t value = rng() % 100000;
    const uint64_t expected = OlhPoolSupport(
        Level::kScalar, value, seeds.data(), num_seeds, g, counts.data());
    for (const Level level : RunnableLevels()) {
      EXPECT_EQ(OlhPoolSupport(level, value, seeds.data(), num_seeds, g,
                               counts.data()),
                expected)
          << "level=" << LevelName(level) << " num_seeds=" << num_seeds;
    }
  }
}

// Adversarial doubles: denormals, near-overflow magnitudes, signed
// zeros, values spanning 300 orders of magnitude — any deviation from
// the canonical accumulation order shows up as a bit difference here.
std::vector<double> AdversarialDoubles(size_t n, uint64_t seed) {
  static const double specials[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      1e308,
      -1e308,
      1e-300,
      5e-324,
      1.0 + std::numeric_limits<double>::epsilon(),
      -1.0,
      3.141592653589793,
      6.02214076e23,
  };
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ud(-1e6, 1e6);
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = rng() % 4 == 0
                 ? specials[rng() % (sizeof(specials) / sizeof(double))]
                 : ud(rng);
  }
  return out;
}

// The adversarial inputs intentionally overflow to inf and cancel to NaN;
// "bit-identical" therefore has to mean the literal bit pattern (NaN ==
// NaN is false, but two kernels producing the same NaN still agree).
uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

TEST(KernelDifferentialTest, AddF64BitIdentical) {
  for (const size_t n : InterestingSizes()) {
    const std::vector<double> a = AdversarialDoubles(n, 47);
    const std::vector<double> b = AdversarialDoubles(n, 48);
    std::vector<double> expected(n);
    AddF64(Level::kScalar, a.data(), b.data(), expected.data(), n);
    for (const Level level : RunnableLevels()) {
      std::vector<double> dst(n);
      AddF64(level, a.data(), b.data(), dst.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(Bits(dst[i]), Bits(expected[i]))
            << "level=" << LevelName(level) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(KernelDifferentialTest, DotBitIdentical) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    for (const size_t n : InterestingSizes()) {
      const std::vector<double> a = AdversarialDoubles(n, 100 + seed);
      const std::vector<double> b = AdversarialDoubles(n, 200 + seed);
      const double expected = Dot(Level::kScalar, a.data(), b.data(), n);
      for (const Level level : RunnableLevels()) {
        const double got = Dot(level, a.data(), b.data(), n);
        EXPECT_EQ(Bits(got), Bits(expected))
            << "level=" << LevelName(level) << " n=" << n
            << " seed=" << seed;
      }
    }
  }
}

TEST(KernelDifferentialTest, SumBitIdentical) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    for (const size_t n : InterestingSizes()) {
      const std::vector<double> p = AdversarialDoubles(n, 300 + seed);
      const double expected = Sum(Level::kScalar, p.data(), n);
      for (const Level level : RunnableLevels()) {
        EXPECT_EQ(Bits(Sum(level, p.data(), n)), Bits(expected))
            << "level=" << LevelName(level) << " n=" << n
            << " seed=" << seed;
      }
    }
  }
}

TEST(KernelDifferentialTest, ScaleAbsDeltaBitIdentical) {
  for (const double scale : {0.0, 1.0, 0.7315, -2.5, 1e-300, 1e300}) {
    for (const size_t n : InterestingSizes()) {
      const std::vector<double> input = AdversarialDoubles(n, 400);
      std::vector<double> expected_data = input;
      const double expected_delta = ScaleAbsDelta(
          Level::kScalar, expected_data.data(), n, scale);
      for (const Level level : RunnableLevels()) {
        std::vector<double> data = input;
        const double delta = ScaleAbsDelta(level, data.data(), n, scale);
        EXPECT_EQ(Bits(delta), Bits(expected_delta))
            << "level=" << LevelName(level) << " n=" << n
            << " scale=" << scale;
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(Bits(data[i]), Bits(expected_data[i]))
              << "level=" << LevelName(level) << " i=" << i;
        }
      }
    }
  }
}

TEST(FastDivTest, ExactForRandomDividends) {
  std::mt19937_64 rng(50);
  for (int trial = 0; trial < 2000; ++trial) {
    // Mix small divisors (the realistic OLH g values), powers of two,
    // and arbitrary 64-bit divisors.
    uint64_t d;
    switch (trial % 3) {
      case 0:
        d = 1 + rng() % 1024;
        break;
      case 1:
        d = uint64_t{1} << (rng() % 64);
        break;
      default:
        d = rng() | 1;
    }
    const FastDivU64 fd = MakeFastDivU64(d);
    for (int i = 0; i < 100; ++i) {
      const uint64_t n = rng();
      ASSERT_EQ(FastDivQuotient(fd, n), n / d) << "d=" << d << " n=" << n;
      ASSERT_EQ(FastDivRemainder(fd, n), n % d) << "d=" << d << " n=" << n;
    }
    // Boundary dividends where magic-multiply constructions break first.
    for (const uint64_t n :
         {uint64_t{0}, uint64_t{1}, d - 1, d, d + 1, 2 * d - 1, 2 * d,
          ~uint64_t{0}, ~uint64_t{0} - 1, uint64_t{1} << 63}) {
      ASSERT_EQ(FastDivQuotient(fd, n), n / d) << "d=" << d << " n=" << n;
      ASSERT_EQ(FastDivRemainder(fd, n), n % d) << "d=" << d << " n=" << n;
    }
  }
}

TEST(FastDivTest, ExhaustiveSmallDivisors) {
  // Every divisor up to 300 against a dense dividend sweep: catches
  // off-by-one fixup errors that random sampling can miss.
  for (uint64_t d = 1; d <= 300; ++d) {
    const FastDivU64 fd = MakeFastDivU64(d);
    for (uint64_t n = 0; n < 2000; ++n) {
      ASSERT_EQ(FastDivQuotient(fd, n), n / d) << "d=" << d << " n=" << n;
    }
    for (uint64_t n = ~uint64_t{0}; n > ~uint64_t{0} - 2000; --n) {
      ASSERT_EQ(FastDivQuotient(fd, n), n / d) << "d=" << d << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace felip::simd
