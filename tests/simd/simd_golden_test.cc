// End-to-end dispatch-equivalence tests: the SAME workload, re-run under
// every compiled-and-supported SIMD dispatch level and several thread
// counts, must produce BIT-IDENTICAL estimates — not "close", identical.
// This is the golden gate for the kernel layer: if an AVX2/NEON kernel
// deviates from the canonical scalar accumulation order anywhere in the
// FO aggregation or query path, one of these EXPECT_EQs trips.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "felip/common/rng.h"
#include "felip/core/felip.h"
#include "felip/data/synthetic.h"
#include "felip/fo/grr.h"
#include "felip/fo/olh.h"
#include "felip/fo/oue.h"
#include "felip/query/generator.h"
#include "felip/query/query.h"
#include "felip/simd/dispatch.h"

namespace felip {
namespace {

std::vector<simd::Level> RunnableLevels() {
  std::vector<simd::Level> levels;
  for (const simd::Level level : simd::CompiledLevels()) {
    if (simd::LevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

// Bitwise comparison of estimate vectors; EXPECT_EQ on doubles is exact.
void ExpectIdentical(const std::vector<double>& got,
                     const std::vector<double>& want,
                     const char* what, simd::Level level,
                     unsigned threads) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i])
        << what << " level=" << simd::LevelName(level)
        << " threads=" << threads << " i=" << i;
  }
}

constexpr unsigned kThreadCounts[] = {1, 2, 5};

TEST(SimdGoldenTest, GrrEstimatesIdenticalAcrossLevels) {
  constexpr uint64_t kDomain = 97;
  constexpr uint64_t kUsers = 20000;
  const fo::GrrClient client(/*epsilon=*/1.0, kDomain);
  Rng rng(11);
  std::vector<uint64_t> reports(kUsers);
  for (uint64_t u = 0; u < kUsers; ++u) {
    reports[u] = client.Perturb(u % kDomain, rng);
  }

  std::vector<double> baseline;
  {
    simd::ScopedLevelOverride pin(simd::Level::kScalar);
    fo::GrrServer server(1.0, kDomain);
    server.AggregateReports(reports, /*thread_count=*/1);
    baseline = server.EstimateFrequencies();
  }
  for (const simd::Level level : RunnableLevels()) {
    simd::ScopedLevelOverride pin(level);
    for (const unsigned threads : kThreadCounts) {
      fo::GrrServer server(1.0, kDomain);
      server.AggregateReports(reports, threads);
      ExpectIdentical(server.EstimateFrequencies(), baseline, "grr", level,
                      threads);
    }
  }
}

TEST(SimdGoldenTest, OueEstimatesIdenticalAcrossLevels) {
  constexpr uint64_t kDomain = 61;
  constexpr uint64_t kUsers = 3000;
  const fo::OueClient client(/*epsilon=*/1.0, kDomain);
  Rng rng(12);
  std::vector<std::vector<uint8_t>> reports(kUsers);
  for (uint64_t u = 0; u < kUsers; ++u) {
    reports[u] = client.Perturb(u % kDomain, rng);
  }

  std::vector<double> baseline;
  {
    simd::ScopedLevelOverride pin(simd::Level::kScalar);
    fo::OueServer server(1.0, kDomain);
    server.AggregateReports(reports, /*thread_count=*/1);
    baseline = server.EstimateFrequencies();
  }
  for (const simd::Level level : RunnableLevels()) {
    simd::ScopedLevelOverride pin(level);
    for (const unsigned threads : kThreadCounts) {
      fo::OueServer server(1.0, kDomain);
      server.AggregateReports(reports, threads);
      ExpectIdentical(server.EstimateFrequencies(), baseline, "oue", level,
                      threads);
    }
  }
}

TEST(SimdGoldenTest, OlhPerUserEstimatesIdenticalAcrossLevels) {
  constexpr uint64_t kDomain = 211;
  constexpr uint64_t kUsers = 4000;
  const fo::OlhClient client(/*epsilon=*/1.0, kDomain);
  Rng rng(13);
  std::vector<fo::OlhReport> reports(kUsers);
  for (uint64_t u = 0; u < kUsers; ++u) {
    reports[u] = client.Perturb(u % kDomain, rng);
  }

  std::vector<double> baseline;
  {
    simd::ScopedLevelOverride pin(simd::Level::kScalar);
    fo::OlhServer server(1.0, kDomain);
    server.AggregateReports(reports, /*thread_count=*/1);
    baseline = server.EstimateFrequencies(/*thread_count=*/1);
  }
  for (const simd::Level level : RunnableLevels()) {
    simd::ScopedLevelOverride pin(level);
    for (const unsigned threads : kThreadCounts) {
      fo::OlhServer server(1.0, kDomain);
      server.AggregateReports(reports, threads);
      ExpectIdentical(server.EstimateFrequencies(threads), baseline,
                      "olh-per-user", level, threads);
    }
  }
}

TEST(SimdGoldenTest, OlhPoolEstimatesIdenticalAcrossLevels) {
  constexpr uint64_t kDomain = 211;
  constexpr uint64_t kUsers = 20000;
  const fo::OlhOptions options{.seed_pool_size = 64, .pool_salt = 99};
  const fo::OlhClient client(/*epsilon=*/1.0, kDomain, options);
  Rng rng(14);
  std::vector<fo::OlhReport> reports(kUsers);
  for (uint64_t u = 0; u < kUsers; ++u) {
    reports[u] = client.Perturb(u % kDomain, rng);
  }

  std::vector<double> baseline;
  {
    simd::ScopedLevelOverride pin(simd::Level::kScalar);
    fo::OlhServer server(1.0, kDomain, options);
    server.AggregateReports(reports, /*thread_count=*/1);
    baseline = server.EstimateFrequencies(/*thread_count=*/1);
  }
  for (const simd::Level level : RunnableLevels()) {
    simd::ScopedLevelOverride pin(level);
    for (const unsigned threads : kThreadCounts) {
      fo::OlhServer server(1.0, kDomain, options);
      server.AggregateReports(reports, threads);
      ExpectIdentical(server.EstimateFrequencies(threads), baseline,
                      "olh-pool", level, threads);
    }
  }
}

// Full pipeline: dataset -> perturbation -> aggregation -> consistency ->
// response matrices -> query answers, re-run per dispatch level. Covers
// the post/ kernels (Dot in ScanRect, AddF64 in BuildPrefixSums, Sum and
// ScaleAbsDelta in the IPF sweeps) on top of the FO ones.
TEST(SimdGoldenTest, PipelineAnswersIdenticalAcrossLevels) {
  const data::Dataset dataset = data::MakeIpumsLike(
      /*n=*/1500, /*attributes=*/4, /*num_domain=*/40, /*cat_domain=*/6,
      /*seed=*/21);
  core::FelipConfig config;
  config.epsilon = 1.0;
  config.seed = 5;
  config.olh_options.seed_pool_size = 128;

  std::vector<query::Query> queries;
  for (const uint32_t lambda : {2u, 3u}) {
    Rng rng(77 + lambda);
    auto batch = query::GenerateQueries(
        dataset, /*count=*/4, {.dimension = lambda, .selectivity = 0.5},
        rng);
    queries.insert(queries.end(), batch.begin(), batch.end());
  }

  const auto answers_at = [&](simd::Level level, unsigned threads) {
    simd::ScopedLevelOverride pin(level);
    core::FelipConfig c = config;
    c.aggregation_threads = threads;
    const core::FelipPipeline pipeline = core::RunFelip(dataset, c);
    std::vector<double> answers;
    answers.reserve(queries.size());
    for (const query::Query& q : queries) {
      answers.push_back(pipeline.AnswerQuery(q));
    }
    return answers;
  };

  const std::vector<double> baseline =
      answers_at(simd::Level::kScalar, /*threads=*/1);
  ASSERT_EQ(baseline.size(), queries.size());
  for (const simd::Level level : RunnableLevels()) {
    for (const unsigned threads : {1u, 3u}) {
      ExpectIdentical(answers_at(level, threads), baseline, "pipeline",
                      level, threads);
    }
  }
}

}  // namespace
}  // namespace felip
