// Replay-log segment format: the truncation contract (every prefix of a
// valid segment reads cleanly to a record boundary or stops with
// kDataLoss — never a torn record), a bit-flip sweep over the whole
// file, and the reseal subtlety: a record whose seal was recomputed
// after payload damage reads "cleanly" here by design, because the wire
// checksum trailer inside the payload is the next gate (replay counts it
// undecodable; see replay_test.cc).

#include "felip/replaylog/format.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "felip/common/hash.h"

namespace felip::replaylog {
namespace {

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

std::vector<uint8_t> MakePlan() { return Payload({0xAA, 0xBB, 0xCC}); }

struct SegmentFixture {
  std::vector<uint8_t> bytes;
  std::vector<LogRecord> records;
  // Byte offsets that are record boundaries: the first record's start and
  // the end of every record (the last one == bytes.size()).
  std::vector<size_t> boundaries;
};

SegmentFixture MakeValidSegment() {
  SegmentFixture fixture;
  fixture.bytes = EncodeSegmentHeader(MakePlan());
  fixture.boundaries.push_back(fixture.bytes.size());
  const std::vector<std::vector<uint8_t>> payloads = {
      Payload({1, 2, 3, 4, 5}),
      Payload({}),
      Payload({9, 8, 7}),
  };
  uint64_t key = 0x1000;
  for (const std::vector<uint8_t>& payload : payloads) {
    AppendRecord(&fixture.bytes, RecordType::kBatch, key, payload);
    fixture.records.push_back({RecordType::kBatch, key, payload});
    fixture.boundaries.push_back(fixture.bytes.size());
    ++key;
  }
  return fixture;
}

// Reads every record until clean EOF or damage. Returns the records read;
// *clean is whether iteration ended at a boundary (Next() == false)
// rather than with kDataLoss.
std::vector<LogRecord> ReadAll(SegmentParser* parser, bool* clean) {
  std::vector<LogRecord> records;
  LogRecord record;
  while (true) {
    const StatusOr<bool> next = parser->Next(&record);
    if (!next.ok()) {
      *clean = false;
      return records;
    }
    if (!*next) {
      *clean = true;
      return records;
    }
    records.push_back(record);
  }
}

void ExpectRecordsEqual(const std::vector<LogRecord>& actual,
                        const std::vector<LogRecord>& expected,
                        size_t expected_count) {
  ASSERT_EQ(actual.size(), expected_count);
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].type, expected[i].type) << "record " << i;
    EXPECT_EQ(actual[i].key, expected[i].key) << "record " << i;
    EXPECT_EQ(actual[i].payload, expected[i].payload) << "record " << i;
  }
}

TEST(ReplayLogFormatTest, RoundTripsRecordsInOrder) {
  const SegmentFixture fixture = MakeValidSegment();
  StatusOr<SegmentParser> parser = SegmentParser::Open(fixture.bytes);
  ASSERT_TRUE(parser.ok()) << parser.status().ToString();
  EXPECT_EQ(parser->plan(), MakePlan());

  bool clean = false;
  const std::vector<LogRecord> records = ReadAll(&*parser, &clean);
  EXPECT_TRUE(clean);
  ExpectRecordsEqual(records, fixture.records, fixture.records.size());
  EXPECT_EQ(parser->position(), fixture.bytes.size());

  // Clean EOF is sticky.
  LogRecord record;
  const StatusOr<bool> again = parser->Next(&record);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
}

TEST(ReplayLogFormatTest, HeaderOnlySegmentIsCleanEof) {
  const std::vector<uint8_t> bytes = EncodeSegmentHeader(MakePlan());
  StatusOr<SegmentParser> parser = SegmentParser::Open(bytes);
  ASSERT_TRUE(parser.ok()) << parser.status().ToString();
  LogRecord record;
  const StatusOr<bool> next = parser->Next(&record);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
}

TEST(ReplayLogFormatTest, EmptyPlanRoundTrips) {
  const std::vector<uint8_t> bytes = EncodeSegmentHeader({});
  const StatusOr<SegmentParser> parser = SegmentParser::Open(bytes);
  ASSERT_TRUE(parser.ok()) << parser.status().ToString();
  EXPECT_TRUE(parser->plan().empty());
}

TEST(ReplayLogFormatTest, BadMagicRejected) {
  SegmentFixture fixture = MakeValidSegment();
  fixture.bytes[0] ^= 0xFF;
  const auto parser = SegmentParser::Open(fixture.bytes);
  ASSERT_FALSE(parser.ok());
  EXPECT_EQ(parser.status().code(), StatusCode::kDataLoss);
}

TEST(ReplayLogFormatTest, FutureVersionRejected) {
  SegmentFixture fixture = MakeValidSegment();
  fixture.bytes[4] = kFormatVersion + 1;  // [magic u32][version u8]
  const auto parser = SegmentParser::Open(fixture.bytes);
  ASSERT_FALSE(parser.ok());
  EXPECT_EQ(parser.status().code(), StatusCode::kDataLoss);
}

TEST(ReplayLogFormatTest, OversizedPlanLengthRejected) {
  SegmentFixture fixture = MakeValidSegment();
  const uint32_t huge = kMaxPlanBytes + 1;
  std::memcpy(fixture.bytes.data() + 5, &huge, sizeof(huge));
  const auto parser = SegmentParser::Open(fixture.bytes);
  ASSERT_FALSE(parser.ok());
  EXPECT_EQ(parser.status().code(), StatusCode::kDataLoss);
}

TEST(ReplayLogFormatTest, UnknownRecordTypeRejected) {
  // A record of an unknown type stops iteration: this version cannot know
  // its framing is what it claims, so the boundary before it is final.
  std::vector<uint8_t> bytes = EncodeSegmentHeader(MakePlan());
  const size_t record_start = bytes.size();
  AppendRecord(&bytes, RecordType::kBatch, 7, Payload({1}));
  bytes[record_start] = 99;  // type byte; seal now also mismatches
  StatusOr<SegmentParser> parser = SegmentParser::Open(bytes);
  ASSERT_TRUE(parser.ok());
  LogRecord record;
  const StatusOr<bool> next = parser->Next(&record);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kDataLoss);
}

TEST(ReplayLogFormatTest, TinyAndEmptyInputsRejected) {
  EXPECT_FALSE(SegmentParser::Open({}).ok());
  EXPECT_FALSE(SegmentParser::Open({0x47}).ok());
  EXPECT_FALSE(
      SegmentParser::Open(std::vector<uint8_t>(sizeof(uint64_t), 0)).ok());
}

// The format's central contract: the log is appended whole records at a
// time, so EVERY prefix of a valid segment either reads cleanly to a
// record boundary or returns kDataLoss there — and the records it does
// return are bit-exact originals.
TEST(ReplayLogFormatTest, EveryTruncationLengthStopsAtARecordBoundary) {
  const SegmentFixture fixture = MakeValidSegment();
  const size_t header_end = fixture.boundaries.front();
  for (size_t keep = 0; keep < fixture.bytes.size(); ++keep) {
    const std::vector<uint8_t> truncated(fixture.bytes.begin(),
                                         fixture.bytes.begin() + keep);
    StatusOr<SegmentParser> parser = SegmentParser::Open(truncated);
    if (keep < header_end) {
      EXPECT_FALSE(parser.ok()) << "header verified at length " << keep;
      continue;
    }
    ASSERT_TRUE(parser.ok()) << "length " << keep << ": "
                             << parser.status().ToString();
    // Whole records below the cut still read; the cut itself is clean
    // only at an exact boundary.
    size_t whole = 0;
    bool at_boundary = false;
    for (const size_t boundary : fixture.boundaries) {
      if (boundary <= keep && boundary > header_end) ++whole;
      if (boundary == keep) at_boundary = true;
    }
    bool clean = false;
    const std::vector<LogRecord> records = ReadAll(&*parser, &clean);
    EXPECT_EQ(clean, at_boundary) << "at truncation length " << keep;
    ExpectRecordsEqual(records, fixture.records, whole);
  }
}

TEST(ReplayLogFormatTest, BitFlipSweepNeverYieldsACorruptRecord) {
  const SegmentFixture fixture = MakeValidSegment();
  const size_t header_end = fixture.boundaries.front();
  for (size_t byte = 0; byte < fixture.bytes.size(); ++byte) {
    for (uint8_t bit = 0; bit < 8; bit += 3) {
      std::vector<uint8_t> flipped = fixture.bytes;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      StatusOr<SegmentParser> parser = SegmentParser::Open(flipped);
      if (byte < header_end) {
        // Any header damage fails Open: magic, version, plan bounds, or
        // the header seal.
        EXPECT_FALSE(parser.ok())
            << "header verified with bit " << int(bit) << " of byte "
            << byte << " flipped";
        continue;
      }
      ASSERT_TRUE(parser.ok());
      bool clean = false;
      const std::vector<LogRecord> records = ReadAll(&*parser, &clean);
      // The damaged record never reads; everything before it is exact.
      EXPECT_FALSE(clean)
          << "full clean read with bit " << int(bit) << " of byte " << byte
          << " flipped";
      ASSERT_LT(records.size(), fixture.records.size());
      for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].key, fixture.records[i].key);
        EXPECT_EQ(records[i].payload, fixture.records[i].payload);
      }
    }
  }
}

TEST(ReplayLogFormatTest, ResealedRecordReadsCleanlyByDesign) {
  // Flip a payload byte AND recompute the record seal: the format layer
  // cannot tell — this is the documented layering, because a kBatch
  // payload carries its own wire checksum trailer that replay verifies
  // next (replay_test.cc pins that gate).
  std::vector<uint8_t> bytes = EncodeSegmentHeader(MakePlan());
  const size_t start = bytes.size();
  AppendRecord(&bytes, RecordType::kBatch, 7, Payload({1, 2, 3, 4}));
  const size_t prefix = 1 + 4 + 8;  // type, payload_len, key
  bytes[start + prefix] ^= 0x01;    // first payload byte
  const size_t body = prefix + 4;
  const uint64_t reseal =
      XxHash64Bytes(bytes.data() + start, body, kChecksumSalt);
  std::memcpy(bytes.data() + start + body, &reseal, sizeof(reseal));

  StatusOr<SegmentParser> parser = SegmentParser::Open(bytes);
  ASSERT_TRUE(parser.ok());
  LogRecord record;
  const StatusOr<bool> next = parser->Next(&record);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(*next);
  EXPECT_EQ(record.payload, Payload({0, 2, 3, 4}));
}

TEST(ReplayLogFormatTest, SeededRoundTripFuzz) {
  // Randomized segments (record counts, payload sizes, keys) must round
  // trip exactly; a deterministic seed keeps failures reproducible.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next_rand = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> plan(next_rand() % 64);
    for (uint8_t& b : plan) b = static_cast<uint8_t>(next_rand());
    std::vector<uint8_t> bytes = EncodeSegmentHeader(plan);
    std::vector<LogRecord> expected;
    const size_t count = next_rand() % 8;
    for (size_t i = 0; i < count; ++i) {
      LogRecord record;
      record.key = next_rand();
      record.payload.resize(next_rand() % 300);
      for (uint8_t& b : record.payload) {
        b = static_cast<uint8_t>(next_rand());
      }
      AppendRecord(&bytes, RecordType::kBatch, record.key, record.payload);
      expected.push_back(std::move(record));
    }
    StatusOr<SegmentParser> parser = SegmentParser::Open(bytes);
    ASSERT_TRUE(parser.ok()) << "trial " << trial;
    EXPECT_EQ(parser->plan(), plan);
    bool clean = false;
    const std::vector<LogRecord> records = ReadAll(&*parser, &clean);
    EXPECT_TRUE(clean) << "trial " << trial;
    ExpectRecordsEqual(records, expected, expected.size());
  }
}

}  // namespace
}  // namespace felip::replaylog
