// Replay acceptance: a report log written on the live ingest drain path
// must replay to estimates BIT-IDENTICAL to the live round — on a clean
// transport, under injected faults, across SIMD dispatch levels and
// aggregation thread counts, and for every normalization when the live
// round used the same one. Plus the recovery-oriented reading contract:
// torn tails replay their prefix, resealed-but-damaged payloads are
// caught by the wire trailer, duplicate records fall to the idempotency
// window, and mismatched plans refuse to mix.

#include "felip/replaylog/replay.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "felip/core/felip.h"
#include "felip/data/synthetic.h"
#include "felip/post/norm_sub.h"
#include "felip/replaylog/format.h"
#include "felip/replaylog/store.h"
#include "felip/simd/dispatch.h"
#include "felip/snapshot/store.h"
#include "felip/svc/client.h"
#include "felip/svc/fault_injection.h"
#include "felip/svc/loopback.h"
#include "felip/svc/server.h"
#include "felip/svc/simulator.h"
#include "felip/svc/sink.h"
#include "felip/wire/wire.h"

namespace felip::replaylog {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kUsers = 3000;
constexpr uint32_t kAttributes = 4;
constexpr uint32_t kNumDomain = 30;
constexpr uint32_t kCatDomain = 6;
constexpr uint64_t kSeed = 7;

core::FelipConfig MakeConfig() {
  core::FelipConfig config;
  config.strategy = core::Strategy::kOhg;
  config.partitioning = core::PartitioningMode::kDivideUsers;
  config.epsilon = 1.0;
  config.seed = kSeed;
  return config;
}

data::Dataset MakeData() {
  return data::MakeIpumsLike(kUsers, kAttributes, kNumDomain, kCatDomain,
                             kSeed);
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "felip_replaylog_replay" / name)
          .string();
  fs::remove_all(dir);
  return dir;
}

struct LoggedRound {
  uint64_t digest = 0;          // live grid-frequency digest, finalized
  uint64_t batches_logged = 0;  // unique drained batches on the log
  uint64_t reports = 0;
};

// A networked ingest round (mirroring tests/svc/loopback_e2e_test.cc)
// with the report log hooked into the server's drain path — the exact
// wiring tools/felip_server.cc uses.
LoggedRound RunLoggedRound(const std::string& log_dir,
                           const core::FelipConfig& config,
                           const svc::FaultOptions* faults = nullptr) {
  const data::Dataset dataset = MakeData();
  core::FelipPipeline pipeline(dataset.attributes(), kUsers, config);

  StatusOr<LogWriter> log = LogWriter::Open(
      log_dir, EncodePlan(config, kUsers, dataset.attributes()));
  EXPECT_TRUE(log.ok()) << log.status().ToString();

  svc::PipelineSink sink(&pipeline);
  svc::IngestServerOptions server_options;
  server_options.queue_capacity = 8;
  server_options.worker_threads = 3;
  server_options.decode_threads = 2;
  server_options.report_log = [&log](uint64_t key,
                                     std::span<const uint8_t> frame) {
    return log->Append(RecordType::kBatch, key, frame);
  };
  svc::LoopbackTransport transport;
  svc::IngestServer server(&transport, "ingest", &sink, server_options);
  EXPECT_TRUE(server.Start());

  std::unique_ptr<svc::FaultInjectingTransport> faulty;
  svc::Transport* client_transport = &transport;
  if (faults != nullptr) {
    faulty =
        std::make_unique<svc::FaultInjectingTransport>(&transport, *faults);
    client_transport = faulty.get();
  }
  svc::IngestClientOptions client_options;
  client_options.connect_timeout_ms = 500;
  client_options.response_timeout_ms = 250;
  client_options.max_attempts = 64;
  svc::IngestClient client(client_transport, server.endpoint(),
                           client_options);

  std::vector<wire::GridConfigMessage> grid_configs;
  for (uint32_t g = 0; g < pipeline.num_groups(); ++g) {
    grid_configs.push_back(wire::MakeGridConfig(
        pipeline, dataset.attributes(), g, pipeline.per_grid_epsilon(),
        config.protocol_options()));
  }
  svc::SimulatorOptions simulator_options;
  simulator_options.seed = config.seed;
  simulator_options.partitioning = config.partitioning;
  simulator_options.batch_size = 128;
  const svc::PopulationSimulator simulator(grid_configs, simulator_options);

  const std::optional<uint64_t> sent = simulator.Run(
      dataset, [&](const std::vector<wire::ReportMessage>& batch) {
        return client.SendBatch(batch).ok();
      });
  EXPECT_TRUE(sent.has_value()) << "delivery failed after retries";
  EXPECT_TRUE(server.WaitForReports(sent.value_or(0), 30000));
  server.Stop();
  sink.Finish();
  EXPECT_EQ(server.log_failures(), 0u);
  EXPECT_TRUE(log->Seal().ok());
  pipeline.Finalize();

  LoggedRound round;
  round.digest = core::GridFrequencyDigest(pipeline);
  round.batches_logged = server.batches_logged();
  round.reports = sent.value_or(0);
  if (faults != nullptr) {
    EXPECT_GT(faulty->faults_injected(), 0u);
  }
  return round;
}

// The in-process reference round: same accepted multiset as the
// networked one (pinned bit-identical by tests/svc/loopback_e2e_test.cc),
// so its digest is what a replay under `config` must reproduce.
uint64_t InProcessDigest(const core::FelipConfig& config) {
  const data::Dataset dataset = MakeData();
  core::FelipPipeline pipeline(dataset.attributes(), kUsers, config);
  pipeline.Collect(dataset);
  pipeline.Finalize();
  return core::GridFrequencyDigest(pipeline);
}

uint64_t FinalizedReplayDigest(ReplayResult* result) {
  result->pipeline.Finalize();
  return core::GridFrequencyDigest(result->pipeline);
}

// One shared logged round: writing it takes a full networked ingest, and
// every replay below reads the same frozen corpus — exactly the
// write-once read-many shape the log is designed for.
class ReplayE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Process-unique: ctest runs each discovered test in its own process,
    // possibly in parallel, and every process builds its own round.
    log_dir_ = new std::string(
        FreshDir("shared_round_" + std::to_string(::getpid())));
    round_ = new LoggedRound(RunLoggedRound(*log_dir_, MakeConfig()));
    ASSERT_EQ(round_->reports, kUsers);
    ASSERT_GT(round_->batches_logged, 0u);
  }

  static void TearDownTestSuite() {
    fs::remove_all(*log_dir_);
    delete round_;
    delete log_dir_;
  }

  // Copies the shared round's segments into a fresh dir a test can
  // mutate freely.
  static std::string CloneLog(const std::string& name) {
    const std::string dir = FreshDir(name);
    fs::create_directories(dir);
    for (const std::string& path : ListSegmentsOldestFirst(*log_dir_)) {
      fs::copy_file(path, fs::path(dir) / fs::path(path).filename());
    }
    return dir;
  }

  static std::string* log_dir_;
  static LoggedRound* round_;
};

std::string* ReplayE2eTest::log_dir_ = nullptr;
LoggedRound* ReplayE2eTest::round_ = nullptr;

// Reads every record of a segment file (expects no damage).
std::vector<LogRecord> ReadSegment(const std::string& path,
                                   std::vector<uint8_t>* plan) {
  StatusOr<std::vector<uint8_t>> bytes = snapshot::ReadFileBytes(path);
  EXPECT_TRUE(bytes.ok());
  StatusOr<SegmentParser> parser = SegmentParser::Open(*std::move(bytes));
  EXPECT_TRUE(parser.ok()) << parser.status().ToString();
  *plan = parser->plan();
  std::vector<LogRecord> records;
  LogRecord record;
  while (true) {
    const StatusOr<bool> next = parser->Next(&record);
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok() || !*next) return records;
    records.push_back(record);
  }
}

void WriteSegment(const std::string& path, const std::vector<uint8_t>& plan,
                  const std::vector<LogRecord>& records) {
  std::vector<uint8_t> bytes = EncodeSegmentHeader(plan);
  for (const LogRecord& record : records) {
    AppendRecord(&bytes, record.type, record.key, record.payload);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST_F(ReplayE2eTest, ReplayReproducesTheLiveDigestBitIdentically) {
  StatusOr<ReplayResult> result = ReplayLog(*log_dir_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->stats.segments_read, 1u);
  EXPECT_EQ(result->stats.segments_damaged, 0u);
  EXPECT_EQ(result->stats.batches_replayed, round_->batches_logged);
  EXPECT_EQ(result->stats.batches_duplicate, 0u);
  EXPECT_EQ(result->stats.batches_undecodable, 0u);
  EXPECT_EQ(result->stats.reports_accepted, kUsers);
  EXPECT_EQ(result->stats.reports_rejected, 0u);
  EXPECT_EQ(FinalizedReplayDigest(&*result), round_->digest);
}

TEST_F(ReplayE2eTest, NormalizationOverridesMatchEquivalentLiveRounds) {
  // Negativity removal is post-processing: one frozen corpus replays
  // under each normalization to exactly the estimate a live round with
  // that normalization produces. This is ROADMAP item 5's workflow.
  const post::Normalization kAll[] = {post::Normalization::kNormSub,
                                      post::Normalization::kNormMul,
                                      post::Normalization::kNormCut};
  for (const post::Normalization normalization : kAll) {
    core::FelipConfig config = MakeConfig();
    config.normalization = normalization;
    const uint64_t reference = InProcessDigest(config);
    ReplayOverrides overrides;
    overrides.normalization = normalization;
    StatusOr<ReplayResult> result = ReplayLog(*log_dir_, overrides);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(FinalizedReplayDigest(&*result), reference)
        << "normalization "
        << post::NormalizationName(normalization);
  }
}

TEST_F(ReplayE2eTest, ReplayIsInvariantAcrossSimdLevelsAndThreadCounts) {
  // The live round ran at the default dispatch level with the server's
  // thread pool; every (level, threads) replay must land on the same
  // digest — aggregation depends only on the accepted multiset.
  for (const simd::Level level : simd::CompiledLevels()) {
    if (!simd::LevelSupported(level)) continue;
    simd::ScopedLevelOverride pin(level);
    for (const unsigned threads : {1u, 3u}) {
      ReplayOverrides overrides;
      overrides.aggregation_threads = threads;
      StatusOr<ReplayResult> result = ReplayLog(*log_dir_, overrides);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(FinalizedReplayDigest(&*result), round_->digest)
          << simd::LevelName(level) << " x " << threads << " threads";
    }
  }
}

TEST_F(ReplayE2eTest, TornTailReplaysEverythingBeforeTheTear) {
  const std::string dir = CloneLog("torn_tail");
  std::vector<std::string> segments = ListSegmentsOldestFirst(dir);
  ASSERT_FALSE(segments.empty());
  const std::string& last = segments.back();
  const StatusOr<std::vector<uint8_t>> bytes =
      snapshot::ReadFileBytes(last);
  ASSERT_TRUE(bytes.ok());
  // Cut into the final record: mid-append crash shape.
  ASSERT_GT(bytes->size(), 5u);
  fs::resize_file(last, bytes->size() - 5);

  StatusOr<ReplayResult> result = ReplayLog(dir);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.segments_damaged, 1u);
  EXPECT_EQ(result->stats.batches_replayed, round_->batches_logged - 1);
}

TEST_F(ReplayE2eTest, ResealedPayloadDamageIsCaughtByTheWireTrailer) {
  // Flip one payload byte and RE-SEAL the record: the segment format
  // reads it cleanly, so the wire checksum trailer inside the payload is
  // the gate that must catch it — counted undecodable, never ingested.
  const std::string dir = CloneLog("resealed");
  const std::vector<std::string> segments = ListSegmentsOldestFirst(dir);
  ASSERT_FALSE(segments.empty());
  std::vector<uint8_t> plan;
  std::vector<LogRecord> records = ReadSegment(segments[0], &plan);
  ASSERT_FALSE(records.empty());
  records.back().payload[records.back().payload.size() / 2] ^= 0x10;
  WriteSegment(segments[0], plan, records);

  StatusOr<ReplayResult> result = ReplayLog(dir);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.segments_damaged, 0u);
  EXPECT_EQ(result->stats.batches_undecodable, 1u);
  EXPECT_EQ(result->stats.batches_replayed, round_->batches_logged - 1);
}

TEST_F(ReplayE2eTest, DuplicateRecordsFallToTheIdempotencyWindow) {
  // A crash-spanning log legitimately re-logs resent batches; replaying
  // with the server's dedup window drops them and lands on the clean
  // digest.
  const std::string dir = CloneLog("duplicates");
  const std::vector<std::string> segments = ListSegmentsOldestFirst(dir);
  ASSERT_FALSE(segments.empty());
  std::vector<uint8_t> plan;
  std::vector<LogRecord> records = ReadSegment(segments[0], &plan);
  ASSERT_GE(records.size(), 2u);
  records.push_back(records[0]);
  records.push_back(records[1]);
  WriteSegment(segments[0], plan, records);

  StatusOr<ReplayResult> result = ReplayLog(dir);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.batches_duplicate, 2u);
  EXPECT_EQ(result->stats.batches_replayed, round_->batches_logged);
  EXPECT_EQ(FinalizedReplayDigest(&*result), round_->digest);
}

TEST_F(ReplayE2eTest, SegmentsWithDifferentPlansRefuseToMix) {
  // Byte-identical plans are how segments prove they belong to one
  // round; a foreign segment (here: same schema, different epsilon)
  // fails the whole replay rather than silently mixing estimates.
  const std::string dir = CloneLog("plan_mismatch");
  core::FelipConfig other = MakeConfig();
  other.epsilon = 2.0;
  const std::vector<uint8_t> foreign_plan =
      EncodePlan(other, kUsers, MakeData().attributes());
  WriteSegment((fs::path(dir) / "reportlog-9.flog").string(), foreign_plan,
               {});

  const StatusOr<ReplayResult> result = ReplayLog(dir);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ReplayE2eTest, EmptyDirectoryIsNotFound) {
  const StatusOr<ReplayResult> result = ReplayLog(FreshDir("void"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ReplayE2eTest, AllGarbageSegmentsAreDataLoss) {
  const std::string dir = FreshDir("garbage");
  fs::create_directories(dir);
  std::FILE* f = std::fopen(
      (fs::path(dir) / "reportlog-1.flog").string().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a segment", f);
  std::fclose(f);
  const StatusOr<ReplayResult> result = ReplayLog(dir);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(ReplayFaultSoakTest, FaultSoakLogReplaysBitIdentically) {
  // Drops, truncations, and resets force client resends, but the drain
  // path logs each unique batch once — so the log replays to the live
  // digest, which itself equals the in-process reference.
  const std::string dir = FreshDir("fault_soak");
  svc::FaultOptions faults;
  faults.drop_prob = 0.12;
  faults.truncate_prob = 0.08;
  faults.reset_prob = 0.05;
  faults.drop_response_prob = 0.08;
  faults.seed = kSeed + 99;
  const LoggedRound round = RunLoggedRound(dir, MakeConfig(), &faults);
  EXPECT_EQ(round.reports, kUsers);
  EXPECT_EQ(round.digest, InProcessDigest(MakeConfig()));

  StatusOr<ReplayResult> result = ReplayLog(dir);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.reports_accepted, kUsers);
  EXPECT_EQ(FinalizedReplayDigest(&*result), round.digest);
}

}  // namespace
}  // namespace felip::replaylog
