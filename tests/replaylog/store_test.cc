// LogWriter file discipline: .open/.flog lifecycle, per-record
// durability, size-based rotation, keep-N pruning, sequence resume past
// crash leftovers, and the rule that a crashed writer's .open is never
// appended to or renamed — ".flog = complete" stays true.

#include "felip/replaylog/store.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "felip/replaylog/format.h"
#include "felip/snapshot/store.h"

namespace felip::replaylog {
namespace {

namespace fs = std::filesystem;

std::vector<uint8_t> MakePlan() { return {0x01, 0x02, 0x03}; }

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "felip_replaylog_store" / name)
          .string();
  fs::remove_all(dir);
  return dir;
}

Status AppendN(LogWriter* writer, int n, uint64_t first_key = 100) {
  const std::vector<uint8_t> payload = {9, 9, 9, 9};
  for (int i = 0; i < n; ++i) {
    FELIP_RETURN_IF_ERROR(writer->Append(
        RecordType::kBatch, first_key + static_cast<uint64_t>(i), payload));
  }
  return Status::Ok();
}

// Parses one segment file and returns its record keys (empty on damage
// after the last good boundary — damage itself is the parser's business).
std::vector<uint64_t> SegmentKeys(const std::string& path) {
  StatusOr<std::vector<uint8_t>> bytes = snapshot::ReadFileBytes(path);
  if (!bytes.ok()) return {};
  StatusOr<SegmentParser> parser = SegmentParser::Open(*std::move(bytes));
  if (!parser.ok()) return {};
  std::vector<uint64_t> keys;
  LogRecord record;
  while (true) {
    const StatusOr<bool> next = parser->Next(&record);
    if (!next.ok() || !*next) return keys;
    keys.push_back(record.key);
  }
}

std::vector<std::string> Filenames(const std::string& dir) {
  std::vector<std::string> names;
  for (const std::string& path : ListSegmentsOldestFirst(dir)) {
    names.push_back(fs::path(path).filename().string());
  }
  return names;
}

TEST(LogWriterTest, SealProducesAReadableFlogSegment) {
  const std::string dir = FreshDir("seal");
  StatusOr<LogWriter> writer = LogWriter::Open(dir, MakePlan());
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(AppendN(&*writer, 3).ok());
  EXPECT_EQ(writer->records_appended(), 3u);
  ASSERT_TRUE(writer->Seal().ok());
  EXPECT_EQ(writer->segments_sealed(), 1u);

  const std::vector<std::string> names = Filenames(dir);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "reportlog-1.flog");
  const std::vector<uint64_t> keys =
      SegmentKeys(ListSegmentsOldestFirst(dir)[0]);
  EXPECT_EQ(keys, (std::vector<uint64_t>{100, 101, 102}));
}

TEST(LogWriterTest, SealIsIdempotentAndReopensOnNextAppend) {
  const std::string dir = FreshDir("reseal");
  StatusOr<LogWriter> writer = LogWriter::Open(dir, MakePlan());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(AppendN(&*writer, 1).ok());
  ASSERT_TRUE(writer->Seal().ok());
  ASSERT_TRUE(writer->Seal().ok());  // no active segment: a no-op
  EXPECT_EQ(writer->segments_sealed(), 1u);
  // The next Append lands in a fresh segment behind the sealed one.
  ASSERT_TRUE(AppendN(&*writer, 1, 500).ok());
  ASSERT_TRUE(writer->Seal().ok());
  const std::vector<std::string> names = Filenames(dir);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "reportlog-1.flog");
  EXPECT_EQ(names[1], "reportlog-2.flog");
}

TEST(LogWriterTest, EmptySegmentIsDiscardedNotSealed) {
  const std::string dir = FreshDir("empty");
  StatusOr<LogWriter> writer = LogWriter::Open(dir, MakePlan());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Seal().ok());
  EXPECT_EQ(writer->segments_sealed(), 0u);
  EXPECT_TRUE(ListSegmentsOldestFirst(dir).empty());
}

TEST(LogWriterTest, DestructorSealsTheActiveSegment) {
  const std::string dir = FreshDir("dtor");
  {
    StatusOr<LogWriter> writer = LogWriter::Open(dir, MakePlan());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(AppendN(&*writer, 2).ok());
  }
  const std::vector<std::string> names = Filenames(dir);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "reportlog-1.flog");
}

TEST(LogWriterTest, RotatesAtTheSegmentByteLimit) {
  const std::string dir = FreshDir("rotate");
  LogWriterOptions options;
  options.segment_bytes = 1;  // every record overflows: one per segment
  StatusOr<LogWriter> writer = LogWriter::Open(dir, MakePlan(), options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(AppendN(&*writer, 4).ok());
  // Sealing happens on the background thread; Seal() is the barrier.
  ASSERT_TRUE(writer->Seal().ok());
  EXPECT_EQ(writer->segments_sealed(), 4u);
  const std::vector<std::string> segments = ListSegmentsOldestFirst(dir);
  ASSERT_EQ(segments.size(), 4u);
  for (size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(SegmentKeys(segments[i]),
              std::vector<uint64_t>{100 + static_cast<uint64_t>(i)});
  }
}

TEST(LogWriterTest, KeepSegmentsPrunesOldestSealed) {
  const std::string dir = FreshDir("prune");
  LogWriterOptions options;
  options.segment_bytes = 1;
  options.keep_segments = 2;
  StatusOr<LogWriter> writer = LogWriter::Open(dir, MakePlan(), options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(AppendN(&*writer, 5).ok());
  ASSERT_TRUE(writer->Seal().ok());  // barrier: all seals (and prunes) done
  const std::vector<std::string> names = Filenames(dir);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "reportlog-4.flog");
  EXPECT_EQ(names[1], "reportlog-5.flog");
}

TEST(LogWriterTest, SequenceResumesPastExistingSegments) {
  const std::string dir = FreshDir("resume");
  {
    StatusOr<LogWriter> writer = LogWriter::Open(dir, MakePlan());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(AppendN(&*writer, 1).ok());
  }
  {
    StatusOr<LogWriter> writer = LogWriter::Open(dir, MakePlan());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(AppendN(&*writer, 1, 200).ok());
  }
  const std::vector<std::string> names = Filenames(dir);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "reportlog-1.flog");
  EXPECT_EQ(names[1], "reportlog-2.flog");
}

TEST(LogWriterTest, CrashLeftoverOpenIsNeverTouched) {
  // Fake a crashed writer: a .open segment with two whole records and a
  // torn tail. A new writer must leave it exactly as found (listed, still
  // .open, byte-identical) and write past its sequence number.
  const std::string dir = FreshDir("leftover");
  fs::create_directories(dir);
  std::vector<uint8_t> leftover = EncodeSegmentHeader(MakePlan());
  AppendRecord(&leftover, RecordType::kBatch, 7, {{1, 2, 3}});
  AppendRecord(&leftover, RecordType::kBatch, 8, {{4, 5}});
  leftover.insert(leftover.end(), {0xDE, 0xAD, 0xBE});  // torn tail
  const std::string leftover_path =
      (fs::path(dir) / "reportlog-7.open").string();
  {
    std::FILE* f = std::fopen(leftover_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(leftover.data(), 1, leftover.size(), f),
              leftover.size());
    std::fclose(f);
  }

  {
    StatusOr<LogWriter> writer = LogWriter::Open(dir, MakePlan());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(AppendN(&*writer, 1, 300).ok());
  }

  const std::vector<std::string> names = Filenames(dir);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "reportlog-7.open");
  EXPECT_EQ(names[1], "reportlog-8.flog");
  // Bytes untouched; its whole records still read up to the tear.
  const StatusOr<std::vector<uint8_t>> bytes =
      snapshot::ReadFileBytes(leftover_path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, leftover);
  EXPECT_EQ(SegmentKeys(leftover_path), (std::vector<uint64_t>{7, 8}));
}

TEST(LogWriterTest, ListIgnoresForeignFilesAndOrdersBySequence) {
  const std::string dir = FreshDir("list");
  fs::create_directories(dir);
  const auto touch = [&dir](const std::string& name) {
    std::FILE* f =
        std::fopen((fs::path(dir) / name).string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  };
  touch("reportlog-10.flog");
  touch("reportlog-2.flog");
  touch("reportlog-11.open");
  touch("reportlog-x.flog");   // non-numeric sequence
  touch("notalog-3.flog");     // wrong prefix
  touch("reportlog-4.snap");   // wrong suffix
  const std::vector<std::string> names = Filenames(dir);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "reportlog-2.flog");
  EXPECT_EQ(names[1], "reportlog-10.flog");
  EXPECT_EQ(names[2], "reportlog-11.open");
}

TEST(LogWriterTest, ListOfMissingDirectoryIsEmpty) {
  EXPECT_TRUE(ListSegmentsOldestFirst(FreshDir("missing")).empty());
}

}  // namespace
}  // namespace felip::replaylog
