#include "felip/data/dataset.h"

#include <vector>

#include <gtest/gtest.h>

namespace felip::data {
namespace {

std::vector<AttributeInfo> Schema() {
  return {{"age", 100, false}, {"sex", 2, true}, {"income", 50, false}};
}

TEST(DatasetTest, StartsEmpty) {
  const Dataset ds(Schema());
  EXPECT_EQ(ds.num_rows(), 0u);
  EXPECT_EQ(ds.num_attributes(), 3u);
  EXPECT_EQ(ds.attribute(1).name, "sex");
  EXPECT_TRUE(ds.attribute(1).categorical);
}

TEST(DatasetTest, AppendAndRead) {
  Dataset ds(Schema());
  ds.AppendRow({30, 1, 20});
  ds.AppendRow({45, 0, 35});
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.Value(0, 0), 30u);
  EXPECT_EQ(ds.Value(1, 2), 35u);
  EXPECT_EQ(ds.Column(1).size(), 2u);
}

TEST(DatasetTest, FromColumns) {
  const Dataset ds = Dataset::FromColumns(
      Schema(), {{10, 20, 30}, {0, 1, 0}, {5, 6, 7}});
  EXPECT_EQ(ds.num_rows(), 3u);
  EXPECT_EQ(ds.Value(2, 0), 30u);
}

TEST(DatasetTest, PrefixKeepsFirstRows) {
  const Dataset ds = Dataset::FromColumns(
      Schema(), {{10, 20, 30}, {0, 1, 0}, {5, 6, 7}});
  const Dataset prefix = ds.Prefix(2);
  EXPECT_EQ(prefix.num_rows(), 2u);
  EXPECT_EQ(prefix.Value(1, 0), 20u);
  EXPECT_EQ(prefix.num_attributes(), 3u);
}

TEST(DatasetTest, SelectAttributesReorders) {
  const Dataset ds = Dataset::FromColumns(
      Schema(), {{10, 20}, {0, 1}, {5, 6}});
  const Dataset projected = ds.SelectAttributes({2, 0});
  EXPECT_EQ(projected.num_attributes(), 2u);
  EXPECT_EQ(projected.attribute(0).name, "income");
  EXPECT_EQ(projected.Value(0, 0), 5u);
  EXPECT_EQ(projected.Value(0, 1), 10u);
}

TEST(DatasetDeathTest, RejectsOutOfDomainValue) {
  Dataset ds(Schema());
  EXPECT_DEATH(ds.AppendRow({30, 2, 20}), "domain");
}

TEST(DatasetDeathTest, RejectsWrongArity) {
  Dataset ds(Schema());
  EXPECT_DEATH(ds.AppendRow({30, 1}), "FELIP_CHECK");
}

TEST(DatasetDeathTest, RejectsRaggedColumns) {
  EXPECT_DEATH(
      Dataset::FromColumns(Schema(), {{1, 2}, {0}, {3, 4}}), "ragged");
}

TEST(DatasetDeathTest, RejectsEmptySchema) {
  EXPECT_DEATH(Dataset({}), "attribute");
}

}  // namespace
}  // namespace felip::data
