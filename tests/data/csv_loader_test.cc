#include "felip/data/csv_loader.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace felip::data {
namespace {

class CsvLoaderTest : public ::testing::Test {
 protected:
  void WriteFile(const std::string& content) {
    path_ = ::testing::TempDir() + "/felip_csv_test.csv";
    std::ofstream out(path_);
    out << content;
  }
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(CsvLoaderTest, LoadsCategoricalAndNumerical) {
  WriteFile(
      "age,city,salary\n"
      "30,NYC,1000\n"
      "40,LA,2000\n"
      "50,NYC,3000\n");
  const auto result = LoadCsv(
      path_, {{"city", true, 0}, {"salary", false, 4}});
  ASSERT_TRUE(result.has_value());
  const Dataset& ds = result->dataset;
  EXPECT_EQ(ds.num_rows(), 3u);
  EXPECT_EQ(ds.num_attributes(), 2u);
  // City dictionary in first-appearance order: NYC=0, LA=1.
  ASSERT_EQ(result->dictionaries.size(), 1u);
  EXPECT_EQ(result->dictionaries[0][0], "NYC");
  EXPECT_EQ(result->dictionaries[0][1], "LA");
  EXPECT_EQ(ds.Value(0, 0), 0u);
  EXPECT_EQ(ds.Value(1, 0), 1u);
  EXPECT_EQ(ds.Value(2, 0), 0u);
  // Salary quantized over [1000, 3000] into 4 bins.
  EXPECT_EQ(ds.Value(0, 1), 0u);
  EXPECT_EQ(ds.Value(2, 1), 3u);
  EXPECT_EQ(result->numeric_ranges[0].first, 1000.0);
  EXPECT_EQ(result->numeric_ranges[0].second, 3000.0);
}

TEST_F(CsvLoaderTest, CategoricalDomainDefaultsToDistinctCount) {
  WriteFile("c\na\nb\nc\na\n");
  const auto result = LoadCsv(path_, {{"c", true, 0}});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->dataset.attribute(0).domain, 3u);
}

TEST_F(CsvLoaderTest, SkipsUnparsableNumericRows) {
  WriteFile("x\n1\noops\n3\n");
  const auto result = LoadCsv(path_, {{"x", false, 2}});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->dataset.num_rows(), 2u);
  EXPECT_EQ(result->rows_skipped, 1u);
}

TEST_F(CsvLoaderTest, RespectsMaxRows) {
  WriteFile("x\n1\n2\n3\n4\n");
  const auto result = LoadCsv(path_, {{"x", false, 2}}, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->dataset.num_rows(), 2u);
}

TEST_F(CsvLoaderTest, MissingColumnFails) {
  WriteFile("a,b\n1,2\n");
  EXPECT_FALSE(LoadCsv(path_, {{"nope", false, 2}}).has_value());
}

TEST_F(CsvLoaderTest, MissingFileFails) {
  EXPECT_FALSE(
      LoadCsv("/definitely/not/here.csv", {{"a", true, 0}}).has_value());
}

TEST_F(CsvLoaderTest, TooManyCategoriesFails) {
  WriteFile("c\na\nb\nc\n");
  EXPECT_FALSE(LoadCsv(path_, {{"c", true, 2}}).has_value());
}

TEST_F(CsvLoaderTest, NumericalWithoutDomainFails) {
  WriteFile("x\n1\n");
  EXPECT_FALSE(LoadCsv(path_, {{"x", false, 0}}).has_value());
}

TEST_F(CsvLoaderTest, QuotedFieldsWithCommas) {
  WriteFile(
      "name,v\n"
      "\"Smith, John\",1\n"
      "\"says \"\"hi\"\"\",2\n");
  const auto result = LoadCsv(path_, {{"name", true, 0}});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->dictionaries[0][0], "Smith, John");
  EXPECT_EQ(result->dictionaries[0][1], "says \"hi\"");
}

TEST_F(CsvLoaderTest, EquiDepthBinsBalanceHeavyTails) {
  // 16 values: fifteen small, one huge outlier. Equi-width with 4 bins puts
  // 15/16 of the data in bin 0; equi-depth spreads it 4/4/4/4.
  std::string content = "x\n";
  for (int i = 1; i <= 15; ++i) content += std::to_string(i) + "\n";
  content += "1000000\n";
  WriteFile(content);

  const auto width = LoadCsv(path_, {{"x", false, 4, false}});
  ASSERT_TRUE(width.has_value());
  int width_bin0 = 0;
  for (uint64_t r = 0; r < 16; ++r) {
    width_bin0 += width->dataset.Value(r, 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(width_bin0, 15);

  const auto depth = LoadCsv(path_, {{"x", false, 4, true}});
  ASSERT_TRUE(depth.has_value());
  std::vector<int> counts(4, 0);
  for (uint64_t r = 0; r < 16; ++r) {
    ++counts[depth->dataset.Value(r, 0)];
  }
  for (int b = 0; b < 4; ++b) {
    EXPECT_EQ(counts[b], 4) << "bin " << b;
  }
}

TEST_F(CsvLoaderTest, EquiDepthMonotone) {
  // Larger raw values never land in a smaller bin.
  WriteFile("x\n5\n1\n9\n3\n7\n2\n8\n4\n6\n10\n");
  const auto result = LoadCsv(path_, {{"x", false, 3, true}});
  ASSERT_TRUE(result.has_value());
  // Row order: 5,1,9,3,7,2,8,4,6,10 — check pairwise monotonicity on a few.
  const auto bin_of_value = [&](double v) {
    // Find the row index of value v in the written order.
    const std::vector<double> order = {5, 1, 9, 3, 7, 2, 8, 4, 6, 10};
    for (size_t r = 0; r < order.size(); ++r) {
      if (order[r] == v) return result->dataset.Value(r, 0);
    }
    ADD_FAILURE();
    return 0u;
  };
  EXPECT_LE(bin_of_value(1), bin_of_value(5));
  EXPECT_LE(bin_of_value(5), bin_of_value(9));
  EXPECT_LE(bin_of_value(2), bin_of_value(8));
}

TEST(SplitCsvLineTest, BasicSplit) {
  const auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLineTest, EmptyFieldsPreserved) {
  const auto fields = SplitCsvLine("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitCsvLineTest, StripsCarriageReturn) {
  const auto fields = SplitCsvLine("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

}  // namespace
}  // namespace felip::data
