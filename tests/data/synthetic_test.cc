#include "felip/data/synthetic.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace felip::data {
namespace {

// Empirical marginal of one column.
std::vector<double> EmpiricalPmf(const Dataset& ds, uint32_t attr) {
  std::vector<double> pmf(ds.attribute(attr).domain, 0.0);
  for (const uint32_t v : ds.Column(attr)) pmf[v] += 1.0;
  for (double& p : pmf) p /= static_cast<double>(ds.num_rows());
  return pmf;
}

double PearsonCorrelation(const Dataset& ds, uint32_t a, uint32_t b) {
  const auto& x = ds.Column(a);
  const auto& y = ds.Column(b);
  const double n = static_cast<double>(x.size());
  double mx = 0.0;
  double my = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  return sxy / std::sqrt(sxx * syy);
}

TEST(MarginalPmfTest, AllFamiliesAreDistributions) {
  for (const Distribution dist :
       {Distribution::kUniform, Distribution::kGaussian, Distribution::kZipf,
        Distribution::kBimodal, Distribution::kExponential}) {
    for (const uint32_t d : {1u, 2u, 10u, 100u}) {
      const std::vector<double> pmf = MarginalPmf(dist, d, 0.0);
      ASSERT_EQ(pmf.size(), d);
      const double sum = std::accumulate(pmf.begin(), pmf.end(), 0.0);
      EXPECT_NEAR(sum, 1.0, 1e-9);
      for (const double p : pmf) EXPECT_GE(p, 0.0);
    }
  }
}

TEST(MarginalPmfTest, UniformIsFlat) {
  const std::vector<double> pmf = MarginalPmf(Distribution::kUniform, 8, 0);
  for (const double p : pmf) EXPECT_DOUBLE_EQ(p, 0.125);
}

TEST(MarginalPmfTest, GaussianPeaksAtCenter) {
  const std::vector<double> pmf =
      MarginalPmf(Distribution::kGaussian, 101, 0);
  EXPECT_GT(pmf[50], pmf[10]);
  EXPECT_GT(pmf[50], pmf[90]);
  EXPECT_NEAR(pmf[30], pmf[70], 1e-9);  // symmetric
}

TEST(MarginalPmfTest, ZipfIsDecreasing) {
  const std::vector<double> pmf = MarginalPmf(Distribution::kZipf, 20, 1.2);
  for (size_t v = 1; v < pmf.size(); ++v) EXPECT_LT(pmf[v], pmf[v - 1]);
}

TEST(MarginalPmfTest, ExponentialIsRightSkewed) {
  const std::vector<double> pmf =
      MarginalPmf(Distribution::kExponential, 50, 5.0);
  EXPECT_GT(pmf[0], pmf[25]);
  EXPECT_GT(pmf[25], pmf[49]);
}

TEST(GenerateSyntheticTest, MarginalsMatchPmf) {
  const std::vector<SyntheticAttribute> specs = {
      {.name = "a", .domain = 10, .categorical = false,
       .distribution = Distribution::kGaussian},
  };
  const Dataset ds = GenerateSynthetic(50000, specs, 7);
  const std::vector<double> expected =
      MarginalPmf(Distribution::kGaussian, 10, 0);
  const std::vector<double> observed = EmpiricalPmf(ds, 0);
  for (uint32_t v = 0; v < 10; ++v) {
    EXPECT_NEAR(observed[v], expected[v], 0.01) << "value " << v;
  }
}

TEST(GenerateSyntheticTest, ReproducibleBySeed) {
  const std::vector<SyntheticAttribute> specs = {
      {.name = "a", .domain = 16, .categorical = false,
       .distribution = Distribution::kUniform},
  };
  const Dataset a = GenerateSynthetic(100, specs, 5);
  const Dataset b = GenerateSynthetic(100, specs, 5);
  const Dataset c = GenerateSynthetic(100, specs, 6);
  EXPECT_EQ(a.Column(0), b.Column(0));
  EXPECT_NE(a.Column(0), c.Column(0));
}

TEST(GenerateSyntheticTest, CopulaInducesCorrelation) {
  const std::vector<SyntheticAttribute> specs = {
      {.name = "a", .domain = 50, .categorical = false,
       .distribution = Distribution::kGaussian},
      {.name = "b", .domain = 50, .categorical = false,
       .distribution = Distribution::kGaussian, .correlate_with = 0,
       .correlation = 0.7},
      {.name = "c", .domain = 50, .categorical = false,
       .distribution = Distribution::kGaussian},
  };
  const Dataset ds = GenerateSynthetic(30000, specs, 11);
  EXPECT_GT(PearsonCorrelation(ds, 0, 1), 0.5);
  EXPECT_LT(std::fabs(PearsonCorrelation(ds, 0, 2)), 0.05);
}

TEST(MakeUniformTest, SchemaShape) {
  const Dataset ds = MakeUniform(1000, 3, 3, 100, 8, 1);
  ASSERT_EQ(ds.num_attributes(), 6u);
  EXPECT_FALSE(ds.attribute(0).categorical);
  EXPECT_EQ(ds.attribute(0).domain, 100u);
  EXPECT_TRUE(ds.attribute(3).categorical);
  EXPECT_EQ(ds.attribute(3).domain, 8u);
  EXPECT_EQ(ds.num_rows(), 1000u);
}

TEST(MakeNormalTest, ValuesConcentrateMidDomain) {
  const Dataset ds = MakeNormal(20000, 1, 0, 100, 8, 2);
  const std::vector<double> pmf = EmpiricalPmf(ds, 0);
  double center_mass = 0.0;
  for (uint32_t v = 33; v < 67; ++v) center_mass += pmf[v];
  EXPECT_GT(center_mass, 0.6);
}

TEST(MakeIpumsLikeTest, TenAttributesMixedKinds) {
  const Dataset ds = MakeIpumsLike(500, 10, 100, 8, 3);
  EXPECT_EQ(ds.num_attributes(), 10u);
  uint32_t categorical = 0;
  for (uint32_t a = 0; a < 10; ++a) {
    categorical += ds.attribute(a).categorical ? 1 : 0;
  }
  EXPECT_EQ(categorical, 5u);
}

TEST(MakeIpumsLikeTest, PrefixKeepsKindMix) {
  const Dataset ds = MakeIpumsLike(100, 4, 64, 4, 3);
  EXPECT_EQ(ds.num_attributes(), 4u);
  EXPECT_FALSE(ds.attribute(0).categorical);
  EXPECT_TRUE(ds.attribute(1).categorical);
}

TEST(MakeIpumsLikeTest, AgeIncomeCorrelated) {
  const Dataset ds = MakeIpumsLike(30000, 10, 100, 8, 4);
  EXPECT_GT(PearsonCorrelation(ds, 0, 2), 0.2);  // age vs income
}

TEST(MakeLoanLikeTest, SchemaAndSkew) {
  const Dataset ds = MakeLoanLike(20000, 10, 100, 8, 5);
  EXPECT_EQ(ds.num_attributes(), 10u);
  // grade (attr 1) is Zipf: first category dominates.
  const std::vector<double> pmf = EmpiricalPmf(ds, 1);
  EXPECT_GT(pmf[0], pmf[7]);
}

}  // namespace
}  // namespace felip::data
