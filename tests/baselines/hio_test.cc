#include "felip/baselines/hio.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "felip/data/synthetic.h"
#include "felip/query/generator.h"

namespace felip::baselines {
namespace {

TEST(HioPipelineTest, HierarchyLevelCounts) {
  // Numerical domain 100 with b = 4: levels 1, 4, 16, 64, 100 -> 5 levels.
  // Categorical domain 8: root + leaves -> 2 levels.
  const std::vector<data::AttributeInfo> schema = {
      {"num", 100, false}, {"cat", 8, true}};
  const HioPipeline pipeline(schema, {.epsilon = 1.0, .branching = 4});
  EXPECT_EQ(pipeline.num_levels(0), 5u);
  EXPECT_EQ(pipeline.num_levels(1), 2u);
  EXPECT_EQ(pipeline.num_groups(), 10u);
}

TEST(HioPipelineTest, GroupCountGrowsExponentiallyWithAttributes) {
  std::vector<data::AttributeInfo> schema;
  for (int k = 0; k < 4; ++k) schema.push_back({"a", 64, false});
  // 64 with b=4: levels 1,4,16,64 -> 4 levels; 4 attrs -> 4^4 groups.
  const HioPipeline pipeline(schema, {.epsilon = 1.0, .branching = 4});
  EXPECT_EQ(pipeline.num_groups(), 256u);
}

TEST(HioPipelineTest, DomainOfOneHasSingleLevel) {
  const HioPipeline pipeline({{"const", 1, false}}, {});
  EXPECT_EQ(pipeline.num_levels(0), 1u);
}

TEST(HioPipelineTest, RecoversSimpleRangeQuery) {
  // Single attribute, plenty of users, high epsilon.
  const data::Dataset ds = data::MakeUniform(60000, 1, 0, 64, 2, 1);
  HioPipeline pipeline(ds.attributes(), {.epsilon = 4.0, .seed = 2});
  pipeline.Collect(ds);
  const query::Query q(
      {{.attr = 0, .op = query::Op::kBetween, .lo = 0, .hi = 31}});
  EXPECT_NEAR(pipeline.AnswerQuery(q), 0.5, 0.1);
}

TEST(HioPipelineTest, RecoversTwoDimensionalQuery) {
  const data::Dataset ds = data::MakeUniform(80000, 2, 0, 16, 2, 3);
  HioPipeline pipeline(ds.attributes(), {.epsilon = 4.0, .seed = 4});
  pipeline.Collect(ds);
  const query::Query q(
      {{.attr = 0, .op = query::Op::kBetween, .lo = 0, .hi = 7},
       {.attr = 1, .op = query::Op::kBetween, .lo = 0, .hi = 7}});
  EXPECT_NEAR(pipeline.AnswerQuery(q), 0.25, 0.12);
}

TEST(HioPipelineTest, CategoricalInQuery) {
  const data::Dataset ds = data::MakeUniform(60000, 1, 1, 16, 8, 5);
  HioPipeline pipeline(ds.attributes(), {.epsilon = 4.0, .seed = 6});
  pipeline.Collect(ds);
  const query::Query q(
      {{.attr = 1, .op = query::Op::kIn, .values = {0, 1, 2, 3}}});
  EXPECT_NEAR(pipeline.AnswerQuery(q), 0.5, 0.12);
}

TEST(HioPipelineTest, AnswersAreClamped) {
  const data::Dataset ds = data::MakeUniform(500, 3, 0, 64, 2, 7);
  HioPipeline pipeline(ds.attributes(), {.epsilon = 0.2, .seed = 8});
  pipeline.Collect(ds);
  Rng rng(9);
  const auto queries = query::GenerateQueries(
      ds, 10, {.dimension = 3, .selectivity = 0.5}, rng);
  for (const auto& q : queries) {
    const double estimate = pipeline.AnswerQuery(q);
    EXPECT_GE(estimate, 0.0);
    EXPECT_LE(estimate, 1.0);
  }
}

TEST(HioPipelineTest, HighLambdaQueryIsTractable) {
  // 8 attributes: the term cap must keep the cross-product bounded.
  const data::Dataset ds = data::MakeUniform(5000, 8, 0, 100, 2, 10);
  HioConfig config;
  config.epsilon = 1.0;
  config.max_query_terms = 5000;
  config.seed = 11;
  HioPipeline pipeline(ds.attributes(), config);
  pipeline.Collect(ds);
  Rng rng(12);
  const auto queries = query::GenerateQueries(
      ds, 2, {.dimension = 8, .selectivity = 0.5}, rng);
  for (const auto& q : queries) {
    const double estimate = pipeline.AnswerQuery(q);
    EXPECT_GE(estimate, 0.0);
    EXPECT_LE(estimate, 1.0);
  }
}

TEST(HioPipelineTest, UnconstrainedQueryOverAllAttributesIsOne) {
  const data::Dataset ds = data::MakeUniform(40000, 2, 0, 32, 2, 13);
  HioPipeline pipeline(ds.attributes(), {.epsilon = 4.0, .seed = 14});
  pipeline.Collect(ds);
  const query::Query q(
      {{.attr = 0, .op = query::Op::kBetween, .lo = 0, .hi = 31}});
  EXPECT_NEAR(pipeline.AnswerQuery(q), 1.0, 0.1);
}

TEST(HioPipelineDeathTest, AnswerBeforeCollect) {
  const HioPipeline pipeline({{"a", 8, false}}, {});
  const query::Query q({{.attr = 0, .op = query::Op::kEquals, .lo = 1}});
  EXPECT_DEATH(pipeline.AnswerQuery(q), "Collect");
}

}  // namespace
}  // namespace felip::baselines
