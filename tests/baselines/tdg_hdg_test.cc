#include "felip/baselines/tdg_hdg.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "felip/data/synthetic.h"
#include "felip/query/generator.h"

namespace felip::baselines {
namespace {

TdgHdgConfig FastConfig(YangStrategy strategy) {
  TdgHdgConfig config;
  config.strategy = strategy;
  config.epsilon = 1.0;
  config.olh_options.seed_pool_size = 1024;
  config.seed = 3;
  return config;
}

TEST(GranularityTest, NearestPowerOfTwo) {
  EXPECT_EQ(NearestPowerOfTwo(25.0, 1000), 32u);   // log2(25)=4.64 -> 2^5
  EXPECT_EQ(NearestPowerOfTwo(23.0, 1000), 32u);   // log2(23)=4.52 -> 2^5
  EXPECT_EQ(NearestPowerOfTwo(22.0, 1000), 16u);   // log2(22)=4.46 -> 2^4
  EXPECT_EQ(NearestPowerOfTwo(5.0, 1000), 4u);     // log2(5)=2.32 -> 4
  EXPECT_EQ(NearestPowerOfTwo(6.0, 1000), 8u);     // log2(6)=2.58 -> 8
  EXPECT_EQ(NearestPowerOfTwo(0.3, 1000), 1u);
  EXPECT_EQ(NearestPowerOfTwo(300.0, 100), 100u);  // clamped by domain
}

TEST(GranularityTest, RawG1MatchesDerivation) {
  const double e = std::exp(1.0);
  const double g1 = TdgHdgRawG1(1.0, 1000000, 21, 0.7);
  const double expected =
      std::cbrt(1e6 * 0.49 * (e - 1.0) * (e - 1.0) / (21.0 * e));
  EXPECT_NEAR(g1, expected, 1e-9);
}

TEST(GranularityTest, G2ShrinksWithMoreGroups) {
  EXPECT_GT(TdgHdgRawG2(1.0, 1000000, 10, 0.03),
            TdgHdgRawG2(1.0, 1000000, 100, 0.03));
}

TEST(TdgHdgPipelineTest, GroupCounts) {
  const data::Dataset ds = data::MakeUniform(10000, 4, 0, 64, 2, 1);
  const TdgHdgPipeline tdg(ds.attributes(), ds.num_rows(),
                           FastConfig(YangStrategy::kTdg));
  const TdgHdgPipeline hdg(ds.attributes(), ds.num_rows(),
                           FastConfig(YangStrategy::kHdg));
  EXPECT_EQ(tdg.num_groups(), 6u);       // C(4,2)
  EXPECT_EQ(hdg.num_groups(), 10u);      // 4 + C(4,2)
}

TEST(TdgHdgPipelineTest, GranularitiesArePowersOfTwo) {
  const data::Dataset ds = data::MakeUniform(100000, 4, 0, 256, 2, 2);
  const TdgHdgPipeline hdg(ds.attributes(), ds.num_rows(),
                           FastConfig(YangStrategy::kHdg));
  const auto is_pow2 = [](uint32_t v) { return (v & (v - 1)) == 0; };
  EXPECT_TRUE(is_pow2(hdg.g1()));
  EXPECT_TRUE(is_pow2(hdg.g2()));
  EXPECT_GE(hdg.g1(), hdg.g2());  // 1-D grids are finer-grained
}

TEST(TdgHdgPipelineTest, TdgRecoversRangeQueries) {
  const data::Dataset ds = data::MakeUniform(60000, 3, 0, 64, 2, 3);
  TdgHdgPipeline pipeline(ds.attributes(), ds.num_rows(),
                          FastConfig(YangStrategy::kTdg));
  pipeline.Collect(ds);
  pipeline.Finalize();
  const query::Query q(
      {{.attr = 0, .op = query::Op::kBetween, .lo = 0, .hi = 31},
       {.attr = 2, .op = query::Op::kBetween, .lo = 16, .hi = 47}});
  EXPECT_NEAR(pipeline.AnswerQuery(q), 0.25, 0.08);
}

TEST(TdgHdgPipelineTest, HdgRecoversRangeQueries) {
  const data::Dataset ds = data::MakeNormal(60000, 3, 0, 64, 2, 4);
  TdgHdgPipeline pipeline(ds.attributes(), ds.num_rows(),
                          FastConfig(YangStrategy::kHdg));
  pipeline.Collect(ds);
  pipeline.Finalize();
  Rng rng(5);
  const auto queries = query::GenerateQueries(
      ds, 10, {.dimension = 2, .selectivity = 0.5, .range_only = true}, rng);
  double mae = 0.0;
  for (const auto& q : queries) {
    mae += std::fabs(pipeline.AnswerQuery(q) - query::TrueAnswer(ds, q));
  }
  EXPECT_LT(mae / 10.0, 0.08);
}

TEST(TdgHdgPipelineTest, Lambda3Supported) {
  const data::Dataset ds = data::MakeUniform(50000, 4, 0, 32, 2, 6);
  TdgHdgPipeline pipeline(ds.attributes(), ds.num_rows(),
                          FastConfig(YangStrategy::kHdg));
  pipeline.Collect(ds);
  pipeline.Finalize();
  Rng rng(7);
  const auto queries = query::GenerateQueries(
      ds, 5, {.dimension = 3, .selectivity = 0.5, .range_only = true}, rng);
  for (const auto& q : queries) {
    const double estimate = pipeline.AnswerQuery(q);
    EXPECT_GE(estimate, 0.0);
    EXPECT_LE(estimate, 1.0);
    EXPECT_NEAR(estimate, query::TrueAnswer(ds, q), 0.2);
  }
}

TEST(TdgHdgPipelineTest, MarginalQuery) {
  const data::Dataset ds = data::MakeNormal(50000, 2, 0, 64, 2, 8);
  TdgHdgPipeline pipeline(ds.attributes(), ds.num_rows(),
                          FastConfig(YangStrategy::kHdg));
  pipeline.Collect(ds);
  pipeline.Finalize();
  const query::Query q(
      {{.attr = 1, .op = query::Op::kBetween, .lo = 20, .hi = 43}});
  EXPECT_NEAR(pipeline.AnswerQuery(q), query::TrueAnswer(ds, q), 0.08);
}

TEST(TdgHdgPipelineTest, TdgMarginalViaPairGrid) {
  // TDG has no 1-D grids; λ=1 queries marginalize a pair grid.
  const data::Dataset ds = data::MakeNormal(40000, 2, 0, 64, 2, 9);
  TdgHdgPipeline pipeline(ds.attributes(), ds.num_rows(),
                          FastConfig(YangStrategy::kTdg));
  pipeline.Collect(ds);
  pipeline.Finalize();
  const query::Query q(
      {{.attr = 1, .op = query::Op::kBetween, .lo = 16, .hi = 47}});
  EXPECT_NEAR(pipeline.AnswerQuery(q), query::TrueAnswer(ds, q), 0.1);
}

TEST(TdgHdgPipelineTest, HdgBeatsTdgOnSkewedData) {
  // The hybrid 1-D grids + response matrices should pay off on non-uniform
  // data (the HDG paper's headline claim).
  const data::Dataset ds = data::MakeNormal(100000, 4, 0, 128, 2, 10);
  Rng rng(11);
  const auto queries = query::GenerateQueries(
      ds, 15, {.dimension = 2, .selectivity = 0.5, .range_only = true}, rng);
  std::vector<double> truths;
  for (const auto& q : queries) truths.push_back(query::TrueAnswer(ds, q));
  const auto mae = [&](YangStrategy strategy) {
    TdgHdgPipeline pipeline(ds.attributes(), ds.num_rows(),
                            FastConfig(strategy));
    pipeline.Collect(ds);
    pipeline.Finalize();
    double total = 0.0;
    for (size_t i = 0; i < queries.size(); ++i) {
      total += std::fabs(pipeline.AnswerQuery(queries[i]) - truths[i]);
    }
    return total / static_cast<double>(queries.size());
  };
  EXPECT_LT(mae(YangStrategy::kHdg), mae(YangStrategy::kTdg));
}

TEST(TdgHdgPipelineDeathTest, RequiresTwoAttributes) {
  EXPECT_DEATH(TdgHdgPipeline({{"a", 8, false}}, 100,
                              FastConfig(YangStrategy::kTdg)),
               "2 attributes");
}

}  // namespace
}  // namespace felip::baselines
