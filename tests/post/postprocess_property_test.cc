// Property / metamorphic tests for the post-processing layer, over
// randomized inputs across many seeds:
//
//   * Norm-Sub: the output is a proper distribution (non-negative, sums to
//     the target) and the transform is idempotent — re-applying it changes
//     nothing.
//   * Norm-Mul / Norm-Cut: share the non-negativity postcondition;
//     Norm-Cut never adds mass.
//   * Cross-grid consistency: one pass strictly reduces the pairwise
//     disagreement between the marginals different grids imply for a
//     shared attribute.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "felip/common/rng.h"
#include "felip/grid/grid.h"
#include "felip/post/consistency.h"
#include "felip/post/norm_sub.h"

namespace felip::post {
namespace {

std::vector<double> NoisyVector(size_t size, Rng& rng) {
  // LDP-like estimates: unbiased but individually noisy, many negative.
  std::vector<double> v(size);
  for (double& x : v) {
    x = (rng.UniformU64(1000) / 1000.0) * 2.0 - 0.5;  // [-0.5, 1.5)
  }
  return v;
}

double Sum(const std::vector<double>& v) {
  double total = 0.0;
  for (const double x : v) total += x;
  return total;
}

TEST(NormSubPropertyTest, OutputIsDistributionAndIdempotent) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const size_t size = 1 + rng.UniformU64(64);
    std::vector<double> freq = NoisyVector(size, rng);

    RemoveNegativity(&freq);
    for (const double f : freq) EXPECT_GE(f, 0.0) << "seed " << seed;
    EXPECT_NEAR(Sum(freq), 1.0, 1e-9) << "seed " << seed;

    // Idempotence: a vector already satisfying the postconditions is a
    // fixed point.
    std::vector<double> again = freq;
    RemoveNegativity(&again);
    for (size_t i = 0; i < freq.size(); ++i) {
      EXPECT_NEAR(again[i], freq[i], 1e-9) << "seed " << seed;
    }
  }
}

TEST(NormSubPropertyTest, PreservesConfiguredTargetSum) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 31);
    std::vector<double> freq = NoisyVector(16, rng);
    NormSubOptions options;
    options.target_sum = 2.5;
    RemoveNegativity(&freq, options);
    for (const double f : freq) EXPECT_GE(f, 0.0);
    EXPECT_NEAR(Sum(freq), 2.5, 1e-9) << "seed " << seed;
  }
}

TEST(NormalizationPropertyTest, AllVariantsProduceNonNegativeOutput) {
  for (const Normalization method :
       {Normalization::kNormSub, Normalization::kNormMul,
        Normalization::kNormCut}) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      Rng rng(seed * 101 + static_cast<uint64_t>(method));
      std::vector<double> freq = NoisyVector(1 + rng.UniformU64(32), rng);
      NormalizeFrequencies(&freq, method);
      for (const double f : freq) {
        EXPECT_GE(f, 0.0) << "method " << static_cast<int>(method)
                          << " seed " << seed;
      }
      // Norm-Cut may undershoot the target but must never add mass beyond
      // it; the other variants hit the target exactly.
      if (method == Normalization::kNormCut) {
        EXPECT_LE(Sum(freq), 1.0 + 1e-9);
      } else {
        EXPECT_NEAR(Sum(freq), 1.0, 1e-9);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-grid consistency.

// Marginal mass each grid assigns to every subdomain (cell) of the
// attribute's 1-D partition, under within-cell uniformity.
std::vector<double> MarginalOnSubdomains(const grid::Grid1D& g1,
                                         const grid::Partition1D& sub) {
  std::vector<double> m(sub.num_cells());
  for (uint32_t s = 0; s < sub.num_cells(); ++s) {
    m[s] = g1.Answer(
        grid::AxisSelection::MakeRange(sub.CellBegin(s), sub.CellEnd(s) - 1));
  }
  return m;
}

std::vector<double> MarginalOnSubdomains(const grid::Grid2D& g2,
                                         const grid::Partition1D& sub) {
  std::vector<double> m(sub.num_cells());
  const grid::AxisSelection all_y =
      grid::AxisSelection::MakeAll(g2.py().domain());
  for (uint32_t s = 0; s < sub.num_cells(); ++s) {
    m[s] = g2.Answer(
        grid::AxisSelection::MakeRange(sub.CellBegin(s), sub.CellEnd(s) - 1),
        all_y);
  }
  return m;
}

double PairwiseDisagreement(const std::vector<std::vector<double>>& marginals) {
  double total = 0.0;
  for (size_t a = 0; a < marginals.size(); ++a) {
    for (size_t b = a + 1; b < marginals.size(); ++b) {
      for (size_t s = 0; s < marginals[a].size(); ++s) {
        total += std::fabs(marginals[a][s] - marginals[b][s]);
      }
    }
  }
  return total;
}

std::vector<double> RandomDistribution(size_t size, Rng& rng) {
  std::vector<double> v(size);
  double sum = 0.0;
  for (double& x : v) {
    x = 1.0 + static_cast<double>(rng.UniformU64(1000));
    sum += x;
  }
  for (double& x : v) x /= sum;
  return v;
}

struct ConsistencyFixture {
  std::vector<grid::Grid1D> grids_1d;
  std::vector<grid::Grid2D> grids_2d;
};

// Attribute 0 (domain 12) appears in its 1-D grid and two 2-D grids whose
// x-axis cell boundaries differ from the 1-D grid's — the unaligned case
// the fractional-overlap consistency update must handle.
ConsistencyFixture MakeFixture(uint64_t seed) {
  Rng rng(seed);
  ConsistencyFixture f;
  f.grids_1d.emplace_back(0, grid::Partition1D(12, 6));
  f.grids_2d.emplace_back(0, 1, grid::Partition1D(12, 4),
                          grid::Partition1D(10, 5));
  f.grids_2d.emplace_back(0, 2, grid::Partition1D(12, 3),
                          grid::Partition1D(8, 4));
  f.grids_1d[0].SetFrequencies(RandomDistribution(6, rng));
  f.grids_2d[0].SetFrequencies(RandomDistribution(4 * 5, rng));
  f.grids_2d[1].SetFrequencies(RandomDistribution(3 * 4, rng));
  return f;
}

std::vector<std::vector<double>> AllMarginals(const ConsistencyFixture& f) {
  const grid::Partition1D& sub = f.grids_1d[0].partition();
  return {MarginalOnSubdomains(f.grids_1d[0], sub),
          MarginalOnSubdomains(f.grids_2d[0], sub),
          MarginalOnSubdomains(f.grids_2d[1], sub)};
}

TEST(ConsistencyPropertyTest, OnePassStrictlyReducesDisagreement) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ConsistencyFixture f = MakeFixture(seed);
    const double before = PairwiseDisagreement(AllMarginals(f));
    ASSERT_GT(before, 1e-6) << "fixture degenerate at seed " << seed;

    MakeAttributeConsistent(0, &f.grids_1d, &f.grids_2d);
    const double after = PairwiseDisagreement(AllMarginals(f));
    EXPECT_LT(after, before) << "seed " << seed;
  }
}

TEST(ConsistencyPropertyTest, FullPipelineReducesDisagreementAndNormalizes) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ConsistencyFixture f = MakeFixture(seed * 7);
    const double before = PairwiseDisagreement(AllMarginals(f));

    MakeConsistent(3, &f.grids_1d, &f.grids_2d, {});
    const double after = PairwiseDisagreement(AllMarginals(f));
    EXPECT_LT(after, before) << "seed " << seed;

    // The final negativity pass guarantees proper distributions.
    auto check_distribution = [&](const std::vector<double>& freq) {
      double sum = 0.0;
      for (const double x : freq) {
        EXPECT_GE(x, 0.0) << "seed " << seed;
        sum += x;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << "seed " << seed;
    };
    check_distribution(f.grids_1d[0].frequencies());
    check_distribution(f.grids_2d[0].frequencies());
    check_distribution(f.grids_2d[1].frequencies());
  }
}

}  // namespace
}  // namespace felip::post
