#include "felip/post/norm_sub.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "felip/common/rng.h"

namespace felip::post {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(NormSubTest, AlreadyValidIsUntouched) {
  std::vector<double> f = {0.25, 0.25, 0.5};
  RemoveNegativity(&f);
  EXPECT_DOUBLE_EQ(f[0], 0.25);
  EXPECT_DOUBLE_EQ(f[2], 0.5);
}

TEST(NormSubTest, ClampsNegativesAndRenormalizes) {
  std::vector<double> f = {0.6, -0.1, 0.6, -0.1};
  RemoveNegativity(&f);
  for (const double v : f) EXPECT_GE(v, 0.0);
  EXPECT_NEAR(Sum(f), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(f[1], 0.0);
  EXPECT_DOUBLE_EQ(f[3], 0.0);
  EXPECT_NEAR(f[0], 0.5, 1e-9);
}

TEST(NormSubTest, PreservesOrderingOfPositives) {
  std::vector<double> f = {0.9, 0.5, -0.2, 0.1};
  RemoveNegativity(&f);
  EXPECT_GT(f[0], f[1]);
  EXPECT_GT(f[1], f[3]);
}

TEST(NormSubTest, AllNegativeFallsBackToUniform) {
  std::vector<double> f = {-0.5, -0.2, -0.9};
  RemoveNegativity(&f);
  for (const double v : f) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(NormSubTest, AllZerosBecomesUniform) {
  std::vector<double> f = {0.0, 0.0};
  RemoveNegativity(&f);
  EXPECT_NEAR(Sum(f), 1.0, 1e-12);
}

TEST(NormSubTest, SingleElement) {
  std::vector<double> f = {-2.0};
  RemoveNegativity(&f);
  EXPECT_NEAR(f[0], 1.0, 1e-12);
}

TEST(NormSubTest, CustomTargetSum) {
  std::vector<double> f = {1.0, 2.0, -1.0};
  NormSubOptions options;
  options.target_sum = 6.0;
  RemoveNegativity(&f, options);
  EXPECT_NEAR(Sum(f), 6.0, 1e-9);
  for (const double v : f) EXPECT_GE(v, 0.0);
}

TEST(NormSubTest, SumAboveOneIsReducedNotScaled) {
  // Norm-Sub subtracts uniformly from positives (not multiplicative).
  std::vector<double> f = {1.0, 0.5, 0.5};
  RemoveNegativity(&f);
  EXPECT_NEAR(Sum(f), 1.0, 1e-9);
  // Uniform subtraction keeps differences: 1.0 - 0.5 stays 0.5 apart.
  EXPECT_NEAR(f[0] - f[1], 0.5, 1e-9);
}

// Property sweep: output is always a distribution, for adversarial inputs.
class NormSubPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NormSubPropertyTest, OutputIsAlwaysDistribution) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const auto size = static_cast<size_t>(1 + rng.UniformU64(64));
    std::vector<double> f(size);
    for (double& v : f) v = rng.Gaussian() * 2.0;
    RemoveNegativity(&f);
    double sum = 0.0;
    for (const double v : f) {
      ASSERT_GE(v, 0.0);
      sum += v;
    }
    ASSERT_NEAR(sum, 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormSubPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(NormSubDeathTest, RejectsEmptyVector) {
  std::vector<double> f;
  EXPECT_DEATH(RemoveNegativity(&f), "FELIP_CHECK");
}

}  // namespace
}  // namespace felip::post
