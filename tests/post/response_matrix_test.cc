#include "felip/post/response_matrix.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "felip/common/rng.h"
#include "felip/grid/grid.h"
#include "felip/post/norm_sub.h"

namespace felip::post {
namespace {

using grid::AxisSelection;
using grid::Grid1D;
using grid::Grid2D;
using grid::Partition1D;

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

// A 2-D grid with random non-negative normalized frequencies.
Grid2D RandomGrid2D(uint32_t dx, uint32_t dy, uint32_t lx, uint32_t ly,
                    uint64_t seed) {
  Grid2D g(0, 1, Partition1D(dx, lx), Partition1D(dy, ly));
  Rng rng(seed);
  std::vector<double> f(g.num_cells());
  for (double& v : f) v = rng.UniformDouble() + 0.01;
  const double total = Sum(f);
  for (double& v : f) v /= total;
  g.SetFrequencies(f);
  return g;
}

Grid1D RandomGrid1D(uint32_t attr, uint32_t domain, uint32_t cells,
                    uint64_t seed) {
  Grid1D g(attr, Partition1D(domain, cells));
  Rng rng(seed);
  std::vector<double> f(cells);
  for (double& v : f) v = rng.UniformDouble() + 0.01;
  const double total = Sum(f);
  for (double& v : f) v /= total;
  g.SetFrequencies(f);
  return g;
}

TEST(ResponseMatrixTest, GridOnlyReproducesGridAnswer) {
  // With Γ = {G(i,j)} the response matrix must equal the grid's own
  // uniformity-based answer for any selection.
  const Grid2D g2 = RandomGrid2D(10, 8, 4, 3, 1);
  const ResponseMatrix m = ResponseMatrix::Build(g2, nullptr, nullptr);
  for (const auto& [xlo, xhi, ylo, yhi] :
       std::vector<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>>{
           {0, 9, 0, 7}, {2, 5, 1, 6}, {0, 0, 7, 7}, {3, 9, 0, 3}}) {
    const AxisSelection sx = AxisSelection::MakeRange(xlo, xhi);
    const AxisSelection sy = AxisSelection::MakeRange(ylo, yhi);
    EXPECT_NEAR(m.Answer(sx, sy), g2.Answer(sx, sy), 1e-9);
  }
}

TEST(ResponseMatrixTest, MassSumsToOne) {
  const Grid2D g2 = RandomGrid2D(12, 12, 5, 4, 2);
  const Grid1D gx = RandomGrid1D(0, 12, 7, 3);
  const Grid1D gy = RandomGrid1D(1, 12, 6, 4);
  const ResponseMatrix m = ResponseMatrix::Build(g2, &gx, &gy);
  EXPECT_NEAR(
      m.Answer(AxisSelection::MakeAll(12), AxisSelection::MakeAll(12)), 1.0,
      0.01);
}

TEST(ResponseMatrixTest, BlockMatchesDenseReference) {
  // The block implementation must agree with the literal Algorithm 3.
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    const Grid2D g2 = RandomGrid2D(15, 9, 4, 3, seed);
    const Grid1D gx = RandomGrid1D(0, 15, 6, seed + 10);
    const Grid1D gy = RandomGrid1D(1, 9, 4, seed + 20);
    ResponseMatrixOptions options;
    options.threshold = 1e-10;
    options.max_iterations = 300;
    const ResponseMatrix block =
        ResponseMatrix::Build(g2, &gx, &gy, options);
    const std::vector<double> dense =
        BuildResponseMatrixDense(g2, &gx, &gy, options);
    const std::vector<double> block_dense = block.ToDense();
    ASSERT_EQ(block_dense.size(), dense.size());
    for (size_t i = 0; i < dense.size(); ++i) {
      ASSERT_NEAR(block_dense[i], dense[i], 1e-6) << "element " << i;
    }
  }
}

TEST(ResponseMatrixTest, SatisfiesGridConstraints) {
  // After convergence, summing the matrix over each 2-D grid cell must
  // reproduce (approximately) that cell's frequency.
  const Grid2D g2 = RandomGrid2D(12, 10, 3, 2, 7);
  const Grid1D gx = RandomGrid1D(0, 12, 4, 8);
  ResponseMatrixOptions options;
  options.threshold = 1e-12;
  options.max_iterations = 500;
  const ResponseMatrix m = ResponseMatrix::Build(g2, &gx, nullptr, options);
  for (uint32_t cx = 0; cx < 3; ++cx) {
    for (uint32_t cy = 0; cy < 2; ++cy) {
      const AxisSelection sx = AxisSelection::MakeRange(
          g2.px().CellBegin(cx), g2.px().CellEnd(cx) - 1);
      const AxisSelection sy = AxisSelection::MakeRange(
          g2.py().CellBegin(cy), g2.py().CellEnd(cy) - 1);
      EXPECT_NEAR(m.Answer(sx, sy), g2.frequencies()[g2.CellIndex(cx, cy)],
                  0.02);
    }
  }
}

TEST(ResponseMatrixTest, OneDimGridRefinesMarginal) {
  // A 1-D grid with a strong skew must pull the matrix marginal toward it.
  Grid2D g2(0, 1, Partition1D(8, 1), Partition1D(4, 1));
  g2.SetFrequencies({1.0});  // totally uninformative 2-D grid
  Grid1D gx(0, Partition1D(8, 4));
  gx.SetFrequencies({0.7, 0.1, 0.1, 0.1});
  const ResponseMatrix m = ResponseMatrix::Build(g2, &gx, nullptr);
  const double head = m.Answer(AxisSelection::MakeRange(0, 1),
                               AxisSelection::MakeAll(4));
  EXPECT_NEAR(head, 0.7, 0.01);
}

TEST(ResponseMatrixTest, CategoricalIdentityGrid) {
  // Identity partitions (categorical x categorical): the matrix equals the
  // grid exactly, cell for cell.
  const Grid2D g2 = RandomGrid2D(5, 4, 5, 4, 9);
  const ResponseMatrix m = ResponseMatrix::Build(g2, nullptr, nullptr);
  const std::vector<double> dense = m.ToDense();
  for (uint32_t x = 0; x < 5; ++x) {
    for (uint32_t y = 0; y < 4; ++y) {
      EXPECT_NEAR(dense[x * 4 + y], g2.frequencies()[g2.CellIndex(x, y)],
                  1e-9);
    }
  }
}

TEST(ResponseMatrixTest, SetSelectionsSupported) {
  const Grid2D g2 = RandomGrid2D(6, 6, 3, 3, 11);
  const ResponseMatrix m = ResponseMatrix::Build(g2, nullptr, nullptr);
  const double all = m.Answer(AxisSelection::MakeSet({0, 1, 2, 3, 4, 5}),
                              AxisSelection::MakeAll(6));
  EXPECT_NEAR(all, 1.0, 1e-6);
  const double partial = m.Answer(AxisSelection::MakeSet({0, 3}),
                                  AxisSelection::MakeAll(6));
  EXPECT_GT(partial, 0.0);
  EXPECT_LT(partial, all);
}

TEST(ResponseMatrixTest, NumBlocksBoundedByRefinement) {
  const Grid2D g2 = RandomGrid2D(100, 100, 10, 10, 12);
  const Grid1D gx = RandomGrid1D(0, 100, 27, 13);
  const Grid1D gy = RandomGrid1D(1, 100, 27, 14);
  const ResponseMatrix m = ResponseMatrix::Build(g2, &gx, &gy);
  // At most (10 + 27 + 1) boundaries per axis -> 36 * 36 blocks, far less
  // than the 10,000-entry dense matrix.
  EXPECT_LE(m.num_blocks(), 36u * 36u);
  EXPECT_EQ(m.domain_x(), 100u);
}

TEST(ResponseMatrixDeathTest, RejectsMismatchedOneDimGrid) {
  const Grid2D g2 = RandomGrid2D(10, 10, 2, 2, 15);
  Grid1D wrong_attr(5, Partition1D(10, 2));
  EXPECT_DEATH(ResponseMatrix::Build(g2, &wrong_attr, nullptr),
               "x attribute");
}

}  // namespace
}  // namespace felip::post
