#include "felip/post/consistency.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "felip/common/rng.h"
#include "felip/grid/grid.h"
#include "felip/grid/partition.h"

namespace felip::post {
namespace {

using grid::AxisSelection;
using grid::Grid1D;
using grid::Grid2D;
using grid::Partition1D;

double GridSum(const std::vector<double>& f) {
  return std::accumulate(f.begin(), f.end(), 0.0);
}

// Marginal of a 2-D grid along x.
std::vector<double> MarginalX(const Grid2D& g) {
  std::vector<double> m(g.px().num_cells(), 0.0);
  for (uint32_t cx = 0; cx < g.px().num_cells(); ++cx) {
    for (uint32_t cy = 0; cy < g.py().num_cells(); ++cy) {
      m[cx] += g.frequencies()[g.CellIndex(cx, cy)];
    }
  }
  return m;
}

TEST(ConsistencyTest, AlignedGridsAgreeAfterOnePass) {
  // 1-D grid and 2-D grid share attribute 0 with aligned boundaries
  // (both split domain 8 into 4 cells along x).
  std::vector<Grid1D> g1;
  g1.emplace_back(0, Partition1D(8, 4));
  g1[0].SetFrequencies({0.4, 0.3, 0.2, 0.1});
  std::vector<Grid2D> g2;
  g2.emplace_back(0, 1, Partition1D(8, 4), Partition1D(4, 2));
  g2[0].SetFrequencies({0.05, 0.05, 0.10, 0.10,
                        0.15, 0.15, 0.10, 0.30});

  MakeAttributeConsistent(0, &g1, &g2);

  const std::vector<double> m = MarginalX(g2[0]);
  for (uint32_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(g1[0].frequencies()[c], m[c], 1e-9) << "cell " << c;
  }
}

TEST(ConsistencyTest, WeightedAverageFavorsFewerCells) {
  // The 1-D grid sums one cell per subdomain; the 2-D grid sums two. CALM
  // weights 1/L: theta_1d = 2/3, theta_2d = 1/3.
  std::vector<Grid1D> g1;
  g1.emplace_back(0, Partition1D(4, 2));
  g1[0].SetFrequencies({0.9, 0.1});
  std::vector<Grid2D> g2;
  g2.emplace_back(0, 1, Partition1D(4, 2), Partition1D(2, 2));
  g2[0].SetFrequencies({0.3, 0.3, 0.2, 0.2});  // marginal x: 0.6, 0.4

  MakeAttributeConsistent(0, &g1, &g2);
  // Target for subdomain 0: (2/3)*0.9 + (1/3)*0.6 = 0.8.
  EXPECT_NEAR(g1[0].frequencies()[0], 0.8, 1e-9);
  EXPECT_NEAR(MarginalX(g2[0])[0], 0.8, 1e-9);
}

TEST(ConsistencyTest, TotalMassPreservedWhenAligned) {
  std::vector<Grid1D> g1;
  g1.emplace_back(0, Partition1D(6, 3));
  g1[0].SetFrequencies({0.5, 0.3, 0.2});
  std::vector<Grid2D> g2;
  g2.emplace_back(0, 1, Partition1D(6, 3), Partition1D(3, 3));
  std::vector<double> f(9, 1.0 / 9.0);
  g2[0].SetFrequencies(f);

  MakeAttributeConsistent(0, &g1, &g2);
  EXPECT_NEAR(GridSum(g1[0].frequencies()), 1.0, 1e-9);
  EXPECT_NEAR(GridSum(g2[0].frequencies()), 1.0, 1e-9);
}

TEST(ConsistencyTest, SingleGridUntouched) {
  std::vector<Grid1D> g1;
  g1.emplace_back(0, Partition1D(4, 2));
  g1[0].SetFrequencies({0.7, 0.3});
  std::vector<Grid2D> g2;
  MakeAttributeConsistent(0, &g1, &g2);
  EXPECT_DOUBLE_EQ(g1[0].frequencies()[0], 0.7);
}

TEST(ConsistencyTest, NonAlignedPartitionsConverge) {
  // Different granularities along the shared attribute: 3 cells vs 4x2.
  std::vector<Grid1D> g1;
  g1.emplace_back(0, Partition1D(12, 3));
  g1[0].SetFrequencies({0.5, 0.25, 0.25});
  std::vector<Grid2D> g2;
  g2.emplace_back(0, 1, Partition1D(12, 4), Partition1D(2, 2));
  g2[0].SetFrequencies({0.05, 0.05, 0.10, 0.10, 0.15, 0.15, 0.20, 0.20});

  // Non-aligned boundaries mean one pass is not exact (later subdomain
  // updates perturb earlier sums), but repeated passes must contract the
  // disagreement between the subdomain sums.
  const auto disagreement = [&]() {
    double total = 0.0;
    const std::vector<double> mx = MarginalX(g2[0]);
    for (uint32_t i = 0; i < 3; ++i) {
      const uint32_t lo = g1[0].partition().CellBegin(i);
      const uint32_t hi = g1[0].partition().CellEnd(i) - 1;
      double s2 = 0.0;
      for (uint32_t c = 0; c < 4; ++c) {
        s2 += g2[0].px().OverlapFraction(c, lo, hi) * mx[c];
      }
      total += std::fabs(g1[0].frequencies()[i] - s2);
    }
    return total;
  };
  const double before = disagreement();
  for (int pass = 0; pass < 25; ++pass) {
    MakeAttributeConsistent(0, &g1, &g2);
  }
  EXPECT_LT(disagreement(), before * 0.2);
  EXPECT_LT(disagreement(), 0.02);
}

TEST(ConsistencyTest, ThreeGridsSharingAnAttribute) {
  std::vector<Grid1D> g1;
  g1.emplace_back(0, Partition1D(4, 2));
  g1[0].SetFrequencies({0.6, 0.4});
  std::vector<Grid2D> g2;
  g2.emplace_back(0, 1, Partition1D(4, 2), Partition1D(2, 2));
  g2[0].SetFrequencies({0.2, 0.2, 0.3, 0.3});  // marginal: 0.4, 0.6
  g2.emplace_back(0, 2, Partition1D(4, 2), Partition1D(2, 2));
  g2[1].SetFrequencies({0.25, 0.25, 0.25, 0.25});  // marginal: 0.5, 0.5

  MakeAttributeConsistent(0, &g1, &g2);
  const double target = g1[0].frequencies()[0];
  EXPECT_NEAR(MarginalX(g2[0])[0], target, 1e-9);
  EXPECT_NEAR(MarginalX(g2[1])[0], target, 1e-9);
}

TEST(MakeConsistentTest, EndsNonNegativeAndNormalized) {
  Rng rng(3);
  std::vector<Grid1D> g1;
  std::vector<Grid2D> g2;
  for (uint32_t a = 0; a < 3; ++a) {
    g1.emplace_back(a, Partition1D(10, 3 + a));
    std::vector<double> f(3 + a);
    for (double& v : f) v = rng.Gaussian() * 0.3 + 0.2;
    g1[a].SetFrequencies(f);
  }
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = i + 1; j < 3; ++j) {
      g2.emplace_back(i, j, Partition1D(10, 4), Partition1D(10, 5));
      std::vector<double> f(20);
      for (double& v : f) v = rng.Gaussian() * 0.1 + 0.05;
      g2.back().SetFrequencies(f);
    }
  }
  MakeConsistent(3, &g1, &g2);
  for (const Grid1D& g : g1) {
    for (const double v : g.frequencies()) EXPECT_GE(v, 0.0);
    EXPECT_NEAR(GridSum(g.frequencies()), 1.0, 1e-6);
  }
  for (const Grid2D& g : g2) {
    for (const double v : g.frequencies()) EXPECT_GE(v, 0.0);
    EXPECT_NEAR(GridSum(g.frequencies()), 1.0, 1e-6);
  }
}

TEST(MakeConsistentTest, ConsistencyReducesMarginalDisagreement) {
  Rng rng(4);
  std::vector<Grid1D> g1;
  g1.emplace_back(0, Partition1D(8, 4));
  g1[0].SetFrequencies({0.4, 0.3, 0.2, 0.1});
  std::vector<Grid2D> g2;
  g2.emplace_back(0, 1, Partition1D(8, 4), Partition1D(4, 2));
  std::vector<double> noisy(8, 0.125);
  for (double& v : noisy) v += rng.Gaussian() * 0.05;
  g2[0].SetFrequencies(noisy);

  const auto disagreement = [&]() {
    const std::vector<double> mx = MarginalX(g2[0]);
    double d = 0.0;
    for (uint32_t c = 0; c < 4; ++c) {
      d += std::fabs(mx[c] - g1[0].frequencies()[c]);
    }
    return d;
  };
  const double before = disagreement();
  MakeConsistent(2, &g1, &g2);
  EXPECT_LT(disagreement(), before);
}

}  // namespace
}  // namespace felip::post
