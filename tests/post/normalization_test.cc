#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "felip/common/rng.h"
#include "felip/post/norm_sub.h"

namespace felip::post {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(NormMulTest, ScalesMultiplicatively) {
  std::vector<double> f = {0.8, -0.2, 0.8};  // positives sum to 1.6
  NormalizeFrequencies(&f, Normalization::kNormMul);
  EXPECT_DOUBLE_EQ(f[1], 0.0);
  EXPECT_NEAR(f[0], 0.5, 1e-12);
  EXPECT_NEAR(f[2], 0.5, 1e-12);
  // Multiplicative scaling preserves ratios (Norm-Sub preserves gaps).
  std::vector<double> g = {0.9, 0.3, -0.1};
  NormalizeFrequencies(&g, Normalization::kNormMul);
  EXPECT_NEAR(g[0] / g[1], 3.0, 1e-9);
}

TEST(NormMulTest, AllNonPositiveFallsBackToUniform) {
  std::vector<double> f = {-0.1, -0.4};
  NormalizeFrequencies(&f, Normalization::kNormMul);
  EXPECT_NEAR(f[0], 0.5, 1e-12);
  EXPECT_NEAR(f[1], 0.5, 1e-12);
}

TEST(NormCutTest, CutsSmallestFirst) {
  // Sum of positives is 1.4; cutting must remove 0.4 starting with the
  // smallest entries: 0.1 then 0.3 are zeroed entirely (0.4 removed).
  std::vector<double> f = {0.7, 0.3, 0.1, 0.3, -0.2};
  NormalizeFrequencies(&f, Normalization::kNormCut);
  EXPECT_NEAR(Sum(f), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(f[0], 0.7);   // largest untouched
  EXPECT_DOUBLE_EQ(f[2], 0.0);   // smallest zeroed
  EXPECT_DOUBLE_EQ(f[4], 0.0);   // negative clamped
}

TEST(NormCutTest, PartialCutAtBoundary) {
  std::vector<double> f = {0.9, 0.25};  // remove 0.15 from the smaller one
  NormalizeFrequencies(&f, Normalization::kNormCut);
  EXPECT_DOUBLE_EQ(f[0], 0.9);
  EXPECT_NEAR(f[1], 0.1, 1e-12);
}

TEST(NormCutTest, DoesNotAddMass) {
  std::vector<double> f = {0.2, -0.1, 0.3};  // clamped sum 0.5 < 1
  NormalizeFrequencies(&f, Normalization::kNormCut);
  EXPECT_NEAR(Sum(f), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(f[1], 0.0);
}

TEST(NormalizationTest, SubDispatchMatchesRemoveNegativity) {
  std::vector<double> a = {0.6, -0.1, 0.6, -0.1};
  std::vector<double> b = a;
  NormalizeFrequencies(&a, Normalization::kNormSub);
  RemoveNegativity(&b);
  EXPECT_EQ(a, b);
}

// Property: every variant yields non-negative output, and Sub/Mul hit the
// target sum exactly.
class NormalizationPropertyTest
    : public ::testing::TestWithParam<Normalization> {};

TEST_P(NormalizationPropertyTest, NonNegativeOutput) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> f(1 + rng.UniformU64(32));
    for (double& v : f) v = rng.Gaussian();
    NormalizeFrequencies(&f, GetParam());
    double sum = 0.0;
    for (const double v : f) {
      ASSERT_GE(v, 0.0);
      sum += v;
    }
    if (GetParam() != Normalization::kNormCut) {
      ASSERT_NEAR(sum, 1.0, 1e-6);
    } else {
      ASSERT_LE(sum, 1.0 + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, NormalizationPropertyTest,
                         ::testing::Values(Normalization::kNormSub,
                                           Normalization::kNormMul,
                                           Normalization::kNormCut),
                         [](const auto& info) {
                           switch (info.param) {
                             case Normalization::kNormSub:
                               return "NormSub";
                             case Normalization::kNormMul:
                               return "NormMul";
                             case Normalization::kNormCut:
                               return "NormCut";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace felip::post
