// Exactness contract of the fast answer paths (docs/query_engine.md).
//
// AnswerExact must be bit-identical to the reference scan Answer() for
// every selection type; AnswerPrefix must agree to ~1e-12 on range x range
// and fall back bit-identically for set selections. All three must agree
// with a brute-force sum over the dense export. Partitions are chosen with
// coprime cell counts so the refinement blocks are genuinely unequal.

#include "felip/post/response_matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "felip/common/rng.h"
#include "felip/grid/grid.h"

namespace felip::post {
namespace {

using grid::AxisSelection;
using grid::Grid1D;
using grid::Grid2D;
using grid::Partition1D;

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

Grid2D RandomGrid2D(uint32_t dx, uint32_t dy, uint32_t lx, uint32_t ly,
                    uint64_t seed) {
  Grid2D g(0, 1, Partition1D(dx, lx), Partition1D(dy, ly));
  Rng rng(seed);
  std::vector<double> f(g.num_cells());
  for (double& v : f) v = rng.UniformDouble() + 0.01;
  const double total = Sum(f);
  for (double& v : f) v /= total;
  g.SetFrequencies(f);
  return g;
}

Grid1D RandomGrid1D(uint32_t attr, uint32_t domain, uint32_t cells,
                    uint64_t seed) {
  Grid1D g(attr, Partition1D(domain, cells));
  Rng rng(seed);
  std::vector<double> f(cells);
  for (double& v : f) v = rng.UniformDouble() + 0.01;
  const double total = Sum(f);
  for (double& v : f) v /= total;
  g.SetFrequencies(f);
  return g;
}

// A matrix whose refinement blocks have many distinct widths: 2-D cell
// counts (7, 5) against 1-D cell counts (11, 9) over domains (60, 48).
ResponseMatrix UnequalBlockMatrix(uint64_t seed, Grid2D* g2_out = nullptr) {
  const Grid2D g2 = RandomGrid2D(60, 48, 7, 5, seed);
  const Grid1D gx = RandomGrid1D(0, 60, 11, seed + 10);
  const Grid1D gy = RandomGrid1D(1, 48, 9, seed + 20);
  if (g2_out != nullptr) *g2_out = g2;
  return ResponseMatrix::Build(g2, &gx, &gy);
}

AxisSelection RandomRange(Rng& rng, uint32_t domain) {
  const uint32_t lo = static_cast<uint32_t>(rng.UniformU64(domain));
  const uint32_t hi =
      lo + static_cast<uint32_t>(rng.UniformU64(domain - lo));
  return AxisSelection::MakeRange(lo, hi);
}

AxisSelection RandomSet(Rng& rng, uint32_t domain) {
  const uint64_t count = 1 + rng.UniformU64(8);
  std::vector<uint32_t> values;
  values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    values.push_back(static_cast<uint32_t>(rng.UniformU64(domain)));
  }
  return AxisSelection::MakeSet(values);
}

TEST(QueryFastPathTest, ExactBitIdenticalToScanOnRanges) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    const ResponseMatrix m = UnequalBlockMatrix(seed);
    QueryScratch scratch;
    Rng rng(seed + 100);
    for (int trial = 0; trial < 300; ++trial) {
      const AxisSelection sx = RandomRange(rng, m.domain_x());
      const AxisSelection sy = RandomRange(rng, m.domain_y());
      // EXPECT_EQ on doubles: bit-identity, not approximate agreement.
      EXPECT_EQ(m.AnswerExact(sx, sy, &scratch), m.Answer(sx, sy))
          << "seed=" << seed << " trial=" << trial;
    }
  }
}

TEST(QueryFastPathTest, ExactBitIdenticalToScanOnSetsAndMixed) {
  const ResponseMatrix m = UnequalBlockMatrix(4);
  QueryScratch scratch;
  Rng rng(41);
  for (int trial = 0; trial < 300; ++trial) {
    const AxisSelection sx = (trial % 2 == 0)
                                 ? RandomSet(rng, m.domain_x())
                                 : RandomRange(rng, m.domain_x());
    const AxisSelection sy = (trial % 3 == 0)
                                 ? RandomRange(rng, m.domain_y())
                                 : RandomSet(rng, m.domain_y());
    EXPECT_EQ(m.AnswerExact(sx, sy, &scratch), m.Answer(sx, sy))
        << "trial=" << trial;
  }
}

TEST(QueryFastPathTest, ExactHandlesBoundaryRanges) {
  const ResponseMatrix m = UnequalBlockMatrix(5);
  QueryScratch scratch;
  const std::vector<std::pair<AxisSelection, AxisSelection>> cases = {
      // Single values at the domain corners.
      {AxisSelection::MakeRange(0, 0), AxisSelection::MakeRange(0, 0)},
      {AxisSelection::MakeRange(59, 59), AxisSelection::MakeRange(47, 47)},
      // Full domain, expressed as a range.
      {AxisSelection::MakeRange(0, 59), AxisSelection::MakeRange(0, 47)},
      // Upper bound beyond the domain: clamped, not out-of-bounds.
      {AxisSelection::MakeRange(30, 100), AxisSelection::MakeRange(40, 200)},
      // Whole selection past the domain: exactly zero.
      {AxisSelection::MakeRange(90, 100), AxisSelection::MakeRange(0, 47)},
  };
  for (const auto& [sx, sy] : cases) {
    EXPECT_EQ(m.AnswerExact(sx, sy, &scratch), m.Answer(sx, sy));
  }
  EXPECT_EQ(m.AnswerExact(AxisSelection::MakeRange(90, 100),
                          AxisSelection::MakeRange(0, 47), &scratch),
            0.0);
}

TEST(QueryFastPathTest, PrefixMatchesScanOnRanges) {
  for (uint64_t seed : {6ull, 7ull}) {
    const ResponseMatrix m = UnequalBlockMatrix(seed);
    QueryScratch scratch;
    Rng rng(seed + 200);
    for (int trial = 0; trial < 300; ++trial) {
      const AxisSelection sx = RandomRange(rng, m.domain_x());
      const AxisSelection sy = RandomRange(rng, m.domain_y());
      const double scan = m.Answer(sx, sy);
      const double prefix = m.AnswerPrefix(sx, sy, &scratch);
      // Different association order than the scan, so ~1e-12, not exact.
      EXPECT_NEAR(prefix, scan, 1e-12) << "seed=" << seed
                                       << " trial=" << trial;
    }
  }
}

TEST(QueryFastPathTest, PrefixFallsBackBitIdenticallyOnSets) {
  const ResponseMatrix m = UnequalBlockMatrix(8);
  QueryScratch scratch;
  Rng rng(81);
  for (int trial = 0; trial < 200; ++trial) {
    const AxisSelection sx = RandomSet(rng, m.domain_x());
    const AxisSelection sy = (trial % 2 == 0)
                                 ? RandomRange(rng, m.domain_y())
                                 : RandomSet(rng, m.domain_y());
    EXPECT_EQ(m.AnswerPrefix(sx, sy, &scratch), m.Answer(sx, sy))
        << "trial=" << trial;
  }
}

TEST(QueryFastPathTest, AllPathsMatchDenseBruteForce) {
  // Ground truth from the dense export: every selected (x, y) value's
  // individual frequency, summed. Pins the block-coverage arithmetic
  // itself, not just path-vs-path consistency.
  const ResponseMatrix m = UnequalBlockMatrix(9);
  const std::vector<double> dense = m.ToDense();
  const uint32_t dy = m.domain_y();
  QueryScratch scratch;
  Rng rng(91);
  for (int trial = 0; trial < 60; ++trial) {
    const AxisSelection sx = (trial % 2 == 0) ? RandomRange(rng, m.domain_x())
                                              : RandomSet(rng, m.domain_x());
    const AxisSelection sy = (trial % 3 == 0) ? RandomSet(rng, m.domain_y())
                                              : RandomRange(rng, m.domain_y());
    double brute = 0.0;
    for (uint32_t x = 0; x < m.domain_x(); ++x) {
      if (!sx.Contains(x)) continue;
      for (uint32_t y = 0; y < dy; ++y) {
        if (sy.Contains(y)) brute += dense[x * dy + y];
      }
    }
    EXPECT_NEAR(m.Answer(sx, sy), brute, 1e-9) << "trial=" << trial;
    EXPECT_NEAR(m.AnswerExact(sx, sy, &scratch), brute, 1e-9);
    EXPECT_NEAR(m.AnswerPrefix(sx, sy, &scratch), brute, 1e-9);
  }
}

TEST(QueryFastPathTest, OneScratchServesMatricesOfDifferentSizes) {
  // The batch engine reuses one scratch per worker across every pair
  // matrix a query touches; shrinking from a large matrix to a small one
  // must not leave stale coverage behind.
  const ResponseMatrix big = UnequalBlockMatrix(10);
  const Grid2D small_grid = RandomGrid2D(6, 4, 3, 2, 11);
  const ResponseMatrix small =
      ResponseMatrix::Build(small_grid, nullptr, nullptr);
  QueryScratch scratch;
  Rng rng(111);
  for (int trial = 0; trial < 50; ++trial) {
    const AxisSelection bx = RandomRange(rng, big.domain_x());
    const AxisSelection by = RandomRange(rng, big.domain_y());
    EXPECT_EQ(big.AnswerExact(bx, by, &scratch), big.Answer(bx, by));
    const AxisSelection cx = RandomSet(rng, small.domain_x());
    const AxisSelection cy = RandomRange(rng, small.domain_y());
    EXPECT_EQ(small.AnswerExact(cx, cy, &scratch), small.Answer(cx, cy));
    const AxisSelection rx = RandomRange(rng, small.domain_x());
    EXPECT_NEAR(small.AnswerPrefix(rx, cy, &scratch), small.Answer(rx, cy),
                1e-12);
  }
}

}  // namespace
}  // namespace felip::post
