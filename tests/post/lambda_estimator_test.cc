#include "felip/post/lambda_estimator.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "felip/common/numeric.h"

namespace felip::post {
namespace {

TEST(PairIndexTest, LexicographicOrder) {
  // λ = 4: (0,1)=0 (0,2)=1 (0,3)=2 (1,2)=3 (1,3)=4 (2,3)=5.
  EXPECT_EQ(PairIndex(0, 1, 4), 0u);
  EXPECT_EQ(PairIndex(0, 2, 4), 1u);
  EXPECT_EQ(PairIndex(0, 3, 4), 2u);
  EXPECT_EQ(PairIndex(1, 2, 4), 3u);
  EXPECT_EQ(PairIndex(1, 3, 4), 4u);
  EXPECT_EQ(PairIndex(2, 3, 4), 5u);
}

TEST(PairIndexTest, CoversAllPairsExactlyOnce) {
  for (uint32_t lambda : {2u, 3u, 5u, 8u}) {
    std::vector<bool> seen(Choose2(lambda), false);
    for (uint32_t i = 0; i < lambda; ++i) {
      for (uint32_t j = i + 1; j < lambda; ++j) {
        const uint32_t idx = PairIndex(i, j, lambda);
        ASSERT_LT(idx, seen.size());
        ASSERT_FALSE(seen[idx]);
        seen[idx] = true;
      }
    }
  }
}

TEST(LambdaEstimatorTest, LambdaTwoPassesThrough) {
  EXPECT_DOUBLE_EQ(EstimateLambdaQuery(2, {0.37}), 0.37);
  // Negative noisy input clamps to zero, > 1 clamps to one.
  EXPECT_DOUBLE_EQ(EstimateLambdaQuery(2, {-0.2}), 0.0);
  EXPECT_DOUBLE_EQ(EstimateLambdaQuery(2, {1.4}), 1.0);
}

TEST(LambdaEstimatorTest, IndependentPredicatesFactorize) {
  // Three independent predicates with marginals 0.5 each: every pairwise
  // answer is 0.25 and the 3-D answer should come out near 0.125.
  const std::vector<double> pairs(3, 0.25);
  const double estimate = EstimateLambdaQuery(3, pairs);
  EXPECT_NEAR(estimate, 0.125, 0.02);
}

TEST(LambdaEstimatorTest, PerfectlyCorrelatedPredicates) {
  // All three predicates hold for exactly the same 30% of users: pairwise
  // answers are all 0.3 and the best λ-D answer is 0.3.
  const std::vector<double> pairs(3, 0.3);
  const double estimate = EstimateLambdaQuery(3, pairs);
  // Iterative scaling can't exceed the pairwise answers.
  EXPECT_GT(estimate, 0.15);
  EXPECT_LE(estimate, 0.3 + 1e-6);
}

TEST(LambdaEstimatorTest, ZeroPairForcesZero) {
  // If one 2-D answer is 0, the λ-D answer must be 0.
  const std::vector<double> pairs = {0.0, 0.25, 0.25};
  EXPECT_NEAR(EstimateLambdaQuery(3, pairs), 0.0, 1e-6);
}

TEST(LambdaEstimatorTest, ConsistentInputsRecovered) {
  // Ground truth: 4 independent binary attributes, predicate t holds with
  // probability p_t. Pair answers p_a * p_b; λ-D answer ∏ p_t.
  const std::vector<double> p = {0.8, 0.5, 0.6, 0.4};
  std::vector<double> pairs(Choose2(4));
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = a + 1; b < 4; ++b) {
      pairs[PairIndex(a, b, 4)] = p[a] * p[b];
    }
  }
  const double expected = p[0] * p[1] * p[2] * p[3];
  EXPECT_NEAR(EstimateLambdaQuery(4, pairs), expected, 0.03);
}

TEST(FitSignCombinationsTest, OutputLengthAndMass) {
  const std::vector<double> pairs(Choose2(3), 0.25);
  const std::vector<double> z = FitSignCombinations(3, pairs);
  ASSERT_EQ(z.size(), 8u);
  for (const double v : z) EXPECT_GE(v, 0.0);
  // Fitting from a uniform start with consistent inputs keeps total mass
  // near 1.
  EXPECT_NEAR(std::accumulate(z.begin(), z.end(), 0.0), 1.0, 0.1);
}

TEST(FitSignCombinationsTest, PairConstraintsSatisfied) {
  const std::vector<double> p = {0.7, 0.4, 0.5};
  std::vector<double> pairs(Choose2(3));
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t b = a + 1; b < 3; ++b) {
      pairs[PairIndex(a, b, 3)] = p[a] * p[b];
    }
  }
  LambdaEstimatorOptions options;
  options.threshold = 1e-12;
  options.max_iterations = 2000;
  const std::vector<double> z = FitSignCombinations(3, pairs, options);
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t b = a + 1; b < 3; ++b) {
      const uint32_t need = (1u << a) | (1u << b);
      double sum = 0.0;
      for (uint32_t mask = 0; mask < 8; ++mask) {
        if ((mask & need) == need) sum += z[mask];
      }
      EXPECT_NEAR(sum, pairs[PairIndex(a, b, 3)], 1e-3)
          << "pair " << a << "," << b;
    }
  }
}

TEST(LambdaEstimatorTest, HighLambdaRuns) {
  const uint32_t lambda = 10;
  std::vector<double> pairs(Choose2(lambda), 0.25);
  const double estimate = EstimateLambdaQuery(lambda, pairs);
  EXPECT_GE(estimate, 0.0);
  EXPECT_LE(estimate, 1.0);
}

TEST(QuadrantFitTest, RecoversBoundaryTruth) {
  // All pair answers 1 with marginals 1: the plain fit stalls at ~0.77
  // while the quadrant fit reaches 1.
  const std::vector<double> pairs(3, 1.0);
  const std::vector<double> marginals(3, 1.0);
  EXPECT_NEAR(EstimateLambdaQuery(3, pairs), 0.7708, 0.01);
  EXPECT_NEAR(EstimateLambdaQueryQuadrants(3, pairs, marginals), 1.0, 1e-3);
}

TEST(QuadrantFitTest, IndependentCaseMatchesProduct) {
  const std::vector<double> p = {0.8, 0.5, 0.6, 0.4};
  std::vector<double> pairs(Choose2(4));
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = a + 1; b < 4; ++b) {
      pairs[PairIndex(a, b, 4)] = p[a] * p[b];
    }
  }
  const double expected = p[0] * p[1] * p[2] * p[3];
  EXPECT_NEAR(EstimateLambdaQueryQuadrants(4, pairs, p), expected, 0.01);
}

TEST(QuadrantFitTest, ZeroPairForcesZero) {
  const std::vector<double> pairs = {0.0, 0.25, 0.25};
  const std::vector<double> marginals = {0.5, 0.5, 0.5};
  EXPECT_NEAR(EstimateLambdaQueryQuadrants(3, pairs, marginals), 0.0, 1e-6);
}

TEST(QuadrantFitTest, InconsistentInputsAreRenormalized) {
  // Marginals below the pair answers (impossible inputs from noise) must
  // not crash and must return something in [0, 1].
  const std::vector<double> pairs = {0.6, 0.5, 0.7};
  const std::vector<double> marginals = {0.1, 0.2, 0.1};
  const double est = EstimateLambdaQueryQuadrants(3, pairs, marginals);
  EXPECT_GE(est, 0.0);
  EXPECT_LE(est, 1.0);
}

TEST(QuadrantFitTest, LambdaTwoPassThrough) {
  EXPECT_DOUBLE_EQ(
      EstimateLambdaQueryQuadrants(2, {0.42}, {0.6, 0.7}), 0.42);
}

TEST(LambdaEstimatorDeathTest, RejectsWrongPairCount) {
  EXPECT_DEATH(EstimateLambdaQuery(3, {0.1, 0.2}), "FELIP_CHECK");
}

TEST(LambdaEstimatorDeathTest, RejectsHugeLambda) {
  EXPECT_DEATH(FitSignCombinations(21, std::vector<double>(Choose2(21), 0.1)),
               "too large");
}

}  // namespace
}  // namespace felip::post
