// Tests for the BENCH_*.json perf-trajectory artifacts: schema
// round-trip, byte-stable rendering, path construction, and the
// regression comparison tools/bench_diff is built on.

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "felip/eval/bench_json.h"
#include "felip/simd/dispatch.h"

namespace felip::eval {
namespace {

BenchReport SampleReport() {
  BenchReport report;
  report.name = "perf_query_engine";
  report.git_sha = "0123abcd";
  report.dispatch = "avx2";
  report.threads = 8;
  report.records.push_back({"BM_BatchScan", "users=1000000;queries=10000",
                            1234.5, 1.5e6, 8.1e8, 42});
  report.records.push_back(
      {"BM_Prefix", "users=1000000;queries=10000", 17.25, 0.0, 0.0, 100000});
  return report;
}

TEST(BenchJsonTest, RoundTripsEveryField) {
  const BenchReport report = SampleReport();
  BenchReport parsed;
  ASSERT_TRUE(ParseBenchJson(RenderBenchJson(report), &parsed));
  EXPECT_EQ(parsed.name, report.name);
  EXPECT_EQ(parsed.git_sha, report.git_sha);
  EXPECT_EQ(parsed.dispatch, report.dispatch);
  EXPECT_EQ(parsed.threads, report.threads);
  ASSERT_EQ(parsed.records.size(), report.records.size());
  for (size_t i = 0; i < parsed.records.size(); ++i) {
    EXPECT_EQ(parsed.records[i].op, report.records[i].op);
    EXPECT_EQ(parsed.records[i].workload, report.records[i].workload);
    EXPECT_EQ(parsed.records[i].ns_per_op, report.records[i].ns_per_op);
    EXPECT_EQ(parsed.records[i].bytes_per_op, report.records[i].bytes_per_op);
    EXPECT_EQ(parsed.records[i].items_per_second,
              report.records[i].items_per_second);
    EXPECT_EQ(parsed.records[i].iterations, report.records[i].iterations);
  }
}

TEST(BenchJsonTest, RenderingIsByteStable) {
  // render -> parse -> render must reproduce the exact bytes: the
  // committed artifacts under results/ only diff when the numbers do.
  const std::string once = RenderBenchJson(SampleReport());
  BenchReport parsed;
  ASSERT_TRUE(ParseBenchJson(once, &parsed));
  EXPECT_EQ(RenderBenchJson(parsed), once);
}

TEST(BenchJsonTest, FieldOrderIsStable) {
  const std::string json = RenderBenchJson(SampleReport());
  // Top-level keys appear in schema order...
  const size_t schema = json.find("\"schema_version\"");
  const size_t name = json.find("\"name\"");
  const size_t sha = json.find("\"git_sha\"");
  const size_t dispatch = json.find("\"dispatch\"");
  const size_t threads = json.find("\"threads\"");
  const size_t records = json.find("\"records\"");
  ASSERT_NE(schema, std::string::npos);
  EXPECT_LT(schema, name);
  EXPECT_LT(name, sha);
  EXPECT_LT(sha, dispatch);
  EXPECT_LT(dispatch, threads);
  EXPECT_LT(threads, records);
  // ...and so do record keys.
  const size_t op = json.find("\"op\"", records);
  const size_t workload = json.find("\"workload\"", records);
  const size_t ns = json.find("\"ns_per_op\"", records);
  const size_t bytes = json.find("\"bytes_per_op\"", records);
  ASSERT_NE(op, std::string::npos);
  EXPECT_LT(op, workload);
  EXPECT_LT(workload, ns);
  EXPECT_LT(ns, bytes);
}

TEST(BenchJsonTest, ParsesRegardlessOfKeyOrderAndUnknownKeys) {
  // Hand-written artifact with shuffled keys, whitespace, an unknown
  // field, and escaped characters — forward-compatible parsing.
  const std::string json = R"({
    "records": [
      {"iterations": 7, "op": "BM_X", "future_field": {"a": [1, "x"]},
       "ns_per_op": 2.5, "workload": "shape=\"odd\nthing\""}
    ],
    "threads": 4, "dispatch": "scalar", "git_sha": "deadbeef",
    "name": "perf_x", "schema_version": 1, "extra": null
  })";
  BenchReport report;
  ASSERT_TRUE(ParseBenchJson(json, &report));
  EXPECT_EQ(report.name, "perf_x");
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].op, "BM_X");
  EXPECT_EQ(report.records[0].workload, "shape=\"odd\nthing\"");
  EXPECT_EQ(report.records[0].ns_per_op, 2.5);
  EXPECT_EQ(report.records[0].iterations, 7u);
}

TEST(BenchJsonTest, RejectsMalformedAndWrongSchema) {
  BenchReport report;
  EXPECT_FALSE(ParseBenchJson("", &report));
  EXPECT_FALSE(ParseBenchJson("not json", &report));
  EXPECT_FALSE(ParseBenchJson("{\"schema_version\": 1", &report));
  // Valid JSON, wrong schema version.
  EXPECT_FALSE(ParseBenchJson(
      "{\"schema_version\": 999, \"name\": \"x\", \"records\": []}",
      &report));
  // Missing schema_version entirely.
  EXPECT_FALSE(
      ParseBenchJson("{\"name\": \"x\", \"records\": []}", &report));
}

TEST(BenchJsonTest, DetailedParseSeparatesMalformedFromUnknownSchema) {
  BenchReport report;
  int seen = 0;
  // Structurally broken inputs classify as malformed, version untouched
  // by anything but the -1 reset.
  EXPECT_EQ(ParseBenchJsonDetailed("", &report, &seen),
            BenchParseResult::kMalformed);
  EXPECT_EQ(seen, -1);
  EXPECT_EQ(ParseBenchJsonDetailed("not json", &report, &seen),
            BenchParseResult::kMalformed);
  EXPECT_EQ(ParseBenchJsonDetailed("{\"schema_version\": 1", &report, &seen),
            BenchParseResult::kMalformed);
  // Missing schema_version: the renderer always writes one, so its
  // absence means "not our artifact", not "future version".
  EXPECT_EQ(ParseBenchJsonDetailed("{\"name\": \"x\", \"records\": []}",
                                   &report, &seen),
            BenchParseResult::kMalformed);
  EXPECT_EQ(seen, -1);
}

TEST(BenchJsonTest, DetailedParseReportsTheVersionItSaw) {
  // Render a valid artifact, then bump its schema_version: well-formed
  // but unreadable by this binary. The caller learns which version the
  // document claimed so bench_diff can print seen-vs-understood.
  std::string json = RenderBenchJson(SampleReport());
  const std::string needle = "\"schema_version\": 1";
  const size_t at = json.find(needle);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, needle.size(), "\"schema_version\": 99");

  BenchReport report;
  report.name = "sentinel";
  int seen = -1;
  EXPECT_EQ(ParseBenchJsonDetailed(json, &report, &seen),
            BenchParseResult::kUnknownSchemaVersion);
  EXPECT_EQ(seen, 99);
  EXPECT_EQ(report.name, "sentinel");  // *out untouched off the kOk path

  // The null-version_seen overload stays usable.
  EXPECT_EQ(ParseBenchJsonDetailed(json, &report),
            BenchParseResult::kUnknownSchemaVersion);
}

TEST(BenchJsonTest, DetailedParseMatchesBoolParserOnSuccess) {
  const std::string json = RenderBenchJson(SampleReport());
  BenchReport report;
  int seen = 7;
  EXPECT_EQ(ParseBenchJsonDetailed(json, &report, &seen),
            BenchParseResult::kOk);
  EXPECT_EQ(seen, -1);
  EXPECT_EQ(report.name, "perf_query_engine");
  ASSERT_EQ(report.records.size(), 2u);
}

TEST(BenchJsonTest, MakeBenchReportRecordsDispatchLevel) {
  const BenchReport report = MakeBenchReport("perf_test");
  EXPECT_EQ(report.name, "perf_test");
  EXPECT_EQ(report.dispatch, simd::LevelName(simd::ActiveLevel()));
  EXPECT_FALSE(report.git_sha.empty());
  // Pinning the dispatch level must be reflected in new reports — this is
  // how CI's forced-scalar bench runs are distinguishable in the
  // trajectory.
  simd::ScopedLevelOverride pin(simd::Level::kScalar);
  EXPECT_EQ(MakeBenchReport("perf_test").dispatch, "scalar");
}

TEST(BenchJsonTest, BenchJsonPathComposes) {
  EXPECT_EQ(BenchJsonPath("results", "perf_query_engine"),
            "results/BENCH_perf_query_engine.json");
  EXPECT_EQ(BenchJsonPath("results/", "x"), "results/BENCH_x.json");
  EXPECT_EQ(BenchJsonPath("", "x"), "BENCH_x.json");
}

TEST(BenchJsonTest, WriteBenchJsonFileRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "/BENCH_write_test.json";
  ASSERT_TRUE(WriteBenchJsonFile(path, SampleReport()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  BenchReport parsed;
  ASSERT_TRUE(ParseBenchJson(ss.str(), &parsed));
  EXPECT_EQ(parsed.name, "perf_query_engine");
  std::remove(path.c_str());
}

// --- CompareBenchReports: the logic behind tools/bench_diff. ---

TEST(BenchDiffTest, FlagsRegressionsBeyondThreshold) {
  BenchReport baseline = SampleReport();
  BenchReport current = SampleReport();
  current.records[0].ns_per_op = baseline.records[0].ns_per_op * 1.25;
  current.records[1].ns_per_op = baseline.records[1].ns_per_op * 1.05;

  const BenchComparison cmp =
      CompareBenchReports(baseline, current, /*threshold=*/0.10);
  ASSERT_EQ(cmp.deltas.size(), 2u);
  EXPECT_TRUE(cmp.deltas[0].regression);   // +25% > 10%
  EXPECT_FALSE(cmp.deltas[1].regression);  // +5% <= 10%
  EXPECT_EQ(cmp.num_regressions, 1);
  EXPECT_NEAR(cmp.deltas[0].ratio, 1.25, 1e-12);
}

TEST(BenchDiffTest, ImprovementsAndBoundaryDoNotFlag) {
  BenchReport baseline = SampleReport();
  BenchReport current = SampleReport();
  current.records[0].ns_per_op = baseline.records[0].ns_per_op * 0.5;
  // Exactly at threshold: not a regression (strictly-greater comparison).
  current.records[1].ns_per_op = baseline.records[1].ns_per_op * 1.10;
  const BenchComparison cmp =
      CompareBenchReports(baseline, current, /*threshold=*/0.10);
  EXPECT_EQ(cmp.num_regressions, 0);
}

TEST(BenchDiffTest, ZeroBaselineNeverFlags) {
  BenchReport baseline = SampleReport();
  baseline.records[0].ns_per_op = 0.0;
  BenchReport current = SampleReport();
  current.records[0].ns_per_op = 1e9;
  const BenchComparison cmp =
      CompareBenchReports(baseline, current, /*threshold=*/0.10);
  EXPECT_FALSE(cmp.deltas[0].regression);
}

TEST(BenchDiffTest, ReportsOpSetDifferences) {
  BenchReport baseline = SampleReport();
  BenchReport current = SampleReport();
  current.records.erase(current.records.begin());  // BM_BatchScan gone
  current.records.push_back(
      {"BM_New", "shape", 1.0, 0.0, 0.0, 1});
  const BenchComparison cmp =
      CompareBenchReports(baseline, current, /*threshold=*/0.10);
  ASSERT_EQ(cmp.only_in_baseline.size(), 1u);
  EXPECT_EQ(cmp.only_in_baseline[0], "BM_BatchScan");
  ASSERT_EQ(cmp.only_in_current.size(), 1u);
  EXPECT_EQ(cmp.only_in_current[0], "BM_New");
  ASSERT_EQ(cmp.deltas.size(), 1u);
  EXPECT_EQ(cmp.deltas[0].op, "BM_Prefix");
}

}  // namespace
}  // namespace felip::eval
